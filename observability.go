package indexeddf

import (
	"time"

	"indexeddf/internal/faultpoint"
	"indexeddf/internal/obs"
	"indexeddf/internal/view"
)

// Execution observability: every session owns a metrics registry
// (Prometheus-text exportable through Metrics().WriteTo), a bounded ring of
// query-lifecycle trace events, and — unless Config.DisableObservability —
// per-query, per-operator runtime stats feeding EXPLAIN ANALYZE and the
// slow-query log.

// SlowQuery describes one finished query whose wall time met or exceeded
// Config.SlowQueryThreshold, handed to Config.SlowQueryLog.
type SlowQuery struct {
	// ID is the engine-assigned query id ("q1", "q2", ...).
	ID string
	// SQL is the statement text when the query came through the SQL or
	// prepared-statement entry points ("" for DataFrame-built queries).
	SQL string
	// Duration is the query's wall time, cursor open to close.
	Duration time.Duration
	// Rows is the number of rows the cursor delivered.
	Rows int64
	// Plan is the EXPLAIN ANALYZE rendering of the physical plan with the
	// actuals recorded during this execution.
	Plan string
	// Stats exposes the query's full recorded stats.
	Stats *obs.QueryStats
}

// FormatBytes renders a byte count compactly (1.5KiB, 3.2MiB) — the
// formatting EXPLAIN ANALYZE and the trace summaries use.
func FormatBytes(n int64) string { return obs.FormatBytes(n) }

// Metrics returns the session's metrics registry. Serve it over HTTP with
//
//	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
//		sess.Metrics().WriteTo(w)
//	})
func (s *Session) Metrics() *obs.Registry { return s.metrics }

// TraceEvents returns the session's retained query-lifecycle trace events,
// oldest first. The ring holds Config.TraceCapacity events; nil when
// observability is disabled.
func (s *Session) TraceEvents() []obs.Event { return s.tracer.Events() }

// TraceEventsFor returns the retained trace events of one query id.
func (s *Session) TraceEventsFor(queryID string) []obs.Event {
	return s.tracer.EventsFor(queryID)
}

// initObservability builds the registry and wires the engine-global gauges
// and counter views. Called once from NewSession.
func (s *Session) initObservability() {
	if !s.cfg.DisableObservability {
		capacity := s.cfg.TraceCapacity
		if capacity <= 0 {
			capacity = obs.DefaultTraceCapacity
		}
		s.tracer = obs.NewTracer(capacity)
	}
	m := obs.NewRegistry()
	s.metrics = m

	// Query lifecycle.
	s.qStarted = m.Counter("indexeddf_queries_started_total", "Queries started (cursor opened).")
	s.qDone = m.Counter("indexeddf_queries_finished_total", "Queries finished (cursor closed or exhausted).")
	s.qFailed = m.Counter("indexeddf_queries_failed_total", "Queries terminated by an error (including cancellation and timeout).")
	s.qSlow = m.Counter("indexeddf_queries_slow_total", "Queries meeting Config.SlowQueryThreshold.")
	s.qRows = m.Counter("indexeddf_rows_returned_total", "Rows delivered to query cursors.")
	s.qDur = m.Histogram("indexeddf_query_duration_seconds", "Query wall time, cursor open to close.", nil)
	m.Gauge("indexeddf_queries_active", "Queries currently running.", func() float64 {
		return float64(s.qStarted.Value() - s.qDone.Value())
	})

	// Task scheduler and shuffle (session-global; per-query figures live on
	// Rows.Stats()).
	m.CounterFunc("indexeddf_tasks_started_total", "Partition tasks started.", func() float64 {
		return float64(s.ctx.TasksStarted())
	})
	m.CounterFunc("indexeddf_tasks_completed_total", "Partition tasks completed.", func() float64 {
		return float64(s.ctx.TasksCompleted())
	})
	m.CounterFunc("indexeddf_shuffle_bytes_total", "Bytes written by shuffle map tasks.", func() float64 {
		return float64(s.ctx.ShuffleBytes())
	})
	m.Gauge("indexeddf_shuffle_outstanding", "Shuffles still retaining map outputs.", func() float64 {
		return float64(s.ctx.ShuffleOutstanding())
	})

	// Plan cache.
	m.CounterFunc("indexeddf_plan_cache_hits_total", "Plan-cache lookups answered from cache.", func() float64 {
		h, _ := s.plans.stats()
		return float64(h)
	})
	m.CounterFunc("indexeddf_plan_cache_misses_total", "Plan-cache lookups that compiled.", func() float64 {
		_, mi := s.plans.stats()
		return float64(mi)
	})
	m.Gauge("indexeddf_plan_cache_entries", "Compiled plans currently cached.", func() float64 {
		return float64(s.plans.len())
	})

	// Memory pool.
	m.Gauge("indexeddf_memory_pool_used_bytes", "Bytes currently reserved from the engine memory pool.", func() float64 {
		return float64(s.mem.Used())
	})
	m.Gauge("indexeddf_memory_pool_limit_bytes", "Engine memory pool limit (0 = unbounded).", func() float64 {
		return float64(s.mem.Limit())
	})
	m.Gauge("indexeddf_memory_pool_active_queries", "Queries admitted to the memory pool.", func() float64 {
		return float64(s.mem.Active())
	})

	// Spill fabric (all zero — and the gauge absent cost aside — when
	// Config.SpillDir is unset; the accessors are nil-safe).
	m.CounterFunc("indexeddf_spill_runs_total", "Sealed runs spilled to disk (by pressure or eviction).", func() float64 {
		return float64(s.spill.SpilledRuns())
	})
	m.CounterFunc("indexeddf_spill_bytes_written_total", "Bytes written to spill run files.", func() float64 {
		return float64(s.spill.BytesWritten())
	})
	m.CounterFunc("indexeddf_spill_bytes_read_total", "Bytes read back from spill run files.", func() float64 {
		return float64(s.spill.BytesRead())
	})
	m.CounterFunc("indexeddf_spill_evictions_total", "Resident runs evicted to disk under memory pressure.", func() float64 {
		return float64(s.spill.Evictions())
	})
	m.Gauge("indexeddf_spill_files_active", "Spill run files currently on disk.", func() float64 {
		return float64(s.spill.ActiveFiles())
	})

	// Materialized-view maintenance, summed over registered views.
	viewStats := func(pick func(view.Stats) int64) func() float64 {
		return func() float64 {
			var total int64
			for _, v := range s.views.List() {
				if sv, ok := v.(interface{ Stats() view.Stats }); ok {
					total += pick(sv.Stats())
				}
			}
			return float64(total)
		}
	}
	m.CounterFunc("indexeddf_view_refreshes_total", "Materialized-view refreshes that did work.",
		viewStats(func(st view.Stats) int64 { return st.Refreshes }))
	m.CounterFunc("indexeddf_view_full_recomputes_total", "Materialized-view full state rebuilds.",
		viewStats(func(st view.Stats) int64 { return st.FullRecomputes }))
	m.CounterFunc("indexeddf_view_delta_rows_total", "Change-log rows folded incrementally into views.",
		viewStats(func(st view.Stats) int64 { return st.DeltaRows }))

	// Stream ingestion.
	s.ingBatch = m.Counter("indexeddf_ingest_batches_total", "Stream batches applied by IngestTopic.")
	s.ingRows = m.Counter("indexeddf_ingest_rows_total", "Rows applied by IngestTopic.")

	// Fault injection (active only in builds that arm faultpoints).
	m.CounterFunc("indexeddf_faultpoint_injections_total", "Faults injected across all faultpoints.", func() float64 {
		var total int64
		for _, p := range faultpoint.Points() {
			total += faultpoint.Hits(p)
		}
		return float64(total)
	})

	// Tracing health.
	m.CounterFunc("indexeddf_trace_events_dropped_total", "Trace events overwritten in the ring buffer.", func() float64 {
		return float64(s.tracer.Dropped())
	})
}

// queryMeta carries entry-point context (statement text, front-end timings,
// plan-cache outcome) into queryExecMeta, where the query's stats object is
// created.
type queryMeta struct {
	sql      string
	parseNs  int64
	planNs   int64
	cacheHit bool
	// force creates QueryStats even under Config.DisableObservability —
	// EXPLAIN ANALYZE is explicit opt-in instrumentation.
	force bool
}

// finishQuery settles a finished cursor's accounting: registry counters,
// the duration histogram, trace close event and the slow-query hook. Called
// exactly once, from Rows.shutdown.
func (s *Session) finishQuery(r *Rows) {
	dur := time.Since(r.start)
	s.qDone.Inc()
	if r.err != nil {
		s.qFailed.Inc()
	}
	s.qRows.Add(r.delivered)
	s.qDur.Observe(dur.Seconds())
	qs := r.qs
	if qs == nil {
		return
	}
	qs.SetMemPeak(r.mem.Peak())
	qs.AddRowsReturned(r.delivered)
	qs.Finish()
	qs.Event("close", -1, dur)
	if thr := s.cfg.SlowQueryThreshold; thr > 0 && dur >= thr {
		s.qSlow.Inc()
		if hook := s.cfg.SlowQueryLog; hook != nil {
			hook(SlowQuery{
				ID:       qs.ID,
				SQL:      qs.SQL,
				Duration: dur,
				Rows:     r.delivered,
				Plan:     r.analyzePlan(),
				Stats:    qs,
			})
		}
	}
}
