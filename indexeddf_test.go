package indexeddf

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

func personSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "name", Type: String},
		Field{Name: "city", Type: String},
		Field{Name: "age", Type: Int64},
	)
}

func knowsSchema() *Schema {
	return NewSchema(
		Field{Name: "person1Id", Type: Int64},
		Field{Name: "person2Id", Type: Int64},
		Field{Name: "since", Type: Int64},
	)
}

// newTestSession builds a session with small fixed tables:
// person: 100 people; knows: each person i knows (i+1)%100 and (i+2)%100.
func newTestSession(t *testing.T) (*Session, *DataFrame, *DataFrame) {
	t.Helper()
	s := NewSession(Config{TablePartitions: 3, ShufflePartitions: 3})
	var people []Row
	for i := 0; i < 100; i++ {
		people = append(people, R(int64(i), fmt.Sprintf("p%02d", i), []string{"ams", "sfo", "nyc"}[i%3], int64(20+i%50)))
	}
	person, err := s.CreateTable("person", personSchema(), people)
	if err != nil {
		t.Fatal(err)
	}
	var knows []Row
	for i := 0; i < 100; i++ {
		knows = append(knows, R(int64(i), int64((i+1)%100), int64(i)))
		knows = append(knows, R(int64(i), int64((i+2)%100), int64(i)))
	}
	knowsDF, err := s.CreateTable("knows", knowsSchema(), knows)
	if err != nil {
		t.Fatal(err)
	}
	return s, person, knowsDF
}

func TestCreateTableAndCollect(t *testing.T) {
	_, person, _ := newTestSession(t)
	rows, err := person.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("Collect = %d rows", len(rows))
	}
	n, err := person.Count()
	if err != nil || n != 100 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestFilterProject(t *testing.T) {
	_, person, _ := newTestSession(t)
	rows, err := person.
		Filter(Eq(Col("city"), Lit("ams"))).
		SelectCols("id", "name").
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 34 { // ids 0,3,...,99
		t.Fatalf("filtered rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("projection arity = %d", len(r))
		}
		if r[0].Int64Val()%3 != 0 {
			t.Fatalf("wrong row passed filter: %v", r)
		}
	}
}

func TestFilterComparisonsAndLogic(t *testing.T) {
	_, person, _ := newTestSession(t)
	n, err := person.Filter(And(Ge(Col("age"), Lit(30)), Lt(Col("age"), Lit(40)))).Count()
	if err != nil {
		t.Fatal(err)
	}
	// ages are 20 + i%50 for i in 0..99: each age in [20,70) appears twice.
	if n != 20 {
		t.Fatalf("range filter = %d rows, want 20", n)
	}
	n2, err := person.Filter(Or(Eq(Col("id"), Lit(1)), Eq(Col("id"), Lit(2)))).Count()
	if err != nil || n2 != 2 {
		t.Fatalf("or filter = %d, %v", n2, err)
	}
	n3, err := person.Filter(Not(Eq(Col("city"), Lit("ams")))).Count()
	if err != nil || n3 != 66 {
		t.Fatalf("not filter = %d, %v", n3, err)
	}
}

func TestOrderByLimit(t *testing.T) {
	_, person, _ := newTestSession(t)
	rows, err := person.OrderBy("-id").Limit(5).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("limit rows = %d", len(rows))
	}
	for i, r := range rows {
		if want := int64(99 - i); r[0].Int64Val() != want {
			t.Fatalf("row %d id = %d, want %d", i, r[0].Int64Val(), want)
		}
	}
	// Multi-key sort: by city asc then id desc.
	rows2, err := person.OrderBy("city", "-id").Limit(3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows2[0][2].StringVal() != "ams" || rows2[0][0].Int64Val() != 99 {
		t.Fatalf("multi-key sort head = %v", rows2[0])
	}
}

func TestGroupByCountAndAggregates(t *testing.T) {
	_, person, _ := newTestSession(t)
	rows, err := person.GroupBy("city").Count().OrderBy("city").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0][0].StringVal() != "ams" || rows[0][1].Int64Val() != 34 {
		t.Fatalf("ams group = %v", rows[0])
	}
	// Global aggregates.
	aggRows, err := person.Agg(CountAll(), Min("age"), Max("age"), Avg("age"), Sum("age")).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(aggRows) != 1 {
		t.Fatalf("global agg rows = %d", len(aggRows))
	}
	r := aggRows[0]
	if r[0].Int64Val() != 100 || r[1].Int64Val() != 20 || r[2].Int64Val() != 69 {
		t.Fatalf("agg row = %v", r)
	}
	if got := r[3].Float64Val(); got < 43 || got > 46 {
		t.Fatalf("avg age = %v", got)
	}
}

func TestGlobalAggOnEmptyInput(t *testing.T) {
	_, person, _ := newTestSession(t)
	rows, err := person.Filter(Eq(Col("id"), Lit(-1))).Agg(CountAll()).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64Val() != 0 {
		t.Fatalf("count over empty = %v", rows)
	}
}

func TestVanillaJoin(t *testing.T) {
	_, person, knows := newTestSession(t)
	joined := knows.Join(person, Eq(Col("person1Id"), Col("person.id")))
	n, err := joined.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("join rows = %d, want 200", n)
	}
	// Join output carries both sides' columns.
	schema, err := joined.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 7 {
		t.Fatalf("join schema = %s", schema)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	s, _, _ := newTestSession(t)
	left, err := s.CreateTable("l", NewSchema(Field{Name: "k", Type: Int64}),
		[]Row{R(1), R(2), R(3)})
	if err != nil {
		t.Fatal(err)
	}
	right, err := s.CreateTable("r", NewSchema(Field{Name: "k2", Type: Int64}, Field{Name: "v", Type: String}),
		[]Row{R(1, "one"), R(1, "uno"), R(3, "three")})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := left.LeftJoin(right, Eq(Col("k"), Col("k2"))).OrderBy("k").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("left join rows = %d, want 4", len(rows))
	}
	// Key 2 must appear with NULL right side.
	found := false
	for _, r := range rows {
		if r[0].Int64Val() == 2 {
			found = true
			if !r[1].IsNull() || !r[2].IsNull() {
				t.Fatalf("unmatched row not null-padded: %v", r)
			}
		}
	}
	if !found {
		t.Fatal("unmatched left row missing")
	}
}

func TestCreateIndexAndGetRows(t *testing.T) {
	_, _, knows := newTestSession(t)
	idx, err := knows.CreateIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.GetRows(42)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := got.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("GetRows(42) = %d rows, want 2", len(rows))
	}
	targets := []int64{rows[0][1].Int64Val(), rows[1][1].Int64Val()}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	if targets[0] != 43 || targets[1] != 44 {
		t.Fatalf("GetRows(42) targets = %v", targets)
	}
	// The physical plan must use the index lookup, not a scan.
	explain, err := got.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "IndexLookup") {
		t.Fatalf("explain lacks IndexLookup:\n%s", explain)
	}
}

func TestEqualityFilterUsesIndexOnlyOnKeyColumn(t *testing.T) {
	_, _, knows := newTestSession(t)
	idx, err := knows.CreateIndexOn("person1Id")
	if err != nil {
		t.Fatal(err)
	}
	onKey, err := idx.Filter(Eq(Col("person1Id"), Lit(7))).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(onKey, "IndexLookup") {
		t.Fatalf("filter on key column did not use index:\n%s", onKey)
	}
	offKey, err := idx.Filter(Eq(Col("person2Id"), Lit(7))).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(offKey, "IndexLookup") {
		t.Fatalf("filter on non-key column used index:\n%s", offKey)
	}
	if !strings.Contains(offKey, "IndexedScan") {
		t.Fatalf("fallback is not an indexed scan:\n%s", offKey)
	}
}

func TestIndexLookupWithResidual(t *testing.T) {
	_, _, knows := newTestSession(t)
	idx, err := knows.CreateIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := idx.Filter(And(Eq(Col("person1Id"), Lit(42)), Eq(Col("person2Id"), Lit(43)))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].Int64Val() != 43 {
		t.Fatalf("residual-filtered lookup = %v", rows)
	}
}

func TestIndexedJoinMatchesVanillaJoin(t *testing.T) {
	_, person, knows := newTestSession(t)
	idx, err := knows.CreateIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	indexed := idx.Join(person, Eq(Col("person1Id"), Col("person.id")))
	explain, err := indexed.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "IndexedJoin") {
		t.Fatalf("explain lacks IndexedJoin:\n%s", explain)
	}
	gotRows, err := indexed.Collect()
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := knows.Join(person, Eq(Col("person1Id"), Col("person.id"))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("indexed join %d rows, vanilla %d", len(gotRows), len(wantRows))
	}
	if canon(gotRows) != canon(wantRows) {
		t.Fatal("indexed join result differs from vanilla join")
	}
}

// canon renders rows order-independently.
func canon(rows []Row) string {
	strs := make([]string, len(rows))
	for i, r := range rows {
		strs[i] = r.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, "\n")
}

func TestIndexedJoinProbeOnEitherSide(t *testing.T) {
	_, person, knows := newTestSession(t)
	idx, err := knows.CreateIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	// Indexed side on the right.
	j := person.Join(idx, Eq(Col("person.id"), Col("person1Id")))
	explain, err := j.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "IndexedJoin") {
		t.Fatalf("right-side indexed join not triggered:\n%s", explain)
	}
	n, err := j.Count()
	if err != nil || n != 200 {
		t.Fatalf("right-side indexed join = %d rows, %v", n, err)
	}
	// Column order: person columns first.
	rows, _ := j.Limit(1).Collect()
	if len(rows[0]) != 7 {
		t.Fatalf("join width = %d", len(rows[0]))
	}
}

func TestAppendRowsVisibleToNewQueries(t *testing.T) {
	_, _, knows := newTestSession(t)
	idx, err := knows.CreateIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := idx.GetRows(7)
	if err != nil {
		t.Fatal(err)
	}
	nBefore, _ := before.Count()

	if _, err := idx.AppendRowsSlice([]Row{R(int64(7), int64(55), int64(999))}); err != nil {
		t.Fatal(err)
	}
	after, err := idx.GetRows(7)
	if err != nil {
		t.Fatal(err)
	}
	nAfter, _ := after.Count()
	if nAfter != nBefore+1 {
		t.Fatalf("append not visible: %d -> %d", nBefore, nAfter)
	}
	// Total count includes the append.
	total, err := idx.Count()
	if err != nil || total != 201 {
		t.Fatalf("total after append = %d, %v", total, err)
	}
}

func TestAppendRowsFromDataFrame(t *testing.T) {
	s, _, knows := newTestSession(t)
	idx, err := knows.CreateIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := s.CreateTable("updates", knowsSchema(),
		[]Row{R(int64(1), int64(90), int64(100)), R(int64(1), int64(91), int64(101))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.AppendRows(updates); err != nil {
		t.Fatal(err)
	}
	rows, err := idx.GetRows(1)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := rows.Count()
	if n != 4 {
		t.Fatalf("GetRows(1) after append = %d, want 4", n)
	}
}

func TestCacheVanillaTable(t *testing.T) {
	_, person, _ := newTestSession(t)
	cached, err := person.Cache()
	if err != nil {
		t.Fatal(err)
	}
	n, err := cached.Count()
	if err != nil || n != 100 {
		t.Fatalf("cached count = %d, %v", n, err)
	}
	// Appends invalidate and rebuild transparently.
	if _, err := cached.AppendRowsSlice([]Row{R(int64(100), "new", "ams", int64(30))}); err != nil {
		t.Fatal(err)
	}
	n2, err := cached.Count()
	if err != nil || n2 != 101 {
		t.Fatalf("count after append = %d, %v", n2, err)
	}
}

func TestDerivedCache(t *testing.T) {
	_, person, _ := newTestSession(t)
	derived, err := person.Filter(Eq(Col("city"), Lit("ams"))).Cache()
	if err != nil {
		t.Fatal(err)
	}
	n, err := derived.Count()
	if err != nil || n != 34 {
		t.Fatalf("derived cache count = %d, %v", n, err)
	}
}

func TestUnionAndDistinct(t *testing.T) {
	_, person, _ := newTestSession(t)
	u := person.Union(person)
	n, err := u.Count()
	if err != nil || n != 200 {
		t.Fatalf("union count = %d, %v", n, err)
	}
	d, err := u.Distinct()
	if err != nil {
		t.Fatal(err)
	}
	nd, err := d.Count()
	if err != nil || nd != 100 {
		t.Fatalf("distinct count = %d, %v", nd, err)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	_, _, knows := newTestSession(t)
	k1, err := knows.As("k1")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := knows.As("k2")
	if err != nil {
		t.Fatal(err)
	}
	// Friends of friends: k1.person2Id = k2.person1Id.
	fof := k1.Join(k2, Eq(Col("k1.person2Id"), Col("k2.person1Id")))
	n, err := fof.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 { // 200 edges x 2 outgoing each
		t.Fatalf("friends-of-friends = %d, want 400", n)
	}
}

func TestShowAndExplain(t *testing.T) {
	_, person, _ := newTestSession(t)
	out, err := person.OrderBy("id").Show(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p00") || !strings.Contains(out, "id") {
		t.Fatalf("Show output:\n%s", out)
	}
	explain, err := person.Filter(Gt(Col("age"), Lit(30))).Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Analyzed", "Optimized", "Physical", "ColumnarScan", "Filter"} {
		if !strings.Contains(explain, want) {
			t.Fatalf("explain missing %q:\n%s", want, explain)
		}
	}
}

func TestExpressionProjection(t *testing.T) {
	_, person, _ := newTestSession(t)
	rows, err := person.
		Filter(Eq(Col("id"), Lit(5))).
		Select(As(Add(Col("age"), Lit(1)), "age1"), As(Fn("upper", Col("name")), "uname")).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64Val() != 26 || rows[0][1].StringVal() != "P05" {
		t.Fatalf("expression projection = %v", rows)
	}
}

func TestSessionTableManagement(t *testing.T) {
	s, _, _ := newTestSession(t)
	if _, err := s.Table("person"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Table("missing"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	if _, err := s.CreateTable("person", personSchema(), nil); err == nil {
		t.Fatal("duplicate table name accepted")
	}
	s.DropTable("person")
	if _, err := s.Table("person"); err == nil {
		t.Fatal("dropped table still visible")
	}
	if len(s.Tables()) == 0 {
		t.Fatal("Tables() empty")
	}
}

func TestSnapshotIsolationDuringQuery(t *testing.T) {
	// A query that holds a snapshot must not see appends that land midway.
	_, _, knows := newTestSession(t)
	idx, err := knows.CreateIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	core := idx.IndexedCore()
	if core == nil {
		t.Fatal("IndexedCore nil")
	}
	snap := core.Snapshot()
	if _, err := idx.AppendRowsSlice([]Row{R(int64(42), int64(77), int64(1))}); err != nil {
		t.Fatal(err)
	}
	rows, err := snap.GetRows(V(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("snapshot sees %d rows for key 42, want 2 (pre-append)", len(rows))
	}
	// New snapshot sees 3.
	rows2, err := core.Snapshot().GetRows(V(42))
	if err != nil || len(rows2) != 3 {
		t.Fatalf("fresh snapshot sees %d rows, %v", len(rows2), err)
	}
}
