package indexeddf

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"indexeddf/internal/stream"
	"indexeddf/internal/testutil"
)

func salesSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "region", Type: String},
		Field{Name: "amount", Type: Int64, Nullable: true},
	)
}

// newViewSession returns a session with an indexed "sales" table of n rows
// (id indexed; region one of 4 values; amount = id*10).
func newViewSession(t *testing.T, n int, cfg Config) (*Session, *DataFrame) {
	t.Helper()
	s := NewSession(cfg)
	df, err := s.CreateIndexedTable("sales", salesSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"emea", "amer", "apac", "anz"}
	var rows []Row
	for i := 0; i < n; i++ {
		rows = append(rows, R(int64(i), regions[i%len(regions)], int64(i*10)))
	}
	if _, err := df.AppendRowsSlice(rows); err != nil {
		t.Fatal(err)
	}
	return s, df
}

// sortRows orders rows by their string rendering (set comparison).
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j])
	})
}

func collectSorted(t *testing.T, s *Session, q string) []Row {
	t.Helper()
	rows, err := s.MustSQL(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	sortRows(rows)
	return rows
}

const salesAggSQL = "SELECT region, COUNT(*) AS cnt, SUM(amount) AS total FROM sales GROUP BY region"

func TestCreateMaterializedViewSQLAndRewrite(t *testing.T) {
	s, df := newViewSession(t, 100, Config{})
	want := collectSorted(t, s, salesAggSQL)

	rows, err := s.MustSQL("CREATE MATERIALIZED VIEW sales_by_region AS " + salesAggSQL).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !strings.Contains(rows[0][0].StringVal(), "created materialized view") {
		t.Fatalf("status = %v", rows)
	}

	// The same aggregate now plans as a view scan...
	explain, err := s.MustSQL(salesAggSQL).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "ViewScan sales_by_region") {
		t.Fatalf("explain missing ViewScan:\n%s", explain)
	}
	if !strings.Contains(explain, "answered from materialized view \"sales_by_region\"") {
		t.Fatalf("explain missing view annotation:\n%s", explain)
	}
	if strings.Contains(explain, "HashAggregate") {
		t.Fatalf("view-answered plan still aggregates:\n%s", explain)
	}

	// ...with identical results, also after further appends and deletes.
	if got := collectSorted(t, s, salesAggSQL); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("view-answered = %v\nwant %v", got, want)
	}
	if _, err := df.AppendRowsSlice([]Row{R(int64(1000), "emea", int64(7)), R(int64(1001), "apac", nil)}); err != nil {
		t.Fatal(err)
	}
	df.IndexedCore().Delete(V(int64(4)))
	v, ok := s.MaterializedView("sales_by_region")
	if !ok {
		t.Fatal("view not registered")
	}
	got := collectSorted(t, s, salesAggSQL)
	want = freshAggregate(t, s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after append+delete: view %v\nwant %v", got, want)
	}
	if v.RefreshedVersion() == 0 {
		t.Fatal("view never advertised a refreshed version")
	}
}

func TestViewRewriteDisabled(t *testing.T) {
	s, _ := newViewSession(t, 50, Config{DisableViewRewrite: true})
	if _, err := s.SQL("CREATE MATERIALIZED VIEW v AS " + salesAggSQL); err != nil {
		t.Fatal(err)
	}
	explain, err := s.MustSQL(salesAggSQL).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "ViewScan") {
		t.Fatalf("DisableViewRewrite ignored:\n%s", explain)
	}
	if !strings.Contains(explain, "HashAggregate") {
		t.Fatalf("expected from-scratch aggregate:\n%s", explain)
	}
	// The view is still queryable by name.
	rows := collectSorted(t, s, "SELECT region, cnt, total FROM v")
	if len(rows) != 4 {
		t.Fatalf("view rows = %d", len(rows))
	}
}

func TestSelectFromViewByName(t *testing.T) {
	s, _ := newViewSession(t, 80, Config{})
	if _, err := s.SQL("CREATE MATERIALIZED VIEW v AS " + salesAggSQL); err != nil {
		t.Fatal(err)
	}
	want := collectSorted(t, s, salesAggSQL)
	got := collectSorted(t, s, "SELECT * FROM v")
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("SELECT * FROM v = %v\nwant %v", got, want)
	}
	// Projection pushdown through the view's visible schema.
	cnts := collectSorted(t, s, "SELECT cnt FROM v")
	if len(cnts) != 4 || len(cnts[0]) != 1 {
		t.Fatalf("projected view scan = %v", cnts)
	}
}

func TestViewWithWhereAndHaving(t *testing.T) {
	s, _ := newViewSession(t, 120, Config{})
	def := "SELECT region, SUM(amount) AS total FROM sales WHERE amount > 100 GROUP BY region"
	if _, err := s.SQL("CREATE MATERIALIZED VIEW big_sales AS " + def); err != nil {
		t.Fatal(err)
	}
	// HAVING over the view-answered aggregate: the filter stays above the
	// view scan.
	q := def + " HAVING SUM(amount) > 1000"
	explain, err := s.MustSQL(q).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "ViewScan big_sales") {
		t.Fatalf("HAVING query not view-answered:\n%s", explain)
	}
	got := collectSorted(t, s, q)
	if len(got) == 0 {
		t.Fatal("no groups passed HAVING")
	}
	// An aggregate with a different WHERE must not match.
	other := "SELECT region, SUM(amount) AS total FROM sales WHERE amount > 999 GROUP BY region"
	explain, err = s.MustSQL(other).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "ViewScan") {
		t.Fatalf("mismatched filter wrongly view-answered:\n%s", explain)
	}
}

func TestDropAndRefreshMaterializedViewSQL(t *testing.T) {
	s, df := newViewSession(t, 40, Config{})
	if _, err := s.SQL("CREATE MATERIALIZED VIEW v AS " + salesAggSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SQL("REFRESH MATERIALIZED VIEW v"); err != nil {
		t.Fatal(err)
	}
	if names := s.MaterializedViews(); len(names) != 1 || names[0] != "v" {
		t.Fatalf("views = %v", names)
	}
	if _, err := s.SQL("DROP MATERIALIZED VIEW v"); err != nil {
		t.Fatal(err)
	}
	if names := s.MaterializedViews(); len(names) != 0 {
		t.Fatalf("views after drop = %v", names)
	}
	explain, err := s.MustSQL(salesAggSQL).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "ViewScan") {
		t.Fatal("dropped view still answers queries")
	}
	// Dropping the last view turned change capture off: further appends
	// must not accumulate log records.
	if df.IndexedCore().ChangeCaptureEnabled() {
		t.Fatal("capture still on after last view dropped")
	}
	if _, err := df.AppendRowsSlice([]Row{R(int64(9000), "emea", int64(1))}); err != nil {
		t.Fatal(err)
	}
	if n := df.IndexedCore().ChangeLogSize(); n != 0 {
		t.Fatalf("change log grew to %d with no views", n)
	}
	// The name is reusable.
	if _, err := s.SQL("CREATE MATERIALIZED VIEW v AS " + salesAggSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SQL("REFRESH MATERIALIZED VIEW missing"); err == nil {
		t.Fatal("refreshing a missing view should fail")
	}
}

func TestCreateViewRejectsUnsupportedQueries(t *testing.T) {
	s, _ := newViewSession(t, 10, Config{})
	for _, q := range []string{
		"CREATE MATERIALIZED VIEW bad1 AS SELECT id, region FROM sales",                                 // no aggregation
		"CREATE MATERIALIZED VIEW bad2 AS SELECT region, COUNT(*) c FROM sales GROUP BY region LIMIT 1", // limit
	} {
		if _, err := s.SQL(q); err == nil {
			t.Fatalf("%s: expected rejection", q)
		}
	}
	// Vanilla (non-indexed) base tables are rejected too.
	if _, err := s.CreateTable("plain", salesSchema(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SQL("CREATE MATERIALIZED VIEW bad3 AS SELECT region, COUNT(*) c FROM plain GROUP BY region"); err == nil {
		t.Fatal("view over vanilla table should be rejected")
	}
}

func TestViewCompactRegression(t *testing.T) {
	// Compaction must not break a view's delta cursor: the view detects
	// the change-log gap and fully recomputes, staying value-identical.
	s, df := newViewSession(t, 60, Config{})
	if _, err := s.SQL("CREATE MATERIALIZED VIEW v AS " + salesAggSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MustSQL(salesAggSQL).Collect(); err != nil {
		t.Fatal(err)
	}
	core := df.IndexedCore()
	// Overwrite chains and delete keys, then compact both ways.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		k := int64(rng.Intn(60))
		if rng.Intn(3) == 0 {
			core.Delete(V(k))
		} else if _, err := df.AppendRowsSlice([]Row{R(k, "emea", k)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := core.Compact(false); err != nil {
		t.Fatal(err)
	}
	got := collectSorted(t, s, salesAggSQL)
	want := freshAggregate(t, s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after Compact(false): view %v\nwant %v", got, want)
	}
	if _, err := core.Compact(true); err != nil { // drops old chain versions
		t.Fatal(err)
	}
	got = collectSorted(t, s, salesAggSQL)
	want = freshAggregate(t, s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after Compact(true): view %v\nwant %v", got, want)
	}
	// And the delta path resumes afterwards.
	if _, err := df.AppendRowsSlice([]Row{R(int64(7000), "anz", int64(1))}); err != nil {
		t.Fatal(err)
	}
	got = collectSorted(t, s, salesAggSQL)
	want = freshAggregate(t, s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-compact delta: view %v\nwant %v", got, want)
	}
}

// freshAggregate recomputes salesAggSQL from scratch in a rewrite-free
// session sharing the same storage (registering the same core table).
func freshAggregate(t *testing.T, s *Session) []Row {
	t.Helper()
	rows, err := s.aggregateWithoutViews(salesAggSQL)
	if err != nil {
		t.Fatal(err)
	}
	sortRows(rows)
	return rows
}

func TestStreamIngestKeepsViewFresh(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, _ := newViewSession(t, 20, Config{})
	v, err := s.CreateMaterializedView("v", salesAggSQL)
	if err != nil {
		t.Fatal(err)
	}
	topic := stream.NewTopic("sales-updates", 3)
	for i := 0; i < 50; i++ {
		row := R(int64(100+i), []string{"emea", "apac"}[i%2], int64(i))
		topic.Produce(row[0], row)
	}
	applied, err := s.IngestTopic(topic, "applier", "sales", 16)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 50 {
		t.Fatalf("applied = %d", applied)
	}
	// Ingestion refreshed the view without any query: no pending delta.
	version := v.RefreshedVersion()
	got := collectSorted(t, s, salesAggSQL)
	want := freshAggregate(t, s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after ingest: view %v\nwant %v", got, want)
	}
	if v.RefreshedVersion() != version {
		t.Fatal("query should have found the ingested view already fresh")
	}
	// A second drain with nothing pending is a no-op.
	if n, err := s.IngestTopic(topic, "applier", "sales", 16); err != nil || n != 0 {
		t.Fatalf("re-drain = %d, %v", n, err)
	}
}
