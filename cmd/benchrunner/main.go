// Command benchrunner regenerates the paper's evaluation tables in the
// same layout as the figures:
//
//	benchrunner -fig 2        Figure 2 — SQL operators, IndexedDF vs Spark
//	benchrunner -fig 3        Figure 3 — SNB simple reads SQ1–SQ7
//	benchrunner -fig mem      §2 memory-overhead claim
//	benchrunner -fig all      everything plus the max-speedup summary (§5)
//
// Flags -sf, -seed and -iters scale the run. Absolute times depend on this
// machine; the shapes (who wins, by what factor) are what reproduce the
// paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"indexeddf/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "which experiment: 2, 3, mem, all")
	sf := flag.Float64("sf", 1.0, "SNB scale factor (1.0 ~ 1k persons)")
	seed := flag.Int64("seed", 42, "dataset seed")
	iters := flag.Int("iters", 5, "timed iterations per operator")
	flag.Parse()

	if err := run(*fig, *sf, *seed, *iters); err != nil {
		log.Fatal(err)
	}
}

func run(fig string, sf float64, seed int64, iters int) error {
	var all []bench.Measurement
	switch fig {
	case "2":
		ms, err := figure2(sf, seed, iters)
		if err != nil {
			return err
		}
		all = ms
	case "3":
		ms, err := figure3(sf, seed, iters)
		if err != nil {
			return err
		}
		all = ms
	case "mem":
		return memory(sf, seed)
	case "all":
		m2, err := figure2(sf, seed, iters)
		if err != nil {
			return err
		}
		m3, err := figure3(sf, seed, iters)
		if err != nil {
			return err
		}
		if err := memory(sf, seed); err != nil {
			return err
		}
		all = append(m2, m3...)
	default:
		return fmt.Errorf("unknown -fig %q (want 2, 3, mem or all)", fig)
	}
	if fig == "all" {
		best := bench.Measurement{}
		for _, m := range all {
			if m.Speedup() > best.Speedup() {
				best = m
			}
		}
		fmt.Printf("\n§5 claim — maximum speedup vs vanilla: %.1fx (%s); paper reports \"up to 8X\"\n",
			best.Speedup(), best.Name)
	}
	return nil
}

func figure2(sf float64, seed int64, iters int) ([]bench.Measurement, error) {
	fmt.Printf("== Figure 2: SQL operators on person_knows_person (sf=%.2f, cluster regime: no broadcast) ==\n", sf)
	e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: sf, Seed: seed, BroadcastThreshold: 1})
	if err != nil {
		return nil, err
	}
	ms, err := bench.Compare(e, bench.Figure2Ops(e), iters)
	if err != nil {
		return nil, err
	}
	printTable(ms)
	return ms, nil
}

func figure3(sf float64, seed int64, iters int) ([]bench.Measurement, error) {
	fmt.Printf("\n== Figure 3: SNB simple read queries SQ1-SQ7 (sf=%.2f, %d params each) ==\n", sf, 8)
	e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: sf, Seed: seed})
	if err != nil {
		return nil, err
	}
	ms, err := bench.Compare(e, bench.Figure3Ops(e), iters)
	if err != nil {
		return nil, err
	}
	printTable(ms)
	return ms, nil
}

func memory(sf float64, seed int64) error {
	fmt.Printf("\n== §2 claim: memory overhead of the Indexed DataFrame (knows table, sf=%.2f) ==\n", sf)
	e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: sf, Seed: seed})
	if err != nil {
		return err
	}
	r := bench.Memory(e)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "vanilla columnar cache\t%d bytes\n", r.ColumnarBytes)
	fmt.Fprintf(w, "indexed row data (encoded)\t%d bytes\n", r.DataBytes)
	fmt.Fprintf(w, "indexed ctrie estimate\t%d bytes\n", r.IndexBytes)
	fmt.Fprintf(w, "indexed reserved batches\t%d bytes\n", r.BatchBytes)
	fmt.Fprintf(w, "overhead ratio (data+index)/columnar\t%.2fx\n", r.OverheadPerCopy)
	return w.Flush()
}

func printTable(ms []bench.Measurement) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "query\tIndexedDF [ms]\tSpark [ms]\tspeedup\trows\t")
	for _, m := range ms {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2fx\t%d\t\n",
			m.Name, msf(m.IndexedTime), msf(m.VanillaTime), m.Speedup(), m.IndexedRows)
	}
	w.Flush()
	fmt.Println(strings.Repeat("-", 56))
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
