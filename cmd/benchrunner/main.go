// Command benchrunner regenerates the paper's evaluation tables in the
// same layout as the figures:
//
//	benchrunner -fig 2        Figure 2 — SQL operators, IndexedDF vs Spark
//	benchrunner -fig 3        Figure 3 — SNB simple reads SQ1–SQ7
//	benchrunner -fig mem      §2 memory-overhead claim
//	benchrunner -fig view     materialized views — delta refresh vs recompute
//	benchrunner -fig prepare  prepared statements — plan cache vs parse-per-call
//	benchrunner -fig shuffle  batch (columnar) exchange vs row exchange, 1M-row GROUP BY
//	benchrunner -fig sort     batch sort & fused top-n vs row sort, 1M-row ORDER BY
//	benchrunner -fig memacct  memory-accounting overhead — budgets on vs off
//	benchrunner -fig obs      observability overhead — stats on vs off
//	benchrunner -fig spill    out-of-core execution — 10x-over-budget parallel sort, spilling GROUP BY, grace join
//	benchrunner -fig adapt    adaptive filter cascade vs static fused kernel on a mis-ordered WHERE clause
//	benchrunner -fig all      everything plus the max-speedup summary (§5)
//
// Flags -sf, -seed and -iters scale the run; -rowengine forces
// row-at-a-time execution (the vectorized engine is the default), letting
// two runs compare the engines process-to-process; -json writes the
// measurements as machine-readable BENCH_*.json so successive PRs can
// track the performance trajectory. Absolute times depend on this machine;
// the shapes (who wins, by what factor) are what reproduce the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"indexeddf/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "which experiment: 2, 3, mem, all")
	sf := flag.Float64("sf", 1.0, "SNB scale factor (1.0 ~ 1k persons)")
	seed := flag.Int64("seed", 42, "dataset seed")
	iters := flag.Int("iters", 5, "timed iterations per operator")
	rowEngine := flag.Bool("rowengine", false, "disable the vectorized engine (row-at-a-time execution)")
	jsonPath := flag.String("json", "", "write measurements as JSON (e.g. BENCH_results.json)")
	flag.Parse()

	if err := run(*fig, *sf, *seed, *iters, *rowEngine, *jsonPath); err != nil {
		log.Fatal(err)
	}
}

// report is the machine-readable output written by -json.
type report struct {
	Figure    string               `json:"figure"`
	ScaleF    float64              `json:"scale_factor"`
	Seed      int64                `json:"seed"`
	Iters     int                  `json:"iters"`
	RowEngine bool                 `json:"row_engine"`
	GoVersion string               `json:"go_version"`
	Timestamp string               `json:"timestamp"`
	Results   []measurementJSON    `json:"results,omitempty"`
	Memory    *bench.MemoryReport  `json:"memory,omitempty"`
	Shuffle   *bench.ShuffleReport `json:"shuffle,omitempty"`
	Sort      *bench.SortReport    `json:"sort,omitempty"`
	MemAcct   *bench.MemAcctReport `json:"memacct,omitempty"`
	Obs       *bench.ObsReport     `json:"obs,omitempty"`
	Spill     *bench.SpillReport   `json:"spill,omitempty"`
	Adapt     *bench.AdaptReport   `json:"adapt,omitempty"`
}

type measurementJSON struct {
	Name        string  `json:"name"`
	IndexedNs   int64   `json:"indexed_ns"`
	VanillaNs   int64   `json:"vanilla_ns"`
	Speedup     float64 `json:"speedup"`
	IndexedRows int     `json:"rows"`
}

func toJSON(ms []bench.Measurement) []measurementJSON {
	out := make([]measurementJSON, len(ms))
	for i, m := range ms {
		out[i] = measurementJSON{Name: m.Name, IndexedNs: int64(m.IndexedTime),
			VanillaNs: int64(m.VanillaTime), Speedup: m.Speedup(), IndexedRows: m.IndexedRows}
	}
	return out
}

func writeJSON(path string, r report) error {
	r.GoVersion = runtime.Version()
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// jsonName derives a per-figure file name from the -json flag: with
// -json BENCH.json, figure 2 lands in BENCH_fig2.json and so on; a single
// figure run keeps the name as given.
func jsonName(base, fig string, multi bool) string {
	if !multi {
		return base
	}
	ext := ".json"
	stem := strings.TrimSuffix(base, ext)
	return fmt.Sprintf("%s_fig%s%s", stem, fig, ext)
}

func run(fig string, sf float64, seed int64, iters int, rowEngine bool, jsonPath string) error {
	engine := "vectorized"
	if rowEngine {
		engine = "row-at-a-time"
	}
	fmt.Printf("engine: %s\n", engine)
	base := report{ScaleF: sf, Seed: seed, Iters: iters, RowEngine: rowEngine}
	emit := func(figName string, ms []bench.Measurement, mem *bench.MemoryReport, multi bool) error {
		if jsonPath == "" {
			return nil
		}
		r := base
		r.Figure = figName
		r.Results = toJSON(ms)
		r.Memory = mem
		return writeJSON(jsonName(jsonPath, figName, multi), r)
	}
	var all []bench.Measurement
	switch fig {
	case "2":
		ms, err := figure2(sf, seed, iters, rowEngine)
		if err != nil {
			return err
		}
		if err := emit("2", ms, nil, false); err != nil {
			return err
		}
		all = ms
	case "3":
		ms, err := figure3(sf, seed, iters, rowEngine)
		if err != nil {
			return err
		}
		if err := emit("3", ms, nil, false); err != nil {
			return err
		}
		all = ms
	case "mem":
		r, err := memory(sf, seed, rowEngine)
		if err != nil {
			return err
		}
		return emit("mem", nil, r, false)
	case "view":
		ms, err := viewMaintenance(iters)
		if err != nil {
			return err
		}
		if err := emit("view", ms, nil, false); err != nil {
			return err
		}
	case "prepare":
		ms, err := preparedStatements(iters)
		if err != nil {
			return err
		}
		if err := emit("prepare", ms, nil, false); err != nil {
			return err
		}
	case "shuffle":
		r, err := shuffleExchange(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "shuffle"
			rep.Shuffle = &r
			if err := writeJSON(jsonPath, rep); err != nil {
				return err
			}
		}
	case "sort":
		r, err := sortOrderBy(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "sort"
			rep.Sort = &r
			if err := writeJSON(jsonPath, rep); err != nil {
				return err
			}
		}
	case "memacct":
		r, err := memAccounting(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "memacct"
			rep.MemAcct = &r
			if err := writeJSON(jsonPath, rep); err != nil {
				return err
			}
		}
	case "obs":
		r, err := obsOverhead(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "obs"
			rep.Obs = &r
			if err := writeJSON(jsonPath, rep); err != nil {
				return err
			}
		}
	case "spill":
		r, err := spillOutOfCore(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "spill"
			rep.Spill = &r
			if err := writeJSON(jsonPath, rep); err != nil {
				return err
			}
		}
	case "adapt":
		r, err := adaptiveFilter(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "adapt"
			rep.Adapt = &r
			if err := writeJSON(jsonPath, rep); err != nil {
				return err
			}
		}
	case "all":
		m2, err := figure2(sf, seed, iters, rowEngine)
		if err != nil {
			return err
		}
		if err := emit("2", m2, nil, true); err != nil {
			return err
		}
		m3, err := figure3(sf, seed, iters, rowEngine)
		if err != nil {
			return err
		}
		if err := emit("3", m3, nil, true); err != nil {
			return err
		}
		mr, err := memory(sf, seed, rowEngine)
		if err != nil {
			return err
		}
		if err := emit("mem", nil, mr, true); err != nil {
			return err
		}
		mv, err := viewMaintenance(iters)
		if err != nil {
			return err
		}
		if err := emit("view", mv, nil, true); err != nil {
			return err
		}
		mp, err := preparedStatements(iters)
		if err != nil {
			return err
		}
		if err := emit("prepare", mp, nil, true); err != nil {
			return err
		}
		sr, err := shuffleExchange(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "shuffle"
			rep.Shuffle = &sr
			if err := writeJSON(jsonName(jsonPath, "shuffle", true), rep); err != nil {
				return err
			}
		}
		so, err := sortOrderBy(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "sort"
			rep.Sort = &so
			if err := writeJSON(jsonName(jsonPath, "sort", true), rep); err != nil {
				return err
			}
		}
		ma, err := memAccounting(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "memacct"
			rep.MemAcct = &ma
			if err := writeJSON(jsonName(jsonPath, "memacct", true), rep); err != nil {
				return err
			}
		}
		ob, err := obsOverhead(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "obs"
			rep.Obs = &ob
			if err := writeJSON(jsonName(jsonPath, "obs", true), rep); err != nil {
				return err
			}
		}
		sp, err := spillOutOfCore(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "spill"
			rep.Spill = &sp
			if err := writeJSON(jsonName(jsonPath, "spill", true), rep); err != nil {
				return err
			}
		}
		ad, err := adaptiveFilter(iters)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			rep := base
			rep.Figure = "adapt"
			rep.Adapt = &ad
			if err := writeJSON(jsonName(jsonPath, "adapt", true), rep); err != nil {
				return err
			}
		}
		// The §5 summary below compares IndexedDF vs vanilla Spark; the
		// view measurements compare maintenance strategies, so they stay
		// out of it.
		all = append(m2, m3...)
	default:
		return fmt.Errorf("unknown -fig %q (want 2, 3, mem, view, prepare, shuffle, sort, memacct, obs, spill, adapt or all)", fig)
	}
	if fig == "all" {
		best := bench.Measurement{}
		for _, m := range all {
			if m.Speedup() > best.Speedup() {
				best = m
			}
		}
		fmt.Printf("\n§5 claim — maximum speedup vs vanilla: %.1fx (%s); paper reports \"up to 8X\"\n",
			best.Speedup(), best.Name)
	}
	return nil
}

func shuffleExchange(iters int) (bench.ShuffleReport, error) {
	fmt.Printf("\n== Batch exchange vs row exchange: 1M-row GROUP BY through the shuffle (100k groups) ==\n")
	r, err := bench.ShuffleGroupBy(1_000_000, 100_000, iters)
	if err != nil {
		return bench.ShuffleReport{}, err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "exchange\twall [ms]\talloc [MB]\t")
	fmt.Fprintf(w, "batch (columnar)\t%.2f\t%.1f\t\n", msf(r.BatchTime), float64(r.BatchAllocs)/(1<<20))
	fmt.Fprintf(w, "row\t%.2f\t%.1f\t\n", msf(r.RowTime), float64(r.RowAllocs)/(1<<20))
	w.Flush()
	fmt.Printf("batch exchange: %.2fx faster, %.2fx fewer allocated bytes (%d result groups)\n",
		r.Speedup(), r.AllocRatio(), r.ResultRows)
	fmt.Println(strings.Repeat("-", 56))
	return r, nil
}

func sortOrderBy(iters int) (bench.SortReport, error) {
	const rows, topN = 1_000_000, 100
	fmt.Printf("\n== Batch sort vs row sort: 1M-row ORDER BY, and the fused top-n (LIMIT %d) ==\n", topN)
	r, err := bench.SortOrderBy(rows, topN, iters)
	if err != nil {
		return bench.SortReport{}, err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "workload\tbatch [ms]\trow [ms]\tspeedup\tbatch alloc [MB]\trow alloc [MB]\t")
	fmt.Fprintf(w, "ORDER BY (full sort)\t%.2f\t%.2f\t%.2fx\t%.1f\t%.1f\t\n",
		msf(r.BatchSort), msf(r.RowSort), r.SortSpeedup(),
		float64(r.BatchSortAllocs)/(1<<20), float64(r.RowSortAllocs)/(1<<20))
	fmt.Fprintf(w, "ORDER BY ... LIMIT %d (top-n)\t%.2f\t%.2f\t%.2fx\t%.1f\t%.1f\t\n",
		topN, msf(r.BatchTopN), msf(r.RowTopN), r.TopNSpeedup(),
		float64(r.BatchTopNAllocs)/(1<<20), float64(r.RowTopNAllocs)/(1<<20))
	w.Flush()
	fmt.Printf("batch sort: %.2fx faster; top-n: %.2fx faster than the row sort (%d rows)\n",
		r.SortSpeedup(), r.TopNSpeedup(), r.Rows)
	fmt.Println(strings.Repeat("-", 56))
	return r, nil
}

func memAccounting(iters int) (bench.MemAcctReport, error) {
	fmt.Printf("\n== Memory accounting overhead: budgets on vs off, 1M-row GROUP BY + top-n pipeline ==\n")
	r, err := bench.MemAcctPipeline(1_000_000, 100_000, iters)
	if err != nil {
		return bench.MemAcctReport{}, err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "budgets\twall [ms]\talloc [MB]\t")
	fmt.Fprintf(w, "on (pool + per-query tracker)\t%.2f\t%.1f\t\n", msf(r.AcctTime), float64(r.AcctAllocs)/(1<<20))
	fmt.Fprintf(w, "off\t%.2f\t%.1f\t\n", msf(r.BareTime), float64(r.BareAllocs)/(1<<20))
	w.Flush()
	fmt.Printf("accounting overhead: %.2fx wall (%d result rows)\n", r.Overhead(), r.ResultRows)
	fmt.Println(strings.Repeat("-", 56))
	return r, nil
}

func obsOverhead(iters int) (bench.ObsReport, error) {
	fmt.Printf("\n== Observability overhead: per-operator stats on vs off, 1M-row GROUP BY + top-n pipeline ==\n")
	r, err := bench.ObsPipeline(1_000_000, 100_000, iters)
	if err != nil {
		return bench.ObsReport{}, err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "observability\twall [ms]\talloc [MB]\t")
	fmt.Fprintf(w, "on (operator stats + tracing)\t%.2f\t%.1f\t\n", msf(r.ObsTime), float64(r.ObsAllocs)/(1<<20))
	fmt.Fprintf(w, "off\t%.2f\t%.1f\t\n", msf(r.BareTime), float64(r.BareAllocs)/(1<<20))
	w.Flush()
	fmt.Printf("observability overhead: %.2fx wall (%d result rows)\n", r.Overhead(), r.ResultRows)
	fmt.Println(strings.Repeat("-", 56))
	return r, nil
}

func spillOutOfCore(iters int) (bench.SpillReport, error) {
	const rows, groups, budget = 200_000, 3_000, int64(2 << 20)
	fmt.Printf("\n== Out-of-core execution: %dk-row sort, GROUP BY (exchange & group-table spill), grace join — ~10x over a %d MiB budget vs unconstrained ==\n",
		rows/1000, budget>>20)
	r, err := bench.SpillPipeline(rows, groups, budget, iters)
	if err != nil {
		return bench.SpillReport{}, err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "workload\tspill [ms]\tin-mem [ms]\tslowdown\truns\tspilled [MB]\t")
	fmt.Fprintf(w, "ORDER BY (parallel range merge)\t%.2f\t%.2f\t%.2fx\t%d\t%.1f\t\n",
		msf(r.SortSpill), msf(r.SortInMem), r.SortSlowdown(), r.SortRuns, float64(r.SortBytes)/(1<<20))
	fmt.Fprintf(w, "GROUP BY (spilled shuffle)\t%.2f\t%.2f\t%.2fx\t%d\t%.1f\t\n",
		msf(r.AggSpill), msf(r.AggInMem), r.AggSlowdown(), r.AggRuns, float64(r.AggBytes)/(1<<20))
	fmt.Fprintf(w, "GROUP BY (group-table fan-out)\t%.2f\t%.2f\t%.2fx\t%d\t%.1f\t\n",
		msf(r.AggOvfSpill), msf(r.AggOvfInMem), r.AggOvfSlowdown(), r.AggOvfRuns, float64(r.AggOvfBytes)/(1<<20))
	fmt.Fprintf(w, "JOIN (grace hash join)\t%.2f\t%.2f\t%.2fx\t%d\t%.1f\t\n",
		msf(r.GraceSpill), msf(r.GraceInMem), r.GraceSlowdown(), r.GraceRuns, float64(r.GraceBytes)/(1<<20))
	w.Flush()
	fmt.Printf("out-of-core: sort %.2fx, group-by %.2fx of in-memory wall time (%d / %d result rows)\n",
		r.SortSlowdown(), r.AggSlowdown(), r.SortResultRows, r.AggResultRows)
	fmt.Printf("parallel merge ablation: single k-way merge %.2f ms vs parallel %.2f ms (%.2fx)\n",
		msf(r.SortSingle), msf(r.SortSpill), r.ParallelSpeedup())
	fmt.Println(strings.Repeat("-", 56))
	return r, nil
}

func adaptiveFilter(iters int) (bench.AdaptReport, error) {
	const rows, ingestRows = 1_000_000, 100_000
	fmt.Printf("\n== Adaptive filter cascade: 1M-row scan, deliberately mis-ordered 4-conjunct WHERE (sel ~1.0 string, 0.9, 0.5, 0.001) ==\n")
	r, err := bench.AdaptiveFilter(rows, ingestRows, iters)
	if err != nil {
		return bench.AdaptReport{}, err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "engine\twall [ms]\talloc [MB]\t")
	fmt.Fprintf(w, "static fused kernel (mis-ordered)\t%.2f\t%.1f\t\n", msf(r.StaticTime), float64(r.StaticAllocs)/(1<<20))
	fmt.Fprintf(w, "adaptive cascade (mis-ordered)\t%.2f\t%.1f\t\n", msf(r.AdaptiveTime), float64(r.AdaptiveAllocs)/(1<<20))
	fmt.Fprintf(w, "adaptive cascade (hand-ordered)\t%.2f\t%.1f\t\n", msf(r.HandTime), float64(r.HandAllocs)/(1<<20))
	w.Flush()
	fmt.Printf("adaptive vs static: %.2fx faster; vs hand-ordered oracle: %.2fx wall (%d result rows)\n",
		r.Speedup(), r.HandGap(), r.ResultRows)
	fmt.Printf("ingest statistics overhead: %.2fx wall (%dk rows appended, stats on %.2f ms vs off %.2f ms)\n",
		r.IngestOverhead(), r.IngestRows/1000, msf(r.IngestStats), msf(r.IngestBare))
	fmt.Println(strings.Repeat("-", 56))
	return r, nil
}

func preparedStatements(iters int) ([]bench.Measurement, error) {
	fmt.Printf("\n== Prepared statements: plan-cache execution vs parse-per-call SQL (indexed point lookup) ==\n")
	var ms []bench.Measurement
	for _, baseRows := range []int{10_000, 100_000} {
		m, err := bench.PreparedLookup(baseRows, iters)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "workload\tprepared [ms]\tad-hoc SQL [ms]\tspeedup\t")
	for _, m := range ms {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.2fx\t\n",
			m.Name, msf(m.IndexedTime), msf(m.VanillaTime), m.Speedup())
	}
	w.Flush()
	fmt.Println(strings.Repeat("-", 56))
	return ms, nil
}

func viewMaintenance(iters int) ([]bench.Measurement, error) {
	fmt.Printf("\n== Materialized views: delta refresh vs full recompute (128 groups, 256-row update batches) ==\n")
	var ms []bench.Measurement
	for _, baseRows := range []int{1_000, 100_000} {
		m, err := bench.ViewMaintenance(baseRows, 256, iters)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	printViewTable(ms)
	return ms, nil
}

func printViewTable(ms []bench.Measurement) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "workload\tdelta refresh [ms]\tfull recompute [ms]\tspeedup\tgroups\t")
	for _, m := range ms {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.2fx\t%d\t\n",
			m.Name, msf(m.IndexedTime), msf(m.VanillaTime), m.Speedup(), m.IndexedRows)
	}
	w.Flush()
	fmt.Println(strings.Repeat("-", 56))
}

func figure2(sf float64, seed int64, iters int, rowEngine bool) ([]bench.Measurement, error) {
	fmt.Printf("== Figure 2: SQL operators on person_knows_person (sf=%.2f, cluster regime: no broadcast) ==\n", sf)
	e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: sf, Seed: seed, BroadcastThreshold: 1,
		DisableVectorized: rowEngine})
	if err != nil {
		return nil, err
	}
	ms, err := bench.Compare(e, bench.Figure2Ops(e), iters)
	if err != nil {
		return nil, err
	}
	printTable(ms)
	return ms, nil
}

func figure3(sf float64, seed int64, iters int, rowEngine bool) ([]bench.Measurement, error) {
	fmt.Printf("\n== Figure 3: SNB simple read queries SQ1-SQ7 (sf=%.2f, %d params each) ==\n", sf, 8)
	e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: sf, Seed: seed, DisableVectorized: rowEngine})
	if err != nil {
		return nil, err
	}
	ms, err := bench.Compare(e, bench.Figure3Ops(e), iters)
	if err != nil {
		return nil, err
	}
	printTable(ms)
	return ms, nil
}

func memory(sf float64, seed int64, rowEngine bool) (*bench.MemoryReport, error) {
	fmt.Printf("\n== §2 claim: memory overhead of the Indexed DataFrame (knows table, sf=%.2f) ==\n", sf)
	e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: sf, Seed: seed, DisableVectorized: rowEngine})
	if err != nil {
		return nil, err
	}
	r := bench.Memory(e)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "vanilla columnar cache\t%d bytes\n", r.ColumnarBytes)
	fmt.Fprintf(w, "indexed row data (encoded)\t%d bytes\n", r.DataBytes)
	fmt.Fprintf(w, "indexed ctrie estimate\t%d bytes\n", r.IndexBytes)
	fmt.Fprintf(w, "indexed reserved batches\t%d bytes\n", r.BatchBytes)
	fmt.Fprintf(w, "overhead ratio (data+index)/columnar\t%.2fx\n", r.OverheadPerCopy)
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return &r, nil
}

func printTable(ms []bench.Measurement) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "query\tIndexedDF [ms]\tSpark [ms]\tspeedup\trows\t")
	for _, m := range ms {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2fx\t%d\t\n",
			m.Name, msf(m.IndexedTime), msf(m.VanillaTime), m.Speedup(), m.IndexedRows)
	}
	w.Flush()
	fmt.Println(strings.Repeat("-", 56))
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
