package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes one BENCH-style file with the shapes benchrunner
// produces (nested report objects and named result lists).
func writeBench(t *testing.T, dir, name string, doc any) {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func sortDoc(batchNs, rowNs, batchAlloc float64) map[string]any {
	return map[string]any{
		"figure": "sort",
		"sort": map[string]any{
			"sort_batch_ns":          batchNs,
			"sort_row_ns":            rowNs,
			"sort_batch_alloc_bytes": batchAlloc,
		},
	}
}

func resultsDoc(opNs float64) map[string]any {
	return map[string]any{
		"figure": "2",
		"results": []any{
			map[string]any{"name": "filter", "indexed_ns": opNs, "vanilla_ns": 2 * opNs},
		},
	}
}

func th() thresholds { return thresholds{wall: 0.25, alloc: 0.30, minWallNs: 1e6} }

// TestGatePassesAtParity: identical numbers pass.
func TestGatePassesAtParity(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_sort.json", sortDoc(100e6, 200e6, 50<<20))
	writeBench(t, fresh, "BENCH_sort.json", sortDoc(100e6, 200e6, 50<<20))
	report, failed, err := check(base, fresh, th())
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("parity run failed the gate:\n%s", report)
	}
}

// TestGateFailsOnWallRegression: a synthetic >25% wall-clock regression
// must fail the gate — the property the CI dry-run step demonstrates.
func TestGateFailsOnWallRegression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_sort.json", sortDoc(100e6, 200e6, 50<<20))
	writeBench(t, fresh, "BENCH_sort.json", sortDoc(130e6, 200e6, 50<<20)) // +30% batch sort
	report, failed, err := check(base, fresh, th())
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("+30%% wall regression passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL wall  sort.sort_batch_ns") {
		t.Fatalf("report does not name the regressed metric:\n%s", report)
	}
	// Just inside the threshold passes.
	writeBench(t, fresh, "BENCH_sort.json", sortDoc(124e6, 200e6, 50<<20)) // +24%
	_, failed, err = check(base, fresh, th())
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("+24% wall change tripped the 25% gate")
	}
}

// TestGateFailsOnAllocRegression: alloc-bytes have their own threshold.
func TestGateFailsOnAllocRegression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_sort.json", sortDoc(100e6, 200e6, 100<<20))
	writeBench(t, fresh, "BENCH_sort.json", sortDoc(100e6, 200e6, 140<<20)) // +40% allocs
	report, failed, err := check(base, fresh, th())
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("+40%% alloc regression passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL alloc sort.sort_batch_alloc_bytes") {
		t.Fatalf("report does not name the regressed metric:\n%s", report)
	}
}

// TestGateNamedResultsAndNoiseFloor: result-list metrics are keyed by
// name, and sub-floor timings never fail (micro-benchmarks jitter).
func TestGateNamedResultsAndNoiseFloor(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_results.json", resultsDoc(10e6))
	writeBench(t, fresh, "BENCH_results.json", resultsDoc(20e6)) // 2x, way past gate
	report, failed, err := check(base, fresh, th())
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("named result regression passed the gate")
	}
	if !strings.Contains(report, "results.filter.indexed_ns") {
		t.Fatalf("result metrics not keyed by name:\n%s", report)
	}
	// The same 2x on a 0.1ms metric sits under the 1ms noise floor.
	writeBench(t, base, "BENCH_results.json", resultsDoc(0.1e6))
	writeBench(t, fresh, "BENCH_results.json", resultsDoc(0.2e6))
	_, failed, err = check(base, fresh, th())
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("sub-noise-floor metric failed the gate")
	}
}

// TestGateFailsOnMissingMetric: a baseline metric vanishing from fresh
// output needs a deliberate -update, not a silent pass.
func TestGateFailsOnMissingMetric(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_sort.json", sortDoc(100e6, 200e6, 50<<20))
	writeBench(t, fresh, "BENCH_sort.json", map[string]any{"figure": "sort"})
	report, failed, err := check(base, fresh, th())
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("missing metrics passed the gate:\n%s", report)
	}
	// A missing fresh FILE is a hard error (the bench step didn't run).
	if err := os.Remove(filepath.Join(fresh, "BENCH_sort.json")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := check(base, fresh, th()); err == nil {
		t.Fatal("missing fresh file did not error")
	}
}

// TestUpdateRefreshesBaselines: -update copies fresh files over baselines
// and adopts new figures.
func TestUpdateRefreshesBaselines(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeBench(t, base, "BENCH_sort.json", sortDoc(100e6, 200e6, 50<<20))
	writeBench(t, fresh, "BENCH_sort.json", sortDoc(300e6, 200e6, 50<<20))
	writeBench(t, fresh, "BENCH_new.json", map[string]any{"new_ns": 5e6})
	n, err := updateBaselines(base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("updated %d files, want 2", n)
	}
	_, failed, err := check(base, fresh, th())
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("gate failed immediately after -update")
	}
}
