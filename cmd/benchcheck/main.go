// Command benchcheck is the CI bench-regression gate: it diffs freshly
// produced BENCH_*.json files against the committed baselines under
// bench/baselines/ and fails (exit 1) when any wall-clock metric regresses
// by more than -wall (default 25%) or any allocated-bytes metric by more
// than -alloc (default 30%). Improvements and small metrics (under
// -min-wall-ms, where scheduler noise dominates) are reported but never
// fail the gate.
//
//	benchcheck                          # compare ./BENCH_*.json to bench/baselines/
//	benchcheck -update                  # refresh the baselines deliberately
//	benchcheck -wall 0.10 -alloc 0.15   # tighter thresholds
//
// Metrics are discovered structurally, so new figures need no changes
// here: every numeric JSON field whose name ends in "_ns" is a wall-clock
// metric and every field containing "alloc_bytes" is an allocation
// metric; array elements are keyed by their "name" field when present.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baselines := flag.String("baselines", "bench/baselines", "directory holding the committed baseline BENCH_*.json files")
	fresh := flag.String("fresh", ".", "directory holding the freshly produced BENCH_*.json files")
	wall := flag.Float64("wall", 0.25, "maximum tolerated wall-clock regression (fraction)")
	alloc := flag.Float64("alloc", 0.30, "maximum tolerated alloc-bytes regression (fraction)")
	minWallMs := flag.Float64("min-wall-ms", 1.0, "ignore wall metrics whose baseline is under this many milliseconds (noise floor)")
	update := flag.Bool("update", false, "copy the fresh files over the baselines instead of comparing")
	flag.Parse()

	if *update {
		n, err := updateBaselines(*baselines, *fresh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchcheck: refreshed %d baseline file(s) in %s\n", n, *baselines)
		return
	}
	report, failed, err := check(*baselines, *fresh, thresholds{
		wall: *wall, alloc: *alloc, minWallNs: *minWallMs * 1e6,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(report)
	if failed {
		fmt.Fprintln(os.Stderr, "benchcheck: bench regression gate FAILED (rerun with -update after an intentional change)")
		os.Exit(1)
	}
	fmt.Println("benchcheck: bench regression gate passed")
}
