package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// thresholds are the gate's tolerances.
type thresholds struct {
	wall      float64 // tolerated fractional wall-clock growth
	alloc     float64 // tolerated fractional alloc-bytes growth
	minWallNs float64 // wall metrics under this baseline are noise, skip
}

// metricKind classifies a discovered metric.
type metricKind int

const (
	wallMetric metricKind = iota
	allocMetric
)

// metrics maps "path.to.metric" -> value for one BENCH_*.json file.
type metrics map[string]float64

// extract walks a decoded JSON document collecting wall ("*_ns") and
// alloc ("*alloc_bytes*") numeric fields. Array elements are keyed by
// their "name" field when they have one, by index otherwise, so reordered
// result lists still line up.
func extract(doc any) (wall, alloc metrics) {
	wall, alloc = metrics{}, metrics{}
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch t := v.(type) {
		case map[string]any:
			for k, c := range t {
				key := k
				if prefix != "" {
					key = prefix + "." + k
				}
				if f, ok := c.(float64); ok {
					switch {
					case strings.Contains(k, "alloc_bytes"):
						alloc[key] = f
					case strings.HasSuffix(k, "_ns"):
						wall[key] = f
					}
					continue
				}
				walk(key, c)
			}
		case []any:
			for i, c := range t {
				seg := fmt.Sprint(i)
				if m, ok := c.(map[string]any); ok {
					if name, ok := m["name"].(string); ok {
						seg = name
					}
				}
				if prefix != "" {
					seg = prefix + "." + seg
				}
				walk(seg, c)
			}
		}
	}
	walk("", doc)
	return wall, alloc
}

// loadMetrics parses one BENCH_*.json file.
func loadMetrics(path string) (wall, alloc metrics, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	wall, alloc = extract(doc)
	return wall, alloc, nil
}

// baselineFiles lists the BENCH_*.json names in dir.
func baselineFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	names := make([]string, len(paths))
	for i, p := range paths {
		names[i] = filepath.Base(p)
	}
	sort.Strings(names)
	return names, nil
}

// check compares every baseline file against its fresh counterpart and
// renders a report, returning failed=true when any metric regresses past
// its threshold.
func check(baselineDir, freshDir string, th thresholds) (report string, failed bool, err error) {
	names, err := baselineFiles(baselineDir)
	if err != nil {
		return "", false, err
	}
	if len(names) == 0 {
		return "", false, fmt.Errorf("no BENCH_*.json baselines in %s", baselineDir)
	}
	var sb strings.Builder
	for _, name := range names {
		baseWall, baseAlloc, err := loadMetrics(filepath.Join(baselineDir, name))
		if err != nil {
			return "", false, err
		}
		freshWall, freshAlloc, err := loadMetrics(filepath.Join(freshDir, name))
		if err != nil {
			return "", false, fmt.Errorf("fresh results for %s: %w", name, err)
		}
		fmt.Fprintf(&sb, "%s:\n", name)
		f1 := compareKind(&sb, name, wallMetric, baseWall, freshWall, th)
		f2 := compareKind(&sb, name, allocMetric, baseAlloc, freshAlloc, th)
		failed = failed || f1 || f2
	}
	return sb.String(), failed, nil
}

// compareKind diffs one metric family of one file.
func compareKind(sb *strings.Builder, file string, kind metricKind, base, fresh metrics, th thresholds) (failed bool) {
	limit, label := th.wall, "wall"
	if kind == allocMetric {
		limit, label = th.alloc, "alloc"
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		f, ok := fresh[k]
		if !ok {
			// A metric that existed in the baseline must not silently
			// disappear (a renamed figure needs a deliberate -update).
			fmt.Fprintf(sb, "  FAIL %-5s %s: missing from fresh results\n", label, k)
			failed = true
			continue
		}
		if b <= 0 {
			continue
		}
		if kind == wallMetric && b < th.minWallNs {
			continue // sub-noise-floor timing; report nothing
		}
		ratio := f/b - 1
		switch {
		case ratio > limit:
			fmt.Fprintf(sb, "  FAIL %-5s %s: %s -> %s (+%.1f%%, limit +%.0f%%)\n",
				label, k, fmtMetric(kind, b), fmtMetric(kind, f), ratio*100, limit*100)
			failed = true
		case ratio < -0.10:
			fmt.Fprintf(sb, "  ok   %-5s %s: %s -> %s (%.1f%%, improved)\n",
				label, k, fmtMetric(kind, b), fmtMetric(kind, f), ratio*100)
		default:
			fmt.Fprintf(sb, "  ok   %-5s %s: %s -> %s (%+.1f%%)\n",
				label, k, fmtMetric(kind, b), fmtMetric(kind, f), ratio*100)
		}
	}
	return failed
}

func fmtMetric(kind metricKind, v float64) string {
	if kind == wallMetric {
		return fmt.Sprintf("%.2fms", v/1e6)
	}
	return fmt.Sprintf("%.1fMB", v/(1<<20))
}

// updateBaselines copies every fresh BENCH_*.json over its baseline (and
// adopts new files), the deliberate refresh path.
func updateBaselines(baselineDir, freshDir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(freshDir, "BENCH_*.json"))
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, fmt.Errorf("no BENCH_*.json files in %s", freshDir)
	}
	if err := os.MkdirAll(baselineDir, 0o755); err != nil {
		return 0, err
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(filepath.Join(baselineDir, filepath.Base(p)), raw, 0o644); err != nil {
			return 0, err
		}
	}
	return len(paths), nil
}
