// Command snbgen generates an SNB-like social network dataset (the
// substitute for the LDBC Datagen the paper uses) and writes it as CSV
// files: person.csv, knows.csv, post.csv, comment.csv, forum.csv.
//
// Usage:
//
//	snbgen -sf 1.0 -seed 42 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"indexeddf"
	"indexeddf/internal/snb"
	"indexeddf/internal/sqltypes"
)

func main() {
	sf := flag.Float64("sf", 1.0, "scale factor (1.0 ~ 1k persons)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	if err := run(*sf, *seed, *out); err != nil {
		log.Fatal(err)
	}
}

func run(sf float64, seed int64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	d := snb.Generate(snb.Config{ScaleFactor: sf, Seed: seed})
	sess := indexeddf.NewSession(indexeddf.Config{})

	write := func(name string, schema *sqltypes.Schema, rows []sqltypes.Row) error {
		df, err := sess.CreateTable(name, schema, rows)
		if err != nil {
			return err
		}
		path := filepath.Join(out, name+".csv")
		if err := df.WriteCSVFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %-12s %8d rows -> %s\n", name, len(rows), path)
		return nil
	}
	if err := write("person", snb.PersonSchema(), d.Persons); err != nil {
		return err
	}
	if err := write("knows", snb.KnowsSchema(), d.Knows); err != nil {
		return err
	}
	if err := write("post", snb.PostSchema(), d.Posts); err != nil {
		return err
	}
	if err := write("comment", snb.CommentSchema(), d.Comments); err != nil {
		return err
	}
	if err := write("forum", snb.ForumSchema(), d.Forums); err != nil {
		return err
	}
	fmt.Printf("total %d rows (sf=%.2f seed=%d)\n", d.Rows(), sf, seed)
	return nil
}
