// Command demo reproduces the paper's §4 demonstration: a real-time graph
// monitoring dashboard. A Kafka-like topic carries the SNB update stream
// mutating the graph; both engines — vanilla Spark-like execution and the
// Indexed DataFrame — concurrently answer the SNB simple reads, and the
// dashboard prints their latencies side by side while the graph grows.
//
// Usage:
//
//	demo -sf 0.5 -rounds 10 -updates 200
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"indexeddf"
	"indexeddf/internal/snb"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/stream"
)

func main() {
	sf := flag.Float64("sf", 0.5, "scale factor")
	seed := flag.Int64("seed", 42, "seed")
	rounds := flag.Int("rounds", 8, "dashboard refresh rounds")
	updates := flag.Int("updates", 300, "updates produced per round")
	flag.Parse()
	if err := run(*sf, *seed, *rounds, *updates); err != nil {
		log.Fatal(err)
	}
}

func run(sf float64, seed int64, rounds, updatesPerRound int) error {
	fmt.Printf("Loading SNB graph (sf=%.2f) into both engines...\n", sf)
	d := snb.Generate(snb.Config{ScaleFactor: sf, Seed: seed})

	vanilla, err := snb.Load(indexeddf.NewSession(indexeddf.Config{}), d, false)
	if err != nil {
		return err
	}
	indexed, err := snb.Load(indexeddf.NewSession(indexeddf.Config{}), d, true)
	if err != nil {
		return err
	}

	// The Kafka-like update pipeline.
	broker := stream.NewBroker()
	topic, err := broker.CreateTopic("snb-updates", 4)
	if err != nil {
		return err
	}
	us := snb.NewUpdateStream(d, seed+1)
	rng := rand.New(rand.NewSource(seed + 2))
	params := snb.DefaultParams(d, 4)
	queries := snb.Queries()

	fmt.Printf("graph: %d persons, %d knows, %d posts, %d comments, %d forums\n\n",
		len(d.Persons), len(d.Knows), len(d.Posts), len(d.Comments), len(d.Forums))

	for round := 1; round <= rounds; round++ {
		// Produce a burst of updates into the topic; the update kind rides
		// along as the first column of the payload.
		for i := 0; i < updatesPerRound; i++ {
			u := us.Next()
			payload := append(sqltypes.Row{sqltypes.NewInt32(int32(u.Kind))}, u.Row...)
			topic.Produce(u.Row[0], payload)
		}
		// ...consume and apply them to BOTH engines (vanilla pays the
		// cache invalidation; the Indexed DataFrame appends in place).
		msgs := topic.Poll("applier", updatesPerRound)
		var batch []snb.Update
		for _, m := range msgs {
			batch = append(batch, snb.Update{Kind: snb.UpdateKind(m.Row[0].Int64Val()), Row: m.Row[1:]})
		}
		applyStart := time.Now()
		if err := snb.Apply(indexed, batch); err != nil {
			return err
		}
		indexedApply := time.Since(applyStart)
		applyStart = time.Now()
		if err := snb.Apply(vanilla, batch); err != nil {
			return err
		}
		vanillaApply := time.Since(applyStart)

		fmt.Printf("== round %d — applied %d updates (IndexedDF %.2fms, Spark %.2fms append path) ==\n",
			round, len(batch), ms(indexedApply), ms(vanillaApply))

		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(w, "query\tIndexedDF [ms]\tSpark [ms]\tspeedup\t")
		for _, q := range queries {
			ids := params[q.ParamKind]
			id := ids[rng.Intn(len(ids))]
			it, err := timeQuery(q, indexed, id)
			if err != nil {
				return fmt.Errorf("%s (indexed): %w", q.Name, err)
			}
			vt, err := timeQuery(q, vanilla, id)
			if err != nil {
				return fmt.Errorf("%s (vanilla): %w", q.Name, err)
			}
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.1fx\t\n", q.Name, ms(it), ms(vt),
				float64(vt)/float64(it))
		}
		w.Flush()
		kc, _ := indexed.KnowsByP1.Count()
		fmt.Printf("graph now has %d knows edges; topic lag %d\n\n", kc, topic.Lag("applier"))
	}
	return nil
}

func timeQuery(q snb.Query, g *snb.Graph, id int64) (time.Duration, error) {
	start := time.Now()
	_, err := q.Run(g, id)
	return time.Since(start), err
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
