// Command sqlshell is an interactive SQL shell over the engine. It starts
// with an SNB-like graph loaded (vanilla tables cached; indexed copies
// created with -indexed) so the index-aware optimizer can be explored
// interactively.
//
//	go run ./cmd/sqlshell -sf 0.5 -indexed
//
// Meta commands: \d (tables), \explain <query>, \q (quit).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"indexeddf"
	"indexeddf/internal/snb"
)

func main() {
	sf := flag.Float64("sf", 0.5, "SNB scale factor to preload")
	seed := flag.Int64("seed", 42, "dataset seed")
	indexed := flag.Bool("indexed", true, "also build indexed copies")
	flag.Parse()

	sess := indexeddf.NewSession(indexeddf.Config{})
	d := snb.Generate(snb.Config{ScaleFactor: *sf, Seed: *seed})
	if _, err := snb.Load(sess, d, *indexed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded SNB graph sf=%.2f (%d rows). Tables: person knows post comment forum", *sf, d.Rows())
	if *indexed {
		fmt.Printf(" + indexed copies")
	}
	fmt.Println("\ntype SQL, \\d for tables, \\explain <q> for plans, \\q to quit")

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("sql> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\d`:
			names := sess.Tables()
			sort.Strings(names)
			for _, n := range names {
				if t, ok := sess.LookupTable(n); ok {
					fmt.Printf("  %-24s %8d rows  %s\n", n, t.RowCount(), t.Schema())
				}
			}
		case strings.HasPrefix(line, `\explain `):
			df, err := sess.SQL(strings.TrimPrefix(line, `\explain `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			out, err := df.Explain()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		default:
			df, err := sess.SQL(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			start := time.Now()
			out, err := df.Show(25)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			n, _ := df.Count()
			fmt.Print(out)
			fmt.Printf("(%d rows, %.2f ms)\n", n, float64(time.Since(start).Microseconds())/1000)
		}
	}
}
