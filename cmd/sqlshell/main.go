// Command sqlshell is an interactive SQL shell over the engine. It starts
// with an SNB-like graph loaded (vanilla tables cached; indexed copies
// created with -indexed) so the index-aware optimizer can be explored
// interactively.
//
//	go run ./cmd/sqlshell -sf 0.5 -indexed
//
// Results stream through the cursor API: rows print as partition tasks
// complete, and Ctrl-C cancels the in-flight query (stopping its remaining
// tasks) instead of killing the shell.
//
// Meta commands: \d (tables), \explain <query>, \timing (per-query stats
// toggle), \metrics (engine metrics dump), \q (quit). EXPLAIN ANALYZE
// <query> runs the statement and prints the plan annotated with actuals;
// queries slower than -slow get an inline warning.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"indexeddf"
	"indexeddf/internal/snb"
)

func main() {
	sf := flag.Float64("sf", 0.5, "SNB scale factor to preload")
	seed := flag.Int64("seed", 42, "dataset seed")
	indexed := flag.Bool("indexed", true, "also build indexed copies")
	timeout := flag.Duration("timeout", 0, "session-wide query timeout (0 = none)")
	maxRows := flag.Int("maxrows", 1000, "rows to display per query (0 = unlimited); counting continues past the cap")
	slow := flag.Duration("slow", 500*time.Millisecond, "slow-query warning threshold (0 = off)")
	memLimit := flag.Int64("memlimit", 0, "per-query memory budget in bytes (0 = unbounded)")
	spillDir := flag.String("spilldir", "", "directory for out-of-core run files (enables spilling for budgeted queries)")
	flag.Parse()

	sess := indexeddf.NewSession(indexeddf.Config{
		QueryTimeout:       *timeout,
		QueryMemoryLimit:   *memLimit,
		SpillDir:           *spillDir,
		SlowQueryThreshold: *slow,
		SlowQueryLog: func(q indexeddf.SlowQuery) {
			spilled := ""
			if q.Stats != nil && q.Stats.SpillRuns() > 0 {
				spilled = fmt.Sprintf(", spilled %s/%d runs",
					indexeddf.FormatBytes(q.Stats.SpillBytes()), q.Stats.SpillRuns())
			}
			fmt.Printf("!! slow query [%s]: %d rows in %v (threshold %v%s)\n",
				q.ID, q.Rows, q.Duration.Round(time.Millisecond), *slow, spilled)
		},
	})
	defer sess.Close()
	d := snb.Generate(snb.Config{ScaleFactor: *sf, Seed: *seed})
	if _, err := snb.Load(sess, d, *indexed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded SNB graph sf=%.2f (%d rows). Tables: person knows post comment forum", *sf, d.Rows())
	if *indexed {
		fmt.Printf(" + indexed copies")
	}
	fmt.Println("\ntype SQL, \\d for tables, \\explain <q> / EXPLAIN ANALYZE <q> for plans, \\timing for per-query stats, \\metrics for engine metrics, \\q to quit (Ctrl-C cancels a running query)")

	// Ctrl-C cancels the in-flight query's context instead of killing the
	// shell; at the prompt it just prints a hint.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	timing := false
	for {
		fmt.Print("sql> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\d`:
			names := sess.Tables()
			sort.Strings(names)
			for _, n := range names {
				if t, ok := sess.LookupTable(n); ok {
					fmt.Printf("  %-24s %8d rows  %s\n", n, t.RowCount(), t.Schema())
				}
			}
		case line == `\timing`:
			timing = !timing
			fmt.Printf("timing %s\n", map[bool]string{true: "on", false: "off"}[timing])
		case line == `\metrics`:
			if _, err := sess.Metrics().WriteTo(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, `\explain `):
			df, err := sess.SQL(strings.TrimPrefix(line, `\explain `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			out, err := df.Explain()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		default:
			runQuery(sess, sigc, line, *maxRows, timing)
		}
	}
}

// runQuery streams one statement's results (display capped at maxRows,
// counting continues), cancelling on SIGINT.
func runQuery(sess *indexeddf.Session, sigc <-chan os.Signal, query string, maxRows int, timing bool) {
	// Drop any interrupt that arrived while idle at the prompt.
	select {
	case <-sigc:
		fmt.Println(`interrupt (use \q to quit)`)
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-sigc:
			cancel()
		case <-ctx.Done():
		}
	}()

	start := time.Now()
	rows, err := sess.Query(ctx, query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()

	names := rows.Schema().ShortNames()
	// EXPLAIN [ANALYZE] results are a one-column frame of plan lines —
	// render them verbatim instead of as a piped table.
	if len(names) == 1 && names[0] == "plan" {
		for rows.Next() {
			fmt.Println(rows.Row()[0].String())
		}
		if err := rows.Err(); err != nil {
			fmt.Println("error:", err)
		}
		return
	}
	fmt.Println("| " + strings.Join(names, " | ") + " |")
	var n int64
	for rows.Next() {
		n++
		if maxRows > 0 && n > int64(maxRows) {
			if n == int64(maxRows)+1 {
				fmt.Printf("... (display capped at %d rows — raise with -maxrows; still counting)\n", maxRows)
			}
			continue
		}
		row := rows.Row()
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println("| " + strings.Join(parts, " | ") + " |")
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	switch err := rows.Err(); {
	case errors.Is(err, context.Canceled):
		fmt.Printf("cancelled after %d rows, %.2f ms\n", n, elapsed)
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("query timeout exceeded after %d rows, %.2f ms\n", n, elapsed)
	case err != nil:
		fmt.Println("error:", err)
	default:
		fmt.Printf("(%d rows, %.2f ms)\n", n, elapsed)
	}
	if timing {
		rows.Close() // settle totals before reading them
		if qs := rows.Stats(); qs != nil {
			fmt.Printf("timing: parse %v, plan %v (cache hit: %v), total %v; tasks %d, shuffle %s, mem peak %s, spilled %s/%d runs\n",
				time.Duration(qs.ParseNs), time.Duration(qs.PlanNs), qs.CacheHit,
				time.Duration(qs.TotalNs()), qs.TasksCompleted(),
				indexeddf.FormatBytes(qs.ShuffleBytes()), indexeddf.FormatBytes(qs.MemPeak()),
				indexeddf.FormatBytes(qs.SpillBytes()), qs.SpillRuns())
		}
	}
}
