package indexeddf

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"indexeddf/internal/obs"
	"indexeddf/internal/testutil"
)

// Out-of-core equivalence: the same randomized queries run in an
// unconstrained in-memory session and in a session whose budget is a
// fraction of the working set with a SpillDir, and must produce identical
// results — with the constrained run actually spilling, keeping its
// tracker high-water under the budget, and leaving no run files, fds or
// goroutines behind.

// spillSchema is the randomized-table schema: unique id, low-cardinality
// nullable val (ties and NULLs for the sort), and a fat group key that
// makes shuffled bytes dwarf aggregate state.
func spillSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "val", Type: Int64, Nullable: true},
		Field{Name: "grp", Type: String},
	)
}

// spillRows builds n randomized rows: ~5% NULL vals, heavy ties on val,
// and grp drawn from g distinct 64-byte strings.
func spillRows(rng *rand.Rand, n, g int) []Row {
	pad := strings.Repeat("x", 48)
	rows := make([]Row, n)
	for i := range rows {
		var val any
		if rng.Intn(20) != 0 {
			val = int64(rng.Intn(50))
		}
		rows[i] = R(int64(i), val, fmt.Sprintf("group-%s-%06d", pad, rng.Intn(g)))
	}
	return rows
}

// newSpillPair builds two sessions over the same table: in-memory
// unconstrained, and out-of-core with a tight per-query budget plus a
// SpillDir whose end-of-test emptiness is asserted. Both get the same
// partitioning (base) so plans match.
func newSpillPair(t *testing.T, name string, schema *Schema, rows []Row, queryLimit int64, base Config) (memSess, ocSess *Session) {
	t.Helper()
	testutil.CheckGoroutines(t)
	testutil.CheckFDs(t)
	dir := t.TempDir()
	testutil.CheckNoFiles(t, dir)
	memSess = NewSession(base)
	ocCfg := base
	ocCfg.QueryMemoryLimit = queryLimit
	ocCfg.SpillDir = dir
	ocSess = NewSession(ocCfg)
	t.Cleanup(func() {
		if err := ocSess.Close(); err != nil {
			t.Errorf("Session.Close: %v", err)
		}
	})
	for _, s := range []*Session{memSess, ocSess} {
		if _, err := s.CreateTable(name, schema, rows); err != nil {
			t.Fatal(err)
		}
	}
	return memSess, ocSess
}

// collectStats runs q to completion and returns rows plus query stats.
func collectStats(t *testing.T, s *Session, q string) ([]Row, *obs.QueryStats) {
	t.Helper()
	rows, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	out, err := drainRows(rows)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return out, rows.Stats()
}

// wantSameRows asserts two result sets are identical. ordered compares
// positionally; otherwise both sides are sorted first.
func wantSameRows(t *testing.T, got, want []Row, ordered bool) {
	t.Helper()
	if !ordered {
		sortRows(got)
		sortRows(want)
	}
	if len(got) != len(want) {
		t.Fatalf("row count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("row %d differs:\n  got  %v\n  want %v", i, got[i], want[i])
		}
	}
}

// wantSpilled asserts the constrained run actually went out of core and
// stayed under its budget.
func wantSpilled(t *testing.T, qs *obs.QueryStats, limit int64) {
	t.Helper()
	if qs.SpillRuns() == 0 {
		t.Fatal("constrained query did not spill (working set fit the budget; grow the data)")
	}
	if qs.SpillBytes() == 0 {
		t.Fatal("spill runs recorded but zero spill bytes")
	}
	if peak := qs.MemPeak(); peak > limit {
		t.Fatalf("tracker high-water %d exceeds budget %d", peak, limit)
	}
}

// TestSpillOrderByEquivalence: a full sort ~10x over budget externalizes
// into spilled sorted runs and merges back the exact in-memory order.
func TestSpillOrderByEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const limit = 512 << 10
	rows := spillRows(rng, 60_000, 500) // ~5 MiB working set
	memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2})

	for _, q := range []string{
		"SELECT id, val, grp FROM big ORDER BY val, id",
		"SELECT id, val FROM big ORDER BY val DESC, id DESC",
	} {
		want, _ := collectStats(t, memSess, q)
		got, qs := collectStats(t, ocSess, q)
		wantSameRows(t, got, want, true)
		wantSpilled(t, qs, limit)
	}
}

// TestSpillGroupByEquivalence: a shuffle GROUP BY whose shuffled partial
// results dwarf the budget (fat keys, most groups present in most of the
// many map partitions) spills its shuffle runs and aggregates
// identically. The budget still has to fit the per-task hash-aggregate
// tables — those don't spill — so pressure comes from the exchange.
func TestSpillGroupByEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const limit = 1 << 20
	rows := spillRows(rng, 120_000, 3_000)
	memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 64, ShufflePartitions: 4, Parallelism: 2})

	q := "SELECT grp, COUNT(*), SUM(id), MIN(val) FROM big GROUP BY grp"
	want, _ := collectStats(t, memSess, q)
	got, qs := collectStats(t, ocSess, q)
	wantSameRows(t, got, want, false)
	wantSpilled(t, qs, limit)
}

// TestSpillJoinEquivalence: a shuffle hash join whose shuffled probe side
// is ~10x over budget spills both exchanges; the build side streams back
// from disk into the hash table. The joined rows feed an aggregate so the
// (charged, unspillable) result buffer stays small and the pressure is
// all on the join's own state.
func TestSpillJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const limit = 1 << 20
	// Left: 120k rows, val ∈ [0,5000) with ~5% NULLs that must never
	// join, fat grp payload so the shuffled side is ~10 MiB.
	pad := strings.Repeat("y", 48)
	left := make([]Row, 120_000)
	for i := range left {
		var val any
		if rng.Intn(20) != 0 {
			val = int64(rng.Intn(5_000))
		}
		left[i] = R(int64(i), val, fmt.Sprintf("left-%s-%06d", pad, i))
	}
	// BroadcastThreshold 1 forces the shuffle hash join: the small right
	// side would otherwise broadcast and no join exchange would exist.
	memSess, ocSess := newSpillPair(t, "l", spillSchema(), left, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2, BroadcastThreshold: 1})
	// Right side: each key in [0,1250) appears twice (duplicate matches),
	// vals partly NULL.
	var right []Row
	for i := 0; i < 2_500; i++ {
		var val any
		if i%11 != 0 {
			val = int64(i)
		}
		right = append(right, R(int64(i%1_250), val, fmt.Sprintf("r-%06d", i)))
	}
	for _, s := range []*Session{memSess, ocSess} {
		if _, err := s.CreateTable("r", spillSchema(), right); err != nil {
			t.Fatal(err)
		}
	}

	q := "SELECT r.id, COUNT(*), MIN(l.grp) FROM l JOIN r ON l.val = r.id GROUP BY r.id"
	want, _ := collectStats(t, memSess, q)
	got, qs := collectStats(t, ocSess, q)
	if len(want) == 0 {
		t.Fatal("join produced no rows; fixture broken")
	}
	wantSameRows(t, got, want, false)
	wantSpilled(t, qs, limit)
}

// TestSpillEmptyPartitions: tiny tables over many partitions (most empty)
// behave identically with spilling configured — the degenerate end of the
// run-file format (zero-row runs, empty batches).
func TestSpillEmptyPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := spillRows(rng, 5, 2)
	memSess, ocSess := newSpillPair(t, "tiny", spillSchema(), rows, 1<<20,
		Config{TablePartitions: 16, ShufflePartitions: 4, Parallelism: 2})

	for _, q := range []string{
		"SELECT id, val FROM tiny ORDER BY val, id",
		"SELECT grp, COUNT(*) FROM tiny GROUP BY grp",
	} {
		want, _ := collectStats(t, memSess, q)
		got, _ := collectStats(t, ocSess, q)
		wantSameRows(t, got, want, strings.Contains(q, "ORDER BY"))
	}
}

// explainAnalyze runs EXPLAIN ANALYZE q and returns the rendered plan.
func explainAnalyze(t *testing.T, s *Session, q string) string {
	t.Helper()
	df, err := s.SQL("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	lines, err := df.Collect()
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(l[0].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// skewedRows builds n rows whose val (and therefore group key) follows a
// pathological distribution — the shapes that break naive splitter
// picking and hash partitioning.
func skewedRows(rng *rand.Rand, n int, dist string) []Row {
	pad := strings.Repeat("z", 48)
	zipf := rand.NewZipf(rng, 1.3, 1.0, 2_500)
	rows := make([]Row, n)
	for i := range rows {
		var v int64
		switch dist {
		case "zipf":
			v = int64(zipf.Uint64())
		case "hotkey":
			if rng.Intn(10) != 0 {
				v = 7 // one value owns 90% of the rows
			} else {
				v = int64(rng.Intn(2_500))
			}
		case "presorted":
			v = int64(i / 48)
		case "reversed":
			v = int64((n - i) / 48)
		default:
			panic("unknown distribution " + dist)
		}
		var val any
		if rng.Intn(20) != 0 {
			val = v
		}
		rows[i] = R(int64(i), val, fmt.Sprintf("group-%s-%06d", pad, v))
	}
	return rows
}

var skewDists = []string{"zipf", "hotkey", "presorted", "reversed"}

// TestSpillSkewOrderBy: the range-partitioned external sort under the
// distributions that stress splitter picking — zipf, a single hot key
// (all its duplicates land in one range partition), already-sorted and
// reverse-sorted inputs — stays bit-identical to the in-memory order at
// ~10x over budget with the tracker high-water under the budget.
func TestSpillSkewOrderBy(t *testing.T) {
	for _, dist := range skewDists {
		t.Run(dist, func(t *testing.T) {
			rng := rand.New(rand.NewSource(20260808))
			const limit = 512 << 10
			rows := skewedRows(rng, 80_000, dist) // ~7 MiB working set
			memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
				Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2})

			q := "SELECT id, val, grp FROM big ORDER BY val, id"
			want, _ := collectStats(t, memSess, q)
			got, qs := collectStats(t, ocSess, q)
			wantSameRows(t, got, want, true)
			wantSpilled(t, qs, limit)
		})
	}
}

// TestSpillSkewGroupBy: the same distributions through the shuffle GROUP
// BY — hot groups concentrate partial state in one reduce task; zipf
// gives a long tail of tiny groups next to giant ones.
func TestSpillSkewGroupBy(t *testing.T) {
	for _, dist := range skewDists {
		t.Run(dist, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99 + int64(len(dist))))
			// 1 MiB rather than the sort tests' 512 KiB: the aggregate's
			// materialized result buffers are charged but can't spill, and
			// several thousand fat group keys of output must fit next to
			// the operator state.
			const limit = 1 << 20
			rows := skewedRows(rng, 120_000, dist)
			memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
				Config{TablePartitions: 32, ShufflePartitions: 4, Parallelism: 2})

			q := "SELECT grp, COUNT(*), SUM(id), MIN(val), MAX(val) FROM big GROUP BY grp"
			want, _ := collectStats(t, memSess, q)
			got, qs := collectStats(t, ocSess, q)
			wantSameRows(t, got, want, false)
			wantSpilled(t, qs, limit)
		})
	}
}

// TestSpillSkewJoin: skewed probe sides through the shuffle hash join —
// the hot key's matches all route to one reduce partition.
func TestSpillSkewJoin(t *testing.T) {
	for _, dist := range []string{"zipf", "hotkey"} {
		t.Run(dist, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const limit = 1 << 20
			left := skewedRows(rng, 80_000, dist)
			memSess, ocSess := newSpillPair(t, "l", spillSchema(), left, limit,
				Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2, BroadcastThreshold: 1})
			var right []Row
			for i := 0; i < 2_000; i++ {
				var val any
				if i%11 != 0 {
					val = int64(i)
				}
				right = append(right, R(int64(i%1_000), val, fmt.Sprintf("r-%06d", i)))
			}
			for _, s := range []*Session{memSess, ocSess} {
				if _, err := s.CreateTable("r", spillSchema(), right); err != nil {
					t.Fatal(err)
				}
			}

			q := "SELECT r.id, COUNT(*), MIN(l.grp) FROM l JOIN r ON l.val = r.id GROUP BY r.id"
			want, _ := collectStats(t, memSess, q)
			got, qs := collectStats(t, ocSess, q)
			if len(want) == 0 {
				t.Fatal("join produced no rows; fixture broken")
			}
			wantSameRows(t, got, want, false)
			wantSpilled(t, qs, limit)
		})
	}
}

// TestSpillDeepOverBudget: ~100x between working set and budget — the
// regime where one fan-out generation isn't enough and correctness
// depends on recursion (sort: many small runs; agg: multi-level
// fan-out). Results stay bit-identical and the high-water stays under
// the budget.
func TestSpillDeepOverBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const limit = 224 << 10
	// 400 distinct groups keep the aggregate's output (charged,
	// unspillable result buffers) a small fraction of the tiny budget —
	// the 100x pressure is all operator state.
	rows := spillRows(rng, 240_000, 400) // ~22 MiB working set
	memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 16, ShufflePartitions: 4, Parallelism: 2})

	for _, tc := range []struct {
		q       string
		ordered bool
	}{
		{"SELECT id, val, grp FROM big ORDER BY val, id", true},
		{"SELECT grp, COUNT(*), SUM(id), MIN(val) FROM big GROUP BY grp", false},
	} {
		want, _ := collectStats(t, memSess, tc.q)
		got, qs := collectStats(t, ocSess, tc.q)
		wantSameRows(t, got, want, tc.ordered)
		wantSpilled(t, qs, limit)
	}
}

// TestSpillAggTableOverflow forces the hash-aggregate table itself (not
// just the exchange) past the budget: ~unique fat group keys make the
// per-task group table the dominant state, so the aggregate fans its
// table out to disk and re-aggregates partition by partition. The
// EXPLAIN ANALYZE rendering of the aggregate carries the fan-out
// annotations.
func TestSpillAggTableOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const limit = 1 << 20
	pad := strings.Repeat("k", 48)
	rows := make([]Row, 100_000)
	for i := range rows {
		var val any
		if rng.Intn(20) != 0 {
			val = int64(rng.Intn(50))
		}
		// ~50k distinct fat keys: group state alone is ~7 MiB.
		rows[i] = R(int64(i), val, fmt.Sprintf("group-%s-%06d", pad, rng.Intn(50_000)))
	}
	memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2})

	// HAVING keeps the output (whose result buffers are charged but
	// can't spill) tiny while every one of the ~50k groups still passes
	// through the fan-out machinery.
	q := "SELECT grp, COUNT(*), SUM(id), MIN(val), AVG(id) FROM big GROUP BY grp HAVING COUNT(*) > 5"
	want, _ := collectStats(t, memSess, q)
	got, qs := collectStats(t, ocSess, q)
	wantSameRows(t, got, want, false)
	wantSpilled(t, qs, limit)

	plan := explainAnalyze(t, ocSess, q)
	if !strings.Contains(plan, "fanout=8") || !strings.Contains(plan, "depth=") {
		t.Fatalf("aggregate fan-out not annotated in plan:\n%s", plan)
	}
}

// TestSpillGraceJoin forces the shuffle join's build side past the
// budget: the right (build) side is ~10x over, so the join goes grace —
// both sides fan out by join key and partition pairs join one at a
// time. Results match the in-memory join exactly and the plan carries
// the fan-out annotations.
func TestSpillGraceJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// 2 MiB: the grace pairs' build tables plus the downstream
	// aggregate's charged result buffers must coexist under one budget.
	const limit = 2 << 20
	// Probe side: 60k rows, val ∈ [0,8000) with NULLs.
	left := make([]Row, 60_000)
	for i := range left {
		var val any
		if rng.Intn(20) != 0 {
			val = int64(rng.Intn(8_000))
		}
		left[i] = R(int64(i), val, fmt.Sprintf("l-%06d", i))
	}
	memSess, ocSess := newSpillPair(t, "l", spillSchema(), left, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2, BroadcastThreshold: 1})
	// Build side: 40k very fat rows (~18 MiB; ~4.5 MiB per reduce
	// co-partition, over the whole budget on its own). Keys in [0,8000)
	// appear 5 times each — duplicate matches — and vals are partly NULL.
	pad := strings.Repeat("b", 450)
	right := make([]Row, 40_000)
	for i := range right {
		var val any
		if i%13 != 0 {
			val = int64(i)
		}
		right[i] = R(int64(i%8_000), val, fmt.Sprintf("build-%s-%06d", pad, i))
	}
	for _, s := range []*Session{memSess, ocSess} {
		if _, err := s.CreateTable("r", spillSchema(), right); err != nil {
			t.Fatal(err)
		}
	}

	// Aggregate over narrow columns only: MIN over the fat build payload
	// would rematerialize it as unspillable result state.
	q := "SELECT l.val, COUNT(*), MIN(r.val) FROM l JOIN r ON l.val = r.id GROUP BY l.val"
	want, _ := collectStats(t, memSess, q)
	got, qs := collectStats(t, ocSess, q)
	if len(want) == 0 {
		t.Fatal("join produced no rows; fixture broken")
	}
	wantSameRows(t, got, want, false)
	wantSpilled(t, qs, limit)

	plan := explainAnalyze(t, ocSess, q)
	if !strings.Contains(plan, "fanout=8") {
		t.Fatalf("grace join fan-out not annotated in plan:\n%s", plan)
	}
}

// TestSpillSortParallelAblation: the same over-budget sort through the
// range-partitioned parallel merge (SortPartitions=4), the single k-way
// merge (SortPartitions=1, PR 8's shape), and the unconstrained
// in-memory path — three plans, one bit-identical answer. The parallel
// plan's sort carries its partition count.
func TestSpillSortParallelAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const limit = 512 << 10
	rows := spillRows(rng, 80_000, 500)
	base := Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2}
	memSess, parSess := newSpillPair(t, "big", spillSchema(), rows, limit, base)

	singleCfg := base
	singleCfg.QueryMemoryLimit = limit
	singleCfg.SpillDir = t.TempDir()
	singleCfg.SortPartitions = 1
	singleSess := NewSession(singleCfg)
	t.Cleanup(func() {
		if err := singleSess.Close(); err != nil {
			t.Errorf("Session.Close: %v", err)
		}
	})
	if _, err := singleSess.CreateTable("big", spillSchema(), rows); err != nil {
		t.Fatal(err)
	}

	q := "SELECT id, val, grp FROM big ORDER BY val, id"
	want, _ := collectStats(t, memSess, q)
	gotPar, qsPar := collectStats(t, parSess, q)
	gotSingle, qsSingle := collectStats(t, singleSess, q)
	wantSameRows(t, gotPar, want, true)
	wantSameRows(t, gotSingle, want, true)
	wantSpilled(t, qsPar, limit)
	wantSpilled(t, qsSingle, limit)

	plan := explainAnalyze(t, parSess, q)
	if !strings.Contains(plan, "partitions=4") {
		t.Fatalf("parallel sort partition count not annotated in plan:\n%s", plan)
	}
}

// TestSpillTopNBounded pins the VecTopN exemption from spilling: its
// resident stores hold at most LIMIT rows per partition, so an
// over-budget ORDER BY ... LIMIT runs entirely in memory — flat
// high-water under the budget, zero spill runs — while the same data's
// full sort (TestSpillOrderByEquivalence) must externalize.
func TestSpillTopNBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const limit = 512 << 10
	rows := spillRows(rng, 60_000, 500) // same ~5 MiB working set as the full-sort test
	memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2})

	q := "SELECT id, val, grp FROM big ORDER BY val, id LIMIT 25"
	want, _ := collectStats(t, memSess, q)
	got, qs := collectStats(t, ocSess, q)
	wantSameRows(t, got, want, true)
	if qs.SpillRuns() != 0 {
		t.Fatalf("Top-N spilled %d runs; its stores are bounded by LIMIT and must not spill", qs.SpillRuns())
	}
	if peak := qs.MemPeak(); peak > limit {
		t.Fatalf("Top-N high-water %d exceeds budget %d", peak, limit)
	}
}

// TestSpillEarlyCloseCleanup: abandoning a spilling cursor after a few
// rows must reap every run file and fd (the deferred CheckNoFiles /
// CheckFDs assert it), and the session keeps answering queries.
func TestSpillEarlyCloseCleanup(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const limit = 512 << 10
	rows := spillRows(rng, 60_000, 500)
	_, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2})

	cur, err := ocSess.Query(context.Background(), "SELECT id, val, grp FROM big ORDER BY val, id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && cur.Next(); i++ {
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	waitShufflesReleased(t, ocSess)

	got, qs := collectStats(t, ocSess, "SELECT COUNT(*) FROM big")
	if len(got) != 1 || got[0][0].Int64Val() != 60_000 {
		t.Fatalf("post-close query broken: %v", got)
	}
	_ = qs
}
