package indexeddf

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"indexeddf/internal/obs"
	"indexeddf/internal/testutil"
)

// Out-of-core equivalence: the same randomized queries run in an
// unconstrained in-memory session and in a session whose budget is a
// fraction of the working set with a SpillDir, and must produce identical
// results — with the constrained run actually spilling, keeping its
// tracker high-water under the budget, and leaving no run files, fds or
// goroutines behind.

// spillSchema is the randomized-table schema: unique id, low-cardinality
// nullable val (ties and NULLs for the sort), and a fat group key that
// makes shuffled bytes dwarf aggregate state.
func spillSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "val", Type: Int64, Nullable: true},
		Field{Name: "grp", Type: String},
	)
}

// spillRows builds n randomized rows: ~5% NULL vals, heavy ties on val,
// and grp drawn from g distinct 64-byte strings.
func spillRows(rng *rand.Rand, n, g int) []Row {
	pad := strings.Repeat("x", 48)
	rows := make([]Row, n)
	for i := range rows {
		var val any
		if rng.Intn(20) != 0 {
			val = int64(rng.Intn(50))
		}
		rows[i] = R(int64(i), val, fmt.Sprintf("group-%s-%06d", pad, rng.Intn(g)))
	}
	return rows
}

// newSpillPair builds two sessions over the same table: in-memory
// unconstrained, and out-of-core with a tight per-query budget plus a
// SpillDir whose end-of-test emptiness is asserted. Both get the same
// partitioning (base) so plans match.
func newSpillPair(t *testing.T, name string, schema *Schema, rows []Row, queryLimit int64, base Config) (memSess, ocSess *Session) {
	t.Helper()
	testutil.CheckGoroutines(t)
	testutil.CheckFDs(t)
	dir := t.TempDir()
	testutil.CheckNoFiles(t, dir)
	memSess = NewSession(base)
	ocCfg := base
	ocCfg.QueryMemoryLimit = queryLimit
	ocCfg.SpillDir = dir
	ocSess = NewSession(ocCfg)
	t.Cleanup(func() {
		if err := ocSess.Close(); err != nil {
			t.Errorf("Session.Close: %v", err)
		}
	})
	for _, s := range []*Session{memSess, ocSess} {
		if _, err := s.CreateTable(name, schema, rows); err != nil {
			t.Fatal(err)
		}
	}
	return memSess, ocSess
}

// collectStats runs q to completion and returns rows plus query stats.
func collectStats(t *testing.T, s *Session, q string) ([]Row, *obs.QueryStats) {
	t.Helper()
	rows, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	out, err := drainRows(rows)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return out, rows.Stats()
}

// wantSameRows asserts two result sets are identical. ordered compares
// positionally; otherwise both sides are sorted first.
func wantSameRows(t *testing.T, got, want []Row, ordered bool) {
	t.Helper()
	if !ordered {
		sortRows(got)
		sortRows(want)
	}
	if len(got) != len(want) {
		t.Fatalf("row count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("row %d differs:\n  got  %v\n  want %v", i, got[i], want[i])
		}
	}
}

// wantSpilled asserts the constrained run actually went out of core and
// stayed under its budget.
func wantSpilled(t *testing.T, qs *obs.QueryStats, limit int64) {
	t.Helper()
	if qs.SpillRuns() == 0 {
		t.Fatal("constrained query did not spill (working set fit the budget; grow the data)")
	}
	if qs.SpillBytes() == 0 {
		t.Fatal("spill runs recorded but zero spill bytes")
	}
	if peak := qs.MemPeak(); peak > limit {
		t.Fatalf("tracker high-water %d exceeds budget %d", peak, limit)
	}
}

// TestSpillOrderByEquivalence: a full sort ~10x over budget externalizes
// into spilled sorted runs and merges back the exact in-memory order.
func TestSpillOrderByEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const limit = 512 << 10
	rows := spillRows(rng, 60_000, 500) // ~5 MiB working set
	memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2})

	for _, q := range []string{
		"SELECT id, val, grp FROM big ORDER BY val, id",
		"SELECT id, val FROM big ORDER BY val DESC, id DESC",
	} {
		want, _ := collectStats(t, memSess, q)
		got, qs := collectStats(t, ocSess, q)
		wantSameRows(t, got, want, true)
		wantSpilled(t, qs, limit)
	}
}

// TestSpillGroupByEquivalence: a shuffle GROUP BY whose shuffled partial
// results dwarf the budget (fat keys, most groups present in most of the
// many map partitions) spills its shuffle runs and aggregates
// identically. The budget still has to fit the per-task hash-aggregate
// tables — those don't spill — so pressure comes from the exchange.
func TestSpillGroupByEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const limit = 1 << 20
	rows := spillRows(rng, 120_000, 3_000)
	memSess, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 64, ShufflePartitions: 4, Parallelism: 2})

	q := "SELECT grp, COUNT(*), SUM(id), MIN(val) FROM big GROUP BY grp"
	want, _ := collectStats(t, memSess, q)
	got, qs := collectStats(t, ocSess, q)
	wantSameRows(t, got, want, false)
	wantSpilled(t, qs, limit)
}

// TestSpillJoinEquivalence: a shuffle hash join whose shuffled probe side
// is ~10x over budget spills both exchanges; the build side streams back
// from disk into the hash table. The joined rows feed an aggregate so the
// (charged, unspillable) result buffer stays small and the pressure is
// all on the join's own state.
func TestSpillJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const limit = 1 << 20
	// Left: 120k rows, val ∈ [0,5000) with ~5% NULLs that must never
	// join, fat grp payload so the shuffled side is ~10 MiB.
	pad := strings.Repeat("y", 48)
	left := make([]Row, 120_000)
	for i := range left {
		var val any
		if rng.Intn(20) != 0 {
			val = int64(rng.Intn(5_000))
		}
		left[i] = R(int64(i), val, fmt.Sprintf("left-%s-%06d", pad, i))
	}
	// BroadcastThreshold 1 forces the shuffle hash join: the small right
	// side would otherwise broadcast and no join exchange would exist.
	memSess, ocSess := newSpillPair(t, "l", spillSchema(), left, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2, BroadcastThreshold: 1})
	// Right side: each key in [0,1250) appears twice (duplicate matches),
	// vals partly NULL.
	var right []Row
	for i := 0; i < 2_500; i++ {
		var val any
		if i%11 != 0 {
			val = int64(i)
		}
		right = append(right, R(int64(i%1_250), val, fmt.Sprintf("r-%06d", i)))
	}
	for _, s := range []*Session{memSess, ocSess} {
		if _, err := s.CreateTable("r", spillSchema(), right); err != nil {
			t.Fatal(err)
		}
	}

	q := "SELECT r.id, COUNT(*), MIN(l.grp) FROM l JOIN r ON l.val = r.id GROUP BY r.id"
	want, _ := collectStats(t, memSess, q)
	got, qs := collectStats(t, ocSess, q)
	if len(want) == 0 {
		t.Fatal("join produced no rows; fixture broken")
	}
	wantSameRows(t, got, want, false)
	wantSpilled(t, qs, limit)
}

// TestSpillEmptyPartitions: tiny tables over many partitions (most empty)
// behave identically with spilling configured — the degenerate end of the
// run-file format (zero-row runs, empty batches).
func TestSpillEmptyPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := spillRows(rng, 5, 2)
	memSess, ocSess := newSpillPair(t, "tiny", spillSchema(), rows, 1<<20,
		Config{TablePartitions: 16, ShufflePartitions: 4, Parallelism: 2})

	for _, q := range []string{
		"SELECT id, val FROM tiny ORDER BY val, id",
		"SELECT grp, COUNT(*) FROM tiny GROUP BY grp",
	} {
		want, _ := collectStats(t, memSess, q)
		got, _ := collectStats(t, ocSess, q)
		wantSameRows(t, got, want, strings.Contains(q, "ORDER BY"))
	}
}

// TestSpillEarlyCloseCleanup: abandoning a spilling cursor after a few
// rows must reap every run file and fd (the deferred CheckNoFiles /
// CheckFDs assert it), and the session keeps answering queries.
func TestSpillEarlyCloseCleanup(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const limit = 512 << 10
	rows := spillRows(rng, 60_000, 500)
	_, ocSess := newSpillPair(t, "big", spillSchema(), rows, limit,
		Config{TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2})

	cur, err := ocSess.Query(context.Background(), "SELECT id, val, grp FROM big ORDER BY val, id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && cur.Next(); i++ {
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	waitShufflesReleased(t, ocSess)

	got, qs := collectStats(t, ocSess, "SELECT COUNT(*) FROM big")
	if len(got) != 1 || got[0][0].Int64Val() != 60_000 {
		t.Fatalf("post-close query broken: %v", got)
	}
	_ = qs
}
