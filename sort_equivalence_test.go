package indexeddf_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"indexeddf"
)

// The batch sort pipeline (typed-lane key extraction, index sort, sorted
// runs, k-way merge — and the bounded top-n fusion) must be invisible
// except for speed: any ORDER BY returns exactly what the row engine's
// gather-and-stable-sort returns, in the same order, ties included. These
// trials sweep the layouts that stress the run/merge path: NULL keys
// (first ascending, last descending), heavy ties, multi-key asc/desc
// mixes, empty tables and partitions, and single partitions larger than a
// batch (multi-batch runs, no merge stage).

// runQueryOrdered collects a query's rows preserving delivery order (the
// property under test — canonical() would hide ordering bugs).
func runQueryOrdered(t *testing.T, sess *indexeddf.Session, q func(*indexeddf.Session) (*indexeddf.DataFrame, error)) []string {
	t.Helper()
	df, err := q(sess)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func sortTrials() []shuffleTrial {
	return []shuffleTrial{
		{name: "empty-table", rows: 0, groups: 5, tableParts: 4, shufParts: 4},
		{name: "single-part-multi-batch", rows: 5_000, groups: 11, nullFrac: 5, tableParts: 1, shufParts: 4},
		{name: "empty-partitions", rows: 3, groups: 5, nullFrac: 2, tableParts: 8, shufParts: 4},
		{name: "nulls-and-ties", rows: 4_000, groups: 3, nullFrac: 2, tableParts: 4, shufParts: 4},
		{name: "many-partitions", rows: 20_000, groups: 500, nullFrac: 9, tableParts: 7, shufParts: 4},
	}
}

func sortQueries() map[string]func(*indexeddf.Session) (*indexeddf.DataFrame, error) {
	sql := func(q string) func(*indexeddf.Session) (*indexeddf.DataFrame, error) {
		return func(s *indexeddf.Session) (*indexeddf.DataFrame, error) { return s.SQL(q) }
	}
	return map[string]func(*indexeddf.Session) (*indexeddf.DataFrame, error){
		"single-key": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.OrderBy("val"), nil
		},
		"single-key-desc": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.OrderBy("-val"), nil
		},
		"multi-key-mixed": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.OrderBy("tag", "-grp", "id"), nil
		},
		"string-desc-nulls": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.OrderBy("-tag"), nil
		},
		"expr-key":      sql("SELECT id, val FROM facts ORDER BY (val * 2) DESC, id"),
		"sort-over-agg": sql("SELECT grp, SUM(val) AS s, COUNT(*) AS c FROM facts GROUP BY grp ORDER BY s DESC, grp"),
		"filtered-sort": sql("SELECT id, grp, val FROM facts WHERE val > 0 ORDER BY grp, val"),
		"row-fallback":  sql("SELECT id, tag FROM facts ORDER BY UPPER(tag), id"),
		"sort-after-join": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			return s.SQL("SELECT label, val FROM facts JOIN dims ON grp = gid ORDER BY val, label")
		},
	}
}

func TestVecSortMatchesRowSort(t *testing.T) {
	queries := sortQueries()
	for ti, tr := range sortTrials() {
		for qname, q := range queries {
			t.Run(fmt.Sprintf("%s/%s", tr.name, qname), func(t *testing.T) {
				seed := int64(4000 + ti)
				rowSess := shuffleTrialSession(t, tr, seed, true)
				vecSess := shuffleTrialSession(t, tr, seed, false)
				want := runQueryOrdered(t, rowSess, q)
				got := runQueryOrdered(t, vecSess, q)
				if len(want) != len(got) {
					t.Fatalf("row sort returned %d rows, batch sort %d", len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("row %d differs:\n row sort:   %s\n batch sort: %s", i, want[i], got[i])
					}
				}
			})
		}
	}
}

func TestTopNMatchesRowSortLimit(t *testing.T) {
	limits := []int64{0, 1, 7, 100, 100_000}
	for ti, tr := range sortTrials() {
		for _, n := range limits {
			t.Run(fmt.Sprintf("%s/limit-%d", tr.name, n), func(t *testing.T) {
				seed := int64(8000 + ti)
				rowSess := shuffleTrialSession(t, tr, seed, true)
				vecSess := shuffleTrialSession(t, tr, seed, false)
				q := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
					return s.SQL(fmt.Sprintf("SELECT id, grp, val, tag FROM facts ORDER BY val, tag DESC LIMIT %d", n))
				}
				want := runQueryOrdered(t, rowSess, q)
				got := runQueryOrdered(t, vecSess, q)
				if len(want) != len(got) {
					t.Fatalf("row engine returned %d rows, top-n %d", len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("row %d differs:\n row engine: %s\n top-n:      %s", i, want[i], got[i])
					}
				}
			})
		}
	}
}

// TestVecSortNullsOrdering pins the NULL placement contract on both
// engines: NULLs first ascending, last descending (DESC flips the whole
// comparison, like sqltypes.Compare under the row sort).
func TestVecSortNullsOrdering(t *testing.T) {
	for _, rowEngine := range []bool{true, false} {
		sess := indexeddf.NewSession(indexeddf.Config{DisableVectorized: rowEngine, TablePartitions: 2})
		schema := indexeddf.NewSchema(
			indexeddf.Field{Name: "id", Type: indexeddf.Int64},
			indexeddf.Field{Name: "v", Type: indexeddf.Int64, Nullable: true},
		)
		rows := []indexeddf.Row{
			indexeddf.R(int64(0), int64(2)),
			{indexeddf.V(int64(1)), indexeddf.V(nil)},
			indexeddf.R(int64(2), int64(1)),
			{indexeddf.V(int64(3)), indexeddf.V(nil)},
		}
		df, err := sess.CreateTable("t", schema, rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := df.Cache(); err != nil {
			t.Fatal(err)
		}
		ids := func(q string) []int64 {
			out, err := sess.MustSQL(q).Collect()
			if err != nil {
				t.Fatal(err)
			}
			var got []int64
			for _, r := range out {
				got = append(got, r[0].Int64Val())
			}
			return got
		}
		asc := ids("SELECT id, v FROM t ORDER BY v, id")
		if fmt.Sprint(asc) != "[1 3 2 0]" {
			t.Fatalf("rowEngine=%v: ASC null ordering got %v, want [1 3 2 0]", rowEngine, asc)
		}
		desc := ids("SELECT id, v FROM t ORDER BY v DESC, id")
		if fmt.Sprint(desc) != "[0 2 1 3]" {
			t.Fatalf("rowEngine=%v: DESC null ordering got %v, want [0 2 1 3]", rowEngine, desc)
		}
		topn := ids("SELECT id, v FROM t ORDER BY v, id LIMIT 2")
		if fmt.Sprint(topn) != "[1 3]" {
			t.Fatalf("rowEngine=%v: top-n null ordering got %v, want [1 3]", rowEngine, topn)
		}
	}
}

// TestVecSortOverViewScan: ORDER BY over an aggregation answered from a
// materialized view sorts the view's delta-maintained state through the
// batch path (VecViewScan feeding VecSort/VecTopN).
func TestVecSortOverViewScan(t *testing.T) {
	// Views require an indexed base table; buildSession keys facts on grp.
	rowSess := buildSession(t, indexeddf.Config{DisableVectorized: true}, true)
	vecSess := buildSession(t, indexeddf.Config{}, true)
	const viewDef = "CREATE MATERIALIZED VIEW by_grp AS SELECT grp, SUM(val) AS s, COUNT(*) AS c FROM facts GROUP BY grp"
	for _, s := range []*indexeddf.Session{rowSess, vecSess} {
		if _, err := s.SQL(viewDef); err != nil {
			t.Fatal(err)
		}
	}
	const q = "SELECT grp, SUM(val) AS s, COUNT(*) AS c FROM facts GROUP BY grp ORDER BY s DESC, grp LIMIT 5"
	// The aggregate must actually be answered from the view and sorted on
	// the batch path.
	df, err := vecSess.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	explain, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"VecTopN", "VecViewScan"} {
		if !strings.Contains(explain, want) {
			t.Fatalf("view-backed top-n plan missing %s:\n%s", want, explain)
		}
	}
	query := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) { return s.SQL(q) }
	want := runQueryOrdered(t, rowSess, query)
	got := runQueryOrdered(t, vecSess, query)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("view-backed sort differs:\n row: %v\n vec: %v", want, got)
	}
	// The full-sort flavor over the view state must match too.
	sorted := "SELECT grp, SUM(val) AS s, COUNT(*) AS c FROM facts GROUP BY grp ORDER BY s DESC, grp"
	querySorted := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) { return s.SQL(sorted) }
	want = runQueryOrdered(t, rowSess, querySorted)
	got = runQueryOrdered(t, vecSess, querySorted)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("view-backed full sort differs:\n row: %v\n vec: %v", want, got)
	}
}

// TestVecSortConcurrentCursors: many goroutines stream sorted results from
// one session concurrently (some abandoning mid-stream) without races or
// cross-cursor interference.
func TestVecSortConcurrentCursors(t *testing.T) {
	tr := shuffleTrial{name: "conc", rows: 8_000, groups: 200, nullFrac: 7, tableParts: 6, shufParts: 4}
	sess := shuffleTrialSession(t, tr, 77, false)
	ref := runQueryOrdered(t, sess, func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		df, err := s.Table("facts")
		if err != nil {
			return nil, err
		}
		return df.OrderBy("val", "id"), nil
	})
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			df, err := sess.Table("facts")
			if err != nil {
				errs <- err
				return
			}
			rows, err := df.OrderBy("val", "id").Query(context.Background())
			if err != nil {
				errs <- err
				return
			}
			defer rows.Close()
			// Odd workers abandon after a prefix; even workers drain.
			limit := len(ref)
			if w%2 == 1 {
				limit = 25
			}
			for i := 0; i < limit; i++ {
				if !rows.Next() {
					errs <- fmt.Errorf("worker %d: cursor ended at row %d: %v", w, i, rows.Err())
					return
				}
				if got := rows.Row().String(); got != ref[i] {
					errs <- fmt.Errorf("worker %d row %d: got %s, want %s", w, i, got, ref[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTopNConcurrentCursors: concurrent ORDER BY ... LIMIT cursors (the
// bounded merge path) under the race detector.
func TestTopNConcurrentCursors(t *testing.T) {
	tr := shuffleTrial{name: "conc-topn", rows: 8_000, groups: 200, nullFrac: 7, tableParts: 6, shufParts: 4}
	sess := shuffleTrialSession(t, tr, 78, false)
	ref := runQueryOrdered(t, sess, func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		return s.SQL("SELECT id, val FROM facts ORDER BY val DESC, id LIMIT 50")
	})
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows, err := sess.Query(context.Background(), "SELECT id, val FROM facts ORDER BY val DESC, id LIMIT 50")
			if err != nil {
				errs <- err
				return
			}
			defer rows.Close()
			i := 0
			for rows.Next() {
				if got := rows.Row().String(); got != ref[i] {
					errs <- fmt.Errorf("worker %d row %d: got %s, want %s", w, i, got, ref[i])
					return
				}
				i++
			}
			if err := rows.Err(); err != nil {
				errs <- fmt.Errorf("worker %d: %v", w, err)
				return
			}
			if i != len(ref) {
				errs <- fmt.Errorf("worker %d: streamed %d of %d rows", w, i, len(ref))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
