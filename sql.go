package indexeddf

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/sqlparser"
)

// SQL compiles a SQL query against the session catalog and returns a lazy
// DataFrame. Supported subset: SELECT [DISTINCT] exprs FROM t [AS a]
// [INNER|LEFT [OUTER]|CROSS JOIN t2 ON cond]... [WHERE cond]
// [GROUP BY exprs] [HAVING cond] [ORDER BY exprs [ASC|DESC]] [LIMIT n]
// and UNION ALL chains; scalar functions UPPER/LOWER/LENGTH/ABS/CONCAT/
// SUBSTR/YEAR/COALESCE, LIKE, BETWEEN, IN lists, IS [NOT] NULL, CAST;
// aggregates COUNT(*)/COUNT/SUM/MIN/MAX/AVG.
//
// Queries over Indexed DataFrame tables go through the same index-aware
// optimizer rules as the DataFrame API: equality predicates and equi-joins
// on indexed columns execute as index lookups and indexed joins.
func (s *Session) SQL(query string) (*DataFrame, error) {
	node, err := sqlparser.Parse(query, func(name string) (catalog.Table, error) {
		t, ok := s.LookupTable(name)
		if !ok {
			return nil, fmt.Errorf("indexeddf: table %q not found", name)
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	return s.frame(node), nil
}

// MustSQL is SQL, panicking on parse errors (examples and tests).
func (s *Session) MustSQL(query string) *DataFrame {
	df, err := s.SQL(query)
	if err != nil {
		panic(err)
	}
	return df
}
