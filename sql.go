package indexeddf

import (
	"context"
	"fmt"
	"strings"
	"time"

	"indexeddf/internal/plan"
	"indexeddf/internal/sqlparser"
	"indexeddf/internal/sqltypes"
)

// SQL compiles a SQL statement against the session catalog. Queries return
// a lazy DataFrame. Supported query subset: SELECT [DISTINCT] exprs FROM t
// [AS a] [INNER|LEFT [OUTER]|CROSS JOIN t2 ON cond]... [WHERE cond]
// [GROUP BY exprs] [HAVING cond] [ORDER BY exprs [ASC|DESC]] [LIMIT n]
// and UNION ALL chains; scalar functions UPPER/LOWER/LENGTH/ABS/CONCAT/
// SUBSTR/YEAR/COALESCE, LIKE, BETWEEN, IN lists, IS [NOT] NULL, CAST;
// aggregates COUNT(*)/COUNT/SUM/MIN/MAX/AVG.
//
// Queries over Indexed DataFrame tables go through the same index-aware
// optimizer rules as the DataFrame API: equality predicates and equi-joins
// on indexed columns execute as index lookups and indexed joins, and
// aggregations matching a registered materialized view are answered from
// the view's delta-maintained state. ORDER BY ... LIMIT n is recognized
// as a Top-N plan: the optimizer fuses the pair into a TopN node and the
// vectorized engine runs bounded per-partition heaps plus an n-row merge
// instead of a full global sort; a plain ORDER BY runs as the batch sort
// (per-partition sorted runs, k-way merge).
//
// DDL: CREATE MATERIALIZED VIEW name AS SELECT ... registers an
// incrementally maintained view; DROP MATERIALIZED VIEW name and REFRESH
// MATERIALIZED VIEW name manage it. DDL statements execute eagerly and
// return a one-row status DataFrame.
func (s *Session) SQL(query string) (*DataFrame, error) {
	stmt, err := sqlparser.ParseStatement(query, s.resolveTable)
	if err != nil {
		return nil, err
	}
	switch stmt.Kind {
	case sqlparser.StmtSelect:
		return s.frame(stmt.Select), nil
	case sqlparser.StmtExplain:
		if stmt.NumParams > 0 {
			return nil, fmt.Errorf("indexeddf: EXPLAIN does not support parameter placeholders")
		}
		df := s.frame(stmt.Select)
		var text string
		var err error
		if stmt.Analyze {
			// EXPLAIN ANALYZE executes eagerly: the statement runs to
			// completion here and the rendered plan carries its actuals.
			text, err = df.ExplainAnalyze(context.Background())
		} else {
			text, err = df.Explain()
		}
		if err != nil {
			return nil, err
		}
		return s.textFrame("plan", text), nil
	case sqlparser.StmtCreateView:
		if _, err := s.createMaterializedView(stmt.ViewName, stmt.ViewSQL, stmt.Select); err != nil {
			return nil, err
		}
		return s.statusFrame(fmt.Sprintf("created materialized view %s", stmt.ViewName)), nil
	case sqlparser.StmtDropView:
		if err := s.DropMaterializedView(stmt.ViewName); err != nil {
			return nil, err
		}
		return s.statusFrame(fmt.Sprintf("dropped materialized view %s", stmt.ViewName)), nil
	case sqlparser.StmtRefreshView:
		if err := s.RefreshMaterializedView(stmt.ViewName); err != nil {
			return nil, err
		}
		return s.statusFrame(fmt.Sprintf("refreshed materialized view %s", stmt.ViewName)), nil
	case sqlparser.StmtAnalyzeTable:
		if err := s.AnalyzeTable(stmt.TableName); err != nil {
			return nil, err
		}
		return s.statusFrame(fmt.Sprintf("analyzed table %s", stmt.TableName)), nil
	default:
		return nil, fmt.Errorf("indexeddf: unsupported statement kind %d", stmt.Kind)
	}
}

// statusFrame wraps a DDL outcome as a one-row DataFrame.
func (s *Session) statusFrame(msg string) *DataFrame {
	schema := sqltypes.NewSchema(sqltypes.Field{Name: "status", Type: sqltypes.String})
	rows := []sqltypes.Row{{sqltypes.NewString(msg)}}
	return s.frame(plan.NewValues(schema, rows))
}

// textFrame wraps multi-line text (a rendered plan) as a DataFrame with one
// row per line.
func (s *Session) textFrame(col, text string) *DataFrame {
	schema := sqltypes.NewSchema(sqltypes.Field{Name: col, Type: sqltypes.String})
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	rows := make([]sqltypes.Row, len(lines))
	for i, line := range lines {
		rows[i] = sqltypes.Row{sqltypes.NewString(line)}
	}
	return s.frame(plan.NewValues(schema, rows))
}

// MustSQL is SQL, panicking on parse errors (examples and tests).
func (s *Session) MustSQL(query string) *DataFrame {
	df, err := s.SQL(query)
	if err != nil {
		panic(err)
	}
	return df
}

// Query compiles a SQL statement and executes it as a streaming cursor
// under ctx — SQL + DataFrame.Query in one call, the shape a database
// client expects. For repeated parameterized statements use Prepare, which
// also skips compilation.
func (s *Session) Query(ctx context.Context, query string) (*Rows, error) {
	t0 := time.Now()
	df, err := s.SQL(query)
	if err != nil {
		return nil, err
	}
	parseNs := time.Since(t0).Nanoseconds()
	t1 := time.Now()
	exec, err := s.compile(df.node)
	if err != nil {
		return nil, err
	}
	return s.queryExecMeta(ctx, exec, queryMeta{
		sql: query, parseNs: parseNs, planNs: time.Since(t1).Nanoseconds()})
}
