package indexeddf

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"indexeddf/internal/sqltypes"
)

// WriteCSV executes the DataFrame and writes its rows as CSV with a header
// row of short column names. NULLs render as empty cells.
func (df *DataFrame) WriteCSV(w io.Writer) error {
	schema, err := df.Schema()
	if err != nil {
		return err
	}
	rows, err := df.Collect()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(schema.ShortNames()); err != nil {
		return err
	}
	rec := make([]string, schema.Len())
	for _, r := range rows {
		for i, v := range r {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV to a file path.
func (df *DataFrame) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := df.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses CSV (header expected) into rows matching schema, casting
// each cell to the column type. Empty cells become NULL for nullable
// columns.
func ReadCSV(r io.Reader, schema *sqltypes.Schema) ([]sqltypes.Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Len()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("indexeddf: reading CSV header: %w", err)
	}
	_ = header
	var rows []sqltypes.Row
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("indexeddf: CSV line %d: %w", line, err)
		}
		row := make(sqltypes.Row, schema.Len())
		for i, cell := range rec {
			f := schema.Field(i)
			if cell == "" && f.Nullable {
				row[i] = sqltypes.Null
				continue
			}
			v, err := sqltypes.NewString(cell).Cast(f.Type)
			if err != nil {
				return nil, fmt.Errorf("indexeddf: CSV line %d column %q: %w", line, f.Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
}

// ReadCSVFile is ReadCSV from a file path.
func ReadCSVFile(path string, schema *sqltypes.Schema) ([]sqltypes.Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, schema)
}

// CreateTableFromCSV reads a CSV file and registers it as a table.
func (s *Session) CreateTableFromCSV(name, path string, schema *sqltypes.Schema) (*DataFrame, error) {
	rows, err := ReadCSVFile(path, schema)
	if err != nil {
		return nil, err
	}
	return s.CreateTable(name, schema, rows)
}
