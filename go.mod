module indexeddf

go 1.22
