package indexeddf

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"indexeddf/internal/opt"
	"indexeddf/internal/physical"
	"indexeddf/internal/sqlparser"
)

// aggregateWithoutViews compiles and runs a query with the view rewrite
// forced off (same session, same storage): the from-scratch recomputation
// the equivalence tests compare view-answered results against.
func (s *Session) aggregateWithoutViews(query string) ([]Row, error) {
	node, err := sqlparser.Parse(query, s.resolveTable)
	if err != nil {
		return nil, err
	}
	analyzed, err := opt.Analyze(node)
	if err != nil {
		return nil, err
	}
	optimized, err := opt.Optimize(analyzed)
	if err != nil {
		return nil, err
	}
	pl := opt.NewPlanner(opt.PlannerConfig{
		ShufflePartitions:  s.cfg.ShufflePartitions,
		BroadcastThreshold: s.cfg.BroadcastThreshold,
		DisableVectorized:  s.cfg.DisableVectorized,
		DisableViewRewrite: true,
	})
	exec, err := pl.Plan(optimized)
	if err != nil {
		return nil, err
	}
	r, err := exec.Execute(physical.NewExecContext(s.ctx))
	if err != nil {
		return nil, err
	}
	return s.ctx.Collect(r)
}

// rowsEquivalent compares row sets with float tolerance (AVG divisions
// accumulate differently in the delta and recompute paths).
func rowsEquivalent(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	sortRows(a)
	sortRows(b)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.IsNull() != y.IsNull() {
				return false
			}
			if x.IsNull() {
				continue
			}
			if x.T == Float64 || y.T == Float64 {
				if math.Abs(x.Float64Val()-y.Float64Val()) > 1e-9 {
					return false
				}
				continue
			}
			if fmt.Sprint(x) != fmt.Sprint(y) {
				return false
			}
		}
	}
	return true
}

// TestViewRandomizedEquivalence drives randomized append/delete workloads
// and asserts, at every checkpoint, that the view-answered aggregate is
// value-identical to recomputing the same query on the live snapshot.
func TestViewRandomizedEquivalence(t *testing.T) {
	queries := []string{
		"SELECT region, COUNT(*) AS cnt, SUM(amount) AS total, MIN(amount) AS lo, MAX(amount) AS hi, AVG(amount) AS mean FROM sales GROUP BY region",
		"SELECT region, COUNT(amount) AS cnt FROM sales WHERE amount > 50 GROUP BY region",
		"SELECT COUNT(*) AS cnt, SUM(amount) AS total, MIN(amount) AS lo FROM sales",
	}
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s, df := newViewSession(t, 30, Config{})
			for i, q := range queries {
				if _, err := s.SQL(fmt.Sprintf("CREATE MATERIALIZED VIEW v%d AS %s", i, q)); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(seed))
			regions := []string{"emea", "amer", "apac", "anz", "latam"}
			live := map[int64]bool{}
			for i := int64(0); i < 30; i++ {
				live[i] = true
			}
			nextID := int64(1000)
			for step := 0; step < 300; step++ {
				switch rng.Intn(5) {
				case 0, 1, 2: // append 1-4 rows (sometimes null amounts)
					var rows []Row
					for i := 0; i < 1+rng.Intn(4); i++ {
						id := nextID
						nextID++
						var amount any
						if rng.Intn(6) == 0 {
							amount = nil
						} else {
							amount = int64(rng.Intn(200))
						}
						rows = append(rows, R(id, regions[rng.Intn(len(regions))], amount))
						live[id] = true
					}
					if _, err := df.AppendRowsSlice(rows); err != nil {
						t.Fatal(err)
					}
				case 3: // overwrite an existing key (multi-version chain)
					for id := range live {
						if _, err := df.AppendRowsSlice([]Row{R(id, regions[rng.Intn(len(regions))], int64(rng.Intn(200)))}); err != nil {
							t.Fatal(err)
						}
						break
					}
				case 4: // delete a random live key
					for id := range live {
						df.IndexedCore().Delete(V(id))
						delete(live, id)
						break
					}
				}
				if step%25 != 24 {
					continue
				}
				for _, q := range queries {
					got, err := s.MustSQL(q).Collect()
					if err != nil {
						t.Fatal(err)
					}
					want, err := s.aggregateWithoutViews(q)
					if err != nil {
						t.Fatal(err)
					}
					if !rowsEquivalent(got, want) {
						sortRows(got)
						sortRows(want)
						t.Fatalf("step %d: %s\nview-answered: %v\nrecomputed:    %v", step, q, got, want)
					}
				}
			}
			// The pruned change log must stay bounded.
			if n := df.IndexedCore().ChangeLogSize(); n > 1000 {
				t.Fatalf("change log retained %d records", n)
			}
		})
	}
}

// TestViewConcurrentAppendersAndRefresh hammers a view with concurrent
// appenders, deleters and view-answered readers (run under -race), then
// asserts the quiescent state equals a from-scratch recomputation.
func TestViewConcurrentAppendersAndRefresh(t *testing.T) {
	const q = "SELECT region, COUNT(*) AS cnt, SUM(amount) AS total FROM sales GROUP BY region"
	s, df := newViewSession(t, 10, Config{})
	if _, err := s.SQL("CREATE MATERIALIZED VIEW v AS " + q); err != nil {
		t.Fatal(err)
	}

	const (
		appenders = 4
		perWorker = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, appenders+2)
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			regions := []string{"emea", "amer", "apac"}
			for i := 0; i < perWorker; i++ {
				id := int64(1000 + w*perWorker + i)
				if _, err := df.AppendRowsSlice([]Row{R(id, regions[i%3], int64(i))}); err != nil {
					errs <- err
					return
				}
				if i%17 == 0 {
					df.IndexedCore().Delete(V(id))
				}
			}
		}(w)
	}
	// Readers keep forcing delta refreshes mid-write.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.MustSQL(q).Collect(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, err := s.MustSQL(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.aggregateWithoutViews(q)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEquivalent(got, want) {
		sortRows(got)
		sortRows(want)
		t.Fatalf("quiescent view state diverged\nview-answered: %v\nrecomputed:    %v", got, want)
	}
	v, _ := s.MaterializedView("v")
	if v.RefreshedVersion() == 0 {
		t.Fatal("view never refreshed")
	}
}
