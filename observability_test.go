package indexeddf

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"indexeddf/internal/testutil"
)

// newObsSession builds a session over an n-row two-column table "t"
// (id ascending, val = id % 101) for observability assertions.
func newObsSession(t *testing.T, cfg Config, n int) *Session {
	t.Helper()
	s := NewSession(cfg)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = R(int64(i), int64(i%101))
	}
	if _, err := s.CreateTable("t", bigSchema(), rows); err != nil {
		t.Fatal(err)
	}
	return s
}

// rootActualRows parses the root operator's "actual rows=N" annotation out
// of an EXPLAIN ANALYZE rendering.
func rootActualRows(t *testing.T, plan string) int64 {
	t.Helper()
	root, _, _ := strings.Cut(plan, "\n")
	_, after, ok := strings.Cut(root, "actual rows=")
	if !ok {
		t.Fatalf("root plan line carries no actuals: %q", root)
	}
	num := after
	if i := strings.IndexAny(num, " )"); i >= 0 {
		num = num[:i]
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		t.Fatalf("unparseable actual rows in %q: %v", root, err)
	}
	return n
}

// TestExplainAnalyzeMatchesCollect pins EXPLAIN ANALYZE's root-operator
// actuals against the same statement's Collect result on both engines, for
// a shuffle GROUP BY and a fused Top-N plan.
func TestExplainAnalyzeMatchesCollect(t *testing.T) {
	queries := []string{
		"SELECT val, COUNT(*) AS c FROM t GROUP BY val",
		"SELECT id, val FROM t ORDER BY val, id LIMIT 7",
	}
	for _, engine := range []struct {
		name string
		cfg  Config
	}{
		{"vectorized", Config{TablePartitions: 8}},
		{"row", Config{TablePartitions: 8, DisableVectorized: true}},
	} {
		t.Run(engine.name, func(t *testing.T) {
			s := newObsSession(t, engine.cfg, 50_000)
			for _, q := range queries {
				ref, err := s.MustSQL(q).Collect()
				if err != nil {
					t.Fatal(err)
				}
				df, err := s.SQL("EXPLAIN ANALYZE " + q)
				if err != nil {
					t.Fatal(err)
				}
				lines, err := df.Collect()
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				for _, l := range lines {
					sb.WriteString(l[0].String())
					sb.WriteByte('\n')
				}
				plan := sb.String()
				if got := rootActualRows(t, plan); got != int64(len(ref)) {
					t.Fatalf("%s: EXPLAIN ANALYZE root rows=%d, Collect returned %d\n%s",
						q, got, len(ref), plan)
				}
				if !strings.Contains(plan, "wall=") {
					t.Fatalf("%s: plan carries no wall times\n%s", q, plan)
				}
			}
		})
	}
}

// TestExplainAnalyzeDataFrame exercises the DataFrame entry point directly
// and checks the query-level summary footer rides along.
func TestExplainAnalyzeDataFrame(t *testing.T) {
	s := newObsSession(t, Config{TablePartitions: 4}, 10_000)
	out, err := s.MustSQL("SELECT val, SUM(id) FROM t GROUP BY val").ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rootActualRows(t, out), int64(101); got != want {
		t.Fatalf("root rows=%d, want %d\n%s", got, want, out)
	}
	if !strings.Contains(out, "tasks=") {
		t.Fatalf("summary footer missing from:\n%s", out)
	}
}

// TestObservabilityConcurrentQueryIsolation runs overlapping queries (the
// race detector supervises in CI) and asserts each cursor's stats describe
// only its own execution while the registry's totals reconcile across all
// of them.
func TestObservabilityConcurrentQueryIsolation(t *testing.T) {
	s := newObsSession(t, Config{TablePartitions: 8, Parallelism: 4}, 50_000)
	stmt, err := s.Prepare("SELECT id FROM t WHERE val < ?")
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 4
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		delivered int64
		ids       = map[string]bool{}
	)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				bound := int64((w*perWorker+i)%100 + 1)
				rows, err := stmt.Query(context.Background(), bound)
				if err != nil {
					errs <- err
					return
				}
				var n int64
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					errs <- err
					return
				}
				rows.Close()
				qs := rows.Stats()
				if qs == nil {
					errs <- fmt.Errorf("nil stats on an observability-enabled session")
					return
				}
				if qs.RowsReturned() != n {
					errs <- fmt.Errorf("query %s: stats say %d rows, cursor delivered %d",
						qs.ID, qs.RowsReturned(), n)
					return
				}
				if qs.TasksStarted() == 0 || qs.TasksCompleted() > qs.TasksStarted() {
					errs <- fmt.Errorf("query %s: implausible task counts %d/%d",
						qs.ID, qs.TasksCompleted(), qs.TasksStarted())
					return
				}
				mu.Lock()
				delivered += n
				if ids[qs.ID] {
					mu.Unlock()
					errs <- fmt.Errorf("query id %s assigned twice", qs.ID)
					return
				}
				ids[qs.ID] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	val := func(name string) float64 {
		v, ok := s.Metrics().Value(name)
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		return v
	}
	if active := val("indexeddf_queries_active"); active != 0 {
		t.Fatalf("queries_active = %v after all cursors closed", active)
	}
	if started, done := val("indexeddf_queries_started_total"), val("indexeddf_queries_finished_total"); started != done {
		t.Fatalf("started %v != finished %v", started, done)
	}
	// The registry's row total covers the whole session (setup queries
	// included) — it can only be at least what these workers counted.
	if total := val("indexeddf_rows_returned_total"); total < float64(delivered) {
		t.Fatalf("rows_returned_total %v < workers' own count %d", total, delivered)
	}
	if hits := val("indexeddf_plan_cache_hits_total"); hits < float64(workers*perWorker-1) {
		t.Fatalf("plan_cache_hits_total = %v, want >= %d", hits, workers*perWorker-1)
	}
}

// TestObservabilityDisabled: with Config.DisableObservability the query
// path records nothing — but EXPLAIN ANALYZE still opts in explicitly.
func TestObservabilityDisabled(t *testing.T) {
	s := newObsSession(t, Config{TablePartitions: 4, DisableObservability: true}, 10_000)
	rows, err := s.Query(context.Background(), "SELECT val, COUNT(*) FROM t GROUP BY val")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if rows.Stats() != nil {
		t.Fatal("Stats() non-nil with observability disabled")
	}
	if out := rows.AnalyzeString(); out != "" {
		t.Fatalf("AnalyzeString() = %q, want empty", out)
	}
	if evs := s.TraceEvents(); evs != nil {
		t.Fatalf("TraceEvents() = %d events, want none", len(evs))
	}
	// Registry counters still move (they are session-global and free).
	if v, _ := s.Metrics().Value("indexeddf_queries_finished_total"); v < 1 {
		t.Fatalf("queries_finished_total = %v", v)
	}
	// EXPLAIN ANALYZE force-enables instrumentation for its one execution.
	out, err := s.MustSQL("SELECT COUNT(*) FROM t").ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "actual rows=") {
		t.Fatalf("EXPLAIN ANALYZE under DisableObservability carries no actuals:\n%s", out)
	}
}

// TestTraceRingBounded: the trace ring retains at most TraceCapacity
// events, reports drops, still answers per-query lookups for recent
// queries, and owns no goroutines.
func TestTraceRingBounded(t *testing.T) {
	testutil.CheckGoroutines(t)
	const capacity = 32
	s := newObsSession(t, Config{TablePartitions: 4, TraceCapacity: capacity}, 1_000)
	var lastID string
	for i := 0; i < 20; i++ {
		rows, err := s.Query(context.Background(), "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		rows.Close()
		lastID = rows.Stats().ID
	}
	evs := s.TraceEvents()
	if len(evs) > capacity {
		t.Fatalf("ring retained %d events, capacity %d", len(evs), capacity)
	}
	if v, _ := s.Metrics().Value("indexeddf_trace_events_dropped_total"); v == 0 {
		t.Fatal("20 queries × several events never wrapped a 32-event ring")
	}
	mine := s.TraceEventsFor(lastID)
	if len(mine) == 0 {
		t.Fatalf("no retained events for the most recent query %s", lastID)
	}
	var sawClose bool
	for _, ev := range mine {
		if ev.Name == "close" {
			sawClose = true
		}
	}
	if !sawClose {
		t.Fatalf("query %s retained %d events but no close", lastID, len(mine))
	}
}

// TestSlowQueryLogFires: a threshold every query exceeds routes each
// finished query through the hook with its annotated plan.
func TestSlowQueryLogFires(t *testing.T) {
	var (
		mu   sync.Mutex
		got  []SlowQuery
		q    = "SELECT val, COUNT(*) FROM t GROUP BY val"
		sess *Session
	)
	sess = NewSession(Config{
		TablePartitions:    4,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog: func(sq SlowQuery) {
			mu.Lock()
			got = append(got, sq)
			mu.Unlock()
		},
	})
	rows := make([]Row, 10_000)
	for i := range rows {
		rows[i] = R(int64(i), int64(i%101))
	}
	if _, err := sess.CreateTable("t", bigSchema(), rows); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got = got[:0] // setup queries may have tripped the hook too
	mu.Unlock()

	cur, err := sess.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for cur.Next() {
		n++
	}
	cur.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("slow-query hook fired %d times, want 1", len(got))
	}
	sq := got[0]
	if sq.SQL != q || sq.Rows != n || sq.Duration <= 0 {
		t.Fatalf("hook payload %+v, want sql=%q rows=%d", sq, q, n)
	}
	if !strings.Contains(sq.Plan, "actual rows=") {
		t.Fatalf("slow-query plan carries no actuals:\n%s", sq.Plan)
	}
	if v, _ := sess.Metrics().Value("indexeddf_queries_slow_total"); v != 1 {
		t.Fatalf("queries_slow_total = %v, want 1", v)
	}
}

// TestMetricsExposition: the registry renders valid Prometheus text with
// the engine's metric families present.
func TestMetricsExposition(t *testing.T) {
	s := newObsSession(t, Config{TablePartitions: 4}, 1_000)
	if _, err := s.MustSQL("SELECT COUNT(*) FROM t").Collect(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP indexeddf_queries_started_total",
		"# TYPE indexeddf_queries_started_total counter",
		"# TYPE indexeddf_query_duration_seconds histogram",
		"indexeddf_query_duration_seconds_bucket{le=",
		"indexeddf_query_duration_seconds_count",
		"indexeddf_tasks_completed_total",
		"indexeddf_plan_cache_entries",
		"indexeddf_memory_pool_used_bytes",
		"indexeddf_trace_events_dropped_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
