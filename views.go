package indexeddf

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/faultpoint"
	"indexeddf/internal/opt"
	"indexeddf/internal/plan"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqlparser"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/stream"
	"indexeddf/internal/view"
)

// Materialized views: a registered aggregate query over an Indexed
// DataFrame table whose per-group state is delta-maintained from the
// table's change log. The planner answers matching aggregations straight
// from the view (see internal/opt's view rewrite); refresh folds only the
// rows appended or deleted since the view's last refresh.

// CreateMaterializedView registers an incrementally maintained view named
// name defined by selectSQL (SELECT <group cols, aggregates> FROM
// <indexed table> [WHERE ...] GROUP BY ...). The view is built eagerly,
// change capture is enabled on the base table, and subsequent matching
// aggregate queries are answered from the maintained state.
func (s *Session) CreateMaterializedView(name, selectSQL string) (catalog.MaterializedView, error) {
	node, err := sqlparser.Parse(selectSQL, s.resolveTable)
	if err != nil {
		return nil, err
	}
	return s.createMaterializedView(name, selectSQL, node)
}

func (s *Session) createMaterializedView(name, selectSQL string, node plan.Node) (catalog.MaterializedView, error) {
	// Serialized against DropTable so the view cannot register over a base
	// that is concurrently being torn down (which would leak the view and
	// its change capture).
	s.ddl.Lock()
	defer s.ddl.Unlock()
	if _, exists := s.LookupTable(name); exists {
		return nil, fmt.Errorf("indexeddf: table or view %q already exists", name)
	}
	analyzed, err := opt.Analyze(node)
	if err != nil {
		return nil, err
	}
	optimized, err := opt.Optimize(analyzed)
	if err != nil {
		return nil, err
	}
	def, err := view.DefFromPlan(name, selectSQL, optimized)
	if err != nil {
		return nil, err
	}
	v, err := view.New(def, s.views)
	if err != nil {
		return nil, err
	}
	if err := s.views.Register(v); err != nil {
		return nil, err
	}
	if err := s.register(name, v); err != nil {
		s.views.Drop(name)
		return nil, err
	}
	// Cached plans over the base table may now be answerable from the new
	// view — recompile them on next use (plans over other tables stay
	// warm; register already purged plans shadowed by the view's name).
	s.plans.purgeTables(v.BaseName())
	return v, nil
}

// DropMaterializedView removes a view from the catalog. Dropping a base
// table's last view turns its change capture off and discards the
// retained log, so tables without views never pay for capture.
func (s *Session) DropMaterializedView(name string) error {
	s.ddl.Lock()
	defer s.ddl.Unlock()
	v, ok := s.views.Get(name)
	if !ok {
		return fmt.Errorf("indexeddf: materialized view %q not found", name)
	}
	s.views.Drop(name)
	s.mu.Lock()
	delete(s.tables, name)
	s.mu.Unlock()
	// Plans answered from this view (or scanning it by name) reference it
	// and purge; plans over the base table that never used it stay warm.
	s.plans.purgeTables(name)
	if len(s.views.ForBase(v.Base())) == 0 {
		v.Base().DisableChangeCapture()
	}
	return nil
}

// RefreshMaterializedView folds the base table's delta into the named
// view (queries refresh implicitly; this is the explicit maintenance
// entry point REFRESH MATERIALIZED VIEW maps to).
func (s *Session) RefreshMaterializedView(name string) error {
	v, ok := s.views.Get(name)
	if !ok {
		return fmt.Errorf("indexeddf: materialized view %q not found", name)
	}
	return v.Refresh()
}

// MaterializedView returns the named view's catalog handle.
func (s *Session) MaterializedView(name string) (catalog.MaterializedView, bool) {
	return s.views.Get(name)
}

// MaterializedViews lists registered view names.
func (s *Session) MaterializedViews() []string {
	views := s.views.List()
	out := make([]string, len(views))
	for i, v := range views {
		out[i] = v.Name()
	}
	return out
}

// refreshViewsOf folds pending deltas into every view over the named base
// table (stream ingestion calls this after each applied batch).
func (s *Session) refreshViewsOf(t catalog.Table) error {
	it, ok := t.(*catalog.IndexedTable)
	if !ok {
		return nil
	}
	for _, v := range s.views.ForBase(it.Core()) {
		if err := v.Refresh(); err != nil {
			return fmt.Errorf("indexeddf: refreshing view %q: %w", v.Name(), err)
		}
	}
	return nil
}

func (s *Session) resolveTable(name string) (catalog.Table, error) {
	t, ok := s.LookupTable(name)
	if !ok {
		return nil, fmt.Errorf("indexeddf: table %q not found", name)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Stream ingestion with view maintenance

// IngestTopic drains a stream topic into a registered table as consumer
// group, applying messages in batches of batchSize rows (default 256) and
// incrementally refreshing every materialized view over the table after
// each applied batch — ingested topics keep views fresh without any
// rescan. It returns the number of rows applied.
func (s *Session) IngestTopic(topic *stream.Topic, group, tableName string, batchSize int) (int64, error) {
	if batchSize <= 0 {
		batchSize = 256
	}
	t, ok := s.LookupTable(tableName)
	if !ok {
		return 0, fmt.Errorf("indexeddf: table %q not found", tableName)
	}
	var applied int64
	for {
		mark := topic.Offsets(group)
		msgs := topic.Poll(group, batchSize)
		if len(msgs) == 0 {
			return applied, nil
		}
		rows := make([]sqltypes.Row, len(msgs))
		for i, m := range msgs {
			rows[i] = m.Row
		}
		n, err := s.ingestBatch(t, tableName, rows)
		applied += n
		if err != nil {
			if n == 0 {
				// The batch failed before any row landed: rewind the group
				// so a later drain redelivers it instead of losing it. A
				// batch whose append stuck (n > 0, the refresh failed) is
				// not rewound — redelivering would apply it twice.
				topic.SeekOffsets(group, mark)
			}
			return applied, err
		}
	}
}

// ingestBatch applies one polled batch and refreshes the table's views,
// containing panics from either step so a corrupt message or a faulty
// refresh surfaces as an error on this call while the session — and the
// table's already-applied rows — stay serviceable. Returns the rows
// actually appended (the refresh may fail after the append stuck).
func (s *Session) ingestBatch(t catalog.Table, tableName string, rows []sqltypes.Row) (applied int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = rdd.AsTaskPanic(r)
		}
	}()
	if err := faultpoint.Hit(faultpoint.IngestAppend); err != nil {
		return 0, err
	}
	switch tt := t.(type) {
	case *catalog.IndexedTable:
		if err := tt.Core().Append(rows); err != nil {
			return 0, err
		}
	case *catalog.ColumnTable:
		tt.Append(rows)
	default:
		return 0, fmt.Errorf("indexeddf: table %q (%T) cannot ingest streams", tableName, t)
	}
	s.ingBatch.Inc()
	s.ingRows.Add(int64(len(rows)))
	return int64(len(rows)), s.refreshViewsOf(t)
}
