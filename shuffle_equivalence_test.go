package indexeddf_test

import (
	"fmt"
	"math/rand"
	"testing"

	"indexeddf"
)

// The columnar exchange must be invisible except for speed: any plan with
// a shuffle (GROUP BY with a final merge, shuffle hash joins, shuffled
// indexed joins) returns exactly what the row exchange returns. These
// trials sweep the shapes that stress the scatter/merge path: NULL group
// keys, empty table and reduce partitions, a single group, more groups
// than a batch holds (multiple sealed batches per reducer), and composite
// string+int keys.

// shuffleTrial is one randomized table/layout configuration.
type shuffleTrial struct {
	name       string
	rows       int
	groups     int // distinct non-null grp values
	nullFrac   int // 1-in-n NULL rate for grp/val (0 = never)
	tableParts int
	shufParts  int
}

func shuffleTrialData(rng *rand.Rand, tr shuffleTrial) ([]indexeddf.Row, *indexeddf.Schema) {
	schema := indexeddf.NewSchema(
		indexeddf.Field{Name: "id", Type: indexeddf.Int64},
		indexeddf.Field{Name: "grp", Type: indexeddf.Int64, Nullable: true},
		indexeddf.Field{Name: "val", Type: indexeddf.Float64, Nullable: true},
		indexeddf.Field{Name: "tag", Type: indexeddf.String, Nullable: true},
	)
	rows := make([]indexeddf.Row, tr.rows)
	for i := range rows {
		grp := indexeddf.V(int64(rng.Intn(tr.groups)))
		val := indexeddf.V(rng.NormFloat64() * 100)
		tag := indexeddf.V(fmt.Sprintf("t%d", rng.Intn(5)))
		if tr.nullFrac > 0 {
			if rng.Intn(tr.nullFrac) == 0 {
				grp = indexeddf.V(nil)
			}
			if rng.Intn(tr.nullFrac) == 0 {
				val = indexeddf.V(nil)
			}
			if rng.Intn(tr.nullFrac) == 0 {
				tag = indexeddf.V(nil)
			}
		}
		rows[i] = indexeddf.Row{indexeddf.V(int64(i)), grp, val, tag}
	}
	return rows, schema
}

func shuffleTrialSession(t *testing.T, tr shuffleTrial, seed int64, rowEngine bool) *indexeddf.Session {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	facts, fschema := shuffleTrialData(rng, tr)
	dims, dschema := dimData(rng, 10)
	sess := indexeddf.NewSession(indexeddf.Config{
		DisableVectorized: rowEngine,
		TablePartitions:   tr.tableParts,
		ShufflePartitions: tr.shufParts,
		// Force the shuffle join strategies (no broadcast shortcut).
		BroadcastThreshold: 1,
	})
	fdf, err := sess.CreateTable("facts", fschema, facts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fdf.Cache(); err != nil {
		t.Fatal(err)
	}
	ddf, err := sess.CreateTable("dims", dschema, dims)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ddf.Cache(); err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestBatchExchangeMatchesRowExchange(t *testing.T) {
	trials := []shuffleTrial{
		{name: "empty-table", rows: 0, groups: 5, tableParts: 4, shufParts: 4},
		{name: "empty-partitions", rows: 2, groups: 5, tableParts: 8, shufParts: 4},
		{name: "single-group", rows: 2_000, groups: 1, nullFrac: 7, tableParts: 4, shufParts: 7},
		{name: "small-nulls", rows: 300, groups: 11, nullFrac: 3, tableParts: 3, shufParts: 5},
		{name: "many-groups", rows: 6_000, groups: 3_000, nullFrac: 9, tableParts: 4, shufParts: 4},
		{name: "one-reducer", rows: 1_500, groups: 40, nullFrac: 6, tableParts: 5, shufParts: 1},
	}
	queries := map[string]func(*indexeddf.Session) (*indexeddf.DataFrame, error){
		"groupby-int": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.GroupBy("grp").Agg(indexeddf.CountAll(), indexeddf.Sum("val"),
				indexeddf.Min("val"), indexeddf.Max("val"), indexeddf.Avg("val")), nil
		},
		"groupby-composite": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.GroupBy("grp", "tag").Agg(indexeddf.CountAll(), indexeddf.Sum("val"),
				indexeddf.Count("val"), indexeddf.Max("tag")), nil
		},
		"global-agg": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Agg(indexeddf.CountAll(), indexeddf.Sum("val"), indexeddf.Min("grp")), nil
		},
		"shuffle-join-agg": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			f, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			d, err := s.Table("dims")
			if err != nil {
				return nil, err
			}
			return f.Join(d, indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid"))).
				GroupBy("label").Agg(indexeddf.CountAll(), indexeddf.Sum("val")), nil
		},
		"filter-groupby": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Filter(indexeddf.Gt(indexeddf.Col("val"), indexeddf.Lit(float64(0)))).
				GroupBy("grp").Agg(indexeddf.Sum("val"), indexeddf.Avg("val")), nil
		},
	}
	for ti, tr := range trials {
		for qname, q := range queries {
			t.Run(fmt.Sprintf("%s/%s", tr.name, qname), func(t *testing.T) {
				seed := int64(1000 + ti)
				rowSess := shuffleTrialSession(t, tr, seed, true)
				vecSess := shuffleTrialSession(t, tr, seed, false)
				want := runQuery(t, rowSess, q)
				got := runQuery(t, vecSess, q)
				if len(want) != len(got) {
					t.Fatalf("row exchange returned %d rows, batch exchange %d", len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("row %d differs:\n row exchange:   %s\n batch exchange: %s", i, want[i], got[i])
					}
				}
			})
		}
	}
}
