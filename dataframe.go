package indexeddf

import (
	"context"
	"fmt"
	"strings"
	"time"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/opt"
	"indexeddf/internal/physical"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

// DataFrame is a lazily evaluated, immutable query description (a logical
// plan) bound to a Session. Actions (Collect, Count, Show) trigger
// analysis, optimization, physical planning and execution.
type DataFrame struct {
	sess *Session
	node plan.Node
}

// Plan exposes the DataFrame's logical plan.
func (df *DataFrame) Plan() plan.Node { return df.node }

// Schema analyzes the plan and returns its output schema.
func (df *DataFrame) Schema() (*sqltypes.Schema, error) {
	analyzed, err := opt.Analyze(df.node)
	if err != nil {
		return nil, err
	}
	return analyzed.Schema(), nil
}

// ---------------------------------------------------------------------------
// Listing 1: the paper's Indexed DataFrame API

// CreateIndex materializes the DataFrame and builds an Indexed DataFrame
// over it, hash partitioned and indexed on column colNo — the paper's
// `regularDF.createIndex(colNo)`. The build routes every row to its hash
// partition (the paper's shuffle) and bulk-inserts into the per-partition
// Ctrie and row batches.
func (df *DataFrame) CreateIndex(colNo int) (*DataFrame, error) {
	schema, err := df.Schema()
	if err != nil {
		return nil, err
	}
	if colNo < 0 || colNo >= schema.Len() {
		return nil, fmt.Errorf("indexeddf: index column %d out of range for %s", colNo, schema)
	}
	rows, err := df.Collect()
	if err != nil {
		return nil, err
	}
	name := df.sess.anonName(relationName(df.node) + "_idx")
	idf, err := df.sess.CreateIndexedTable(name, schema, colNo)
	if err != nil {
		return nil, err
	}
	if err := idf.indexedTable().Core().Append(rows); err != nil {
		return nil, err
	}
	return idf, nil
}

// CreateIndexOn is CreateIndex addressing the column by name.
func (df *DataFrame) CreateIndexOn(column string) (*DataFrame, error) {
	schema, err := df.Schema()
	if err != nil {
		return nil, err
	}
	i := schema.IndexOf(column)
	if i < 0 {
		return nil, fmt.Errorf("indexeddf: column %q not found in %s", column, schema)
	}
	return df.CreateIndex(i)
}

// Cache pins the DataFrame in executor memory — the paper's
// `indexedDF.cache()`. Indexed relations are memory-resident by
// construction, so caching them is a no-op returning the same frame;
// vanilla relations materialize their columnar cache; derived plans
// materialize into a new cached table.
func (df *DataFrame) Cache() (*DataFrame, error) {
	switch t := tableOf(df.node).(type) {
	case *catalog.IndexedTable:
		return df, nil
	case *catalog.ColumnTable:
		if err := t.SetCached(true); err != nil {
			return nil, err
		}
		return df, nil
	}
	// Derived plan: materialize into an anonymous cached table.
	schema, err := df.Schema()
	if err != nil {
		return nil, err
	}
	rows, err := df.Collect()
	if err != nil {
		return nil, err
	}
	name := df.sess.anonName("cached")
	cached, err := df.sess.CreateTable(name, schema, rows)
	if err != nil {
		return nil, err
	}
	if _, err := cached.Cache(); err != nil {
		return nil, err
	}
	return cached, nil
}

// GetRows returns a DataFrame of all rows whose indexed key equals key —
// the paper's `indexedDF.getRows(lookupKey)`. The planner lowers it to an
// IndexLookup (Ctrie probe + backward-chain walk).
func (df *DataFrame) GetRows(key any) (*DataFrame, error) {
	it := df.indexedTable()
	if it == nil {
		return nil, fmt.Errorf("indexeddf: GetRows requires an Indexed DataFrame")
	}
	schema := df.node.Schema()
	keyName := schema.Field(it.KeyColumn()).Name
	return df.Filter(Eq(Col(keyName), Lit(key))), nil
}

// AppendRows appends another DataFrame's rows — the paper's
// `indexedDF.appendRows(aRegularDF)`. On an Indexed DataFrame the rows are
// routed to their hash partitions and appended under multi-version
// concurrency (running queries keep their snapshots). On a vanilla cached
// table the appends invalidate the columnar cache (Spark's behaviour the
// paper improves on). Organizing few rows per call gives fine-grained
// low-latency updates; large DataFrames amortize as batches.
func (df *DataFrame) AppendRows(other *DataFrame) (*DataFrame, error) {
	rows, err := other.Collect()
	if err != nil {
		return nil, err
	}
	return df.AppendRowsSlice(rows)
}

// AppendRowsSlice appends literal rows (no query execution on the input).
func (df *DataFrame) AppendRowsSlice(rows []sqltypes.Row) (*DataFrame, error) {
	switch t := tableOf(df.node).(type) {
	case *catalog.IndexedTable:
		if err := t.Core().Append(rows); err != nil {
			return nil, err
		}
		return df, nil
	case *catalog.ColumnTable:
		t.Append(rows)
		return df, nil
	}
	return nil, fmt.Errorf("indexeddf: AppendRows requires a base table DataFrame")
}

// Join joins with another DataFrame on cond — the paper's
// `indexedDF.join(regularDF, indexedDF.col("c1") === regularDF.col("c2"))`.
// When either side is indexed on its join column the planner triggers the
// indexed join (indexed side = build side, probe side shuffled to the
// index partitioning or broadcast when small).
func (df *DataFrame) Join(other *DataFrame, cond expr.Expr) *DataFrame {
	return df.sess.frame(plan.NewJoin(plan.InnerJoin, df.node, other.node, cond))
}

// LeftJoin is a left outer join.
func (df *DataFrame) LeftJoin(other *DataFrame, cond expr.Expr) *DataFrame {
	return df.sess.frame(plan.NewJoin(plan.LeftOuterJoin, df.node, other.node, cond))
}

// JoinOn equi-joins on named columns.
func (df *DataFrame) JoinOn(other *DataFrame, leftCol, rightCol string) *DataFrame {
	return df.Join(other, Eq(Col(leftCol), Col(rightCol)))
}

// ---------------------------------------------------------------------------
// Relational operators

// Filter keeps rows satisfying cond.
func (df *DataFrame) Filter(cond expr.Expr) *DataFrame {
	return df.sess.frame(plan.NewFilter(cond, df.node))
}

// Where is Filter.
func (df *DataFrame) Where(cond expr.Expr) *DataFrame { return df.Filter(cond) }

// Select projects expressions.
func (df *DataFrame) Select(exprs ...expr.Expr) *DataFrame {
	return df.sess.frame(plan.NewProject(exprs, df.node))
}

// SelectCols projects columns by name.
func (df *DataFrame) SelectCols(names ...string) *DataFrame {
	exprs := make([]expr.Expr, len(names))
	for i, n := range names {
		exprs[i] = Col(n)
	}
	return df.Select(exprs...)
}

// GroupBy starts a grouped aggregation.
func (df *DataFrame) GroupBy(cols ...string) *GroupedData {
	groups := make([]expr.Expr, len(cols))
	for i, c := range cols {
		groups[i] = Col(c)
	}
	return &GroupedData{df: df, groups: groups}
}

// Agg computes global aggregates (no grouping).
func (df *DataFrame) Agg(aggs ...expr.Agg) *DataFrame {
	return df.sess.frame(plan.NewAggregate(nil, aggs, df.node))
}

// OrderBy sorts by columns; prefix a name with '-' for descending
// (e.g. OrderBy("-creationDate", "id")).
func (df *DataFrame) OrderBy(cols ...string) *DataFrame {
	orders := make([]plan.SortOrder, len(cols))
	for i, c := range cols {
		desc := false
		if strings.HasPrefix(c, "-") {
			desc = true
			c = c[1:]
		}
		orders[i] = plan.SortOrder{Expr: Col(c), Desc: desc}
	}
	return df.sess.frame(plan.NewSort(orders, df.node))
}

// Limit truncates to n rows.
func (df *DataFrame) Limit(n int64) *DataFrame {
	return df.sess.frame(plan.NewLimit(n, df.node))
}

// Union concatenates with another DataFrame (UNION ALL).
func (df *DataFrame) Union(other *DataFrame) *DataFrame {
	return df.sess.frame(plan.NewUnion(df.node, other.node))
}

// Distinct removes duplicate rows (GROUP BY all columns).
func (df *DataFrame) Distinct() (*DataFrame, error) {
	schema, err := df.Schema()
	if err != nil {
		return nil, err
	}
	groups := make([]expr.Expr, schema.Len())
	for i, f := range schema.Fields {
		groups[i] = Col(f.Name)
	}
	return df.sess.frame(plan.NewAggregate(groups, nil, df.node)), nil
}

// As re-aliases a base relation (for self-joins).
func (df *DataFrame) As(alias string) (*DataFrame, error) {
	rel, ok := df.node.(*plan.Relation)
	if !ok {
		return nil, fmt.Errorf("indexeddf: As requires a base table DataFrame")
	}
	return df.sess.frame(plan.NewRelation(rel.Table, alias)), nil
}

// ---------------------------------------------------------------------------
// Actions
//
// Query is the primitive: a streaming cursor under a caller context. The
// batch actions (Collect, Count, First, Show) are compatibility shims that
// run the cursor to completion under context.Background().

// Query executes the plan as a streaming cursor: rows are pulled
// partition-at-a-time (batch-at-a-time inside vectorized subtrees) while
// remaining partition tasks run in the background, so first-row latency is
// decoupled from result size. Cancelling ctx — or exceeding its deadline,
// or the session's Config.QueryTimeout — stops the remaining partition
// tasks, shuffle stages and index scans promptly; the reason surfaces from
// Rows.Err().
func (df *DataFrame) Query(ctx context.Context) (*Rows, error) {
	return df.sess.queryNode(ctx, df.node)
}

// Collect executes the plan and returns all rows — Query under
// context.Background() drained to a slice.
func (df *DataFrame) Collect() ([]sqltypes.Row, error) {
	return df.CollectContext(context.Background())
}

// CollectContext is Collect under a cancellation context.
func (df *DataFrame) CollectContext(ctx context.Context) ([]sqltypes.Row, error) {
	return df.sess.executeCtx(ctx, df.node)
}

// Count executes the plan and returns the row count, streaming the cursor
// without materializing the result.
func (df *DataFrame) Count() (int64, error) {
	return df.CountContext(context.Background())
}

// CountContext is Count under a cancellation context.
func (df *DataFrame) CountContext(ctx context.Context) (int64, error) {
	rows, err := df.Query(ctx)
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	var n int64
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		return 0, err
	}
	return n, nil
}

// First returns the first row, or nil when empty. The cursor stops the
// scan as soon as the row arrives.
func (df *DataFrame) First() (sqltypes.Row, error) {
	rows, err := df.Limit(1).Query(context.Background())
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	if rows.Next() {
		return rows.Row(), nil
	}
	return nil, rows.Err()
}

// Show renders up to n rows as an aligned text table.
func (df *DataFrame) Show(n int) (string, error) {
	schema, err := df.Schema()
	if err != nil {
		return "", err
	}
	rows, err := df.Limit(int64(n)).Collect()
	if err != nil {
		return "", err
	}
	return renderTable(schema, rows), nil
}

// Explain returns the logical, optimized and physical plans.
func (df *DataFrame) Explain() (string, error) {
	analyzed, err := opt.Analyze(df.node)
	if err != nil {
		return "", err
	}
	optimized, err := df.sess.planner.Optimize(analyzed)
	if err != nil {
		return "", err
	}
	exec, err := df.sess.planner.Plan(optimized)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("== Analyzed Logical Plan ==\n")
	sb.WriteString(plan.TreeString(analyzed))
	sb.WriteString("== Optimized Logical Plan ==\n")
	sb.WriteString(plan.TreeString(optimized))
	sb.WriteString("== Physical Plan ==\n")
	sb.WriteString(physical.TreeString(exec))
	if views := opt.AnsweredFromView(exec); len(views) > 0 {
		sb.WriteString("== Materialized Views ==\n")
		for _, v := range views {
			fmt.Fprintf(&sb, "answered from materialized view %q (base %s, version %d, delta-maintained)\n",
				v.Name(), v.BaseName(), v.RefreshedVersion())
		}
	}
	return sb.String(), nil
}

// ExplainAnalyze compiles the plan, executes it to completion under ctx,
// and returns the physical plan annotated with the actuals recorded during
// that execution — rows, batches, predicate selectivity, wall time and
// memory per operator, plus a query-level summary (tasks, shuffle bytes,
// peak memory). It works even when the session was built with
// Config.DisableObservability: EXPLAIN ANALYZE is explicit opt-in
// instrumentation. The result rows are drained and discarded.
func (df *DataFrame) ExplainAnalyze(ctx context.Context) (string, error) {
	t0 := time.Now()
	exec, err := df.sess.compile(df.node)
	if err != nil {
		return "", err
	}
	rows, err := df.sess.queryExecMeta(ctx, exec, queryMeta{
		planNs: time.Since(t0).Nanoseconds(), force: true})
	if err != nil {
		return "", err
	}
	defer rows.Close()
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		return "", err
	}
	rows.Close() // settle totals before rendering
	return rows.AnalyzeString(), nil
}

// IndexedCore returns the underlying indexed storage when the DataFrame is
// a base Indexed DataFrame (nil otherwise); benchmarks and the demo use it
// for direct snapshot access.
func (df *DataFrame) IndexedCore() *core.IndexedTable {
	if it := df.indexedTable(); it != nil {
		return it.Core()
	}
	return nil
}

func (df *DataFrame) indexedTable() *catalog.IndexedTable {
	it, _ := tableOf(df.node).(*catalog.IndexedTable)
	return it
}

// tableOf unwraps a base relation's table, or nil for derived plans.
func tableOf(n plan.Node) catalog.Table {
	if rel, ok := n.(*plan.Relation); ok {
		return rel.Table
	}
	return nil
}

func relationName(n plan.Node) string {
	if rel, ok := n.(*plan.Relation); ok {
		return rel.Table.Name()
	}
	return "df"
}

// ---------------------------------------------------------------------------
// GroupedData

// GroupedData is a pending GROUP BY.
type GroupedData struct {
	df     *DataFrame
	groups []expr.Expr
}

// Agg finishes the aggregation with explicit aggregate descriptors.
func (g *GroupedData) Agg(aggs ...expr.Agg) *DataFrame {
	return g.df.sess.frame(plan.NewAggregate(g.groups, aggs, g.df.node))
}

// Count is GROUP BY ... COUNT(*).
func (g *GroupedData) Count() *DataFrame {
	return g.Agg(expr.Agg{Func: expr.CountStarAgg, Name: "count"})
}

// renderTable formats rows with padded columns.
func renderTable(schema *sqltypes.Schema, rows []sqltypes.Row) string {
	names := schema.ShortNames()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := v.String()
			cells[r][c] = s
			if c < len(widths) && len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		sb.WriteByte('|')
		for c, v := range vals {
			fmt.Fprintf(&sb, " %-*s |", widths[c], v)
		}
		sb.WriteByte('\n')
	}
	sep := func() {
		sb.WriteByte('+')
		for _, w := range widths {
			sb.WriteString(strings.Repeat("-", w+2))
			sb.WriteByte('+')
		}
		sb.WriteByte('\n')
	}
	sep()
	writeRow(names)
	sep()
	for _, r := range cells {
		writeRow(r)
	}
	sep()
	return sb.String()
}
