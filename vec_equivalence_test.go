package indexeddf_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"indexeddf"
)

// The vectorized engine must be invisible except for speed: every query
// returns exactly the row-at-a-time engine's result. These tests run the
// same workloads through both planners (DisableVectorized on/off) on both
// table kinds (vanilla columnar-cached and Indexed DataFrame) and compare.

type vecEnv struct {
	name string
	mk   func(t *testing.T, cfg indexeddf.Config) *indexeddf.Session
}

func vecTestData(rng *rand.Rand, n int) ([]indexeddf.Row, *indexeddf.Schema) {
	schema := indexeddf.NewSchema(
		indexeddf.Field{Name: "id", Type: indexeddf.Int64},
		indexeddf.Field{Name: "grp", Type: indexeddf.Int64, Nullable: true},
		indexeddf.Field{Name: "val", Type: indexeddf.Float64, Nullable: true},
		indexeddf.Field{Name: "tag", Type: indexeddf.String, Nullable: true},
	)
	rows := make([]indexeddf.Row, n)
	for i := range rows {
		var grp, val, tag indexeddf.Value
		if rng.Intn(10) == 0 {
			grp = indexeddf.V(nil)
		} else {
			grp = indexeddf.V(int64(rng.Intn(13)))
		}
		if rng.Intn(10) == 0 {
			val = indexeddf.V(nil)
		} else {
			val = indexeddf.V(rng.NormFloat64() * 10)
		}
		if rng.Intn(10) == 0 {
			tag = indexeddf.V(nil)
		} else {
			tag = indexeddf.V(fmt.Sprintf("t%d", rng.Intn(7)))
		}
		rows[i] = indexeddf.Row{indexeddf.V(int64(i)), grp, val, tag}
	}
	return rows, schema
}

func dimData(rng *rand.Rand, n int) ([]indexeddf.Row, *indexeddf.Schema) {
	schema := indexeddf.NewSchema(
		indexeddf.Field{Name: "gid", Type: indexeddf.Int64},
		indexeddf.Field{Name: "label", Type: indexeddf.String},
	)
	rows := make([]indexeddf.Row, n)
	for i := range rows {
		rows[i] = indexeddf.Row{indexeddf.V(int64(i)), indexeddf.V(fmt.Sprintf("g%d", rng.Intn(4)))}
	}
	return rows, schema
}

// buildSession loads the same data as either a cached vanilla table or an
// indexed table (keyed on grp for facts, gid for dims).
func buildSession(t *testing.T, cfg indexeddf.Config, indexed bool) *indexeddf.Session {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	facts, fschema := vecTestData(rng, 5000)
	dims, dschema := dimData(rng, 20)
	sess := indexeddf.NewSession(cfg)
	if indexed {
		fdf, err := sess.CreateIndexedTable("facts", fschema, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fdf.AppendRowsSlice(facts); err != nil {
			t.Fatal(err)
		}
		ddf, err := sess.CreateIndexedTable("dims", dschema, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ddf.AppendRowsSlice(dims); err != nil {
			t.Fatal(err)
		}
		return sess
	}
	fdf, err := sess.CreateTable("facts", fschema, facts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fdf.Cache(); err != nil {
		t.Fatal(err)
	}
	ddf, err := sess.CreateTable("dims", dschema, dims)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ddf.Cache(); err != nil {
		t.Fatal(err)
	}
	return sess
}

func canonical(rows []indexeddf.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func runQuery(t *testing.T, sess *indexeddf.Session, q func(*indexeddf.Session) (*indexeddf.DataFrame, error)) []string {
	t.Helper()
	df, err := q(sess)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return canonical(rows)
}

func TestVectorizedMatchesRowEngine(t *testing.T) {
	queries := map[string]func(*indexeddf.Session) (*indexeddf.DataFrame, error){
		"scan": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			return s.Table("facts")
		},
		"filter": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Filter(indexeddf.Gt(indexeddf.Col("val"), indexeddf.Lit(float64(0)))), nil
		},
		"filter-conjunction": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Filter(indexeddf.And(
				indexeddf.Ge(indexeddf.Col("grp"), indexeddf.Lit(int64(3))),
				indexeddf.Ne(indexeddf.Col("tag"), indexeddf.Lit("t1")))), nil
		},
		"filter-isnull": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Filter(indexeddf.IsNull(indexeddf.Col("val"))), nil
		},
		"project": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.SelectCols("tag", "grp"), nil
		},
		"project-exprs": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Select(
				indexeddf.As(indexeddf.Mul(indexeddf.Col("grp"), indexeddf.Lit(int64(3))), "g3"),
				indexeddf.As(indexeddf.Div(indexeddf.Col("val"), indexeddf.Col("grp")), "ratio")), nil
		},
		"project-fallback-func": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Select(indexeddf.As(indexeddf.Fn("UPPER", indexeddf.Col("tag")), "u")), nil
		},
		"aggregate": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.GroupBy("grp").Agg(indexeddf.CountAll(), indexeddf.Sum("val"),
				indexeddf.Min("val"), indexeddf.Max("tag"), indexeddf.Avg("val")), nil
		},
		"aggregate-global": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Agg(indexeddf.CountAll(), indexeddf.Sum("grp")), nil
		},
		"filter-project-aggregate": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			df, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return df.Filter(indexeddf.Gt(indexeddf.Col("val"), indexeddf.Lit(float64(-5)))).
				Select(indexeddf.Col("grp"), indexeddf.Col("val")).
				GroupBy("grp").Agg(indexeddf.CountAll(), indexeddf.Sum("val")), nil
		},
		"join-inner": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			f, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			d, err := s.Table("dims")
			if err != nil {
				return nil, err
			}
			return f.Join(d, indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid"))), nil
		},
		"join-residual": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			f, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			d, err := s.Table("dims")
			if err != nil {
				return nil, err
			}
			return f.Join(d, indexeddf.And(
				indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid")),
				indexeddf.Gt(indexeddf.Col("val"), indexeddf.Lit(float64(1))))), nil
		},
		"join-aggregate": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			// Join feeding an aggregate: the sink-aware pass vectorizes
			// the probe side here.
			f, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			d, err := s.Table("dims")
			if err != nil {
				return nil, err
			}
			return f.Join(d, indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid"))).
				GroupBy("label").Agg(indexeddf.CountAll(), indexeddf.Sum("val")), nil
		},
		"join-residual-aggregate": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			f, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			d, err := s.Table("dims")
			if err != nil {
				return nil, err
			}
			return f.Join(d, indexeddf.And(
				indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid")),
				indexeddf.Gt(indexeddf.Col("val"), indexeddf.Lit(float64(1))))).
				GroupBy("label").Count(), nil
		},
		"join-left-outer": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			f, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			d, err := s.Table("dims")
			if err != nil {
				return nil, err
			}
			return f.LeftJoin(d, indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid"))), nil
		},
		"distinct": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			f, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return f.SelectCols("grp", "tag").Distinct()
		},
		"sort-limit": func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
			f, err := s.Table("facts")
			if err != nil {
				return nil, err
			}
			return f.Filter(indexeddf.Lt(indexeddf.Col("grp"), indexeddf.Lit(int64(5)))).
				OrderBy("id").Limit(100), nil
		},
	}
	// Broadcast threshold 1 forces the shuffle join strategies too.
	for _, broadcast := range []int64{0, 1} {
		for _, indexed := range []bool{false, true} {
			for name, q := range queries {
				label := fmt.Sprintf("%s/indexed=%v/bt=%d", name, indexed, broadcast)
				t.Run(label, func(t *testing.T) {
					rowSess := buildSession(t, indexeddf.Config{DisableVectorized: true, BroadcastThreshold: broadcast}, indexed)
					vecSess := buildSession(t, indexeddf.Config{BroadcastThreshold: broadcast}, indexed)
					want := runQuery(t, rowSess, q)
					got := runQuery(t, vecSess, q)
					if len(want) != len(got) {
						t.Fatalf("row engine returned %d rows, vectorized %d", len(want), len(got))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("row %d differs:\n row engine: %s\n vectorized: %s", i, want[i], got[i])
						}
					}
				})
			}
		}
	}
}
