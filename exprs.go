package indexeddf

import (
	"fmt"
	"time"

	"indexeddf/internal/expr"
	"indexeddf/internal/sqltypes"
)

// Re-exported schema building blocks so applications only import this
// package.
type (
	// Schema is an ordered list of typed columns.
	Schema = sqltypes.Schema
	// Field is one column definition.
	Field = sqltypes.Field
	// Row is a tuple of values.
	Row = sqltypes.Row
	// Value is an SQL value.
	Value = sqltypes.Value
	// Expr is an expression tree node.
	Expr = expr.Expr
	// Agg describes an aggregate output.
	Agg = expr.Agg
)

// SQL data types.
const (
	Bool      = sqltypes.Bool
	Int32     = sqltypes.Int32
	Int64     = sqltypes.Int64
	Float64   = sqltypes.Float64
	String    = sqltypes.String
	Timestamp = sqltypes.Timestamp
)

// NewSchema builds a schema.
func NewSchema(fields ...Field) *Schema { return sqltypes.NewSchema(fields...) }

// V converts a Go value to an SQL value. Supported: nil, bool, int, int32,
// int64, float64, string, time.Time and Value itself.
func V(x any) Value {
	switch v := x.(type) {
	case nil:
		return sqltypes.Null
	case Value:
		return v
	case bool:
		return sqltypes.NewBool(v)
	case int:
		return sqltypes.NewInt64(int64(v))
	case int32:
		return sqltypes.NewInt32(v)
	case int64:
		return sqltypes.NewInt64(v)
	case float64:
		return sqltypes.NewFloat64(v)
	case string:
		return sqltypes.NewString(v)
	case time.Time:
		return sqltypes.NewTimestampFromTime(v)
	default:
		panic(fmt.Sprintf("indexeddf: unsupported literal type %T", x))
	}
}

// R builds a row from Go values.
func R(xs ...any) Row {
	r := make(Row, len(xs))
	for i, x := range xs {
		r[i] = V(x)
	}
	return r
}

// Col references a column by (optionally qualified) name.
func Col(name string) Expr { return expr.C(name) }

// Lit builds a literal from a Go value.
func Lit(x any) Expr { return expr.Lit(V(x)) }

// Eq builds l = r.
func Eq(l, r Expr) Expr { return expr.NewCmp(expr.Eq, l, r) }

// Ne builds l <> r.
func Ne(l, r Expr) Expr { return expr.NewCmp(expr.Ne, l, r) }

// Lt builds l < r.
func Lt(l, r Expr) Expr { return expr.NewCmp(expr.Lt, l, r) }

// Le builds l <= r.
func Le(l, r Expr) Expr { return expr.NewCmp(expr.Le, l, r) }

// Gt builds l > r.
func Gt(l, r Expr) Expr { return expr.NewCmp(expr.Gt, l, r) }

// Ge builds l >= r.
func Ge(l, r Expr) Expr { return expr.NewCmp(expr.Ge, l, r) }

// And builds l AND r.
func And(l, r Expr) Expr { return expr.And(l, r) }

// Or builds l OR r.
func Or(l, r Expr) Expr { return expr.Or(l, r) }

// Not negates e.
func Not(e Expr) Expr { return expr.NewNot(e) }

// IsNull tests e IS NULL.
func IsNull(e Expr) Expr { return &expr.IsNull{E: e} }

// IsNotNull tests e IS NOT NULL.
func IsNotNull(e Expr) Expr { return &expr.IsNull{E: e, Negate: true} }

// As names an expression.
func As(e Expr, name string) Expr { return expr.As(e, name) }

// Add builds l + r.
func Add(l, r Expr) Expr { return expr.NewArith(expr.Add, l, r) }

// Sub builds l - r.
func Sub(l, r Expr) Expr { return expr.NewArith(expr.Sub, l, r) }

// Mul builds l * r.
func Mul(l, r Expr) Expr { return expr.NewArith(expr.Mul, l, r) }

// Div builds l / r.
func Div(l, r Expr) Expr { return expr.NewArith(expr.Div, l, r) }

// Mod builds l % r.
func Mod(l, r Expr) Expr { return expr.NewArith(expr.Mod, l, r) }

// Fn calls a scalar function (UPPER, LOWER, LENGTH, ABS, CONCAT, SUBSTR,
// YEAR, COALESCE).
func Fn(name string, args ...Expr) Expr { return expr.NewFunc(name, args...) }

// Count is COUNT(column).
func Count(column string) Agg {
	return Agg{Func: expr.CountAgg, Arg: expr.C(column), Name: "count(" + column + ")"}
}

// CountAll is COUNT(*).
func CountAll() Agg { return Agg{Func: expr.CountStarAgg, Name: "count"} }

// Sum is SUM(column).
func Sum(column string) Agg {
	return Agg{Func: expr.SumAgg, Arg: expr.C(column), Name: "sum(" + column + ")"}
}

// Min is MIN(column).
func Min(column string) Agg {
	return Agg{Func: expr.MinAgg, Arg: expr.C(column), Name: "min(" + column + ")"}
}

// Max is MAX(column).
func Max(column string) Agg {
	return Agg{Func: expr.MaxAgg, Arg: expr.C(column), Name: "max(" + column + ")"}
}

// Avg is AVG(column).
func Avg(column string) Agg {
	return Agg{Func: expr.AvgAgg, Arg: expr.C(column), Name: "avg(" + column + ")"}
}
