// Package core implements the paper's primary contribution: the Indexed
// DataFrame storage engine. An IndexedTable is hash partitioned on its
// indexed column; each partition pairs a lock-free Ctrie index with
// append-only binary row batches and per-key backward chains, giving
// sub-linear point lookups and index-powered joins on data that keeps
// growing, with multi-version concurrency (readers pin O(1) snapshots
// while appends proceed).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"indexeddf/internal/ctrie"
	"indexeddf/internal/rowbatch"
	"indexeddf/internal/sqltypes"
)

// Options configures an IndexedTable.
type Options struct {
	// NumPartitions is the hash-partition count (default 4).
	NumPartitions int
	// BatchSize is the row-batch size in bytes (default 4 MB, the paper's
	// value).
	BatchSize int
}

func (o Options) withDefaults() Options {
	if o.NumPartitions <= 0 {
		o.NumPartitions = 4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = rowbatch.DefaultBatchSize
	}
	return o
}

// Partition is one indexed partition: the cTrie index, the row batches and
// (threaded through the rows) the backward-pointer lists.
type Partition struct {
	mu      sync.Mutex // serializes appends; reads are lock-free
	index   *ctrie.Ctrie[sqltypes.Value, rowbatch.Ptr]
	batches *rowbatch.Set
	keys    atomic.Int64 // distinct keys
	log     partLog      // change records (guarded by mu; see changelog.go)
	// deletes counts Delete() calls since creation/compaction (guarded by
	// mu). When zero, every batch row is index-reachable and snapshot
	// scans may walk batches in append order; otherwise they walk the
	// index so unreachable (deleted) rows stay invisible to queries.
	deletes int64
}

// IndexedTable is the Indexed DataFrame's storage: a set of indexed
// partitions hash partitioned on the key column.
type IndexedTable struct {
	schema  *sqltypes.Schema
	keyCol  int
	codec   *sqltypes.RowCodec
	parts   []*Partition
	version atomic.Int64
	rows    atomic.Int64
	capture changeCapture
	hooks   atomic.Pointer[StatsHooks]
}

// StatsHooks lets the catalog maintain table statistics incrementally.
// OnAppend is called with each successfully appended row slice;
// OnInvalidate whenever the table changes in a way that cannot be
// folded into additive statistics (deletes, partial-failure appends).
type StatsHooks struct {
	OnAppend     func(rows []sqltypes.Row)
	OnInvalidate func()
}

// SetStatsHooks installs (or, with nil, removes) the statistics
// maintenance hooks. Safe to call concurrently with appends; rows
// applied before the hooks land are the caller's responsibility
// (rebuild via a full scan).
func (t *IndexedTable) SetStatsHooks(h *StatsHooks) { t.hooks.Store(h) }

func (t *IndexedTable) statsAppend(rows []sqltypes.Row) {
	if h := t.hooks.Load(); h != nil && h.OnAppend != nil {
		h.OnAppend(rows)
	}
}

func (t *IndexedTable) statsInvalidate() {
	if h := t.hooks.Load(); h != nil && h.OnInvalidate != nil {
		h.OnInvalidate()
	}
}

// NewIndexedTable creates an empty IndexedTable indexed on schema column
// keyCol.
func NewIndexedTable(schema *sqltypes.Schema, keyCol int, opts Options) (*IndexedTable, error) {
	if keyCol < 0 || keyCol >= schema.Len() {
		return nil, fmt.Errorf("core: key column %d out of range for %s", keyCol, schema)
	}
	opts = opts.withDefaults()
	t := &IndexedTable{
		schema: schema,
		keyCol: keyCol,
		codec:  sqltypes.NewRowCodec(schema),
		parts:  make([]*Partition, opts.NumPartitions),
	}
	hasher := func(v sqltypes.Value) uint64 { return mix64(v.Hash64()) }
	for i := range t.parts {
		t.parts[i] = &Partition{
			index:   ctrie.New[sqltypes.Value, rowbatch.Ptr](hasher),
			batches: rowbatch.NewSet(opts.BatchSize),
		}
	}
	return t, nil
}

// mix64 is a splitmix64 finalizer applied on top of the value hash so that
// the trie sees well-spread bits even for sequential integer keys.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NormalizeKey canonicalizes an index key so values that compare SQL-equal
// are the same Ctrie key: integral types collapse to BIGINT and integral
// doubles to BIGINT. All index reads and writes go through this.
func NormalizeKey(v sqltypes.Value) sqltypes.Value {
	switch v.T {
	case sqltypes.Bool, sqltypes.Int32, sqltypes.Timestamp:
		return sqltypes.Value{T: sqltypes.Int64, I: v.I}
	case sqltypes.Float64:
		if v.F == float64(int64(v.F)) {
			return sqltypes.NewInt64(int64(v.F))
		}
	}
	return v
}

// Schema returns the table schema.
func (t *IndexedTable) Schema() *sqltypes.Schema { return t.schema }

// KeyColumn returns the indexed column ordinal.
func (t *IndexedTable) KeyColumn() int { return t.keyCol }

// NumPartitions returns the partition count.
func (t *IndexedTable) NumPartitions() int { return len(t.parts) }

// RowCount returns the total number of rows appended so far.
func (t *IndexedTable) RowCount() int64 { return t.rows.Load() }

// Version returns the table's monotonically increasing version, bumped on
// every append batch.
func (t *IndexedTable) Version() int64 { return t.version.Load() }

// PartitionFor returns the partition owning key.
func (t *IndexedTable) PartitionFor(key sqltypes.Value) int {
	return int(NormalizeKey(key).Hash64() % uint64(len(t.parts)))
}

// Append routes rows to their hash partitions and appends them. It is the
// fine-grained and batch update entry point: appending a one-row slice is
// a low-latency point insert, large slices amortize. Safe for concurrent
// use with readers and other appenders.
func (t *IndexedTable) Append(rows []sqltypes.Row) error {
	if len(rows) == 0 {
		return nil
	}
	n := len(t.parts)
	if len(rows) == 1 {
		// Fast path for fine-grained appends: no routing allocation.
		p := t.PartitionFor(rows[0][t.keyCol])
		logged, err := t.appendToPartition(p, rows)
		if err != nil {
			return err
		}
		if !logged {
			t.version.Add(1)
		}
		t.statsAppend(rows)
		return nil
	}
	routed := make([][]sqltypes.Row, n)
	for _, row := range rows {
		if len(row) != t.schema.Len() {
			return fmt.Errorf("core: row arity %d does not match schema %s", len(row), t.schema)
		}
		p := t.PartitionFor(row[t.keyCol])
		routed[p] = append(routed[p], row)
	}
	logged := false
	applied := false
	for p, part := range routed {
		if len(part) == 0 {
			continue
		}
		l, err := t.appendToPartition(p, part)
		if err != nil {
			if applied {
				// Earlier partitions already hold rows from this batch;
				// additive stats can no longer tell which rows landed.
				t.statsInvalidate()
			}
			return err
		}
		applied = true
		logged = logged || l
	}
	if !logged {
		t.version.Add(1)
	}
	t.statsAppend(rows)
	return nil
}

// AppendToPartition appends pre-routed rows to partition p. Every row's
// key must hash to p (the shuffle-based index build guarantees this).
func (t *IndexedTable) AppendToPartition(p int, rows []sqltypes.Row) error {
	_, err := t.appendToPartition(p, rows)
	if err == nil {
		t.statsAppend(rows)
	}
	return err
}

// appendToPartition applies the physical append under the partition lock
// and, when change capture is on, logs the change record under the same
// lock (bumping the table version); logged reports whether it did. The
// capture flag is read inside the lock so a snapshot taken after capture
// is enabled can never observe rows that are neither in its content nor in
// the change log it pins.
func (t *IndexedTable) appendToPartition(p int, rows []sqltypes.Row) (logged bool, err error) {
	part := t.parts[p]
	part.mu.Lock()
	defer part.mu.Unlock()
	capture := t.capture.enabled.Load()
	applied := 0
	var buf []byte
	for _, row := range rows {
		key := NormalizeKey(row[t.keyCol])
		prev, _ := part.index.Lookup(key)
		buf, err = t.codec.Encode(buf[:0], row)
		if err != nil {
			err = fmt.Errorf("core: partition %d: %v", p, err)
			break
		}
		var ptr rowbatch.Ptr
		ptr, err = part.batches.Append(prev, buf)
		if err != nil {
			err = fmt.Errorf("core: partition %d: %v", p, err)
			break
		}
		if _, had := part.index.Swap(key, ptr); !had {
			part.keys.Add(1)
		}
		t.rows.Add(1)
		applied++
	}
	if err != nil {
		if applied > 0 {
			if capture {
				// Part of the batch is physically visible but cannot be logged
				// as the caller's batch; break the log so delta consumers
				// recompute instead of silently missing the applied prefix.
				t.invalidateLogLocked(part)
			}
			// The applied prefix is visible but unknown to the caller, so
			// additive statistics can no longer be maintained.
			t.statsInvalidate()
		}
		return false, err
	}
	if capture {
		t.logAppendLocked(part, rows)
		return true, nil
	}
	return false, nil
}

// Delete removes the index entry for key, making its rows unreachable
// through the index (they remain in the row batches until compaction; the
// paper's system is append-only, deletion is our extension). It returns
// whether the key was present.
func (t *IndexedTable) Delete(key sqltypes.Value) bool {
	key = NormalizeKey(key)
	p := t.parts[t.PartitionFor(key)]
	p.mu.Lock()
	defer p.mu.Unlock()
	capture := t.capture.enabled.Load()
	var removedRows []sqltypes.Row
	if capture {
		// Views subtract the removed rows from their accumulators, so the
		// change record carries the key's whole chain at removal time.
		rows, err := t.collectChainLocked(p, key)
		if err != nil {
			// Undecodable chain: a per-row record would be wrong, so break
			// the log instead — consumers fall back to full recompute.
			t.invalidateLogLocked(p)
			capture = false
		}
		removedRows = rows
	}
	_, removed := p.index.Remove(key)
	if removed {
		p.keys.Add(-1)
		p.deletes++
		if capture {
			t.logDeleteLocked(p, key, removedRows)
		} else {
			t.version.Add(1)
		}
		// Deletes cannot be subtracted from min/max or the NDV sketch.
		t.statsInvalidate()
	}
	return removed
}

// DistinctKeys returns the number of distinct keys across partitions.
func (t *IndexedTable) DistinctKeys() int64 {
	var n int64
	for _, p := range t.parts {
		n += p.keys.Load()
	}
	return n
}

// MemoryUsage reports the bytes held by row batches (reserved), the bytes
// of encoded row data, and an estimate of the index overhead — the
// "relatively low memory overhead" the paper claims.
func (t *IndexedTable) MemoryUsage() (batchBytes, dataBytes, indexBytes int64) {
	for _, p := range t.parts {
		batchBytes += p.batches.MemoryUsage()
		dataBytes += p.batches.DataBytes()
	}
	// Ctrie node estimate: ~80 bytes per binding (sNode + its share of
	// cNode array slots and iNodes), measured empirically on this runtime.
	indexBytes = t.DistinctKeys() * 80
	return batchBytes, dataBytes, indexBytes
}

// Codec exposes the table's row codec (used by scans to decode rows).
func (t *IndexedTable) Codec() *sqltypes.RowCodec { return t.codec }
