package core

import (
	"sync/atomic"

	"indexeddf/internal/rowbatch"
	"indexeddf/internal/sqltypes"
)

// Change capture: the hook incremental materialized views maintain
// themselves from. When capture is enabled, every partition keeps an
// ordered log of append/delete records tagged with the table version the
// mutation produced. Records are value-based (they store the affected rows,
// not row-batch pointers), so they survive everything except Compact, which
// rewrites content without producing records and therefore invalidates the
// log (consumers detect the break and fall back to full recompute).
//
// The log is per partition and is appended while holding the same partition
// lock that guards the physical mutation. A Snapshot records, under that
// same lock, the log sequence number alongside the row-batch watermarks —
// so a snapshot's visible content in partition p is EXACTLY the prefix of
// p's log up to the recorded mark. Delta consumers that fold log records up
// to a snapshot's marks and recompute from that same snapshot can never
// double-count or miss an in-flight mutation.

// ChangeKind classifies a change record.
type ChangeKind uint8

// Change kinds.
const (
	// ChangeAppend records rows added to the partition.
	ChangeAppend ChangeKind = iota
	// ChangeDelete records an index-key removal; Rows holds the rows that
	// became unreachable (the key's whole chain at removal time).
	ChangeDelete
)

func (k ChangeKind) String() string { return [...]string{"append", "delete"}[k] }

// Change is one change record.
type Change struct {
	// Version is the table version this mutation produced.
	Version int64
	Kind    ChangeKind
	// Rows are the appended rows (ChangeAppend) or the rows made
	// unreachable (ChangeDelete). They are private clones.
	Rows []sqltypes.Row
	// Key is the removed index key (ChangeDelete only).
	Key sqltypes.Value
}

// partLog is one partition's change log. All fields are guarded by the
// owning Partition's mutex.
type partLog struct {
	// floor is the absolute sequence number of entries[0]; records below it
	// have been pruned or invalidated.
	floor int64
	// entries are the retained records; record i has absolute sequence
	// floor+i. A record's sequence number orders it within the partition;
	// the sequence AFTER the last record (floor+len) is the partition's
	// change mark.
	entries []Change
}

func (l *partLog) mark() int64 { return l.floor + int64(len(l.entries)) }

// changeCapture is the table-level switch plus counters.
type changeCapture struct {
	enabled atomic.Bool
}

// EnableChangeCapture turns on change logging for all partitions. It is
// idempotent and cheap; tables without views never pay for capture.
// Consumers must enable capture BEFORE snapshotting for their initial
// build: records logged after the enable and before the snapshot are
// already reflected in the snapshot and are skipped via its change marks.
func (t *IndexedTable) EnableChangeCapture() { t.capture.enabled.Store(true) }

// ChangeCaptureEnabled reports whether mutations are being logged.
func (t *IndexedTable) ChangeCaptureEnabled() bool { return t.capture.enabled.Load() }

// DisableChangeCapture turns logging back off and discards every retained
// record (the catalog calls it when a table's last materialized view is
// dropped, so capture never costs memory without a consumer). Any
// consumer that somehow still holds a cursor observes a log gap and falls
// back to full recompute.
func (t *IndexedTable) DisableChangeCapture() {
	t.capture.enabled.Store(false)
	for _, part := range t.parts {
		part.mu.Lock()
		t.invalidateLogLocked(part)
		part.mu.Unlock()
	}
}

// logAppendLocked records appended rows for partition p. Caller holds the
// partition lock and has already applied the mutation. Returns with the
// global version bumped.
func (t *IndexedTable) logAppendLocked(part *Partition, rows []sqltypes.Row) {
	v := t.version.Add(1)
	clones := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		clones[i] = r.Clone()
	}
	part.log.entries = append(part.log.entries, Change{Version: v, Kind: ChangeAppend, Rows: clones})
}

// logDeleteLocked records a key removal for partition p (rows are the
// chain's rows, already cloned). Caller holds the partition lock.
func (t *IndexedTable) logDeleteLocked(part *Partition, key sqltypes.Value, rows []sqltypes.Row) {
	v := t.version.Add(1)
	part.log.entries = append(part.log.entries, Change{Version: v, Kind: ChangeDelete, Rows: rows, Key: key})
}

// invalidateLogLocked breaks partition p's log after an out-of-band content
// rewrite (Compact): the mark advances past a phantom record so every
// cursor taken before the rewrite reads as out of range, forcing consumers
// to full recompute. Caller holds the partition lock.
func (t *IndexedTable) invalidateLogLocked(part *Partition) {
	part.log.floor = part.log.mark() + 1
	part.log.entries = nil
}

// ChangesBetween returns partition p's change records with sequence numbers
// in [from, to). ok is false when the log no longer reaches back to from
// (capture was off, records were pruned, or Compact invalidated the log) —
// the caller must rebuild from a snapshot instead of folding a delta.
func (t *IndexedTable) ChangesBetween(p int, from, to int64) (changes []Change, ok bool) {
	part := t.parts[p]
	part.mu.Lock()
	defer part.mu.Unlock()
	l := &part.log
	if from < l.floor || from > l.mark() || to > l.mark() {
		return nil, false
	}
	if to < from {
		return nil, false
	}
	if from == to {
		return nil, true
	}
	out := make([]Change, to-from)
	copy(out, l.entries[from-l.floor:to-l.floor])
	return out, true
}

// ChangeMark returns partition p's current change-log sequence mark.
func (t *IndexedTable) ChangeMark(p int) int64 {
	part := t.parts[p]
	part.mu.Lock()
	defer part.mu.Unlock()
	return part.log.mark()
}

// PruneChanges discards partition p's records below seq (exclusive), once
// every consumer has folded past them; it keeps the log's memory bounded.
// Pruning never invalidates cursors at or above seq.
func (t *IndexedTable) PruneChanges(p int, seq int64) {
	part := t.parts[p]
	part.mu.Lock()
	defer part.mu.Unlock()
	l := &part.log
	if seq <= l.floor {
		return
	}
	if seq > l.mark() {
		seq = l.mark()
	}
	l.entries = l.entries[seq-l.floor:]
	l.floor = seq
}

// ChangeLogSize reports the total retained change records across
// partitions (observability and tests).
func (t *IndexedTable) ChangeLogSize() int64 {
	var n int64
	for _, part := range t.parts {
		part.mu.Lock()
		n += int64(len(part.log.entries))
		part.mu.Unlock()
	}
	return n
}

// collectChainLocked clones the rows currently reachable from key's chain
// in part. Caller holds the partition lock.
func (t *IndexedTable) collectChainLocked(part *Partition, key sqltypes.Value) ([]sqltypes.Row, error) {
	ptr, ok := part.index.Lookup(key)
	if !ok {
		return nil, nil
	}
	var rows []sqltypes.Row
	row := make(sqltypes.Row, t.schema.Len())
	var decodeErr error
	err := part.batches.Chain(ptr, func(_ rowbatch.Ptr, payload []byte) bool {
		if e := t.codec.DecodeInto(payload, row); e != nil {
			decodeErr = e
			return false
		}
		rows = append(rows, row.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return rows, decodeErr
}
