package core

import (
	"fmt"
	"testing"

	"indexeddf/internal/sqltypes"
)

func TestCompactReclaimsDeletedKeys(t *testing.T) {
	tbl := newTable(t, 3)
	var rows []sqltypes.Row
	for i := int64(0); i < 300; i++ {
		rows = append(rows, mkRow(i%30, fmt.Sprintf("r%d", i), float64(i)))
	}
	if err := tbl.Append(rows); err != nil {
		t.Fatal(err)
	}
	// Delete two thirds of the keys.
	for k := int64(0); k < 30; k++ {
		if k%3 != 0 {
			tbl.Delete(sqltypes.NewInt64(k))
		}
	}
	if tbl.RowCount() != 300 {
		t.Fatalf("RowCount before compact = %d (rows linger)", tbl.RowCount())
	}
	dropped, err := tbl.Compact(false)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 200 {
		t.Fatalf("dropped = %d, want 200", dropped)
	}
	if tbl.RowCount() != 100 {
		t.Fatalf("RowCount after compact = %d", tbl.RowCount())
	}
	if tbl.DistinctKeys() != 10 {
		t.Fatalf("DistinctKeys after compact = %d", tbl.DistinctKeys())
	}
	// Surviving chains are intact and ordered newest-first.
	snap := tbl.Snapshot()
	got, err := snap.GetRows(sqltypes.NewInt64(0))
	if err != nil || len(got) != 10 {
		t.Fatalf("GetRows(0) = %d rows, %v", len(got), err)
	}
	if got[0][1].StringVal() != "r270" || got[9][1].StringVal() != "r0" {
		t.Fatalf("chain order broken: %v ... %v", got[0], got[9])
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("post-compact snapshot invalid: %v", err)
	}
	// Deleted keys stay gone.
	if rows, _ := snap.GetRows(sqltypes.NewInt64(1)); len(rows) != 0 {
		t.Fatal("deleted key resurrected by compact")
	}
}

func TestCompactOnlyNewestKeepsOneVersionPerKey(t *testing.T) {
	tbl := newTable(t, 2)
	for v := 0; v < 5; v++ {
		for k := int64(0); k < 8; k++ {
			if err := tbl.Append([]sqltypes.Row{mkRow(k, fmt.Sprintf("v%d", v), 0)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	dropped, err := tbl.Compact(true)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 32 { // 5 versions -> 1 per key, 8 keys
		t.Fatalf("dropped = %d, want 32", dropped)
	}
	snap := tbl.Snapshot()
	for k := int64(0); k < 8; k++ {
		got, err := snap.GetRows(sqltypes.NewInt64(k))
		if err != nil || len(got) != 1 {
			t.Fatalf("GetRows(%d) = %d rows, %v", k, len(got), err)
		}
		if got[0][1].StringVal() != "v4" {
			t.Fatalf("kept version = %v, want newest v4", got[0])
		}
	}
}

func TestCompactIsMVCCSafe(t *testing.T) {
	tbl := newTable(t, 2)
	for i := int64(0); i < 50; i++ {
		if err := tbl.Append([]sqltypes.Row{mkRow(i%5, fmt.Sprintf("r%d", i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	pre := tbl.Snapshot()
	tbl.Delete(sqltypes.NewInt64(2))
	if _, err := tbl.Compact(false); err != nil {
		t.Fatal(err)
	}
	// The pre-compact snapshot still serves the deleted key's full chain
	// from the old batches.
	rows, err := pre.GetRows(sqltypes.NewInt64(2))
	if err != nil || len(rows) != 10 {
		t.Fatalf("pre-compact snapshot GetRows(2) = %d rows, %v", len(rows), err)
	}
	n, err := pre.RowCount()
	if err != nil || n != 50 {
		t.Fatalf("pre-compact snapshot RowCount = %d, %v", n, err)
	}
	if err := pre.Validate(); err != nil {
		t.Fatalf("pre-compact snapshot invalidated: %v", err)
	}
	// Fresh snapshots see the compacted state.
	post := tbl.Snapshot()
	if rows, _ := post.GetRows(sqltypes.NewInt64(2)); len(rows) != 0 {
		t.Fatal("fresh snapshot sees deleted key")
	}
	pn, _ := post.RowCount()
	if pn != 40 {
		t.Fatalf("post-compact RowCount = %d, want 40", pn)
	}
	// The table remains appendable after compaction.
	if err := tbl.Append([]sqltypes.Row{mkRow(2, "back", 0)}); err != nil {
		t.Fatal(err)
	}
	if rows, _ := tbl.Snapshot().GetRows(sqltypes.NewInt64(2)); len(rows) != 1 {
		t.Fatal("append after compact broken")
	}
}

func TestCompactEmptyAndNoopTables(t *testing.T) {
	tbl := newTable(t, 2)
	dropped, err := tbl.Compact(false)
	if err != nil || dropped != 0 {
		t.Fatalf("empty compact: %d, %v", dropped, err)
	}
	if err := tbl.Append([]sqltypes.Row{mkRow(1, "a", 0)}); err != nil {
		t.Fatal(err)
	}
	v := tbl.Version()
	dropped, err = tbl.Compact(false)
	if err != nil || dropped != 0 {
		t.Fatalf("noop compact: %d, %v", dropped, err)
	}
	if tbl.Version() != v {
		t.Fatal("noop compact bumped version")
	}
}
