package core

import (
	"fmt"

	"indexeddf/internal/ctrie"
	"indexeddf/internal/rowbatch"
	"indexeddf/internal/sqltypes"
)

// Compact rebuilds every partition keeping only index-reachable rows,
// reclaiming space left behind by Delete (and by overwritten chains when
// onlyNewest is set, which keeps just the newest row per key — a
// "latest-version materialize" useful for slowly changing dimensions).
//
// This is our extension of the paper's append-only design (§2 notes
// multi-versioning; reclamation is left open). Compaction is MVCC-safe:
// snapshots taken before the compact hold references to the old Ctrie and
// row batches, which stay intact; the partition atomically switches to the
// rebuilt pair under its append lock, so new snapshots see the compacted
// state.
//
// It returns the number of rows dropped.
func (t *IndexedTable) Compact(onlyNewest bool) (dropped int64, err error) {
	for pi, part := range t.parts {
		d, err := t.compactPartition(pi, part, onlyNewest)
		if err != nil {
			return dropped, fmt.Errorf("core: compacting partition %d: %w", pi, err)
		}
		dropped += d
	}
	if dropped != 0 {
		t.version.Add(1)
	}
	return dropped, nil
}

func (t *IndexedTable) compactPartition(pi int, part *Partition, onlyNewest bool) (int64, error) {
	part.mu.Lock()
	defer part.mu.Unlock()

	oldIndex := part.index
	oldBatches := part.batches
	newBatches := rowbatch.NewSet(oldBatches.BatchSize())
	hasher := func(v sqltypes.Value) uint64 { return mix64(v.Hash64()) }
	newIndex := ctrie.New[sqltypes.Value, rowbatch.Ptr](hasher)

	var kept, keys int64
	var rebuildErr error
	// Walk keys; re-append each chain oldest-first so backward pointers
	// rebuild in append order.
	oldIndex.Iterate(func(key sqltypes.Value, head rowbatch.Ptr) bool {
		var payloads [][]byte
		err := oldBatches.Chain(head, func(_ rowbatch.Ptr, payload []byte) bool {
			payloads = append(payloads, payload) // newest first; aliases old batches
			return !onlyNewest                   // keep walking unless only the newest is wanted
		})
		if err != nil {
			rebuildErr = err
			return false
		}
		var prev rowbatch.Ptr
		for i := len(payloads) - 1; i >= 0; i-- {
			ptr, err := newBatches.Append(prev, payloads[i])
			if err != nil {
				rebuildErr = err
				return false
			}
			prev = ptr
			kept++
		}
		newIndex.Insert(key, prev)
		keys++
		return true
	})
	if rebuildErr != nil {
		return 0, rebuildErr // partition left untouched on failure
	}
	total := oldBatches.NumRows()
	part.index = newIndex
	part.batches = newBatches
	part.keys.Store(keys)
	part.deletes = 0 // rebuilt batches hold only index-reachable rows
	t.rows.Add(kept - total)
	if total != kept && t.capture.enabled.Load() {
		// Compaction rewrites content without producing change records
		// (onlyNewest drops overwritten chain rows outright), so any delta
		// cursor crossing this point would silently miss those drops.
		// Break the log: consumers detect the gap and fully recompute from
		// a post-compact snapshot.
		t.invalidateLogLocked(part)
	}
	return total - kept, nil
}
