package core

import (
	"testing"

	"indexeddf/internal/sqltypes"
)

func logSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "k", Type: sqltypes.Int64},
		sqltypes.Field{Name: "v", Type: sqltypes.Int64},
	)
}

func logRow(k, v int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt64(k), sqltypes.NewInt64(v)}
}

func newLogTable(t *testing.T, parts int) *IndexedTable {
	t.Helper()
	tbl, err := NewIndexedTable(logSchema(), 0, Options{NumPartitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// allChanges drains every partition's full log.
func allChanges(t *testing.T, tbl *IndexedTable) []Change {
	t.Helper()
	var out []Change
	for p := 0; p < tbl.NumPartitions(); p++ {
		ch, ok := tbl.ChangesBetween(p, 0, tbl.ChangeMark(p))
		if !ok {
			t.Fatalf("partition %d log unreadable from 0", p)
		}
		out = append(out, ch...)
	}
	return out
}

func TestChangeCaptureOffByDefault(t *testing.T) {
	tbl := newLogTable(t, 2)
	if err := tbl.Append([]sqltypes.Row{logRow(1, 10), logRow(2, 20)}); err != nil {
		t.Fatal(err)
	}
	if tbl.ChangeCaptureEnabled() {
		t.Fatal("capture enabled by default")
	}
	if n := tbl.ChangeLogSize(); n != 0 {
		t.Fatalf("log size = %d without capture", n)
	}
	// A consumer starting at cursor 0 with capture off cannot fold a delta.
	snap := tbl.Snapshot()
	if m := snap.ChangeMark(0); m != -1 {
		t.Fatalf("ChangeMark = %d with capture off, want -1", m)
	}
}

func TestChangeCaptureAppendDelete(t *testing.T) {
	tbl := newLogTable(t, 2)
	tbl.EnableChangeCapture()
	if err := tbl.Append([]sqltypes.Row{logRow(1, 10), logRow(1, 11), logRow(2, 20)}); err != nil {
		t.Fatal(err)
	}
	changes := allChanges(t, tbl)
	var appended int
	for _, ch := range changes {
		if ch.Kind != ChangeAppend {
			t.Fatalf("unexpected kind %s", ch.Kind)
		}
		appended += len(ch.Rows)
	}
	if appended != 3 {
		t.Fatalf("appended rows logged = %d, want 3", appended)
	}

	// Delete must carry the key's whole chain.
	if !tbl.Delete(sqltypes.NewInt64(1)) {
		t.Fatal("delete missed")
	}
	changes = allChanges(t, tbl)
	var del *Change
	for i := range changes {
		if changes[i].Kind == ChangeDelete {
			del = &changes[i]
		}
	}
	if del == nil {
		t.Fatal("no delete record")
	}
	if len(del.Rows) != 2 {
		t.Fatalf("delete record carries %d rows, want the chain of 2", len(del.Rows))
	}
	if !sqltypes.Equal(del.Key, sqltypes.NewInt64(1)) {
		t.Fatalf("delete key = %v", del.Key)
	}
	if del.Version <= 0 {
		t.Fatalf("delete version = %d, want table-version tag", del.Version)
	}
}

func TestSnapshotChangeMarkPinsLogPrefix(t *testing.T) {
	tbl := newLogTable(t, 1)
	tbl.EnableChangeCapture()
	if err := tbl.Append([]sqltypes.Row{logRow(1, 10)}); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	mark := snap.ChangeMark(0)
	if err := tbl.Append([]sqltypes.Row{logRow(2, 20)}); err != nil {
		t.Fatal(err)
	}
	// Content visible in the snapshot == records below the mark.
	n, err := snap.PartitionRowCount(0)
	if err != nil {
		t.Fatal(err)
	}
	pre, ok := tbl.ChangesBetween(0, 0, mark)
	if !ok {
		t.Fatal("prefix unreadable")
	}
	preRows := 0
	for _, ch := range pre {
		preRows += len(ch.Rows)
	}
	if preRows != n {
		t.Fatalf("snapshot sees %d rows, log prefix has %d", n, preRows)
	}
	// Records at/after the mark cover the rest.
	post, ok := tbl.ChangesBetween(0, mark, tbl.ChangeMark(0))
	if !ok || len(post) != 1 || len(post[0].Rows) != 1 {
		t.Fatalf("post-mark delta wrong: ok=%v %+v", ok, post)
	}
}

func TestPruneChanges(t *testing.T) {
	tbl := newLogTable(t, 1)
	tbl.EnableChangeCapture()
	for i := int64(0); i < 10; i++ {
		if err := tbl.Append([]sqltypes.Row{logRow(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	mark := tbl.ChangeMark(0)
	if mark != 10 {
		t.Fatalf("mark = %d", mark)
	}
	tbl.PruneChanges(0, 7)
	if n := tbl.ChangeLogSize(); n != 3 {
		t.Fatalf("retained = %d after prune, want 3", n)
	}
	// Cursors at/above the prune point still read.
	if _, ok := tbl.ChangesBetween(0, 7, mark); !ok {
		t.Fatal("cursor 7 should survive prune to 7")
	}
	if got, ok := tbl.ChangesBetween(0, 8, mark); !ok || len(got) != 2 {
		t.Fatalf("cursor 8: ok=%v len=%d", ok, len(got))
	}
	// Cursors below it must detect the gap.
	if _, ok := tbl.ChangesBetween(0, 6, mark); ok {
		t.Fatal("cursor 6 should be invalidated by prune to 7")
	}
}

func TestCompactInvalidatesLog(t *testing.T) {
	tbl := newLogTable(t, 1)
	tbl.EnableChangeCapture()
	for i := int64(0); i < 5; i++ {
		if err := tbl.Append([]sqltypes.Row{logRow(1, i)}); err != nil {
			t.Fatal(err)
		}
	}
	cursor := tbl.ChangeMark(0)
	// onlyNewest drops 4 chain rows without producing change records.
	dropped, err := tbl.Compact(true)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 4 {
		t.Fatalf("dropped = %d", dropped)
	}
	if _, ok := tbl.ChangesBetween(0, cursor, tbl.ChangeMark(0)); ok {
		t.Fatal("pre-compact cursor must be invalidated")
	}
	// A consumer re-anchored at a post-compact snapshot folds cleanly.
	snap := tbl.Snapshot()
	newCursor := snap.ChangeMark(0)
	if err := tbl.Append([]sqltypes.Row{logRow(9, 9)}); err != nil {
		t.Fatal(err)
	}
	delta, ok := tbl.ChangesBetween(0, newCursor, tbl.ChangeMark(0))
	if !ok || len(delta) != 1 {
		t.Fatalf("post-compact delta: ok=%v len=%d", ok, len(delta))
	}
}

func TestDisableChangeCaptureClearsLog(t *testing.T) {
	tbl := newLogTable(t, 2)
	tbl.EnableChangeCapture()
	for i := int64(0); i < 10; i++ {
		if err := tbl.Append([]sqltypes.Row{logRow(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.ChangeLogSize() == 0 {
		t.Fatal("no records captured")
	}
	tbl.DisableChangeCapture()
	if tbl.ChangeCaptureEnabled() || tbl.ChangeLogSize() != 0 {
		t.Fatalf("capture=%v size=%d after disable", tbl.ChangeCaptureEnabled(), tbl.ChangeLogSize())
	}
	// Mutations stop accumulating records...
	if err := tbl.Append([]sqltypes.Row{logRow(99, 99)}); err != nil {
		t.Fatal(err)
	}
	if n := tbl.ChangeLogSize(); n != 0 {
		t.Fatalf("log grew to %d while disabled", n)
	}
	// ...and stale cursors read as a gap, not as an empty delta.
	for p := 0; p < tbl.NumPartitions(); p++ {
		if _, ok := tbl.ChangesBetween(p, 0, tbl.ChangeMark(p)); ok {
			t.Fatalf("partition %d: stale cursor must observe a gap", p)
		}
	}
}

func TestPartialAppendFailureInvalidatesLog(t *testing.T) {
	tbl := newLogTable(t, 1)
	tbl.EnableChangeCapture()
	if err := tbl.Append([]sqltypes.Row{logRow(1, 1)}); err != nil {
		t.Fatal(err)
	}
	cursor := tbl.ChangeMark(0)
	// Batch whose second row fails to encode (wrong type for column 1):
	// the first row lands physically but the batch cannot be logged.
	bad := sqltypes.Row{sqltypes.NewInt64(2), sqltypes.NewString("boom")}
	err := tbl.AppendToPartition(0, []sqltypes.Row{logRow(3, 3), bad})
	if err == nil {
		t.Fatal("expected encode failure")
	}
	if _, ok := tbl.ChangesBetween(0, cursor, tbl.ChangeMark(0)); ok {
		t.Fatal("partially applied batch must break the log, not vanish from it")
	}
}

func TestNoOpCompactKeepsLog(t *testing.T) {
	tbl := newLogTable(t, 1)
	tbl.EnableChangeCapture()
	if err := tbl.Append([]sqltypes.Row{logRow(1, 1), logRow(2, 2)}); err != nil {
		t.Fatal(err)
	}
	cursor := int64(0)
	if _, err := tbl.Compact(false); err != nil { // nothing reclaimable
		t.Fatal(err)
	}
	if _, ok := tbl.ChangesBetween(0, cursor, tbl.ChangeMark(0)); !ok {
		t.Fatal("no-op compact should not invalidate the log")
	}
}
