package core

import (
	"fmt"

	"indexeddf/internal/ctrie"
	"indexeddf/internal/rowbatch"
	"indexeddf/internal/sqltypes"
)

// Snapshot is a consistent multi-version read view of an IndexedTable:
// per partition, a read-only Ctrie snapshot (O(1) to take) plus the row
// batch watermarks at snapshot time. Appends that happen after the
// snapshot are invisible: new rows live past the watermarks and are only
// reachable through index entries the frozen Ctrie does not contain.
type Snapshot struct {
	table   *IndexedTable
	version int64
	parts   []partSnapshot
}

type partSnapshot struct {
	index   *ctrie.Ctrie[sqltypes.Value, rowbatch.Ptr]
	marks   []int64
	batches *rowbatch.Set
	// changeMark is the partition's change-log sequence at snapshot time
	// (-1 when capture was off): the snapshot's visible content in this
	// partition is exactly the log prefix below changeMark, because both
	// are pinned under the same partition lock. Incremental view refresh
	// folds log records up to this mark and recomputes from this snapshot
	// without double-counting in-flight mutations.
	changeMark int64
	// deletes is the partition's delete count at snapshot time. Zero means
	// every batch row is index-reachable and scans may walk batches in
	// append order; otherwise scans walk the frozen index so deleted
	// (unreachable) rows stay invisible.
	deletes int64
}

// Snapshot pins the table's current state. Cost is O(partitions), each
// partition contributing an O(1) Ctrie snapshot and a watermark read.
func (t *IndexedTable) Snapshot() *Snapshot {
	s := &Snapshot{
		table:   t,
		version: t.version.Load(),
		parts:   make([]partSnapshot, len(t.parts)),
	}
	for i, p := range t.parts {
		p.mu.Lock() // pin a consistent (index, batches) pair across Compact
		changeMark := int64(-1)
		if t.capture.enabled.Load() {
			changeMark = p.log.mark()
		}
		s.parts[i] = partSnapshot{
			index:      p.index.ReadOnlySnapshot(),
			marks:      p.batches.Watermarks(),
			batches:    p.batches,
			changeMark: changeMark,
			deletes:    p.deletes,
		}
		p.mu.Unlock()
	}
	return s
}

// ChangeMark returns partition p's change-log sequence at snapshot time,
// or -1 when change capture was off.
func (s *Snapshot) ChangeMark(p int) int64 { return s.parts[p].changeMark }

// Version returns the table version the snapshot was taken at.
func (s *Snapshot) Version() int64 { return s.version }

// Schema returns the table schema.
func (s *Snapshot) Schema() *sqltypes.Schema { return s.table.schema }

// KeyColumn returns the indexed column ordinal.
func (s *Snapshot) KeyColumn() int { return s.table.keyCol }

// NumPartitions returns the partition count.
func (s *Snapshot) NumPartitions() int { return len(s.parts) }

// GetRows returns every row bound to key, newest first — the paper's point
// lookup (`indexedDF.getRows(key)`): one Ctrie lookup followed by a walk of
// the backward chain.
func (s *Snapshot) GetRows(key sqltypes.Value) ([]sqltypes.Row, error) {
	var out []sqltypes.Row
	err := s.LookupEach(key, func(row sqltypes.Row) bool {
		out = append(out, row.Clone())
		return true
	})
	return out, err
}

// LookupEach streams the rows bound to key, newest first, without
// materializing. The callback's row is reused; clone to retain.
func (s *Snapshot) LookupEach(key sqltypes.Value, fn func(sqltypes.Row) bool) error {
	key = NormalizeKey(key)
	p := s.table.PartitionFor(key)
	ptr, ok := s.parts[p].index.Lookup(key)
	if !ok {
		return nil
	}
	row := make(sqltypes.Row, s.table.schema.Len())
	return s.parts[p].batches.Chain(ptr, func(_ rowbatch.Ptr, payload []byte) bool {
		if err := s.table.codec.DecodeInto(payload, row); err != nil {
			return false
		}
		return fn(row)
	})
}

// LookupPtr returns the packed pointer of the newest row for key, if any —
// the raw index probe joins use.
func (s *Snapshot) LookupPtr(p int, key sqltypes.Value) (rowbatch.Ptr, bool) {
	return s.parts[p].index.Lookup(NormalizeKey(key))
}

// PartitionFor returns the partition owning key.
func (s *Snapshot) PartitionFor(key sqltypes.Value) int { return s.table.PartitionFor(key) }

// ChainEach walks the backward chain from ptr in partition p, decoding each
// row into a reused buffer.
func (s *Snapshot) ChainEach(p int, ptr rowbatch.Ptr, fn func(sqltypes.Row) bool) error {
	return s.ChainEachInto(p, ptr, make(sqltypes.Row, s.table.schema.Len()), fn)
}

// ChainEachInto is ChainEach decoding into a caller-provided buffer, so
// callers probing many keys (the indexed join) allocate one row per
// partition instead of one per probe.
func (s *Snapshot) ChainEachInto(p int, ptr rowbatch.Ptr, row sqltypes.Row, fn func(sqltypes.Row) bool) error {
	var decodeErr error
	err := s.parts[p].batches.Chain(ptr, func(_ rowbatch.Ptr, payload []byte) bool {
		if err := s.table.codec.DecodeInto(payload, row); err != nil {
			decodeErr = err
			return false
		}
		return fn(row)
	})
	if err != nil {
		return err
	}
	return decodeErr
}

// ScanPartition iterates partition p's visible rows within the snapshot,
// decoding full rows into a reused buffer. Partitions untouched by Delete
// stream their batches in append order; otherwise the scan walks the
// frozen index (trie order, chains newest first) so rows made unreachable
// by Delete stay invisible to queries until compaction reclaims them.
func (s *Snapshot) ScanPartition(p int, fn func(sqltypes.Row) bool) error {
	row := make(sqltypes.Row, s.table.schema.Len())
	return s.scanPayloads(p, func(payload []byte) (bool, error) {
		if err := s.table.codec.DecodeInto(payload, row); err != nil {
			return false, err
		}
		return fn(row), nil
	})
}

// ScanPartitionColumns iterates partition p decoding only the requested
// columns (the row-store projection path).
func (s *Snapshot) ScanPartitionColumns(p int, cols []int, fn func(sqltypes.Row) bool) error {
	row := make(sqltypes.Row, len(cols))
	return s.scanPayloads(p, func(payload []byte) (bool, error) {
		for i, c := range cols {
			v, err := s.table.codec.DecodeColumn(payload, c)
			if err != nil {
				return false, err
			}
			row[i] = v
		}
		return fn(row), nil
	})
}

// scanPayloads drives a partition scan over the visible row payloads,
// picking the append-order batch walk when every row is reachable and the
// index walk otherwise.
func (s *Snapshot) scanPayloads(p int, fn func(payload []byte) (bool, error)) error {
	var innerErr error
	visit := func(payload []byte) bool {
		cont, err := fn(payload)
		if err != nil {
			innerErr = err
			return false
		}
		return cont
	}
	var err error
	if s.parts[p].deletes == 0 {
		err = s.parts[p].batches.Scan(s.parts[p].marks, func(_ rowbatch.Ptr, payload []byte) bool {
			return visit(payload)
		})
	} else {
		err = s.scanReachable(p, visit)
	}
	if err != nil {
		return err
	}
	return innerErr
}

// scanReachable walks partition p's frozen index, streaming every payload
// reachable through a chain. Stops early when visit returns false.
func (s *Snapshot) scanReachable(p int, visit func(payload []byte) bool) error {
	var chainErr error
	stopped := false
	s.parts[p].index.Iterate(func(_ sqltypes.Value, head rowbatch.Ptr) bool {
		err := s.parts[p].batches.Chain(head, func(_ rowbatch.Ptr, payload []byte) bool {
			if !visit(payload) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			chainErr = err
			return false
		}
		return !stopped
	})
	return chainErr
}

// PartitionRowCount counts the rows visible in partition p without
// decoding them — the vectorized scan's sizing pass.
func (s *Snapshot) PartitionRowCount(p int) (int, error) {
	n := 0
	if s.parts[p].deletes == 0 {
		err := s.parts[p].batches.Scan(s.parts[p].marks, func(rowbatch.Ptr, []byte) bool {
			n++
			return true
		})
		return n, err
	}
	err := s.scanReachable(p, func([]byte) bool { n++; return true })
	return n, err
}

// RowCount counts the rows visible in the snapshot. O(partitions x rows).
func (s *Snapshot) RowCount() (int64, error) {
	var n int64
	for p := range s.parts {
		pn, err := s.PartitionRowCount(p)
		if err != nil {
			return 0, err
		}
		n += int64(pn)
	}
	return n, nil
}

// IterateKeys streams the distinct keys of partition p with the pointer of
// their newest row.
func (s *Snapshot) IterateKeys(p int, fn func(key sqltypes.Value, head rowbatch.Ptr) bool) {
	s.parts[p].index.Iterate(func(k sqltypes.Value, v rowbatch.Ptr) bool { return fn(k, v) })
}

// Validate cross-checks snapshot invariants (every index pointer resolves
// within the watermarks and its row's key matches); used by tests and the
// failure-injection suite.
func (s *Snapshot) Validate() error {
	for p := range s.parts {
		var fail error
		s.parts[p].index.Iterate(func(k sqltypes.Value, head rowbatch.Ptr) bool {
			err := s.parts[p].batches.Chain(head, func(ptr rowbatch.Ptr, payload []byte) bool {
				if ptr.Batch() >= len(s.parts[p].marks) ||
					int64(ptr.Offset())+int64(ptr.Size()) > s.parts[p].marks[ptr.Batch()] {
					fail = fmt.Errorf("core: key %v points past snapshot watermark", k)
					return false
				}
				v, err := s.table.codec.DecodeColumn(payload, s.table.keyCol)
				if err != nil {
					fail = err
					return false
				}
				if !sqltypes.Equal(v, k) && !(v.IsNull() && k.IsNull()) {
					fail = fmt.Errorf("core: chain of key %v contains row keyed %v", k, v)
					return false
				}
				return true
			})
			if err != nil && fail == nil {
				fail = err
			}
			return fail == nil
		})
		if fail != nil {
			return fail
		}
	}
	return nil
}
