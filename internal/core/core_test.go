package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"indexeddf/internal/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "name", Type: sqltypes.String, Nullable: true},
		sqltypes.Field{Name: "score", Type: sqltypes.Float64, Nullable: true},
	)
}

func mkRow(id int64, name string, score float64) sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewInt64(id),
		sqltypes.NewString(name),
		sqltypes.NewFloat64(score),
	}
}

func newTable(t *testing.T, parts int) *IndexedTable {
	t.Helper()
	tbl, err := NewIndexedTable(testSchema(), 0, Options{NumPartitions: parts, BatchSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewIndexedTableValidation(t *testing.T) {
	if _, err := NewIndexedTable(testSchema(), 5, Options{}); err == nil {
		t.Fatal("out-of-range key column accepted")
	}
	tbl, err := NewIndexedTable(testSchema(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumPartitions() != 4 {
		t.Fatalf("default partitions = %d", tbl.NumPartitions())
	}
	if tbl.KeyColumn() != 0 || !tbl.Schema().Equal(testSchema()) {
		t.Fatal("accessors broken")
	}
}

func TestAppendAndGetRows(t *testing.T) {
	tbl := newTable(t, 3)
	var rows []sqltypes.Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, mkRow(i%10, fmt.Sprintf("n%d", i), float64(i)))
	}
	if err := tbl.Append(rows); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 100 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
	if tbl.DistinctKeys() != 10 {
		t.Fatalf("DistinctKeys = %d", tbl.DistinctKeys())
	}
	snap := tbl.Snapshot()
	got, err := snap.GetRows(sqltypes.NewInt64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("GetRows(3) returned %d rows, want 10", len(got))
	}
	// Newest first: the last appended row for key 3 is i=93.
	if got[0][1].StringVal() != "n93" {
		t.Fatalf("newest row = %v", got[0])
	}
	if got[9][1].StringVal() != "n3" {
		t.Fatalf("oldest row = %v", got[9])
	}
	// Missing key returns empty.
	none, err := snap.GetRows(sqltypes.NewInt64(999))
	if err != nil || len(none) != 0 {
		t.Fatalf("GetRows(missing) = %v, %v", none, err)
	}
}

func TestSnapshotIsolationFromAppends(t *testing.T) {
	tbl := newTable(t, 2)
	if err := tbl.Append([]sqltypes.Row{mkRow(1, "a", 1), mkRow(2, "b", 2)}); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	v1 := snap.Version()
	if err := tbl.Append([]sqltypes.Row{mkRow(1, "a2", 10), mkRow(3, "c", 3)}); err != nil {
		t.Fatal(err)
	}
	// The snapshot sees exactly the old state.
	got, err := snap.GetRows(sqltypes.NewInt64(1))
	if err != nil || len(got) != 1 || got[0][1].StringVal() != "a" {
		t.Fatalf("snapshot GetRows(1) = %v, %v", got, err)
	}
	if rows, _ := snap.GetRows(sqltypes.NewInt64(3)); len(rows) != 0 {
		t.Fatal("snapshot sees key appended after it")
	}
	n, err := snap.RowCount()
	if err != nil || n != 2 {
		t.Fatalf("snapshot RowCount = %d, %v", n, err)
	}
	// A fresh snapshot sees everything.
	snap2 := tbl.Snapshot()
	if snap2.Version() <= v1 {
		t.Fatal("version did not advance")
	}
	got2, _ := snap2.GetRows(sqltypes.NewInt64(1))
	if len(got2) != 2 || got2[0][1].StringVal() != "a2" {
		t.Fatalf("fresh snapshot GetRows(1) = %v", got2)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	if err := snap2.Validate(); err != nil {
		t.Fatalf("snapshot2 invalid: %v", err)
	}
}

func TestFineGrainedAppendFastPath(t *testing.T) {
	tbl := newTable(t, 4)
	for i := int64(0); i < 50; i++ {
		if err := tbl.Append([]sqltypes.Row{mkRow(i, "x", 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 50 || tbl.Version() != 50 {
		t.Fatalf("RowCount=%d Version=%d", tbl.RowCount(), tbl.Version())
	}
}

func TestAppendEmptyAndBadArity(t *testing.T) {
	tbl := newTable(t, 2)
	if err := tbl.Append(nil); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != 0 {
		t.Fatal("empty append bumped version")
	}
	err := tbl.Append([]sqltypes.Row{{sqltypes.NewInt64(1)}, {sqltypes.NewInt64(2)}})
	if err == nil {
		t.Fatal("bad arity accepted")
	}
}

func TestScanPartitionSeesSnapshotOnly(t *testing.T) {
	tbl := newTable(t, 1)
	for i := int64(0); i < 20; i++ {
		if err := tbl.Append([]sqltypes.Row{mkRow(i, "a", 0)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := tbl.Snapshot()
	for i := int64(20); i < 40; i++ {
		if err := tbl.Append([]sqltypes.Row{mkRow(i, "b", 0)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := snap.ScanPartition(0, func(row sqltypes.Row) bool {
		if row[1].StringVal() != "a" {
			t.Error("scan leaked a post-snapshot row")
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("scan saw %d rows", n)
	}
}

func TestScanPartitionColumns(t *testing.T) {
	tbl := newTable(t, 1)
	if err := tbl.Append([]sqltypes.Row{mkRow(1, "x", 2.5), mkRow(2, "y", 3.5)}); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	var names []string
	var scores []float64
	err := snap.ScanPartitionColumns(0, []int{1, 2}, func(row sqltypes.Row) bool {
		names = append(names, row[0].StringVal())
		scores = append(scores, row[1].Float64Val())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "x" || scores[1] != 3.5 {
		t.Fatalf("projected scan: %v %v", names, scores)
	}
}

func TestDelete(t *testing.T) {
	tbl := newTable(t, 2)
	if err := tbl.Append([]sqltypes.Row{mkRow(1, "a", 0), mkRow(1, "b", 0), mkRow(2, "c", 0)}); err != nil {
		t.Fatal(err)
	}
	if !tbl.Delete(sqltypes.NewInt64(1)) {
		t.Fatal("Delete(1) = false")
	}
	if tbl.Delete(sqltypes.NewInt64(99)) {
		t.Fatal("Delete(missing) = true")
	}
	snap := tbl.Snapshot()
	if rows, _ := snap.GetRows(sqltypes.NewInt64(1)); len(rows) != 0 {
		t.Fatal("deleted key still reachable")
	}
	if rows, _ := snap.GetRows(sqltypes.NewInt64(2)); len(rows) != 1 {
		t.Fatal("unrelated key disturbed by delete")
	}
	if tbl.DistinctKeys() != 1 {
		t.Fatalf("DistinctKeys after delete = %d", tbl.DistinctKeys())
	}
}

func TestMemoryUsageAccounting(t *testing.T) {
	tbl := newTable(t, 2)
	rows := make([]sqltypes.Row, 0, 1000)
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, mkRow(i, "some-name-payload", float64(i)))
	}
	if err := tbl.Append(rows); err != nil {
		t.Fatal(err)
	}
	batchBytes, dataBytes, indexBytes := tbl.MemoryUsage()
	if batchBytes <= 0 || dataBytes <= 0 || indexBytes <= 0 {
		t.Fatalf("memory usage: %d %d %d", batchBytes, dataBytes, indexBytes)
	}
	if dataBytes > batchBytes {
		t.Fatal("data bytes exceed reserved bytes")
	}
}

func TestLookupEachEarlyStop(t *testing.T) {
	tbl := newTable(t, 1)
	for i := 0; i < 10; i++ {
		if err := tbl.Append([]sqltypes.Row{mkRow(7, fmt.Sprint(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := tbl.Snapshot()
	n := 0
	if err := snap.LookupEach(sqltypes.NewInt64(7), func(sqltypes.Row) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestConcurrentAppendersAndSnapshotReaders(t *testing.T) {
	tbl := newTable(t, 4)
	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := int64(i % 50)
				row := mkRow(key, fmt.Sprintf("w%d-%d", w, i), float64(i))
				if err := tbl.Append([]sqltypes.Row{row}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers take snapshots and validate invariants while writers run.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				snap := tbl.Snapshot()
				if err := snap.Validate(); err != nil {
					t.Errorf("snapshot validation: %v", err)
					return
				}
				n1, err := snap.RowCount()
				if err != nil {
					t.Errorf("rowcount: %v", err)
					return
				}
				n2, _ := snap.RowCount()
				if n1 != n2 {
					t.Errorf("snapshot row count moved: %d -> %d", n1, n2)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tbl.RowCount() != writers*perWriter {
		t.Fatalf("RowCount = %d, want %d", tbl.RowCount(), writers*perWriter)
	}
	// Final consistency: chain lengths per key sum to total rows.
	snap := tbl.Snapshot()
	var total int
	for key := int64(0); key < 50; key++ {
		rows, err := snap.GetRows(sqltypes.NewInt64(key))
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
	}
	if total != writers*perWriter {
		t.Fatalf("sum of chains = %d, want %d", total, writers*perWriter)
	}
}

// TestQuickAppendLookup property: for any batch of (key, payload) pairs,
// GetRows(k) returns exactly the payloads appended with k, newest first.
func TestQuickAppendLookup(t *testing.T) {
	f := func(keys []uint8) bool {
		tbl, err := NewIndexedTable(testSchema(), 0, Options{NumPartitions: 3, BatchSize: 2048})
		if err != nil {
			return false
		}
		want := map[int64][]string{}
		var rows []sqltypes.Row
		for i, k := range keys {
			key := int64(k % 17)
			name := fmt.Sprintf("r%d", i)
			rows = append(rows, mkRow(key, name, 0))
			want[key] = append([]string{name}, want[key]...) // newest first
		}
		if err := tbl.Append(rows); err != nil {
			return false
		}
		snap := tbl.Snapshot()
		for key, names := range want {
			got, err := snap.GetRows(sqltypes.NewInt64(key))
			if err != nil || len(got) != len(names) {
				return false
			}
			for i, r := range got {
				if r[1].StringVal() != names[i] {
					return false
				}
			}
		}
		return snap.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
