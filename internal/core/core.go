package core
