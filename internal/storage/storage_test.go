package storage

import (
	"fmt"
	"sync"
	"testing"
)

func id(o, p int) BlockID { return BlockID{Owner: o, Partition: p} }

func TestPutGet(t *testing.T) {
	m := NewManager(0)
	if !m.Put(id(1, 0), "a", 10) {
		t.Fatal("Put failed")
	}
	v, ok := m.Get(id(1, 0))
	if !ok || v.(string) != "a" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := m.Get(id(1, 1)); ok {
		t.Fatal("Get of missing block succeeded")
	}
	st := m.Stats()
	if st.Used != 10 || st.Blocks != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplacesAndAccounts(t *testing.T) {
	m := NewManager(0)
	m.Put(id(1, 0), "a", 10)
	m.Put(id(1, 0), "b", 30)
	if st := m.Stats(); st.Used != 30 || st.Blocks != 1 {
		t.Fatalf("stats after replace = %+v", st)
	}
	v, _ := m.Get(id(1, 0))
	if v.(string) != "b" {
		t.Fatal("replace did not take")
	}
}

func TestLRUEviction(t *testing.T) {
	m := NewManager(100)
	for i := 0; i < 10; i++ {
		m.Put(id(1, i), i, 10)
	}
	// Touch block 0 so it is most recently used.
	m.Get(id(1, 0))
	// Adding one more must evict block 1 (the least recently used).
	m.Put(id(2, 0), "new", 10)
	if _, ok := m.Get(id(1, 1)); ok {
		t.Fatal("LRU block not evicted")
	}
	if _, ok := m.Get(id(1, 0)); !ok {
		t.Fatal("recently used block evicted")
	}
	if st := m.Stats(); st.Evictions != 1 || st.Used > 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOversizedBlockRejected(t *testing.T) {
	m := NewManager(50)
	if m.Put(id(1, 0), "big", 51) {
		t.Fatal("oversized block accepted")
	}
	if m.Put(id(1, 1), "fits", 50) != true {
		t.Fatal("exact-fit block rejected")
	}
}

func TestRemoveAndRemoveOwner(t *testing.T) {
	m := NewManager(0)
	for p := 0; p < 4; p++ {
		m.Put(id(7, p), p, 5)
	}
	m.Put(id(8, 0), "other", 5)
	m.Remove(id(7, 0))
	if _, ok := m.Get(id(7, 0)); ok {
		t.Fatal("removed block still present")
	}
	m.RemoveOwner(7)
	for p := 1; p < 4; p++ {
		if _, ok := m.Get(id(7, p)); ok {
			t.Fatalf("owner block %d survived RemoveOwner", p)
		}
	}
	if _, ok := m.Get(id(8, 0)); !ok {
		t.Fatal("unrelated owner removed")
	}
	m.Clear()
	if st := m.Stats(); st.Blocks != 0 || st.Used != 0 {
		t.Fatalf("stats after clear = %+v", st)
	}
}

func TestBlockIDString(t *testing.T) {
	if got := id(3, 9).String(); got != "block(3:9)" {
		t.Fatalf("String = %q", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := NewManager(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				bid := id(g, i%50)
				m.Put(bid, fmt.Sprintf("%d-%d", g, i), 16)
				if v, ok := m.Get(bid); ok {
					_ = v
				}
				if i%97 == 0 {
					m.Remove(bid)
				}
			}
		}(g)
	}
	wg.Wait()
}
