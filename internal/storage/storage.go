// Package storage implements the block manager backing the engine's cache:
// memory-accounted storage of materialized partitions with LRU eviction,
// the single-process analogue of Spark's BlockManager / RDD cache the paper
// integrates with.
package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// BlockID names a cached partition.
type BlockID struct {
	// Owner identifies the dataset (RDD or table id).
	Owner int
	// Partition is the partition ordinal.
	Partition int
}

// String renders the id as "block(owner:partition)".
func (id BlockID) String() string { return fmt.Sprintf("block(%d:%d)", id.Owner, id.Partition) }

type entry struct {
	id    BlockID
	value any
	size  int64
	elem  *list.Element
}

// Manager is a thread-safe block store with a byte capacity and LRU
// eviction.
type Manager struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	blocks   map[BlockID]*entry
	lru      *list.List // front = most recently used

	hits      int64
	misses    int64
	evictions int64
}

// NewManager returns a Manager with the given capacity in bytes.
// A capacity <= 0 means unbounded.
func NewManager(capacity int64) *Manager {
	return &Manager{
		capacity: capacity,
		blocks:   make(map[BlockID]*entry),
		lru:      list.New(),
	}
}

// Put stores a block of the given size, evicting least-recently-used
// blocks as needed. It reports whether the block was stored (a block
// larger than the whole capacity is rejected).
func (m *Manager) Put(id BlockID, value any, size int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.capacity > 0 && size > m.capacity {
		return false
	}
	if old, ok := m.blocks[id]; ok {
		m.used -= old.size
		m.lru.Remove(old.elem)
		delete(m.blocks, id)
	}
	for m.capacity > 0 && m.used+size > m.capacity {
		back := m.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		m.lru.Remove(back)
		delete(m.blocks, victim.id)
		m.used -= victim.size
		m.evictions++
	}
	e := &entry{id: id, value: value, size: size}
	e.elem = m.lru.PushFront(e)
	m.blocks[id] = e
	m.used += size
	return true
}

// Get returns the cached block and marks it recently used.
func (m *Manager) Get(id BlockID) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.blocks[id]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.lru.MoveToFront(e.elem)
	return e.value, true
}

// Remove drops a block if present.
func (m *Manager) Remove(id BlockID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.blocks[id]; ok {
		m.lru.Remove(e.elem)
		delete(m.blocks, id)
		m.used -= e.size
	}
}

// RemoveOwner drops all blocks belonging to an owner (uncache of a table).
func (m *Manager) RemoveOwner(owner int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, e := range m.blocks {
		if id.Owner == owner {
			m.lru.Remove(e.elem)
			delete(m.blocks, id)
			m.used -= e.size
		}
	}
}

// Clear drops everything.
func (m *Manager) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks = make(map[BlockID]*entry)
	m.lru.Init()
	m.used = 0
}

// Stats reports cache counters.
type Stats struct {
	Used      int64
	Capacity  int64
	Blocks    int
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Used:      m.used,
		Capacity:  m.capacity,
		Blocks:    len(m.blocks),
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
	}
}
