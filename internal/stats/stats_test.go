package stats

import (
	"fmt"
	"math"
	"testing"

	"indexeddf/internal/sqltypes"
)

func TestHLLEstimate(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 50000, 500000} {
		var h HLL
		for i := 0; i < n; i++ {
			h.Add(sqltypes.NewInt64(int64(i)).Hash64())
		}
		got := h.Estimate()
		relErr := math.Abs(float64(got)-float64(n)) / float64(n)
		// 1024 registers → ~3.25% std error; allow 5 sigma.
		if relErr > 0.17 {
			t.Errorf("n=%d: estimate %d, rel err %.1f%%", n, got, relErr*100)
		}
	}
}

func TestHLLDuplicatesDontInflate(t *testing.T) {
	var h HLL
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 100; i++ {
			h.Add(sqltypes.NewString(fmt.Sprintf("key-%d", i)).Hash64())
		}
	}
	if got := h.Estimate(); got < 90 || got > 110 {
		t.Errorf("100 distinct values observed 10x each: estimate %d", got)
	}
}

func TestTableObserveSnapshot(t *testing.T) {
	tbl := NewTable(3)
	var rows []sqltypes.Row
	for i := 0; i < 1000; i++ {
		v := sqltypes.NewInt64(int64(i % 10))
		s := sqltypes.NewString(fmt.Sprintf("s%d", i))
		nul := sqltypes.Null
		if i%4 != 0 {
			nul = sqltypes.NewFloat64(float64(i))
		}
		rows = append(rows, sqltypes.Row{v, s, nul})
	}
	tbl.Observe(rows)

	if tbl.Rows() != 1000 {
		t.Fatalf("rows = %d, want 1000", tbl.Rows())
	}
	cols := tbl.Snapshot()
	if len(cols) != 3 {
		t.Fatalf("snapshot has %d cols, want 3", len(cols))
	}
	c0 := cols[0]
	if c0.NDV < 9 || c0.NDV > 11 {
		t.Errorf("col0 NDV = %d, want ~10", c0.NDV)
	}
	if c0.Min.I != 0 || c0.Max.I != 9 {
		t.Errorf("col0 range = [%v,%v], want [0,9]", c0.Min, c0.Max)
	}
	if c0.Nulls != 0 {
		t.Errorf("col0 nulls = %d, want 0", c0.Nulls)
	}
	c2 := cols[2]
	if c2.Nulls != 250 {
		t.Errorf("col2 nulls = %d, want 250", c2.Nulls)
	}
	if got := c2.NullFraction(); got != 0.25 {
		t.Errorf("col2 null fraction = %v, want 0.25", got)
	}
}

func TestTableInvalidateRebuild(t *testing.T) {
	tbl := NewTable(1)
	rows := []sqltypes.Row{{sqltypes.NewInt64(1)}, {sqltypes.NewInt64(2)}}
	tbl.Observe(rows)
	if tbl.Snapshot() == nil {
		t.Fatal("snapshot nil after observe")
	}
	v := tbl.Version()
	tbl.Invalidate()
	if tbl.Snapshot() != nil {
		t.Fatal("snapshot not nil after invalidate")
	}
	if tbl.Valid() {
		t.Fatal("valid after invalidate")
	}
	if tbl.Version() == v {
		t.Fatal("version not bumped by invalidate")
	}
	tbl.Rebuild(rows[:1])
	cols := tbl.Snapshot()
	if cols == nil || cols[0].Count != 1 {
		t.Fatalf("rebuild: snapshot %+v, want count 1", cols)
	}
	if cols[0].Min.I != 1 || cols[0].Max.I != 1 {
		t.Errorf("rebuild range = [%v,%v], want [1,1]", cols[0].Min, cols[0].Max)
	}
}

func TestNilTableSafe(t *testing.T) {
	var tbl *Table
	tbl.Observe([]sqltypes.Row{{sqltypes.NewInt64(1)}})
	tbl.Invalidate()
	tbl.Rebuild(nil)
	if tbl.Snapshot() != nil || tbl.Valid() || tbl.Rows() != 0 || tbl.Version() != 0 {
		t.Fatal("nil Table methods must be no-ops")
	}
}

func TestNDVCappedAtNonNullCount(t *testing.T) {
	tbl := NewTable(1)
	tbl.Observe([]sqltypes.Row{{sqltypes.NewInt64(7)}, {sqltypes.NewInt64(8)}})
	cols := tbl.Snapshot()
	if cols[0].NDV > 2 {
		t.Errorf("NDV = %d exceeds non-null count 2", cols[0].NDV)
	}
}

func TestConcurrentObserve(t *testing.T) {
	tbl := NewTable(1)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 250; i++ {
				tbl.Observe([]sqltypes.Row{{sqltypes.NewInt64(int64(g*1000 + i))}})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if tbl.Rows() != 1000 {
		t.Fatalf("rows = %d, want 1000", tbl.Rows())
	}
}

func BenchmarkTableObserve(b *testing.B) {
	rows := make([]sqltypes.Row, 1000)
	for i := range rows {
		rows[i] = sqltypes.Row{
			sqltypes.NewString(fmt.Sprintf("tag-%d", i%16)),
			sqltypes.NewInt64(int64(i)),
			sqltypes.NewInt64(int64(i * 7 % 1000)),
			sqltypes.NewFloat64(float64(i) * 1.5),
		}
	}
	t := NewTable(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Observe(rows)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rows)*4), "ns/value")
}
