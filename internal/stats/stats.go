// Package stats maintains per-table and per-column statistics — row
// counts, min/max bounds, null counts, and distinct-value sketches —
// collected incrementally as rows are appended and exposed to the
// planner through plan.Stats. Distinct counts use a HyperLogLog sketch
// over sqltypes.Value.Hash64, so maintenance is O(1) per value with a
// fixed 1 KiB footprint per column. Statistics are additive-only:
// deletes cannot be subtracted from min/max or the sketch, so a delete
// invalidates the table's statistics until the next ANALYZE TABLE
// rebuild (the planner falls back to structural defaults meanwhile).
package stats

import (
	"math"
	"math/bits"
	"sync"

	"indexeddf/internal/sqltypes"
)

// hllP is the HyperLogLog precision: 2^hllP registers. p=10 gives
// 1024 registers (1 KiB per column) and a ~3.25% standard error,
// plenty for the planner's order-of-magnitude selectivity decisions.
const hllP = 10

const hllM = 1 << hllP

// hllAlpha is the bias-correction constant for m=1024.
var hllAlpha = 0.7213 / (1 + 1.079/float64(hllM))

// HLL is a HyperLogLog distinct-count sketch over 64-bit hashes.
type HLL struct {
	reg [hllM]uint8
}

// Add observes one hashed value.
func (h *HLL) Add(hash uint64) {
	// Value.Hash64 is FNV-1a, whose high bits avalanche poorly for
	// short inputs; run it through a splitmix64 finalizer first.
	hash = mix64(hash)
	idx := hash >> (64 - hllP)
	rho := uint8(bits.LeadingZeros64(hash<<hllP|1<<(hllP-1))) + 1
	if rho > h.reg[idx] {
		h.reg[idx] = rho
	}
}

// Estimate returns the approximate number of distinct values observed.
func (h *HLL) Estimate() int64 {
	sum := 0.0
	zeros := 0
	for _, r := range h.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := hllAlpha * hllM * hllM / sum
	if e <= 2.5*hllM && zeros > 0 {
		// Small-range correction: linear counting.
		e = hllM * math.Log(float64(hllM)/float64(zeros))
	}
	return int64(e + 0.5)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ColumnStats is an immutable snapshot of one column's statistics.
type ColumnStats struct {
	Count int64          // rows observed (including nulls)
	Nulls int64          // null values observed
	NDV   int64          // approximate distinct non-null values
	Min   sqltypes.Value // smallest non-null value, Null if none
	Max   sqltypes.Value // largest non-null value, Null if none
}

// NullFraction returns the fraction of observed values that were null.
func (c *ColumnStats) NullFraction() float64 {
	if c == nil || c.Count == 0 {
		return 0
	}
	return float64(c.Nulls) / float64(c.Count)
}

// colAcc accumulates one column's statistics.
type colAcc struct {
	nulls    int64
	min, max sqltypes.Value
	hasRange bool
	hll      HLL
}

func (c *colAcc) observe(v sqltypes.Value) {
	if v.IsNull() {
		c.nulls++
		return
	}
	// The sketch is private to this accumulator, so fixed-width lanes
	// feed their raw payload straight to the HLL (Add finalizes with
	// splitmix64) instead of paying Value.Hash64's byte-wise FNV; only
	// strings need a real byte hash. This runs once per value on every
	// append, so cycles here are ingest overhead.
	switch v.T {
	case sqltypes.Bool, sqltypes.Int32, sqltypes.Int64, sqltypes.Timestamp:
		c.hll.Add(uint64(v.I))
	case sqltypes.Float64:
		f := v.F
		if f == 0 {
			f = 0 // collapse -0.0 and +0.0 into one distinct value
		}
		c.hll.Add(math.Float64bits(f))
	default:
		c.hll.Add(v.Hash64())
	}
	if !c.hasRange {
		c.min, c.max = v, v
		c.hasRange = true
		return
	}
	// Uniformly typed columns (the common case — appends are schema
	// checked) compare on the raw lane; mixed-width columns fall back to
	// the general comparator.
	if v.T == c.min.T && v.T == c.max.T {
		switch v.T {
		case sqltypes.Bool, sqltypes.Int32, sqltypes.Int64, sqltypes.Timestamp:
			if v.I < c.min.I {
				c.min = v
			} else if v.I > c.max.I {
				c.max = v
			}
			return
		case sqltypes.Float64:
			if v.F < c.min.F {
				c.min = v
			} else if v.F > c.max.F {
				c.max = v
			}
			return
		case sqltypes.String:
			if v.S < c.min.S {
				c.min = v
			} else if v.S > c.max.S {
				c.max = v
			}
			return
		}
	}
	if sqltypes.Compare(v, c.min) < 0 {
		c.min = v
	}
	if sqltypes.Compare(v, c.max) > 0 {
		c.max = v
	}
}

// Table accumulates statistics for one table. All methods are safe for
// concurrent use. A Table starts valid and empty; Invalidate marks the
// statistics unusable (Snapshot returns nil) until Rebuild.
type Table struct {
	mu      sync.Mutex
	rows    int64
	cols    []colAcc
	valid   bool
	version int64 // bumped on every Observe/Invalidate/Rebuild
}

// NewTable returns an empty, valid statistics accumulator for a table
// with ncols columns.
func NewTable(ncols int) *Table {
	return &Table{cols: make([]colAcc, ncols), valid: true}
}

// Observe folds a slice of appended rows into the statistics. Rows
// shorter than the column count only update their present columns.
func (t *Table) Observe(rows []sqltypes.Row) {
	if t == nil || len(rows) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows += int64(len(rows))
	t.version++
	for _, row := range rows {
		n := len(row)
		if n > len(t.cols) {
			n = len(t.cols)
		}
		for i := 0; i < n; i++ {
			t.cols[i].observe(row[i])
		}
	}
}

// Invalidate marks the statistics stale; Snapshot returns nil until
// the next Rebuild. Used when rows are deleted (min/max and the NDV
// sketch cannot be decremented).
func (t *Table) Invalidate() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.valid = false
	t.version++
	t.mu.Unlock()
}

// Rebuild resets the accumulator and folds in a full scan of the
// table, marking the statistics valid again.
func (t *Table) Rebuild(rows []sqltypes.Row) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.cols {
		t.cols[i] = colAcc{}
	}
	t.rows = 0
	t.valid = true
	t.version++
	t.mu.Unlock()
	t.Observe(rows)
}

// Valid reports whether Snapshot would return usable statistics.
func (t *Table) Valid() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.valid
}

// Rows returns the number of rows observed since the last Rebuild.
func (t *Table) Rows() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rows
}

// Version returns a counter bumped on every mutation, for cheap
// change detection.
func (t *Table) Version() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Snapshot returns per-column statistics, or nil when the accumulator
// is stale (a delete occurred since the last Rebuild) or t is nil.
func (t *Table) Snapshot() []*ColumnStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.valid {
		return nil
	}
	out := make([]*ColumnStats, len(t.cols))
	for i := range t.cols {
		c := &t.cols[i]
		cs := &ColumnStats{Count: t.rows, Nulls: c.nulls}
		if c.hasRange {
			cs.Min, cs.Max = c.min, c.max
			cs.NDV = c.hll.Estimate()
			if nonNull := t.rows - c.nulls; cs.NDV > nonNull {
				cs.NDV = nonNull
			}
			if cs.NDV < 1 {
				cs.NDV = 1
			}
		} else {
			cs.Min, cs.Max = sqltypes.Null, sqltypes.Null
		}
		out[i] = cs
	}
	return out
}

// Provider is implemented by catalog tables that maintain statistics.
// A nil return means no statistics are available (collection disabled
// or invalidated by deletes).
type Provider interface {
	ColumnStats() []*ColumnStats
}
