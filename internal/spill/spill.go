// Package spill is the engine's out-of-core fabric: a disk-backed store
// for sealed columnar batches shared by every blocking operator (shuffle
// stores, sort runs, join builds).
//
// The unit is the Run — an append-only sequence of batches that starts
// resident, charged against the query's memory.Tracker, and goes to disk
// when the budget refuses the next append: first by evicting colder sealed
// runs of the same query (LRU), then by spilling itself. A spilled run is
// an append-only run file (see the format below) written through buffered
// sequential I/O; readers stream it back through the vector.BatchIter
// protocol with one reused decode batch, polling the task's cancellation.
//
// Run-file format (little-endian):
//
//	header:  magic "IDFR" | version u8 | ncols u16 | per column: type u8
//	batch:   rows u32
//	         per column: anyNulls u8 [null words ((rows+63)/64) u64...]
//	                     payload — int family: rows × i64
//	                               float:      rows × f64
//	                               string:     per value u32 len + bytes
//
// Lifecycle: every run registers a closer on its tracker, so query close,
// cancellation and panic paths delete run files without the operators'
// cooperation; Manager.Close (Session.Close) removes the session's whole
// spill directory, sweeping anything that survived.
package spill

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"indexeddf/internal/faultpoint"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

const (
	magic      = "IDFR"
	version    = 1
	writeBufSz = 256 << 10
	readBufSz  = 64 << 10
)

var errReleased = errors.New("spill: run released")

// Manager owns one session's spill directory and the LRU of resident
// sealed runs. All methods are safe for concurrent use and nil-receiver
// safe (a nil manager means out-of-core execution is disabled).
type Manager struct {
	parent string // Config.SpillDir; the session subdirectory is created lazily

	mu     sync.Mutex
	dir    string // "" until the first spill
	closed bool
	lru    *list.List // *Run, front = hottest; resident sealed runs only
	seq    int64

	runsSpilled  atomic.Int64 // runs that went to disk
	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
	filesActive  atomic.Int64
	evictions    atomic.Int64
}

// NewManager builds a manager that places run files in a private
// subdirectory of parent (created on first spill).
func NewManager(parent string) *Manager {
	return &Manager{parent: parent, lru: list.New()}
}

// Enabled reports whether out-of-core execution is available.
func (m *Manager) Enabled() bool { return m != nil }

// SpilledRuns returns the number of runs written to disk so far.
func (m *Manager) SpilledRuns() int64 {
	if m == nil {
		return 0
	}
	return m.runsSpilled.Load()
}

// BytesWritten returns the total bytes written to run files.
func (m *Manager) BytesWritten() int64 {
	if m == nil {
		return 0
	}
	return m.bytesWritten.Load()
}

// BytesRead returns the total bytes decoded back from run files.
func (m *Manager) BytesRead() int64 {
	if m == nil {
		return 0
	}
	return m.bytesRead.Load()
}

// ActiveFiles returns the number of run files currently on disk.
func (m *Manager) ActiveFiles() int64 {
	if m == nil {
		return 0
	}
	return m.filesActive.Load()
}

// Evictions returns how many sealed resident runs were pushed to disk to
// make room for hotter data.
func (m *Manager) Evictions() int64 {
	if m == nil {
		return 0
	}
	return m.evictions.Load()
}

// Dir returns the session's spill subdirectory ("" before the first
// spill).
func (m *Manager) Dir() string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dir
}

// Close deletes the session's spill directory and everything in it — the
// orphan sweep backing Session.Close. Idempotent.
func (m *Manager) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	m.closed = true
	dir := m.dir
	m.dir = ""
	m.lru.Init()
	m.mu.Unlock()
	if dir == "" {
		return nil
	}
	return os.RemoveAll(dir)
}

// createFile opens a fresh run file, creating the spill directory on first
// use.
func (m *Manager) createFile() (*os.File, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("spill: manager closed")
	}
	if m.dir == "" {
		if m.parent != "" {
			if err := os.MkdirAll(m.parent, 0o755); err != nil {
				m.mu.Unlock()
				return nil, fmt.Errorf("spill: create dir: %w", err)
			}
		}
		dir, err := os.MkdirTemp(m.parent, "indexeddf-spill-")
		if err != nil {
			m.mu.Unlock()
			return nil, fmt.Errorf("spill: create dir: %w", err)
		}
		m.dir = dir
	}
	m.seq++
	path := filepath.Join(m.dir, fmt.Sprintf("run-%06d.spill", m.seq))
	m.mu.Unlock()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("spill: create run file: %w", err)
	}
	m.filesActive.Add(1)
	return f, nil
}

// touch moves a resident sealed run to the hot end of the LRU.
func (m *Manager) touch(r *Run) {
	m.mu.Lock()
	if r.elem != nil {
		m.lru.MoveToFront(r.elem)
	}
	m.mu.Unlock()
}

// addLRU enters a freshly sealed resident run into the eviction order.
func (m *Manager) addLRU(r *Run) {
	m.mu.Lock()
	if !m.closed && r.elem == nil {
		r.elem = m.lru.PushFront(r)
	}
	m.mu.Unlock()
}

// removeLRU drops a run from the eviction order.
func (m *Manager) removeLRU(r *Run) {
	m.mu.Lock()
	if r.elem != nil {
		m.lru.Remove(r.elem)
		r.elem = nil
	}
	m.mu.Unlock()
}

// evictOne pushes the coldest evictable run charged to the same tracker to
// disk, freeing budget for the caller. Returns false when nothing could be
// evicted. The victim's mutex is taken without the manager lock held (lock
// order is always Run.mu → Manager.mu).
func (m *Manager) evictOne(mem *memory.Tracker, exclude *Run) bool {
	for {
		m.mu.Lock()
		var victim *Run
		for e := m.lru.Back(); e != nil; e = e.Prev() {
			r := e.Value.(*Run)
			if r != exclude && r.mem == mem {
				victim = r
				break
			}
		}
		if victim == nil {
			m.mu.Unlock()
			return false
		}
		m.lru.Remove(victim.elem)
		victim.elem = nil
		m.mu.Unlock()

		// Deferred unlock: a panic injected into the spill write (chaos
		// testing) must unwind without poisoning the victim's mutex — the
		// query's teardown still has to Release it.
		ok, err := func() (bool, error) {
			victim.mu.Lock()
			defer victim.mu.Unlock()
			if victim.released || !victim.sealed || victim.path != "" || len(victim.batches) == 0 {
				return false, nil
			}
			return true, victim.spillLocked(true)
		}()
		if ok {
			if err != nil {
				// The victim could not be written (disk full, fault). Its
				// memory was not freed; give up on eviction — the caller
				// falls back to spilling itself or failing.
				return false
			}
			m.evictions.Add(1)
			return true
		}
		// Raced with a release/spill; try the next-coldest.
	}
}

// EvictFor is the tracker's pressure valve (memory.Tracker.SetValve):
// spill the query's coldest sealed resident run so any operator's failing
// reservation — hash-aggregate growth, cursor slot buffers, not just run
// appends — can retry against the freed budget. Returns false when the
// query has no evictable run left. Nil-receiver safe.
func (m *Manager) EvictFor(mem *memory.Tracker) bool {
	if m == nil || mem == nil {
		return false
	}
	return m.evictOne(mem, nil)
}

// ---------------------------------------------------------------------------
// Run

// Run is one append-only sequence of sealed batches. Appends are charged
// to the query's tracker; when the budget refuses, the run goes to disk
// and later appends stream straight to the file. A run is either fully
// resident or fully on disk, never both.
//
// Lifecycle: Append* → Seal → Open (any number of readers) → Release.
// Release is idempotent and also runs via the tracker's closers, so
// cancelled and panicked queries delete their files.
type Run struct {
	m      *Manager
	mem    *memory.Tracker
	op     string
	schema *sqltypes.Schema
	st     *obs.OpStats
	qs     *obs.QueryStats

	mu       sync.Mutex
	batches  []*vector.Batch // resident form (owned; nil once spilled)
	charged  int64           // bytes reserved against mem for the resident form
	rows     int64
	nbatches int
	f        *os.File      // open while spilled and unsealed
	w        *bufio.Writer // wraps f
	path     string        // non-"" once spilled
	offsets  []int64       // file offset of each batch (spilled form; OpenFrom seeks)
	fileOff  int64         // next batch's file offset
	enc      []byte        // lane encode scratch
	sealed   bool
	released bool
	readers  map[*runReader]struct{}
	elem     *list.Element // LRU slot (resident sealed runs only)
}

// NewRun starts an empty run for the given operator. The run's file (if it
// ever spills) is deleted when the tracker closes, whatever else happens.
func (m *Manager) NewRun(op string, schema *sqltypes.Schema, mem *memory.Tracker, st *obs.OpStats, qs *obs.QueryStats) *Run {
	r := &Run{m: m, mem: mem, op: op, schema: schema, st: st, qs: qs}
	mem.AddCloser(r.Release)
	return r
}

// Rows returns the number of rows appended so far.
func (r *Run) Rows() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rows
}

// Spilled reports whether the run lives on disk.
func (r *Run) Spilled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.path != ""
}

// SpillNow forces the run to disk immediately — the external-sort path,
// where the caller is about to free the chunk's resident form and streams
// the sorted output straight to the file. No-op if already spilled.
func (r *Run) SpillNow() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released {
		return errReleased
	}
	if r.path != "" {
		return nil
	}
	return r.spillLocked(r.sealed)
}

// Append adds a sealed batch to the run, taking ownership of it. When the
// tracker refuses the charge, the manager first evicts colder sealed runs
// of the same query; if the budget still refuses, the run spills itself
// and the batch (and all that follow) streams to disk.
func (r *Run) Append(b *vector.Batch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released {
		return errReleased
	}
	if r.sealed {
		return errors.New("spill: append to sealed run")
	}
	if r.w != nil {
		if err := r.writeLocked(b); err != nil {
			return err
		}
		r.rows += int64(b.Len())
		r.nbatches++
		return nil
	}
	n := b.MemBytes()
	for {
		err := r.mem.Reserve(r.op, n)
		if err == nil {
			break
		}
		if !errors.Is(err, memory.ErrMemoryExceeded) {
			return err
		}
		if r.m.evictOne(r.mem, r) {
			continue
		}
		// Budget exhausted and nothing left to evict: go to disk.
		if serr := r.spillLocked(false); serr != nil {
			return serr
		}
		if werr := r.writeLocked(b); werr != nil {
			return werr
		}
		r.rows += int64(b.Len())
		r.nbatches++
		return nil
	}
	r.charged += n
	r.st.AddMem(n)
	r.batches = append(r.batches, b)
	r.rows += int64(b.Len())
	r.nbatches++
	return nil
}

// spillLocked moves the run to disk: writes the header and every resident
// batch, releases the resident charge, and (for sealed runs) finalizes the
// file. Called with r.mu held.
func (r *Run) spillLocked(sealed bool) error {
	f, err := r.m.createFile()
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, writeBufSz)
	r.f, r.w, r.path = f, w, f.Name()
	if err := r.writeHeaderLocked(); err != nil {
		r.abortFileLocked()
		return err
	}
	for _, b := range r.batches {
		if err := r.writeLocked(b); err != nil {
			r.abortFileLocked()
			return err
		}
	}
	r.batches = nil
	r.mem.Release(r.charged)
	r.charged = 0
	r.m.runsSpilled.Add(1)
	r.st.AddSpill(0, 1)
	r.qs.AddSpill(0, 1)
	if sealed {
		return r.finishFileLocked()
	}
	return nil
}

// abortFileLocked tears down a half-written run file after a write error.
// The run keeps its resident form (nothing was freed yet).
func (r *Run) abortFileLocked() {
	if r.f != nil {
		r.f.Close()
		os.Remove(r.path)
		r.m.filesActive.Add(-1)
	}
	r.f, r.w, r.path = nil, nil, ""
}

// finishFileLocked flushes and closes the run file after the last append.
func (r *Run) finishFileLocked() error {
	if r.w != nil {
		if err := r.w.Flush(); err != nil {
			return fmt.Errorf("spill: flush run file: %w", err)
		}
		r.w = nil
	}
	if r.f != nil {
		if err := r.f.Close(); err != nil {
			return fmt.Errorf("spill: close run file: %w", err)
		}
		r.f = nil
	}
	return nil
}

// Seal marks the run complete: no more appends. Resident runs become
// eviction candidates; spilled runs finalize their file.
func (r *Run) Seal() error {
	r.mu.Lock()
	if r.released {
		r.mu.Unlock()
		return errReleased
	}
	if r.sealed {
		r.mu.Unlock()
		return nil
	}
	r.sealed = true
	if r.path != "" {
		err := r.finishFileLocked()
		r.mu.Unlock()
		return err
	}
	resident := len(r.batches) > 0
	r.mu.Unlock()
	if resident {
		r.m.addLRU(r)
	}
	return nil
}

// Open returns a cancellable BatchIter over the run's contents (resident
// or on disk, transparently). interrupt is polled between batches (nil =
// never cancelled). When autoRelease is set the run releases itself as
// soon as the reader is exhausted — the mode for single-consumer runs
// (sort chunks); shuffle runs are instead released by ShuffleManager.Drop.
func (r *Run) Open(interrupt func() error, autoRelease bool) (vector.BatchIter, error) {
	return r.OpenFrom(0, interrupt, autoRelease)
}

// OpenFrom returns a reader positioned at batch index start (0 = Open's
// behavior). The range-partitioned merge opens one sorted run at several
// batch offsets, one per reducer, so each reducer decodes only the batches
// overlapping its key range instead of the whole run.
func (r *Run) OpenFrom(start int, interrupt func() error, autoRelease bool) (vector.BatchIter, error) {
	if start < 0 {
		start = 0
	}
	r.mu.Lock()
	if r.released {
		r.mu.Unlock()
		return nil, errReleased
	}
	if r.path == "" {
		batches := r.batches
		r.mu.Unlock()
		r.m.touch(r)
		if start > len(batches) {
			start = len(batches)
		}
		return &residentIter{run: r, batches: batches, pos: start, interrupt: interrupt, autoRelease: autoRelease}, nil
	}
	nbatches := r.nbatches
	path := r.path
	var off int64
	if start > 0 {
		if start >= nbatches || start >= len(r.offsets) {
			// Past the end: an immediately-exhausted reader.
			r.mu.Unlock()
			return &residentIter{run: r, interrupt: interrupt, autoRelease: autoRelease}, nil
		}
		off = r.offsets[start]
	}
	r.mu.Unlock()
	if err := faultpoint.Hit(faultpoint.SpillRead); err != nil {
		return nil, fmt.Errorf("spill: open run: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spill: open run: %w", err)
	}
	// The header is always read and validated from the file head, even when
	// the reader then seeks past it.
	if err := readRunHeader(f, r); err != nil {
		f.Close()
		return nil, err
	}
	if off > 0 {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("spill: seek run: %w", err)
		}
	}
	rd := &runReader{
		run:         r,
		f:           f,
		br:          bufio.NewReaderSize(f, readBufSz),
		interrupt:   interrupt,
		remaining:   nbatches - start,
		dec:         vector.NewBatch(r.schema),
		autoRelease: autoRelease,
	}
	r.mu.Lock()
	if r.released {
		r.mu.Unlock()
		f.Close()
		return nil, errReleased
	}
	if r.readers == nil {
		r.readers = make(map[*runReader]struct{})
	}
	r.readers[rd] = struct{}{}
	r.mu.Unlock()
	return rd, nil
}

// Release frees everything the run holds: the resident charge, the run
// file, and any open readers. Idempotent; also invoked by the tracker's
// close.
func (r *Run) Release() {
	r.mu.Lock()
	if r.released {
		r.mu.Unlock()
		return
	}
	r.released = true
	charged := r.charged
	r.charged = 0
	r.batches = nil
	if r.w != nil {
		r.w = nil
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	path := r.path
	readers := r.readers
	r.readers = nil
	r.mu.Unlock()

	r.mem.Release(charged)
	for rd := range readers {
		rd.close()
	}
	if path != "" {
		os.Remove(path)
		r.m.filesActive.Add(-1)
	}
	r.m.removeLRU(r)
}

func (r *Run) readerDone(rd *runReader) {
	r.mu.Lock()
	delete(r.readers, rd)
	r.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Encoding

func (r *Run) writeHeaderLocked() error {
	var hdr [7]byte
	copy(hdr[:4], magic)
	hdr[4] = version
	binary.LittleEndian.PutUint16(hdr[5:7], uint16(r.schema.Len()))
	if _, err := r.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("spill: write header: %w", err)
	}
	for _, f := range r.schema.Fields {
		if err := r.w.WriteByte(byte(f.Type)); err != nil {
			return fmt.Errorf("spill: write header: %w", err)
		}
	}
	r.fileOff = int64(7 + r.schema.Len())
	r.m.bytesWritten.Add(int64(7 + r.schema.Len()))
	return nil
}

// growScratch returns buf resized to exactly n bytes, reallocating only
// when capacity is short.
func growScratch(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// writeLocked serializes one batch to the open run file, recording its
// file offset so OpenFrom can seek straight to it. Fixed-width lanes and
// null words are staged whole into the encode scratch and written with a
// single call each, instead of 8 bytes at a time.
func (r *Run) writeLocked(b *vector.Batch) error {
	if err := faultpoint.Hit(faultpoint.SpillWrite); err != nil {
		return fmt.Errorf("spill: write batch: %w", err)
	}
	n := b.Len()
	var scratch [8]byte
	written := int64(0)
	off := r.fileOff
	put := func(p []byte) error {
		if _, err := r.w.Write(p); err != nil {
			return fmt.Errorf("spill: write batch: %w", err)
		}
		written += int64(len(p))
		return nil
	}
	putStr := func(s string) error {
		if _, err := r.w.WriteString(s); err != nil {
			return fmt.Errorf("spill: write batch: %w", err)
		}
		written += int64(len(s))
		return nil
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(n))
	if err := put(scratch[:4]); err != nil {
		return err
	}
	for _, col := range b.Cols {
		if col.AnyNulls() {
			if err := put([]byte{1}); err != nil {
				return err
			}
			words := col.NullWords()
			r.enc = growScratch(r.enc, 8*len(words))
			for i, w := range words {
				binary.LittleEndian.PutUint64(r.enc[8*i:], w)
			}
			if err := put(r.enc); err != nil {
				return err
			}
		} else if err := put([]byte{0}); err != nil {
			return err
		}
		switch col.Type {
		case sqltypes.Float64:
			vals := col.Float64s()
			r.enc = growScratch(r.enc, 8*n)
			for i, v := range vals {
				binary.LittleEndian.PutUint64(r.enc[8*i:], math.Float64bits(v))
			}
			if err := put(r.enc); err != nil {
				return err
			}
		case sqltypes.String:
			for _, s := range col.Strings() {
				binary.LittleEndian.PutUint32(scratch[:4], uint32(len(s)))
				if err := put(scratch[:4]); err != nil {
					return err
				}
				if err := putStr(s); err != nil {
					return err
				}
			}
		default:
			vals := col.Int64s()
			r.enc = growScratch(r.enc, 8*n)
			for i, v := range vals {
				binary.LittleEndian.PutUint64(r.enc[8*i:], uint64(v))
			}
			if err := put(r.enc); err != nil {
				return err
			}
		}
	}
	r.offsets = append(r.offsets, off)
	r.fileOff = off + written
	r.m.bytesWritten.Add(written)
	r.st.AddSpill(written, 0)
	r.qs.AddSpill(written, 0)
	return nil
}

// ---------------------------------------------------------------------------
// Readers

// residentIter streams a resident run's batches, polling cancellation.
type residentIter struct {
	run         *Run
	batches     []*vector.Batch
	pos         int
	interrupt   func() error
	autoRelease bool
	done        bool
}

func (it *residentIter) Next() (*vector.Batch, error) {
	if it.done {
		return nil, nil
	}
	if it.interrupt != nil {
		if err := it.interrupt(); err != nil {
			return nil, err
		}
	}
	for it.pos < len(it.batches) {
		b := it.batches[it.pos]
		it.pos++
		if b.Len() > 0 {
			return b, nil
		}
	}
	it.done = true
	if it.autoRelease {
		it.run.Release()
	}
	return nil, nil
}

// runReader streams a spilled run back from disk, decoding into one reused
// batch (the BatchIter ownership contract allows this).
type runReader struct {
	run         *Run
	interrupt   func() error
	autoRelease bool

	mu        sync.Mutex
	f         *os.File
	br        *bufio.Reader
	dec       *vector.Batch
	buf       []byte // lane decode scratch
	remaining int
	closed    bool
}

// readRunHeader reads and validates a run file's header from src.
func readRunHeader(src io.Reader, r *Run) error {
	hdr := make([]byte, 7+r.schema.Len())
	if _, err := io.ReadFull(src, hdr); err != nil {
		return fmt.Errorf("spill: read header: %w", err)
	}
	if string(hdr[:4]) != magic || hdr[4] != version {
		return fmt.Errorf("spill: bad run file header")
	}
	if int(binary.LittleEndian.Uint16(hdr[5:7])) != r.schema.Len() {
		return fmt.Errorf("spill: run file column count mismatch")
	}
	for i, f := range r.schema.Fields {
		if hdr[7+i] != byte(f.Type) {
			return fmt.Errorf("spill: run file column %d type mismatch", i)
		}
	}
	r.m.bytesRead.Add(int64(len(hdr)))
	return nil
}

// Next implements vector.BatchIter.
func (rd *runReader) Next() (*vector.Batch, error) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if rd.closed {
		return nil, errReleased
	}
	if rd.remaining == 0 {
		rd.finishLocked()
		return nil, nil
	}
	if rd.interrupt != nil {
		if err := rd.interrupt(); err != nil {
			rd.finishLocked()
			return nil, err
		}
	}
	if err := faultpoint.Hit(faultpoint.SpillRead); err != nil {
		rd.finishLocked()
		return nil, fmt.Errorf("spill: read batch: %w", err)
	}
	b, err := rd.decodeBatch()
	if err != nil {
		rd.finishLocked()
		return nil, err
	}
	rd.remaining--
	return b, nil
}

// finishLocked closes the file and detaches from the run; with
// autoRelease set it releases the run itself (deleting the file).
func (rd *runReader) finishLocked() {
	if rd.closed {
		return
	}
	rd.closed = true
	if rd.f != nil {
		rd.f.Close()
		rd.f = nil
	}
	run := rd.run
	auto := rd.autoRelease
	// The run's reader set holds rd; drop the entry outside rd.mu's
	// critical path is unnecessary — run.mu never nests inside rd.mu
	// elsewhere, but keep the call after state is settled.
	run.readerDone(rd)
	if auto {
		run.Release()
	}
}

// Close releases the reader's file handle early — a range-trimmed merge
// stops mid-run once it passes its upper bound. The run itself (and its
// other readers) are unaffected.
func (rd *runReader) Close() { rd.close() }

// close is the abandonment path (run released mid-read).
func (rd *runReader) close() {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if rd.closed {
		return
	}
	rd.closed = true
	if rd.f != nil {
		rd.f.Close()
		rd.f = nil
	}
}

// decodeBatch reads one batch into the reused decode batch.
func (rd *runReader) decodeBatch() (*vector.Batch, error) {
	var scratch [8]byte
	read := func(p []byte) error {
		if _, err := io.ReadFull(rd.br, p); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("spill: read batch: %w", err)
		}
		return nil
	}
	if err := read(scratch[:4]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(scratch[:4]))
	if n <= 0 || n > 1<<22 {
		return nil, fmt.Errorf("spill: corrupt run file (batch of %d rows)", n)
	}
	total := int64(4)
	b := rd.dec
	for _, col := range b.Cols {
		col.Resize(n)
		if err := read(scratch[:1]); err != nil {
			return nil, err
		}
		if scratch[0] == 1 {
			words := col.NullWords()
			rd.buf = growScratch(rd.buf, 8*len(words))
			if err := read(rd.buf); err != nil {
				return nil, err
			}
			for i := range words {
				words[i] = binary.LittleEndian.Uint64(rd.buf[8*i:])
			}
			total += int64(8 * len(words))
		}
		total++
		switch col.Type {
		case sqltypes.Float64:
			lane := col.Float64s()
			rd.buf = growScratch(rd.buf, 8*n)
			if err := read(rd.buf); err != nil {
				return nil, err
			}
			for i := range lane {
				lane[i] = math.Float64frombits(binary.LittleEndian.Uint64(rd.buf[8*i:]))
			}
			total += int64(8 * n)
		case sqltypes.String:
			lane := col.Strings()
			for i := range lane {
				if err := read(scratch[:4]); err != nil {
					return nil, err
				}
				l := int(binary.LittleEndian.Uint32(scratch[:4]))
				if l < 0 || l > 1<<30 {
					return nil, fmt.Errorf("spill: corrupt run file (string of %d bytes)", l)
				}
				if l == 0 {
					lane[i] = ""
					total += 4
					continue
				}
				buf := make([]byte, l)
				if err := read(buf); err != nil {
					return nil, err
				}
				lane[i] = string(buf)
				total += int64(4 + l)
			}
		default:
			lane := col.Int64s()
			rd.buf = growScratch(rd.buf, 8*n)
			if err := read(rd.buf); err != nil {
				return nil, err
			}
			for i := range lane {
				lane[i] = int64(binary.LittleEndian.Uint64(rd.buf[8*i:]))
			}
			total += int64(8 * n)
		}
	}
	b.SetLen(n)
	rd.run.m.bytesRead.Add(total)
	return b, nil
}
