package spill

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"indexeddf/internal/faultpoint"
	"indexeddf/internal/memory"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "b", Type: sqltypes.Bool, Nullable: true},
		sqltypes.Field{Name: "i", Type: sqltypes.Int64, Nullable: true},
		sqltypes.Field{Name: "f", Type: sqltypes.Float64, Nullable: true},
		sqltypes.Field{Name: "s", Type: sqltypes.String, Nullable: true},
		sqltypes.Field{Name: "ts", Type: sqltypes.Timestamp, Nullable: true},
	)
}

// testRows builds n rows over testSchema with nulls sprinkled through
// every column.
func testRows(n, seed int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := 0; i < n; i++ {
		v := i + seed
		r := sqltypes.Row{
			sqltypes.NewBool(v%2 == 0),
			sqltypes.NewInt64(int64(v)),
			sqltypes.NewFloat64(float64(v) / 3),
			sqltypes.NewString(fmt.Sprintf("row-%d", v)),
			sqltypes.NewTimestamp(int64(v) * 1_000_000),
		}
		// Null out column (i mod 6) when it is a real column index; when
		// it is 5 the row stays fully non-null.
		if c := i % 6; c < len(r) {
			r[c] = sqltypes.Value{}
		}
		rows[i] = r
	}
	return rows
}

func batchOf(t *testing.T, schema *sqltypes.Schema, rows []sqltypes.Row) *vector.Batch {
	t.Helper()
	b := vector.NewBatch(schema)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	return b
}

func drainRun(t *testing.T, it vector.BatchIter) []sqltypes.Row {
	t.Helper()
	var out []sqltypes.Row
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if b == nil {
			return out
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
	}
}

func wantRows(t *testing.T, got, want []sqltypes.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity: got %d want %d", i, len(got[i]), len(want[i]))
		}
		for c := range want[i] {
			gn, wn := got[i][c].IsNull(), want[i][c].IsNull()
			if gn != wn || (!gn && !sqltypes.Equal(got[i][c], want[i][c])) {
				t.Fatalf("row %d col %d: got %v want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

// TestRunRoundTripSpilled pins the run-file codec: every column type plus
// nulls survives a forced spill and reads back identical, and the file is
// removed once the auto-releasing reader is drained.
func TestRunRoundTripSpilled(t *testing.T) {
	m := NewManager(t.TempDir())
	defer m.Close()
	schema := testSchema()
	rows := testRows(1000, 0)

	run := m.NewRun("test", schema, nil, nil, nil)
	if err := run.SpillNow(); err != nil {
		t.Fatalf("SpillNow: %v", err)
	}
	// Append in uneven batch sizes, including an empty batch.
	for _, chunk := range [][]sqltypes.Row{rows[:1], rows[1:1], rows[1:500], rows[500:]} {
		if err := run.Append(batchOf(t, schema, chunk)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := run.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if !run.Spilled() {
		t.Fatal("run should be spilled")
	}
	if got := m.ActiveFiles(); got != 1 {
		t.Fatalf("active files: got %d want 1", got)
	}
	it, err := run.Open(nil, true)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	wantRows(t, drainRun(t, it), rows)
	if got := m.ActiveFiles(); got != 0 {
		t.Fatalf("active files after drain: got %d want 0", got)
	}
	if m.BytesRead() == 0 || m.BytesWritten() == 0 {
		t.Fatalf("expected read/write byte counters to move: read=%d written=%d", m.BytesRead(), m.BytesWritten())
	}
}

// TestRunResidentRoundTrip pins the in-memory path: a sealed run under
// budget serves its batches without touching the disk.
func TestRunResidentRoundTrip(t *testing.T) {
	m := NewManager(t.TempDir())
	defer m.Close()
	schema := testSchema()
	rows := testRows(200, 7)
	pool := memory.NewPool(0)
	mem := pool.NewTracker("q1", 0)
	defer mem.Close()

	run := m.NewRun("test", schema, mem, nil, nil)
	if err := run.Append(batchOf(t, schema, rows)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := run.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if run.Spilled() {
		t.Fatal("run should be resident")
	}
	it, err := run.Open(nil, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	wantRows(t, drainRun(t, it), rows)
	run.Release()
	if got := mem.Used(); got != 0 {
		t.Fatalf("tracker used after release: got %d want 0", got)
	}
}

// TestEvictionUnderPressure pins LRU eviction: with a budget too small
// for two resident runs, sealing the second evicts the first to disk
// rather than failing, and both read back intact.
func TestEvictionUnderPressure(t *testing.T) {
	m := NewManager(t.TempDir())
	defer m.Close()
	schema := testSchema()
	pool := memory.NewPool(0)
	rowsA := testRows(20000, 0)
	rowsB := testRows(20000, 50000)
	batchA := batchOf(t, schema, rowsA)
	// Budget fits one run comfortably but not two, so sealing the second
	// must evict the first rather than fail.
	mem := pool.NewTracker("q1", batchA.MemBytes()+batchA.MemBytes()/2)
	defer mem.Close()

	runA := m.NewRun("test", schema, mem, nil, nil)
	if err := runA.Append(batchA); err != nil {
		t.Fatalf("Append A: %v", err)
	}
	if err := runA.Seal(); err != nil {
		t.Fatalf("Seal A: %v", err)
	}
	runB := m.NewRun("test", schema, mem, nil, nil)
	if err := runB.Append(batchOf(t, schema, rowsB)); err != nil {
		t.Fatalf("Append B: %v", err)
	}
	if err := runB.Seal(); err != nil {
		t.Fatalf("Seal B: %v", err)
	}
	if !runA.Spilled() {
		t.Fatal("expected run A (coldest sealed resident) to be evicted")
	}
	if runB.Spilled() {
		t.Fatal("expected run B to stay resident after the eviction freed space")
	}
	if got := m.Evictions(); got != 1 {
		t.Fatalf("evictions: got %d want 1", got)
	}
	itA, err := runA.Open(nil, false)
	if err != nil {
		t.Fatalf("Open A: %v", err)
	}
	wantRows(t, drainRun(t, itA), rowsA)
	itB, err := runB.Open(nil, false)
	if err != nil {
		t.Fatalf("Open B: %v", err)
	}
	wantRows(t, drainRun(t, itB), rowsB)
	runA.Release()
	runB.Release()
	if got := m.ActiveFiles(); got != 0 {
		t.Fatalf("active files after release: got %d want 0", got)
	}
}

// TestTrackerCloseReleasesRuns pins the lifecycle backstop: closing the
// query's tracker releases every run it created, deleting spilled files
// and stopping in-flight readers.
func TestTrackerCloseReleasesRuns(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir)
	defer m.Close()
	schema := testSchema()
	pool := memory.NewPool(0)
	mem := pool.NewTracker("q1", 0)

	run := m.NewRun("test", schema, mem, nil, nil)
	if err := run.SpillNow(); err != nil {
		t.Fatalf("SpillNow: %v", err)
	}
	if err := run.Append(batchOf(t, schema, testRows(500, 0))); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := run.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	it, err := run.Open(nil, false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := it.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	mem.Close() // query teardown

	if _, err := it.Next(); err == nil {
		t.Fatal("reader should fail after its run is released")
	}
	var files []string
	_ = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if len(files) != 0 {
		t.Fatalf("run files left after tracker close: %v", files)
	}
	if got := m.ActiveFiles(); got != 0 {
		t.Fatalf("active files: got %d want 0", got)
	}
}

// TestManagerCloseSweeps pins Session.Close semantics: closing the
// manager removes its whole private directory even when runs leaked.
func TestManagerCloseSweeps(t *testing.T) {
	parent := t.TempDir()
	m := NewManager(parent)
	schema := testSchema()
	run := m.NewRun("test", schema, nil, nil, nil)
	if err := run.SpillNow(); err != nil {
		t.Fatalf("SpillNow: %v", err)
	}
	if err := run.Append(batchOf(t, schema, testRows(100, 0))); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := run.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	// Leak the run deliberately; Close must still sweep it.
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("manager close left entries under %s: %v", parent, ents)
	}
}

// TestSpillWriteFaultFailsRun pins injected write faults: the append
// fails, the run releases cleanly, and no file is left behind.
func TestSpillWriteFaultFailsRun(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	m := NewManager(dir)
	defer m.Close()
	schema := testSchema()

	injected := errors.New("injected spill write failure")
	faultpoint.Arm(faultpoint.SpillWrite, faultpoint.Schedule{Err: injected})

	run := m.NewRun("test", schema, nil, nil, nil)
	if err := run.SpillNow(); err != nil {
		t.Fatalf("SpillNow: %v", err)
	}
	err := run.Append(batchOf(t, schema, testRows(100, 0)))
	if !errors.Is(err, injected) {
		t.Fatalf("Append error: got %v want %v", err, injected)
	}
	run.Release()
	var files []string
	_ = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if len(files) != 0 {
		t.Fatalf("files left after failed spill: %v", files)
	}
}

// TestShortWriteDetected pins the codec's truncation defence: a run file
// cut short mid-batch surfaces an error instead of silently returning
// fewer rows.
func TestShortWriteDetected(t *testing.T) {
	m := NewManager(t.TempDir())
	defer m.Close()
	schema := testSchema()
	run := m.NewRun("test", schema, nil, nil, nil)
	if err := run.SpillNow(); err != nil {
		t.Fatalf("SpillNow: %v", err)
	}
	if err := run.Append(batchOf(t, schema, testRows(2000, 0))); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := run.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	// Truncate the run file mid-payload.
	run.mu.Lock()
	path := run.path
	run.mu.Unlock()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	it, err := run.Open(nil, false)
	if err == nil {
		for {
			var b *vector.Batch
			b, err = it.Next()
			if err != nil || b == nil {
				break
			}
		}
	}
	if err == nil {
		t.Fatal("expected an error reading a truncated run file")
	}
	run.Release()
}
