package columnar

import (
	"testing"
	"testing/quick"

	"indexeddf/internal/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "name", Type: sqltypes.String, Nullable: true},
		sqltypes.Field{Name: "score", Type: sqltypes.Float64, Nullable: true},
		sqltypes.Field{Name: "flag", Type: sqltypes.Bool},
		sqltypes.Field{Name: "small", Type: sqltypes.Int32},
		sqltypes.Field{Name: "ts", Type: sqltypes.Timestamp},
	)
}

func sampleRows() []sqltypes.Row {
	return []sqltypes.Row{
		{sqltypes.NewInt64(1), sqltypes.NewString("a"), sqltypes.NewFloat64(0.5),
			sqltypes.NewBool(true), sqltypes.NewInt32(-3), sqltypes.NewTimestamp(99)},
		{sqltypes.NewInt64(2), sqltypes.Null, sqltypes.Null,
			sqltypes.NewBool(false), sqltypes.NewInt32(7), sqltypes.NewTimestamp(0)},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b, err := FromRows(testSchema(), sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 2 {
		t.Fatalf("NumRows = %d", b.NumRows())
	}
	for i, want := range sampleRows() {
		got := b.Row(i)
		for c := range want {
			if got[c] != want[c] {
				t.Errorf("row %d col %d: %v != %v", i, c, got[c], want[c])
			}
		}
	}
}

func TestProjectRow(t *testing.T) {
	b, err := FromRows(testSchema(), sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	r := b.ProjectRow(0, []int{2, 0}, nil)
	if len(r) != 2 || r[0] != sqltypes.NewFloat64(0.5) || r[1] != sqltypes.NewInt64(1) {
		t.Fatalf("ProjectRow = %v", r)
	}
	// Reuse destination.
	dst := make(sqltypes.Row, 2)
	r2 := b.ProjectRow(1, []int{0, 1}, dst)
	if &r2[0] != &dst[0] {
		t.Fatal("destination not reused")
	}
	if !r2[1].IsNull() {
		t.Fatalf("null column lost: %v", r2)
	}
}

func TestIter(t *testing.T) {
	b, err := FromRows(testSchema(), sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sqltypes.Drain(b.Iter())
	if err != nil || len(rows) != 2 {
		t.Fatalf("Drain = %d rows, %v", len(rows), err)
	}
}

func TestAppendRowErrors(t *testing.T) {
	b := NewBatch(testSchema())
	if err := b.AppendRow(sqltypes.Row{sqltypes.NewInt64(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	bad := sampleRows()[0].Clone()
	bad[0] = sqltypes.NewString("not-an-int")
	if err := b.AppendRow(bad); err == nil {
		t.Fatal("uncastable value accepted")
	}
}

func TestImplicitCast(t *testing.T) {
	b := NewBatch(sqltypes.NewSchema(sqltypes.Field{Name: "x", Type: sqltypes.Int64}))
	if err := b.AppendRow(sqltypes.Row{sqltypes.NewInt32(5)}); err != nil {
		t.Fatal(err)
	}
	if got := b.Row(0)[0]; got != sqltypes.NewInt64(5) {
		t.Fatalf("cast on append = %v", got)
	}
}

func TestMemoryUsageGrows(t *testing.T) {
	b := NewBatch(testSchema())
	before := b.MemoryUsage()
	for i := 0; i < 1000; i++ {
		if err := b.AppendRow(sampleRows()[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	if after := b.MemoryUsage(); after <= before {
		t.Fatalf("MemoryUsage did not grow: %d -> %d", before, after)
	}
}

func TestNullBitmapAcross64Boundary(t *testing.T) {
	v := NewVector(sqltypes.Int64)
	for i := 0; i < 130; i++ {
		var err error
		if i%2 == 0 {
			err = v.Append(sqltypes.Null)
		} else {
			err = v.Append(sqltypes.NewInt64(int64(i)))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 130; i++ {
		if got := v.IsNull(i); got != (i%2 == 0) {
			t.Fatalf("IsNull(%d) = %v", i, got)
		}
		if i%2 == 1 && v.Get(i) != sqltypes.NewInt64(int64(i)) {
			t.Fatalf("Get(%d) = %v", i, v.Get(i))
		}
	}
}

func TestVectorQuickRoundTrip(t *testing.T) {
	f := func(xs []int64) bool {
		v := NewVector(sqltypes.Int64)
		for _, x := range xs {
			if err := v.Append(sqltypes.NewInt64(x)); err != nil {
				return false
			}
		}
		if v.Len() != len(xs) {
			return false
		}
		for i, x := range xs {
			if v.Get(i) != sqltypes.NewInt64(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
