// Package columnar implements typed column vectors and columnar batches.
//
// The vanilla (baseline) engine caches DataFrames in this format, mirroring
// Spark's in-memory columnar cache: projections touch only the referenced
// columns, which is why the paper's Figure 2 shows the Indexed DataFrame
// (a row store) losing to vanilla Spark on projection while winning on
// indexed operations.
package columnar

import (
	"fmt"

	"indexeddf/internal/sqltypes"
)

// Vector is a typed column of values with a null bitmap.
type Vector struct {
	Type  sqltypes.Type
	nulls []uint64 // bitmap, 1 = null
	i64   []int64  // Bool / Int32 / Int64 / Timestamp payloads
	f64   []float64
	str   []string
	n     int
}

// NewVector returns an empty vector of the given type.
func NewVector(t sqltypes.Type) *Vector { return &Vector{Type: t} }

// Len returns the number of values in the vector.
func (v *Vector) Len() int { return v.n }

// Append adds a value (NULL or of the vector's type family) to the vector.
func (v *Vector) Append(val sqltypes.Value) error {
	idx := v.n
	if idx%64 == 0 {
		v.nulls = append(v.nulls, 0)
	}
	v.n++
	if val.IsNull() {
		v.nulls[idx/64] |= 1 << (idx % 64)
		switch v.Type {
		case sqltypes.Float64:
			v.f64 = append(v.f64, 0)
		case sqltypes.String:
			v.str = append(v.str, "")
		default:
			v.i64 = append(v.i64, 0)
		}
		return nil
	}
	if val.T != v.Type {
		cast, err := val.Cast(v.Type)
		if err != nil {
			return fmt.Errorf("columnar: %v", err)
		}
		val = cast
	}
	switch v.Type {
	case sqltypes.Bool, sqltypes.Int32, sqltypes.Int64, sqltypes.Timestamp:
		v.i64 = append(v.i64, val.I)
	case sqltypes.Float64:
		v.f64 = append(v.f64, val.F)
	case sqltypes.String:
		v.str = append(v.str, val.S)
	default:
		return fmt.Errorf("columnar: unsupported vector type %s", v.Type)
	}
	return nil
}

// IsNull reports whether the value at i is NULL.
func (v *Vector) IsNull(i int) bool {
	return v.nulls[i/64]&(1<<(i%64)) != 0
}

// Get returns the value at i.
func (v *Vector) Get(i int) sqltypes.Value {
	if v.IsNull(i) {
		return sqltypes.Null
	}
	switch v.Type {
	case sqltypes.Bool:
		return sqltypes.NewBool(v.i64[i] != 0)
	case sqltypes.Int32:
		return sqltypes.NewInt32(int32(v.i64[i]))
	case sqltypes.Int64:
		return sqltypes.NewInt64(v.i64[i])
	case sqltypes.Timestamp:
		return sqltypes.NewTimestamp(v.i64[i])
	case sqltypes.Float64:
		return sqltypes.NewFloat64(v.f64[i])
	case sqltypes.String:
		return sqltypes.NewString(v.str[i])
	}
	return sqltypes.Null
}

// ---------------------------------------------------------------------------
// Raw access and reuse — the vectorized execution engine's view of a vector.
// These expose the typed payload slices directly so expression kernels can
// run tight loops without per-value boxing.

// Int64s returns the integer-family payload slice (Bool / Int32 / Int64 /
// Timestamp vectors). Entries at null positions are zero.
func (v *Vector) Int64s() []int64 { return v.i64 }

// Float64s returns the Float64 payload slice.
func (v *Vector) Float64s() []float64 { return v.f64 }

// Strings returns the String payload slice.
func (v *Vector) Strings() []string { return v.str }

// NullWords returns the null bitmap as 64-bit words (bit set = NULL).
func (v *Vector) NullWords() []uint64 { return v.nulls }

// AnyNulls reports whether the vector contains at least one NULL.
func (v *Vector) AnyNulls() bool {
	for _, w := range v.nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// SetNull marks position i as NULL (payload keeps its previous value,
// which readers must not interpret).
func (v *Vector) SetNull(i int) { v.nulls[i/64] |= 1 << (i % 64) }

// Resize sets the vector's length to n with all positions valid (non-null)
// and payload entries ready for direct writes through the raw slices.
// Existing capacity is reused, making it the kernel output allocation path:
// after the first batch a Resize is two slice re-slices and a bitmap clear.
func (v *Vector) Resize(n int) {
	words := (n + 63) / 64
	if cap(v.nulls) < words {
		v.nulls = make([]uint64, words)
	} else {
		v.nulls = v.nulls[:words]
		for i := range v.nulls {
			v.nulls[i] = 0
		}
	}
	switch v.Type {
	case sqltypes.Float64:
		if cap(v.f64) < n {
			v.f64 = make([]float64, n)
		} else {
			v.f64 = v.f64[:n]
		}
	case sqltypes.String:
		if cap(v.str) < n {
			v.str = make([]string, n)
		} else {
			v.str = v.str[:n]
		}
	default:
		if cap(v.i64) < n {
			v.i64 = make([]int64, n)
		} else {
			v.i64 = v.i64[:n]
		}
	}
	v.n = n
}

// Grow extends the vector by n positions, preserving existing values and
// nulls. The new positions are valid (non-null) but their payload is
// unspecified: the caller must write each grown position through the raw
// lanes or mark it null. This is the append-into-column path bulk
// builders use (Resize would wipe the null bitmap of rows already
// written).
func (v *Vector) Grow(n int) {
	old := v.n
	v.n += n
	words := (v.n + 63) / 64
	for len(v.nulls) < words {
		v.nulls = append(v.nulls, 0)
	}
	// Clear any stale null bits beyond old left by a previous longer use of
	// the shared capacity.
	if old%64 != 0 {
		v.nulls[old/64] &= (1 << (old % 64)) - 1
	}
	for w := (old + 63) / 64; w < words; w++ {
		v.nulls[w] = 0
	}
	// Extend the payload lane. New positions need no zeroing: the caller
	// writes every grown position (or marks it null, which readers must
	// not interpret), so spare capacity is re-sliced in place.
	switch v.Type {
	case sqltypes.Float64:
		if cap(v.f64) >= v.n {
			v.f64 = v.f64[:v.n]
		} else {
			v.f64 = append(v.f64, make([]float64, n)...)
		}
	case sqltypes.String:
		if cap(v.str) >= v.n {
			v.str = v.str[:v.n]
		} else {
			v.str = append(v.str, make([]string, n)...)
		}
	default:
		if cap(v.i64) >= v.n {
			v.i64 = v.i64[:v.n]
		} else {
			v.i64 = append(v.i64, make([]int64, n)...)
		}
	}
}

// Set writes val at position i of a Resize-d vector (NULL or matching the
// vector's type family; mismatched types go through the cast used by
// Append). Unlike Append it touches no growth or bitmap-extension logic,
// which makes it the bulk-load path for scans that know their row count.
func (v *Vector) Set(i int, val sqltypes.Value) error {
	if val.IsNull() {
		v.SetNull(i)
		return nil
	}
	if val.T != v.Type {
		cast, err := val.Cast(v.Type)
		if err != nil {
			return fmt.Errorf("columnar: %v", err)
		}
		val = cast
	}
	switch v.Type {
	case sqltypes.Float64:
		v.f64[i] = val.F
	case sqltypes.String:
		v.str[i] = val.S
	default:
		v.i64[i] = val.I
	}
	return nil
}

// Reset empties the vector (keeping capacity) and retypes it to t.
func (v *Vector) Reset(t sqltypes.Type) {
	v.Type = t
	v.n = 0
	v.nulls = v.nulls[:0]
	v.i64 = v.i64[:0]
	v.f64 = v.f64[:0]
	v.str = v.str[:0]
}

// Slice returns a zero-copy view of rows [lo, hi). lo must be a multiple of
// 64 so the null bitmap stays word-aligned; the vectorized scan slices
// cached partitions into batches at aligned boundaries.
func (v *Vector) Slice(lo, hi int) (*Vector, error) {
	if lo%64 != 0 || lo < 0 || hi < lo || hi > v.n {
		return nil, fmt.Errorf("columnar: bad slice [%d,%d) of %d rows", lo, hi, v.n)
	}
	out := &Vector{Type: v.Type, n: hi - lo, nulls: v.nulls[lo/64 : (hi+63)/64]}
	switch v.Type {
	case sqltypes.Float64:
		out.f64 = v.f64[lo:hi]
	case sqltypes.String:
		out.str = v.str[lo:hi]
	default:
		out.i64 = v.i64[lo:hi]
	}
	return out, nil
}

// MemoryUsage estimates the vector's heap footprint in bytes.
func (v *Vector) MemoryUsage() int64 {
	n := int64(len(v.nulls) * 8)
	n += int64(cap(v.i64) * 8)
	n += int64(cap(v.f64) * 8)
	for _, s := range v.str {
		n += int64(len(s)) + 16
	}
	return n
}

// Batch is a set of equal-length vectors: one cached partition of a vanilla
// DataFrame.
type Batch struct {
	Schema  *sqltypes.Schema
	Columns []*Vector
	rows    int
}

// NewBatch returns an empty batch for schema.
func NewBatch(schema *sqltypes.Schema) *Batch {
	cols := make([]*Vector, schema.Len())
	for i, f := range schema.Fields {
		cols[i] = NewVector(f.Type)
	}
	return &Batch{Schema: schema, Columns: cols}
}

// AppendRow adds a row to the batch.
func (b *Batch) AppendRow(row sqltypes.Row) error {
	if len(row) != len(b.Columns) {
		return fmt.Errorf("columnar: row arity %d does not match batch arity %d",
			len(row), len(b.Columns))
	}
	for i, v := range row {
		if err := b.Columns[i].Append(v); err != nil {
			return err
		}
	}
	b.rows++
	return nil
}

// BatchOf wraps equal-length vectors as a batch without copying.
func BatchOf(schema *sqltypes.Schema, cols []*Vector) *Batch {
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	return &Batch{Schema: schema, Columns: cols, rows: n}
}

// FromRows builds a batch from rows.
func FromRows(schema *sqltypes.Schema, rows []sqltypes.Row) (*Batch, error) {
	b := NewBatch(schema)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// NumRows returns the number of rows in the batch.
func (b *Batch) NumRows() int { return b.rows }

// Row materializes row i (all columns).
func (b *Batch) Row(i int) sqltypes.Row {
	row := make(sqltypes.Row, len(b.Columns))
	for c, col := range b.Columns {
		row[c] = col.Get(i)
	}
	return row
}

// ProjectRow materializes only the columns in cols for row i — the columnar
// fast path for projections.
func (b *Batch) ProjectRow(i int, cols []int, dst sqltypes.Row) sqltypes.Row {
	if dst == nil {
		dst = make(sqltypes.Row, len(cols))
	}
	for j, c := range cols {
		dst[j] = b.Columns[c].Get(i)
	}
	return dst
}

// MemoryUsage estimates the batch's heap footprint in bytes.
func (b *Batch) MemoryUsage() int64 {
	var n int64
	for _, c := range b.Columns {
		n += c.MemoryUsage()
	}
	return n
}

// Iter returns a RowIter over the batch's rows.
func (b *Batch) Iter() sqltypes.RowIter { return &batchIter{b: b} }

type batchIter struct {
	b   *Batch
	pos int
}

func (it *batchIter) Next() (sqltypes.Row, error) {
	if it.pos >= it.b.rows {
		return nil, nil
	}
	r := it.b.Row(it.pos)
	it.pos++
	return r, nil
}
