package ctrie

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func hashU64(k uint64) uint64 {
	// splitmix64 finalizer: well distributed for sequential keys.
	z := k + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newU64() *Ctrie[uint64, uint64] { return New[uint64, uint64](hashU64) }

func TestInsertLookup(t *testing.T) {
	c := newU64()
	if _, found := c.Lookup(1); found {
		t.Fatal("empty trie claims to contain key")
	}
	for i := uint64(0); i < 1000; i++ {
		c.Insert(i, i*10)
	}
	for i := uint64(0); i < 1000; i++ {
		v, found := c.Lookup(i)
		if !found || v != i*10 {
			t.Fatalf("Lookup(%d) = %d,%v; want %d,true", i, v, found, i*10)
		}
	}
	if _, found := c.Lookup(5000); found {
		t.Fatal("found a key never inserted")
	}
	if got := c.Len(); got != 1000 {
		t.Fatalf("Len = %d, want 1000", got)
	}
}

func TestSwapReturnsPrevious(t *testing.T) {
	c := newU64()
	if _, had := c.Swap(7, 1); had {
		t.Fatal("Swap on empty trie reported a previous value")
	}
	prev, had := c.Swap(7, 2)
	if !had || prev != 1 {
		t.Fatalf("Swap = %d,%v; want 1,true", prev, had)
	}
	v, _ := c.Lookup(7)
	if v != 2 {
		t.Fatalf("Lookup after Swap = %d; want 2", v)
	}
}

func TestRemove(t *testing.T) {
	c := newU64()
	const n = 500
	for i := uint64(0); i < n; i++ {
		c.Insert(i, i)
	}
	// Remove odd keys.
	for i := uint64(1); i < n; i += 2 {
		v, removed := c.Remove(i)
		if !removed || v != i {
			t.Fatalf("Remove(%d) = %d,%v", i, v, removed)
		}
	}
	// Removing again is a no-op.
	if _, removed := c.Remove(1); removed {
		t.Fatal("double remove succeeded")
	}
	for i := uint64(0); i < n; i++ {
		_, found := c.Lookup(i)
		if want := i%2 == 0; found != want {
			t.Fatalf("Lookup(%d) found=%v, want %v", i, found, want)
		}
	}
	if got := c.Len(); got != n/2 {
		t.Fatalf("Len = %d, want %d", got, n/2)
	}
	// Remove the rest; trie must drain to empty.
	for i := uint64(0); i < n; i += 2 {
		c.Remove(i)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after draining = %d, want 0", got)
	}
}

func TestFullHashCollisionsUseLNodes(t *testing.T) {
	// A constant hasher forces every key through the l-node path.
	c := New[uint64, string](func(uint64) uint64 { return 42 })
	for i := uint64(0); i < 50; i++ {
		c.Insert(i, fmt.Sprint(i))
	}
	for i := uint64(0); i < 50; i++ {
		v, found := c.Lookup(i)
		if !found || v != fmt.Sprint(i) {
			t.Fatalf("collision Lookup(%d) = %q,%v", i, v, found)
		}
	}
	if c.Len() != 50 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Overwrite inside the l-node.
	prev, had := c.Swap(7, "seven")
	if !had || prev != "7" {
		t.Fatalf("collision Swap = %q,%v", prev, had)
	}
	// Remove from the l-node down to a single entry (entombs).
	for i := uint64(0); i < 49; i++ {
		if _, removed := c.Remove(i); !removed {
			t.Fatalf("collision Remove(%d) failed", i)
		}
	}
	v, found := c.Lookup(49)
	if !found || v != "49" {
		t.Fatalf("last collision survivor = %q,%v", v, found)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestPartialCollisionsNest(t *testing.T) {
	// Hash preserving only high bits forces deep nesting before divergence.
	c := New[uint64, uint64](func(k uint64) uint64 { return k << 55 })
	for i := uint64(0); i < 128; i++ {
		c.Insert(i, i)
	}
	for i := uint64(0); i < 128; i++ {
		v, found := c.Lookup(i)
		if !found || v != i {
			t.Fatalf("nested Lookup(%d) = %d,%v", i, v, found)
		}
	}
	for i := uint64(0); i < 128; i++ {
		if _, removed := c.Remove(i); !removed {
			t.Fatalf("nested Remove(%d) failed", i)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	c := newU64()
	for i := uint64(0); i < 100; i++ {
		c.Insert(i, i)
	}
	snap := c.ReadOnlySnapshot()
	// Mutate the original: overwrites, inserts, removes.
	for i := uint64(0); i < 100; i++ {
		c.Insert(i, i+1000)
	}
	for i := uint64(100); i < 200; i++ {
		c.Insert(i, i)
	}
	for i := uint64(0); i < 50; i++ {
		c.Remove(i)
	}
	// The snapshot still sees the original state.
	for i := uint64(0); i < 100; i++ {
		v, found := snap.Lookup(i)
		if !found || v != i {
			t.Fatalf("snapshot Lookup(%d) = %d,%v; want %d,true", i, v, found, i)
		}
	}
	if _, found := snap.Lookup(150); found {
		t.Fatal("snapshot sees a key inserted after it was taken")
	}
	if snap.Len() != 100 {
		t.Fatalf("snapshot Len = %d, want 100", snap.Len())
	}
	// The live trie sees the new state.
	if v, _ := c.Lookup(60); v != 1060 {
		t.Fatalf("live Lookup(60) = %d, want 1060", v)
	}
	if _, found := c.Lookup(10); found {
		t.Fatal("live trie still contains a removed key")
	}
}

func TestWritableSnapshotDiverges(t *testing.T) {
	c := newU64()
	for i := uint64(0); i < 64; i++ {
		c.Insert(i, i)
	}
	snap := c.Snapshot()
	snap.Insert(999, 999)
	c.Insert(888, 888)
	if _, found := c.Lookup(999); found {
		t.Fatal("write to snapshot leaked into original")
	}
	if _, found := snap.Lookup(888); found {
		t.Fatal("write to original leaked into snapshot")
	}
	// Both keep the common prefix.
	for i := uint64(0); i < 64; i++ {
		if v, found := snap.Lookup(i); !found || v != i {
			t.Fatalf("snapshot lost key %d", i)
		}
	}
}

func TestReadOnlySnapshotPanicsOnWrite(t *testing.T) {
	c := newU64()
	snap := c.ReadOnlySnapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("Insert on read-only snapshot did not panic")
		}
	}()
	snap.Insert(1, 1)
}

func TestSnapshotOfSnapshot(t *testing.T) {
	c := newU64()
	c.Insert(1, 1)
	s1 := c.Snapshot()
	s1.Insert(2, 2)
	s2 := s1.Snapshot()
	s2.Insert(3, 3)
	if _, found := s1.Lookup(3); found {
		t.Fatal("nested snapshot write leaked up")
	}
	if _, found := s2.Lookup(2); !found {
		t.Fatal("nested snapshot lost parent state")
	}
	ro := s2.ReadOnlySnapshot()
	if ro.ReadOnlySnapshot() != ro {
		t.Fatal("read-only snapshot of a read-only snapshot should be itself")
	}
}

func TestClear(t *testing.T) {
	c := newU64()
	for i := uint64(0); i < 100; i++ {
		c.Insert(i, i)
	}
	snap := c.ReadOnlySnapshot()
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	if snap.Len() != 100 {
		t.Fatalf("snapshot disturbed by Clear: Len = %d", snap.Len())
	}
	c.Insert(5, 50) // trie usable after Clear
	if v, _ := c.Lookup(5); v != 50 {
		t.Fatal("trie unusable after Clear")
	}
}

func TestIterateEarlyStop(t *testing.T) {
	c := newU64()
	for i := uint64(0); i < 100; i++ {
		c.Insert(i, i)
	}
	n := 0
	c.Iterate(func(uint64, uint64) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestIterateSeesAllBindings(t *testing.T) {
	c := newU64()
	want := map[uint64]uint64{}
	for i := uint64(0); i < 777; i++ {
		c.Insert(i, i*3)
		want[i] = i * 3
	}
	got := map[uint64]uint64{}
	c.Iterate(func(k, v uint64) bool { got[k] = v; return true })
	if len(got) != len(want) {
		t.Fatalf("Iterate visited %d bindings, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Iterate got[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestStringKeys(t *testing.T) {
	hasher := func(s string) uint64 {
		h := uint64(14695981039346656037)
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		return h
	}
	c := New[string, int](hasher)
	words := []string{"join", "filter", "scan", "project", "aggregate", ""}
	for i, w := range words {
		c.Insert(w, i)
	}
	for i, w := range words {
		if v, found := c.Lookup(w); !found || v != i {
			t.Fatalf("Lookup(%q) = %d,%v", w, v, found)
		}
	}
}

// TestQuickAgainstMap drives random operation sequences and compares the
// trie against a reference map, including across snapshots.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newU64()
		ref := map[uint64]uint64{}
		for _, op := range ops {
			k := uint64(op % 97) // small key space to exercise collisions/overwrites
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Uint64()
				c.Insert(k, v)
				ref[k] = v
			case 2:
				gotV, gotOK := c.Lookup(k)
				wantV, wantOK := ref[k]
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					return false
				}
			case 3:
				gotV, gotOK := c.Remove(k)
				wantV, wantOK := ref[k]
				delete(ref, k)
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					return false
				}
			}
		}
		if c.Len() != len(ref) {
			return false
		}
		snap := c.ReadOnlySnapshot()
		for k, v := range ref {
			if got, ok := snap.Lookup(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentInsertLookup(t *testing.T) {
	c := newU64()
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * perG)
			for i := uint64(0); i < perG; i++ {
				c.Insert(base+i, base+i)
			}
			for i := uint64(0); i < perG; i++ {
				if v, found := c.Lookup(base + i); !found || v != base+i {
					t.Errorf("goroutine %d lost key %d", g, base+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got != goroutines*perG {
		t.Fatalf("Len = %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	c := newU64()
	const keys = 256
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers insert/remove on a shared key space.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				k := uint64(rng.Intn(keys))
				if rng.Intn(2) == 0 {
					c.Insert(k, k*2)
				} else {
					c.Remove(k)
				}
			}
		}(int64(g))
	}
	// Readers check the invariant: any observed value is consistent.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := uint64(0); k < keys; k++ {
					if v, found := c.Lookup(k); found && v != k*2 {
						t.Errorf("Lookup(%d) observed torn value %d", k, v)
						return
					}
				}
			}
		}()
	}
	// Snapshotters take consistent snapshots under fire.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				snap := c.ReadOnlySnapshot()
				n1 := snap.Len()
				n2 := snap.Len()
				if n1 != n2 {
					t.Errorf("snapshot size changed between reads: %d then %d", n1, n2)
					return
				}
			}
		}()
	}
	// Stop the readers, then wait for everyone.
	close(stop)
	wg.Wait()
}

func TestConcurrentSnapshotConsistencyUnderInserts(t *testing.T) {
	c := newU64()
	for i := uint64(0); i < 1000; i++ {
		c.Insert(i, i)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(1000); i < 4000; i++ {
			c.Insert(i, i)
		}
	}()
	errs := make(chan error, 64)
	go func() {
		defer wg.Done()
		for j := 0; j < 40; j++ {
			snap := c.ReadOnlySnapshot()
			// Original 1000 keys must always be visible and correct.
			for i := uint64(0); i < 1000; i++ {
				if v, found := snap.Lookup(i); !found || v != i {
					errs <- fmt.Errorf("snapshot %d lost key %d", j, i)
					return
				}
			}
			// The snapshot size must be frozen.
			if a, b := snap.Len(), snap.Len(); a != b {
				errs <- fmt.Errorf("snapshot %d size moved: %d -> %d", j, a, b)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
