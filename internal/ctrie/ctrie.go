// Package ctrie implements a concurrent hash trie (Ctrie) after
// Prokopec, Bronson, Bagwell and Odersky, "Concurrent Tries with Efficient
// Non-blocking Snapshots" (PPoPP 2012) — the index data structure the
// Indexed DataFrame embeds in every partition.
//
// The trie is lock-free: all mutations go through single-word CAS
// instructions structured as GCAS (generation-compare-and-swap) on the
// I-node main pointers, and snapshots swap the root via an RDCSS
// (restricted double-compare single-swap). Snapshots are O(1) and lazy:
// the snapshot shares structure with the live trie, and subsequent writers
// copy paths whose generation stamp is stale.
//
// The Indexed DataFrame stores, per partition, a Ctrie keyed by the indexed
// column value whose payload is the packed 64-bit pointer to the latest row
// appended with that key.
package ctrie

import (
	"math/bits"
	"sync/atomic"
)

// w is the number of hash bits consumed per trie level.
const w = 5

// hashBits is the width of the hash in bits.
const hashBits = 64

// gen is a generation stamp; identity (pointer equality) is all that
// matters.
type gen struct{ _ int8 }

// branch is either *iNode or *sNode.
type branch[K comparable, V any] interface{ isBranch() }

// sNode is a singleton leaf holding one key/value binding. Immutable.
type sNode[K comparable, V any] struct {
	hash uint64
	key  K
	val  V
}

func (*sNode[K, V]) isBranch() {}

// mainNode is the value an iNode points at: exactly one of cn / tn / ln is
// set, or failed for the GCAS failure marker. prev is the GCAS bookkeeping
// field.
type mainNode[K comparable, V any] struct {
	cn     *cNode[K, V]
	tn     *sNode[K, V]    // tomb node wrapping the entombed sNode
	ln     []*sNode[K, V]  // list node for full-hash collisions
	failed *mainNode[K, V] // non-nil marks a failed GCAS (wraps previous main)
	prev   atomic.Pointer[mainNode[K, V]]
}

// cNode is a branching node with a 32-bit bitmap and a dense array of
// branches. Immutable; updates copy.
type cNode[K comparable, V any] struct {
	bitmap uint32
	array  []branch[K, V]
	gen    *gen
}

// iNode is the mutable indirection node; its main pointer is updated with
// GCAS.
type iNode[K comparable, V any] struct {
	main atomic.Pointer[mainNode[K, V]]
	gen  *gen
}

func (*iNode[K, V]) isBranch() {}

// rdcssDescriptor is installed in the root while a snapshot root-swap is in
// flight.
type rdcssDescriptor[K comparable, V any] struct {
	old       *iNode[K, V]
	expected  *mainNode[K, V]
	nv        *iNode[K, V]
	committed atomic.Bool
}

// rootBox is what the root pointer holds: either a live iNode or an
// in-flight RDCSS descriptor.
type rootBox[K comparable, V any] struct {
	in   *iNode[K, V]
	desc *rdcssDescriptor[K, V]
}

// Ctrie is a concurrent, snapshottable hash trie map from K to V.
// All methods are safe for concurrent use. The zero value is not usable;
// construct with New.
type Ctrie[K comparable, V any] struct {
	root     atomic.Pointer[rootBox[K, V]]
	hasher   func(K) uint64
	readOnly bool
}

// New returns an empty Ctrie that hashes keys with hasher. The hasher must
// be deterministic and should distribute well across all 64 bits.
func New[K comparable, V any](hasher func(K) uint64) *Ctrie[K, V] {
	c := &Ctrie[K, V]{hasher: hasher}
	g := &gen{}
	in := &iNode[K, V]{gen: g}
	in.main.Store(&mainNode[K, V]{cn: &cNode[K, V]{gen: g}})
	c.root.Store(&rootBox[K, V]{in: in})
	return c
}

// ReadOnly reports whether the trie is a read-only snapshot.
func (c *Ctrie[K, V]) ReadOnly() bool { return c.readOnly }

// ---------------------------------------------------------------------------
// RDCSS root access

func (c *Ctrie[K, V]) rdcssReadRoot(abort bool) *iNode[K, V] {
	r := c.root.Load()
	if r.desc != nil {
		return c.rdcssComplete(abort)
	}
	return r.in
}

func (c *Ctrie[K, V]) rdcssComplete(abort bool) *iNode[K, V] {
	for {
		r := c.root.Load()
		if r.desc == nil {
			return r.in
		}
		d := r.desc
		if abort {
			if c.root.CompareAndSwap(r, &rootBox[K, V]{in: d.old}) {
				return d.old
			}
			continue
		}
		oldMain := c.gcasRead(d.old)
		if oldMain == d.expected {
			if c.root.CompareAndSwap(r, &rootBox[K, V]{in: d.nv}) {
				d.committed.Store(true)
				return d.nv
			}
			continue
		}
		if c.root.CompareAndSwap(r, &rootBox[K, V]{in: d.old}) {
			return d.old
		}
	}
}

func (c *Ctrie[K, V]) rdcssRoot(old *iNode[K, V], expected *mainNode[K, V], nv *iNode[K, V]) bool {
	d := &rdcssDescriptor[K, V]{old: old, expected: expected, nv: nv}
	r := c.root.Load()
	if r.desc == nil && r.in == old {
		if c.root.CompareAndSwap(r, &rootBox[K, V]{desc: d}) {
			c.rdcssComplete(false)
			return d.committed.Load()
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// GCAS

// gcas publishes n as the new main of in, provided in's generation is still
// current with respect to the root. Returns false when the caller must
// restart from the root.
func (c *Ctrie[K, V]) gcas(in *iNode[K, V], old, n *mainNode[K, V]) bool {
	n.prev.Store(old)
	if in.main.CompareAndSwap(old, n) {
		c.gcasComplete(in, n)
		return n.prev.Load() == nil
	}
	return false
}

// gcasRead returns in's committed main node.
func (c *Ctrie[K, V]) gcasRead(in *iNode[K, V]) *mainNode[K, V] {
	m := in.main.Load()
	if m.prev.Load() == nil {
		return m
	}
	return c.gcasComplete(in, m)
}

func (c *Ctrie[K, V]) gcasComplete(in *iNode[K, V], m *mainNode[K, V]) *mainNode[K, V] {
	for {
		if m == nil {
			return nil
		}
		prev := m.prev.Load()
		if prev == nil {
			return m
		}
		root := c.rdcssReadRoot(true)
		if prev.failed != nil {
			// A failed GCAS: roll in.main back to the previous value.
			if in.main.CompareAndSwap(m, prev.failed) {
				return prev.failed
			}
			m = in.main.Load()
			continue
		}
		if root.gen == in.gen && !c.readOnly {
			// Commit.
			if m.prev.CompareAndSwap(prev, nil) {
				return m
			}
			continue
		}
		// Generation changed under us (a snapshot happened): abort.
		m.prev.CompareAndSwap(prev, &mainNode[K, V]{failed: prev})
		m = in.main.Load()
	}
}

// ---------------------------------------------------------------------------
// cNode helpers (all pure)

func flagPos(hash uint64, lev uint, bmp uint32) (flag uint32, pos int) {
	idx := (hash >> lev) & (1<<w - 1)
	flag = uint32(1) << idx
	pos = bits.OnesCount32(bmp & (flag - 1))
	return flag, pos
}

func (cn *cNode[K, V]) insertedAt(pos int, flag uint32, b branch[K, V], g *gen) *cNode[K, V] {
	arr := make([]branch[K, V], len(cn.array)+1)
	copy(arr, cn.array[:pos])
	arr[pos] = b
	copy(arr[pos+1:], cn.array[pos:])
	return &cNode[K, V]{bitmap: cn.bitmap | flag, array: arr, gen: g}
}

func (cn *cNode[K, V]) updatedAt(pos int, b branch[K, V], g *gen) *cNode[K, V] {
	arr := make([]branch[K, V], len(cn.array))
	copy(arr, cn.array)
	arr[pos] = b
	return &cNode[K, V]{bitmap: cn.bitmap, array: arr, gen: g}
}

func (cn *cNode[K, V]) removedAt(pos int, flag uint32, g *gen) *cNode[K, V] {
	arr := make([]branch[K, V], len(cn.array)-1)
	copy(arr, cn.array[:pos])
	copy(arr[pos:], cn.array[pos+1:])
	return &cNode[K, V]{bitmap: cn.bitmap &^ flag, array: arr, gen: g}
}

// renewed copies the cNode, refreshing every child iNode to generation g.
func (cn *cNode[K, V]) renewed(g *gen, c *Ctrie[K, V]) *cNode[K, V] {
	arr := make([]branch[K, V], len(cn.array))
	for i, b := range cn.array {
		if in, ok := b.(*iNode[K, V]); ok {
			arr[i] = in.copyToGen(g, c)
		} else {
			arr[i] = b
		}
	}
	return &cNode[K, V]{bitmap: cn.bitmap, array: arr, gen: g}
}

func (in *iNode[K, V]) copyToGen(g *gen, c *Ctrie[K, V]) *iNode[K, V] {
	nin := &iNode[K, V]{gen: g}
	nin.main.Store(c.gcasRead(in))
	return nin
}

// toContracted turns a single-sNode cNode below the root into a tomb.
func (cn *cNode[K, V]) toContracted(lev uint) *mainNode[K, V] {
	if lev > 0 && len(cn.array) == 1 {
		if sn, ok := cn.array[0].(*sNode[K, V]); ok {
			return &mainNode[K, V]{tn: sn}
		}
	}
	return &mainNode[K, V]{cn: cn}
}

// toCompressed resurrects tombed children and contracts.
func (cn *cNode[K, V]) toCompressed(c *Ctrie[K, V], lev uint, g *gen) *mainNode[K, V] {
	arr := make([]branch[K, V], len(cn.array))
	for i, b := range cn.array {
		switch br := b.(type) {
		case *iNode[K, V]:
			m := c.gcasRead(br)
			if m != nil && m.tn != nil {
				arr[i] = m.tn // resurrect
			} else {
				arr[i] = br
			}
		default:
			arr[i] = b
		}
	}
	return (&cNode[K, V]{bitmap: cn.bitmap, array: arr, gen: g}).toContracted(lev)
}

// dual builds the structure separating two sNodes that collide at lev.
func dual[K comparable, V any](x, y *sNode[K, V], lev uint, g *gen) *mainNode[K, V] {
	if lev >= hashBits {
		return &mainNode[K, V]{ln: []*sNode[K, V]{x, y}}
	}
	xidx := (x.hash >> lev) & (1<<w - 1)
	yidx := (y.hash >> lev) & (1<<w - 1)
	bmp := uint32(1)<<xidx | uint32(1)<<yidx
	if xidx == yidx {
		sub := &iNode[K, V]{gen: g}
		sub.main.Store(dual(x, y, lev+w, g))
		return &mainNode[K, V]{cn: &cNode[K, V]{bitmap: bmp, array: []branch[K, V]{sub}, gen: g}}
	}
	var arr []branch[K, V]
	if xidx < yidx {
		arr = []branch[K, V]{x, y}
	} else {
		arr = []branch[K, V]{y, x}
	}
	return &mainNode[K, V]{cn: &cNode[K, V]{bitmap: bmp, array: arr, gen: g}}
}

// ---------------------------------------------------------------------------
// clean / cleanParent

func (c *Ctrie[K, V]) clean(in *iNode[K, V], lev uint) {
	m := c.gcasRead(in)
	if m != nil && m.cn != nil {
		c.gcas(in, m, m.cn.toCompressed(c, lev, in.gen))
	}
}

func (c *Ctrie[K, V]) cleanParent(parent, in *iNode[K, V], hash uint64, lev uint, startgen *gen) {
	for {
		pm := c.gcasRead(parent)
		if pm == nil || pm.cn == nil {
			return
		}
		cn := pm.cn
		flag, pos := flagPos(hash, lev, cn.bitmap)
		if cn.bitmap&flag == 0 {
			return
		}
		sub, ok := cn.array[pos].(*iNode[K, V])
		if !ok || sub != in {
			return
		}
		m := c.gcasRead(in)
		if m != nil && m.tn != nil {
			ncn := cn.updatedAt(pos, m.tn, in.gen).toContracted(lev)
			if !c.gcas(parent, pm, ncn) {
				if c.rdcssReadRoot(false).gen == startgen {
					continue
				}
			}
		}
		return
	}
}

// ---------------------------------------------------------------------------
// Lookup

// Lookup returns the value bound to key and whether it was present.
func (c *Ctrie[K, V]) Lookup(key K) (V, bool) {
	h := c.hasher(key)
	for {
		r := c.rdcssReadRoot(false)
		v, found, ok := c.ilookup(r, h, key, 0, nil, r.gen)
		if ok {
			return v, found
		}
	}
}

func (c *Ctrie[K, V]) ilookup(in *iNode[K, V], hash uint64, key K, lev uint,
	parent *iNode[K, V], startgen *gen) (v V, found, ok bool) {
	var zero V
	m := c.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := flagPos(hash, lev, cn.bitmap)
		if cn.bitmap&flag == 0 {
			return zero, false, true
		}
		switch b := cn.array[pos].(type) {
		case *iNode[K, V]:
			if c.readOnly || startgen == b.gen {
				return c.ilookup(b, hash, key, lev+w, in, startgen)
			}
			if c.gcas(in, m, &mainNode[K, V]{cn: cn.renewed(startgen, c)}) {
				return c.ilookup(in, hash, key, lev, parent, startgen)
			}
			return zero, false, false
		case *sNode[K, V]:
			if b.hash == hash && b.key == key {
				return b.val, true, true
			}
			return zero, false, true
		}
	case m.tn != nil:
		if c.readOnly {
			if m.tn.hash == hash && m.tn.key == key {
				return m.tn.val, true, true
			}
			return zero, false, true
		}
		c.clean(parent, lev-w)
		return zero, false, false
	case m.ln != nil:
		for _, sn := range m.ln {
			if sn.hash == hash && sn.key == key {
				return sn.val, true, true
			}
		}
		return zero, false, true
	}
	return zero, false, true
}

// ---------------------------------------------------------------------------
// Insert

// Insert binds key to val, replacing any existing binding.
func (c *Ctrie[K, V]) Insert(key K, val V) {
	c.Swap(key, val)
}

// Swap binds key to val and returns the previous value, if any.
// Panics on read-only snapshots.
func (c *Ctrie[K, V]) Swap(key K, val V) (prev V, had bool) {
	if c.readOnly {
		panic("ctrie: write on read-only snapshot")
	}
	h := c.hasher(key)
	for {
		r := c.rdcssReadRoot(false)
		p, hd, ok := c.iinsert(r, h, key, val, 0, nil, r.gen)
		if ok {
			return p, hd
		}
	}
}

func (c *Ctrie[K, V]) iinsert(in *iNode[K, V], hash uint64, key K, val V, lev uint,
	parent *iNode[K, V], startgen *gen) (prev V, had, ok bool) {
	var zero V
	m := c.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := flagPos(hash, lev, cn.bitmap)
		if cn.bitmap&flag == 0 {
			rn := cn
			if cn.gen != in.gen {
				rn = cn.renewed(in.gen, c)
			}
			ncn := rn.insertedAt(pos, flag, &sNode[K, V]{hash: hash, key: key, val: val}, in.gen)
			if c.gcas(in, m, &mainNode[K, V]{cn: ncn}) {
				return zero, false, true
			}
			return zero, false, false
		}
		switch b := cn.array[pos].(type) {
		case *iNode[K, V]:
			if startgen == b.gen {
				return c.iinsert(b, hash, key, val, lev+w, in, startgen)
			}
			if c.gcas(in, m, &mainNode[K, V]{cn: cn.renewed(startgen, c)}) {
				return c.iinsert(in, hash, key, val, lev, parent, startgen)
			}
			return zero, false, false
		case *sNode[K, V]:
			if b.hash == hash && b.key == key {
				ncn := cn.updatedAt(pos, &sNode[K, V]{hash: hash, key: key, val: val}, in.gen)
				if c.gcas(in, m, &mainNode[K, V]{cn: ncn}) {
					return b.val, true, true
				}
				return zero, false, false
			}
			rn := cn
			if cn.gen != in.gen {
				rn = cn.renewed(in.gen, c)
			}
			nsn := &sNode[K, V]{hash: hash, key: key, val: val}
			nin := &iNode[K, V]{gen: in.gen}
			nin.main.Store(dual(b, nsn, lev+w, in.gen))
			ncn := rn.updatedAt(pos, nin, in.gen)
			if c.gcas(in, m, &mainNode[K, V]{cn: ncn}) {
				return zero, false, true
			}
			return zero, false, false
		}
	case m.tn != nil:
		c.clean(parent, lev-w)
		return zero, false, false
	case m.ln != nil:
		nl := make([]*sNode[K, V], 0, len(m.ln)+1)
		var old *sNode[K, V]
		for _, sn := range m.ln {
			if sn.hash == hash && sn.key == key {
				old = sn
				continue
			}
			nl = append(nl, sn)
		}
		nl = append(nl, &sNode[K, V]{hash: hash, key: key, val: val})
		if c.gcas(in, m, &mainNode[K, V]{ln: nl}) {
			if old != nil {
				return old.val, true, true
			}
			return zero, false, true
		}
		return zero, false, false
	}
	return zero, false, true
}

// ---------------------------------------------------------------------------
// Remove

// Remove deletes key's binding and returns the removed value, if any.
// Panics on read-only snapshots.
func (c *Ctrie[K, V]) Remove(key K) (V, bool) {
	if c.readOnly {
		panic("ctrie: write on read-only snapshot")
	}
	h := c.hasher(key)
	for {
		r := c.rdcssReadRoot(false)
		v, removed, ok := c.iremove(r, h, key, 0, nil, r.gen)
		if ok {
			return v, removed
		}
	}
}

func (c *Ctrie[K, V]) iremove(in *iNode[K, V], hash uint64, key K, lev uint,
	parent *iNode[K, V], startgen *gen) (v V, removed, ok bool) {
	var zero V
	m := c.gcasRead(in)
	switch {
	case m.cn != nil:
		cn := m.cn
		flag, pos := flagPos(hash, lev, cn.bitmap)
		if cn.bitmap&flag == 0 {
			return zero, false, true
		}
		var res V
		var hit bool
		switch b := cn.array[pos].(type) {
		case *iNode[K, V]:
			if startgen == b.gen {
				var o bool
				res, hit, o = c.iremove(b, hash, key, lev+w, in, startgen)
				if !o {
					return zero, false, false
				}
			} else {
				if c.gcas(in, m, &mainNode[K, V]{cn: cn.renewed(startgen, c)}) {
					return c.iremove(in, hash, key, lev, parent, startgen)
				}
				return zero, false, false
			}
		case *sNode[K, V]:
			if b.hash != hash || b.key != key {
				return zero, false, true
			}
			ncn := cn.removedAt(pos, flag, in.gen).toContracted(lev)
			if !c.gcas(in, m, ncn) {
				return zero, false, false
			}
			res, hit = b.val, true
		}
		if !hit {
			return zero, false, true
		}
		if parent != nil {
			nm := c.gcasRead(in)
			if nm != nil && nm.tn != nil {
				c.cleanParent(parent, in, hash, lev-w, startgen)
			}
		}
		return res, true, true
	case m.tn != nil:
		c.clean(parent, lev-w)
		return zero, false, false
	case m.ln != nil:
		nl := make([]*sNode[K, V], 0, len(m.ln))
		var old *sNode[K, V]
		for _, sn := range m.ln {
			if sn.hash == hash && sn.key == key {
				old = sn
				continue
			}
			nl = append(nl, sn)
		}
		if old == nil {
			return zero, false, true
		}
		var nmn *mainNode[K, V]
		if len(nl) == 1 {
			nmn = &mainNode[K, V]{tn: nl[0]}
		} else {
			nmn = &mainNode[K, V]{ln: nl}
		}
		if c.gcas(in, m, nmn) {
			return old.val, true, true
		}
		return zero, false, false
	}
	return zero, false, true
}

// ---------------------------------------------------------------------------
// Snapshots

// Snapshot returns a writable snapshot of the trie in O(1). The snapshot
// and the original share structure; both lazily copy paths on write.
func (c *Ctrie[K, V]) Snapshot() *Ctrie[K, V] {
	for {
		r := c.rdcssReadRoot(false)
		expmain := c.gcasRead(r)
		if c.rdcssRoot(r, expmain, r.copyToGen(&gen{}, c)) {
			snap := &Ctrie[K, V]{hasher: c.hasher}
			snap.root.Store(&rootBox[K, V]{in: r.copyToGen(&gen{}, c)})
			return snap
		}
	}
}

// ReadOnlySnapshot returns a read-only snapshot in O(1). Reads on it never
// allocate or help writers; writes panic. This is what Indexed DataFrame
// queries pin for multi-version reads.
func (c *Ctrie[K, V]) ReadOnlySnapshot() *Ctrie[K, V] {
	if c.readOnly {
		return c
	}
	for {
		r := c.rdcssReadRoot(false)
		expmain := c.gcasRead(r)
		if c.rdcssRoot(r, expmain, r.copyToGen(&gen{}, c)) {
			snap := &Ctrie[K, V]{hasher: c.hasher, readOnly: true}
			snap.root.Store(&rootBox[K, V]{in: r})
			return snap
		}
	}
}

// Clear removes all bindings (atomically swings the root to an empty trie).
func (c *Ctrie[K, V]) Clear() {
	if c.readOnly {
		panic("ctrie: write on read-only snapshot")
	}
	for {
		r := c.rdcssReadRoot(false)
		expmain := c.gcasRead(r)
		g := &gen{}
		nin := &iNode[K, V]{gen: g}
		nin.main.Store(&mainNode[K, V]{cn: &cNode[K, V]{gen: g}})
		if c.rdcssRoot(r, expmain, nin) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Iteration / size

// Iterate calls fn for every binding in a consistent snapshot of the trie,
// stopping early when fn returns false. Iteration order is unspecified.
func (c *Ctrie[K, V]) Iterate(fn func(K, V) bool) {
	snap := c
	if !c.readOnly {
		snap = c.ReadOnlySnapshot()
	}
	r := snap.rdcssReadRoot(false)
	snap.iterate(r, fn)
}

func (c *Ctrie[K, V]) iterate(in *iNode[K, V], fn func(K, V) bool) bool {
	m := c.gcasRead(in)
	switch {
	case m.cn != nil:
		for _, b := range m.cn.array {
			switch br := b.(type) {
			case *sNode[K, V]:
				if !fn(br.key, br.val) {
					return false
				}
			case *iNode[K, V]:
				if !c.iterate(br, fn) {
					return false
				}
			}
		}
	case m.tn != nil:
		return fn(m.tn.key, m.tn.val)
	case m.ln != nil:
		for _, sn := range m.ln {
			if !fn(sn.key, sn.val) {
				return false
			}
		}
	}
	return true
}

// Len counts the bindings in a consistent snapshot. O(n).
func (c *Ctrie[K, V]) Len() int {
	n := 0
	c.Iterate(func(K, V) bool { n++; return true })
	return n
}
