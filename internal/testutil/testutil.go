// Package testutil holds helpers shared by the engine's test suites.
package testutil

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// CheckGoroutines registers a cleanup that fails the test when it ends with
// more live goroutines than it started with — the cursor, shuffle and
// ingest suites use it to pin the invariant that closing a stream (cleanly,
// truncated, cancelled, or killed by an injected fault) reaps its worker
// goroutines. Teardown is asynchronous (workers notice cancellation at
// their next channel operation), so the check polls briefly before
// declaring a leak, and dumps every goroutine stack when it does.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		n := runtime.NumGoroutine()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n <= base {
			return
		}
		var buf bytes.Buffer
		_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Errorf("goroutine leak: %d at test start, %d at end\n%s", base, n, buf.String())
	})
}
