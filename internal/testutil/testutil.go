// Package testutil holds helpers shared by the engine's test suites.
package testutil

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// CheckGoroutines registers a cleanup that fails the test when it ends with
// more live goroutines than it started with — the cursor, shuffle and
// ingest suites use it to pin the invariant that closing a stream (cleanly,
// truncated, cancelled, or killed by an injected fault) reaps its worker
// goroutines. Teardown is asynchronous (workers notice cancellation at
// their next channel operation), so the check polls briefly before
// declaring a leak, and dumps every goroutine stack when it does.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		n := runtime.NumGoroutine()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n <= base {
			return
		}
		var buf bytes.Buffer
		_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Errorf("goroutine leak: %d at test start, %d at end\n%s", base, n, buf.String())
	})
}

// numFDs counts the process's open file descriptors via /proc/self/fd.
// Returns -1 where that isn't available (non-Linux).
func numFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// CheckFDs registers a cleanup that fails the test when it ends holding
// more open file descriptors than it started with — the spill suites use
// it to pin that run readers and writers close their files on every exit
// path (EOF, early cursor close, cancellation, injected fault). File
// closing can trail query teardown slightly, so the check polls. Skipped
// silently where /proc/self/fd is unavailable.
func CheckFDs(t testing.TB) {
	t.Helper()
	base := numFDs()
	if base < 0 {
		return
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		n := numFDs()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = numFDs()
		}
		if n > base {
			t.Errorf("fd leak: %d open at test start, %d at end", base, n)
		}
	})
}

// CheckNoFiles registers a cleanup that fails the test when dir still
// contains any file at the end — the spill suites point it at the spill
// directory to pin that every run file is removed when its query closes.
// Removal can trail cursor close (tracker closers run during shutdown),
// so the check polls before declaring a leak.
func CheckNoFiles(t testing.TB, dir string) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leftover []string
		for {
			leftover = leftover[:0]
			_ = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
				if err == nil && info != nil && !info.IsDir() {
					leftover = append(leftover, path)
				}
				return nil
			})
			if len(leftover) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if len(leftover) > 0 {
			t.Errorf("leaked files under %s: %v", dir, leftover)
		}
	})
}
