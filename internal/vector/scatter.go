package vector

import (
	"indexeddf/internal/columnar"
	"indexeddf/internal/sqltypes"
)

// This file is the map side of the columnar exchange: batches are hashed
// on their key columns, routed to per-reducer BatchBuilders column-wise,
// and sealed into dense batches the shuffle service stores as-is — no row
// materialization anywhere between a vectorized producer and a vectorized
// consumer of the shuffle.

// BatchBuilder accumulates rows into column-major batches, sealing each
// batch once it reaches the target size. Appends are column-wise gathers
// (typed lane copies plus null propagation), not per-value boxing.
type BatchBuilder struct {
	schema *sqltypes.Schema
	target int
	cur    *Batch
	sealed []*Batch
	// identity is the reusable 0..n-1 selection Append uses to take whole
	// batches.
	identity []int
}

// NewBatchBuilder returns a builder producing batches of up to target rows
// (DefaultBatchSize when target <= 0).
func NewBatchBuilder(schema *sqltypes.Schema, target int) *BatchBuilder {
	if target <= 0 {
		target = DefaultBatchSize
	}
	return &BatchBuilder{schema: schema, target: target}
}

// AppendSelected appends the rows of src selected by sel (in order),
// sealing full batches as it goes. sel may be any length; it is consumed
// in target-size segments.
func (b *BatchBuilder) AppendSelected(src *Batch, sel []int) {
	for len(sel) > 0 {
		if b.cur == nil {
			b.cur = NewBatch(b.schema)
		}
		take := b.target - b.cur.Len()
		if take > len(sel) {
			take = len(sel)
		}
		appendGather(b.cur, src, sel[:take])
		sel = sel[take:]
		if b.cur.Len() >= b.target {
			b.sealed = append(b.sealed, b.cur)
			b.cur = nil
		}
	}
}

// Seal flushes the in-progress batch and returns every sealed batch,
// resetting the builder.
func (b *BatchBuilder) Seal() []*Batch {
	if b.cur != nil && b.cur.Len() > 0 {
		b.sealed = append(b.sealed, b.cur)
	}
	b.cur = nil
	out := b.sealed
	b.sealed = nil
	return out
}

// appendGather appends the selected rows of src to dst column-wise. Unlike
// Gather it extends dst instead of overwriting it, preserving rows (and
// null bits) already present.
func appendGather(dst, src *Batch, sel []int) {
	old := dst.Len()
	for c, sc := range src.Cols {
		dc := dst.Cols[c]
		dc.Grow(len(sel))
		switch sc.Type {
		case sqltypes.Float64:
			in, out := sc.Float64s(), dc.Float64s()
			for i, s := range sel {
				out[old+i] = in[s]
			}
		case sqltypes.String:
			in, out := sc.Strings(), dc.Strings()
			for i, s := range sel {
				out[old+i] = in[s]
			}
		default:
			in, out := sc.Int64s(), dc.Int64s()
			for i, s := range sel {
				out[old+i] = in[s]
			}
		}
		if sc.AnyNulls() {
			for i, s := range sel {
				if sc.IsNull(s) {
					dc.SetNull(old + i)
				}
			}
		}
	}
	dst.SetLen(old + len(sel))
}

// HashColumns writes the exchange routing hash of each row's key columns
// into hashes (resized to b.Len()) and returns it. Single-column keys hash
// the value directly; composite keys fold the per-column hashes with
// sqltypes.CombineHash — bit-for-bit the scheme the row-engine
// HashPartitioner uses, so both exchanges produce identical partition
// layouts (the indexed-join co-partitioning depends on this).
func HashColumns(b *Batch, ords []int, hashes []uint64) []uint64 {
	n := b.Len()
	if cap(hashes) < n {
		hashes = make([]uint64, n)
	} else {
		hashes = hashes[:n]
	}
	if len(ords) == 1 {
		hashColumn(b.Cols[ords[0]], hashes, false)
		return hashes
	}
	for i := range hashes {
		hashes[i] = sqltypes.HashSeed
	}
	for _, o := range ords {
		hashColumn(b.Cols[o], hashes, true)
	}
	return hashes
}

// hashColumn hashes one key column lane-wise. With combine false the
// value hash is written directly; with combine true it is folded into the
// running composite hash.
func hashColumn(col *columnar.Vector, hashes []uint64, combine bool) {
	emit := func(i int, h uint64) {
		if combine {
			hashes[i] = sqltypes.CombineHash(hashes[i], h)
		} else {
			hashes[i] = h
		}
	}
	anyNulls := col.AnyNulls()
	switch col.Type {
	case sqltypes.Float64:
		vals := col.Float64s()
		for i, f := range vals {
			if anyNulls && col.IsNull(i) {
				emit(i, sqltypes.HashNull())
				continue
			}
			emit(i, sqltypes.HashFloat64(f))
		}
	case sqltypes.String:
		vals := col.Strings()
		for i, s := range vals {
			if anyNulls && col.IsNull(i) {
				emit(i, sqltypes.HashNull())
				continue
			}
			emit(i, sqltypes.HashString(s))
		}
	default:
		vals := col.Int64s()
		for i, x := range vals {
			if anyNulls && col.IsNull(i) {
				emit(i, sqltypes.HashNull())
				continue
			}
			emit(i, sqltypes.HashInt64(x))
		}
	}
}

// Scatter hash-partitions batches into per-reducer builders: the column
// kernel above routes each row, per-reducer selection vectors are built,
// and each non-empty selection is gathered column-wise into that reducer's
// builder. With no key ordinals every row routes to reducer 0 (the
// single-partition gather exchange).
type Scatter struct {
	ords     []int
	builders []*BatchBuilder
	hashes   []uint64
	sel      [][]int
	identity []int
	salt     uint64
}

// NewScatter builds a scatter over nReduce reducers for batches of schema.
func NewScatter(schema *sqltypes.Schema, ords []int, nReduce int) *Scatter {
	return NewScatterSalted(schema, ords, nReduce, 0)
}

// NewScatterSalted builds a scatter whose routing hash is remixed with a
// salt (sqltypes.RehashSalted) before the modulo. Recursive spill
// fan-outs need this: the rows of one fan-out partition all share
// `h % F`, so re-partitioning them with the same function would put
// everything back in one bucket — each recursion level salts with a
// distinct non-zero value to re-shuffle the hash space. Salt 0 routes
// identically to NewScatter (the exchange).
func NewScatterSalted(schema *sqltypes.Schema, ords []int, nReduce int, salt uint64) *Scatter {
	s := &Scatter{
		ords:     ords,
		builders: make([]*BatchBuilder, nReduce),
		sel:      make([][]int, nReduce),
		salt:     salt,
	}
	for i := range s.builders {
		s.builders[i] = NewBatchBuilder(schema, DefaultBatchSize)
	}
	return s
}

// Add routes every row of b to its reducer's builder.
func (s *Scatter) Add(b *Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	if len(s.ords) == 0 || len(s.builders) == 1 {
		// Single-partition exchange: append the whole batch in order.
		for len(s.identity) < n {
			s.identity = append(s.identity, len(s.identity))
		}
		s.builders[0].AppendSelected(b, s.identity[:n])
		return
	}
	s.hashes = HashColumns(b, s.ords, s.hashes)
	nr := uint64(len(s.builders))
	for r := range s.sel {
		s.sel[r] = s.sel[r][:0]
	}
	if s.salt != 0 {
		for i, h := range s.hashes {
			r := sqltypes.RehashSalted(h, s.salt) % nr
			s.sel[r] = append(s.sel[r], i)
		}
	} else {
		for i, h := range s.hashes {
			r := h % nr
			s.sel[r] = append(s.sel[r], i)
		}
	}
	for r, sel := range s.sel {
		if len(sel) > 0 {
			s.builders[r].AppendSelected(b, sel)
		}
	}
}

// Seal flushes every builder and returns the per-reducer sealed batches.
func (s *Scatter) Seal() [][]*Batch {
	out := make([][]*Batch, len(s.builders))
	for r, b := range s.builders {
		out[r] = b.Seal()
	}
	return out
}
