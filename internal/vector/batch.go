// Package vector implements the batch-at-a-time execution substrate: a
// column-major Batch of ~1024 rows built on the columnar vector
// representation, a BatchIter pull protocol, adapters to and from the
// row-at-a-time sqltypes.RowIter, and the selection-vector application
// kernel filters use.
//
// Batches flowing between operators are dense (no selection vector):
// a filter materializes its survivors by gathering selected positions into
// a reused output batch, so every downstream kernel runs branch-free over
// contiguous rows. Batches returned by BatchIter.Next are owned by the
// producer and may be overwritten by the following Next call; consumers
// must finish with a batch (or copy out of it) before pulling the next.
package vector

import (
	"fmt"

	"indexeddf/internal/columnar"
	"indexeddf/internal/sqltypes"
)

// DefaultBatchSize is the row count per batch. 1024 keeps a batch of a few
// columns inside L2 while amortizing per-batch overheads; it is a multiple
// of 64 so null-bitmap words stay aligned across zero-copy slices.
const DefaultBatchSize = 1024

// Batch is a column-major chunk of rows: equal-length typed vectors
// positionally aligned with a schema.
type Batch struct {
	Schema *sqltypes.Schema
	Cols   []*columnar.Vector
	n      int
}

// NewBatch returns an empty batch for schema.
func NewBatch(schema *sqltypes.Schema) *Batch {
	cols := make([]*columnar.Vector, schema.Len())
	for i, f := range schema.Fields {
		cols[i] = columnar.NewVector(f.Type)
	}
	return &Batch{Schema: schema, Cols: cols}
}

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// SetLen records the row count after columns were written directly
// (kernel-style batch construction).
func (b *Batch) SetLen(n int) { b.n = n }

// MemBytes estimates the batch's resident size for memory accounting.
func (b *Batch) MemBytes() int64 {
	var n int64
	for _, c := range b.Cols {
		n += c.MemoryUsage()
	}
	return n
}

// Clone returns a deep copy of b that the caller owns. Consumers that
// retain batches past the producer's next Next call (join build stores,
// spill-bound buffers) clone out of the reuse contract with this.
func (b *Batch) Clone() *Batch {
	nb := NewBatch(b.Schema)
	sel := make([]int, b.Len())
	for i := range sel {
		sel[i] = i
	}
	Gather(nb, b, sel)
	return nb
}

// Reset empties the batch for reuse, keeping column capacity.
func (b *Batch) Reset() {
	for i, c := range b.Cols {
		c.Reset(b.Schema.Fields[i].Type)
	}
	b.n = 0
}

// AppendRow appends one row (values must match the schema's column types or
// be NULL).
func (b *Batch) AppendRow(row sqltypes.Row) error {
	if len(row) != len(b.Cols) {
		return fmt.Errorf("vector: row arity %d does not match batch arity %d", len(row), len(b.Cols))
	}
	for i, v := range row {
		if err := b.Cols[i].Append(v); err != nil {
			return err
		}
	}
	b.n++
	return nil
}

// Row materializes row i as a freshly allocated Row (it escapes the batch's
// reuse contract, so adapters handing rows to row-at-a-time consumers use
// this).
func (b *Batch) Row(i int) sqltypes.Row {
	row := make(sqltypes.Row, len(b.Cols))
	for c, col := range b.Cols {
		row[c] = col.Get(i)
	}
	return row
}

// RowInto materializes row i into dst (no allocation).
func (b *Batch) RowInto(dst sqltypes.Row, i int) {
	for c, col := range b.Cols {
		dst[c] = col.Get(i)
	}
}

// FromColumnar returns a zero-copy batch over rows [lo, hi) of a cached
// columnar partition, optionally projecting the given column ordinals.
// lo must be 64-aligned (see columnar.Vector.Slice).
func FromColumnar(cb *columnar.Batch, lo, hi int, proj []int, schema *sqltypes.Schema) (*Batch, error) {
	var cols []*columnar.Vector
	if proj == nil {
		cols = make([]*columnar.Vector, len(cb.Columns))
		for i, c := range cb.Columns {
			s, err := c.Slice(lo, hi)
			if err != nil {
				return nil, err
			}
			cols[i] = s
		}
	} else {
		cols = make([]*columnar.Vector, len(proj))
		for i, p := range proj {
			s, err := cb.Columns[p].Slice(lo, hi)
			if err != nil {
				return nil, err
			}
			cols[i] = s
		}
	}
	return &Batch{Schema: schema, Cols: cols, n: hi - lo}, nil
}

// SelectTrue appends to sel the positions of bools that are true (NULL and
// false are dropped, SQL filter semantics) and returns the extended
// selection vector.
func SelectTrue(bools *columnar.Vector, sel []int) []int {
	vals := bools.Int64s()
	if !bools.AnyNulls() {
		for i, v := range vals {
			if v != 0 {
				sel = append(sel, i)
			}
		}
		return sel
	}
	for i, v := range vals {
		if v != 0 && !bools.IsNull(i) {
			sel = append(sel, i)
		}
	}
	return sel
}

// Gather copies the rows of src selected by sel (in order) into dst,
// resizing dst to len(sel) — the selection-vector application kernel.
// dst must share src's column types.
func Gather(dst, src *Batch, sel []int) {
	for c, sc := range src.Cols {
		dc := dst.Cols[c]
		dc.Reset(sc.Type)
		dc.Resize(len(sel))
		switch sc.Type {
		case sqltypes.Float64:
			in, out := sc.Float64s(), dc.Float64s()
			for i, s := range sel {
				out[i] = in[s]
			}
		case sqltypes.String:
			in, out := sc.Strings(), dc.Strings()
			for i, s := range sel {
				out[i] = in[s]
			}
		default:
			in, out := sc.Int64s(), dc.Int64s()
			for i, s := range sel {
				out[i] = in[s]
			}
		}
		if sc.AnyNulls() {
			for i, s := range sel {
				if sc.IsNull(s) {
					dc.SetNull(i)
				}
			}
		}
	}
	dst.n = len(sel)
}
