package vector

import (
	"indexeddf/internal/sqltypes"
)

// BatchIter is the pull protocol of the vectorized engine: Next returns the
// next batch, or nil when exhausted. The returned batch is owned by the
// iterator and may be reused by the following Next call.
type BatchIter interface {
	Next() (*Batch, error)
}

// SliceIter iterates over pre-built batches.
type SliceIter struct {
	batches []*Batch
	pos     int
}

// NewSliceIter returns an iterator over batches.
func NewSliceIter(batches []*Batch) *SliceIter { return &SliceIter{batches: batches} }

// Next implements BatchIter.
func (it *SliceIter) Next() (*Batch, error) {
	for it.pos < len(it.batches) {
		b := it.batches[it.pos]
		it.pos++
		if b.Len() > 0 {
			return b, nil
		}
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// Row adapters — the boundary between batch and row operators.

// RowIter adapts a BatchIter to a sqltypes.RowIter, materializing one row
// per Next. It also exposes the wrapped batch stream so a downstream
// vectorized operator can splice out the adapter pair (see AsBatchIter)
// and keep the data columnar end to end.
type RowIter struct {
	in      BatchIter
	cur     *Batch
	pos     int
	started bool
}

// NewRowIter adapts batches to rows.
func NewRowIter(in BatchIter) *RowIter { return &RowIter{in: in} }

// Next implements sqltypes.RowIter.
func (it *RowIter) Next() (sqltypes.Row, error) {
	it.started = true
	for {
		if it.cur != nil && it.pos < it.cur.Len() {
			r := it.cur.Row(it.pos)
			it.pos++
			return r, nil
		}
		b, err := it.in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		it.cur, it.pos = b, 0
	}
}

// batches surrenders the inner batch stream. Only legal before the first
// Next call — afterwards rows may already have been consumed from a batch.
func (it *RowIter) batches() (BatchIter, bool) {
	if it.started {
		return nil, false
	}
	return it.in, true
}

// batchingIter chunks a RowIter into dense batches of up to size rows,
// reusing one output batch.
type batchingIter struct {
	in   sqltypes.RowIter
	out  *Batch
	size int
	done bool
}

// Next implements BatchIter.
func (it *batchingIter) Next() (*Batch, error) {
	if it.done {
		return nil, nil
	}
	it.out.Reset()
	for it.out.Len() < it.size {
		row, err := it.in.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			it.done = true
			break
		}
		if err := it.out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	if it.out.Len() == 0 {
		return nil, nil
	}
	return it.out, nil
}

// AsBatchIter views a row iterator as a batch iterator. When in is a fresh
// RowIter adapter the wrapped batch stream is spliced out directly (no
// re-batching); otherwise rows are gathered into reused batches of up to
// size rows, typed by schema.
func AsBatchIter(in sqltypes.RowIter, schema *sqltypes.Schema, size int) BatchIter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	if ra, ok := in.(*RowIter); ok {
		if bi, ok := ra.batches(); ok {
			return bi
		}
	}
	return &batchingIter{in: in, out: NewBatch(schema), size: size}
}

// Drain reads a batch iterator to completion, materializing all rows.
func Drain(it BatchIter) ([]sqltypes.Row, error) {
	var out []sqltypes.Row
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
	}
}
