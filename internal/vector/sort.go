package vector

import (
	"sort"

	"indexeddf/internal/columnar"
	"indexeddf/internal/sqltypes"
)

// This file is the batch-native sort kernel set: sort keys are extracted
// column-wise into flat typed lanes (KeyLanes), a permutation over those
// lanes is sorted without boxing a single value (SortIndices), and the
// permutation is applied with a multi-batch gather (GatherInto). Sorted
// runs are combined by a k-way galloping merge (MergeSorted), and bounded
// ORDER BY ... LIMIT n plans use the TopN collector, which keeps only the
// current best n rows per partition instead of materializing the input.
//
// All comparisons mirror sqltypes.Compare exactly — NULL sorts first
// ascending (and therefore last descending, since DESC flips the whole
// comparison, like the row engine's SortExec) — so the vectorized and
// row sort paths order identically, ties included.

// KeyLanes holds extracted sort keys as flat typed lanes, one lane per
// sort term, all lanes equal length. Appends copy out of evaluated key
// vectors, so the source batches may be reused by their producer.
type KeyLanes struct {
	lanes []keyLane
	n     int
}

type keyLane struct {
	t       sqltypes.Type
	i64     []int64
	f64     []float64
	str     []string
	null    []bool
	anyNull bool

	// Gather scratch, swapped with the live slices per compaction.
	spareI64  []int64
	spareF64  []float64
	spareStr  []string
	spareNull []bool
}

// NewKeyLanes returns empty lanes for the given key types (Bool, Int32,
// Int64 and Timestamp share the int lane, matching columnar.Vector).
func NewKeyLanes(types []sqltypes.Type) *KeyLanes {
	k := &KeyLanes{lanes: make([]keyLane, len(types))}
	for i, t := range types {
		k.lanes[i].t = t
	}
	return k
}

// Len returns the number of key rows appended so far.
func (k *KeyLanes) Len() int { return k.n }

// AppendCols appends one batch's evaluated key vectors (cols[i] feeds lane
// i; all vectors must share one length).
func (k *KeyLanes) AppendCols(cols []*columnar.Vector) {
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	for li := range k.lanes {
		l := &k.lanes[li]
		v := cols[li]
		switch l.t {
		case sqltypes.Float64:
			l.f64 = append(l.f64, v.Float64s()...)
		case sqltypes.String:
			l.str = append(l.str, v.Strings()...)
		default:
			l.i64 = append(l.i64, v.Int64s()...)
		}
		if v.AnyNulls() {
			for len(l.null) < k.n {
				l.null = append(l.null, false)
			}
			for i := 0; i < n; i++ {
				isNull := v.IsNull(i)
				l.null = append(l.null, isNull)
				l.anyNull = l.anyNull || isNull
			}
		} else if l.anyNull {
			for i := 0; i < n; i++ {
				l.null = append(l.null, false)
			}
		}
	}
	k.n += n
}

// AppendRow appends row i of the evaluated key vectors as one key row.
func (k *KeyLanes) AppendRow(cols []*columnar.Vector, i int) {
	for li := range k.lanes {
		l := &k.lanes[li]
		v := cols[li]
		switch l.t {
		case sqltypes.Float64:
			l.f64 = append(l.f64, v.Float64s()[i])
		case sqltypes.String:
			l.str = append(l.str, v.Strings()[i])
		default:
			l.i64 = append(l.i64, v.Int64s()[i])
		}
		if isNull := v.AnyNulls() && v.IsNull(i); isNull || l.anyNull {
			for len(l.null) < k.n {
				l.null = append(l.null, false)
			}
			l.null = append(l.null, isNull)
			l.anyNull = l.anyNull || isNull
		}
	}
	k.n++
}

// isNull reports whether lane li's key at row i is NULL.
func (l *keyLane) isNull(i int) bool {
	return l.anyNull && i < len(l.null) && l.null[i]
}

// Gather compacts the lanes to the given rows. sel is in arbitrary order
// (the TopN collector passes its heap), so the gather goes through spare
// buffers — an in-place walk would read slots an earlier iteration
// already overwrote whenever sel[i] < i.
func (k *KeyLanes) Gather(sel []int) {
	for li := range k.lanes {
		l := &k.lanes[li]
		switch l.t {
		case sqltypes.Float64:
			if cap(l.spareF64) < len(sel) {
				l.spareF64 = make([]float64, len(sel))
			}
			out := l.spareF64[:len(sel)]
			for i, s := range sel {
				out[i] = l.f64[s]
			}
			l.f64, l.spareF64 = out, l.f64[:0]
		case sqltypes.String:
			if cap(l.spareStr) < len(sel) {
				l.spareStr = make([]string, len(sel))
			}
			out := l.spareStr[:len(sel)]
			for i, s := range sel {
				out[i] = l.str[s]
			}
			l.str, l.spareStr = out, l.str[:0]
		default:
			if cap(l.spareI64) < len(sel) {
				l.spareI64 = make([]int64, len(sel))
			}
			out := l.spareI64[:len(sel)]
			for i, s := range sel {
				out[i] = l.i64[s]
			}
			l.i64, l.spareI64 = out, l.i64[:0]
		}
		if l.anyNull {
			if cap(l.spareNull) < len(sel) {
				l.spareNull = make([]bool, len(sel))
			}
			out := l.spareNull[:len(sel)]
			any := false
			for i, s := range sel {
				nv := l.isNull(s)
				out[i] = nv
				any = any || nv
			}
			l.null, l.spareNull = out, l.null[:0]
			l.anyNull = any
		}
	}
	k.n = len(sel)
}

// Compare orders key rows a and b with sqltypes.Compare semantics per
// lane, flipping lanes marked desc (NULL first ascending, last
// descending). It is the switch-per-call comparator heap operations use;
// the index sort builds typed closures instead (Comparators).
func (k *KeyLanes) Compare(a, b int, desc []bool) int {
	for li := range k.lanes {
		l := &k.lanes[li]
		c := l.compare(a, b)
		if c == 0 {
			continue
		}
		if desc[li] {
			return -c
		}
		return c
	}
	return 0
}

func (l *keyLane) compare(a, b int) int {
	an, bn := l.isNull(a), l.isNull(b)
	if an || bn {
		return compareNulls(an, bn)
	}
	switch l.t {
	case sqltypes.Float64:
		return compareFloat64(l.f64[a], l.f64[b])
	case sqltypes.String:
		return compareString(l.str[a], l.str[b])
	default:
		return compareInt64(l.i64[a], l.i64[b])
	}
}

func compareNulls(an, bn bool) int {
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	default:
		return 1
	}
}

func compareInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Comparators builds one typed compare closure per lane (desc applied),
// capturing the lane slices directly so the sort's hot loop runs without
// per-comparison type switches. The closures are invalidated by later
// appends or Gather calls; build them fresh right before sorting.
func (k *KeyLanes) Comparators(desc []bool) []func(a, b int) int {
	out := make([]func(a, b int) int, len(k.lanes))
	for li := range k.lanes {
		l := &k.lanes[li]
		sign := 1
		if desc[li] {
			sign = -1
		}
		if l.anyNull {
			nulls := l.null
			switch l.t {
			case sqltypes.Float64:
				vals := l.f64
				out[li] = func(a, b int) int {
					if nulls[a] || nulls[b] {
						return sign * compareNulls(nulls[a], nulls[b])
					}
					return sign * compareFloat64(vals[a], vals[b])
				}
			case sqltypes.String:
				vals := l.str
				out[li] = func(a, b int) int {
					if nulls[a] || nulls[b] {
						return sign * compareNulls(nulls[a], nulls[b])
					}
					return sign * compareString(vals[a], vals[b])
				}
			default:
				vals := l.i64
				out[li] = func(a, b int) int {
					if nulls[a] || nulls[b] {
						return sign * compareNulls(nulls[a], nulls[b])
					}
					return sign * compareInt64(vals[a], vals[b])
				}
			}
			continue
		}
		switch l.t {
		case sqltypes.Float64:
			vals := l.f64
			out[li] = func(a, b int) int { return sign * compareFloat64(vals[a], vals[b]) }
		case sqltypes.String:
			vals := l.str
			out[li] = func(a, b int) int { return sign * compareString(vals[a], vals[b]) }
		default:
			vals := l.i64
			out[li] = func(a, b int) int { return sign * compareInt64(vals[a], vals[b]) }
		}
	}
	return out
}

// SortIndices returns the stable sorted permutation of the key rows:
// out[0] is the position of the smallest key. Stability comes from an
// index tiebreak, which is cheaper than sort.SliceStable's insertion
// passes and gives the same order.
func SortIndices(k *KeyLanes, desc []bool) []int {
	idx := make([]int, k.Len())
	for i := range idx {
		idx[i] = i
	}
	cmps := k.Comparators(desc)
	if len(cmps) == 1 {
		cmp := cmps[0]
		sort.Slice(idx, func(x, y int) bool {
			a, b := idx[x], idx[y]
			if c := cmp(a, b); c != 0 {
				return c < 0
			}
			return a < b
		})
		return idx
	}
	sort.Slice(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for _, cmp := range cmps {
			if c := cmp(a, b); c != 0 {
				return c < 0
			}
		}
		return a < b
	})
	return idx
}

// MemBytes estimates the lanes' resident size (live and spare buffers)
// for memory accounting.
func (k *KeyLanes) MemBytes() int64 {
	var n int64
	for li := range k.lanes {
		l := &k.lanes[li]
		n += int64(cap(l.i64)+cap(l.spareI64)) * 8
		n += int64(cap(l.f64)+cap(l.spareF64)) * 8
		n += int64(cap(l.null) + cap(l.spareNull))
		for _, s := range l.str {
			n += int64(len(s)) + 16
		}
		n += int64(cap(l.spareStr)) * 16
	}
	return n
}

// sortInterrupt is the sentinel SortIndicesInterruptible throws to unwind
// out of sort.Slice when the interrupt callback reports an error; any
// other panic passes through.
type sortInterrupt struct{ err error }

// SortIndicesInterruptible is SortIndices with a cancellation hook: the
// interrupt callback is polled every few thousand comparisons and its
// error aborts the sort — a Ctrl-C lands mid-partition instead of after
// the full O(n log n) pass. A nil interrupt degrades to SortIndices.
func SortIndicesInterruptible(k *KeyLanes, desc []bool, interrupt func() error) (idx []int, err error) {
	if interrupt == nil {
		return SortIndices(k, desc), nil
	}
	defer func() {
		if r := recover(); r != nil {
			si, ok := r.(*sortInterrupt)
			if !ok {
				panic(r)
			}
			idx, err = nil, si.err
		}
	}()
	var count uint
	check := func() {
		if count++; count&8191 == 0 {
			if e := interrupt(); e != nil {
				panic(&sortInterrupt{err: e})
			}
		}
	}
	idx = make([]int, k.Len())
	for i := range idx {
		idx[i] = i
	}
	cmps := k.Comparators(desc)
	if len(cmps) == 1 {
		cmp := cmps[0]
		sort.Slice(idx, func(x, y int) bool {
			check()
			a, b := idx[x], idx[y]
			if c := cmp(a, b); c != 0 {
				return c < 0
			}
			return a < b
		})
		return idx, nil
	}
	sort.Slice(idx, func(x, y int) bool {
		check()
		a, b := idx[x], idx[y]
		for _, cmp := range cmps {
			if c := cmp(a, b); c != 0 {
				return c < 0
			}
		}
		return a < b
	})
	return idx, nil
}

// CompareKeyVecs orders row ai of evaluated key vectors a against row bi
// of key vectors b (same lane types), with per-lane desc flips — the
// cross-run comparator of the merge and the candidate test of TopN.
func CompareKeyVecs(a []*columnar.Vector, ai int, b []*columnar.Vector, bi int, desc []bool) int {
	for li := range a {
		av, bv := a[li], b[li]
		an := av.AnyNulls() && av.IsNull(ai)
		bn := bv.AnyNulls() && bv.IsNull(bi)
		var c int
		if an || bn {
			c = compareNulls(an, bn)
		} else {
			switch av.Type {
			case sqltypes.Float64:
				c = compareFloat64(av.Float64s()[ai], bv.Float64s()[bi])
			case sqltypes.String:
				c = compareString(av.Strings()[ai], bv.Strings()[bi])
			default:
				c = compareInt64(av.Int64s()[ai], bv.Int64s()[bi])
			}
		}
		if c == 0 {
			continue
		}
		if desc[li] {
			return -c
		}
		return c
	}
	return 0
}

// compareVecLanes orders row i of evaluated key vectors against stored key
// row j of the lanes.
func (k *KeyLanes) compareVecLanes(cols []*columnar.Vector, i, j int, desc []bool) int {
	for li := range k.lanes {
		l := &k.lanes[li]
		v := cols[li]
		an := v.AnyNulls() && v.IsNull(i)
		bn := l.isNull(j)
		var c int
		if an || bn {
			c = compareNulls(an, bn)
		} else {
			switch l.t {
			case sqltypes.Float64:
				c = compareFloat64(v.Float64s()[i], l.f64[j])
			case sqltypes.String:
				c = compareString(v.Strings()[i], l.str[j])
			default:
				c = compareInt64(v.Int64s()[i], l.i64[j])
			}
		}
		if c == 0 {
			continue
		}
		if desc[li] {
			return -c
		}
		return c
	}
	return 0
}

// ---------------------------------------------------------------------------
// Multi-batch gather — applying a sort permutation.

// GatherInto overwrites dst with the rows of src selected by idx (global
// positions: src[g/chunk] row g%chunk; every src batch except the last
// must hold exactly chunk rows). It is Gather generalized across the
// sealed batches a sorted partition is buffered into.
func GatherInto(dst *Batch, src []*Batch, chunk int, idx []int) {
	if len(src) == 0 {
		for c := range dst.Cols {
			dst.Cols[c].Reset(dst.Schema.Fields[c].Type)
		}
		dst.SetLen(0)
		return
	}
	for c := range dst.Cols {
		dc := dst.Cols[c]
		t := src[0].Cols[c].Type
		dc.Reset(t)
		dc.Resize(len(idx))
		switch t {
		case sqltypes.Float64:
			out := dc.Float64s()
			for i, g := range idx {
				out[i] = src[g/chunk].Cols[c].Float64s()[g%chunk]
			}
		case sqltypes.String:
			out := dc.Strings()
			for i, g := range idx {
				out[i] = src[g/chunk].Cols[c].Strings()[g%chunk]
			}
		default:
			out := dc.Int64s()
			for i, g := range idx {
				out[i] = src[g/chunk].Cols[c].Int64s()[g%chunk]
			}
		}
		for i, g := range idx {
			sc := src[g/chunk].Cols[c]
			if sc.AnyNulls() && sc.IsNull(g%chunk) {
				dc.SetNull(i)
			}
		}
	}
	dst.SetLen(len(idx))
}

// Append appends every row of b to the builder (the identity-selection
// buffering path sorts use to take ownership of producer-reused batches).
func (b *BatchBuilder) Append(src *Batch) {
	n := src.Len()
	for len(b.identity) < n {
		b.identity = append(b.identity, len(b.identity))
	}
	b.AppendSelected(src, b.identity[:n])
}

// ---------------------------------------------------------------------------
// K-way merge of sorted runs.

// KeyExtract evaluates a run batch's sort keys into one vector per sort
// term. The physical layer supplies one extractor per run (compiled kernels
// own scratch state and must not be shared across runs).
type KeyExtract func(*Batch) ([]*columnar.Vector, error)

// sortedRun is the merge's cursor over one sorted batch stream.
type sortedRun struct {
	in      BatchIter
	extract KeyExtract
	ord     int // run index; ties resolve in run order (= partition order)
	b       *Batch
	keys    []*columnar.Vector
	pos     int
}

// advance loads the run's next non-empty batch and extracts its keys,
// reporting false when the run is exhausted.
func (r *sortedRun) advance() (bool, error) {
	for {
		b, err := r.in.Next()
		if err != nil {
			return false, err
		}
		if b == nil {
			r.b = nil
			return false, nil
		}
		if b.Len() == 0 {
			continue
		}
		keys, err := r.extract(b)
		if err != nil {
			return false, err
		}
		r.b, r.keys, r.pos = b, keys, 0
		return true, nil
	}
}

// MergeSorted merges k sorted batch streams into one sorted batch stream,
// optionally truncating to limit rows (limit < 0 = unlimited). Runs of
// equal keys resolve in run order, so merging the sorted runs of
// partitions 0..k-1 reproduces the row engine's gather-then-stable-sort
// order exactly. The merge gallops: it binary-searches how far the
// leading run stays ahead of the runner-up and gathers that whole segment
// column-wise, so range-partitioned inputs merge at near-copy speed.
type MergeSorted struct {
	desc      []bool
	runs      []*sortedRun // min-heap on current row key (index 0 = smallest)
	out       *Batch
	sel       []int
	limit     int64
	init      bool
	done      bool
	interrupt func() error // polled per produced batch and merge segment
}

// SetInterrupt installs a cancellation hook polled at every produced batch
// and between gallop segments, so cancelling a query interrupts a long
// k-way merge mid-stream.
func (m *MergeSorted) SetInterrupt(f func() error) { m.interrupt = f }

// checkInterrupt polls the installed hook.
func (m *MergeSorted) checkInterrupt() error {
	if m.interrupt == nil {
		return nil
	}
	return m.interrupt()
}

// NewMergeSorted builds a merge of ins (each already sorted by the same
// keys) producing batches of schema. extracts[i] evaluates run i's keys.
func NewMergeSorted(schema *sqltypes.Schema, ins []BatchIter, extracts []KeyExtract,
	desc []bool, limit int64) *MergeSorted {
	m := &MergeSorted{desc: desc, out: NewBatch(schema), limit: limit}
	for i, in := range ins {
		m.runs = append(m.runs, &sortedRun{in: in, extract: extracts[i], ord: i})
	}
	return m
}

// less orders two runs by their current row key, run index breaking ties.
func (m *MergeSorted) less(a, b *sortedRun) bool {
	c := CompareKeyVecs(a.keys, a.pos, b.keys, b.pos, m.desc)
	if c != 0 {
		return c < 0
	}
	return a.ord < b.ord
}

func (m *MergeSorted) siftDown(i int) {
	n := len(m.runs)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && m.less(m.runs[l], m.runs[small]) {
			small = l
		}
		if r < n && m.less(m.runs[r], m.runs[small]) {
			small = r
		}
		if small == i {
			return
		}
		m.runs[i], m.runs[small] = m.runs[small], m.runs[i]
		i = small
	}
}

// start loads every run's first batch and heapifies.
func (m *MergeSorted) start() error {
	live := m.runs[:0]
	for _, r := range m.runs {
		ok, err := r.advance()
		if err != nil {
			return err
		}
		if ok {
			live = append(live, r)
		}
	}
	m.runs = live
	for i := len(m.runs)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	m.init = true
	return nil
}

// pop removes the exhausted root run.
func (m *MergeSorted) pop() {
	n := len(m.runs) - 1
	m.runs[0] = m.runs[n]
	m.runs = m.runs[:n]
	if n > 1 {
		m.siftDown(0)
	}
}

// runnerUp returns the heap's second-smallest run (root's better child).
func (m *MergeSorted) runnerUp() *sortedRun {
	switch len(m.runs) {
	case 2:
		return m.runs[1]
	default:
		if m.less(m.runs[2], m.runs[1]) {
			return m.runs[2]
		}
		return m.runs[1]
	}
}

// gallop returns how many rows of the root's current batch (from pos) sort
// before the runner-up's current row: a binary search over the sorted
// batch. Rows equal to the runner-up's key count when the root's run index
// is smaller (ties resolve in run order).
func (m *MergeSorted) gallop(root, next *sortedRun) int {
	lo, hi := root.pos, root.b.Len() // invariant: rows [root.pos, lo) win
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := CompareKeyVecs(root.keys, mid, next.keys, next.pos, m.desc)
		if c < 0 || (c == 0 && root.ord < next.ord) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - root.pos
}

// Next implements BatchIter, producing the next merged batch (reused
// across calls).
func (m *MergeSorted) Next() (*Batch, error) {
	if m.done {
		return nil, nil
	}
	if err := m.checkInterrupt(); err != nil {
		return nil, err
	}
	if !m.init {
		if err := m.start(); err != nil {
			return nil, err
		}
	}
	if len(m.runs) == 0 || m.limit == 0 {
		m.done = true
		return nil, nil
	}
	// Single live run: its stream is already sorted; forward batches,
	// slicing off the tail when the limit lands mid-batch.
	if len(m.runs) == 1 {
		return m.forwardSingle()
	}
	m.out.Reset()
	m.sel = m.sel[:0]
	room := DefaultBatchSize
	if m.limit >= 0 && int64(room) > m.limit {
		room = int(m.limit)
	}
	for room > 0 && len(m.runs) > 1 {
		if err := m.checkInterrupt(); err != nil {
			return nil, err
		}
		root := m.runs[0]
		take := m.gallop(root, m.runnerUp())
		if take > room {
			take = room
		}
		if take > 0 {
			m.sel = m.sel[:0]
			for i := 0; i < take; i++ {
				m.sel = append(m.sel, root.pos+i)
			}
			appendGather(m.out, root.b, m.sel)
			root.pos += take
			room -= take
		}
		if root.pos >= root.b.Len() {
			ok, err := root.advance()
			if err != nil {
				return nil, err
			}
			if !ok {
				m.pop()
				continue
			}
		}
		m.siftDown(0)
	}
	if m.limit > 0 {
		m.limit -= int64(m.out.Len())
	}
	if m.out.Len() == 0 {
		// Down to one run without emitting: forward from it directly.
		if len(m.runs) == 1 {
			return m.forwardSingle()
		}
		m.done = true
		return nil, nil
	}
	return m.out, nil
}

// forwardSingle serves the last live run's batches. The run's current
// batch may be partially consumed (pos > 0), in which case the remainder
// is gathered once; later batches pass through untouched.
func (m *MergeSorted) forwardSingle() (*Batch, error) {
	r := m.runs[0]
	for {
		if err := m.checkInterrupt(); err != nil {
			return nil, err
		}
		if r.b == nil {
			ok, err := r.advance()
			if err != nil {
				return nil, err
			}
			if !ok {
				m.done = true
				return nil, nil
			}
		}
		n := r.b.Len() - r.pos
		if n <= 0 {
			r.b = nil
			continue
		}
		if m.limit >= 0 && int64(n) > m.limit {
			n = int(m.limit)
		}
		if n == 0 {
			m.done = true
			return nil, nil
		}
		var out *Batch
		if r.pos == 0 && n == r.b.Len() {
			out = r.b
		} else {
			m.sel = m.sel[:0]
			for i := 0; i < n; i++ {
				m.sel = append(m.sel, r.pos+i)
			}
			m.out.Reset()
			appendGather(m.out, r.b, m.sel)
			out = m.out
		}
		if m.limit > 0 {
			m.limit -= int64(n)
		}
		r.b = nil // consumed (or truncated by the limit)
		return out, nil
	}
}

// ---------------------------------------------------------------------------
// Bounded Top-N collection.

// TopN keeps the n best rows seen so far under the sort keys: a bounded
// max-heap (worst kept row at the root) over a compacting columnar store,
// so a 1M-row partition scanning into ORDER BY ... LIMIT 100 holds ~100
// candidate rows instead of the partition. Tie behavior matches taking
// the first n rows of a stable sort: a new row displaces the worst kept
// row only when its key is strictly better, and among equal-key kept rows
// the latest arrival is evicted first.
type TopN struct {
	n    int
	desc []bool

	store *Batch // candidate rows, append-only between compactions
	spare *Batch
	keys  *KeyLanes
	seq   []int64 // arrival order per store row (tie resolution)
	next  int64
	heap  []int // store positions; root = worst under (key, seq)

	one []int // scratch single-row selection
}

// NewTopN builds a collector of the n smallest key rows for batches of
// schema. keyTypes/desc describe the extracted sort keys.
func NewTopN(schema *sqltypes.Schema, keyTypes []sqltypes.Type, desc []bool, n int) *TopN {
	return &TopN{
		n:     n,
		desc:  desc,
		store: NewBatch(schema),
		spare: NewBatch(schema),
		keys:  NewKeyLanes(keyTypes),
		one:   make([]int, 1),
	}
}

// worse orders store rows for the max-heap: by key descending-first (the
// worst key wins the root), later arrivals first among equal keys (so the
// eviction order preserves stable-sort-prefix semantics).
func (t *TopN) worse(a, b int) bool {
	c := t.keys.Compare(a, b, t.desc)
	if c != 0 {
		return c > 0
	}
	return t.seq[a] > t.seq[b]
}

func (t *TopN) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[p]) {
			return
		}
		t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
		i = p
	}
}

func (t *TopN) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && t.worse(t.heap[l], t.heap[w]) {
			w = l
		}
		if r < n && t.worse(t.heap[r], t.heap[w]) {
			w = r
		}
		if w == i {
			return
		}
		t.heap[i], t.heap[w] = t.heap[w], t.heap[i]
		i = w
	}
}

// add stores row i of b (keys alongside) and returns its store position.
func (t *TopN) add(b *Batch, keys []*columnar.Vector, i int) int {
	pos := t.store.Len()
	t.one[0] = i
	appendGather(t.store, b, t.one)
	t.keys.AppendRow(keys, i)
	t.seq = append(t.seq, t.next)
	t.next++
	return pos
}

// Push offers every row of b (keys pre-evaluated, one vector per sort
// term) to the collector.
func (t *TopN) Push(b *Batch, keys []*columnar.Vector) {
	if t.n == 0 {
		return
	}
	i := 0
	for len(t.heap) < t.n && i < b.Len() {
		t.heap = append(t.heap, t.add(b, keys, i))
		t.siftUp(len(t.heap) - 1)
		i++
	}
	for ; i < b.Len(); i++ {
		// Strictly better than the worst kept key, or out. The first lane
		// decides for most rows; compareVecLanes short-circuits there.
		if t.keys.compareVecLanes(keys, i, t.heap[0], t.desc) >= 0 {
			continue
		}
		t.heap[0] = t.add(b, keys, i)
		t.siftDown(0)
		if t.store.Len() >= t.compactAt() {
			t.compact()
		}
	}
}

// compactAt is the store size that triggers dropping evicted rows.
func (t *TopN) compactAt() int {
	at := 4 * t.n
	if at < 4096 {
		at = 4096
	}
	return at
}

// compact gathers the live heap rows to the front of the store (heap
// order, positions relabelled 0..len-1, which preserves the heap shape).
func (t *TopN) compact() {
	Gather(t.spare, t.store, t.heap)
	t.store, t.spare = t.spare, t.store
	seq := make([]int64, len(t.heap))
	for i, p := range t.heap {
		seq[i] = t.seq[p]
	}
	t.seq = seq
	t.keys.Gather(t.heap)
	for i := range t.heap {
		t.heap[i] = i
	}
}

// MemBytes estimates the collector's resident size — candidate store,
// spare, key lanes and bookkeeping — for memory accounting.
func (t *TopN) MemBytes() int64 {
	return t.store.MemBytes() + t.spare.MemBytes() + t.keys.MemBytes() +
		int64(cap(t.seq))*8 + int64(cap(t.heap))*8
}

// Emit returns the kept rows as a sorted run (ascending under the keys,
// arrival order among ties), consuming the collector.
func (t *TopN) Emit() []*Batch {
	if len(t.heap) == 0 {
		return nil
	}
	order := append([]int(nil), t.heap...)
	cmps := t.keys.Comparators(t.desc)
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		for _, cmp := range cmps {
			if c := cmp(a, b); c != 0 {
				return c < 0
			}
		}
		return t.seq[a] < t.seq[b]
	})
	out := NewBatchBuilder(t.store.Schema, DefaultBatchSize)
	for len(order) > 0 {
		n := DefaultBatchSize
		if n > len(order) {
			n = len(order)
		}
		out.AppendSelected(t.store, order[:n])
		order = order[n:]
	}
	return out.Seal()
}
