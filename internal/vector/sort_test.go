package vector

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"indexeddf/internal/columnar"
	"indexeddf/internal/sqltypes"
)

// sortTestSchema is (id INT64, val FLOAT64 NULL, tag STRING NULL).
func sortTestSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "val", Type: sqltypes.Float64, Nullable: true},
		sqltypes.Field{Name: "tag", Type: sqltypes.String, Nullable: true},
	)
}

func randSortRows(rng *rand.Rand, n, nullFrac int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		val := sqltypes.NewFloat64(float64(rng.Intn(20))) // heavy ties
		tag := sqltypes.NewString(fmt.Sprintf("t%d", rng.Intn(4)))
		if nullFrac > 0 {
			if rng.Intn(nullFrac) == 0 {
				val = sqltypes.Null
			}
			if rng.Intn(nullFrac) == 0 {
				tag = sqltypes.Null
			}
		}
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), val, tag}
	}
	return rows
}

func batchesOf(t *testing.T, schema *sqltypes.Schema, rows []sqltypes.Row, size int) []*Batch {
	t.Helper()
	bb := NewBatchBuilder(schema, size)
	b := NewBatch(schema)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
		if b.Len() == size {
			bb.Append(b)
			b.Reset()
		}
	}
	if b.Len() > 0 {
		bb.Append(b)
	}
	return bb.Seal()
}

// keyVecsOf evaluates key columns (by ordinal) of a batch.
func keyVecsOf(b *Batch, ords []int) []*columnar.Vector {
	out := make([]*columnar.Vector, len(ords))
	for i, o := range ords {
		out[i] = b.Cols[o]
	}
	return out
}

// rowSortRef sorts rows with the row engine's semantics (stable,
// sqltypes.Compare per key, desc flips).
func rowSortRef(rows []sqltypes.Row, ords []int, desc []bool) []sqltypes.Row {
	out := append([]sqltypes.Row(nil), rows...)
	sort.SliceStable(out, func(a, b int) bool {
		for k, o := range ords {
			c := sqltypes.Compare(out[a][o], out[b][o])
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return out
}

func drainRows(t *testing.T, it BatchIter) []sqltypes.Row {
	t.Helper()
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func sortRowsEqual(t *testing.T, want, got []sqltypes.Row, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: want %d rows, got %d", label, len(want), len(got))
	}
	for i := range want {
		if fmt.Sprint(want[i]) != fmt.Sprint(got[i]) {
			t.Fatalf("%s: row %d differs: want %v, got %v", label, i, want[i], got[i])
		}
	}
}

// sortViaLanes runs the full kernel pipeline (extract keys into lanes,
// sort indices, multi-batch gather) over the given batches.
func sortViaLanes(t *testing.T, schema *sqltypes.Schema, batches []*Batch, ords []int, desc []bool, chunk int) []sqltypes.Row {
	t.Helper()
	keyTypes := make([]sqltypes.Type, len(ords))
	for i, o := range ords {
		keyTypes[i] = schema.Fields[o].Type
	}
	lanes := NewKeyLanes(keyTypes)
	for _, b := range batches {
		lanes.AppendCols(keyVecsOf(b, ords))
	}
	idx := SortIndices(lanes, desc)
	out := NewBatch(schema)
	GatherInto(out, batches, chunk, idx)
	var rows []sqltypes.Row
	for i := 0; i < out.Len(); i++ {
		rows = append(rows, out.Row(i))
	}
	return rows
}

func TestSortIndicesMatchesRowSort(t *testing.T) {
	schema := sortTestSchema()
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		ords []int
		desc []bool
	}{
		{"single-float", []int{1}, []bool{false}},
		{"single-float-desc", []int{1}, []bool{true}},
		{"string-then-float", []int{2, 1}, []bool{false, true}},
		{"int", []int{0}, []bool{false}},
	}
	for _, n := range []int{0, 1, 63, 64, 100, 2500} {
		rows := randSortRows(rng, n, 5)
		batches := batchesOf(t, schema, rows, 256)
		for _, tc := range cases {
			got := sortViaLanes(t, schema, batches, tc.ords, tc.desc, 256)
			want := rowSortRef(rows, tc.ords, tc.desc)
			sortRowsEqual(t, want, got, fmt.Sprintf("n=%d/%s", n, tc.name))
		}
	}
}

func TestSortIndicesStability(t *testing.T) {
	// All-equal keys: the permutation must be the identity.
	lanes := NewKeyLanes([]sqltypes.Type{sqltypes.Int64})
	v := columnar.NewVector(sqltypes.Int64)
	for i := 0; i < 500; i++ {
		if err := v.Append(sqltypes.NewInt64(42)); err != nil {
			t.Fatal(err)
		}
	}
	lanes.AppendCols([]*columnar.Vector{v})
	idx := SortIndices(lanes, []bool{true})
	for i, p := range idx {
		if p != i {
			t.Fatalf("equal keys reordered: idx[%d] = %d", i, p)
		}
	}
}

func TestMergeSortedMatchesRowSort(t *testing.T) {
	schema := sortTestSchema()
	rng := rand.New(rand.NewSource(11))
	ords, desc := []int{1, 2}, []bool{false, false}
	for _, tc := range []struct {
		name  string
		runs  []int // rows per run
		limit int64
	}{
		{"two-runs", []int{500, 700}, -1},
		{"empty-runs", []int{0, 300, 0, 40}, -1},
		{"all-empty", []int{0, 0}, -1},
		{"single-run", []int{900}, -1},
		{"limit-mid-batch", []int{600, 600}, 100},
		{"limit-zero", []int{50, 50}, 0},
		{"limit-beyond", []int{30, 30}, 1000},
		{"many-runs", []int{100, 1, 2000, 5, 0, 64}, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var all []sqltypes.Row
			var ins []BatchIter
			var extracts []KeyExtract
			for _, n := range tc.runs {
				rows := rowSortRef(randSortRows(rng, n, 4), ords, desc)
				all = append(all, rows...)
				ins = append(ins, NewSliceIter(batchesOf(t, schema, rows, 128)))
				extracts = append(extracts, func(b *Batch) ([]*columnar.Vector, error) {
					return keyVecsOf(b, ords), nil
				})
			}
			// Reference: runs concatenated in run order, stable sorted
			// (run-index tiebreak = concatenation order).
			want := rowSortRef(all, ords, desc)
			if tc.limit >= 0 && int64(len(want)) > tc.limit {
				want = want[:tc.limit]
			}
			m := NewMergeSorted(schema, ins, extracts, desc, tc.limit)
			got := drainRows(t, m)
			sortRowsEqual(t, want, got, tc.name)
		})
	}
}

func TestTopNMatchesSortPrefix(t *testing.T) {
	schema := sortTestSchema()
	rng := rand.New(rand.NewSource(23))
	for _, tc := range []struct {
		name string
		rows int
		n    int
		ords []int
		desc []bool
	}{
		{"basic", 5000, 10, []int{1}, []bool{false}},
		{"desc", 5000, 10, []int{1}, []bool{true}},
		{"composite", 4000, 25, []int{2, 1}, []bool{false, true}},
		{"n-zero", 100, 0, []int{1}, []bool{false}},
		{"n-beyond", 40, 100, []int{1}, []bool{false}},
		{"heavy-ties-compaction", 60000, 50, []int{1}, []bool{false}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rows := randSortRows(rng, tc.rows, 6)
			keyTypes := make([]sqltypes.Type, len(tc.ords))
			for i, o := range tc.ords {
				keyTypes[i] = schema.Fields[o].Type
			}
			top := NewTopN(schema, keyTypes, tc.desc, tc.n)
			for _, b := range batchesOf(t, schema, rows, 256) {
				top.Push(b, keyVecsOf(b, tc.ords))
			}
			got := drainRows(t, NewSliceIter(top.Emit()))
			want := rowSortRef(rows, tc.ords, tc.desc)
			if len(want) > tc.n {
				want = want[:tc.n]
			}
			sortRowsEqual(t, want, got, tc.name)
		})
	}
}

// TestTopNCompactionKeepsEarlySurvivors drives the compaction path hard:
// a strictly-improving key stream (descending values under an ascending
// sort) forces a store replacement per row, so the store crosses
// compactAt() many times — and the global best row, seen first, must
// survive every compaction. Pins the in-place-gather corruption where a
// heap-ordered (non-monotonic) selection overwrote early key slots
// before reading them.
func TestTopNCompactionKeepsEarlySurvivors(t *testing.T) {
	schema := sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "v", Type: sqltypes.Int64},
	)
	const total, n = 20_000, 4
	rows := make([]sqltypes.Row, total)
	rows[0] = sqltypes.Row{sqltypes.NewInt64(0), sqltypes.NewInt64(0)} // global best, first
	for i := 1; i < total; i++ {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), sqltypes.NewInt64(int64(total - i))}
	}
	top := NewTopN(schema, []sqltypes.Type{sqltypes.Int64}, []bool{false}, n)
	for _, b := range batchesOf(t, schema, rows, 256) {
		top.Push(b, keyVecsOf(b, []int{1}))
	}
	got := drainRows(t, NewSliceIter(top.Emit()))
	want := rowSortRef(rows, []int{1}, []bool{false})[:n]
	sortRowsEqual(t, want, got, "compaction")
	if got[0][0].Int64Val() != 0 {
		t.Fatalf("global best (id 0) did not survive compaction: %v", got)
	}
}

func TestGatherIntoEmpty(t *testing.T) {
	schema := sortTestSchema()
	out := NewBatch(schema)
	GatherInto(out, nil, 128, nil)
	if out.Len() != 0 {
		t.Fatalf("gather of no sources produced %d rows", out.Len())
	}
}

func TestKeyLanesNullTransitions(t *testing.T) {
	// First batch has no nulls, second does, third doesn't: null tracking
	// must stay positionally aligned.
	lanes := NewKeyLanes([]sqltypes.Type{sqltypes.Int64})
	mk := func(vals ...any) *columnar.Vector {
		v := columnar.NewVector(sqltypes.Int64)
		for _, x := range vals {
			if x == nil {
				if err := v.Append(sqltypes.Null); err != nil {
					t.Fatal(err)
				}
			} else if err := v.Append(sqltypes.NewInt64(int64(x.(int)))); err != nil {
				t.Fatal(err)
			}
		}
		return v
	}
	lanes.AppendCols([]*columnar.Vector{mk(5, 3)})
	lanes.AppendCols([]*columnar.Vector{mk(nil, 1)})
	lanes.AppendCols([]*columnar.Vector{mk(2)})
	idx := SortIndices(lanes, []bool{false})
	want := []int{2, 3, 4, 1, 0} // NULL, 1, 2, 3, 5
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("null transition sort: got %v, want %v", idx, want)
		}
	}
}
