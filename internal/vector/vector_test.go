package vector

import (
	"fmt"
	"math/rand"
	"testing"

	"indexeddf/internal/columnar"
	"indexeddf/internal/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "b", Type: sqltypes.Bool, Nullable: true},
		sqltypes.Field{Name: "i32", Type: sqltypes.Int32, Nullable: true},
		sqltypes.Field{Name: "i64", Type: sqltypes.Int64, Nullable: true},
		sqltypes.Field{Name: "f", Type: sqltypes.Float64, Nullable: true},
		sqltypes.Field{Name: "s", Type: sqltypes.String, Nullable: true},
		sqltypes.Field{Name: "ts", Type: sqltypes.Timestamp, Nullable: true},
	)
}

// randomRows generates rows over every type with ~20% NULLs.
func randomRows(rng *rand.Rand, n int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		row := make(sqltypes.Row, 6)
		mk := []func() sqltypes.Value{
			func() sqltypes.Value { return sqltypes.NewBool(rng.Intn(2) == 0) },
			func() sqltypes.Value { return sqltypes.NewInt32(int32(rng.Intn(1000) - 500)) },
			func() sqltypes.Value { return sqltypes.NewInt64(rng.Int63n(1_000_000) - 500_000) },
			func() sqltypes.Value { return sqltypes.NewFloat64(rng.NormFloat64() * 100) },
			func() sqltypes.Value { return sqltypes.NewString(fmt.Sprintf("v%d", rng.Intn(50))) },
			func() sqltypes.Value { return sqltypes.NewTimestamp(rng.Int63n(1 << 40)) },
		}
		for c := range row {
			if rng.Intn(5) == 0 {
				row[c] = sqltypes.Null
			} else {
				row[c] = mk[c]()
			}
		}
		rows[i] = row
	}
	return rows
}

func rowsEqual(a, b []sqltypes.Row) error {
	if len(a) != len(b) {
		return fmt.Errorf("row count %d != %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("row %d arity %d != %d", i, len(a[i]), len(b[i]))
		}
		for c := range a[i] {
			x, y := a[i][c], b[i][c]
			if x.IsNull() != y.IsNull() {
				return fmt.Errorf("row %d col %d null mismatch: %s vs %s", i, c, x, y)
			}
			if !x.IsNull() && (x.T != y.T || sqltypes.Compare(x, y) != 0) {
				return fmt.Errorf("row %d col %d: %s (%s) != %s (%s)", i, c, x, x.T, y, y.T)
			}
		}
	}
	return nil
}

// TestAdapterRoundTrip drives rows -> batches -> rows across many sizes,
// covering empty inputs, exact batch multiples and partial final batches.
func TestAdapterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := testSchema()
	for _, n := range []int{0, 1, 63, 64, 65, DefaultBatchSize - 1, DefaultBatchSize,
		DefaultBatchSize + 1, 3*DefaultBatchSize + 17} {
		rows := randomRows(rng, n)
		bi := AsBatchIter(sqltypes.NewSliceIter(rows), schema, 0)
		back, err := Drain(bi)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := rowsEqual(rows, back); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestPartialFinalBatch verifies batch boundaries: a non-multiple input
// must produce full batches then one short batch.
func TestPartialFinalBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	schema := testSchema()
	rows := randomRows(rng, 2*DefaultBatchSize+5)
	bi := AsBatchIter(sqltypes.NewSliceIter(rows), schema, 0)
	var sizes []int
	for {
		b, err := bi.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, b.Len())
		// The batch is reused; consume it before the next pull (Drain-like).
	}
	want := []int{DefaultBatchSize, DefaultBatchSize, 5}
	if len(sizes) != len(want) {
		t.Fatalf("batch sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v, want %v", sizes, want)
		}
	}
}

// TestRowIterUnwrap checks that AsBatchIter splices the batch stream out of
// a fresh row adapter instead of re-batching.
func TestRowIterUnwrap(t *testing.T) {
	schema := testSchema()
	rows := randomRows(rand.New(rand.NewSource(9)), 100)
	inner := AsBatchIter(sqltypes.NewSliceIter(rows), schema, 0)
	adapter := NewRowIter(inner)
	got := AsBatchIter(adapter, schema, 0)
	if got != inner {
		t.Fatal("fresh RowIter was not unwrapped to its inner BatchIter")
	}
	// After consuming a row, unwrapping must NOT splice (rows already gone).
	adapter2 := NewRowIter(AsBatchIter(sqltypes.NewSliceIter(rows), schema, 0))
	if _, err := adapter2.Next(); err != nil {
		t.Fatal(err)
	}
	if got2 := AsBatchIter(adapter2, schema, 0); got2 == inner {
		t.Fatal("started RowIter must not be unwrapped")
	}
}

// TestNullHandling pins null-bitmap behaviour through append, gather and
// round trips.
func TestNullHandling(t *testing.T) {
	schema := sqltypes.NewSchema(sqltypes.Field{Name: "x", Type: sqltypes.Int64, Nullable: true})
	b := NewBatch(schema)
	for i := 0; i < 130; i++ {
		v := sqltypes.NewInt64(int64(i))
		if i%3 == 0 {
			v = sqltypes.Null
		}
		if err := b.AppendRow(sqltypes.Row{v}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 130; i++ {
		got := b.Cols[0].Get(i)
		if (i%3 == 0) != got.IsNull() {
			t.Fatalf("pos %d: null=%v", i, got.IsNull())
		}
	}
	// Gather odd positions and re-check.
	var sel []int
	for i := 1; i < 130; i += 2 {
		sel = append(sel, i)
	}
	dst := NewBatch(schema)
	Gather(dst, b, sel)
	if dst.Len() != len(sel) {
		t.Fatalf("gathered %d rows, want %d", dst.Len(), len(sel))
	}
	for j, i := range sel {
		want := b.Cols[0].Get(i)
		got := dst.Cols[0].Get(j)
		if want.IsNull() != got.IsNull() || (!want.IsNull() && want.I != got.I) {
			t.Fatalf("gather pos %d: %s != %s", j, got, want)
		}
	}
}

// TestSelectTrue covers true/false/NULL predicate outcomes.
func TestSelectTrue(t *testing.T) {
	v := columnar.NewVector(sqltypes.Bool)
	expect := []int{}
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0:
			if err := v.Append(sqltypes.NewBool(true)); err != nil {
				t.Fatal(err)
			}
			expect = append(expect, i)
		case 1:
			if err := v.Append(sqltypes.NewBool(false)); err != nil {
				t.Fatal(err)
			}
		default:
			if err := v.Append(sqltypes.Null); err != nil {
				t.Fatal(err)
			}
		}
	}
	sel := SelectTrue(v, nil)
	if len(sel) != len(expect) {
		t.Fatalf("selected %d, want %d", len(sel), len(expect))
	}
	for i := range sel {
		if sel[i] != expect[i] {
			t.Fatalf("sel[%d] = %d, want %d", i, sel[i], expect[i])
		}
	}
}

// TestFromColumnarSlices verifies the zero-copy scan windows, including
// null bits across word-aligned boundaries and a projection.
func TestFromColumnarSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	schema := testSchema()
	rows := randomRows(rng, 2500)
	cb, err := columnar.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	projSchema := schema.Project([]int{2, 4})
	var got []sqltypes.Row
	for lo := 0; lo < cb.NumRows(); lo += DefaultBatchSize {
		hi := lo + DefaultBatchSize
		if hi > cb.NumRows() {
			hi = cb.NumRows()
		}
		b, err := FromColumnar(cb, lo, hi, []int{2, 4}, projSchema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Len(); i++ {
			got = append(got, b.Row(i))
		}
	}
	want := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		want[i] = sqltypes.Row{r[2], r[4]}
	}
	if err := rowsEqual(want, got); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTrip is the property-style mirror of rowbatch_test.go:
// arbitrary row counts and null patterns survive the adapter pair.
func TestQuickRoundTrip(t *testing.T) {
	schema := testSchema()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000)
		rows := randomRows(rng, n)
		back, err := Drain(AsBatchIter(sqltypes.NewSliceIter(rows), schema, 1+rng.Intn(2000)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rowsEqual(rows, back); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
