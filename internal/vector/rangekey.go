package vector

import (
	"indexeddf/internal/columnar"
	"indexeddf/internal/sqltypes"
)

// This file holds the boxed key-row helpers the range-partitioned merge
// uses: the sort's map tasks box one key row per sealed spill batch, the
// splitter computation orders those boxed rows, and the reduce tasks
// compare batch rows against the boxed splitters to trim each run to its
// range. All comparisons mirror KeyLanes.Compare exactly (NULL first
// ascending, DESC flips the whole lane), so range boundaries agree with
// the merge order, ties included.

// KeyRowAt boxes key row i of the lanes as a value row (one value per sort
// term). NULL keys box as sqltypes.Null; int-family lanes keep their
// declared type so the boxed row re-encodes losslessly.
func (k *KeyLanes) KeyRowAt(i int) []sqltypes.Value {
	row := make([]sqltypes.Value, len(k.lanes))
	for li := range k.lanes {
		l := &k.lanes[li]
		if l.isNull(i) {
			row[li] = sqltypes.Null
			continue
		}
		switch l.t {
		case sqltypes.Float64:
			row[li] = sqltypes.NewFloat64(l.f64[i])
		case sqltypes.String:
			row[li] = sqltypes.NewString(l.str[i])
		default:
			row[li] = sqltypes.Value{T: l.t, I: l.i64[i]}
		}
	}
	return row
}

// CompareKeyRows orders two boxed key rows with KeyLanes.Compare semantics
// (typed compare per lane, NULL first, desc flips the lane).
func CompareKeyRows(a, b []sqltypes.Value, desc []bool) int {
	for li := range a {
		c := compareKeyValues(a[li], b[li])
		if c == 0 {
			continue
		}
		if desc[li] {
			return -c
		}
		return c
	}
	return 0
}

// CompareVecsKeyRow orders row i of the evaluated key vectors against a
// boxed key row, with the same per-lane semantics as CompareKeyRows.
func CompareVecsKeyRow(cols []*columnar.Vector, i int, key []sqltypes.Value, desc []bool) int {
	for li, v := range cols {
		an := v.AnyNulls() && v.IsNull(i)
		bn := key[li].IsNull()
		var c int
		if an || bn {
			c = compareNulls(an, bn)
		} else {
			switch v.Type {
			case sqltypes.Float64:
				c = compareFloat64(v.Float64s()[i], key[li].F)
			case sqltypes.String:
				c = compareString(v.Strings()[i], key[li].S)
			default:
				c = compareInt64(v.Int64s()[i], key[li].I)
			}
		}
		if c == 0 {
			continue
		}
		if desc[li] {
			return -c
		}
		return c
	}
	return 0
}

func compareKeyValues(a, b sqltypes.Value) int {
	an, bn := a.IsNull(), b.IsNull()
	if an || bn {
		return compareNulls(an, bn)
	}
	switch a.T {
	case sqltypes.Float64:
		return compareFloat64(a.F, b.F)
	case sqltypes.String:
		return compareString(a.S, b.S)
	default:
		return compareInt64(a.I, b.I)
	}
}
