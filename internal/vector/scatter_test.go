package vector

import (
	"math/rand"
	"testing"

	"indexeddf/internal/sqltypes"
)

// drainBuilderRows materializes sealed batches back into rows.
func drainBuilderRows(batches []*Batch) []sqltypes.Row {
	var out []sqltypes.Row
	for _, b := range batches {
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
	}
	return out
}

// TestBatchBuilderSealsAndRoundTrips: rows appended through selection
// vectors come back exactly, split into target-size batches.
func TestBatchBuilderSealsAndRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := randomRows(rng, 700)
	src := NewBatch(testSchema())
	for _, r := range rows {
		if err := src.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	bld := NewBatchBuilder(testSchema(), 256)
	// Append in two uneven selections to cross seal boundaries mid-call.
	sel := make([]int, 0, len(rows))
	for i := range rows {
		sel = append(sel, i)
	}
	bld.AppendSelected(src, sel[:123])
	bld.AppendSelected(src, sel[123:])
	sealed := bld.Seal()
	if len(sealed) != 3 { // ceil(700/256)
		t.Fatalf("sealed %d batches, want 3", len(sealed))
	}
	for i, b := range sealed[:2] {
		if b.Len() != 256 {
			t.Fatalf("sealed batch %d has %d rows, want 256", i, b.Len())
		}
	}
	got := drainBuilderRows(sealed)
	if len(got) != len(rows) {
		t.Fatalf("round-tripped %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i].String() != rows[i].String() {
			t.Fatalf("row %d: got %s want %s", i, got[i], rows[i])
		}
	}
	// The builder is reusable after Seal.
	bld.AppendSelected(src, sel[:10])
	if again := drainBuilderRows(bld.Seal()); len(again) != 10 {
		t.Fatalf("reused builder sealed %d rows, want 10", len(again))
	}
}

// TestHashColumnsMatchesValueHash: the lane-wise kernel must agree with
// Value.Hash64 (single key) and the CombineHash fold (composite key) on
// every type and on NULLs — partition layouts of the two engines depend
// on it.
func TestHashColumnsMatchesValueHash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := randomRows(rng, 500)
	b := NewBatch(testSchema())
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	for col := 0; col < testSchema().Len(); col++ {
		hashes := HashColumns(b, []int{col}, nil)
		for i, r := range rows {
			if want := r[col].Hash64(); hashes[i] != want {
				t.Fatalf("col %d row %d (%s): kernel hash %d, Value.Hash64 %d",
					col, i, r[col], hashes[i], want)
			}
		}
	}
	// Composite key over every column.
	ords := []int{0, 1, 2, 3, 4, 5}
	hashes := HashColumns(b, ords, nil)
	for i, r := range rows {
		want := sqltypes.HashSeed
		for _, o := range ords {
			want = sqltypes.CombineHash(want, r[o].Hash64())
		}
		if hashes[i] != want {
			t.Fatalf("composite row %d: kernel hash %d, row fold %d", i, hashes[i], want)
		}
	}
}

// TestScatterPartitionsLikeRowHash: every row lands in the reducer its
// value hash picks, order within a reducer is preserved, and nothing is
// lost or duplicated.
func TestScatterPartitionsLikeRowHash(t *testing.T) {
	const nReduce = 7
	rng := rand.New(rand.NewSource(23))
	rows := randomRows(rng, 2_500)
	sc := NewScatter(testSchema(), []int{2}, nReduce) // key on the i64 column
	in := NewBatch(testSchema())
	for i, r := range rows {
		if err := in.AppendRow(r); err != nil {
			t.Fatal(err)
		}
		if in.Len() == DefaultBatchSize || i == len(rows)-1 {
			sc.Add(in)
			in = NewBatch(testSchema())
		}
	}
	buckets := sc.Seal()
	if len(buckets) != nReduce {
		t.Fatalf("scatter produced %d reducers, want %d", len(buckets), nReduce)
	}
	want := make([][]string, nReduce)
	for _, r := range rows {
		p := r[2].Hash64() % nReduce
		want[p] = append(want[p], r.String())
	}
	total := 0
	for p, bs := range buckets {
		got := drainBuilderRows(bs)
		total += len(got)
		if len(got) != len(want[p]) {
			t.Fatalf("reducer %d holds %d rows, want %d", p, len(got), len(want[p]))
		}
		for i, r := range got {
			if r.String() != want[p][i] {
				t.Fatalf("reducer %d row %d: got %s want %s", p, i, r.String(), want[p][i])
			}
		}
	}
	if total != len(rows) {
		t.Fatalf("scatter kept %d of %d rows", total, len(rows))
	}
}

// TestScatterSinglePartition: an empty key set routes everything, in
// order, to reducer 0 (the gather exchange).
func TestScatterSinglePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rows := randomRows(rng, 100)
	sc := NewScatter(testSchema(), nil, 1)
	b := NewBatch(testSchema())
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	sc.Add(b)
	buckets := sc.Seal()
	got := drainBuilderRows(buckets[0])
	if len(got) != len(rows) {
		t.Fatalf("gather kept %d of %d rows", len(got), len(rows))
	}
	for i := range rows {
		if got[i].String() != rows[i].String() {
			t.Fatalf("row %d: got %s want %s", i, got[i], rows[i])
		}
	}
}

// TestGrowPreservesNulls: Grow must keep previously written values and
// null bits intact (Resize wipes the bitmap; Grow is the builder path).
func TestGrowPreservesNulls(t *testing.T) {
	schema := sqltypes.NewSchema(sqltypes.Field{Name: "x", Type: sqltypes.Int64, Nullable: true})
	b := NewBatch(schema)
	for i := 0; i < 100; i++ {
		v := sqltypes.NewInt64(int64(i))
		if i%3 == 0 {
			v = sqltypes.Null
		}
		if err := b.AppendRow(sqltypes.Row{v}); err != nil {
			t.Fatal(err)
		}
	}
	col := b.Cols[0]
	col.Grow(50)
	for i := 100; i < 150; i++ {
		if col.IsNull(i) {
			t.Fatalf("grown position %d born null", i)
		}
	}
	for i := 0; i < 100; i++ {
		wantNull := i%3 == 0
		if col.IsNull(i) != wantNull {
			t.Fatalf("position %d null=%v after Grow, want %v", i, col.IsNull(i), wantNull)
		}
		if !wantNull && col.Int64s()[i] != int64(i) {
			t.Fatalf("position %d payload %d after Grow, want %d", i, col.Int64s()[i], i)
		}
	}
}
