package opt

import (
	"indexeddf/internal/expr"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

// Rule is one logical rewrite.
type Rule struct {
	Name  string
	Apply func(plan.Node) (plan.Node, error)
}

// DefaultRules is the logical optimization batch, applied in order to a
// fixpoint (bounded).
func DefaultRules() []Rule {
	return []Rule{
		{Name: "FoldConstants", Apply: foldConstants},
		{Name: "CombineFilters", Apply: combineFilters},
		{Name: "PushFilterBelowProject", Apply: pushFilterBelowProject},
		{Name: "PushFilterIntoJoin", Apply: pushFilterIntoJoin},
		{Name: "SimplifyFilters", Apply: simplifyFilters},
		{Name: "CombineLimits", Apply: combineLimits},
		{Name: "FuseTopN", Apply: fuseTopN},
	}
}

// Optimize runs the default logical rules to a bounded fixpoint.
// Planner.Optimize is the cost-aware variant sessions use; this stays
// for callers without a planner (view maintenance, tests).
func Optimize(n plan.Node) (plan.Node, error) {
	return optimizeWith(n, DefaultRules())
}

// optimizeWith runs a rule batch to a bounded fixpoint.
func optimizeWith(n plan.Node, rules []Rule) (plan.Node, error) {
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, r := range rules {
			out, err := r.Apply(n)
			if err != nil {
				return nil, err
			}
			if plan.TreeString(out) != plan.TreeString(n) {
				changed = true
			}
			n = out
		}
		if !changed {
			break
		}
	}
	return n, nil
}

// foldConstants pre-evaluates constant sub-expressions everywhere.
func foldConstants(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		switch t := node.(type) {
		case *plan.Filter:
			f, err := expr.FoldConstants(t.Cond)
			if err != nil {
				return nil, err
			}
			if f != t.Cond {
				return plan.NewFilter(f, t.Child), nil
			}
		case *plan.Project:
			changed := false
			out := make([]expr.Expr, len(t.Exprs))
			for i, e := range t.Exprs {
				f, err := expr.FoldConstants(e)
				if err != nil {
					return nil, err
				}
				out[i] = f
				if f != e {
					changed = true
				}
			}
			if changed {
				return plan.NewProject(out, t.Child), nil
			}
		case *plan.Join:
			if t.Cond != nil {
				f, err := expr.FoldConstants(t.Cond)
				if err != nil {
					return nil, err
				}
				if f != t.Cond {
					return plan.NewJoin(t.Type, t.Left, t.Right, f), nil
				}
			}
		}
		return node, nil
	})
}

// combineFilters merges stacked filters into one conjunction.
func combineFilters(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		f, ok := node.(*plan.Filter)
		if !ok {
			return node, nil
		}
		inner, ok := f.Child.(*plan.Filter)
		if !ok {
			return node, nil
		}
		return plan.NewFilter(expr.And(inner.Cond, f.Cond), inner.Child), nil
	})
}

// pushFilterBelowProject swaps Filter(Project(x)) into Project(Filter(x))
// when the projection is a pure column selection, letting filters reach
// scans and joins.
func pushFilterBelowProject(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		f, ok := node.(*plan.Filter)
		if !ok {
			return node, nil
		}
		p, ok := f.Child.(*plan.Project)
		if !ok {
			return node, nil
		}
		// The projection must map output ordinals to input ordinals 1:1.
		mapping := make([]int, len(p.Exprs))
		for i, e := range p.Exprs {
			b := unwrapBound(e)
			if b == nil {
				return node, nil
			}
			mapping[i] = b.Ordinal
		}
		rewritten, err := expr.Transform(f.Cond, func(e expr.Expr) (expr.Expr, error) {
			if b, ok := e.(*expr.Bound); ok {
				src := mapping[b.Ordinal]
				inField := p.Child.Schema().Field(src)
				return expr.B(src, inField.Type, inField.Name), nil
			}
			return e, nil
		})
		if err != nil {
			return nil, err
		}
		return plan.NewProject(p.Exprs, plan.NewFilter(rewritten, p.Child)), nil
	})
}

func unwrapBound(e expr.Expr) *expr.Bound {
	switch t := e.(type) {
	case *expr.Bound:
		return t
	case *expr.Alias:
		return unwrapBound(t.E)
	}
	return nil
}

// pushFilterIntoJoin moves single-side conjuncts of a filter above a join
// into the corresponding join input (inner joins; left side only for left
// outer joins).
func pushFilterIntoJoin(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		f, ok := node.(*plan.Filter)
		if !ok {
			return node, nil
		}
		j, ok := f.Child.(*plan.Join)
		if !ok {
			return node, nil
		}
		leftLen := j.Left.Schema().Len()
		var leftConj, rightConj, keep []expr.Expr
		for _, c := range expr.SplitConjunction(f.Cond) {
			lo, hi := ordinalRange(c)
			switch {
			case lo < 0:
				keep = append(keep, c) // no column refs; leave in place
			case hi < leftLen:
				leftConj = append(leftConj, c)
			case lo >= leftLen && j.Type == plan.InnerJoin:
				shifted, err := expr.Shift(c, -leftLen)
				if err != nil {
					return nil, err
				}
				rightConj = append(rightConj, shifted)
			default:
				keep = append(keep, c)
			}
		}
		if len(leftConj) == 0 && len(rightConj) == 0 {
			return node, nil
		}
		left, right := j.Left, j.Right
		if len(leftConj) > 0 {
			left = plan.NewFilter(expr.JoinConjuncts(leftConj), left)
		}
		if len(rightConj) > 0 {
			right = plan.NewFilter(expr.JoinConjuncts(rightConj), right)
		}
		var out plan.Node = plan.NewJoin(j.Type, left, right, j.Cond)
		if len(keep) > 0 {
			out = plan.NewFilter(expr.JoinConjuncts(keep), out)
		}
		return out, nil
	})
}

// ordinalRange returns the min and max bound ordinals in e, or (-1, -1).
func ordinalRange(e expr.Expr) (lo, hi int) {
	lo, hi = -1, -1
	expr.Walk(e, func(n expr.Expr) bool {
		if b, ok := n.(*expr.Bound); ok {
			if lo < 0 || b.Ordinal < lo {
				lo = b.Ordinal
			}
			if b.Ordinal > hi {
				hi = b.Ordinal
			}
		}
		return true
	})
	return lo, hi
}

// simplifyFilters removes literally-true filters (constant folding may
// produce them).
func simplifyFilters(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		f, ok := node.(*plan.Filter)
		if !ok {
			return node, nil
		}
		if lit, ok := f.Cond.(*expr.Literal); ok {
			if lit.V.T == sqltypes.Bool && lit.V.Bool() {
				return f.Child, nil
			}
		}
		return node, nil
	})
}

// combineLimits collapses Limit(Limit(x)) to the smaller bound.
func combineLimits(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		l, ok := node.(*plan.Limit)
		if !ok {
			return node, nil
		}
		inner, ok := l.Child.(*plan.Limit)
		if !ok {
			return node, nil
		}
		min := l.N
		if inner.N < min {
			min = inner.N
		}
		return plan.NewLimit(min, inner.Child), nil
	})
}

// fuseTopN recognizes ORDER BY ... LIMIT n — a Limit directly over a Sort
// — as a TopN node, the shape the physical layer can execute with bounded
// per-partition heaps instead of a full global sort. A Limit over an
// already-fused TopN tightens its bound (CombineLimits for the fused form).
func fuseTopN(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		l, ok := node.(*plan.Limit)
		if !ok {
			return node, nil
		}
		switch c := l.Child.(type) {
		case *plan.Sort:
			return plan.NewTopN(c.Orders, l.N, c.Child), nil
		case *plan.TopN:
			min := l.N
			if c.N < min {
				min = c.N
			}
			return plan.NewTopN(c.Orders, min, c.Child), nil
		}
		return node, nil
	})
}
