package opt

import (
	"indexeddf/internal/catalog"
	"indexeddf/internal/expr"
	"indexeddf/internal/physical"
	"indexeddf/internal/plan"
)

// tryViewScan is the materialized-view rewrite: an aggregation whose input
// is (optionally a filter over) an indexed base relation, and whose
// filter/groups/aggregates match a registered view, plans as a scan of the
// view's delta-maintained accumulator state instead of a
// scan→filter→partial/exchange/final aggregate over the table.
//
// Matching is canonical (ordinal-based, alias-insensitive) and requires
// the view to cover every requested aggregate; the view may maintain more,
// in which case only the matched columns are projected. The first matching
// view in name order wins. Disabled by PlannerConfig.DisableViewRewrite —
// the escape hatch benchmarks and equivalence tests use to force the
// from-scratch plan.
func (pl *Planner) tryViewScan(a *plan.Aggregate) (physical.Exec, bool) {
	if pl.cfg.DisableViewRewrite || pl.cfg.Views == nil {
		return nil, false
	}
	child := a.Child
	var filter expr.Expr
	if f, ok := child.(*plan.Filter); ok {
		filter = f.Cond
		child = f.Child
	}
	rel, ok := child.(*plan.Relation)
	if !ok {
		return nil, false
	}
	it, ok := rel.Table.(*catalog.IndexedTable)
	if !ok {
		return nil, false
	}
	for _, mv := range pl.cfg.Views.List() {
		if cols, ok := mv.MatchesAggregate(it.Core(), filter, a.Groups, a.Aggs); ok {
			return physical.NewViewScan(mv, cols, a.Schema()), true
		}
	}
	return nil, false
}

// AnsweredFromView walks a physical plan and returns the materialized
// views any ViewScan operators read from (EXPLAIN annotates with this).
func AnsweredFromView(e physical.Exec) []catalog.MaterializedView {
	var out []catalog.MaterializedView
	var rec func(physical.Exec)
	rec = func(n physical.Exec) {
		switch t := n.(type) {
		case *physical.ViewScanExec:
			out = append(out, t.View)
		case *physical.VecViewScanExec:
			out = append(out, t.View)
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(e)
	return out
}
