package opt

import (
	"sort"

	"indexeddf/internal/expr"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

// reorderFilterConjuncts orders each filter's conjuncts so the cheapest
// and most selective run first, minimizing expected per-row work under
// the cascade evaluation model (conjunct i only sees rows the first i-1
// kept): rank = cost_i / (1 - sel_i), ascending. Selectivities come
// from column statistics when the child carries them (structural
// defaults otherwise), costs from the expression shape. The sort is
// stable on the original position so the rule is deterministic and
// reaches the optimizer's fixpoint in one application.
//
// Reordering is semantics-preserving under SQL three-valued logic: a
// row passes iff every conjunct is TRUE, predicates are pure, and
// errors don't exist at this level (1/0 yields NULL, not a fault).
func reorderFilterConjuncts(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		f, ok := node.(*plan.Filter)
		if !ok {
			return node, nil
		}
		conjs := expr.SplitConjunction(f.Cond)
		if len(conjs) < 2 {
			return node, nil
		}
		childStats := f.Child.Stats()
		type ranked struct {
			e    expr.Expr
			pos  int
			rank float64
		}
		rs := make([]ranked, len(conjs))
		for i, c := range conjs {
			sel := plan.EstimateSelectivity(c, childStats)
			drop := 1 - sel
			if drop < 1e-6 {
				drop = 1e-6 // keeps-everything conjuncts go last
			}
			rs[i] = ranked{e: c, pos: i, rank: exprCost(c) / drop}
		}
		sort.SliceStable(rs, func(a, b int) bool { return rs[a].rank < rs[b].rank })
		changed := false
		out := make([]expr.Expr, len(rs))
		for i, r := range rs {
			out[i] = r.e
			if r.pos != i {
				changed = true
			}
		}
		if !changed {
			return node, nil
		}
		return plan.NewFilter(expr.JoinConjuncts(out), f.Child), nil
	})
}

// exprCost scores the per-row evaluation cost of an expression from its
// shape: string comparisons dominate numeric ones, arithmetic adds work,
// scalar functions are the most expensive.
func exprCost(e expr.Expr) float64 {
	if e == nil {
		return 0
	}
	switch t := e.(type) {
	case *expr.Literal:
		return 0
	case *expr.Bound:
		if t.Type() == sqltypes.String {
			return 2
		}
		return 1
	case *expr.Col:
		return 1
	case *expr.Alias:
		return exprCost(t.E)
	case *expr.Cmp:
		cost := exprCost(t.L) + exprCost(t.R)
		if t.L.Type() == sqltypes.String || t.R.Type() == sqltypes.String {
			return cost + 8
		}
		return cost + 1
	case *expr.Arith:
		return exprCost(t.L) + exprCost(t.R) + 2
	case *expr.Logic:
		return exprCost(t.L) + exprCost(t.R) + 1
	case *expr.Not:
		return exprCost(t.E) + 1
	case *expr.IsNull:
		return exprCost(t.E) + 1
	case *expr.Cast:
		return exprCost(t.E) + 4
	case *expr.Func:
		cost := 50.0
		for _, a := range t.Args {
			cost += exprCost(a)
		}
		return cost
	}
	return 4
}
