// Package opt implements the Catalyst-style query optimizer: an analyzer
// that binds column references, a batch of logical rewrite rules, and the
// physical planner whose index-aware strategies (the paper's §2
// contribution) route equality filters and equi-joins on indexed columns to
// the indexed physical operators, falling back to vanilla execution
// everywhere else.
package opt

import (
	"fmt"

	"indexeddf/internal/expr"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

// Analyze resolves every expression in the plan against its child schemas,
// bottom-up, and type-checks set operations. The result is a fully bound
// plan ready for optimization.
func Analyze(n plan.Node) (plan.Node, error) {
	return plan.Transform(n, func(node plan.Node) (plan.Node, error) {
		switch t := node.(type) {
		case *plan.Project:
			child := t.Child.Schema()
			if child == nil {
				return nil, fmt.Errorf("opt: project over unresolved child")
			}
			bound := make([]expr.Expr, len(t.Exprs))
			for i, e := range t.Exprs {
				b, err := bindExpr(e, child)
				if err != nil {
					return nil, err
				}
				bound[i] = b
			}
			return plan.NewProject(bound, t.Child), nil
		case *plan.Filter:
			child := t.Child.Schema()
			if child == nil {
				return nil, fmt.Errorf("opt: filter over unresolved child")
			}
			b, err := bindExpr(t.Cond, child)
			if err != nil {
				return nil, err
			}
			if bt := b.Type(); bt != sqltypes.Bool && bt != sqltypes.Unknown {
				return nil, fmt.Errorf("opt: filter condition %s has type %s, want BOOLEAN", b, bt)
			}
			return plan.NewFilter(b, t.Child), nil
		case *plan.Join:
			if t.Cond == nil {
				return node, nil
			}
			ls, rs := t.Left.Schema(), t.Right.Schema()
			if ls == nil || rs == nil {
				return nil, fmt.Errorf("opt: join over unresolved children")
			}
			b, err := bindExpr(t.Cond, ls.Concat(rs))
			if err != nil {
				return nil, err
			}
			return plan.NewJoin(t.Type, t.Left, t.Right, b), nil
		case *plan.Aggregate:
			child := t.Child.Schema()
			if child == nil {
				return nil, fmt.Errorf("opt: aggregate over unresolved child")
			}
			groups := make([]expr.Expr, len(t.Groups))
			for i, g := range t.Groups {
				b, err := bindExpr(g, child)
				if err != nil {
					return nil, err
				}
				groups[i] = b
			}
			aggs := make([]expr.Agg, len(t.Aggs))
			for i, a := range t.Aggs {
				aggs[i] = a
				if a.Arg != nil {
					b, err := bindExpr(a.Arg, child)
					if err != nil {
						return nil, err
					}
					aggs[i].Arg = b
				}
			}
			return plan.NewAggregate(groups, aggs, t.Child), nil
		case *plan.Sort:
			child := t.Child.Schema()
			if child == nil {
				return nil, fmt.Errorf("opt: sort over unresolved child")
			}
			orders := make([]plan.SortOrder, len(t.Orders))
			for i, o := range t.Orders {
				b, err := bindExpr(o.Expr, child)
				if err != nil {
					return nil, err
				}
				orders[i] = plan.SortOrder{Expr: b, Desc: o.Desc}
			}
			return plan.NewSort(orders, t.Child), nil
		case *plan.Union:
			if len(t.Inputs) == 0 {
				return nil, fmt.Errorf("opt: empty union")
			}
			first := t.Inputs[0].Schema()
			for _, in := range t.Inputs[1:] {
				s := in.Schema()
				if s == nil || s.Len() != first.Len() {
					return nil, fmt.Errorf("opt: union inputs have mismatched arity")
				}
				for i := range s.Fields {
					if s.Fields[i].Type != first.Fields[i].Type {
						return nil, fmt.Errorf("opt: union column %d type mismatch: %s vs %s",
							i, s.Fields[i].Type, first.Fields[i].Type)
					}
				}
			}
			return node, nil
		default:
			return node, nil
		}
	})
}

// bindExpr binds e against schema unless it is already resolved.
func bindExpr(e expr.Expr, schema *sqltypes.Schema) (expr.Expr, error) {
	if e.Resolved() {
		return e, nil
	}
	return expr.Bind(e, schema)
}
