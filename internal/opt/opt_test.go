package opt

import (
	"strings"
	"testing"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/physical"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

func colTable(name string, n int) catalog.Table {
	schema := sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "v", Type: sqltypes.String},
	)
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), sqltypes.NewString("x")}
	}
	return catalog.NewColumnTable(name, schema, [][]sqltypes.Row{rows})
}

func idxTable(t *testing.T, name string, n int) catalog.Table {
	t.Helper()
	schema := sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "v", Type: sqltypes.String},
	)
	ct, err := core.NewIndexedTable(schema, 0, core.Options{NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), sqltypes.NewString("x")}
	}
	if err := ct.Append(rows); err != nil {
		t.Fatal(err)
	}
	return catalog.NewIndexedTable(name, ct)
}

func analyze(t *testing.T, n plan.Node) plan.Node {
	t.Helper()
	out, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAnalyzeBindsFilter(t *testing.T) {
	rel := plan.NewRelation(colTable("t", 10), "")
	f := plan.NewFilter(expr.NewCmp(expr.Eq, expr.C("id"), expr.LitInt64(1)), rel)
	out := analyze(t, f)
	cond := out.(*plan.Filter).Cond
	if !cond.Resolved() {
		t.Fatalf("condition unresolved: %s", cond)
	}
	// Unknown column fails.
	bad := plan.NewFilter(expr.NewCmp(expr.Eq, expr.C("nope"), expr.LitInt64(1)), rel)
	if _, err := Analyze(bad); err == nil {
		t.Fatal("unknown column accepted")
	}
	// Non-boolean condition fails.
	nb := plan.NewFilter(expr.NewArith(expr.Add, expr.C("id"), expr.LitInt64(1)), rel)
	if _, err := Analyze(nb); err == nil {
		t.Fatal("non-boolean filter accepted")
	}
}

func TestAnalyzeJoinBindsAgainstConcat(t *testing.T) {
	l := plan.NewRelation(colTable("l", 10), "")
	r := plan.NewRelation(colTable("r", 10), "")
	j := plan.NewJoin(plan.InnerJoin, l, r,
		expr.NewCmp(expr.Eq, expr.C("l.id"), expr.C("r.id")))
	out := analyze(t, j).(*plan.Join)
	lb, rb, ok := expr.ColumnEquality(out.Cond)
	if !ok || lb.Ordinal != 0 || rb.Ordinal != 2 {
		t.Fatalf("join cond = %s", out.Cond)
	}
}

func TestAnalyzeUnionChecks(t *testing.T) {
	a := plan.NewRelation(colTable("a", 5), "")
	b := plan.NewRelation(colTable("b", 5), "")
	if _, err := Analyze(plan.NewUnion(a, b)); err != nil {
		t.Fatalf("compatible union rejected: %v", err)
	}
	narrow := plan.NewProject([]expr.Expr{expr.B(0, sqltypes.Int64, "id")}, a)
	if _, err := Analyze(plan.NewUnion(narrow, b)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestOptimizeFoldsAndSimplifies(t *testing.T) {
	rel := plan.NewRelation(colTable("t", 10), "")
	// WHERE 1 = 1 folds to true and the filter disappears.
	f := plan.NewFilter(expr.NewCmp(expr.Eq, expr.LitInt64(1), expr.LitInt64(1)), rel)
	out, err := Optimize(analyze(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(*plan.Relation); !ok {
		t.Fatalf("trivial filter not removed:\n%s", plan.TreeString(out))
	}
}

func TestOptimizeCombinesFilters(t *testing.T) {
	rel := plan.NewRelation(colTable("t", 10), "")
	f := plan.NewFilter(expr.NewCmp(expr.Gt, expr.C("id"), expr.LitInt64(1)),
		plan.NewFilter(expr.NewCmp(expr.Lt, expr.C("id"), expr.LitInt64(9)), rel))
	out, err := Optimize(analyze(t, f))
	if err != nil {
		t.Fatal(err)
	}
	top, ok := out.(*plan.Filter)
	if !ok {
		t.Fatalf("top not filter:\n%s", plan.TreeString(out))
	}
	if _, ok := top.Child.(*plan.Relation); !ok {
		t.Fatalf("filters not combined:\n%s", plan.TreeString(out))
	}
	if len(expr.SplitConjunction(top.Cond)) != 2 {
		t.Fatalf("cond = %s", top.Cond)
	}
}

func TestOptimizePushesFilterIntoJoin(t *testing.T) {
	l := plan.NewRelation(colTable("l", 10), "")
	r := plan.NewRelation(colTable("r", 10), "")
	j := plan.NewJoin(plan.InnerJoin, l, r,
		expr.NewCmp(expr.Eq, expr.C("l.id"), expr.C("r.id")))
	f := plan.NewFilter(expr.And(
		expr.NewCmp(expr.Gt, expr.C("l.id"), expr.LitInt64(2)),
		expr.NewCmp(expr.Lt, expr.C("r.id"), expr.LitInt64(8))), j)
	out, err := Optimize(analyze(t, f))
	if err != nil {
		t.Fatal(err)
	}
	tree := plan.TreeString(out)
	jn, ok := out.(*plan.Join)
	if !ok {
		t.Fatalf("top is %T:\n%s", out, tree)
	}
	if _, ok := jn.Left.(*plan.Filter); !ok {
		t.Fatalf("left conjunct not pushed:\n%s", tree)
	}
	if _, ok := jn.Right.(*plan.Filter); !ok {
		t.Fatalf("right conjunct not pushed:\n%s", tree)
	}
}

func TestOptimizePushFilterBelowProject(t *testing.T) {
	rel := plan.NewRelation(colTable("t", 10), "")
	p := plan.NewProject([]expr.Expr{expr.C("v"), expr.C("id")}, rel)
	f := plan.NewFilter(expr.NewCmp(expr.Eq, expr.C("id"), expr.LitInt64(3)), p)
	out, err := Optimize(analyze(t, f))
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := out.(*plan.Project)
	if !ok {
		t.Fatalf("top is %T:\n%s", out, plan.TreeString(out))
	}
	inner, ok := proj.Child.(*plan.Filter)
	if !ok {
		t.Fatalf("filter not pushed below project:\n%s", plan.TreeString(out))
	}
	// The pushed filter must address the relation's ordinal of id (0).
	col, _, ok := expr.EqualityWithLiteral(inner.Cond)
	if !ok || col.Ordinal != 0 {
		t.Fatalf("pushed cond = %s", inner.Cond)
	}
}

func TestOptimizeCombineLimits(t *testing.T) {
	rel := plan.NewRelation(colTable("t", 100), "")
	l := plan.NewLimit(5, plan.NewLimit(10, rel))
	out, err := Optimize(analyze(t, l))
	if err != nil {
		t.Fatal(err)
	}
	lim, ok := out.(*plan.Limit)
	if !ok || lim.N != 5 {
		t.Fatalf("limits not combined:\n%s", plan.TreeString(out))
	}
	if _, ok := lim.Child.(*plan.Relation); !ok {
		t.Fatalf("nested limit survived:\n%s", plan.TreeString(out))
	}
}

func planOf(t *testing.T, n plan.Node) physical.Exec {
	t.Helper()
	analyzed := analyze(t, n)
	optimized, err := Optimize(analyzed)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NewPlanner(DefaultPlannerConfig()).Plan(optimized)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func TestPlannerSelectsIndexLookup(t *testing.T) {
	rel := plan.NewRelation(idxTable(t, "it", 100), "")
	f := plan.NewFilter(expr.NewCmp(expr.Eq, expr.C("id"), expr.LitInt64(5)), rel)
	exec := planOf(t, f)
	if !strings.Contains(physical.TreeString(exec), "IndexLookup") {
		t.Fatalf("no index lookup:\n%s", physical.TreeString(exec))
	}
	// Equality on the non-key column must not use the index.
	f2 := plan.NewFilter(expr.NewCmp(expr.Eq, expr.C("v"), expr.LitString("x")), rel)
	exec2 := planOf(t, f2)
	if strings.Contains(physical.TreeString(exec2), "IndexLookup") {
		t.Fatalf("index lookup on non-key:\n%s", physical.TreeString(exec2))
	}
}

func TestPlannerSelectsIndexedJoin(t *testing.T) {
	l := plan.NewRelation(idxTable(t, "it", 100), "")
	r := plan.NewRelation(colTable("t", 50), "")
	j := plan.NewJoin(plan.InnerJoin, l, r,
		expr.NewCmp(expr.Eq, expr.C("it.id"), expr.C("t.id")))
	exec := planOf(t, j)
	tree := physical.TreeString(exec)
	if !strings.Contains(tree, "IndexedJoin") {
		t.Fatalf("no indexed join:\n%s", tree)
	}
	// Small probe side => broadcast mode.
	if !strings.Contains(tree, "broadcast") {
		t.Fatalf("expected broadcast probe:\n%s", tree)
	}
}

func TestPlannerIndexedJoinShuffleWhenProbeLarge(t *testing.T) {
	l := plan.NewRelation(idxTable(t, "it", 100), "")
	r := plan.NewRelation(colTable("t", 50_000), "")
	j := plan.NewJoin(plan.InnerJoin, l, r,
		expr.NewCmp(expr.Eq, expr.C("it.id"), expr.C("t.id")))
	exec := planOf(t, j)
	tree := physical.TreeString(exec)
	if !strings.Contains(tree, "IndexedJoin Inner shuffle") {
		t.Fatalf("expected shuffle probe:\n%s", tree)
	}
}

func TestPlannerLeftOuterWithIndexedLeftFallsBack(t *testing.T) {
	// LeftOuter with the indexed side on the left would not preserve probe
	// rows; the planner must fall back to a hash join.
	l := plan.NewRelation(idxTable(t, "it", 100), "")
	r := plan.NewRelation(colTable("t", 50), "")
	j := plan.NewJoin(plan.LeftOuterJoin, l, r,
		expr.NewCmp(expr.Eq, expr.C("it.id"), expr.C("t.id")))
	exec := planOf(t, j)
	tree := physical.TreeString(exec)
	if strings.Contains(tree, "IndexedJoin") {
		t.Fatalf("unsound indexed left-outer join:\n%s", tree)
	}
}

func TestPlannerVanillaJoinStrategies(t *testing.T) {
	small := plan.NewRelation(colTable("s", 10), "")
	big := plan.NewRelation(colTable("b", 100_000), "")
	big2 := plan.NewRelation(colTable("b2", 100_000), "")
	// small right side -> broadcast.
	j1 := planOf(t, plan.NewJoin(plan.InnerJoin, big, small,
		expr.NewCmp(expr.Eq, expr.C("b.id"), expr.C("s.id"))))
	if !strings.Contains(physical.TreeString(j1), "BroadcastHashJoin") {
		t.Fatalf("no broadcast:\n%s", physical.TreeString(j1))
	}
	// both big -> shuffle.
	j2 := planOf(t, plan.NewJoin(plan.InnerJoin, big, big2,
		expr.NewCmp(expr.Eq, expr.C("b.id"), expr.C("b2.id"))))
	if !strings.Contains(physical.TreeString(j2), "ShuffleHashJoin") {
		t.Fatalf("no shuffle join:\n%s", physical.TreeString(j2))
	}
	// non-equi -> nested loop.
	j3 := planOf(t, plan.NewJoin(plan.InnerJoin, small, small,
		expr.NewCmp(expr.Lt, expr.C("s.id"), expr.LitInt64(5))))
	if !strings.Contains(physical.TreeString(j3), "NestedLoopJoin") {
		t.Fatalf("no nested loop:\n%s", physical.TreeString(j3))
	}
}

func TestPlannerAggregateShape(t *testing.T) {
	rel := plan.NewRelation(colTable("t", 100), "")
	a := plan.NewAggregate([]expr.Expr{expr.C("v")},
		[]expr.Agg{{Func: expr.CountStarAgg, Name: "c"}}, rel)
	exec := planOf(t, a)
	tree := physical.TreeString(exec)
	for _, want := range []string{"HashAggregate(final)", "Exchange hash", "HashAggregate(partial)"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("aggregate plan missing %q:\n%s", want, tree)
		}
	}
	// Global aggregate exchanges to a single partition.
	g := plan.NewAggregate(nil, []expr.Agg{{Func: expr.CountStarAgg}}, rel)
	gt := physical.TreeString(planOf(t, g))
	if !strings.Contains(gt, "Exchange single") {
		t.Fatalf("global agg plan:\n%s", gt)
	}
}

func TestPlannerProjectionPushdown(t *testing.T) {
	rel := plan.NewRelation(colTable("t", 100), "")
	p := plan.NewProject([]expr.Expr{expr.C("v")}, rel)
	tree := physical.TreeString(planOf(t, p))
	if !strings.Contains(tree, "ColumnarScan t cols=[1]") {
		t.Fatalf("projection not pushed into scan:\n%s", tree)
	}
	// Computed projections stay as ProjectExec.
	p2 := plan.NewProject([]expr.Expr{expr.NewArith(expr.Add, expr.C("id"), expr.LitInt64(1))}, rel)
	tree2 := physical.TreeString(planOf(t, p2))
	if !strings.Contains(tree2, "Project") {
		t.Fatalf("computed projection lost:\n%s", tree2)
	}
}
