package opt

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/expr"
	"indexeddf/internal/physical"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

// PlannerConfig tunes the physical planning heuristics.
type PlannerConfig struct {
	// ShufflePartitions is the reduce-side partition count for exchanges.
	ShufflePartitions int
	// BroadcastThreshold is the estimated row count under which a join
	// side is broadcast instead of shuffled.
	BroadcastThreshold int64
	// SortPartitions is the reduce-side partition count for a vectorized
	// sort's final merge stage when spilling is enabled (the
	// range-partitioned parallel merge). 0 follows ShufflePartitions;
	// 1 forces the single k-way merge task (the pre-range behavior, kept
	// as the ablation baseline).
	SortPartitions int
	// DisableVectorized turns off the batch-at-a-time operator rewrite,
	// forcing row-at-a-time execution everywhere (benchmarks use it to
	// measure the vectorized engine against the row engine).
	DisableVectorized bool
	// Views is the session's materialized-view registry; aggregations
	// matching a registered view plan as a scan of its maintained state.
	// nil disables the rewrite.
	Views *catalog.ViewRegistry
	// DisableViewRewrite turns off the materialized-view rewrite even when
	// views are registered (the escape hatch mirroring DisableVectorized).
	DisableViewRewrite bool
	// DisableStats turns off statistics-driven planning: the plan-time
	// conjunct reorder rule is skipped and cost estimates fall back to
	// the structural defaults. Collection on the tables is governed by
	// the session, not here.
	DisableStats bool
	// DisableAdaptiveFilter turns off runtime conjunct re-ranking inside
	// vectorized filters; multi-conjunct predicates evaluate as one fused
	// kernel in plan order.
	DisableAdaptiveFilter bool
}

// DefaultPlannerConfig mirrors small-cluster Spark defaults scaled to one
// process.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{ShufflePartitions: 4, BroadcastThreshold: 10_000}
}

// Planner lowers optimized logical plans to physical plans.
type Planner struct {
	cfg PlannerConfig
}

// NewPlanner builds a planner.
func NewPlanner(cfg PlannerConfig) *Planner {
	if cfg.ShufflePartitions <= 0 {
		cfg.ShufflePartitions = 4
	}
	if cfg.BroadcastThreshold <= 0 {
		cfg.BroadcastThreshold = 10_000
	}
	if cfg.SortPartitions <= 0 {
		cfg.SortPartitions = cfg.ShufflePartitions
	}
	return &Planner{cfg: cfg}
}

// Optimize runs the logical rule batch with the planner's cost model:
// the package-level rules plus, when statistics are enabled, the
// conjunct reorder rule (cheapest-most-selective-first filters).
func (pl *Planner) Optimize(n plan.Node) (plan.Node, error) {
	rules := DefaultRules()
	if !pl.cfg.DisableStats {
		rules = append(rules, Rule{Name: "ReorderFilterConjuncts", Apply: reorderFilterConjuncts})
	}
	return optimizeWith(n, rules)
}

// Plan lowers an analyzed, optimized logical plan and — unless disabled —
// vectorizes every subtree whose operators are batch-capable, leaving row
// operators (bridged by batch/row adapters) at the boundaries.
func (pl *Planner) Plan(n plan.Node) (physical.Exec, error) {
	e, err := pl.plan(n)
	if err != nil {
		return nil, err
	}
	if !pl.cfg.DisableVectorized {
		e = vectorize(e, false) // the root feeds the driver's row collect
		setSortParallelism(e, pl.cfg.SortPartitions)
		if !pl.cfg.DisableAdaptiveFilter {
			setAdaptiveFilters(e)
		}
	}
	return e, nil
}

// setAdaptiveFilters marks every vectorized filter in the finished tree
// as eligible for runtime conjunct re-ranking (a post-vectorize pass,
// like setSortParallelism).
func setAdaptiveFilters(e physical.Exec) {
	if f, ok := e.(*physical.VecFilterExec); ok {
		f.Adaptive = true
	}
	for _, c := range e.Children() {
		setAdaptiveFilters(c)
	}
}

// setSortParallelism stamps the configured range-merge width onto every
// vectorized sort in the finished tree (a post-vectorize pass: the
// rewrite itself builds VecSortExec nodes in several places).
func setSortParallelism(e physical.Exec, n int) {
	if s, ok := e.(*physical.VecSortExec); ok {
		s.Parallel = n
	}
	for _, c := range e.Children() {
		setSortParallelism(c, n)
	}
}

// plan is the recursive strategy dispatch (row operators only; the
// vectorize pass rewrites the finished tree).
func (pl *Planner) plan(n plan.Node) (physical.Exec, error) {
	switch t := n.(type) {
	case *plan.Relation:
		return pl.planScan(t, nil, t.Schema())
	case *plan.Values:
		return physical.NewValues(t.Rows, t.Schema()), nil
	case *plan.Filter:
		return pl.planFilter(t)
	case *plan.Project:
		return pl.planProject(t)
	case *plan.Join:
		return pl.planJoin(t)
	case *plan.Aggregate:
		return pl.planAggregate(t)
	case *plan.Sort:
		child, err := pl.plan(t.Child)
		if err != nil {
			return nil, err
		}
		return physical.NewSort(child, physOrders(t.Orders)), nil
	case *plan.TopN:
		// Lower to the row pattern (global sort + limit); the vectorize
		// pass fuses it into VecTopN when the keys compile to kernels, and
		// the row engine executes it as written.
		child, err := pl.plan(t.Child)
		if err != nil {
			return nil, err
		}
		return physical.NewLimit(physical.NewSort(child, physOrders(t.Orders)), t.N), nil
	case *plan.Limit:
		child, err := pl.plan(t.Child)
		if err != nil {
			return nil, err
		}
		return physical.NewLimit(child, t.N), nil
	case *plan.Union:
		ins := make([]physical.Exec, len(t.Inputs))
		for i, in := range t.Inputs {
			e, err := pl.plan(in)
			if err != nil {
				return nil, err
			}
			ins[i] = e
		}
		return physical.NewUnion(ins...), nil
	default:
		return nil, fmt.Errorf("opt: no physical strategy for %T", n)
	}
}

// physOrders converts logical sort orders to physical ones.
func physOrders(orders []plan.SortOrder) []physical.SortOrder {
	out := make([]physical.SortOrder, len(orders))
	for i, o := range orders {
		out[i] = physical.SortOrder{Expr: o.Expr, Desc: o.Desc}
	}
	return out
}

// planScan lowers a relation, optionally with a pushed-down projection.
func (pl *Planner) planScan(r *plan.Relation, projection []int, outSchema *sqltypes.Schema) (physical.Exec, error) {
	switch t := r.Table.(type) {
	case *catalog.ColumnTable:
		return physical.NewColumnarScan(t, projection, outSchema), nil
	case *catalog.IndexedTable:
		return physical.NewIndexedScan(t, projection, outSchema), nil
	case catalog.MaterializedView:
		// Querying a view by name: compose the view's visible-column
		// mapping with any pushed-down projection.
		out := t.OutCols()
		cols := out
		if projection != nil {
			cols = make([]int, len(projection))
			for i, c := range projection {
				cols[i] = out[c]
			}
		}
		return physical.NewViewScan(t, cols, outSchema), nil
	default:
		return nil, fmt.Errorf("opt: unknown table type %T", r.Table)
	}
}

// planFilter applies the paper's index-aware rule: an equality conjunct on
// the indexed column of an indexed relation becomes an IndexLookup, with
// the remaining conjuncts as a residual predicate. Everything else falls
// back to a scan + filter.
func (pl *Planner) planFilter(f *plan.Filter) (physical.Exec, error) {
	if rel, ok := f.Child.(*plan.Relation); ok {
		if it, ok := rel.Table.(*catalog.IndexedTable); ok {
			conjuncts := expr.SplitConjunction(f.Cond)
			for i, c := range conjuncts {
				// The key may be a literal or a prepared-statement
				// placeholder; placeholders are substituted at bind time.
				col, key, ok := expr.EqualityWithKeyConst(c)
				if !ok || col.Ordinal != it.KeyColumn() {
					continue
				}
				rest := make([]expr.Expr, 0, len(conjuncts)-1)
				rest = append(rest, conjuncts[:i]...)
				rest = append(rest, conjuncts[i+1:]...)
				return physical.NewIndexLookupKeyExpr(it, key, expr.JoinConjuncts(rest), rel.Schema()), nil
			}
		}
	}
	child, err := pl.plan(f.Child)
	if err != nil {
		return nil, err
	}
	return physical.NewFilter(child, f.Cond), nil
}

// planProject pushes pure column selections into scans (columnar pruning /
// row-store column decode); everything else is a ProjectExec.
func (pl *Planner) planProject(p *plan.Project) (physical.Exec, error) {
	if rel, ok := p.Child.(*plan.Relation); ok {
		cols := make([]int, len(p.Exprs))
		simple := true
		for i, e := range p.Exprs {
			b := unwrapBound(e)
			if b == nil {
				simple = false
				break
			}
			cols[i] = b.Ordinal
		}
		if simple {
			return pl.planScan(rel, cols, p.Schema())
		}
	}
	child, err := pl.plan(p.Child)
	if err != nil {
		return nil, err
	}
	return physical.NewProject(child, p.Exprs, p.Schema()), nil
}

// equiPair is one `left.col = right.col` conjunct of a join condition.
type equiPair struct {
	left, right int // ordinals within each side
}

// splitJoinCondition classifies a bound join condition into equi pairs and
// residual conjuncts (residuals stay bound against the concatenated row).
func splitJoinCondition(cond expr.Expr, leftLen int) (pairs []equiPair, residual []expr.Expr) {
	if cond == nil {
		return nil, nil
	}
	for _, c := range expr.SplitConjunction(cond) {
		if l, r, ok := expr.ColumnEquality(c); ok {
			switch {
			case l.Ordinal < leftLen && r.Ordinal >= leftLen:
				pairs = append(pairs, equiPair{left: l.Ordinal, right: r.Ordinal - leftLen})
				continue
			case r.Ordinal < leftLen && l.Ordinal >= leftLen:
				pairs = append(pairs, equiPair{left: r.Ordinal, right: l.Ordinal - leftLen})
				continue
			}
		}
		residual = append(residual, c)
	}
	return pairs, residual
}

// planJoin implements the join strategies, trying the paper's indexed join
// first: if either side is an indexed relation whose index column is a join
// key, the indexed side becomes the build side and the other side probes —
// shuffled to the index partitioning, or broadcast when small.
func (pl *Planner) planJoin(j *plan.Join) (physical.Exec, error) {
	leftLen := j.Left.Schema().Len()
	pairs, residualList := splitJoinCondition(j.Cond, leftLen)
	residual := expr.JoinConjuncts(residualList)
	outSchema := j.Schema()

	if len(pairs) > 0 {
		// Index-aware strategy.
		if exec, ok, err := pl.tryIndexedJoin(j, pairs, residual, outSchema); err != nil {
			return nil, err
		} else if ok {
			return exec, nil
		}
		// Vanilla equi-join strategies.
		left, err := pl.plan(j.Left)
		if err != nil {
			return nil, err
		}
		right, err := pl.plan(j.Right)
		if err != nil {
			return nil, err
		}
		leftKeys := make([]int, len(pairs))
		rightKeys := make([]int, len(pairs))
		for i, p := range pairs {
			leftKeys[i] = p.left
			rightKeys[i] = p.right
		}
		jt := physical.InnerJoin
		if j.Type == plan.LeftOuterJoin {
			jt = physical.LeftOuterJoin
		}
		rightRows := j.Right.Stats().Rows
		leftRows := j.Left.Stats().Rows
		if rightRows <= pl.cfg.BroadcastThreshold {
			return physical.NewBroadcastHashJoin(left, right, leftKeys, rightKeys, true, jt, residual), nil
		}
		if leftRows <= pl.cfg.BroadcastThreshold && j.Type == plan.InnerJoin {
			return physical.NewBroadcastHashJoin(right, left, rightKeys, leftKeys, false, jt, residual), nil
		}
		return physical.NewShuffleHashJoin(left, right, leftKeys, rightKeys, jt, residual, pl.cfg.ShufflePartitions), nil
	}

	// Non-equi join: nested loop with the full condition.
	left, err := pl.plan(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := pl.plan(j.Right)
	if err != nil {
		return nil, err
	}
	jt := physical.InnerJoin
	if j.Type == plan.LeftOuterJoin {
		jt = physical.LeftOuterJoin
	}
	return physical.NewNestedLoopJoin(left, right, jt, j.Cond), nil
}

// tryIndexedJoin returns an IndexedJoinExec when one join side is an
// indexed relation keyed on a join column.
func (pl *Planner) tryIndexedJoin(j *plan.Join, pairs []equiPair, residual expr.Expr,
	outSchema *sqltypes.Schema) (physical.Exec, bool, error) {
	leftLen := j.Left.Schema().Len()

	asIndexed := func(n plan.Node) *catalog.IndexedTable {
		rel, ok := n.(*plan.Relation)
		if !ok {
			return nil
		}
		it, _ := rel.Table.(*catalog.IndexedTable)
		return it
	}

	build := func(indexed *catalog.IndexedTable, probeSide plan.Node, probeKey int,
		indexedIsLeft bool, extraResidual []expr.Expr) (physical.Exec, bool, error) {
		probe, err := pl.plan(probeSide)
		if err != nil {
			return nil, false, err
		}
		res := residual
		if len(extraResidual) > 0 {
			all := append([]expr.Expr{}, extraResidual...)
			if res != nil {
				all = append(all, res)
			}
			res = expr.JoinConjuncts(all)
		}
		jt := physical.InnerJoin
		if j.Type == plan.LeftOuterJoin {
			jt = physical.LeftOuterJoin
		}
		broadcast := probeSide.Stats().Rows <= pl.cfg.BroadcastThreshold
		return physical.NewIndexedJoin(indexed, probe, probeKey, indexedIsLeft, broadcast, jt, res, outSchema), true, nil
	}

	// extraEqui converts unused equi pairs back into residual predicates
	// bound against the concatenated row.
	extraEqui := func(skip int) []expr.Expr {
		var out []expr.Expr
		ls, rs := j.Left.Schema(), j.Right.Schema()
		for i, p := range pairs {
			if i == skip {
				continue
			}
			lf, rf := ls.Field(p.left), rs.Field(p.right)
			out = append(out, expr.NewCmp(expr.Eq,
				expr.B(p.left, lf.Type, lf.Name),
				expr.B(leftLen+p.right, rf.Type, rf.Name)))
		}
		return out
	}

	// Left side indexed: valid for inner joins (the probe side is right;
	// a left outer join must preserve the probe side, which would be the
	// indexed side here, so fall back).
	if it := asIndexed(j.Left); it != nil && j.Type == plan.InnerJoin {
		for i, p := range pairs {
			if p.left == it.KeyColumn() {
				return build(it, j.Right, p.right, true, extraEqui(i))
			}
		}
	}
	// Right side indexed: valid for inner and left outer joins (probe =
	// left, preserved).
	if it := asIndexed(j.Right); it != nil {
		for i, p := range pairs {
			if p.right == it.KeyColumn() {
				return build(it, j.Left, p.left, false, extraEqui(i))
			}
		}
	}
	return nil, false, nil
}

// planAggregate lowers an aggregation to partial/exchange/final — unless a
// registered materialized view already maintains exactly this aggregation,
// in which case it plans as a scan of the view's state (see viewrewrite.go).
func (pl *Planner) planAggregate(a *plan.Aggregate) (physical.Exec, error) {
	if exec, ok := pl.tryViewScan(a); ok {
		return exec, nil
	}
	child, err := pl.plan(a.Child)
	if err != nil {
		return nil, err
	}
	partialSchema := physical.PartialSchema(a.Groups, a.Aggs)
	partial := physical.NewHashAgg(child, a.Groups, a.Aggs, physical.AggPartial, partialSchema)
	var exch physical.Exec
	if len(a.Groups) == 0 {
		exch = physical.NewExchange(partial, nil, 1)
	} else {
		keys := make([]int, len(a.Groups))
		for i := range keys {
			keys[i] = i
		}
		exch = physical.NewExchange(partial, keys, pl.cfg.ShufflePartitions)
	}
	return physical.NewHashAgg(exch, a.Groups, a.Aggs, physical.AggFinal, a.Schema()), nil
}
