package opt

import (
	"indexeddf/internal/expr"
	"indexeddf/internal/physical"
)

// vectorize rewrites a physical plan top-down, swapping each row operator
// for its vectorized counterpart whenever the operator qualifies AND the
// swap pays for itself:
//
//   - filter / project / partial-and-complete aggregate vectorize whenever
//     their expressions compile to kernels (expr.CompileVec) — their
//     per-row savings dominate regardless of who consumes the output;
//   - the columnar scan always vectorizes (its batches are zero-copy
//     slices of the cache, so the batch form costs nothing);
//   - the indexed (row-store) scan and the inner hash / indexed joins
//     vectorize only when batchSink says the parent ingests batches:
//     their columnar output costs real work to build, which is wasted if
//     the very next step materializes rows again (a collect or a sort).
//     Wide join output re-materialized row-by-row is slower than the row
//     join — measured, not hypothetical;
//   - an exchange feeding a batch consumer becomes the columnar exchange
//     (batches scatter column-wise through the shuffle service and stream
//     back out sealed), so the final aggregate phase now vectorizes too:
//     it merges accumulator batches straight off the exchange. A shuffle
//     GROUP BY is columnar from scan through final merge;
//   - outer joins always stay row-based.
//
// Mixed plans need no glue: every vectorized operator accepts row parents
// through the batch adapters and presents a row iterator to row parents,
// so the fallback boundary is simply wherever the rewrite stops.
func vectorize(e physical.Exec, batchSink bool) physical.Exec {
	if rowBound(e) {
		// Every leaf of this subtree is a point lookup (or literal rows):
		// the data volume is a handful of rows, where per-query kernel
		// compilation and batch construction cost more than they save.
		// The paper's own Figure 3 queries live here — sub-millisecond
		// index-assisted reads must not pay vectorization overhead.
		return e
	}
	switch t := e.(type) {
	case *physical.ColumnarScanExec:
		return physical.NewVecColumnarScan(t.Table, t.Projection, t.Schema())
	case *physical.IndexedScanExec:
		if batchSink {
			return physical.NewVecIndexedScan(t.Table, t.Projection, t.Schema())
		}
		return t
	case *physical.ViewScanExec:
		// View state is already aggregated (small); batch it only when the
		// parent actually consumes batches (a HAVING filter, projection or
		// join over the view-answered aggregate).
		if batchSink {
			return physical.NewVecViewScan(t.View, t.Cols, t.Schema())
		}
		return t
	case *physical.FilterExec:
		if expr.CanVectorize(t.Cond) {
			return physical.NewVecFilter(vectorize(t.Child, true), t.Cond)
		}
		return physical.NewFilter(vectorize(t.Child, false), t.Cond)
	case *physical.ProjectExec:
		if allVectorizable(t.Exprs) {
			return physical.NewVecProject(vectorize(t.Child, true), t.Exprs, t.Schema())
		}
		return physical.NewProject(vectorize(t.Child, false), t.Exprs, t.Schema())
	case *physical.HashAggExec:
		if t.Mode == physical.AggFinal {
			// The final merge is positional (leading group columns,
			// accumulator columns after) — no expression compilation, so
			// it vectorizes regardless of what the aggregates compute, and
			// its child exchange sees a batch sink.
			return physical.NewVecHashAgg(vectorize(t.Child, true), t.Groups, t.Aggs, t.Mode, t.Schema())
		}
		if allVectorizable(t.Groups) && aggsVectorizable(t.Aggs) {
			return physical.NewVecHashAgg(vectorize(t.Child, true), t.Groups, t.Aggs, t.Mode, t.Schema())
		}
		return physical.NewHashAgg(vectorize(t.Child, false), t.Groups, t.Aggs, t.Mode, t.Schema())
	case *physical.BroadcastHashJoinExec:
		// The build side is collected to rows either way; only the stream
		// side flows as batches through the vectorized probe.
		if batchSink && t.Type == physical.InnerJoin && residualVectorizable(t.Residual) {
			return physical.NewVecBroadcastHashJoin(vectorize(t.Stream, true), vectorize(t.Build, false),
				t.StreamKeys, t.BuildKeys, t.BuildIsRight, t.Residual)
		}
		return physical.NewBroadcastHashJoin(vectorize(t.Stream, false), vectorize(t.Build, false),
			t.StreamKeys, t.BuildKeys, t.BuildIsRight, t.Type, t.Residual)
	case *physical.ShuffleHashJoinExec:
		// Both sides cross a shuffle (row boundary) regardless.
		if batchSink && t.Type == physical.InnerJoin && residualVectorizable(t.Residual) {
			return physical.NewVecShuffleHashJoin(vectorize(t.Left, false), vectorize(t.Right, false),
				t.LeftKeys, t.RightKeys, t.Residual, t.NumPartitions)
		}
		return physical.NewShuffleHashJoin(vectorize(t.Left, false), vectorize(t.Right, false),
			t.LeftKeys, t.RightKeys, t.Type, t.Residual, t.NumPartitions)
	case *physical.IndexedJoinExec:
		// The probe side is either collected (broadcast) or shuffled —
		// a row boundary in both modes.
		if batchSink && t.Type == physical.InnerJoin && residualVectorizable(t.Residual) {
			return physical.NewVecIndexedJoin(t.Indexed, vectorize(t.Probe, false), t.ProbeKey,
				t.IndexedIsLeft, t.Broadcast, t.Residual, t.Schema())
		}
		return physical.NewIndexedJoin(t.Indexed, vectorize(t.Probe, false), t.ProbeKey,
			t.IndexedIsLeft, t.Broadcast, t.Type, t.Residual, t.Schema())
	case *physical.NestedLoopJoinExec:
		return physical.NewNestedLoopJoin(vectorize(t.Left, false), vectorize(t.Right, false), t.Type, t.Cond)
	case *physical.SortExec:
		// The batch sort ingests batches (typed-lane key extraction, index
		// sort, gather into sorted runs, k-way merge), so its child sees a
		// batch sink — the gather exchange under the old row sort is gone.
		if ordersVectorizable(t.Orders) {
			return physical.NewVecSort(vectorize(t.Child, true), t.Orders)
		}
		return physical.NewSort(vectorize(t.Child, false), t.Orders)
	case *physical.LimitExec:
		// LIMIT n directly over a sort is a top-n: bounded per-partition
		// heaps and an n-row merge replace the full global sort, as long as
		// n keeps the heaps small (past the threshold the batch sort's
		// run-merge with a limit is the better plan).
		if s, ok := t.Child.(*physical.SortExec); ok && ordersVectorizable(s.Orders) {
			if t.N >= 0 && t.N <= maxVecTopN {
				return physical.NewVecTopN(vectorize(s.Child, true), s.Orders, t.N)
			}
			return physical.NewLimit(physical.NewVecSort(vectorize(s.Child, true), s.Orders), t.N)
		}
		return physical.NewLimit(vectorize(t.Child, false), t.N)
	case *physical.ExchangeExec:
		if batchSink {
			// The consumer ingests batches, so keep the stage boundary
			// columnar: the child feeds the scatter kernel batch-at-a-time
			// and the consumer splices the reduce-side batch stream.
			return physical.NewVecExchange(vectorize(t.Child, true), t.Keys, t.NumPartitions)
		}
		return physical.NewExchange(vectorize(t.Child, false), t.Keys, t.NumPartitions)
	case *physical.UnionExec:
		ins := make([]physical.Exec, len(t.Inputs))
		for i, in := range t.Inputs {
			// Union concatenates partitions without touching rows; the
			// real consumer is the union's own parent.
			ins[i] = vectorize(in, batchSink)
		}
		return physical.NewUnion(ins...)
	default:
		// Leaves (Values, IndexLookup) and anything unknown stay row-based.
		return e
	}
}

// rowBound reports whether every leaf of the subtree is an index point
// lookup or literal rows — cardinality bounded by a key's chain length,
// not by table size. The indexed join counts as row-bound when its probe
// side is (its output is probe rows times the matching chains).
func rowBound(e physical.Exec) bool {
	switch t := e.(type) {
	case *physical.IndexLookupExec, *physical.ValuesExec:
		return true
	case *physical.ColumnarScanExec:
		// Real row counts refine the structural guess: batch formation
		// over a handful of rows costs more than it saves.
		return t.Table.RowCount() <= vecMinTableRows
	case *physical.IndexedScanExec:
		return t.Table.RowCount() <= vecMinTableRows
	}
	children := e.Children()
	if len(children) == 0 {
		return false
	}
	for _, c := range children {
		if !rowBound(c) {
			return false
		}
	}
	return true
}

// maxVecTopN bounds the per-partition heap size of the fused top-n; a
// LIMIT beyond it sorts with VecSort and truncates instead.
const maxVecTopN = 1 << 16

// vecMinTableRows is the scan size below which vectorization is not
// worth the batch formation overhead; such subtrees stay on the row
// engine. Deliberately tiny — the break-even is low and plans are
// cached, so a growing table must not get stuck with a row plan.
const vecMinTableRows = 16

func ordersVectorizable(orders []physical.SortOrder) bool {
	for _, o := range orders {
		if !expr.CanVectorize(o.Expr) {
			return false
		}
	}
	return true
}

func allVectorizable(exprs []expr.Expr) bool {
	for _, e := range exprs {
		if !expr.CanVectorize(e) {
			return false
		}
	}
	return true
}

func aggsVectorizable(aggs []expr.Agg) bool {
	for _, a := range aggs {
		if a.Func == expr.CountStarAgg {
			continue
		}
		if !expr.CanVectorize(a.Arg) {
			return false
		}
	}
	return true
}

func residualVectorizable(residual expr.Expr) bool {
	return residual == nil || expr.CanVectorize(residual)
}
