package physical

import (
	"sort"
	"strings"
	"testing"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

func schema2() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "k", Type: sqltypes.Int64},
		sqltypes.Field{Name: "v", Type: sqltypes.String},
	)
}

func rowsN(n, mod int) []sqltypes.Row {
	out := make([]sqltypes.Row, n)
	for i := range out {
		out[i] = sqltypes.Row{sqltypes.NewInt64(int64(i % mod)), sqltypes.NewString("v")}
	}
	return out
}

func ec() *ExecContext { return NewExecContext(rdd.NewContext()) }

func collect(t *testing.T, e Exec) []sqltypes.Row {
	t.Helper()
	c := ec()
	r, err := e.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.RDD.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func valuesExec(rows []sqltypes.Row) *ValuesExec { return NewValues(rows, schema2()) }

func TestFilterExec(t *testing.T) {
	cond := expr.NewCmp(expr.Eq, expr.B(0, sqltypes.Int64, "k"), expr.LitInt64(3))
	out := collect(t, NewFilter(valuesExec(rowsN(100, 10)), cond))
	if len(out) != 10 {
		t.Fatalf("filter rows = %d", len(out))
	}
}

func TestProjectExec(t *testing.T) {
	exprs := []expr.Expr{
		expr.NewArith(expr.Mul, expr.B(0, sqltypes.Int64, "k"), expr.LitInt64(2)),
	}
	out := collect(t, NewProject(valuesExec(rowsN(5, 100)), exprs,
		sqltypes.NewSchema(sqltypes.Field{Name: "x", Type: sqltypes.Int64})))
	for i, r := range out {
		if r[0].Int64Val() != int64(i*2) {
			t.Fatalf("project row %d = %v", i, r)
		}
	}
}

func TestSortExecMultiplePartitions(t *testing.T) {
	c := ec()
	rows := rowsN(50, 50)
	// Shuffle input order across partitions.
	base := c.RDD.Parallelize(append(rows[25:], rows[:25]...), 4)
	wrap := &rddExec{r: base, schema: schema2()}
	sorted := NewSort(wrap, []SortOrder{{Expr: expr.B(0, sqltypes.Int64, "k"), Desc: true}})
	r, err := sorted.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.RDD.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("sorted rows = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1][0].Int64Val() < out[i][0].Int64Val() {
			t.Fatal("not sorted desc")
		}
	}
}

// rddExec adapts a raw RDD for operator tests.
type rddExec struct {
	r      rdd.RDD
	schema *sqltypes.Schema
}

func (e *rddExec) Schema() *sqltypes.Schema              { return e.schema }
func (e *rddExec) Children() []Exec                      { return nil }
func (e *rddExec) String() string                        { return "rddExec" }
func (e *rddExec) Execute(*ExecContext) (rdd.RDD, error) { return e.r, nil }

func TestLimitExecAcrossPartitions(t *testing.T) {
	c := ec()
	base := c.RDD.Parallelize(rowsN(100, 100), 5)
	wrap := &rddExec{r: base, schema: schema2()}
	out, err := c.RDD.Collect(mustExec(t, c, NewLimit(wrap, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 7 {
		t.Fatalf("limit rows = %d", len(out))
	}
}

func mustExec(t *testing.T, c *ExecContext, e Exec) rdd.RDD {
	t.Helper()
	r, err := e.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHashAggPartialFinalPipeline(t *testing.T) {
	groups := []expr.Expr{expr.B(0, sqltypes.Int64, "k")}
	aggs := []expr.Agg{
		{Func: expr.CountStarAgg, Name: "cnt"},
		{Func: expr.SumAgg, Arg: expr.B(0, sqltypes.Int64, "k"), Name: "s"},
		{Func: expr.AvgAgg, Arg: expr.B(0, sqltypes.Int64, "k"), Name: "a"},
		{Func: expr.MinAgg, Arg: expr.B(0, sqltypes.Int64, "k"), Name: "mn"},
		{Func: expr.MaxAgg, Arg: expr.B(0, sqltypes.Int64, "k"), Name: "mx"},
	}
	in := valuesExec(rowsN(100, 10))
	partial := NewHashAgg(in, groups, aggs, AggPartial, PartialSchema(groups, aggs))
	exch := NewExchange(partial, []int{0}, 3)
	finalSchema := sqltypes.NewSchema(
		sqltypes.Field{Name: "k", Type: sqltypes.Int64},
		sqltypes.Field{Name: "cnt", Type: sqltypes.Int64},
		sqltypes.Field{Name: "s", Type: sqltypes.Int64},
		sqltypes.Field{Name: "a", Type: sqltypes.Float64},
		sqltypes.Field{Name: "mn", Type: sqltypes.Int64},
		sqltypes.Field{Name: "mx", Type: sqltypes.Int64},
	)
	final := NewHashAgg(exch, groups, aggs, AggFinal, finalSchema)
	out := collect(t, final)
	if len(out) != 10 {
		t.Fatalf("groups = %d", len(out))
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Int64Val() < out[j][0].Int64Val() })
	for k, r := range out {
		if r[0].Int64Val() != int64(k) || r[1].Int64Val() != 10 ||
			r[2].Int64Val() != int64(k*10) || r[3].Float64Val() != float64(k) ||
			r[4].Int64Val() != int64(k) || r[5].Int64Val() != int64(k) {
			t.Fatalf("group %d = %v", k, r)
		}
	}
}

func TestHashAggNullHandling(t *testing.T) {
	rows := []sqltypes.Row{
		{sqltypes.NewInt64(1), sqltypes.NewString("a")},
		{sqltypes.Null, sqltypes.NewString("b")},
		{sqltypes.NewInt64(3), sqltypes.Null},
	}
	aggs := []expr.Agg{
		{Func: expr.CountStarAgg, Name: "star"},
		{Func: expr.CountAgg, Arg: expr.B(0, sqltypes.Int64, "k"), Name: "ck"},
		{Func: expr.SumAgg, Arg: expr.B(0, sqltypes.Int64, "k"), Name: "s"},
	}
	in := NewValues(rows, schema2())
	partial := NewHashAgg(in, nil, aggs, AggPartial, PartialSchema(nil, aggs))
	exch := NewExchange(partial, nil, 1)
	final := NewHashAgg(exch, nil, aggs, AggFinal, sqltypes.NewSchema(
		sqltypes.Field{Name: "star", Type: sqltypes.Int64},
		sqltypes.Field{Name: "ck", Type: sqltypes.Int64},
		sqltypes.Field{Name: "s", Type: sqltypes.Int64},
	))
	out := collect(t, final)
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	r := out[0]
	if r[0].Int64Val() != 3 || r[1].Int64Val() != 2 || r[2].Int64Val() != 4 {
		t.Fatalf("agg = %v", r)
	}
}

func joinInputs() (l, r Exec) {
	lrows := []sqltypes.Row{
		{sqltypes.NewInt64(1), sqltypes.NewString("l1")},
		{sqltypes.NewInt64(2), sqltypes.NewString("l2")},
		{sqltypes.NewInt64(2), sqltypes.NewString("l2b")},
		{sqltypes.Null, sqltypes.NewString("lnull")},
		{sqltypes.NewInt64(9), sqltypes.NewString("lonely")},
	}
	rrows := []sqltypes.Row{
		{sqltypes.NewInt64(1), sqltypes.NewString("r1")},
		{sqltypes.NewInt64(2), sqltypes.NewString("r2")},
		{sqltypes.Null, sqltypes.NewString("rnull")},
	}
	return NewValues(lrows, schema2()), NewValues(rrows, schema2())
}

func checkInnerJoin(t *testing.T, out []sqltypes.Row) {
	t.Helper()
	if len(out) != 3 {
		t.Fatalf("inner join rows = %d: %v", len(out), out)
	}
	for _, r := range out {
		if r[0] != r[2] {
			t.Fatalf("mismatched join row %v", r)
		}
	}
}

func TestShuffleHashJoin(t *testing.T) {
	l, r := joinInputs()
	out := collect(t, NewShuffleHashJoin(l, r, []int{0}, []int{0}, InnerJoin, nil, 3))
	checkInnerJoin(t, out)
	// Left outer keeps unmatched and null-keyed left rows.
	outer := collect(t, NewShuffleHashJoin(l, r, []int{0}, []int{0}, LeftOuterJoin, nil, 3))
	if len(outer) != 5 {
		t.Fatalf("left outer rows = %d", len(outer))
	}
}

func TestBroadcastHashJoinBothOrientations(t *testing.T) {
	l, r := joinInputs()
	// Build = right.
	out := collect(t, NewBroadcastHashJoin(l, r, []int{0}, []int{0}, true, InnerJoin, nil))
	checkInnerJoin(t, out)
	// Build = left (stream right): output must still be left-then-right.
	out2 := collect(t, NewBroadcastHashJoin(r, l, []int{0}, []int{0}, false, InnerJoin, nil))
	checkInnerJoin(t, out2)
	for _, row := range out2 {
		if !strings.HasPrefix(row[1].StringVal(), "l") {
			t.Fatalf("column order broken: %v", row)
		}
	}
}

func TestNestedLoopJoin(t *testing.T) {
	l, r := joinInputs()
	cond := expr.NewCmp(expr.Lt,
		expr.B(0, sqltypes.Int64, "lk"), expr.B(2, sqltypes.Int64, "rk"))
	out := collect(t, NewNestedLoopJoin(l, r, InnerJoin, cond))
	// pairs with lk < rk: (1,2) and nothing else (nulls never match).
	if len(out) != 1 || out[0][0].Int64Val() != 1 || out[0][2].Int64Val() != 2 {
		t.Fatalf("nested loop = %v", out)
	}
	outer := collect(t, NewNestedLoopJoin(l, r, LeftOuterJoin, cond))
	if len(outer) != 5 {
		t.Fatalf("nested loop outer = %d rows", len(outer))
	}
}

func indexedCatalogTable(t *testing.T, n, mod int) *catalog.IndexedTable {
	t.Helper()
	ct, err := core.NewIndexedTable(schema2(), 0, core.Options{NumPartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Append(rowsN(n, mod)); err != nil {
		t.Fatal(err)
	}
	return catalog.NewIndexedTable("it", ct)
}

func TestIndexedScanAndLookup(t *testing.T) {
	it := indexedCatalogTable(t, 100, 10)
	out := collect(t, NewIndexedScan(it, nil, it.Schema()))
	if len(out) != 100 {
		t.Fatalf("indexed scan rows = %d", len(out))
	}
	// Projection path.
	proj := collect(t, NewIndexedScan(it, []int{1}, it.Schema().Project([]int{1})))
	if len(proj) != 100 || len(proj[0]) != 1 {
		t.Fatalf("projected scan: %d rows of %d cols", len(proj), len(proj[0]))
	}
	// Lookup.
	lk := collect(t, NewIndexLookup(it, sqltypes.NewInt64(4), nil, it.Schema()))
	if len(lk) != 10 {
		t.Fatalf("lookup rows = %d", len(lk))
	}
	// Lookup with residual.
	res := expr.NewCmp(expr.Ne, expr.B(1, sqltypes.String, "v"), expr.LitString("v"))
	lk2 := collect(t, NewIndexLookup(it, sqltypes.NewInt64(4), res, it.Schema()))
	if len(lk2) != 0 {
		t.Fatalf("residual lookup rows = %d", len(lk2))
	}
}

func TestIndexedJoinBroadcastAndShuffleAgree(t *testing.T) {
	it := indexedCatalogTable(t, 60, 6)
	probe := NewValues(rowsN(12, 6), schema2())
	outSchema := it.Schema().Concat(schema2())
	b := collect(t, NewIndexedJoin(it, probe, 0, true, true, InnerJoin, nil, outSchema))
	s := collect(t, NewIndexedJoin(it, probe, 0, true, false, InnerJoin, nil, outSchema))
	if len(b) != len(s) || len(b) != 12*10 {
		t.Fatalf("broadcast %d vs shuffle %d rows (want %d)", len(b), len(s), 12*10)
	}
	canon := func(rows []sqltypes.Row) string {
		strs := make([]string, len(rows))
		for i, r := range rows {
			strs[i] = r.String()
		}
		sort.Strings(strs)
		return strings.Join(strs, "|")
	}
	if canon(b) != canon(s) {
		t.Fatal("broadcast and shuffle indexed joins disagree")
	}
}

func TestIndexedJoinLeftOuterProbeLeft(t *testing.T) {
	it := indexedCatalogTable(t, 10, 10)
	probeRows := []sqltypes.Row{
		{sqltypes.NewInt64(1), sqltypes.NewString("hit")},
		{sqltypes.NewInt64(99), sqltypes.NewString("miss")},
		{sqltypes.Null, sqltypes.NewString("null")},
	}
	probe := NewValues(probeRows, schema2())
	outSchema := schema2().Concat(it.Schema())
	out := collect(t, NewIndexedJoin(it, probe, 0, false, true, LeftOuterJoin, nil, outSchema))
	if len(out) != 3 {
		t.Fatalf("left outer indexed join rows = %d", len(out))
	}
	misses := 0
	for _, r := range out {
		if r[2].IsNull() {
			misses++
		}
	}
	if misses != 2 {
		t.Fatalf("null-padded rows = %d, want 2", misses)
	}
}

func TestSnapshotMemoizationPerQuery(t *testing.T) {
	it := indexedCatalogTable(t, 10, 10)
	c := ec()
	s1 := c.SnapshotOf(it.Core())
	s2 := c.SnapshotOf(it.Core())
	if s1 != s2 {
		t.Fatal("snapshots not memoized within a query")
	}
	c2 := ec()
	if c2.SnapshotOf(it.Core()) == s1 {
		t.Fatal("snapshot shared across queries")
	}
}

func TestUnionExec(t *testing.T) {
	a := valuesExec(rowsN(3, 10))
	b := valuesExec(rowsN(4, 10))
	out := collect(t, NewUnion(a, b))
	if len(out) != 7 {
		t.Fatalf("union rows = %d", len(out))
	}
}

func TestNormalizeKeyAndEncodeValues(t *testing.T) {
	if NormalizeKey(sqltypes.NewInt32(5)) != sqltypes.NewInt64(5) {
		t.Fatal("int32 not normalized")
	}
	if NormalizeKey(sqltypes.NewFloat64(5)) != sqltypes.NewInt64(5) {
		t.Fatal("integral double not normalized")
	}
	if NormalizeKey(sqltypes.NewFloat64(5.5)).T != sqltypes.Float64 {
		t.Fatal("fractional double mangled")
	}
	a := string(appendValuesKey(nil, []sqltypes.Value{sqltypes.NewInt32(5), sqltypes.NewString("x")}))
	b := string(appendValuesKey(nil, []sqltypes.Value{sqltypes.NewInt64(5), sqltypes.NewString("x")}))
	if a != b {
		t.Fatal("equal composite keys encode differently")
	}
	c := string(appendValuesKey(nil, []sqltypes.Value{sqltypes.Null}))
	d := string(appendValuesKey(nil, []sqltypes.Value{sqltypes.NewInt64(0)}))
	if c == d {
		t.Fatal("NULL collides with zero")
	}
}
