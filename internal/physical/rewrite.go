package physical

import (
	"fmt"

	"indexeddf/internal/expr"
	"indexeddf/internal/sqltypes"
)

// RewriteExprs rebuilds a physical plan with fn applied (via expr.Transform)
// to every expression it carries — filter conditions, projections, group
// keys, aggregate arguments, sort orders, join residuals and index-lookup
// keys. Untouched subtrees are shared with the input plan, so a rewrite of
// a cached plan is cheap and the cached original stays intact; that is
// what lets one compiled prepared statement serve concurrent executions
// with different bindings.
func RewriteExprs(e Exec, fn func(expr.Expr) (expr.Expr, error)) (Exec, error) {
	rw := func(x expr.Expr) (expr.Expr, error) {
		if x == nil {
			return nil, nil
		}
		return expr.Transform(x, fn)
	}
	rwList := func(xs []expr.Expr) ([]expr.Expr, bool, error) {
		changed := false
		out := make([]expr.Expr, len(xs))
		for i, x := range xs {
			nx, err := rw(x)
			if err != nil {
				return nil, false, err
			}
			out[i] = nx
			if nx != x {
				changed = true
			}
		}
		if !changed {
			return xs, false, nil
		}
		return out, true, nil
	}
	rwAggs := func(as []expr.Agg) ([]expr.Agg, bool, error) {
		changed := false
		out := make([]expr.Agg, len(as))
		for i, a := range as {
			out[i] = a
			if a.Arg == nil {
				continue
			}
			na, err := rw(a.Arg)
			if err != nil {
				return nil, false, err
			}
			out[i].Arg = na
			if na != a.Arg {
				changed = true
			}
		}
		if !changed {
			return as, false, nil
		}
		return out, true, nil
	}

	switch t := e.(type) {
	case *FilterExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		cond, err := rw(t.Cond)
		if err != nil {
			return nil, err
		}
		if !cc && cond == t.Cond {
			return t, nil
		}
		return NewFilter(child, cond), nil
	case *VecFilterExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		cond, err := rw(t.Cond)
		if err != nil {
			return nil, err
		}
		if !cc && cond == t.Cond {
			return t, nil
		}
		return NewVecFilter(child, cond), nil
	case *ProjectExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		exprs, ec, err := rwList(t.Exprs)
		if err != nil {
			return nil, err
		}
		if !cc && !ec {
			return t, nil
		}
		return NewProject(child, exprs, t.Schema()), nil
	case *VecProjectExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		exprs, ec, err := rwList(t.Exprs)
		if err != nil {
			return nil, err
		}
		if !cc && !ec {
			return t, nil
		}
		return NewVecProject(child, exprs, t.Schema()), nil
	case *HashAggExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		groups, gc, err := rwList(t.Groups)
		if err != nil {
			return nil, err
		}
		aggs, ac, err := rwAggs(t.Aggs)
		if err != nil {
			return nil, err
		}
		if !cc && !gc && !ac {
			return t, nil
		}
		return NewHashAgg(child, groups, aggs, t.Mode, t.Schema()), nil
	case *VecHashAggExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		groups, gc, err := rwList(t.Groups)
		if err != nil {
			return nil, err
		}
		aggs, ac, err := rwAggs(t.Aggs)
		if err != nil {
			return nil, err
		}
		if !cc && !gc && !ac {
			return t, nil
		}
		return NewVecHashAgg(child, groups, aggs, t.Mode, t.Schema()), nil
	case *SortExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		orders, oc, err := rewriteOrders(t.Orders, rw)
		if err != nil {
			return nil, err
		}
		if !cc && !oc {
			return t, nil
		}
		return NewSort(child, orders), nil
	case *VecSortExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		orders, oc, err := rewriteOrders(t.Orders, rw)
		if err != nil {
			return nil, err
		}
		if !cc && !oc {
			return t, nil
		}
		return NewVecSort(child, orders), nil
	case *VecTopNExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		orders, oc, err := rewriteOrders(t.Orders, rw)
		if err != nil {
			return nil, err
		}
		if !cc && !oc {
			return t, nil
		}
		return NewVecTopN(child, orders, t.N), nil
	case *LimitExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		if !cc {
			return t, nil
		}
		return NewLimit(child, t.N), nil
	case *ExchangeExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		if !cc {
			return t, nil
		}
		return NewExchange(child, t.Keys, t.NumPartitions), nil
	case *VecExchangeExec:
		child, cc, err := rewriteChild(t.Child, fn)
		if err != nil {
			return nil, err
		}
		if !cc {
			return t, nil
		}
		return NewVecExchange(child, t.Keys, t.NumPartitions), nil
	case *UnionExec:
		changed := false
		ins := make([]Exec, len(t.Inputs))
		for i, in := range t.Inputs {
			ni, ic, err := rewriteChild(in, fn)
			if err != nil {
				return nil, err
			}
			ins[i] = ni
			changed = changed || ic
		}
		if !changed {
			return t, nil
		}
		return NewUnion(ins...), nil
	case *IndexLookupExec:
		key, err := rw(t.Key)
		if err != nil {
			return nil, err
		}
		res, err := rw(t.Residual)
		if err != nil {
			return nil, err
		}
		if key == t.Key && res == t.Residual {
			return t, nil
		}
		return NewIndexLookupKeyExpr(t.Table, key, res, t.Schema()), nil
	case *ShuffleHashJoinExec:
		left, lc, err := rewriteChild(t.Left, fn)
		if err != nil {
			return nil, err
		}
		right, rc, err := rewriteChild(t.Right, fn)
		if err != nil {
			return nil, err
		}
		res, err := rw(t.Residual)
		if err != nil {
			return nil, err
		}
		if !lc && !rc && res == t.Residual {
			return t, nil
		}
		return NewShuffleHashJoin(left, right, t.LeftKeys, t.RightKeys, t.Type, res, t.NumPartitions), nil
	case *VecShuffleHashJoinExec:
		left, lc, err := rewriteChild(t.Left, fn)
		if err != nil {
			return nil, err
		}
		right, rc, err := rewriteChild(t.Right, fn)
		if err != nil {
			return nil, err
		}
		res, err := rw(t.Residual)
		if err != nil {
			return nil, err
		}
		if !lc && !rc && res == t.Residual {
			return t, nil
		}
		return NewVecShuffleHashJoin(left, right, t.LeftKeys, t.RightKeys, res, t.NumPartitions), nil
	case *BroadcastHashJoinExec:
		stream, sc, err := rewriteChild(t.Stream, fn)
		if err != nil {
			return nil, err
		}
		build, bc, err := rewriteChild(t.Build, fn)
		if err != nil {
			return nil, err
		}
		res, err := rw(t.Residual)
		if err != nil {
			return nil, err
		}
		if !sc && !bc && res == t.Residual {
			return t, nil
		}
		return NewBroadcastHashJoin(stream, build, t.StreamKeys, t.BuildKeys, t.BuildIsRight, t.Type, res), nil
	case *VecBroadcastHashJoinExec:
		stream, sc, err := rewriteChild(t.Stream, fn)
		if err != nil {
			return nil, err
		}
		build, bc, err := rewriteChild(t.Build, fn)
		if err != nil {
			return nil, err
		}
		res, err := rw(t.Residual)
		if err != nil {
			return nil, err
		}
		if !sc && !bc && res == t.Residual {
			return t, nil
		}
		return NewVecBroadcastHashJoin(stream, build, t.StreamKeys, t.BuildKeys, t.BuildIsRight, res), nil
	case *IndexedJoinExec:
		probe, pc, err := rewriteChild(t.Probe, fn)
		if err != nil {
			return nil, err
		}
		res, err := rw(t.Residual)
		if err != nil {
			return nil, err
		}
		if !pc && res == t.Residual {
			return t, nil
		}
		return NewIndexedJoin(t.Indexed, probe, t.ProbeKey, t.IndexedIsLeft, t.Broadcast, t.Type, res, t.Schema()), nil
	case *VecIndexedJoinExec:
		probe, pc, err := rewriteChild(t.Probe, fn)
		if err != nil {
			return nil, err
		}
		res, err := rw(t.Residual)
		if err != nil {
			return nil, err
		}
		if !pc && res == t.Residual {
			return t, nil
		}
		return NewVecIndexedJoin(t.Indexed, probe, t.ProbeKey, t.IndexedIsLeft, t.Broadcast, res, t.Schema()), nil
	case *NestedLoopJoinExec:
		left, lc, err := rewriteChild(t.Left, fn)
		if err != nil {
			return nil, err
		}
		right, rc, err := rewriteChild(t.Right, fn)
		if err != nil {
			return nil, err
		}
		cond, err := rw(t.Cond)
		if err != nil {
			return nil, err
		}
		if !lc && !rc && cond == t.Cond {
			return t, nil
		}
		return NewNestedLoopJoin(left, right, t.Type, cond), nil
	default:
		// Expression-free leaves: scans, values, view scans.
		return e, nil
	}
}

// rewriteOrders applies rw to every sort-order expression, reporting
// whether any changed.
func rewriteOrders(orders []SortOrder, rw func(expr.Expr) (expr.Expr, error)) ([]SortOrder, bool, error) {
	changed := false
	out := make([]SortOrder, len(orders))
	for i, o := range orders {
		no, err := rw(o.Expr)
		if err != nil {
			return nil, false, err
		}
		out[i] = SortOrder{Expr: no, Desc: o.Desc}
		if no != o.Expr {
			changed = true
		}
	}
	if !changed {
		return orders, false, nil
	}
	return out, true, nil
}

// rewriteChild recurses and reports whether the subtree changed.
func rewriteChild(e Exec, fn func(expr.Expr) (expr.Expr, error)) (Exec, bool, error) {
	n, err := RewriteExprs(e, fn)
	if err != nil {
		return nil, false, err
	}
	return n, n != e, nil
}

// BindParams substitutes prepared-statement arguments for the plan's
// parameter placeholders, returning a new plan that shares every
// parameter-free subtree with the template. numParams is the statement's
// declared placeholder count (from parsing), validated against args.
func BindParams(e Exec, numParams int, args []sqltypes.Value) (Exec, error) {
	if len(args) != numParams {
		return nil, fmt.Errorf("physical: statement takes %d parameters, got %d", numParams, len(args))
	}
	if numParams == 0 {
		return e, nil
	}
	return RewriteExprs(e, func(x expr.Expr) (expr.Expr, error) {
		p, ok := x.(*expr.Param)
		if !ok {
			return x, nil
		}
		if p.Index < 0 || p.Index >= len(args) {
			return nil, fmt.Errorf("physical: parameter ?%d out of range (%d bound)", p.Index+1, len(args))
		}
		return expr.Lit(args[p.Index]), nil
	})
}
