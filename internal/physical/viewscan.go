package physical

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// ---------------------------------------------------------------------------
// ViewScan — answer an aggregation from a materialized view's state
//
// The planner's view-matching rewrite replaces a whole
// scan→filter→aggregate pipeline with this operator: a refresh (folding
// only the base table's delta since the last refresh) followed by a read
// of the per-group accumulator state — O(changed rows + groups) instead of
// O(table).

// ViewScanExec reads a materialized view, refreshing it first so results
// are consistent with a base snapshot taken at execution time.
type ViewScanExec struct {
	View catalog.MaterializedView
	// Cols are state-layout ordinals (groups first, then aggregates) of
	// the output columns; nil = the full state layout.
	Cols   []int
	schema *sqltypes.Schema
}

// NewViewScan builds a view scan producing outSchema.
func NewViewScan(v catalog.MaterializedView, cols []int, outSchema *sqltypes.Schema) *ViewScanExec {
	return &ViewScanExec{View: v, Cols: cols, schema: outSchema}
}

// Schema implements Exec.
func (s *ViewScanExec) Schema() *sqltypes.Schema { return s.schema }

// Children implements Exec.
func (s *ViewScanExec) Children() []Exec { return nil }

func (s *ViewScanExec) String() string {
	return fmt.Sprintf("ViewScan %s (materialized, base=%s, delta-maintained)", s.View.Name(), s.View.BaseName())
}

// Execute implements Exec.
func (s *ViewScanExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	rows, err := viewRows(s.View, s.Cols)
	if err != nil {
		return nil, err
	}
	st := ec.Stats(s)
	return ec.RDD.NewIterRDD(nil, 1, func(_ *rdd.TaskContext, _ int, _ sqltypes.RowIter) (sqltypes.RowIter, error) {
		return obs.Rows(st, sqltypes.NewSliceIter(rows)), nil
	}), nil
}

// viewRows refreshes the view and projects its state rows onto cols.
func viewRows(v catalog.MaterializedView, cols []int) ([]sqltypes.Row, error) {
	state, err := v.RefreshRows()
	if err != nil {
		return nil, fmt.Errorf("physical: refreshing view %s: %w", v.Name(), err)
	}
	if cols == nil {
		return state, nil
	}
	out := make([]sqltypes.Row, len(state))
	for i, r := range state {
		pr := make(sqltypes.Row, len(cols))
		for j, c := range cols {
			pr[j] = r[c]
		}
		out[i] = pr
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// VecViewScan — the batch form, for vectorized consumers (HAVING filters,
// projections and joins above a view-answered aggregate).

// VecViewScanExec is the vectorized ViewScanExec.
type VecViewScanExec struct {
	View   catalog.MaterializedView
	Cols   []int
	schema *sqltypes.Schema
}

// NewVecViewScan builds a vectorized view scan.
func NewVecViewScan(v catalog.MaterializedView, cols []int, outSchema *sqltypes.Schema) *VecViewScanExec {
	return &VecViewScanExec{View: v, Cols: cols, schema: outSchema}
}

// Schema implements Exec.
func (s *VecViewScanExec) Schema() *sqltypes.Schema { return s.schema }

// Children implements Exec.
func (s *VecViewScanExec) Children() []Exec { return nil }

func (s *VecViewScanExec) String() string {
	return fmt.Sprintf("VecViewScan %s (materialized, base=%s, delta-maintained)", s.View.Name(), s.View.BaseName())
}

// Execute implements Exec.
func (s *VecViewScanExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	rows, err := viewRows(s.View, s.Cols)
	if err != nil {
		return nil, err
	}
	schema := s.schema
	st := ec.Stats(s)
	return ec.RDD.NewBatchIterRDD(nil, 1, nil, func(_ *rdd.TaskContext, _ int, _ vector.BatchIter) (vector.BatchIter, error) {
		return obs.Batches(st, batchRows(rows, nil, schema)), nil
	}), nil
}
