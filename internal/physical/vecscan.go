package physical

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/columnar"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// ---------------------------------------------------------------------------
// VecColumnarScan — batch scan of the vanilla columnar cache
//
// The cached partition already is column-major, so the vectorized scan
// emits zero-copy views: each batch's vectors are 1024-row slices of the
// cached vectors. No value is materialized until an operator actually
// needs it — a pushed-down projection never touches the pruned columns.

// VecColumnarScanExec is the vectorized ColumnarScanExec.
type VecColumnarScanExec struct {
	Table      *catalog.ColumnTable
	Projection []int // nil = all columns
	schema     *sqltypes.Schema
}

// NewVecColumnarScan builds a vectorized columnar scan.
func NewVecColumnarScan(table *catalog.ColumnTable, projection []int, outSchema *sqltypes.Schema) *VecColumnarScanExec {
	return &VecColumnarScanExec{Table: table, Projection: projection, schema: outSchema}
}

// Schema implements Exec.
func (s *VecColumnarScanExec) Schema() *sqltypes.Schema { return s.schema }

// Children implements Exec.
func (s *VecColumnarScanExec) Children() []Exec { return nil }

func (s *VecColumnarScanExec) String() string {
	if s.Projection != nil {
		return fmt.Sprintf("VecColumnarScan %s cols=%v", s.Table.Name(), s.Projection)
	}
	return fmt.Sprintf("VecColumnarScan %s", s.Table.Name())
}

// Execute implements Exec.
func (s *VecColumnarScanExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	table := s.Table
	proj := s.Projection
	schema := s.schema
	n := table.NumPartitions()
	st := ec.Stats(s)
	return ec.RDD.NewBatchIterRDD(nil, n, nil, func(_ *rdd.TaskContext, p int, _ vector.BatchIter) (vector.BatchIter, error) {
		if !table.IsCached() {
			// Uncached: gather the row partition into batches.
			return obs.Batches(st, batchRows(table.RowPartition(p), proj, schema)), nil
		}
		cb, err := table.ColumnarPartition(p)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, &columnarSliceIter{cb: cb, proj: proj, schema: schema}), nil
	}), nil
}

// columnarSliceIter windows a cached columnar partition into zero-copy
// batches of DefaultBatchSize rows (the window start stays 64-aligned for
// the shared null bitmaps).
type columnarSliceIter struct {
	cb     *columnar.Batch
	proj   []int
	schema *sqltypes.Schema
	pos    int
}

// Next implements vector.BatchIter.
func (it *columnarSliceIter) Next() (*vector.Batch, error) {
	nr := it.cb.NumRows()
	if it.pos >= nr {
		return nil, nil
	}
	lo := it.pos
	hi := lo + vector.DefaultBatchSize
	if hi > nr {
		hi = nr
	}
	it.pos = hi
	return vector.FromColumnar(it.cb, lo, hi, it.proj, it.schema)
}

// batchRows copies rows (optionally projected) into dense batches.
func batchRows(rows []sqltypes.Row, proj []int, schema *sqltypes.Schema) vector.BatchIter {
	var batches []*vector.Batch
	var cur *vector.Batch
	for _, r := range rows {
		if cur == nil || cur.Len() >= vector.DefaultBatchSize {
			cur = vector.NewBatch(schema)
			batches = append(batches, cur)
		}
		if proj == nil {
			if err := cur.AppendRow(r); err != nil {
				return &errIter{err: err}
			}
		} else {
			for j, c := range proj {
				if err := cur.Cols[j].Append(r[c]); err != nil {
					return &errIter{err: err}
				}
			}
			cur.SetLen(cur.Len() + 1)
		}
	}
	return vector.NewSliceIter(batches)
}

// errIter surfaces a construction error through the BatchIter protocol.
type errIter struct{ err error }

func (it *errIter) Next() (*vector.Batch, error) { return nil, it.err }

// ---------------------------------------------------------------------------
// VecIndexedScan — batch scan of the Indexed DataFrame's row batches
//
// Still a row-store scan (every record is decoded), but the decoded values
// land directly in column vectors: no per-row Row allocation and no
// per-row Clone, which is where the row-at-a-time scan spends most of its
// allocation budget.

// VecIndexedScanExec is the vectorized IndexedScanExec.
type VecIndexedScanExec struct {
	Table      *catalog.IndexedTable
	Projection []int
	schema     *sqltypes.Schema
}

// NewVecIndexedScan builds a vectorized snapshot scan.
func NewVecIndexedScan(table *catalog.IndexedTable, projection []int, outSchema *sqltypes.Schema) *VecIndexedScanExec {
	return &VecIndexedScanExec{Table: table, Projection: projection, schema: outSchema}
}

// Schema implements Exec.
func (s *VecIndexedScanExec) Schema() *sqltypes.Schema { return s.schema }

// Children implements Exec.
func (s *VecIndexedScanExec) Children() []Exec { return nil }

func (s *VecIndexedScanExec) String() string {
	if s.Projection != nil {
		return fmt.Sprintf("VecIndexedScan %s cols=%v", s.Table.Name(), s.Projection)
	}
	return fmt.Sprintf("VecIndexedScan %s", s.Table.Name())
}

// Execute implements Exec.
func (s *VecIndexedScanExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	snap := ec.SnapshotOf(s.Table.Core())
	proj := s.Projection
	schema := s.schema
	st := ec.Stats(s)
	return ec.RDD.NewBatchIterRDD(nil, snap.NumPartitions(), nil, func(_ *rdd.TaskContext, p int, _ vector.BatchIter) (vector.BatchIter, error) {
		// First pass counts the partition's visible rows (no decoding), so
		// the column vectors are sized exactly once; the decode pass then
		// writes by index — no growth, no bitmap appends.
		nRows, err := snap.PartitionRowCount(p)
		if err != nil {
			return nil, err
		}
		cols := make([]*columnar.Vector, schema.Len())
		i64s := make([][]int64, len(cols))
		f64s := make([][]float64, len(cols))
		strs := make([][]string, len(cols))
		for i, f := range schema.Fields {
			cols[i] = columnar.NewVector(f.Type)
			cols[i].Resize(nRows)
			// Pre-resolved lanes so the fill loop writes without a
			// per-value method call or type switch on Type.
			switch f.Type {
			case sqltypes.Float64:
				f64s[i] = cols[i].Float64s()
			case sqltypes.String:
				strs[i] = cols[i].Strings()
			default:
				i64s[i] = cols[i].Int64s()
			}
		}
		i := 0
		fill := func(row sqltypes.Row) bool {
			for c, v := range row {
				switch {
				case v.T == sqltypes.Unknown:
					cols[c].SetNull(i)
				case i64s[c] != nil:
					i64s[c][i] = v.I
				case f64s[c] != nil:
					f64s[c][i] = v.F
				default:
					strs[c][i] = v.S
				}
			}
			i++
			return true
		}
		if proj == nil {
			err = snap.ScanPartition(p, fill)
		} else {
			err = snap.ScanPartitionColumns(p, proj, fill)
		}
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, &columnarSliceIter{cb: columnar.BatchOf(schema, cols), schema: schema}), nil
	}), nil
}
