package physical

import (
	"fmt"
	"strings"

	"indexeddf/internal/expr"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

// AggMode selects the hash aggregate's phase.
type AggMode uint8

// Aggregation phases: Partial runs per input partition and emits
// accumulator rows; Final merges accumulator rows (after an exchange on the
// group key); Complete does both in one operator (single-partition input).
const (
	AggPartial AggMode = iota
	AggFinal
	AggComplete
)

func (m AggMode) String() string { return [...]string{"partial", "final", "complete"}[m] }

// HashAggExec is the hash aggregation operator.
type HashAggExec struct {
	Child  Exec
	Groups []expr.Expr // bound against the pre-aggregation schema
	Aggs   []expr.Agg
	Mode   AggMode
	schema *sqltypes.Schema
}

// NewHashAgg builds a hash aggregate producing outSchema (the final schema
// for Final/Complete, the accumulator schema for Partial).
func NewHashAgg(child Exec, groups []expr.Expr, aggs []expr.Agg, mode AggMode, outSchema *sqltypes.Schema) *HashAggExec {
	return &HashAggExec{Child: child, Groups: groups, Aggs: aggs, Mode: mode, schema: outSchema}
}

// PartialSchema computes the accumulator-row schema for groups+aggs.
func PartialSchema(groups []expr.Expr, aggs []expr.Agg) *sqltypes.Schema {
	fields := make([]sqltypes.Field, 0, len(groups)+2*len(aggs))
	for i, g := range groups {
		fields = append(fields, sqltypes.Field{Name: fmt.Sprintf("g%d", i), Type: g.Type(), Nullable: true})
	}
	for i, a := range aggs {
		switch a.Func {
		case expr.AvgAgg:
			fields = append(fields,
				sqltypes.Field{Name: fmt.Sprintf("a%d_sum", i), Type: sqltypes.Float64, Nullable: true},
				sqltypes.Field{Name: fmt.Sprintf("a%d_cnt", i), Type: sqltypes.Int64},
			)
		case expr.CountAgg, expr.CountStarAgg:
			fields = append(fields, sqltypes.Field{Name: fmt.Sprintf("a%d_cnt", i), Type: sqltypes.Int64})
		default:
			fields = append(fields, sqltypes.Field{Name: fmt.Sprintf("a%d", i), Type: a.ResultType(), Nullable: true})
		}
	}
	return sqltypes.NewSchema(fields...)
}

// Schema implements Exec.
func (h *HashAggExec) Schema() *sqltypes.Schema { return h.schema }

// Children implements Exec.
func (h *HashAggExec) Children() []Exec { return []Exec{h.Child} }

func (h *HashAggExec) String() string {
	gs := make([]string, len(h.Groups))
	for i, g := range h.Groups {
		gs[i] = g.String()
	}
	as := make([]string, len(h.Aggs))
	for i, a := range h.Aggs {
		as[i] = a.String()
	}
	return fmt.Sprintf("HashAggregate(%s) group=[%s] aggs=[%s]",
		h.Mode, strings.Join(gs, ", "), strings.Join(as, ", "))
}

// acc is one aggregate's accumulator.
type acc struct {
	count int64
	sumI  int64
	sumF  float64
	min   sqltypes.Value
	max   sqltypes.Value
}

type aggGroup struct {
	keys sqltypes.Row
	accs []acc
}

// groupAlloc hands out aggGroups and their accumulator slices from chunked
// slabs, collapsing the per-group allocation cost of hash aggregation
// (group struct + accumulator slice per distinct key) into one allocation
// per chunk. Chunks grow geometrically so low-cardinality aggregations do
// not pay for slabs they never fill. Both the row and vectorized
// aggregates draw from it.
type groupAlloc struct {
	nAggs  int
	chunk  int
	groups []aggGroup
	accs   []acc
}

func (ga *groupAlloc) new(keys sqltypes.Row) *aggGroup {
	if len(ga.groups) == 0 {
		ga.chunk *= 2
		if ga.chunk < 16 {
			ga.chunk = 16
		} else if ga.chunk > 4096 {
			ga.chunk = 4096
		}
		ga.groups = make([]aggGroup, ga.chunk)
		ga.accs = make([]acc, ga.chunk*ga.nAggs)
	}
	g := &ga.groups[0]
	ga.groups = ga.groups[1:]
	g.keys = keys
	g.accs = ga.accs[:ga.nAggs:ga.nAggs]
	ga.accs = ga.accs[ga.nAggs:]
	return g
}

// update folds a raw input row into the group's accumulators.
func (h *HashAggExec) update(g *aggGroup, row sqltypes.Row) error {
	for i, a := range h.Aggs {
		if a.Func == expr.CountStarAgg {
			g.accs[i].count++
			continue
		}
		v, err := a.Arg.Eval(row)
		if err != nil {
			return err
		}
		updateAcc(&g.accs[i], a, v)
	}
	return nil
}

// updateAcc folds one evaluated argument value into an accumulator; shared
// by the row and vectorized aggregate operators (COUNT(*) is handled by the
// callers, which never evaluate an argument for it).
func updateAcc(ac *acc, a expr.Agg, v sqltypes.Value) {
	if v.IsNull() {
		return
	}
	switch a.Func {
	case expr.CountAgg:
		ac.count++
	case expr.SumAgg:
		ac.count++
		if a.ResultType() == sqltypes.Float64 {
			ac.sumF += v.Float64Val()
		} else {
			ac.sumI += v.Int64Val()
		}
	case expr.MinAgg:
		if ac.min.IsNull() || sqltypes.Compare(v, ac.min) < 0 {
			ac.min = v
		}
	case expr.MaxAgg:
		if ac.max.IsNull() || sqltypes.Compare(v, ac.max) > 0 {
			ac.max = v
		}
	case expr.AvgAgg:
		ac.count++
		ac.sumF += v.Float64Val()
	}
}

// merge folds a partial accumulator row (groups first) into the group.
func (h *HashAggExec) merge(g *aggGroup, row sqltypes.Row) { mergeAccs(h.Aggs, len(h.Groups), g, row) }

// mergeAccs folds a partial accumulator row into a group's accumulators.
func mergeAccs(aggs []expr.Agg, groupLen int, g *aggGroup, row sqltypes.Row) {
	pos := groupLen
	for i, a := range aggs {
		ac := &g.accs[i]
		switch a.Func {
		case expr.CountAgg, expr.CountStarAgg:
			ac.count += row[pos].Int64Val()
			pos++
		case expr.SumAgg:
			v := row[pos]
			pos++
			if !v.IsNull() {
				ac.count++
				if a.ResultType() == sqltypes.Float64 {
					ac.sumF += v.Float64Val()
				} else {
					ac.sumI += v.Int64Val()
				}
			}
		case expr.MinAgg:
			v := row[pos]
			pos++
			if !v.IsNull() && (ac.min.IsNull() || sqltypes.Compare(v, ac.min) < 0) {
				ac.min = v
			}
		case expr.MaxAgg:
			v := row[pos]
			pos++
			if !v.IsNull() && (ac.max.IsNull() || sqltypes.Compare(v, ac.max) > 0) {
				ac.max = v
			}
		case expr.AvgAgg:
			ac.sumF += row[pos].Float64Val()
			ac.count += row[pos+1].Int64Val()
			pos += 2
		}
	}
}

// emitPartial renders a group's accumulators as a partial row.
func (h *HashAggExec) emitPartial(g *aggGroup) sqltypes.Row { return emitPartialRow(h.Aggs, g) }

func emitPartialRow(aggs []expr.Agg, g *aggGroup) sqltypes.Row {
	out := make(sqltypes.Row, 0, len(g.keys)+2*len(aggs))
	out = append(out, g.keys...)
	for i, a := range aggs {
		ac := g.accs[i]
		switch a.Func {
		case expr.CountAgg, expr.CountStarAgg:
			out = append(out, sqltypes.NewInt64(ac.count))
		case expr.SumAgg:
			out = append(out, sumValue(a, ac))
		case expr.MinAgg:
			out = append(out, ac.min)
		case expr.MaxAgg:
			out = append(out, ac.max)
		case expr.AvgAgg:
			out = append(out, sqltypes.NewFloat64(ac.sumF), sqltypes.NewInt64(ac.count))
		}
	}
	return out
}

// emitFinal renders a group's accumulators as a result row.
func (h *HashAggExec) emitFinal(g *aggGroup) sqltypes.Row { return emitFinalRow(h.Aggs, g) }

func emitFinalRow(aggs []expr.Agg, g *aggGroup) sqltypes.Row {
	out := make(sqltypes.Row, 0, len(g.keys)+len(aggs))
	out = append(out, g.keys...)
	for i, a := range aggs {
		ac := g.accs[i]
		switch a.Func {
		case expr.CountAgg, expr.CountStarAgg:
			out = append(out, sqltypes.NewInt64(ac.count))
		case expr.SumAgg:
			out = append(out, sumValue(a, ac))
		case expr.MinAgg:
			out = append(out, ac.min)
		case expr.MaxAgg:
			out = append(out, ac.max)
		case expr.AvgAgg:
			if ac.count == 0 {
				out = append(out, sqltypes.Null)
			} else {
				out = append(out, sqltypes.NewFloat64(ac.sumF/float64(ac.count)))
			}
		}
	}
	return out
}

func sumValue(a expr.Agg, ac acc) sqltypes.Value {
	if ac.count == 0 {
		return sqltypes.Null
	}
	if a.ResultType() == sqltypes.Float64 {
		return sqltypes.NewFloat64(ac.sumF)
	}
	return sqltypes.NewInt64(ac.sumI)
}

// Execute implements Exec.
func (h *HashAggExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := h.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	st := ec.Stats(h)
	return ec.RDD.NewIterRDD(child, 0, func(_ *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		in = obs.CountInto(st, in)
		groups := map[string]*aggGroup{}
		var order []*aggGroup // deterministic output order (first seen)
		ga := groupAlloc{nAggs: len(h.Aggs)}
		keyScratch := make(sqltypes.Row, len(h.Groups))
		var keyBuf []byte
		for {
			row, err := in.Next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			// Encode the group key into the reused buffer; the map probe
			// below does not allocate — only a first-seen group clones its
			// key values and materializes the key string.
			var keyVals sqltypes.Row
			if h.Mode == AggFinal {
				keyVals = row[:len(h.Groups)]
			} else {
				for i, ge := range h.Groups {
					v, err := ge.Eval(row)
					if err != nil {
						return nil, err
					}
					keyScratch[i] = v
				}
				keyVals = keyScratch
			}
			keyBuf = appendValuesKey(keyBuf[:0], keyVals)
			g, ok := groups[string(keyBuf)]
			if !ok {
				g = ga.new(keyVals.Clone())
				groups[string(keyBuf)] = g
				order = append(order, g)
			}
			if h.Mode == AggFinal {
				h.merge(g, row)
			} else {
				if err := h.update(g, row); err != nil {
					return nil, err
				}
			}
		}
		// Global aggregates emit a row even with no input (in Final and
		// Complete modes only, and only on the single output partition).
		if len(groups) == 0 && len(h.Groups) == 0 && h.Mode != AggPartial {
			g := &aggGroup{accs: make([]acc, len(h.Aggs))}
			return obs.Rows(st, sqltypes.NewSliceIter([]sqltypes.Row{h.emitFinal(g)})), nil
		}
		out := make([]sqltypes.Row, 0, len(groups))
		for _, g := range order {
			if h.Mode == AggPartial {
				out = append(out, h.emitPartial(g))
			} else {
				out = append(out, h.emitFinal(g))
			}
		}
		return obs.Rows(st, sqltypes.NewSliceIter(out)), nil
	}), nil
}
