// Package physical implements the physical operators the planner lowers
// logical plans into, including the paper's indexed operators (IndexLookup,
// IndexedScan, IndexedJoin) alongside the vanilla ones (columnar scan,
// filter, project, hash aggregate, shuffle/broadcast hash join, sort,
// limit, exchange). Operators execute by building RDD lineage graphs.
package physical

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"indexeddf/internal/core"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

// Exec is a physical operator.
type Exec interface {
	// Schema is the operator's output schema.
	Schema() *sqltypes.Schema
	// Children returns input operators.
	Children() []Exec
	// Execute builds the RDD computing the operator's output.
	Execute(ec *ExecContext) (rdd.RDD, error)
	fmt.Stringer
}

// ExecContext carries per-query execution state. Indexed-table snapshots
// are memoized so every indexed operator in one query reads the same
// multi-version view. Ctx is the query's cancellation context; operators
// that run sub-jobs during Execute (broadcast builds) schedule them under
// it, and the driver runs/streams the root RDD under it.
type ExecContext struct {
	RDD *rdd.Context
	Ctx context.Context

	// Query is the query's observability collector; nil disables all
	// instrumentation (operators wrap nothing and pay nothing).
	Query *obs.QueryStats

	mu    sync.Mutex
	snaps map[*core.IndexedTable]*core.Snapshot
	ops   map[Exec]*obs.OpStats
}

// NewExecContext builds an ExecContext on an rdd Context with a background
// cancellation context.
func NewExecContext(rc *rdd.Context) *ExecContext {
	return NewExecContextCtx(context.Background(), rc)
}

// NewExecContextCtx builds an ExecContext whose execution is governed by
// ctx: cancellation or deadline expiry stops partition tasks, shuffle
// stages and broadcast builds.
func NewExecContextCtx(ctx context.Context, rc *rdd.Context) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	return &ExecContext{RDD: rc, Ctx: ctx, snaps: make(map[*core.IndexedTable]*core.Snapshot)}
}

// SnapshotOf returns the query's pinned snapshot of t, taking it on first
// use.
func (ec *ExecContext) SnapshotOf(t *core.IndexedTable) *core.Snapshot {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	s, ok := ec.snaps[t]
	if !ok {
		s = t.Snapshot()
		ec.snaps[t] = s
	}
	return s
}

// Stats returns e's per-operator collector, creating it on first use, or
// nil when the query runs without observability. Execute methods call this
// once and close over the result; the map survives execution so EXPLAIN
// ANALYZE can render the collected numbers against the plan tree.
func (ec *ExecContext) Stats(e Exec) *obs.OpStats {
	if ec.Query == nil {
		return nil
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if st, ok := ec.ops[e]; ok {
		return st
	}
	if ec.ops == nil {
		ec.ops = make(map[Exec]*obs.OpStats)
	}
	st := ec.Query.Op(opName(e))
	ec.ops[e] = st
	return st
}

// OpStats returns e's collector if one was created during execution.
func (ec *ExecContext) OpStats(e Exec) *obs.OpStats {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.ops[e]
}

// opName derives the operator's short label from its concrete type:
// *physical.VecHashAggExec -> "VecHashAgg".
func opName(e Exec) string {
	name := fmt.Sprintf("%T", e)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimSuffix(name, "Exec")
}

// AnalyzeString renders the plan as an indented tree with each operator's
// collected runtime numbers appended — the EXPLAIN ANALYZE body. Operators
// that recorded nothing (never executed, or proxied by a parent) render
// bare. Wall times are inclusive of children, Postgres-style.
func (ec *ExecContext) AnalyzeString(root Exec) string {
	var sb strings.Builder
	var rec func(Exec, int)
	rec = func(node Exec, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(node.String())
		if st := ec.OpStats(node); st != nil {
			fmt.Fprintf(&sb, "  (actual rows=%d", st.RowsOut())
			if b := st.Batches(); b > 0 {
				fmt.Fprintf(&sb, " batches=%d", b)
			}
			if sel := st.Selectivity(); sel >= 0 {
				fmt.Fprintf(&sb, " selectivity=%.1f%%", sel*100)
			}
			fmt.Fprintf(&sb, " wall=%s", time.Duration(st.WallNs()).Round(time.Microsecond))
			if m := st.MemBytes(); m > 0 {
				fmt.Fprintf(&sb, " mem=%s", obs.FormatBytes(m))
			}
			if by := st.Bytes(); by > 0 {
				fmt.Fprintf(&sb, " bytes=%s", obs.FormatBytes(by))
			}
			if runs := st.SpillRuns(); runs > 0 {
				fmt.Fprintf(&sb, " spill=%s/%d runs", obs.FormatBytes(st.SpillBytes()), runs)
			}
			if p := st.Partitions(); p > 0 {
				fmt.Fprintf(&sb, " partitions=%d", p)
			}
			if f := st.Fanout(); f > 0 {
				fmt.Fprintf(&sb, " fanout=%d", f)
			}
			if d := st.Depth(); d > 0 {
				fmt.Fprintf(&sb, " depth=%d", d)
			}
			if r := st.Reorder(); r != "" {
				fmt.Fprintf(&sb, " reordered=%s", r)
			}
			sb.WriteByte(')')
		}
		sb.WriteByte('\n')
		for _, c := range node.Children() {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return sb.String()
}

// TreeString renders a physical plan as an indented tree.
func TreeString(e Exec) string {
	var sb strings.Builder
	var rec func(Exec, int)
	rec = func(node Exec, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(node.String())
		sb.WriteByte('\n')
		for _, c := range node.Children() {
			rec(c, depth+1)
		}
	}
	rec(e, 0)
	return sb.String()
}

// ReferencedTables returns the names of every catalog table and
// materialized view a compiled plan reads, deduplicated. The session's
// plan cache keys its invalidation on this set: DDL touching one table
// purges only the cached plans that actually reference it.
func ReferencedTables(e Exec) []string {
	seen := map[string]bool{}
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	var walk func(Exec)
	walk = func(node Exec) {
		switch t := node.(type) {
		case *ColumnarScanExec:
			add(t.Table.Name())
		case *VecColumnarScanExec:
			add(t.Table.Name())
		case *IndexedScanExec:
			add(t.Table.Name())
		case *VecIndexedScanExec:
			add(t.Table.Name())
		case *IndexLookupExec:
			add(t.Table.Name())
		case *IndexedJoinExec:
			add(t.Indexed.Name())
		case *VecIndexedJoinExec:
			add(t.Indexed.Name())
		case *ViewScanExec:
			add(t.View.Name())
		case *VecViewScanExec:
			add(t.View.Name())
		}
		for _, c := range node.Children() {
			walk(c)
		}
	}
	walk(e)
	return names
}

// NormalizeKey canonicalizes a value for use as a join/group key; it is
// core.NormalizeKey so probe keys collide with index keys.
func NormalizeKey(v sqltypes.Value) sqltypes.Value { return core.NormalizeKey(v) }

// AppendValueKey appends the canonical key encoding of v to dst and returns
// the extended buffer. The encoding is normalized (NormalizeKey) so values
// that compare equal across numeric widths encode identically. Both the
// row-at-a-time and the vectorized operators key their hash tables with
// this append-into-reusable-buffer API: lookups go through `m[string(buf)]`
// (which Go compiles without a string allocation) and only inserting a new
// key materializes a string.
func AppendValueKey(dst []byte, v sqltypes.Value) []byte {
	var buf [8]byte
	v = NormalizeKey(v)
	dst = append(dst, byte(v.T))
	switch v.T {
	case sqltypes.Unknown:
	case sqltypes.Float64:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		dst = append(dst, buf[:]...)
	case sqltypes.String:
		binary.LittleEndian.PutUint64(buf[:], uint64(len(v.S)))
		dst = append(dst, buf[:]...)
		dst = append(dst, v.S...)
	default:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// AppendRowKey appends the composite key encoding of the given column
// ordinals of row to dst.
func AppendRowKey(dst []byte, row sqltypes.Row, ordinals []int) []byte {
	for _, o := range ordinals {
		dst = AppendValueKey(dst, row[o])
	}
	return dst
}

// appendValuesKey appends the encoding of a value list (a group-key row).
func appendValuesKey(dst []byte, vals []sqltypes.Value) []byte {
	for _, v := range vals {
		dst = AppendValueKey(dst, v)
	}
	return dst
}

// keyOf extracts and normalizes a single-column key.
func keyOf(row sqltypes.Row, ordinal int) sqltypes.Value {
	return NormalizeKey(row[ordinal])
}

// rowKeyHash hashes the composite key of the given ordinals — the shuffle
// partitioning function for multi-column keys. It combines the normalized
// per-value hashes with the shared sqltypes combiner (the columnar
// exchange's batch kernel uses the same one), so no key bytes are
// materialized per row and both exchanges route identically.
func rowKeyHash(row sqltypes.Row, ordinals []int) uint64 {
	h := sqltypes.HashSeed
	for _, o := range ordinals {
		h = sqltypes.CombineHash(h, NormalizeKey(row[o]).Hash64())
	}
	return h
}

// keyPartitioner builds the hash partitioner for the given key ordinals:
// single-column keys route by the normalized value's hash (matching the
// index partitioning), composite keys by the combined per-value hash.
func keyPartitioner(keys []int, n int) *rdd.HashPartitioner {
	if len(keys) == 1 {
		k := keys[0]
		return &rdd.HashPartitioner{N: n, Key: func(r sqltypes.Row) sqltypes.Value {
			return keyOf(r, k)
		}}
	}
	return &rdd.HashPartitioner{N: n, Hash: func(r sqltypes.Row) uint64 {
		return rowKeyHash(r, keys)
	}}
}

// hasNullKey reports whether any key column is NULL (null keys never join).
func hasNullKey(row sqltypes.Row, ordinals []int) bool {
	for _, o := range ordinals {
		if row[o].IsNull() {
			return true
		}
	}
	return false
}

// nullRow returns a row of n NULLs (outer-join padding).
func nullRow(n int) sqltypes.Row {
	r := make(sqltypes.Row, n)
	for i := range r {
		r[i] = sqltypes.Null
	}
	return r
}

// callbackIter adapts a push-style producer into a RowIter by buffering.
type sliceBuilder struct {
	rows []sqltypes.Row
}

func (b *sliceBuilder) add(r sqltypes.Row) { b.rows = append(b.rows, r) }
func (b *sliceBuilder) iter() sqltypes.RowIter {
	return sqltypes.NewSliceIter(b.rows)
}
