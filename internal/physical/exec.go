// Package physical implements the physical operators the planner lowers
// logical plans into, including the paper's indexed operators (IndexLookup,
// IndexedScan, IndexedJoin) alongside the vanilla ones (columnar scan,
// filter, project, hash aggregate, shuffle/broadcast hash join, sort,
// limit, exchange). Operators execute by building RDD lineage graphs.
package physical

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"

	"indexeddf/internal/core"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

// Exec is a physical operator.
type Exec interface {
	// Schema is the operator's output schema.
	Schema() *sqltypes.Schema
	// Children returns input operators.
	Children() []Exec
	// Execute builds the RDD computing the operator's output.
	Execute(ec *ExecContext) (rdd.RDD, error)
	fmt.Stringer
}

// ExecContext carries per-query execution state. Indexed-table snapshots
// are memoized so every indexed operator in one query reads the same
// multi-version view.
type ExecContext struct {
	RDD *rdd.Context

	mu    sync.Mutex
	snaps map[*core.IndexedTable]*core.Snapshot
}

// NewExecContext builds an ExecContext on an rdd Context.
func NewExecContext(rc *rdd.Context) *ExecContext {
	return &ExecContext{RDD: rc, snaps: make(map[*core.IndexedTable]*core.Snapshot)}
}

// SnapshotOf returns the query's pinned snapshot of t, taking it on first
// use.
func (ec *ExecContext) SnapshotOf(t *core.IndexedTable) *core.Snapshot {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	s, ok := ec.snaps[t]
	if !ok {
		s = t.Snapshot()
		ec.snaps[t] = s
	}
	return s
}

// TreeString renders a physical plan as an indented tree.
func TreeString(e Exec) string {
	var sb strings.Builder
	var rec func(Exec, int)
	rec = func(node Exec, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(node.String())
		sb.WriteByte('\n')
		for _, c := range node.Children() {
			rec(c, depth+1)
		}
	}
	rec(e, 0)
	return sb.String()
}

// NormalizeKey canonicalizes a value for use as a join/group key; it is
// core.NormalizeKey so probe keys collide with index keys.
func NormalizeKey(v sqltypes.Value) sqltypes.Value { return core.NormalizeKey(v) }

// encodeValues renders a composite key as a byte string for map grouping.
func encodeValues(vals []sqltypes.Value) string {
	var sb []byte
	var buf [8]byte
	for _, v := range vals {
		v = NormalizeKey(v)
		sb = append(sb, byte(v.T))
		switch v.T {
		case sqltypes.Unknown:
		case sqltypes.Float64:
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
			sb = append(sb, buf[:]...)
		case sqltypes.String:
			binary.LittleEndian.PutUint64(buf[:], uint64(len(v.S)))
			sb = append(sb, buf[:]...)
			sb = append(sb, v.S...)
		default:
			binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
			sb = append(sb, buf[:]...)
		}
	}
	return string(sb)
}

// keyOf extracts and normalizes a single-column key.
func keyOf(row sqltypes.Row, ordinal int) sqltypes.Value {
	return NormalizeKey(row[ordinal])
}

// multiKeyOf extracts a composite key string.
func multiKeyOf(row sqltypes.Row, ordinals []int) string {
	vals := make([]sqltypes.Value, len(ordinals))
	for i, o := range ordinals {
		vals[i] = row[o]
	}
	return encodeValues(vals)
}

// hasNullKey reports whether any key column is NULL (null keys never join).
func hasNullKey(row sqltypes.Row, ordinals []int) bool {
	for _, o := range ordinals {
		if row[o].IsNull() {
			return true
		}
	}
	return false
}

// nullRow returns a row of n NULLs (outer-join padding).
func nullRow(n int) sqltypes.Row {
	r := make(sqltypes.Row, n)
	for i := range r {
		r[i] = sqltypes.Null
	}
	return r
}

// callbackIter adapts a push-style producer into a RowIter by buffering.
type sliceBuilder struct {
	rows []sqltypes.Row
}

func (b *sliceBuilder) add(r sqltypes.Row) { b.rows = append(b.rows, r) }
func (b *sliceBuilder) iter() sqltypes.RowIter {
	return sqltypes.NewSliceIter(b.rows)
}
