package physical

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"indexeddf/internal/expr"
	"indexeddf/internal/obs"
	"indexeddf/internal/vector"
)

// The adaptive filter evaluates a multi-conjunct predicate as a cascade
// — each conjunct's kernel runs only over the survivors of the previous
// ones, compacting between stages — and periodically re-ranks the
// cascade by observed cost and selectivity. Evaluation order cannot
// change results: a row passes iff every conjunct is TRUE (rows where a
// conjunct is FALSE or NULL drop at that stage, exactly as the fused
// AND kernel's three-valued logic drops them at the end), and predicate
// kernels are pure (divide-by-zero yields NULL, not an error). The
// output is therefore bit-identical to the fused kernel in any order.

// rerankWarm/rerankEvery pace re-ranking: after every one of the first
// few batches — one mis-ordered batch is all the warmup a cascade needs,
// and the next re-ranks smooth out first-batch timing noise — then
// periodically to track drift. A rerank is a stable sort of a handful of
// indices, three orders of magnitude cheaper than evaluating a batch.
const (
	rerankWarm  = 4
	rerankEvery = 32
)

// adaptConj is one conjunct of an adaptive cascade plus its observed
// per-task totals.
type adaptConj struct {
	pred     *expr.VecExpr
	idx      int // position in the planned predicate order
	rowsIn   int64
	rowsKept int64
	wallNs   int64
}

// rank scores a conjunct for ordering: expected cost per input row
// divided by the fraction of rows it drops, so cheap highly-selective
// conjuncts sort first. Unobserved conjuncts (starved by an earlier
// stage dropping everything) rank last.
func (c *adaptConj) rank() float64 {
	if c.rowsIn == 0 {
		return 1e18
	}
	costPerRow := float64(c.wallNs) / float64(c.rowsIn)
	drop := 1 - float64(c.rowsKept)/float64(c.rowsIn)
	if drop < 1e-6 {
		drop = 1e-6
	}
	return costPerRow / drop
}

type vecAdaptiveFilterIter struct {
	in      vector.BatchIter
	conjs   []adaptConj
	order   []int // evaluation order: indices into conjs
	scratch [2]*vector.Batch
	sel     []int
	st      *obs.OpStats

	batches int64
	initial string // plan-order label, rendered once
}

// newVecAdaptiveFilterIter builds the cascade; preds are in planned
// predicate order, mk allocates compaction scratch batches.
func newVecAdaptiveFilterIter(in vector.BatchIter, preds []*expr.VecExpr, mk func() *vector.Batch, st *obs.OpStats) *vecAdaptiveFilterIter {
	it := &vecAdaptiveFilterIter{in: in, st: st}
	it.conjs = make([]adaptConj, len(preds))
	it.order = make([]int, len(preds))
	for i, p := range preds {
		it.conjs[i] = adaptConj{pred: p, idx: i}
		it.order[i] = i
	}
	it.scratch[0], it.scratch[1] = mk(), mk()
	it.initial = it.orderLabel()
	return it
}

// orderLabel renders the current evaluation order as "c1,c0,...", where
// ci is the i-th conjunct of the planned predicate.
func (it *vecAdaptiveFilterIter) orderLabel() string {
	var sb strings.Builder
	for i, k := range it.order {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('c')
		sb.WriteString(strconv.Itoa(it.conjs[k].idx))
	}
	return sb.String()
}

// rerank reorders the cascade by observed rank (stable on the current
// order so ties don't oscillate) and publishes any change.
func (it *vecAdaptiveFilterIter) rerank() {
	ranks := make([]float64, len(it.conjs))
	for i := range it.conjs {
		ranks[i] = it.conjs[i].rank()
	}
	before := it.orderLabel()
	sort.SliceStable(it.order, func(a, b int) bool {
		return ranks[it.order[a]] < ranks[it.order[b]]
	})
	after := it.orderLabel()
	if after != before || it.st.Reorder() != "" {
		it.st.NoteReorder(it.initial + "→" + after)
	}
}

// Next implements vector.BatchIter.
func (it *vecAdaptiveFilterIter) Next() (*vector.Batch, error) {
	for {
		b, err := it.in.Next()
		if err != nil || b == nil {
			return nil, err
		}
		it.st.AddRowsIn(int64(b.Len()))
		it.batches++
		if it.batches <= rerankWarm || it.batches%rerankEvery == 0 {
			it.rerank()
		}
		cur := b
		alive := true
		for _, k := range it.order {
			c := &it.conjs[k]
			start := time.Now()
			bools, err := c.pred.Eval(cur)
			if err != nil {
				return nil, err
			}
			it.sel = vector.SelectTrue(bools, it.sel[:0])
			c.wallNs += time.Since(start).Nanoseconds()
			c.rowsIn += int64(cur.Len())
			c.rowsKept += int64(len(it.sel))
			if len(it.sel) == 0 {
				alive = false
				break
			}
			if len(it.sel) == cur.Len() {
				continue // everything survived: no compaction needed
			}
			// Compact survivors into the scratch batch the current input
			// doesn't occupy (Gather requires dst != src).
			dst := it.scratch[0]
			if cur == dst {
				dst = it.scratch[1]
			}
			vector.Gather(dst, cur, it.sel)
			cur = dst
		}
		if !alive {
			continue
		}
		return cur, nil
	}
}
