package physical

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/expr"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

// ---------------------------------------------------------------------------
// ColumnarScan — vanilla cached table scan (+ columnar projection pushdown)

// ColumnarScanExec scans a ColumnTable. When the table is cached, rows come
// from the columnar batches; a pushed-down projection touches only the
// referenced column vectors — the baseline's projection fast path.
type ColumnarScanExec struct {
	Table      *catalog.ColumnTable
	Projection []int // nil = all columns
	schema     *sqltypes.Schema
}

// NewColumnarScan builds a scan of table producing outSchema (the qualified
// relation schema, already projected when projection is non-nil).
func NewColumnarScan(table *catalog.ColumnTable, projection []int, outSchema *sqltypes.Schema) *ColumnarScanExec {
	return &ColumnarScanExec{Table: table, Projection: projection, schema: outSchema}
}

// Schema implements Exec.
func (s *ColumnarScanExec) Schema() *sqltypes.Schema { return s.schema }

// Children implements Exec.
func (s *ColumnarScanExec) Children() []Exec { return nil }

func (s *ColumnarScanExec) String() string {
	if s.Projection != nil {
		return fmt.Sprintf("ColumnarScan %s cols=%v", s.Table.Name(), s.Projection)
	}
	return fmt.Sprintf("ColumnarScan %s", s.Table.Name())
}

// Execute implements Exec.
func (s *ColumnarScanExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	table := s.Table
	proj := s.Projection
	n := table.NumPartitions()
	st := ec.Stats(s)
	return ec.RDD.NewIterRDD(nil, n, func(_ *rdd.TaskContext, p int, _ sqltypes.RowIter) (sqltypes.RowIter, error) {
		if !table.IsCached() {
			// Uncached: walk the row partition.
			rows := table.RowPartition(p)
			if proj == nil {
				return obs.Rows(st, sqltypes.NewSliceIter(rows)), nil
			}
			out := make([]sqltypes.Row, len(rows))
			for i, r := range rows {
				pr := make(sqltypes.Row, len(proj))
				for j, c := range proj {
					pr[j] = r[c]
				}
				out[i] = pr
			}
			return obs.Rows(st, sqltypes.NewSliceIter(out)), nil
		}
		batch, err := table.ColumnarPartition(p)
		if err != nil {
			return nil, err
		}
		nr := batch.NumRows()
		out := make([]sqltypes.Row, nr)
		if proj == nil {
			for i := 0; i < nr; i++ {
				out[i] = batch.Row(i)
			}
		} else {
			for i := 0; i < nr; i++ {
				out[i] = batch.ProjectRow(i, proj, nil)
			}
		}
		return obs.Rows(st, sqltypes.NewSliceIter(out)), nil
	}), nil
}

// ---------------------------------------------------------------------------
// IndexedScan — full scan of the Indexed DataFrame's row batches

// IndexedScanExec scans an IndexedTable snapshot partition by partition.
// It is a row-store scan: even with a projection it walks every record and
// decodes the requested columns, which is why the paper's Figure 2 shows
// projections slower than the columnar cache.
type IndexedScanExec struct {
	Table      *catalog.IndexedTable
	Projection []int
	schema     *sqltypes.Schema
}

// NewIndexedScan builds a snapshot scan.
func NewIndexedScan(table *catalog.IndexedTable, projection []int, outSchema *sqltypes.Schema) *IndexedScanExec {
	return &IndexedScanExec{Table: table, Projection: projection, schema: outSchema}
}

// Schema implements Exec.
func (s *IndexedScanExec) Schema() *sqltypes.Schema { return s.schema }

// Children implements Exec.
func (s *IndexedScanExec) Children() []Exec { return nil }

func (s *IndexedScanExec) String() string {
	if s.Projection != nil {
		return fmt.Sprintf("IndexedScan %s cols=%v", s.Table.Name(), s.Projection)
	}
	return fmt.Sprintf("IndexedScan %s", s.Table.Name())
}

// Execute implements Exec.
func (s *IndexedScanExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	snap := ec.SnapshotOf(s.Table.Core())
	proj := s.Projection
	st := ec.Stats(s)
	return ec.RDD.NewIterRDD(nil, snap.NumPartitions(), func(tc *rdd.TaskContext, p int, _ sqltypes.RowIter) (sqltypes.RowIter, error) {
		var b sliceBuilder
		var err error
		n := 0
		visit := func(row sqltypes.Row) bool {
			if n++; n%1024 == 0 && tc.Err() != nil {
				return false // cancelled mid-scan; surfaced below
			}
			b.add(row.Clone())
			return true
		}
		if proj == nil {
			err = snap.ScanPartition(p, visit)
		} else {
			err = snap.ScanPartitionColumns(p, proj, visit)
		}
		if err != nil {
			return nil, err
		}
		if cerr := tc.Err(); cerr != nil {
			return nil, cerr
		}
		return obs.Rows(st, b.iter()), nil
	}), nil
}

// ---------------------------------------------------------------------------
// IndexLookup — the paper's point lookup (`getRows(key)`)

// IndexLookupExec answers an equality filter on the indexed column with one
// Ctrie lookup plus a backward-chain walk, instead of a scan. A residual
// predicate (the rest of the WHERE clause) filters the chain rows. The key
// is a constant expression — a literal, or a prepared-statement parameter
// that bind-time substitution replaces before execution.
type IndexLookupExec struct {
	Table    *catalog.IndexedTable
	Key      expr.Expr // *expr.Literal, or *expr.Param until bound
	Residual expr.Expr // bound against the table schema; may be nil
	schema   *sqltypes.Schema
}

// NewIndexLookup builds an index lookup on a literal key.
func NewIndexLookup(table *catalog.IndexedTable, key sqltypes.Value, residual expr.Expr, outSchema *sqltypes.Schema) *IndexLookupExec {
	return NewIndexLookupKeyExpr(table, expr.Lit(key), residual, outSchema)
}

// NewIndexLookupKeyExpr builds an index lookup whose key is a constant
// expression (literal or parameter placeholder).
func NewIndexLookupKeyExpr(table *catalog.IndexedTable, key expr.Expr, residual expr.Expr, outSchema *sqltypes.Schema) *IndexLookupExec {
	return &IndexLookupExec{Table: table, Key: key, Residual: residual, schema: outSchema}
}

// Schema implements Exec.
func (s *IndexLookupExec) Schema() *sqltypes.Schema { return s.schema }

// Children implements Exec.
func (s *IndexLookupExec) Children() []Exec { return nil }

func (s *IndexLookupExec) String() string {
	if s.Residual != nil {
		return fmt.Sprintf("IndexLookup %s key=%s residual=%s", s.Table.Name(), s.Key, s.Residual)
	}
	return fmt.Sprintf("IndexLookup %s key=%s", s.Table.Name(), s.Key)
}

// Execute implements Exec.
func (s *IndexLookupExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	snap := ec.SnapshotOf(s.Table.Core())
	key, err := s.Key.Eval(nil)
	if err != nil {
		// An unbound parameter reaches execution only when the statement
		// was run ad hoc instead of through a prepared statement.
		return nil, err
	}
	residual := s.Residual
	st := ec.Stats(s)
	// A single partition computes the lookup: the key's home partition.
	return ec.RDD.NewIterRDD(nil, 1, func(_ *rdd.TaskContext, _ int, _ sqltypes.RowIter) (sqltypes.RowIter, error) {
		var b sliceBuilder
		var evalErr error
		err := snap.LookupEach(key, func(row sqltypes.Row) bool {
			if residual != nil {
				keep, err := expr.EvalPredicate(residual, row)
				if err != nil {
					evalErr = err
					return false
				}
				if !keep {
					return true
				}
			}
			b.add(row.Clone())
			return true
		})
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		return obs.Rows(st, b.iter()), nil
	}), nil
}

// ---------------------------------------------------------------------------
// Values — literal rows

// ValuesExec emits literal rows in a single partition.
type ValuesExec struct {
	Rows   []sqltypes.Row
	schema *sqltypes.Schema
}

// NewValues builds a literal-rows operator.
func NewValues(rows []sqltypes.Row, schema *sqltypes.Schema) *ValuesExec {
	return &ValuesExec{Rows: rows, schema: schema}
}

// Schema implements Exec.
func (v *ValuesExec) Schema() *sqltypes.Schema { return v.schema }

// Children implements Exec.
func (v *ValuesExec) Children() []Exec { return nil }

func (v *ValuesExec) String() string { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// Execute implements Exec.
func (v *ValuesExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	return ec.RDD.NewSliceRDD([][]sqltypes.Row{v.Rows}), nil
}
