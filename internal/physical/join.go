package physical

import (
	"fmt"

	"indexeddf/internal/expr"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

// JoinType mirrors plan join types at the physical level.
type JoinType uint8

// Physical join types.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
)

func (t JoinType) String() string { return [...]string{"Inner", "LeftOuter"}[t] }

// joinTable is an equi-join hash table: encoded key -> bucket of build
// rows. Buckets are held by pointer so a probe or build touches the map
// with `m[string(buf)]` lookups only — the key string is allocated once
// per distinct key at insert, never per row.
type joinTable struct {
	m map[string]*joinBucket
}

type joinBucket struct {
	rows []sqltypes.Row
}

// Lookup returns the build rows for the key encoded in buf, or nil.
func (t joinTable) Lookup(buf []byte) []sqltypes.Row {
	if b := t.m[string(buf)]; b != nil {
		return b.rows
	}
	return nil
}

// buildHashTable maps normalized composite keys to build-side rows,
// skipping null keys (SQL equi-joins never match NULL).
func buildHashTable(rows []sqltypes.Row, keys []int) joinTable {
	ht := joinTable{m: make(map[string]*joinBucket, len(rows))}
	var buf []byte
	for _, r := range rows {
		if hasNullKey(r, keys) {
			continue
		}
		buf = AppendRowKey(buf[:0], r, keys)
		b := ht.m[string(buf)]
		if b == nil {
			b = &joinBucket{}
			ht.m[string(buf)] = b
		}
		b.rows = append(b.rows, r)
	}
	return ht
}

// probe joins stream rows against the hash table; residual (bound against
// the concatenated left+right schema) further filters matches. tc (may be
// nil) is polled so a cancelled query stops a wide join mid-partition.
func probe(tc *rdd.TaskContext, stream []sqltypes.Row, ht joinTable, streamKeys []int,
	streamIsLeft bool, joinType JoinType, residual expr.Expr, buildWidth int) ([]sqltypes.Row, error) {
	var out []sqltypes.Row
	var buf []byte
	for i, s := range stream {
		if i%1024 == 0 {
			if err := tc.Err(); err != nil {
				return nil, err
			}
		}
		matched := false
		if !hasNullKey(s, streamKeys) {
			buf = AppendRowKey(buf[:0], s, streamKeys)
			for _, b := range ht.Lookup(buf) {
				var joined sqltypes.Row
				if streamIsLeft {
					joined = s.Concat(b)
				} else {
					joined = b.Concat(s)
				}
				if residual != nil {
					keep, err := expr.EvalPredicate(residual, joined)
					if err != nil {
						return nil, err
					}
					if !keep {
						continue
					}
				}
				matched = true
				out = append(out, joined)
			}
		}
		if !matched && joinType == LeftOuterJoin && streamIsLeft {
			out = append(out, s.Concat(nullRow(buildWidth)))
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// ShuffleHashJoin

// ShuffleHashJoinExec hash partitions both sides on the join key and joins
// each pair of co-partitions (build = right).
type ShuffleHashJoinExec struct {
	Left, Right         Exec
	LeftKeys, RightKeys []int
	Type                JoinType
	Residual            expr.Expr
	NumPartitions       int
}

// NewShuffleHashJoin builds a shuffle hash join.
func NewShuffleHashJoin(left, right Exec, leftKeys, rightKeys []int, t JoinType,
	residual expr.Expr, numPartitions int) *ShuffleHashJoinExec {
	return &ShuffleHashJoinExec{Left: left, Right: right, LeftKeys: leftKeys,
		RightKeys: rightKeys, Type: t, Residual: residual, NumPartitions: numPartitions}
}

// Schema implements Exec.
func (j *ShuffleHashJoinExec) Schema() *sqltypes.Schema {
	return j.Left.Schema().Concat(j.Right.Schema())
}

// Children implements Exec.
func (j *ShuffleHashJoinExec) Children() []Exec { return []Exec{j.Left, j.Right} }

func (j *ShuffleHashJoinExec) String() string {
	return fmt.Sprintf("ShuffleHashJoin %s lkeys=%v rkeys=%v", j.Type, j.LeftKeys, j.RightKeys)
}

// Execute implements Exec.
func (j *ShuffleHashJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	left, err := j.Left.Execute(ec)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ec)
	if err != nil {
		return nil, err
	}
	ls := ec.RDD.NewShuffledRDD(left, keyPartitioner(j.LeftKeys, j.NumPartitions))
	rs := ec.RDD.NewShuffledRDD(right, keyPartitioner(j.RightKeys, j.NumPartitions))
	lKeys, rKeys := j.LeftKeys, j.RightKeys
	jt, residual := j.Type, j.Residual
	rightWidth := j.Right.Schema().Len()
	st := ec.Stats(j)
	return ec.RDD.NewZipRDD(ls, rs, func(tc *rdd.TaskContext, _ int, lit, rit sqltypes.RowIter) (sqltypes.RowIter, error) {
		rrows, err := sqltypes.Drain(rit)
		if err != nil {
			return nil, err
		}
		lrows, err := sqltypes.Drain(lit)
		if err != nil {
			return nil, err
		}
		st.AddRowsIn(int64(len(lrows) + len(rrows)))
		ht := buildHashTable(rrows, rKeys)
		out, err := probe(tc, lrows, ht, lKeys, true, jt, residual, rightWidth)
		if err != nil {
			return nil, err
		}
		return obs.Rows(st, sqltypes.NewSliceIter(out)), nil
	})
}

// ---------------------------------------------------------------------------
// BroadcastHashJoin

// BroadcastHashJoinExec collects the build side at the driver and streams
// the other side through a hash table, avoiding any shuffle.
type BroadcastHashJoinExec struct {
	Stream, Build         Exec
	StreamKeys, BuildKeys []int
	// BuildIsRight records whether Build is the logical right side (output
	// column order must stay left-then-right).
	BuildIsRight bool
	Type         JoinType
	Residual     expr.Expr
}

// NewBroadcastHashJoin builds a broadcast hash join.
func NewBroadcastHashJoin(stream, build Exec, streamKeys, buildKeys []int,
	buildIsRight bool, t JoinType, residual expr.Expr) *BroadcastHashJoinExec {
	return &BroadcastHashJoinExec{Stream: stream, Build: build, StreamKeys: streamKeys,
		BuildKeys: buildKeys, BuildIsRight: buildIsRight, Type: t, Residual: residual}
}

// Schema implements Exec.
func (j *BroadcastHashJoinExec) Schema() *sqltypes.Schema {
	if j.BuildIsRight {
		return j.Stream.Schema().Concat(j.Build.Schema())
	}
	return j.Build.Schema().Concat(j.Stream.Schema())
}

// Children implements Exec.
func (j *BroadcastHashJoinExec) Children() []Exec { return []Exec{j.Stream, j.Build} }

func (j *BroadcastHashJoinExec) String() string {
	return fmt.Sprintf("BroadcastHashJoin %s skeys=%v bkeys=%v", j.Type, j.StreamKeys, j.BuildKeys)
}

// Execute implements Exec.
func (j *BroadcastHashJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	buildRDD, err := j.Build.Execute(ec)
	if err != nil {
		return nil, err
	}
	buildRows, err := ec.RDD.CollectCtx(ec.Ctx, buildRDD) // the broadcast
	if err != nil {
		return nil, err
	}
	ht := buildHashTable(buildRows, j.BuildKeys)
	stream, err := j.Stream.Execute(ec)
	if err != nil {
		return nil, err
	}
	sKeys := j.StreamKeys
	jt, residual := j.Type, j.Residual
	buildWidth := j.Build.Schema().Len()
	streamIsLeft := j.BuildIsRight
	st := ec.Stats(j)
	return ec.RDD.NewIterRDD(stream, 0, func(tc *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		srows, err := sqltypes.Drain(in)
		if err != nil {
			return nil, err
		}
		st.AddRowsIn(int64(len(srows)))
		out, err := probe(tc, srows, ht, sKeys, streamIsLeft, jt, residual, buildWidth)
		if err != nil {
			return nil, err
		}
		return obs.Rows(st, sqltypes.NewSliceIter(out)), nil
	}), nil
}

// ---------------------------------------------------------------------------
// NestedLoopJoin

// NestedLoopJoinExec evaluates an arbitrary condition against the cross
// product, broadcasting the right side. The fallback for non-equi joins.
type NestedLoopJoinExec struct {
	Left, Right Exec
	Type        JoinType
	Cond        expr.Expr // bound against concatenated schema; nil = cross
}

// NewNestedLoopJoin builds a nested-loop join.
func NewNestedLoopJoin(left, right Exec, t JoinType, cond expr.Expr) *NestedLoopJoinExec {
	return &NestedLoopJoinExec{Left: left, Right: right, Type: t, Cond: cond}
}

// Schema implements Exec.
func (j *NestedLoopJoinExec) Schema() *sqltypes.Schema {
	return j.Left.Schema().Concat(j.Right.Schema())
}

// Children implements Exec.
func (j *NestedLoopJoinExec) Children() []Exec { return []Exec{j.Left, j.Right} }

func (j *NestedLoopJoinExec) String() string {
	if j.Cond == nil {
		return fmt.Sprintf("NestedLoopJoin %s (cross)", j.Type)
	}
	return fmt.Sprintf("NestedLoopJoin %s on %s", j.Type, j.Cond)
}

// Execute implements Exec.
func (j *NestedLoopJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	rightRDD, err := j.Right.Execute(ec)
	if err != nil {
		return nil, err
	}
	rightRows, err := ec.RDD.CollectCtx(ec.Ctx, rightRDD)
	if err != nil {
		return nil, err
	}
	left, err := j.Left.Execute(ec)
	if err != nil {
		return nil, err
	}
	cond, jt := j.Cond, j.Type
	rightWidth := j.Right.Schema().Len()
	st := ec.Stats(j)
	return ec.RDD.NewIterRDD(left, 0, func(tc *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		in = obs.CountInto(st, in)
		var out []sqltypes.Row
		for {
			// The cross product explodes quadratically; poll cancellation
			// every stream row so a cancelled query stops mid-partition.
			if err := tc.Err(); err != nil {
				return nil, err
			}
			l, err := in.Next()
			if err != nil {
				return nil, err
			}
			if l == nil {
				break
			}
			matched := false
			for _, r := range rightRows {
				joined := l.Concat(r)
				if cond != nil {
					keep, err := expr.EvalPredicate(cond, joined)
					if err != nil {
						return nil, err
					}
					if !keep {
						continue
					}
				}
				matched = true
				out = append(out, joined)
			}
			if !matched && jt == LeftOuterJoin {
				out = append(out, l.Concat(nullRow(rightWidth)))
			}
		}
		return obs.Rows(st, sqltypes.NewSliceIter(out)), nil
	}), nil
}
