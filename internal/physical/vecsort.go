package physical

import (
	"errors"
	"fmt"
	"strings"

	"indexeddf/internal/columnar"
	"indexeddf/internal/expr"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/spill"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// ---------------------------------------------------------------------------
// VecSort

// VecSortExec is the vectorized SortExec: each partition extracts its sort
// keys column-wise into typed lanes, sorts an index permutation without
// boxing a value, and gathers a sorted run; the runs then cross the
// columnar exchange and a k-way galloping merge streams the globally
// sorted result. Where SortExec drains every partition into one []Row and
// sorts row-at-a-time, this path keeps the data columnar end to end and
// its merge produces the first sorted row without materializing the rest.
// Ordering (NULL first ascending, ties in partition-then-arrival order)
// matches SortExec exactly.
type VecSortExec struct {
	Child  Exec
	Orders []SortOrder
}

// NewVecSort builds a vectorized global sort. Every order expression must
// be vectorizable (the planner checks expr.CanVectorize).
func NewVecSort(child Exec, orders []SortOrder) *VecSortExec {
	return &VecSortExec{Child: child, Orders: orders}
}

// Schema implements Exec.
func (s *VecSortExec) Schema() *sqltypes.Schema { return s.Child.Schema() }

// Children implements Exec.
func (s *VecSortExec) Children() []Exec { return []Exec{s.Child} }

func (s *VecSortExec) String() string {
	return "VecSort [" + orderStrings(s.Orders) + "]"
}

func orderStrings(orders []SortOrder) string {
	parts := make([]string, len(orders))
	for i, o := range orders {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		parts[i] = o.Expr.String() + " " + dir
	}
	return strings.Join(parts, ", ")
}

// Execute implements Exec.
func (s *VecSortExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := s.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	schema := s.Child.Schema()
	orders := s.Orders
	st := ec.Stats(s)
	single := child.NumPartitions() <= 1
	runs := ec.RDD.NewBatchIterRDD(child, 0, schema, func(tc *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		out, err := sortPartition(tc, in, schema, orders, st)
		if err != nil || !single {
			return out, err
		}
		return obs.Batches(st, out), nil
	})
	if single {
		return runs, nil
	}
	return ec.RDD.NewBatchMergeRDD(runs, schema, func(tc *rdd.TaskContext, ins []vector.BatchIter) (vector.BatchIter, error) {
		out, err := newRunMerge(tc, schema, orders, ins, -1)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, out), nil
	}), nil
}

// sortKeys compiles the order expressions to kernels and splits out the
// key types and directions. Compiled kernels own scratch state: callers
// compile one set per partition task or per merge run.
func sortKeys(orders []SortOrder) (exprs []*expr.VecExpr, types []sqltypes.Type, desc []bool, err error) {
	exprs = make([]*expr.VecExpr, len(orders))
	types = make([]sqltypes.Type, len(orders))
	desc = make([]bool, len(orders))
	for i, o := range orders {
		ve, ok := expr.CompileVec(o.Expr)
		if !ok {
			return nil, nil, nil, fmt.Errorf("physical: sort key %s is not vectorizable", o.Expr)
		}
		exprs[i] = ve
		types[i] = ve.Type()
		desc[i] = o.Desc
	}
	return exprs, types, desc, nil
}

// evalKeys evaluates every compiled key over b.
func evalKeys(exprs []*expr.VecExpr, b *vector.Batch) ([]*columnar.Vector, error) {
	out := make([]*columnar.Vector, len(exprs))
	for i, ve := range exprs {
		v, err := ve.Eval(b)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// sortPartition buffers one partition's batches (the producer reuses
// them), extracting sort keys into typed lanes as they stream past, then
// sorts the index permutation and serves the run as lazily gathered
// output batches.
//
// With out-of-core execution available and a budget in force, the buffer
// becomes a sequence of chunks: when the tracker refuses the next batch,
// the current chunk is sorted and streamed to a spill run file, its memory
// freed, and accumulation restarts. The output is then a k-way merge of
// the spilled sorted runs plus the final resident chunk — exactly the
// single-chunk path when nothing spilled.
func sortPartition(tc *rdd.TaskContext, in vector.BatchIter, schema *sqltypes.Schema,
	orders []SortOrder, st *obs.OpStats) (vector.BatchIter, error) {
	keyExprs, keyTypes, desc, err := sortKeys(orders)
	if err != nil {
		return nil, err
	}
	mem := tc.Mem()
	sp := tc.Ctx.SpillManager()
	external := sp.Enabled() && mem != nil
	qs := obs.FromContext(tc.Cancellation())
	lanes := vector.NewKeyLanes(keyTypes)
	buf := vector.NewBatchBuilder(schema, vector.DefaultBatchSize)
	var laneCharged, chunkCharged int64
	var spilled []*spill.Run

	// finishChunk sorts the buffered chunk, streams it to a sealed spill
	// run, and frees the chunk's memory. The permutation's bytes were
	// pre-charged per row (external mode charges 8 B/row alongside each
	// batch), so sorting needs no new budget here.
	finishChunk := func() error {
		sealed := buf.Seal()
		if lanes.Len() == 0 {
			return nil
		}
		idx, err := vector.SortIndicesInterruptible(lanes, desc, tc.Err)
		if err != nil {
			return err
		}
		run := sp.NewRun("VecSort", schema, mem, st, qs)
		if err := run.SpillNow(); err != nil {
			return err
		}
		it := &sortedRunIter{tc: tc, src: sealed, idx: idx, out: vector.NewBatch(schema)}
		for {
			b, err := it.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			if err := run.Append(b); err != nil {
				return err
			}
		}
		if err := run.Seal(); err != nil {
			return err
		}
		spilled = append(spilled, run)
		mem.Release(chunkCharged)
		chunkCharged, laneCharged = 0, 0
		lanes = vector.NewKeyLanes(keyTypes)
		return nil
	}

	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		st.AddRowsIn(int64(b.Len()))
		keys, err := evalKeys(keyExprs, b)
		if err != nil {
			return nil, err
		}
		lanes.AppendCols(keys)
		buf.Append(b)
		// Charge the run buffer as it grows: the buffered copy of the
		// producer-reused batch plus the key-lane delta (plus, out-of-core,
		// the permutation's 8 B/row so the chunk sort is pre-funded).
		need := b.MemBytes()
		if cur := lanes.MemBytes(); cur > laneCharged {
			need += cur - laneCharged
			laneCharged = cur
		}
		if external {
			need += int64(b.Len()) * 8
		}
		if rerr := mem.Reserve("VecSort", need); rerr != nil {
			if !external || !errors.Is(rerr, memory.ErrMemoryExceeded) {
				return nil, rerr
			}
			// Budget refused: the chunk (including this batch, whose bytes
			// were never charged) goes to disk and accumulation restarts.
			if err := finishChunk(); err != nil {
				return nil, err
			}
			continue
		}
		chunkCharged += need
		st.AddMem(need)
	}
	sealed := buf.Seal()
	if len(spilled) == 0 && !external {
		if err := mem.Reserve("VecSort", int64(lanes.Len())*8); err != nil {
			return nil, err
		}
		st.AddMem(int64(lanes.Len()) * 8)
	}
	if len(spilled) == 0 {
		idx, err := vector.SortIndicesInterruptible(lanes, desc, tc.Err)
		if err != nil {
			return nil, err
		}
		return &sortedRunIter{tc: tc, src: sealed, idx: idx, out: vector.NewBatch(schema)}, nil
	}
	// External merge: spilled sorted runs stream back from disk (each
	// deleting its file once exhausted), the final chunk stays resident.
	ins := make([]vector.BatchIter, 0, len(spilled)+1)
	for _, run := range spilled {
		it, err := run.Open(tc.Err, true)
		if err != nil {
			return nil, err
		}
		ins = append(ins, it)
	}
	if lanes.Len() > 0 {
		idx, err := vector.SortIndicesInterruptible(lanes, desc, tc.Err)
		if err != nil {
			return nil, err
		}
		ins = append(ins, &sortedRunIter{tc: tc, src: sealed, idx: idx, out: vector.NewBatch(schema)})
	}
	return newRunMerge(tc, schema, orders, ins, -1)
}

// sortedRunIter gathers the sorted permutation one output batch at a time
// (reusing the output batch), so a consumer that stops early — a top-n
// merge, a cancelled cursor — never pays for gathering the tail.
type sortedRunIter struct {
	tc  *rdd.TaskContext
	src []*vector.Batch
	idx []int
	pos int
	out *vector.Batch
}

// Next implements vector.BatchIter.
func (it *sortedRunIter) Next() (*vector.Batch, error) {
	if it.pos >= len(it.idx) {
		return nil, nil
	}
	if err := it.tc.Err(); err != nil {
		return nil, err
	}
	n := vector.DefaultBatchSize
	if n > len(it.idx)-it.pos {
		n = len(it.idx) - it.pos
	}
	vector.GatherInto(it.out, it.src, vector.DefaultBatchSize, it.idx[it.pos:it.pos+n])
	it.pos += n
	return it.out, nil
}

// newRunMerge builds the k-way merge of sorted runs, compiling a fresh
// key-extraction kernel per run (kernels own scratch vectors; one per run
// keeps each run's current keys stable while others advance). The merge
// polls tc for cancellation between segments.
func newRunMerge(tc *rdd.TaskContext, schema *sqltypes.Schema, orders []SortOrder,
	ins []vector.BatchIter, limit int64) (vector.BatchIter, error) {
	_, _, desc, err := sortKeys(orders)
	if err != nil {
		return nil, err
	}
	extracts := make([]vector.KeyExtract, len(ins))
	for i := range ins {
		keyExprs, _, _, err := sortKeys(orders)
		if err != nil {
			return nil, err
		}
		extracts[i] = func(b *vector.Batch) ([]*columnar.Vector, error) {
			return evalKeys(keyExprs, b)
		}
	}
	m := vector.NewMergeSorted(schema, ins, extracts, desc, limit)
	m.SetInterrupt(tc.Err)
	return m, nil
}

// ---------------------------------------------------------------------------
// VecTopN

// VecTopNExec fuses Limit n over Sort into a bounded top-n: each
// partition keeps only its n best rows in a heap over a compacting
// columnar store (a 1M-row partition under ORDER BY ... LIMIT 100 holds
// ~100 candidate rows, never the input), emits them as a sorted run, and
// the final merge reads at most n·partitions rows before truncating at n.
// The full global sort the row engine would run never happens.
type VecTopNExec struct {
	Child  Exec
	Orders []SortOrder
	N      int64
}

// NewVecTopN builds a vectorized top-n.
func NewVecTopN(child Exec, orders []SortOrder, n int64) *VecTopNExec {
	return &VecTopNExec{Child: child, Orders: orders, N: n}
}

// Schema implements Exec.
func (t *VecTopNExec) Schema() *sqltypes.Schema { return t.Child.Schema() }

// Children implements Exec.
func (t *VecTopNExec) Children() []Exec { return []Exec{t.Child} }

func (t *VecTopNExec) String() string {
	return fmt.Sprintf("VecTopN %d [%s]", t.N, orderStrings(t.Orders))
}

// Execute implements Exec.
func (t *VecTopNExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := t.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	schema := t.Child.Schema()
	orders := t.Orders
	n := t.N
	st := ec.Stats(t)
	single := child.NumPartitions() <= 1
	runs := ec.RDD.NewBatchIterRDD(child, 0, schema, func(tc *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		out, err := topNPartition(tc, in, schema, orders, n, st)
		if err != nil || !single {
			return out, err
		}
		return obs.Batches(st, out), nil
	})
	if single {
		return runs, nil // the collector already emits at most n sorted rows
	}
	return ec.RDD.NewBatchMergeRDD(runs, schema, func(tc *rdd.TaskContext, ins []vector.BatchIter) (vector.BatchIter, error) {
		out, err := newRunMerge(tc, schema, orders, ins, n)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, out), nil
	}), nil
}

// topNPartition scans one partition through the bounded collector and
// emits its top n as a sorted run.
func topNPartition(tc *rdd.TaskContext, in vector.BatchIter, schema *sqltypes.Schema,
	orders []SortOrder, n int64, st *obs.OpStats) (vector.BatchIter, error) {
	keyExprs, keyTypes, desc, err := sortKeys(orders)
	if err != nil {
		return nil, err
	}
	mem := tc.Mem()
	top := vector.NewTopN(schema, keyTypes, desc, int(n))
	var charged int64
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		st.AddRowsIn(int64(b.Len()))
		keys, err := evalKeys(keyExprs, b)
		if err != nil {
			return nil, err
		}
		top.Push(b, keys)
		// The heap store is bounded but not small (compaction allows ~4n
		// candidates plus string payloads); charge its high-water mark.
		if cur := top.MemBytes(); cur > charged {
			if err := mem.Reserve("VecTopN", cur-charged); err != nil {
				return nil, err
			}
			st.AddMem(cur - charged)
			charged = cur
		}
	}
	return vector.NewSliceIter(top.Emit()), nil
}
