package physical

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"indexeddf/internal/columnar"
	"indexeddf/internal/expr"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/spill"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// ---------------------------------------------------------------------------
// VecSort

// VecSortExec is the vectorized SortExec: each partition extracts its sort
// keys column-wise into typed lanes, sorts an index permutation without
// boxing a value, and gathers a sorted run; the runs then cross the
// columnar exchange and a k-way galloping merge streams the globally
// sorted result. Where SortExec drains every partition into one []Row and
// sorts row-at-a-time, this path keeps the data columnar end to end and
// its merge produces the first sorted row without materializing the rest.
// Ordering (NULL first ascending, ties in partition-then-arrival order)
// matches SortExec exactly.
type VecSortExec struct {
	Child  Exec
	Orders []SortOrder

	// Parallel is the number of range partitions the final merge stage
	// runs with (the planner sets it from PlannerConfig.SortPartitions).
	// With Parallel <= 1, or without a spill manager, the final stage is
	// the single k-way merge task; above 1 the per-partition sorted runs
	// are published to a shared coordinator and P reduce tasks each merge
	// one splitter-delimited key range, so their outputs concatenate in
	// sorted order. Inputs under minParallelSortRows collapse back to one
	// merge at run time regardless.
	Parallel int
}

// NewVecSort builds a vectorized global sort. Every order expression must
// be vectorizable (the planner checks expr.CanVectorize).
func NewVecSort(child Exec, orders []SortOrder) *VecSortExec {
	return &VecSortExec{Child: child, Orders: orders}
}

// Schema implements Exec.
func (s *VecSortExec) Schema() *sqltypes.Schema { return s.Child.Schema() }

// Children implements Exec.
func (s *VecSortExec) Children() []Exec { return []Exec{s.Child} }

func (s *VecSortExec) String() string {
	return "VecSort [" + orderStrings(s.Orders) + "]"
}

func orderStrings(orders []SortOrder) string {
	parts := make([]string, len(orders))
	for i, o := range orders {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		parts[i] = o.Expr.String() + " " + dir
	}
	return strings.Join(parts, ", ")
}

// Execute implements Exec.
func (s *VecSortExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := s.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	schema := s.Child.Schema()
	orders := s.Orders
	st := ec.Stats(s)
	single := child.NumPartitions() <= 1
	if !single && s.Parallel > 1 && ec.RDD.SpillManager().Enabled() {
		return s.executeRange(ec, child, schema, orders, st)
	}
	runs := ec.RDD.NewBatchIterRDD(child, 0, schema, func(tc *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		out, err := sortPartition(tc, in, schema, orders, st, nil, 0)
		if err != nil || !single {
			return out, err
		}
		return obs.Batches(st, out), nil
	})
	if single {
		return runs, nil
	}
	return ec.RDD.NewBatchMergeRDD(runs, schema, func(tc *rdd.TaskContext, ins []vector.BatchIter) (vector.BatchIter, error) {
		out, err := newRunMerge(tc, schema, orders, ins, -1)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, out), nil
	}), nil
}

// executeRange lowers the final sort stage to a range-partitioned merge.
// Map tasks sort their partition into chunk runs as usual but publish the
// runs — with the boxed first key and row count of every sealed batch —
// on a shared coordinator instead of sending rows through the exchange;
// the exchange stays in the lineage purely as the map→reduce barrier.
// Each of the P reduce tasks then derives splitters (once, from the
// published batch metadata), seeks every overlapping run directly to its
// first in-range batch, and k-way merges just its key range. Partition
// outputs concatenate in splitter order, so the result streams globally
// sorted. Inputs under minParallelSortRows yield zero splitters and the
// whole merge lands on partition 0 — the lazy single-merge path.
func (s *VecSortExec) executeRange(ec *ExecContext, child rdd.RDD, schema *sqltypes.Schema,
	orders []SortOrder, st *obs.OpStats) (rdd.RDD, error) {
	coord := &rangeSortCoord{}
	nParts := s.Parallel
	runs := ec.RDD.NewBatchIterRDD(child, 0, schema, func(tc *rdd.TaskContext, p int, in vector.BatchIter) (vector.BatchIter, error) {
		return sortPartition(tc, in, schema, orders, st, coord, p)
	})
	merged := ec.RDD.NewBatchRangeMergeRDD(runs, schema, nParts, func(tc *rdd.TaskContext, p int) (vector.BatchIter, error) {
		out, err := rangeMergePartition(tc, schema, orders, coord, nParts, p)
		if err != nil {
			return nil, err
		}
		// The streaming executor materializes and charges every result
		// partition beyond the one it is currently serving, so P merged
		// ranges returned as task output would re-buy the memory the sort
		// just spilled to avoid. Each reduce task instead streams its range
		// into a spilled output run (zero resident charge) and returns
		// nothing; the single-partition concat stage below replays the runs
		// in splitter order through the executor's lazy cursor path.
		sp := tc.Ctx.SpillManager()
		var run *spill.Run
		for {
			b, err := out.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if run == nil {
				run = sp.NewRun("VecSort", schema, tc.Mem(), st, obs.FromContext(tc.Cancellation()))
				if err := run.SpillNow(); err != nil {
					return nil, err
				}
			}
			if err := run.Append(b); err != nil {
				return nil, err
			}
		}
		if run != nil {
			if err := run.Seal(); err != nil {
				return nil, err
			}
		}
		coord.publishOut(p, nParts, run)
		st.NotePartitions(int64(nParts))
		return vector.NewSliceIter(nil), nil
	})
	return ec.RDD.NewBatchRangeMergeRDD(merged, schema, 1, func(tc *rdd.TaskContext, _ int) (vector.BatchIter, error) {
		return obs.Batches(st, &rangeConcatIter{tc: tc, runs: coord.takeOut()}), nil
	}), nil
}

// minParallelSortRows is the input size below which the range-partitioned
// merge collapses to a single merge partition: splitter overhead (P-1
// extra task startups, P run-open fans) beats the merge cost only once
// there is real work to divide.
const minParallelSortRows = 32768

// rangeSortCoord carries the map side's published sorted runs to the
// range-merge reduce tasks: chunk runs plus per-batch first keys and row
// counts (the splitter sample and the seek index), and the lazily
// computed splitters themselves.
type rangeSortCoord struct {
	mu    sync.Mutex
	metas []sortRunMeta

	once      sync.Once
	splitters [][]sqltypes.Value

	// outRuns[p] is reduce partition p's merged output run (nil when the
	// range was empty), replayed in order by the final concat stage.
	outRuns []*spill.Run
}

// sortRunMeta describes one published sorted chunk run.
type sortRunMeta struct {
	run       *spill.Run
	firstKeys [][]sqltypes.Value // boxed first key row of each sealed batch
	rows      []int              // row count of each sealed batch
	mapPart   int
	chunk     int
}

func (c *rangeSortCoord) publish(m sortRunMeta) {
	c.mu.Lock()
	c.metas = append(c.metas, m)
	c.mu.Unlock()
}

func (c *rangeSortCoord) publishOut(p, nParts int, run *spill.Run) {
	c.mu.Lock()
	if c.outRuns == nil {
		c.outRuns = make([]*spill.Run, nParts)
	}
	c.outRuns[p] = run
	c.mu.Unlock()
}

func (c *rangeSortCoord) takeOut() []*spill.Run {
	c.mu.Lock()
	runs := c.outRuns
	c.outRuns = nil
	c.mu.Unlock()
	return runs
}

// ordered returns the published runs sorted by (map partition, chunk) —
// the tie order the nested single-merge path produces, so equal keys
// leave the range merge in partition-then-arrival order too.
func (c *rangeSortCoord) ordered() []sortRunMeta {
	c.mu.Lock()
	metas := append([]sortRunMeta(nil), c.metas...)
	c.mu.Unlock()
	sort.Slice(metas, func(i, j int) bool {
		if metas[i].mapPart != metas[j].mapPart {
			return metas[i].mapPart < metas[j].mapPart
		}
		return metas[i].chunk < metas[j].chunk
	})
	return metas
}

// computeSplitters derives the range boundaries once, shared by all
// reduce tasks: every published batch contributes its first key weighted
// by its row count, and the weighted quantiles at i/nParts become the
// splitters. Duplicates collapse (a splitter list is strictly
// increasing), so heavy key skew yields fewer, wider partitions rather
// than empty ranges with dangling equal keys — equal keys always land
// wholly in one partition. Inputs under minParallelSortRows yield no
// splitters at all.
func (c *rangeSortCoord) computeSplitters(nParts int, desc []bool) [][]sqltypes.Value {
	c.once.Do(func() {
		type sample struct {
			key  []sqltypes.Value
			rows int64
		}
		var samples []sample
		var total int64
		c.mu.Lock()
		for _, m := range c.metas {
			for j, fk := range m.firstKeys {
				samples = append(samples, sample{fk, int64(m.rows[j])})
				total += int64(m.rows[j])
			}
		}
		c.mu.Unlock()
		if nParts <= 1 || total < minParallelSortRows {
			return
		}
		sort.SliceStable(samples, func(i, j int) bool {
			return vector.CompareKeyRows(samples[i].key, samples[j].key, desc) < 0
		})
		var splits [][]sqltypes.Value
		var acc int64
		next := 1
		for _, s := range samples {
			acc += s.rows
			for next < nParts && acc >= total*int64(next)/int64(nParts) {
				if len(splits) == 0 || vector.CompareKeyRows(splits[len(splits)-1], s.key, desc) < 0 {
					splits = append(splits, s.key)
				}
				next++
			}
		}
		c.splitters = splits
	})
	return c.splitters
}

// rangeMergePartition merges reduce partition p's key range
// (splitters[p-1], splitters[p]] from the published runs. Each run is
// opened directly at its first batch that can overlap the range (the
// per-batch first keys bound every batch's contents from both sides) and
// trimmed row-exactly by rangeTrimIter, so a P-way split decodes each
// run's batches once across all partitions, plus at most one straddling
// batch per boundary.
func rangeMergePartition(tc *rdd.TaskContext, schema *sqltypes.Schema, orders []SortOrder,
	coord *rangeSortCoord, nParts, p int) (vector.BatchIter, error) {
	_, _, desc, err := sortKeys(orders)
	if err != nil {
		return nil, err
	}
	splits := coord.computeSplitters(nParts, desc)
	if p > len(splits) {
		return vector.NewSliceIter(nil), nil // dedup shrank the split count
	}
	var lower, upper []sqltypes.Value
	if p > 0 {
		lower = splits[p-1]
	}
	if p < len(splits) {
		upper = splits[p]
	}
	var ins []vector.BatchIter
	for _, m := range coord.ordered() {
		if len(m.firstKeys) == 0 {
			continue
		}
		start := 0
		if lower != nil {
			c := sort.Search(len(m.firstKeys), func(j int) bool {
				return vector.CompareKeyRows(m.firstKeys[j], lower, desc) > 0
			})
			// Batches before c-1 are bounded above by their successor's
			// first key (≤ lower), so only batch c-1 can straddle the
			// boundary.
			start = c - 1
			if start < 0 {
				start = 0
			}
		}
		if upper != nil && vector.CompareKeyRows(m.firstKeys[start], upper, desc) > 0 {
			continue // the run's remainder sorts entirely above this range
		}
		it, err := m.run.OpenFrom(start, tc.Err, false)
		if err != nil {
			return nil, err
		}
		trim, err := newRangeTrim(tc, it, schema, orders, lower, upper)
		if err != nil {
			return nil, err
		}
		ins = append(ins, trim)
	}
	return newRunMerge(tc, schema, orders, ins, -1)
}

// rangeConcatIter lazily replays the reduce tasks' merged output runs in
// splitter order: run p holds exactly the rows of key range p, already
// sorted, so back-to-back replay is the globally sorted result. Runs open
// one at a time with autoRelease, so an abandoned cursor leaves later
// runs untouched for the query tracker's closers to reap.
type rangeConcatIter struct {
	tc   *rdd.TaskContext
	runs []*spill.Run
	pos  int
	cur  vector.BatchIter
}

// Next implements vector.BatchIter.
func (it *rangeConcatIter) Next() (*vector.Batch, error) {
	for {
		if it.cur == nil {
			if it.pos >= len(it.runs) {
				return nil, nil
			}
			run := it.runs[it.pos]
			it.pos++
			if run == nil {
				continue
			}
			cur, err := run.Open(it.tc.Err, true)
			if err != nil {
				return nil, err
			}
			it.cur = cur
		}
		b, err := it.cur.Next()
		if err != nil || b != nil {
			return b, err
		}
		it.cur = nil
	}
}

// rangeTrimIter restricts a sorted run to the key range (lower, upper]:
// rows ≤ lower belong to an earlier partition and are skipped, and the
// stream ends at the first row above upper. The run is sorted, so both
// bounds are per-batch binary searches; batches fully inside the range
// pass through untouched, and once past lower with no upper the iterator
// stops evaluating keys entirely.
type rangeTrimIter struct {
	tc       *rdd.TaskContext
	in       vector.BatchIter
	keyExprs []*expr.VecExpr
	desc     []bool
	lower    []sqltypes.Value
	upper    []sqltypes.Value
	seeking  bool // still positioned at or below lower
	out      *vector.Batch
	sel      []int
	done     bool
}

func newRangeTrim(tc *rdd.TaskContext, in vector.BatchIter, schema *sqltypes.Schema,
	orders []SortOrder, lower, upper []sqltypes.Value) (*rangeTrimIter, error) {
	keyExprs, _, desc, err := sortKeys(orders)
	if err != nil {
		return nil, err
	}
	return &rangeTrimIter{tc: tc, in: in, keyExprs: keyExprs, desc: desc,
		lower: lower, upper: upper, seeking: lower != nil, out: vector.NewBatch(schema)}, nil
}

// Next implements vector.BatchIter.
func (it *rangeTrimIter) Next() (*vector.Batch, error) {
	if it.done {
		return nil, nil
	}
	for {
		b, err := it.in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			it.done = true
			return nil, nil
		}
		if !it.seeking && it.upper == nil {
			return b, nil
		}
		keys, err := evalKeys(it.keyExprs, b)
		if err != nil {
			return nil, err
		}
		n := b.Len()
		lo := 0
		if it.seeking {
			lo = sort.Search(n, func(i int) bool {
				return vector.CompareVecsKeyRow(keys, i, it.lower, it.desc) > 0
			})
			if lo < n {
				it.seeking = false
			}
		}
		hi := n
		if it.upper != nil {
			hi = sort.Search(n, func(i int) bool {
				return vector.CompareVecsKeyRow(keys, i, it.upper, it.desc) > 0
			})
			if hi < n {
				it.done = true
				it.closeInput()
			}
		}
		if hi <= lo {
			if it.done {
				return nil, nil
			}
			continue
		}
		if lo == 0 && hi == n {
			return b, nil
		}
		it.sel = it.sel[:0]
		for i := lo; i < hi; i++ {
			it.sel = append(it.sel, i)
		}
		vector.Gather(it.out, b, it.sel)
		return it.out, nil
	}
}

// closeInput releases the underlying reader's file handle when the trim
// stops mid-run (the rest of the run belongs to later partitions and is
// read through their own offset-seeked readers).
func (it *rangeTrimIter) closeInput() {
	if c, ok := it.in.(interface{ Close() }); ok {
		c.Close()
	}
}

// sortKeys compiles the order expressions to kernels and splits out the
// key types and directions. Compiled kernels own scratch state: callers
// compile one set per partition task or per merge run.
func sortKeys(orders []SortOrder) (exprs []*expr.VecExpr, types []sqltypes.Type, desc []bool, err error) {
	exprs = make([]*expr.VecExpr, len(orders))
	types = make([]sqltypes.Type, len(orders))
	desc = make([]bool, len(orders))
	for i, o := range orders {
		ve, ok := expr.CompileVec(o.Expr)
		if !ok {
			return nil, nil, nil, fmt.Errorf("physical: sort key %s is not vectorizable", o.Expr)
		}
		exprs[i] = ve
		types[i] = ve.Type()
		desc[i] = o.Desc
	}
	return exprs, types, desc, nil
}

// evalKeys evaluates every compiled key over b.
func evalKeys(exprs []*expr.VecExpr, b *vector.Batch) ([]*columnar.Vector, error) {
	out := make([]*columnar.Vector, len(exprs))
	for i, ve := range exprs {
		v, err := ve.Eval(b)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// sortPartition buffers one partition's batches (the producer reuses
// them), extracting sort keys into typed lanes as they stream past, then
// sorts the index permutation and serves the run as lazily gathered
// output batches.
//
// With out-of-core execution available and a budget in force, the buffer
// becomes a sequence of chunks: when the tracker refuses the next batch,
// the current chunk is sorted and streamed to a spill run file, its memory
// freed, and accumulation restarts. The output is then a k-way merge of
// the spilled sorted runs plus the final resident chunk — exactly the
// single-chunk path when nothing spilled.
//
// In range mode (coord non-nil) the task merges nothing itself: every
// chunk — including the resident tail, re-gathered into fresh batches
// and handed to a (resident-until-evicted) run — is published on the
// coordinator with its per-batch first keys, and the task's own output is
// empty; the range-merge reduce tasks consume the runs directly.
func sortPartition(tc *rdd.TaskContext, in vector.BatchIter, schema *sqltypes.Schema,
	orders []SortOrder, st *obs.OpStats, coord *rangeSortCoord, mapPart int) (vector.BatchIter, error) {
	keyExprs, keyTypes, desc, err := sortKeys(orders)
	if err != nil {
		return nil, err
	}
	mem := tc.Mem()
	sp := tc.Ctx.SpillManager()
	external := sp.Enabled() && mem != nil
	qs := obs.FromContext(tc.Cancellation())
	lanes := vector.NewKeyLanes(keyTypes)
	buf := vector.NewBatchBuilder(schema, vector.DefaultBatchSize)
	var laneCharged, chunkCharged int64
	var spilled []*spill.Run
	nchunks := 0

	// finishChunk sorts the buffered chunk, streams it to a sealed spill
	// run, and frees the chunk's memory. The permutation's bytes were
	// pre-charged per row (external mode charges 8 B/row alongside each
	// batch), so sorting needs no new budget here.
	finishChunk := func() error {
		sealed := buf.Seal()
		if lanes.Len() == 0 {
			return nil
		}
		idx, err := vector.SortIndicesInterruptible(lanes, desc, tc.Err)
		if err != nil {
			return err
		}
		run := sp.NewRun("VecSort", schema, mem, st, qs)
		if err := run.SpillNow(); err != nil {
			return err
		}
		var meta sortRunMeta
		if coord != nil {
			fks, rowsPer := batchMeta(lanes, idx)
			meta = sortRunMeta{run: run, firstKeys: fks, rows: rowsPer, mapPart: mapPart, chunk: nchunks}
		}
		it := &sortedRunIter{tc: tc, src: sealed, idx: idx, out: vector.NewBatch(schema)}
		for {
			b, err := it.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			if err := run.Append(b); err != nil {
				return err
			}
		}
		if err := run.Seal(); err != nil {
			return err
		}
		if coord != nil {
			coord.publish(meta)
		} else {
			spilled = append(spilled, run)
		}
		nchunks++
		mem.Release(chunkCharged)
		chunkCharged, laneCharged = 0, 0
		lanes = vector.NewKeyLanes(keyTypes)
		return nil
	}

	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		st.AddRowsIn(int64(b.Len()))
		keys, err := evalKeys(keyExprs, b)
		if err != nil {
			return nil, err
		}
		lanes.AppendCols(keys)
		buf.Append(b)
		// Charge the run buffer as it grows: the buffered copy of the
		// producer-reused batch plus the key-lane delta (plus, out-of-core,
		// the permutation's 8 B/row so the chunk sort is pre-funded).
		need := b.MemBytes()
		if cur := lanes.MemBytes(); cur > laneCharged {
			need += cur - laneCharged
			laneCharged = cur
		}
		if external {
			need += int64(b.Len()) * 8
		}
		if rerr := mem.Reserve("VecSort", need); rerr != nil {
			if !external || !errors.Is(rerr, memory.ErrMemoryExceeded) {
				return nil, rerr
			}
			// Budget refused: the chunk (including this batch, whose bytes
			// were never charged) goes to disk and accumulation restarts.
			if err := finishChunk(); err != nil {
				return nil, err
			}
			continue
		}
		chunkCharged += need
		st.AddMem(need)
	}
	sealed := buf.Seal()
	if coord != nil {
		// Range mode: publish the resident tail as one more run (fresh
		// single-copy batches, resident until the LRU evicts them) and
		// produce nothing — the reduce tasks read the published runs.
		if lanes.Len() > 0 {
			idx, err := vector.SortIndicesInterruptible(lanes, desc, tc.Err)
			if err != nil {
				return nil, err
			}
			fks, rowsPer := batchMeta(lanes, idx)
			run := sp.NewRun("VecSort", schema, mem, st, qs)
			for pos := 0; pos < len(idx); pos += vector.DefaultBatchSize {
				n := len(idx) - pos
				if n > vector.DefaultBatchSize {
					n = vector.DefaultBatchSize
				}
				out := vector.NewBatch(schema)
				vector.GatherInto(out, sealed, vector.DefaultBatchSize, idx[pos:pos+n])
				if err := run.Append(out); err != nil {
					return nil, err
				}
			}
			if err := run.Seal(); err != nil {
				return nil, err
			}
			coord.publish(sortRunMeta{run: run, firstKeys: fks, rows: rowsPer, mapPart: mapPart, chunk: nchunks})
		}
		mem.Release(chunkCharged)
		return vector.NewSliceIter(nil), nil
	}
	if len(spilled) == 0 && !external {
		if err := mem.Reserve("VecSort", int64(lanes.Len())*8); err != nil {
			return nil, err
		}
		st.AddMem(int64(lanes.Len()) * 8)
	}
	if len(spilled) == 0 {
		idx, err := vector.SortIndicesInterruptible(lanes, desc, tc.Err)
		if err != nil {
			return nil, err
		}
		return &sortedRunIter{tc: tc, src: sealed, idx: idx, out: vector.NewBatch(schema)}, nil
	}
	// External merge: spilled sorted runs stream back from disk (each
	// deleting its file once exhausted), the final chunk stays resident.
	ins := make([]vector.BatchIter, 0, len(spilled)+1)
	for _, run := range spilled {
		it, err := run.Open(tc.Err, true)
		if err != nil {
			return nil, err
		}
		ins = append(ins, it)
	}
	if lanes.Len() > 0 {
		idx, err := vector.SortIndicesInterruptible(lanes, desc, tc.Err)
		if err != nil {
			return nil, err
		}
		ins = append(ins, &sortedRunIter{tc: tc, src: sealed, idx: idx, out: vector.NewBatch(schema)})
	}
	return newRunMerge(tc, schema, orders, ins, -1)
}

// batchMeta boxes the first key row of every DefaultBatchSize-aligned
// output batch of the sorted permutation, plus per-batch row counts —
// the splitter sample and seek index the range merge consumes. Batch j's
// rows all sort in [firstKeys[j], firstKeys[j+1]], which is what lets a
// reducer skip or seek whole batches without decoding them.
func batchMeta(lanes *vector.KeyLanes, idx []int) (fks [][]sqltypes.Value, rows []int) {
	for pos := 0; pos < len(idx); pos += vector.DefaultBatchSize {
		n := len(idx) - pos
		if n > vector.DefaultBatchSize {
			n = vector.DefaultBatchSize
		}
		fks = append(fks, lanes.KeyRowAt(idx[pos]))
		rows = append(rows, n)
	}
	return fks, rows
}

// sortedRunIter gathers the sorted permutation one output batch at a time
// (reusing the output batch), so a consumer that stops early — a top-n
// merge, a cancelled cursor — never pays for gathering the tail.
type sortedRunIter struct {
	tc  *rdd.TaskContext
	src []*vector.Batch
	idx []int
	pos int
	out *vector.Batch
}

// Next implements vector.BatchIter.
func (it *sortedRunIter) Next() (*vector.Batch, error) {
	if it.pos >= len(it.idx) {
		return nil, nil
	}
	if err := it.tc.Err(); err != nil {
		return nil, err
	}
	n := vector.DefaultBatchSize
	if n > len(it.idx)-it.pos {
		n = len(it.idx) - it.pos
	}
	vector.GatherInto(it.out, it.src, vector.DefaultBatchSize, it.idx[it.pos:it.pos+n])
	it.pos += n
	return it.out, nil
}

// newRunMerge builds the k-way merge of sorted runs, compiling a fresh
// key-extraction kernel per run (kernels own scratch vectors; one per run
// keeps each run's current keys stable while others advance). The merge
// polls tc for cancellation between segments.
func newRunMerge(tc *rdd.TaskContext, schema *sqltypes.Schema, orders []SortOrder,
	ins []vector.BatchIter, limit int64) (vector.BatchIter, error) {
	_, _, desc, err := sortKeys(orders)
	if err != nil {
		return nil, err
	}
	extracts := make([]vector.KeyExtract, len(ins))
	for i := range ins {
		keyExprs, _, _, err := sortKeys(orders)
		if err != nil {
			return nil, err
		}
		extracts[i] = func(b *vector.Batch) ([]*columnar.Vector, error) {
			return evalKeys(keyExprs, b)
		}
	}
	m := vector.NewMergeSorted(schema, ins, extracts, desc, limit)
	m.SetInterrupt(tc.Err)
	return m, nil
}

// ---------------------------------------------------------------------------
// VecTopN

// VecTopNExec fuses Limit n over Sort into a bounded top-n: each
// partition keeps only its n best rows in a heap over a compacting
// columnar store (a 1M-row partition under ORDER BY ... LIMIT 100 holds
// ~100 candidate rows, never the input), emits them as a sorted run, and
// the final merge reads at most n·partitions rows before truncating at n.
// The full global sort the row engine would run never happens.
type VecTopNExec struct {
	Child  Exec
	Orders []SortOrder
	N      int64
}

// NewVecTopN builds a vectorized top-n.
func NewVecTopN(child Exec, orders []SortOrder, n int64) *VecTopNExec {
	return &VecTopNExec{Child: child, Orders: orders, N: n}
}

// Schema implements Exec.
func (t *VecTopNExec) Schema() *sqltypes.Schema { return t.Child.Schema() }

// Children implements Exec.
func (t *VecTopNExec) Children() []Exec { return []Exec{t.Child} }

func (t *VecTopNExec) String() string {
	return fmt.Sprintf("VecTopN %d [%s]", t.N, orderStrings(t.Orders))
}

// Execute implements Exec.
func (t *VecTopNExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := t.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	schema := t.Child.Schema()
	orders := t.Orders
	n := t.N
	st := ec.Stats(t)
	single := child.NumPartitions() <= 1
	runs := ec.RDD.NewBatchIterRDD(child, 0, schema, func(tc *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		out, err := topNPartition(tc, in, schema, orders, n, st)
		if err != nil || !single {
			return out, err
		}
		return obs.Batches(st, out), nil
	})
	if single {
		return runs, nil // the collector already emits at most n sorted rows
	}
	return ec.RDD.NewBatchMergeRDD(runs, schema, func(tc *rdd.TaskContext, ins []vector.BatchIter) (vector.BatchIter, error) {
		out, err := newRunMerge(tc, schema, orders, ins, n)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, out), nil
	}), nil
}

// topNPartition scans one partition through the bounded collector and
// emits its top n as a sorted run.
func topNPartition(tc *rdd.TaskContext, in vector.BatchIter, schema *sqltypes.Schema,
	orders []SortOrder, n int64, st *obs.OpStats) (vector.BatchIter, error) {
	keyExprs, keyTypes, desc, err := sortKeys(orders)
	if err != nil {
		return nil, err
	}
	mem := tc.Mem()
	top := vector.NewTopN(schema, keyTypes, desc, int(n))
	var charged int64
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		st.AddRowsIn(int64(b.Len()))
		keys, err := evalKeys(keyExprs, b)
		if err != nil {
			return nil, err
		}
		top.Push(b, keys)
		// The heap store is bounded but not small (compaction allows ~4n
		// candidates plus string payloads); charge its high-water mark.
		// Unlike the sort/agg/join buffers, this state is deliberately
		// never spilled: its footprint is bounded by the query shape
		// (≤ ~4n rows per partition, n·partitions across the operator —
		// independent of input size), and the Reserve below goes through
		// the tracker's eviction valve, so a Top-N under pressure pushes
		// colder *spillable* state to disk instead of growing past the
		// budget. TestSpillTopNBounded pins this exemption.
		if cur := top.MemBytes(); cur > charged {
			if err := mem.Reserve("VecTopN", cur-charged); err != nil {
				return nil, err
			}
			st.AddMem(cur - charged)
			charged = cur
		}
	}
	return vector.NewSliceIter(top.Emit()), nil
}
