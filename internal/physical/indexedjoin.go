package physical

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

// IndexedJoinExec is the paper's index-powered equi-join. The indexed
// relation is always the build side — its index is pre-built — and the
// probe (non-indexed) side is either shuffled to the index's hash
// partitioning or, when small enough, broadcast to every indexed partition
// where probes run locally against the Ctrie.
type IndexedJoinExec struct {
	Indexed *catalog.IndexedTable
	Probe   Exec
	// ProbeKey is the join key's ordinal in the probe output.
	ProbeKey int
	// IndexedIsLeft records the indexed relation's logical side, fixing
	// output column order.
	IndexedIsLeft bool
	// Broadcast selects the broadcast-probe strategy over the shuffle.
	Broadcast bool
	Type      JoinType // Inner, or LeftOuter when the probe is the left side
	// Residual is evaluated against the joined row (logical column order).
	Residual expr.Expr
	schema   *sqltypes.Schema
}

// NewIndexedJoin builds an indexed join producing outSchema (the logical
// left-concat-right schema).
func NewIndexedJoin(indexed *catalog.IndexedTable, probe Exec, probeKey int,
	indexedIsLeft, broadcast bool, t JoinType, residual expr.Expr,
	outSchema *sqltypes.Schema) *IndexedJoinExec {
	return &IndexedJoinExec{Indexed: indexed, Probe: probe, ProbeKey: probeKey,
		IndexedIsLeft: indexedIsLeft, Broadcast: broadcast, Type: t,
		Residual: residual, schema: outSchema}
}

// Schema implements Exec.
func (j *IndexedJoinExec) Schema() *sqltypes.Schema { return j.schema }

// Children implements Exec.
func (j *IndexedJoinExec) Children() []Exec { return []Exec{j.Probe} }

func (j *IndexedJoinExec) String() string {
	mode := "shuffle"
	if j.Broadcast {
		mode = "broadcast"
	}
	return fmt.Sprintf("IndexedJoin %s %s build=%s probeKey=%d",
		j.Type, mode, j.Indexed.Name(), j.ProbeKey)
}

// joinProbeRow probes one row against partition p of the snapshot and
// appends matches to out. Returns whether any match was emitted.
func (j *IndexedJoinExec) joinProbeRow(snap *core.Snapshot, p int, probeRow sqltypes.Row,
	out *sliceBuilder) (bool, error) {
	key := probeRow[j.ProbeKey]
	if key.IsNull() {
		return false, nil
	}
	ptr, ok := snap.LookupPtr(p, key)
	if !ok {
		return false, nil
	}
	matched := false
	var evalErr error
	iw := len(j.Indexed.Schema().Fields)
	err := snap.ChainEach(p, ptr, func(indexedRow sqltypes.Row) bool {
		joined := make(sqltypes.Row, iw+len(probeRow))
		if j.IndexedIsLeft {
			copy(joined, indexedRow)
			copy(joined[iw:], probeRow)
		} else {
			copy(joined, probeRow)
			copy(joined[len(probeRow):], indexedRow)
		}
		if j.Residual != nil {
			keep, err := expr.EvalPredicate(j.Residual, joined)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		matched = true
		out.add(joined)
		return true
	})
	if err != nil {
		return matched, err
	}
	return matched, evalErr
}

// Execute implements Exec.
func (j *IndexedJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	snap := ec.SnapshotOf(j.Indexed.Core())
	probeRDD, err := j.Probe.Execute(ec)
	if err != nil {
		return nil, err
	}
	n := snap.NumPartitions()
	indexedWidth := j.Indexed.Schema().Len()
	st := ec.Stats(j)
	if j.Broadcast {
		probeRows, err := ec.RDD.CollectCtx(ec.Ctx, probeRDD)
		if err != nil {
			return nil, err
		}
		// Route each probe row to its key's home partition on the driver;
		// every indexed partition then probes only its own keys.
		routed := make([][]sqltypes.Row, n)
		for _, r := range probeRows {
			key := r[j.ProbeKey]
			if key.IsNull() {
				if j.Type == LeftOuterJoin && !j.IndexedIsLeft {
					routed[0] = append(routed[0], r) // keep for null padding
				}
				continue
			}
			p := snap.PartitionFor(key)
			routed[p] = append(routed[p], r)
		}
		return ec.RDD.NewIterRDD(nil, n, func(tc *rdd.TaskContext, p int, _ sqltypes.RowIter) (sqltypes.RowIter, error) {
			var b sliceBuilder
			st.AddRowsIn(int64(len(routed[p])))
			for i, probeRow := range routed[p] {
				if i%1024 == 0 {
					if err := tc.Err(); err != nil {
						return nil, err
					}
				}
				matched, err := j.joinProbeRow(snap, p, probeRow, &b)
				if err != nil {
					return nil, err
				}
				if !matched && j.Type == LeftOuterJoin && !j.IndexedIsLeft {
					b.add(probeRow.Concat(nullRow(indexedWidth)))
				}
			}
			return obs.Rows(st, b.iter()), nil
		}), nil
	}
	// Shuffle mode: hash the probe side with the index's partitioning.
	probeKey := j.ProbeKey
	part := &rdd.HashPartitioner{N: n, Key: func(r sqltypes.Row) sqltypes.Value {
		return keyOf(r, probeKey)
	}}
	shuffled := ec.RDD.NewShuffledRDD(probeRDD, part)
	return ec.RDD.NewIterRDD(shuffled, 0, func(tc *rdd.TaskContext, p int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		var b sliceBuilder
		in = obs.CountInto(st, in)
		for n := 0; ; n++ {
			if n%1024 == 0 {
				if err := tc.Err(); err != nil {
					return nil, err
				}
			}
			probeRow, err := in.Next()
			if err != nil {
				return nil, err
			}
			if probeRow == nil {
				break
			}
			matched, err := j.joinProbeRow(snap, p, probeRow, &b)
			if err != nil {
				return nil, err
			}
			if !matched && j.Type == LeftOuterJoin && !j.IndexedIsLeft {
				b.add(probeRow.Concat(nullRow(indexedWidth)))
			}
		}
		return obs.Rows(st, b.iter()), nil
	}), nil
}
