package physical

import (
	"fmt"

	"indexeddf/internal/columnar"
	"indexeddf/internal/expr"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// VecHashAggExec is the vectorized hash aggregate for all three phases.
// Partial and Complete evaluate group/argument expressions as whole
// vectors before the fold loop; Final sits behind the columnar exchange
// and merges accumulator batches directly — group keys are the leading
// columns, accumulator columns are folded lane-wise into the group table,
// so a shuffle GROUP BY stays columnar from scan through final merge.
//
// Group keys are encoded batch-at-a-time into one reusable buffer and
// probed with a zero-allocation map lookup; only a first-seen group
// allocates (its key string and accumulators). A single integer-family
// group key skips encoding entirely (int64 map fast path).
type VecHashAggExec struct {
	Child  Exec
	Groups []expr.Expr
	Aggs   []expr.Agg
	Mode   AggMode
	schema *sqltypes.Schema
}

// NewVecHashAgg builds a vectorized hash aggregate.
func NewVecHashAgg(child Exec, groups []expr.Expr, aggs []expr.Agg, mode AggMode, outSchema *sqltypes.Schema) *VecHashAggExec {
	return &VecHashAggExec{Child: child, Groups: groups, Aggs: aggs, Mode: mode, schema: outSchema}
}

// Schema implements Exec.
func (h *VecHashAggExec) Schema() *sqltypes.Schema { return h.schema }

// Children implements Exec.
func (h *VecHashAggExec) Children() []Exec { return []Exec{h.Child} }

func (h *VecHashAggExec) String() string {
	row := HashAggExec{Groups: h.Groups, Aggs: h.Aggs, Mode: h.Mode}
	return "Vec" + row.String()
}

// Execute implements Exec.
func (h *VecHashAggExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := h.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	inSchema := h.Child.Schema()
	st := ec.Stats(h)
	if h.Mode == AggFinal {
		// The final merge needs no expression compilation: group keys are
		// the leading columns of the accumulator schema and the aggregate
		// state columns follow positionally.
		intKey := len(h.Groups) == 1 && inSchema.Fields[0].Type.IntLane()
		return ec.RDD.NewBatchIterRDD(child, 0, inSchema, func(tc *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
			out, err := h.mergeFinal(tc, in, intKey, st)
			if err != nil {
				return nil, err
			}
			return obs.Batches(st, out), nil
		}), nil
	}
	return ec.RDD.NewBatchIterRDD(child, 0, inSchema, func(tc *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		groups := make([]*expr.VecExpr, len(h.Groups))
		for i, g := range h.Groups {
			ve, ok := expr.CompileVec(g)
			if !ok {
				return nil, fmt.Errorf("physical: group expression %s is not vectorizable", g)
			}
			groups[i] = ve
		}
		args := make([]*expr.VecExpr, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Func == expr.CountStarAgg {
				continue
			}
			ve, ok := expr.CompileVec(a.Arg)
			if !ok {
				return nil, fmt.Errorf("physical: aggregate argument %s is not vectorizable", a.Arg)
			}
			args[i] = ve
		}
		out, err := h.aggregate(tc, in, groups, args, st)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, out), nil
	}), nil
}

// groupBytes estimates one group's resident size — group struct, key row,
// accumulator slab share and hash-table entry — for memory accounting.
// String key payloads are charged separately as groups are created.
func groupBytes(nKeys, nAggs int) int64 {
	return 120 + int64(nKeys)*24 + int64(nAggs)*72
}

// aggregate consumes the whole input and renders the result batches.
func (h *VecHashAggExec) aggregate(tc *rdd.TaskContext, in vector.BatchIter, groupExprs, argExprs []*expr.VecExpr, st *obs.OpStats) (vector.BatchIter, error) {
	table := map[string]*aggGroup{}
	var order []*aggGroup
	ga := groupAlloc{nAggs: len(h.Aggs)}
	var keyBuf []byte
	gvecs := make([]*columnar.Vector, len(groupExprs))
	avecs := make([]*columnar.Vector, len(argExprs))
	// Fast path: a single integer-family group key uses its int64 lane as
	// the map key directly — no key encoding, no string hashing. This is
	// the dominant GROUP BY shape (Figure 2 groups by person1Id).
	intKey := len(groupExprs) == 1 && groupExprs[0].Type().IntLane()
	intTable := map[int64]*aggGroup{}
	var nullGroup *aggGroup
	mem := tc.Mem()
	perGroup := groupBytes(len(h.Groups), len(h.Aggs))
	var charged int
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		st.AddRowsIn(int64(b.Len()))
		for i, ge := range groupExprs {
			if gvecs[i], err = ge.Eval(b); err != nil {
				return nil, err
			}
		}
		for i, ae := range argExprs {
			if ae == nil {
				continue // COUNT(*)
			}
			if avecs[i], err = ae.Eval(b); err != nil {
				return nil, err
			}
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			var g *aggGroup
			if intKey {
				gv := gvecs[0]
				if gv.IsNull(i) {
					if nullGroup == nil {
						nullGroup = ga.new(sqltypes.Row{sqltypes.Null})
						order = append(order, nullGroup)
					}
					g = nullGroup
				} else {
					k := gv.Int64s()[i]
					var ok bool
					if g, ok = intTable[k]; !ok {
						g = ga.new(sqltypes.Row{gv.Get(i)})
						intTable[k] = g
						order = append(order, g)
					}
				}
			} else {
				keyBuf = keyBuf[:0]
				for _, gv := range gvecs {
					keyBuf = AppendValueKey(keyBuf, gv.Get(i))
				}
				var ok bool
				if g, ok = table[string(keyBuf)]; !ok {
					keys := make(sqltypes.Row, len(gvecs))
					for k, gv := range gvecs {
						keys[k] = gv.Get(i)
					}
					g = ga.new(keys)
					table[string(keyBuf)] = g
					order = append(order, g)
				}
			}
			for ai, a := range h.Aggs {
				if a.Func == expr.CountStarAgg {
					g.accs[ai].count++
					continue
				}
				updateAcc(&g.accs[ai], a, avecs[ai].Get(i))
			}
		}
		// Charge the group table's growth after each batch: a runaway
		// cardinality GROUP BY fails fast instead of OOMing the process.
		if nw := len(order); nw > charged {
			if err := mem.Reserve("VecHashAgg", int64(nw-charged)*perGroup); err != nil {
				return nil, err
			}
			st.AddMem(int64(nw-charged) * perGroup)
			charged = nw
		}
	}
	out, err := h.render(order)
	if err != nil {
		return nil, err
	}
	return releaseOnDrain(out, mem, int64(charged)*perGroup), nil
}

// mergeFinal is the post-exchange merge phase: each input batch carries
// accumulator rows (group keys leading, aggregate state following), and
// every row is folded column-wise into the group table. Only the group
// probe touches per-row values; numeric accumulator columns are read
// straight from their typed lanes.
func (h *VecHashAggExec) mergeFinal(tc *rdd.TaskContext, in vector.BatchIter, intKey bool, st *obs.OpStats) (vector.BatchIter, error) {
	table := map[string]*aggGroup{}
	intTable := map[int64]*aggGroup{}
	var nullGroup *aggGroup
	var order []*aggGroup
	ga := groupAlloc{nAggs: len(h.Aggs)}
	var keyBuf []byte
	ng := len(h.Groups)
	mem := tc.Mem()
	perGroup := groupBytes(ng, len(h.Aggs))
	var charged int
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		st.AddRowsIn(int64(b.Len()))
		n := b.Len()
		for i := 0; i < n; i++ {
			var g *aggGroup
			if intKey {
				gv := b.Cols[0]
				if gv.IsNull(i) {
					if nullGroup == nil {
						nullGroup = ga.new(sqltypes.Row{sqltypes.Null})
						order = append(order, nullGroup)
					}
					g = nullGroup
				} else {
					k := gv.Int64s()[i]
					var ok bool
					if g, ok = intTable[k]; !ok {
						g = ga.new(sqltypes.Row{gv.Get(i)})
						intTable[k] = g
						order = append(order, g)
					}
				}
			} else {
				keyBuf = keyBuf[:0]
				for c := 0; c < ng; c++ {
					keyBuf = AppendValueKey(keyBuf, b.Cols[c].Get(i))
				}
				var ok bool
				if g, ok = table[string(keyBuf)]; !ok {
					keys := make(sqltypes.Row, ng)
					for c := 0; c < ng; c++ {
						keys[c] = b.Cols[c].Get(i)
					}
					g = ga.new(keys)
					table[string(keyBuf)] = g
					order = append(order, g)
				}
			}
			mergeAccCols(h.Aggs, ng, g, b, i)
		}
		if nw := len(order); nw > charged {
			if err := mem.Reserve("VecHashAgg", int64(nw-charged)*perGroup); err != nil {
				return nil, err
			}
			st.AddMem(int64(nw-charged) * perGroup)
			charged = nw
		}
	}
	out, err := h.render(order)
	if err != nil {
		return nil, err
	}
	return releaseOnDrain(out, mem, int64(charged)*perGroup), nil
}

// releaseOnDrain returns the group table's charge once the rendered output
// has been fully consumed. The table dies with its task, but the tracker
// lives for the whole query — without this, every finished map task of a
// many-partition GROUP BY would keep its dead table charged, starving the
// budget that later tasks (and the spill fabric) reserve against.
func releaseOnDrain(in vector.BatchIter, mem *memory.Tracker, bytes int64) vector.BatchIter {
	if bytes <= 0 {
		return in
	}
	return &drainReleaseIter{in: in, mem: mem, bytes: bytes}
}

type drainReleaseIter struct {
	in    vector.BatchIter
	mem   *memory.Tracker
	bytes int64
}

func (r *drainReleaseIter) Next() (*vector.Batch, error) {
	b, err := r.in.Next()
	if b == nil && err == nil && r.bytes > 0 {
		r.mem.Release(r.bytes)
		r.bytes = 0
	}
	return b, err
}

// mergeAccCols folds row i of an accumulator batch into g — the columnar
// counterpart of mergeAccs.
func mergeAccCols(aggs []expr.Agg, groupLen int, g *aggGroup, b *vector.Batch, i int) {
	pos := groupLen
	for ai, a := range aggs {
		ac := &g.accs[ai]
		switch a.Func {
		case expr.CountAgg, expr.CountStarAgg:
			ac.count += b.Cols[pos].Int64s()[i]
			pos++
		case expr.SumAgg:
			col := b.Cols[pos]
			pos++
			if col.IsNull(i) {
				continue
			}
			ac.count++
			if a.ResultType() == sqltypes.Float64 {
				ac.sumF += col.Float64s()[i]
			} else {
				ac.sumI += col.Int64s()[i]
			}
		case expr.MinAgg:
			col := b.Cols[pos]
			pos++
			if col.IsNull(i) {
				continue
			}
			v := col.Get(i)
			if ac.min.IsNull() || sqltypes.Compare(v, ac.min) < 0 {
				ac.min = v
			}
		case expr.MaxAgg:
			col := b.Cols[pos]
			pos++
			if col.IsNull(i) {
				continue
			}
			v := col.Get(i)
			if ac.max.IsNull() || sqltypes.Compare(v, ac.max) > 0 {
				ac.max = v
			}
		case expr.AvgAgg:
			sums, cnts := b.Cols[pos], b.Cols[pos+1]
			pos += 2
			if !sums.IsNull(i) {
				ac.sumF += sums.Float64s()[i]
			}
			ac.count += cnts.Int64s()[i]
		}
	}
}

// render materializes the group table as dense result batches; a global
// aggregate emits one default row even with no input (Final and Complete
// modes, which run on the single post-exchange partition).
func (h *VecHashAggExec) render(order []*aggGroup) (vector.BatchIter, error) {
	if len(order) == 0 && len(h.Groups) == 0 && h.Mode != AggPartial {
		order = append(order, &aggGroup{accs: make([]acc, len(h.Aggs))})
	}
	var batches []*vector.Batch
	var cur *vector.Batch
	for _, g := range order {
		if cur == nil || cur.Len() >= vector.DefaultBatchSize {
			cur = vector.NewBatch(h.schema)
			batches = append(batches, cur)
		}
		var row sqltypes.Row
		if h.Mode == AggPartial {
			row = emitPartialRow(h.Aggs, g)
		} else {
			row = emitFinalRow(h.Aggs, g)
		}
		if err := cur.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return vector.NewSliceIter(batches), nil
}
