package physical

import (
	"errors"
	"fmt"

	"indexeddf/internal/columnar"
	"indexeddf/internal/expr"
	"indexeddf/internal/faultpoint"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/spill"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// VecHashAggExec is the vectorized hash aggregate for all three phases.
// Partial and Complete evaluate group/argument expressions as whole
// vectors before the fold loop; Final sits behind the columnar exchange
// and merges accumulator batches directly — group keys are the leading
// columns, accumulator columns are folded lane-wise into the group table,
// so a shuffle GROUP BY stays columnar from scan through final merge.
//
// Group keys are encoded batch-at-a-time into one reusable buffer and
// probed with a zero-allocation map lookup; only a first-seen group
// allocates (its key string and accumulators). A single integer-family
// group key skips encoding entirely (int64 map fast path).
//
// With a spill manager configured, a group table that outgrows its
// reservation goes out of core: see aggSpiller.
type VecHashAggExec struct {
	Child  Exec
	Groups []expr.Expr
	Aggs   []expr.Agg
	Mode   AggMode
	schema *sqltypes.Schema
}

// NewVecHashAgg builds a vectorized hash aggregate.
func NewVecHashAgg(child Exec, groups []expr.Expr, aggs []expr.Agg, mode AggMode, outSchema *sqltypes.Schema) *VecHashAggExec {
	return &VecHashAggExec{Child: child, Groups: groups, Aggs: aggs, Mode: mode, schema: outSchema}
}

// Schema implements Exec.
func (h *VecHashAggExec) Schema() *sqltypes.Schema { return h.schema }

// Children implements Exec.
func (h *VecHashAggExec) Children() []Exec { return []Exec{h.Child} }

func (h *VecHashAggExec) String() string {
	row := HashAggExec{Groups: h.Groups, Aggs: h.Aggs, Mode: h.Mode}
	return "Vec" + row.String()
}

// Execute implements Exec.
func (h *VecHashAggExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := h.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	inSchema := h.Child.Schema()
	st := ec.Stats(h)
	if h.Mode == AggFinal {
		// The final merge needs no expression compilation: group keys are
		// the leading columns of the accumulator schema and the aggregate
		// state columns follow positionally.
		intKey := len(h.Groups) == 1 && inSchema.Fields[0].Type.IntLane()
		return ec.RDD.NewBatchIterRDD(child, 0, inSchema, func(tc *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
			out, err := h.mergeFinal(tc, in, intKey, st)
			if err != nil {
				return nil, err
			}
			return obs.Batches(st, out), nil
		}), nil
	}
	return ec.RDD.NewBatchIterRDD(child, 0, inSchema, func(tc *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		groups := make([]*expr.VecExpr, len(h.Groups))
		for i, g := range h.Groups {
			ve, ok := expr.CompileVec(g)
			if !ok {
				return nil, fmt.Errorf("physical: group expression %s is not vectorizable", g)
			}
			groups[i] = ve
		}
		args := make([]*expr.VecExpr, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Func == expr.CountStarAgg {
				continue
			}
			ve, ok := expr.CompileVec(a.Arg)
			if !ok {
				return nil, fmt.Errorf("physical: aggregate argument %s is not vectorizable", a.Arg)
			}
			args[i] = ve
		}
		out, err := h.aggregate(tc, in, groups, args, st)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, out), nil
	}), nil
}

// groupBytes estimates one group's resident size — group struct, key row,
// accumulator slab share and hash-table entry — for memory accounting.
// String key payloads are charged separately as groups are created.
func groupBytes(nKeys, nAggs int) int64 {
	return 120 + int64(nKeys)*24 + int64(nAggs)*72
}

// aggState is one generation of the group hash table: the maps, the
// deterministic first-seen output order, and how many groups are charged
// to the tracker. The spiller swaps in a fresh generation after each
// flush.
type aggState struct {
	table     map[string]*aggGroup
	intTable  map[int64]*aggGroup
	nullGroup *aggGroup
	order     []*aggGroup
	ga        groupAlloc
	keyBuf    []byte
	charged   int // groups whose bytes are reserved with the tracker
}

func newAggState(nAggs int) *aggState {
	return &aggState{table: map[string]*aggGroup{}, intTable: map[int64]*aggGroup{}, ga: groupAlloc{nAggs: nAggs}}
}

// groupFor probes-or-creates row i's group, keyed by cols[:nKeys]. The
// intKey fast path uses the single key column's int64 lane as the map key
// directly — no encoding, no string hashing (the dominant GROUP BY
// shape); otherwise keys encode into the reusable buffer.
func (s *aggState) groupFor(cols []*columnar.Vector, nKeys, i int, intKey bool) *aggGroup {
	if intKey {
		gv := cols[0]
		if gv.IsNull(i) {
			if s.nullGroup == nil {
				s.nullGroup = s.ga.new(sqltypes.Row{sqltypes.Null})
				s.order = append(s.order, s.nullGroup)
			}
			return s.nullGroup
		}
		k := gv.Int64s()[i]
		g, ok := s.intTable[k]
		if !ok {
			g = s.ga.new(sqltypes.Row{gv.Get(i)})
			s.intTable[k] = g
			s.order = append(s.order, g)
		}
		return g
	}
	s.keyBuf = s.keyBuf[:0]
	for c := 0; c < nKeys; c++ {
		s.keyBuf = AppendValueKey(s.keyBuf, cols[c].Get(i))
	}
	g, ok := s.table[string(s.keyBuf)]
	if !ok {
		keys := make(sqltypes.Row, nKeys)
		for c := 0; c < nKeys; c++ {
			keys[c] = cols[c].Get(i)
		}
		g = s.ga.new(keys)
		s.table[string(s.keyBuf)] = g
		s.order = append(s.order, g)
	}
	return g
}

// settle charges the table's growth after a batch, or — when the budget
// refuses and out-of-core execution is available — fans the whole table
// out to spill runs and restarts with a fresh generation. A runaway
// cardinality GROUP BY without a spill manager still fails fast instead
// of OOMing the process.
func (s *aggState) settle(mem *memory.Tracker, perGroup int64, st *obs.OpStats, spl *aggSpiller) error {
	nw := len(s.order)
	if nw <= s.charged {
		return nil
	}
	need := int64(nw-s.charged) * perGroup
	err := mem.Reserve("VecHashAgg", need)
	if err == nil {
		s.charged = nw
		st.AddMem(need)
		return nil
	}
	if spl == nil || !errors.Is(err, memory.ErrMemoryExceeded) {
		return err
	}
	return spl.flush(s)
}

// aggregate consumes the whole input and renders the result batches.
func (h *VecHashAggExec) aggregate(tc *rdd.TaskContext, in vector.BatchIter, groupExprs, argExprs []*expr.VecExpr, st *obs.OpStats) (vector.BatchIter, error) {
	s := newAggState(len(h.Aggs))
	gvecs := make([]*columnar.Vector, len(groupExprs))
	avecs := make([]*columnar.Vector, len(argExprs))
	intKey := len(groupExprs) == 1 && groupExprs[0].Type().IntLane()
	mem := tc.Mem()
	perGroup := groupBytes(len(h.Groups), len(h.Aggs))
	var spl *aggSpiller
	if tc.Ctx.SpillManager().Enabled() && mem != nil {
		spl = newAggSpiller(h, tc, st, perGroup)
	}
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		st.AddRowsIn(int64(b.Len()))
		for i, ge := range groupExprs {
			if gvecs[i], err = ge.Eval(b); err != nil {
				return nil, err
			}
		}
		for i, ae := range argExprs {
			if ae == nil {
				continue // COUNT(*)
			}
			if avecs[i], err = ae.Eval(b); err != nil {
				return nil, err
			}
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			g := s.groupFor(gvecs, len(gvecs), i, intKey)
			for ai, a := range h.Aggs {
				if a.Func == expr.CountStarAgg {
					g.accs[ai].count++
					continue
				}
				updateAcc(&g.accs[ai], a, avecs[ai].Get(i))
			}
		}
		if err := s.settle(mem, perGroup, st, spl); err != nil {
			return nil, err
		}
	}
	if spl == nil || spl.fan == nil {
		out, err := h.render(s.order)
		if err != nil {
			return nil, err
		}
		return releaseOnDrain(out, mem, int64(s.charged)*perGroup), nil
	}
	return spl.finish(s)
}

// mergeFinal is the post-exchange merge phase: each input batch carries
// accumulator rows (group keys leading, aggregate state following), and
// every row is folded column-wise into the group table. Only the group
// probe touches per-row values; numeric accumulator columns are read
// straight from their typed lanes.
func (h *VecHashAggExec) mergeFinal(tc *rdd.TaskContext, in vector.BatchIter, intKey bool, st *obs.OpStats) (vector.BatchIter, error) {
	s := newAggState(len(h.Aggs))
	ng := len(h.Groups)
	mem := tc.Mem()
	perGroup := groupBytes(ng, len(h.Aggs))
	var spl *aggSpiller
	if tc.Ctx.SpillManager().Enabled() && mem != nil {
		spl = newAggSpiller(h, tc, st, perGroup)
	}
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		st.AddRowsIn(int64(b.Len()))
		n := b.Len()
		for i := 0; i < n; i++ {
			g := s.groupFor(b.Cols, ng, i, intKey)
			mergeAccCols(h.Aggs, ng, g, b, i)
		}
		if err := s.settle(mem, perGroup, st, spl); err != nil {
			return nil, err
		}
	}
	if spl == nil || spl.fan == nil {
		out, err := h.render(s.order)
		if err != nil {
			return nil, err
		}
		return releaseOnDrain(out, mem, int64(s.charged)*perGroup), nil
	}
	return spl.finish(s)
}

// ---------------------------------------------------------------------------
// Out-of-core aggregation

// aggSpiller externalizes the hash aggregate. The operator folds input
// normally until the group table's reservation is refused; the spiller
// then renders the whole table in the mergeable partial representation,
// hash-partitions the rows by group key into spillFanout spilled runs
// (salt 1), releases the table's charge, and folding restarts with a
// fresh generation. Fold-then-flush preserves pre-aggregation: a hot
// key's millions of input rows leave as one accumulator row per
// generation, so skew costs flush rounds, not bytes. At end of input the
// fan-out partitions are re-aggregated one at a time — each holds every
// accumulator row of its key subset, so partitions merge independently —
// and a partition that still overflows re-fans with the next level's
// salt, recursively, until it fits (or maxSpillDepth says the budget is
// hopeless).
type aggSpiller struct {
	h        *VecHashAggExec
	tc       *rdd.TaskContext
	st       *obs.OpStats
	schema   *sqltypes.Schema // partial (mergeable) spill-row schema
	ords     []int            // group-key ordinals in schema
	perGroup int64
	intKey   bool // replay fold fast path: single int-lane group key
	fan      *runFan
	out      *vector.Batch // reusable render batch for flushes
}

func newAggSpiller(h *VecHashAggExec, tc *rdd.TaskContext, st *obs.OpStats, perGroup int64) *aggSpiller {
	schema := h.spillSchema()
	ords := make([]int, len(h.Groups))
	for i := range ords {
		ords[i] = i
	}
	return &aggSpiller{
		h: h, tc: tc, st: st, schema: schema, ords: ords, perGroup: perGroup,
		intKey: len(h.Groups) == 1 && schema.Fields[0].Type.IntLane(),
	}
}

// spillSchema is the representation spilled aggregate state is written
// in: accumulator rows that re-fold positionally with mergeAccCols
// whatever the operator's mode. Partial's own output already is that
// row; Final's input batches carry it; Complete (raw rows in, final rows
// out) derives the middle representation.
func (h *VecHashAggExec) spillSchema() *sqltypes.Schema {
	switch h.Mode {
	case AggPartial:
		return h.schema
	case AggFinal:
		return h.Child.Schema()
	default:
		return PartialSchema(h.Groups, h.Aggs)
	}
}

// flush fans the whole current generation out to the level-1 runs.
func (a *aggSpiller) flush(s *aggState) error {
	if err := faultpoint.Hit(faultpoint.SpillPartition); err != nil {
		return err
	}
	if a.fan == nil {
		fan, err := newRunFan(a.tc, "VecHashAgg", a.schema, a.ords, 1, a.st)
		if err != nil {
			return err
		}
		a.fan = fan
		a.st.NoteFanout(spillFanout)
		a.st.NoteDepth(1)
	}
	return a.flushTable(s, a.fan)
}

// flushTable renders every group of s as a partial row into fan, returns
// the generation's charge, and resets s to a fresh generation.
func (a *aggSpiller) flushTable(s *aggState, fan *runFan) error {
	if a.out == nil {
		a.out = vector.NewBatch(a.schema)
	}
	for _, g := range s.order {
		if a.out.Len() >= vector.DefaultBatchSize {
			if err := fan.add(a.out); err != nil {
				return err
			}
			a.out.Reset()
		}
		if err := a.out.AppendRow(emitPartialRow(a.h.Aggs, g)); err != nil {
			return err
		}
	}
	if a.out.Len() > 0 {
		if err := fan.add(a.out); err != nil {
			return err
		}
		a.out.Reset()
	}
	a.tc.Mem().Release(int64(s.charged) * a.perGroup)
	*s = *newAggState(len(a.h.Aggs))
	return nil
}

// finish flushes the final generation and returns the lazy
// re-aggregation iterator over the sealed fan-out partitions. (A global
// aggregate's default row cannot be needed here: the spiller only
// engages after at least one group existed, so some partition is
// non-empty and renders it.)
func (a *aggSpiller) finish(s *aggState) (vector.BatchIter, error) {
	if err := a.flush(s); err != nil {
		return nil, err
	}
	runs, err := a.fan.seal()
	if err != nil {
		return nil, err
	}
	d := &aggDrainIter{spl: a}
	for _, r := range runs {
		d.stack = append(d.stack, aggRunLevel{run: r, level: 1})
	}
	return d, nil
}

// aggRunLevel is one pending fan-out partition and its recursion depth.
type aggRunLevel struct {
	run   *spill.Run
	level int
}

// aggDrainIter lazily re-aggregates the fan-out partitions one at a
// time: pop a run, fold its accumulator rows into a fresh table, render
// and stream it out; a partition that still overflows re-fans with the
// next level's salt and pushes its sub-partitions. LIFO order bounds the
// open state to one lineage of partitions, and rendering per partition
// keeps the resident footprint at one partition's groups — never the
// whole operator's.
type aggDrainIter struct {
	spl   *aggSpiller
	stack []aggRunLevel
	cur   vector.BatchIter
}

// Next implements vector.BatchIter.
func (d *aggDrainIter) Next() (*vector.Batch, error) {
	for {
		if d.cur != nil {
			b, err := d.cur.Next()
			if b != nil || err != nil {
				return b, err
			}
			d.cur = nil
		}
		if len(d.stack) == 0 {
			return nil, nil
		}
		top := d.stack[len(d.stack)-1]
		d.stack = d.stack[:len(d.stack)-1]
		out, err := d.fold(top.run, top.level)
		if err != nil {
			return nil, err
		}
		d.cur = out // nil when the partition re-fanned into sub-runs
	}
}

// fold re-aggregates one partition run. Returns the rendered output, or
// (nil, nil) when the partition overflowed and its sub-partitions were
// pushed onto the stack instead.
func (d *aggDrainIter) fold(run *spill.Run, level int) (vector.BatchIter, error) {
	a := d.spl
	h := a.h
	tc := a.tc
	mem := tc.Mem()
	ng := len(h.Groups)
	s := newAggState(len(h.Aggs))
	var fan *runFan
	in, err := run.Open(tc.Err, true)
	if err != nil {
		return nil, err
	}
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			g := s.groupFor(b.Cols, ng, i, a.intKey)
			mergeAccCols(h.Aggs, ng, g, b, i)
		}
		if nw := len(s.order); nw > s.charged {
			need := int64(nw-s.charged) * a.perGroup
			rerr := mem.Reserve("VecHashAgg", need)
			if rerr == nil {
				s.charged = nw
				a.st.AddMem(need)
				continue
			}
			if !errors.Is(rerr, memory.ErrMemoryExceeded) {
				return nil, rerr
			}
			if level >= maxSpillDepth {
				return nil, fmt.Errorf("physical: aggregate partition still over budget after %d fan-out levels: %w", level, rerr)
			}
			if perr := faultpoint.Hit(faultpoint.SpillPartition); perr != nil {
				return nil, perr
			}
			if fan == nil {
				if fan, err = newRunFan(tc, "VecHashAgg", a.schema, a.ords, uint64(level+1), a.st); err != nil {
					return nil, err
				}
				a.st.NoteDepth(int64(level + 1))
			}
			if err := a.flushTable(s, fan); err != nil {
				return nil, err
			}
		}
	}
	if fan != nil {
		if err := a.flushTable(s, fan); err != nil {
			return nil, err
		}
		subs, err := fan.seal()
		if err != nil {
			return nil, err
		}
		for _, r := range subs {
			d.stack = append(d.stack, aggRunLevel{run: r, level: level + 1})
		}
		return nil, nil
	}
	out, err := h.render(s.order)
	if err != nil {
		return nil, err
	}
	return releaseOnDrain(out, mem, int64(s.charged)*a.perGroup), nil
}

// releaseOnDrain returns the group table's charge once the rendered output
// has been fully consumed. The table dies with its task, but the tracker
// lives for the whole query — without this, every finished map task of a
// many-partition GROUP BY would keep its dead table charged, starving the
// budget that later tasks (and the spill fabric) reserve against.
func releaseOnDrain(in vector.BatchIter, mem *memory.Tracker, bytes int64) vector.BatchIter {
	if bytes <= 0 {
		return in
	}
	return &drainReleaseIter{in: in, mem: mem, bytes: bytes}
}

type drainReleaseIter struct {
	in    vector.BatchIter
	mem   *memory.Tracker
	bytes int64
}

func (r *drainReleaseIter) Next() (*vector.Batch, error) {
	b, err := r.in.Next()
	if b == nil && err == nil && r.bytes > 0 {
		r.mem.Release(r.bytes)
		r.bytes = 0
	}
	return b, err
}

// mergeAccCols folds row i of an accumulator batch into g — the columnar
// counterpart of mergeAccs.
func mergeAccCols(aggs []expr.Agg, groupLen int, g *aggGroup, b *vector.Batch, i int) {
	pos := groupLen
	for ai, a := range aggs {
		ac := &g.accs[ai]
		switch a.Func {
		case expr.CountAgg, expr.CountStarAgg:
			ac.count += b.Cols[pos].Int64s()[i]
			pos++
		case expr.SumAgg:
			col := b.Cols[pos]
			pos++
			if col.IsNull(i) {
				continue
			}
			ac.count++
			if a.ResultType() == sqltypes.Float64 {
				ac.sumF += col.Float64s()[i]
			} else {
				ac.sumI += col.Int64s()[i]
			}
		case expr.MinAgg:
			col := b.Cols[pos]
			pos++
			if col.IsNull(i) {
				continue
			}
			v := col.Get(i)
			if ac.min.IsNull() || sqltypes.Compare(v, ac.min) < 0 {
				ac.min = v
			}
		case expr.MaxAgg:
			col := b.Cols[pos]
			pos++
			if col.IsNull(i) {
				continue
			}
			v := col.Get(i)
			if ac.max.IsNull() || sqltypes.Compare(v, ac.max) > 0 {
				ac.max = v
			}
		case expr.AvgAgg:
			sums, cnts := b.Cols[pos], b.Cols[pos+1]
			pos += 2
			if !sums.IsNull(i) {
				ac.sumF += sums.Float64s()[i]
			}
			ac.count += cnts.Int64s()[i]
		}
	}
}

// render materializes the group table as dense result batches; a global
// aggregate emits one default row even with no input (Final and Complete
// modes, which run on the single post-exchange partition).
func (h *VecHashAggExec) render(order []*aggGroup) (vector.BatchIter, error) {
	if len(order) == 0 && len(h.Groups) == 0 && h.Mode != AggPartial {
		order = append(order, &aggGroup{accs: make([]acc, len(h.Aggs))})
	}
	var batches []*vector.Batch
	var cur *vector.Batch
	for _, g := range order {
		if cur == nil || cur.Len() >= vector.DefaultBatchSize {
			cur = vector.NewBatch(h.schema)
			batches = append(batches, cur)
		}
		var row sqltypes.Row
		if h.Mode == AggPartial {
			row = emitPartialRow(h.Aggs, g)
		} else {
			row = emitFinalRow(h.Aggs, g)
		}
		if err := cur.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return vector.NewSliceIter(batches), nil
}
