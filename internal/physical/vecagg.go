package physical

import (
	"fmt"

	"indexeddf/internal/columnar"
	"indexeddf/internal/expr"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// VecHashAggExec is the vectorized hash aggregate for the Partial and
// Complete phases (the Final phase sits behind a shuffle, whose input is
// row-based and small — one row per group — so it stays row-at-a-time).
//
// Group keys are encoded batch-at-a-time into one reusable buffer and
// probed with a zero-allocation map lookup; only a first-seen group
// allocates (its key string and accumulators). Aggregate arguments are
// evaluated as whole vectors before the fold loop.
type VecHashAggExec struct {
	Child  Exec
	Groups []expr.Expr
	Aggs   []expr.Agg
	Mode   AggMode
	schema *sqltypes.Schema
}

// NewVecHashAgg builds a vectorized hash aggregate (Mode must be AggPartial
// or AggComplete).
func NewVecHashAgg(child Exec, groups []expr.Expr, aggs []expr.Agg, mode AggMode, outSchema *sqltypes.Schema) *VecHashAggExec {
	return &VecHashAggExec{Child: child, Groups: groups, Aggs: aggs, Mode: mode, schema: outSchema}
}

// Schema implements Exec.
func (h *VecHashAggExec) Schema() *sqltypes.Schema { return h.schema }

// Children implements Exec.
func (h *VecHashAggExec) Children() []Exec { return []Exec{h.Child} }

func (h *VecHashAggExec) String() string {
	row := HashAggExec{Groups: h.Groups, Aggs: h.Aggs, Mode: h.Mode}
	return "Vec" + row.String()
}

// Execute implements Exec.
func (h *VecHashAggExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	if h.Mode == AggFinal {
		return nil, fmt.Errorf("physical: VecHashAgg does not implement the final phase")
	}
	child, err := h.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	inSchema := h.Child.Schema()
	return ec.RDD.NewBatchIterRDD(child, 0, inSchema, func(_ *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		groups := make([]*expr.VecExpr, len(h.Groups))
		for i, g := range h.Groups {
			ve, ok := expr.CompileVec(g)
			if !ok {
				return nil, fmt.Errorf("physical: group expression %s is not vectorizable", g)
			}
			groups[i] = ve
		}
		args := make([]*expr.VecExpr, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Func == expr.CountStarAgg {
				continue
			}
			ve, ok := expr.CompileVec(a.Arg)
			if !ok {
				return nil, fmt.Errorf("physical: aggregate argument %s is not vectorizable", a.Arg)
			}
			args[i] = ve
		}
		return h.aggregate(in, groups, args)
	}), nil
}

// aggregate consumes the whole input and renders the result batches.
func (h *VecHashAggExec) aggregate(in vector.BatchIter, groupExprs, argExprs []*expr.VecExpr) (vector.BatchIter, error) {
	table := map[string]*aggGroup{}
	var order []*aggGroup
	ga := groupAlloc{nAggs: len(h.Aggs)}
	var keyBuf []byte
	gvecs := make([]*columnar.Vector, len(groupExprs))
	avecs := make([]*columnar.Vector, len(argExprs))
	// Fast path: a single integer-family group key uses its int64 lane as
	// the map key directly — no key encoding, no string hashing. This is
	// the dominant GROUP BY shape (Figure 2 groups by person1Id).
	intKey := len(groupExprs) == 1 && groupExprs[0].Type().IntLane()
	intTable := map[int64]*aggGroup{}
	var nullGroup *aggGroup
	for {
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for i, ge := range groupExprs {
			if gvecs[i], err = ge.Eval(b); err != nil {
				return nil, err
			}
		}
		for i, ae := range argExprs {
			if ae == nil {
				continue // COUNT(*)
			}
			if avecs[i], err = ae.Eval(b); err != nil {
				return nil, err
			}
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			var g *aggGroup
			if intKey {
				gv := gvecs[0]
				if gv.IsNull(i) {
					if nullGroup == nil {
						nullGroup = ga.new(sqltypes.Row{sqltypes.Null})
						order = append(order, nullGroup)
					}
					g = nullGroup
				} else {
					k := gv.Int64s()[i]
					var ok bool
					if g, ok = intTable[k]; !ok {
						g = ga.new(sqltypes.Row{gv.Get(i)})
						intTable[k] = g
						order = append(order, g)
					}
				}
			} else {
				keyBuf = keyBuf[:0]
				for _, gv := range gvecs {
					keyBuf = AppendValueKey(keyBuf, gv.Get(i))
				}
				var ok bool
				if g, ok = table[string(keyBuf)]; !ok {
					keys := make(sqltypes.Row, len(gvecs))
					for k, gv := range gvecs {
						keys[k] = gv.Get(i)
					}
					g = ga.new(keys)
					table[string(keyBuf)] = g
					order = append(order, g)
				}
			}
			for ai, a := range h.Aggs {
				if a.Func == expr.CountStarAgg {
					g.accs[ai].count++
					continue
				}
				updateAcc(&g.accs[ai], a, avecs[ai].Get(i))
			}
		}
	}
	// Global aggregates emit one row even with no input (Complete mode).
	if len(order) == 0 && len(h.Groups) == 0 && h.Mode != AggPartial {
		order = append(order, &aggGroup{accs: make([]acc, len(h.Aggs))})
	}
	// Render result rows into dense batches.
	var batches []*vector.Batch
	var cur *vector.Batch
	for _, g := range order {
		if cur == nil || cur.Len() >= vector.DefaultBatchSize {
			cur = vector.NewBatch(h.schema)
			batches = append(batches, cur)
		}
		var row sqltypes.Row
		if h.Mode == AggPartial {
			row = emitPartialRow(h.Aggs, g)
		} else {
			row = emitFinalRow(h.Aggs, g)
		}
		if err := cur.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return vector.NewSliceIter(batches), nil
}
