package physical

import (
	"fmt"
	"sort"
	"strings"

	"indexeddf/internal/expr"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

// ---------------------------------------------------------------------------
// Filter

// FilterExec keeps rows satisfying a bound predicate.
type FilterExec struct {
	Child Exec
	Cond  expr.Expr
}

// NewFilter builds a filter operator.
func NewFilter(child Exec, cond expr.Expr) *FilterExec { return &FilterExec{Child: child, Cond: cond} }

// Schema implements Exec.
func (f *FilterExec) Schema() *sqltypes.Schema { return f.Child.Schema() }

// Children implements Exec.
func (f *FilterExec) Children() []Exec { return []Exec{f.Child} }

func (f *FilterExec) String() string { return fmt.Sprintf("Filter %s", f.Cond) }

// Execute implements Exec.
func (f *FilterExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := f.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	cond := f.Cond
	st := ec.Stats(f)
	return ec.RDD.NewIterRDD(child, 0, func(_ *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		return obs.Rows(st, &filterIter{in: obs.CountInto(st, in), cond: cond}), nil
	}), nil
}

type filterIter struct {
	in   sqltypes.RowIter
	cond expr.Expr
}

func (it *filterIter) Next() (sqltypes.Row, error) {
	for {
		row, err := it.in.Next()
		if err != nil || row == nil {
			return row, err
		}
		keep, err := expr.EvalPredicate(it.cond, row)
		if err != nil {
			return nil, err
		}
		if keep {
			return row, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Project

// ProjectExec computes expressions per row.
type ProjectExec struct {
	Child  Exec
	Exprs  []expr.Expr
	schema *sqltypes.Schema
}

// NewProject builds a projection operator producing outSchema.
func NewProject(child Exec, exprs []expr.Expr, outSchema *sqltypes.Schema) *ProjectExec {
	return &ProjectExec{Child: child, Exprs: exprs, schema: outSchema}
}

// Schema implements Exec.
func (p *ProjectExec) Schema() *sqltypes.Schema { return p.schema }

// Children implements Exec.
func (p *ProjectExec) Children() []Exec { return []Exec{p.Child} }

func (p *ProjectExec) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project [" + strings.Join(parts, ", ") + "]"
}

// Execute implements Exec.
func (p *ProjectExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := p.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	exprs := p.Exprs
	st := ec.Stats(p)
	return ec.RDD.NewIterRDD(child, 0, func(_ *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		return obs.Rows(st, &projectIter{in: in, exprs: exprs}), nil
	}), nil
}

type projectIter struct {
	in    sqltypes.RowIter
	exprs []expr.Expr
}

func (it *projectIter) Next() (sqltypes.Row, error) {
	row, err := it.in.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(sqltypes.Row, len(it.exprs))
	for i, e := range it.exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sort

// SortExec globally orders rows: it gathers all partitions into one (the
// planner relies on this) and sorts by the given orders.
type SortExec struct {
	Child  Exec
	Orders []SortOrder
}

// SortOrder is one physical sort term (bound expression).
type SortOrder struct {
	Expr expr.Expr
	Desc bool
}

// NewSort builds a global sort.
func NewSort(child Exec, orders []SortOrder) *SortExec {
	return &SortExec{Child: child, Orders: orders}
}

// Schema implements Exec.
func (s *SortExec) Schema() *sqltypes.Schema { return s.Child.Schema() }

// Children implements Exec.
func (s *SortExec) Children() []Exec { return []Exec{s.Child} }

func (s *SortExec) String() string {
	parts := make([]string, len(s.Orders))
	for i, o := range s.Orders {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		parts[i] = o.Expr.String() + " " + dir
	}
	return "Sort [" + strings.Join(parts, ", ") + "]"
}

// Execute implements Exec.
func (s *SortExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := s.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	gathered := child
	if child.NumPartitions() > 1 {
		gathered = ec.RDD.NewShuffledRDD(child, rdd.SinglePartitioner{})
	}
	orders := s.Orders
	st := ec.Stats(s)
	return ec.RDD.NewIterRDD(gathered, 0, func(_ *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		rows, err := sqltypes.Drain(in)
		if err != nil {
			return nil, err
		}
		keys := make([]sqltypes.Row, len(rows))
		for i, r := range rows {
			k := make(sqltypes.Row, len(orders))
			for j, o := range orders {
				v, err := o.Expr.Eval(r)
				if err != nil {
					return nil, err
				}
				k[j] = v
			}
			keys[i] = k
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := keys[idx[a]], keys[idx[b]]
			for j, o := range orders {
				c := sqltypes.Compare(ka[j], kb[j])
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		out := make([]sqltypes.Row, len(rows))
		for i, ix := range idx {
			out[i] = rows[ix]
		}
		return obs.Rows(st, sqltypes.NewSliceIter(out)), nil
	}), nil
}

// ---------------------------------------------------------------------------
// Limit

// LimitExec truncates output to N rows: a per-partition local limit, then —
// when the child has several partitions — a gather and a global limit.
type LimitExec struct {
	Child Exec
	N     int64
}

// NewLimit builds a limit operator.
func NewLimit(child Exec, n int64) *LimitExec { return &LimitExec{Child: child, N: n} }

// Schema implements Exec.
func (l *LimitExec) Schema() *sqltypes.Schema { return l.Child.Schema() }

// Children implements Exec.
func (l *LimitExec) Children() []Exec { return []Exec{l.Child} }

func (l *LimitExec) String() string { return fmt.Sprintf("Limit %d", l.N) }

// Execute implements Exec.
func (l *LimitExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := l.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	n := l.N
	st := ec.Stats(l)
	if child.NumPartitions() <= 1 {
		return ec.RDD.NewIterRDD(child, 0, func(_ *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
			return obs.Rows(st, &limitIter{in: in, left: n}), nil
		}), nil
	}
	local := ec.RDD.NewIterRDD(child, 0, func(_ *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		return &limitIter{in: in, left: n}, nil
	})
	gathered := ec.RDD.NewShuffledRDD(local, rdd.SinglePartitioner{})
	return ec.RDD.NewIterRDD(gathered, 0, func(_ *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		return obs.Rows(st, &limitIter{in: in, left: n}), nil
	}), nil
}

// ExecuteStreaming returns only the per-partition local-limit stage,
// skipping the gather shuffle and global truncation. Streaming cursors use
// it when the limit sits at the plan root: the cursor truncates globally
// at N delivered rows and tears the stream down, so partition tasks beyond
// the ones that produced those rows never launch — the gather variant
// would have computed every partition as a shuffle map stage up front.
// Rows arrive in partition order either way, so the first N rows are the
// same ones Execute's global limit keeps.
func (l *LimitExec) ExecuteStreaming(ec *ExecContext) (rdd.RDD, error) {
	child, err := l.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	n := l.N
	st := ec.Stats(l)
	return ec.RDD.NewIterRDD(child, 0, func(_ *rdd.TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		return obs.Rows(st, &limitIter{in: in, left: n}), nil
	}), nil
}

type limitIter struct {
	in   sqltypes.RowIter
	left int64
}

func (it *limitIter) Next() (sqltypes.Row, error) {
	if it.left <= 0 {
		return nil, nil
	}
	row, err := it.in.Next()
	if err != nil || row == nil {
		return nil, err
	}
	it.left--
	return row, nil
}

// ---------------------------------------------------------------------------
// Exchange

// ExchangeExec repartitions rows by a hash of key ordinals (or into a
// single partition when Keys is empty).
type ExchangeExec struct {
	Child         Exec
	Keys          []int
	NumPartitions int
}

// NewExchange builds a hash exchange.
func NewExchange(child Exec, keys []int, numPartitions int) *ExchangeExec {
	return &ExchangeExec{Child: child, Keys: keys, NumPartitions: numPartitions}
}

// Schema implements Exec.
func (e *ExchangeExec) Schema() *sqltypes.Schema { return e.Child.Schema() }

// Children implements Exec.
func (e *ExchangeExec) Children() []Exec { return []Exec{e.Child} }

func (e *ExchangeExec) String() string {
	if len(e.Keys) == 0 {
		return "Exchange single"
	}
	return fmt.Sprintf("Exchange hash%v n=%d", e.Keys, e.NumPartitions)
}

// Execute implements Exec.
func (e *ExchangeExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := e.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	part := rdd.Partitioner(rdd.SinglePartitioner{})
	if len(e.Keys) > 0 {
		part = keyPartitioner(e.Keys, e.NumPartitions)
	}
	sh := ec.RDD.NewShuffledRDD(child, part)
	sh.SetObs(ec.Stats(e))
	return sh, nil
}

// VecExchangeExec is the columnar ExchangeExec: rows cross the shuffle as
// sealed column-major batches (map side scatters batches column-wise on a
// vectorized key hash, reduce side streams each map task's bucket back
// out), so a vectorized producer and consumer keep the data columnar
// straight through the stage boundary. Row operators on either side still
// work — the exchange batches a row child at the map side and presents a
// row shim at the reduce side.
type VecExchangeExec struct {
	Child         Exec
	Keys          []int
	NumPartitions int
}

// NewVecExchange builds a columnar hash exchange.
func NewVecExchange(child Exec, keys []int, numPartitions int) *VecExchangeExec {
	return &VecExchangeExec{Child: child, Keys: keys, NumPartitions: numPartitions}
}

// Schema implements Exec.
func (e *VecExchangeExec) Schema() *sqltypes.Schema { return e.Child.Schema() }

// Children implements Exec.
func (e *VecExchangeExec) Children() []Exec { return []Exec{e.Child} }

func (e *VecExchangeExec) String() string {
	if len(e.Keys) == 0 {
		return "VecExchange single"
	}
	return fmt.Sprintf("VecExchange hash%v n=%d", e.Keys, e.NumPartitions)
}

// Execute implements Exec.
func (e *VecExchangeExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := e.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	sh := ec.RDD.NewBatchShuffledRDD(child, e.Child.Schema(), e.Keys, e.NumPartitions)
	sh.SetObs(ec.Stats(e))
	return sh, nil
}

// ---------------------------------------------------------------------------
// Union

// UnionExec concatenates children with identical schemas.
type UnionExec struct {
	Inputs []Exec
}

// NewUnion builds a union operator.
func NewUnion(inputs ...Exec) *UnionExec { return &UnionExec{Inputs: inputs} }

// Schema implements Exec.
func (u *UnionExec) Schema() *sqltypes.Schema { return u.Inputs[0].Schema() }

// Children implements Exec.
func (u *UnionExec) Children() []Exec { return u.Inputs }

func (u *UnionExec) String() string { return fmt.Sprintf("Union (%d inputs)", len(u.Inputs)) }

// Execute implements Exec.
func (u *UnionExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	rdds := make([]rdd.RDD, len(u.Inputs))
	for i, in := range u.Inputs {
		r, err := in.Execute(ec)
		if err != nil {
			return nil, err
		}
		rdds[i] = r
	}
	return ec.RDD.NewUnionRDD(rdds...), nil
}
