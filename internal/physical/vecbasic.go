package physical

import (
	"fmt"
	"strings"

	"indexeddf/internal/expr"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// ---------------------------------------------------------------------------
// VecFilter

// VecFilterExec is the vectorized FilterExec: the predicate is compiled to
// a kernel evaluated over whole batches, survivors are gathered through a
// selection vector into a reused output batch. The predicate must be
// vectorizable (the planner checks expr.CanVectorize before choosing this
// operator).
type VecFilterExec struct {
	Child Exec
	Cond  expr.Expr
	// Adaptive enables runtime conjunct re-ranking: a multi-conjunct
	// predicate compiles to one kernel per conjunct evaluated as a
	// cascade (each conjunct only sees survivors of the previous ones),
	// and observed per-conjunct selectivity and cost periodically
	// re-rank the cascade cheapest-most-selective-first. Stamped by the
	// planner's post-vectorize pass unless disabled by config.
	Adaptive bool
}

// NewVecFilter builds a vectorized filter.
func NewVecFilter(child Exec, cond expr.Expr) *VecFilterExec {
	return &VecFilterExec{Child: child, Cond: cond}
}

// Schema implements Exec.
func (f *VecFilterExec) Schema() *sqltypes.Schema { return f.Child.Schema() }

// Children implements Exec.
func (f *VecFilterExec) Children() []Exec { return []Exec{f.Child} }

func (f *VecFilterExec) String() string { return fmt.Sprintf("VecFilter %s", f.Cond) }

// Execute implements Exec.
func (f *VecFilterExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := f.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	schema := f.Child.Schema()
	cond := f.Cond
	st := ec.Stats(f)
	conjs := expr.SplitConjunction(cond)
	adaptive := f.Adaptive && len(conjs) > 1
	return ec.RDD.NewBatchIterRDD(child, 0, schema, func(_ *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		// Compiled per partition task: kernels own scratch vectors and are
		// not safe to share across concurrently computed partitions.
		if adaptive {
			preds := make([]*expr.VecExpr, len(conjs))
			ok := true
			for i, c := range conjs {
				if preds[i], ok = expr.CompileVec(c); !ok {
					break
				}
			}
			if ok {
				mk := func() *vector.Batch { return vector.NewBatch(schema) }
				return obs.Batches(st, newVecAdaptiveFilterIter(in, preds, mk, st)), nil
			}
			// An individual conjunct wouldn't compile (the conjunction as a
			// whole still might); fall through to the fused kernel.
		}
		pred, ok := expr.CompileVec(cond)
		if !ok {
			return nil, fmt.Errorf("physical: predicate %s is not vectorizable", cond)
		}
		return obs.Batches(st, &vecFilterIter{in: in, pred: pred, out: vector.NewBatch(schema), st: st}), nil
	}), nil
}

type vecFilterIter struct {
	in   vector.BatchIter
	pred *expr.VecExpr
	out  *vector.Batch
	sel  []int
	// st, when set, receives per-batch input-row counts — the numerator of
	// the operator's observed predicate selectivity (outputs are counted by
	// the obs.Batches wrapper).
	st *obs.OpStats
}

// Next implements vector.BatchIter.
func (it *vecFilterIter) Next() (*vector.Batch, error) {
	for {
		b, err := it.in.Next()
		if err != nil || b == nil {
			return nil, err
		}
		it.st.AddRowsIn(int64(b.Len()))
		bools, err := it.pred.Eval(b)
		if err != nil {
			return nil, err
		}
		it.sel = vector.SelectTrue(bools, it.sel[:0])
		switch len(it.sel) {
		case 0:
			continue
		case b.Len():
			return b, nil // everything survived: forward untouched
		}
		vector.Gather(it.out, b, it.sel)
		return it.out, nil
	}
}

// ---------------------------------------------------------------------------
// VecProject

// VecProjectExec is the vectorized ProjectExec: every projection expression
// is compiled to a kernel, and the output batch simply references the
// kernels' result vectors (a bare column reference passes the input vector
// through untouched).
type VecProjectExec struct {
	Child  Exec
	Exprs  []expr.Expr
	schema *sqltypes.Schema
}

// NewVecProject builds a vectorized projection.
func NewVecProject(child Exec, exprs []expr.Expr, outSchema *sqltypes.Schema) *VecProjectExec {
	return &VecProjectExec{Child: child, Exprs: exprs, schema: outSchema}
}

// Schema implements Exec.
func (p *VecProjectExec) Schema() *sqltypes.Schema { return p.schema }

// Children implements Exec.
func (p *VecProjectExec) Children() []Exec { return []Exec{p.Child} }

func (p *VecProjectExec) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "VecProject [" + strings.Join(parts, ", ") + "]"
}

// Execute implements Exec.
func (p *VecProjectExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	child, err := p.Child.Execute(ec)
	if err != nil {
		return nil, err
	}
	inSchema := p.Child.Schema()
	outSchema := p.schema
	exprs := p.Exprs
	st := ec.Stats(p)
	return ec.RDD.NewBatchIterRDD(child, 0, inSchema, func(_ *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		compiled := make([]*expr.VecExpr, len(exprs))
		for i, e := range exprs {
			ve, ok := expr.CompileVec(e)
			if !ok {
				return nil, fmt.Errorf("physical: projection %s is not vectorizable", e)
			}
			compiled[i] = ve
		}
		return obs.Batches(st, &vecProjectIter{in: in, exprs: compiled, out: vector.NewBatch(outSchema)}), nil
	}), nil
}

type vecProjectIter struct {
	in    vector.BatchIter
	exprs []*expr.VecExpr
	out   *vector.Batch
}

// Next implements vector.BatchIter.
func (it *vecProjectIter) Next() (*vector.Batch, error) {
	b, err := it.in.Next()
	if err != nil || b == nil {
		return nil, err
	}
	for i, ve := range it.exprs {
		v, err := ve.Eval(b)
		if err != nil {
			return nil, err
		}
		it.out.Cols[i] = v
	}
	it.out.SetLen(b.Len())
	return it.out, nil
}
