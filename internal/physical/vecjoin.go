package physical

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// The vectorized joins cover inner equi-joins (outer joins need per-probe
// matched bookkeeping that conflicts with the batched residual post-filter,
// so they stay on the row operators). Probe keys are encoded
// batch-at-a-time into one reusable buffer, matches are appended
// column-wise into a reused output batch — no per-match joined-row
// allocation — and a residual predicate runs as a vectorized post-filter
// over the joined batch.

// appendJoined appends stream row i of b joined with the build row to out.
func appendJoined(out, b *vector.Batch, i int, build sqltypes.Row, streamIsLeft bool) error {
	if streamIsLeft {
		for c, col := range b.Cols {
			if err := out.Cols[c].Append(col.Get(i)); err != nil {
				return err
			}
		}
		off := len(b.Cols)
		for c, v := range build {
			if err := out.Cols[off+c].Append(v); err != nil {
				return err
			}
		}
	} else {
		for c, v := range build {
			if err := out.Cols[c].Append(v); err != nil {
				return err
			}
		}
		off := len(build)
		for c, col := range b.Cols {
			if err := out.Cols[off+c].Append(col.Get(i)); err != nil {
				return err
			}
		}
	}
	out.SetLen(out.Len() + 1)
	return nil
}

// residualFilter applies a compiled residual to the joined batch, gathering
// survivors into filtered. Returns nil when nothing survives.
func residualFilter(residual *expr.VecExpr, out, filtered *vector.Batch, sel *[]int) (*vector.Batch, error) {
	if residual == nil || out.Len() == 0 {
		return out, nil
	}
	bools, err := residual.Eval(out)
	if err != nil {
		return nil, err
	}
	*sel = vector.SelectTrue(bools, (*sel)[:0])
	switch len(*sel) {
	case 0:
		return nil, nil
	case out.Len():
		return out, nil
	}
	vector.Gather(filtered, out, *sel)
	return filtered, nil
}

// compileResidual compiles an optional residual predicate.
func compileResidual(residual expr.Expr) (*expr.VecExpr, error) {
	if residual == nil {
		return nil, nil
	}
	ve, ok := expr.CompileVec(residual)
	if !ok {
		return nil, fmt.Errorf("physical: residual %s is not vectorizable", residual)
	}
	return ve, nil
}

// buildHashTableFromBatches streams the build side into the hash table
// batch-at-a-time, so a spilled build input feeds construction straight
// from its run reader instead of rematerializing as one row slice. Rows
// are materialized per insert (the table retains them; the source batch
// is owned by its iterator and reused).
func buildHashTableFromBatches(in vector.BatchIter, keys []int, st *obs.OpStats) (joinTable, error) {
	ht := joinTable{m: make(map[string]*joinBucket)}
	var buf []byte
	for {
		b, err := in.Next()
		if err != nil {
			return joinTable{}, err
		}
		if b == nil {
			return ht, nil
		}
		st.AddRowsIn(int64(b.Len()))
		n := b.Len()
	rows:
		for i := 0; i < n; i++ {
			for _, k := range keys {
				if b.Cols[k].IsNull(i) {
					continue rows // null keys never join
				}
			}
			buf = buf[:0]
			for _, k := range keys {
				buf = AppendValueKey(buf, b.Cols[k].Get(i))
			}
			bk := ht.m[string(buf)]
			if bk == nil {
				bk = &joinBucket{}
				ht.m[string(buf)] = bk
			}
			bk.rows = append(bk.rows, b.Row(i))
		}
	}
}

// vecProbeIter joins stream batches against a build-side hash table.
type vecProbeIter struct {
	in            vector.BatchIter
	ht            joinTable
	keys          []int
	streamIsLeft  bool
	residual      *expr.VecExpr
	out, filtered *vector.Batch
	keyBuf        []byte
	sel           []int
	// st, when set, receives per-batch probe-side input counts (matches are
	// counted by the obs.Batches wrapper around this iterator).
	st *obs.OpStats
}

// Next implements vector.BatchIter.
func (it *vecProbeIter) Next() (*vector.Batch, error) {
	for {
		b, err := it.in.Next()
		if err != nil || b == nil {
			return nil, err
		}
		it.st.AddRowsIn(int64(b.Len()))
		it.out.Reset()
		n := b.Len()
	rows:
		for i := 0; i < n; i++ {
			for _, k := range it.keys {
				if b.Cols[k].IsNull(i) {
					continue rows // null keys never join
				}
			}
			it.keyBuf = it.keyBuf[:0]
			for _, k := range it.keys {
				it.keyBuf = AppendValueKey(it.keyBuf, b.Cols[k].Get(i))
			}
			for _, m := range it.ht.Lookup(it.keyBuf) {
				if err := appendJoined(it.out, b, i, m, it.streamIsLeft); err != nil {
					return nil, err
				}
			}
		}
		res, err := residualFilter(it.residual, it.out, it.filtered, &it.sel)
		if err != nil {
			return nil, err
		}
		if res != nil && res.Len() > 0 {
			return res, nil
		}
	}
}

// ---------------------------------------------------------------------------
// VecBroadcastHashJoin

// VecBroadcastHashJoinExec is the vectorized inner BroadcastHashJoinExec.
type VecBroadcastHashJoinExec struct {
	Stream, Build         Exec
	StreamKeys, BuildKeys []int
	BuildIsRight          bool
	Residual              expr.Expr
}

// NewVecBroadcastHashJoin builds a vectorized broadcast hash join (inner).
func NewVecBroadcastHashJoin(stream, build Exec, streamKeys, buildKeys []int,
	buildIsRight bool, residual expr.Expr) *VecBroadcastHashJoinExec {
	return &VecBroadcastHashJoinExec{Stream: stream, Build: build, StreamKeys: streamKeys,
		BuildKeys: buildKeys, BuildIsRight: buildIsRight, Residual: residual}
}

// Schema implements Exec.
func (j *VecBroadcastHashJoinExec) Schema() *sqltypes.Schema {
	if j.BuildIsRight {
		return j.Stream.Schema().Concat(j.Build.Schema())
	}
	return j.Build.Schema().Concat(j.Stream.Schema())
}

// Children implements Exec.
func (j *VecBroadcastHashJoinExec) Children() []Exec { return []Exec{j.Stream, j.Build} }

func (j *VecBroadcastHashJoinExec) String() string {
	return fmt.Sprintf("VecBroadcastHashJoin Inner skeys=%v bkeys=%v", j.StreamKeys, j.BuildKeys)
}

// Execute implements Exec.
func (j *VecBroadcastHashJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	buildRDD, err := j.Build.Execute(ec)
	if err != nil {
		return nil, err
	}
	buildRows, err := ec.RDD.CollectCtx(ec.Ctx, buildRDD)
	if err != nil {
		return nil, err
	}
	ht := buildHashTable(buildRows, j.BuildKeys)
	stream, err := j.Stream.Execute(ec)
	if err != nil {
		return nil, err
	}
	streamSchema := j.Stream.Schema()
	outSchema := j.Schema()
	sKeys, streamIsLeft, residual := j.StreamKeys, j.BuildIsRight, j.Residual
	st := ec.Stats(j)
	return ec.RDD.NewBatchIterRDD(stream, 0, streamSchema, func(_ *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		res, err := compileResidual(residual)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, &vecProbeIter{in: in, ht: ht, keys: sKeys, streamIsLeft: streamIsLeft,
			residual: res, out: vector.NewBatch(outSchema), filtered: vector.NewBatch(outSchema), st: st}), nil
	}), nil
}

// ---------------------------------------------------------------------------
// VecShuffleHashJoin

// VecShuffleHashJoinExec is the vectorized inner ShuffleHashJoinExec: both
// sides hash-partitioned, the right co-partition built into a table, the
// left probed through it batch-at-a-time.
type VecShuffleHashJoinExec struct {
	Left, Right         Exec
	LeftKeys, RightKeys []int
	Residual            expr.Expr
	NumPartitions       int
}

// NewVecShuffleHashJoin builds a vectorized shuffle hash join (inner).
func NewVecShuffleHashJoin(left, right Exec, leftKeys, rightKeys []int,
	residual expr.Expr, numPartitions int) *VecShuffleHashJoinExec {
	return &VecShuffleHashJoinExec{Left: left, Right: right, LeftKeys: leftKeys,
		RightKeys: rightKeys, Residual: residual, NumPartitions: numPartitions}
}

// Schema implements Exec.
func (j *VecShuffleHashJoinExec) Schema() *sqltypes.Schema {
	return j.Left.Schema().Concat(j.Right.Schema())
}

// Children implements Exec.
func (j *VecShuffleHashJoinExec) Children() []Exec { return []Exec{j.Left, j.Right} }

func (j *VecShuffleHashJoinExec) String() string {
	return fmt.Sprintf("VecShuffleHashJoin Inner lkeys=%v rkeys=%v", j.LeftKeys, j.RightKeys)
}

// Execute implements Exec. Both sides cross the columnar exchange: the
// probe side's batches splice straight through to the vectorized probe,
// and the build side's batches are materialized into the hash table at
// the reduce task (the one remaining row conversion on this path).
func (j *VecShuffleHashJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	left, err := j.Left.Execute(ec)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ec)
	if err != nil {
		return nil, err
	}
	ls := ec.RDD.NewBatchShuffledRDD(left, j.Left.Schema(), j.LeftKeys, j.NumPartitions)
	rs := ec.RDD.NewBatchShuffledRDD(right, j.Right.Schema(), j.RightKeys, j.NumPartitions)
	leftSchema := j.Left.Schema()
	rightSchema := j.Right.Schema()
	outSchema := j.Schema()
	lKeys, rKeys, residual := j.LeftKeys, j.RightKeys, j.Residual
	st := ec.Stats(j)
	return ec.RDD.NewZipRDD(ls, rs, func(_ *rdd.TaskContext, _ int, lit, rit sqltypes.RowIter) (sqltypes.RowIter, error) {
		ht, err := buildHashTableFromBatches(
			vector.AsBatchIter(rit, rightSchema, vector.DefaultBatchSize), rKeys, st)
		if err != nil {
			return nil, err
		}
		res, err := compileResidual(residual)
		if err != nil {
			return nil, err
		}
		probe := &vecProbeIter{in: vector.AsBatchIter(lit, leftSchema, vector.DefaultBatchSize),
			ht: ht, keys: lKeys, streamIsLeft: true, residual: res,
			out: vector.NewBatch(outSchema), filtered: vector.NewBatch(outSchema), st: st}
		// Wrap at the batch level so a downstream vectorized consumer's
		// AsBatchIter splices back to the instrumented iterator.
		return vector.NewRowIter(obs.Batches(st, probe)), nil
	})
}

// ---------------------------------------------------------------------------
// VecIndexedJoin

// VecIndexedJoinExec is the vectorized inner IndexedJoinExec: probe rows
// stream through in batches, each key answered by a Ctrie lookup plus a
// backward-chain walk whose decoded rows are appended column-wise into the
// output batch (the row operator allocates one joined row per match).
type VecIndexedJoinExec struct {
	Indexed       *catalog.IndexedTable
	Probe         Exec
	ProbeKey      int
	IndexedIsLeft bool
	Broadcast     bool
	Residual      expr.Expr
	schema        *sqltypes.Schema
}

// NewVecIndexedJoin builds a vectorized indexed join (inner).
func NewVecIndexedJoin(indexed *catalog.IndexedTable, probe Exec, probeKey int,
	indexedIsLeft, broadcast bool, residual expr.Expr, outSchema *sqltypes.Schema) *VecIndexedJoinExec {
	return &VecIndexedJoinExec{Indexed: indexed, Probe: probe, ProbeKey: probeKey,
		IndexedIsLeft: indexedIsLeft, Broadcast: broadcast, Residual: residual, schema: outSchema}
}

// Schema implements Exec.
func (j *VecIndexedJoinExec) Schema() *sqltypes.Schema { return j.schema }

// Children implements Exec.
func (j *VecIndexedJoinExec) Children() []Exec { return []Exec{j.Probe} }

func (j *VecIndexedJoinExec) String() string {
	mode := "shuffle"
	if j.Broadcast {
		mode = "broadcast"
	}
	return fmt.Sprintf("VecIndexedJoin Inner %s build=%s probeKey=%d", mode, j.Indexed.Name(), j.ProbeKey)
}

// Execute implements Exec.
func (j *VecIndexedJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	snap := ec.SnapshotOf(j.Indexed.Core())
	probeRDD, err := j.Probe.Execute(ec)
	if err != nil {
		return nil, err
	}
	n := snap.NumPartitions()
	probeSchema := j.Probe.Schema()
	outSchema := j.schema
	st := ec.Stats(j)
	mkIter := func(in vector.BatchIter, p int) (vector.BatchIter, error) {
		res, err := compileResidual(j.Residual)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, &vecIndexedJoinIter{in: in, snap: snap, part: p, probeKey: j.ProbeKey,
			indexedIsLeft: j.IndexedIsLeft, residual: res,
			decodeRow: make(sqltypes.Row, j.Indexed.Schema().Len()),
			out:       vector.NewBatch(outSchema), filtered: vector.NewBatch(outSchema), st: st}), nil
	}
	if j.Broadcast {
		probeRows, err := ec.RDD.CollectCtx(ec.Ctx, probeRDD)
		if err != nil {
			return nil, err
		}
		// Route each probe row to its key's home partition on the driver.
		routed := make([][]sqltypes.Row, n)
		for _, r := range probeRows {
			key := r[j.ProbeKey]
			if key.IsNull() {
				continue
			}
			p := snap.PartitionFor(key)
			routed[p] = append(routed[p], r)
		}
		return ec.RDD.NewBatchIterRDD(nil, n, nil, func(_ *rdd.TaskContext, p int, _ vector.BatchIter) (vector.BatchIter, error) {
			return mkIter(batchRows(routed[p], nil, probeSchema), p)
		}), nil
	}
	// Shuffle mode: the probe side crosses the columnar exchange keyed on
	// the probe column — the batch hash kernel routes exactly like the
	// index partitioning (snapshot.PartitionFor), so each reduce task
	// probes its co-partitioned Ctrie with spliced-through batches.
	shuffled := ec.RDD.NewBatchShuffledRDD(probeRDD, probeSchema, []int{j.ProbeKey}, n)
	return ec.RDD.NewBatchIterRDD(shuffled, 0, probeSchema, func(_ *rdd.TaskContext, p int, in vector.BatchIter) (vector.BatchIter, error) {
		return mkIter(in, p)
	}), nil
}

type vecIndexedJoinIter struct {
	in            vector.BatchIter
	snap          *core.Snapshot
	part          int
	probeKey      int
	indexedIsLeft bool
	residual      *expr.VecExpr
	decodeRow     sqltypes.Row
	out, filtered *vector.Batch
	sel           []int
	st            *obs.OpStats
}

// Next implements vector.BatchIter.
func (it *vecIndexedJoinIter) Next() (*vector.Batch, error) {
	for {
		b, err := it.in.Next()
		if err != nil || b == nil {
			return nil, err
		}
		it.st.AddRowsIn(int64(b.Len()))
		it.out.Reset()
		n := b.Len()
		keyCol := b.Cols[it.probeKey]
		for i := 0; i < n; i++ {
			if keyCol.IsNull(i) {
				continue
			}
			ptr, ok := it.snap.LookupPtr(it.part, keyCol.Get(i))
			if !ok {
				continue
			}
			var appendErr error
			err := it.snap.ChainEachInto(it.part, ptr, it.decodeRow, func(indexedRow sqltypes.Row) bool {
				appendErr = appendJoined(it.out, b, i, indexedRow, !it.indexedIsLeft)
				return appendErr == nil
			})
			if err != nil {
				return nil, err
			}
			if appendErr != nil {
				return nil, appendErr
			}
		}
		res, err := residualFilter(it.residual, it.out, it.filtered, &it.sel)
		if err != nil {
			return nil, err
		}
		if res != nil && res.Len() > 0 {
			return res, nil
		}
	}
}
