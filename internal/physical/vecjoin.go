package physical

import (
	"errors"
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/faultpoint"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/spill"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// The vectorized joins cover inner equi-joins (outer joins need per-probe
// matched bookkeeping that conflicts with the batched residual post-filter,
// so they stay on the row operators). Probe keys are encoded
// batch-at-a-time into one reusable buffer, matches are appended
// column-wise into a reused output batch — no per-match joined-row
// allocation — and a residual predicate runs as a vectorized post-filter
// over the joined batch.

// appendJoined appends stream row i of b joined with the build row to out.
func appendJoined(out, b *vector.Batch, i int, build sqltypes.Row, streamIsLeft bool) error {
	if streamIsLeft {
		for c, col := range b.Cols {
			if err := out.Cols[c].Append(col.Get(i)); err != nil {
				return err
			}
		}
		off := len(b.Cols)
		for c, v := range build {
			if err := out.Cols[off+c].Append(v); err != nil {
				return err
			}
		}
	} else {
		for c, v := range build {
			if err := out.Cols[c].Append(v); err != nil {
				return err
			}
		}
		off := len(build)
		for c, col := range b.Cols {
			if err := out.Cols[off+c].Append(col.Get(i)); err != nil {
				return err
			}
		}
	}
	out.SetLen(out.Len() + 1)
	return nil
}

// appendJoinedRef appends stream row i of b joined with build-store row
// bi of bb — the columnar counterpart of appendJoined: no build row is
// ever materialized, both sides copy lane-to-lane.
func appendJoinedRef(out, b *vector.Batch, i int, bb *vector.Batch, bi int, streamIsLeft bool) error {
	if streamIsLeft {
		for c, col := range b.Cols {
			if err := out.Cols[c].Append(col.Get(i)); err != nil {
				return err
			}
		}
		off := len(b.Cols)
		for c, col := range bb.Cols {
			if err := out.Cols[off+c].Append(col.Get(bi)); err != nil {
				return err
			}
		}
	} else {
		for c, col := range bb.Cols {
			if err := out.Cols[c].Append(col.Get(bi)); err != nil {
				return err
			}
		}
		off := len(bb.Cols)
		for c, col := range b.Cols {
			if err := out.Cols[off+c].Append(col.Get(i)); err != nil {
				return err
			}
		}
	}
	out.SetLen(out.Len() + 1)
	return nil
}

// residualFilter applies a compiled residual to the joined batch, gathering
// survivors into filtered. Returns nil when nothing survives.
func residualFilter(residual *expr.VecExpr, out, filtered *vector.Batch, sel *[]int) (*vector.Batch, error) {
	if residual == nil || out.Len() == 0 {
		return out, nil
	}
	bools, err := residual.Eval(out)
	if err != nil {
		return nil, err
	}
	*sel = vector.SelectTrue(bools, (*sel)[:0])
	switch len(*sel) {
	case 0:
		return nil, nil
	case out.Len():
		return out, nil
	}
	vector.Gather(filtered, out, *sel)
	return filtered, nil
}

// compileResidual compiles an optional residual predicate.
func compileResidual(residual expr.Expr) (*expr.VecExpr, error) {
	if residual == nil {
		return nil, nil
	}
	ve, ok := expr.CompileVec(residual)
	if !ok {
		return nil, fmt.Errorf("physical: residual %s is not vectorizable", residual)
	}
	return ve, nil
}

// ---------------------------------------------------------------------------
// Batch-referencing build table

// joinRefBytes estimates one build row's table overhead beyond its batch
// bytes: the packed ref plus its share of bucket and map-entry state.
const joinRefBytes = 24

// vecJoinTable is the vectorized build-side hash table: build batches are
// retained whole in a store and buckets hold packed (batch, row) refs, so
// building never materializes a row and matches copy lane-to-lane at
// probe time. Rows with NULL keys are dropped at insert (they never join
// an inner equi-join).
type vecJoinTable struct {
	m     map[string]*refBucket
	store []*vector.Batch
}

type refBucket struct{ refs []int64 }

func newVecJoinTable() *vecJoinTable {
	return &vecJoinTable{m: make(map[string]*refBucket)}
}

// add retains b in the store and indexes its non-NULL-key rows.
func (t *vecJoinTable) add(b *vector.Batch, keys []int, buf *[]byte) {
	t.store = append(t.store, b)
	bi := int64(len(t.store)-1) << 32
	n := b.Len()
rows:
	for i := 0; i < n; i++ {
		for _, k := range keys {
			if b.Cols[k].IsNull(i) {
				continue rows // null keys never join
			}
		}
		*buf = (*buf)[:0]
		for _, k := range keys {
			*buf = AppendValueKey(*buf, b.Cols[k].Get(i))
		}
		bk := t.m[string(*buf)]
		if bk == nil {
			bk = &refBucket{}
			t.m[string(*buf)] = bk
		}
		bk.refs = append(bk.refs, bi|int64(i))
	}
}

// buildVecTableFromRows builds a referencing table from collected rows
// (the broadcast build side): rows pack into dense batches once, and the
// table indexes those.
func buildVecTableFromRows(rows []sqltypes.Row, schema *sqltypes.Schema, keys []int) (*vecJoinTable, error) {
	ht := newVecJoinTable()
	var buf []byte
	var cur *vector.Batch
	for _, r := range rows {
		if cur == nil || cur.Len() >= vector.DefaultBatchSize {
			if cur != nil {
				ht.add(cur, keys, &buf)
			}
			cur = vector.NewBatch(schema)
		}
		if err := cur.AppendRow(r); err != nil {
			return nil, err
		}
	}
	if cur != nil && cur.Len() > 0 {
		ht.add(cur, keys, &buf)
	}
	return ht, nil
}

// vecProbeIter joins stream batches against a build-side table.
type vecProbeIter struct {
	in            vector.BatchIter
	ht            *vecJoinTable
	keys          []int
	streamIsLeft  bool
	residual      *expr.VecExpr
	out, filtered *vector.Batch
	keyBuf        []byte
	sel           []int
	// st, when set, receives per-batch probe-side input counts (matches are
	// counted by the obs.Batches wrapper around this iterator). Grace-join
	// partition probes pass nil: their input was already counted when the
	// probe side was scattered.
	st *obs.OpStats
}

// Next implements vector.BatchIter.
func (it *vecProbeIter) Next() (*vector.Batch, error) {
	for {
		b, err := it.in.Next()
		if err != nil || b == nil {
			return nil, err
		}
		it.st.AddRowsIn(int64(b.Len()))
		it.out.Reset()
		n := b.Len()
	rows:
		for i := 0; i < n; i++ {
			for _, k := range it.keys {
				if b.Cols[k].IsNull(i) {
					continue rows // null keys never join
				}
			}
			it.keyBuf = it.keyBuf[:0]
			for _, k := range it.keys {
				it.keyBuf = AppendValueKey(it.keyBuf, b.Cols[k].Get(i))
			}
			if bk := it.ht.m[string(it.keyBuf)]; bk != nil {
				for _, ref := range bk.refs {
					bb := it.ht.store[ref>>32]
					if err := appendJoinedRef(it.out, b, i, bb, int(ref&0xffffffff), it.streamIsLeft); err != nil {
						return nil, err
					}
				}
			}
		}
		res, err := residualFilter(it.residual, it.out, it.filtered, &it.sel)
		if err != nil {
			return nil, err
		}
		if res != nil && res.Len() > 0 {
			return res, nil
		}
	}
}

// ---------------------------------------------------------------------------
// VecBroadcastHashJoin

// VecBroadcastHashJoinExec is the vectorized inner BroadcastHashJoinExec.
type VecBroadcastHashJoinExec struct {
	Stream, Build         Exec
	StreamKeys, BuildKeys []int
	BuildIsRight          bool
	Residual              expr.Expr
}

// NewVecBroadcastHashJoin builds a vectorized broadcast hash join (inner).
func NewVecBroadcastHashJoin(stream, build Exec, streamKeys, buildKeys []int,
	buildIsRight bool, residual expr.Expr) *VecBroadcastHashJoinExec {
	return &VecBroadcastHashJoinExec{Stream: stream, Build: build, StreamKeys: streamKeys,
		BuildKeys: buildKeys, BuildIsRight: buildIsRight, Residual: residual}
}

// Schema implements Exec.
func (j *VecBroadcastHashJoinExec) Schema() *sqltypes.Schema {
	if j.BuildIsRight {
		return j.Stream.Schema().Concat(j.Build.Schema())
	}
	return j.Build.Schema().Concat(j.Stream.Schema())
}

// Children implements Exec.
func (j *VecBroadcastHashJoinExec) Children() []Exec { return []Exec{j.Stream, j.Build} }

func (j *VecBroadcastHashJoinExec) String() string {
	return fmt.Sprintf("VecBroadcastHashJoin Inner skeys=%v bkeys=%v", j.StreamKeys, j.BuildKeys)
}

// Execute implements Exec.
func (j *VecBroadcastHashJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	buildRDD, err := j.Build.Execute(ec)
	if err != nil {
		return nil, err
	}
	buildRows, err := ec.RDD.CollectCtx(ec.Ctx, buildRDD)
	if err != nil {
		return nil, err
	}
	ht, err := buildVecTableFromRows(buildRows, j.Build.Schema(), j.BuildKeys)
	if err != nil {
		return nil, err
	}
	stream, err := j.Stream.Execute(ec)
	if err != nil {
		return nil, err
	}
	streamSchema := j.Stream.Schema()
	outSchema := j.Schema()
	sKeys, streamIsLeft, residual := j.StreamKeys, j.BuildIsRight, j.Residual
	st := ec.Stats(j)
	return ec.RDD.NewBatchIterRDD(stream, 0, streamSchema, func(_ *rdd.TaskContext, _ int, in vector.BatchIter) (vector.BatchIter, error) {
		res, err := compileResidual(residual)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, &vecProbeIter{in: in, ht: ht, keys: sKeys, streamIsLeft: streamIsLeft,
			residual: res, out: vector.NewBatch(outSchema), filtered: vector.NewBatch(outSchema), st: st}), nil
	}), nil
}

// ---------------------------------------------------------------------------
// VecShuffleHashJoin

// VecShuffleHashJoinExec is the vectorized inner ShuffleHashJoinExec: both
// sides hash-partitioned, the right co-partition built into a table, the
// left probed through it batch-at-a-time. The build side's batches are
// cloned straight into the referencing table (no row conversion) and
// charged to the query budget; a build that outgrows it goes grace — see
// graceJoin.
type VecShuffleHashJoinExec struct {
	Left, Right         Exec
	LeftKeys, RightKeys []int
	Residual            expr.Expr
	NumPartitions       int
}

// NewVecShuffleHashJoin builds a vectorized shuffle hash join (inner).
func NewVecShuffleHashJoin(left, right Exec, leftKeys, rightKeys []int,
	residual expr.Expr, numPartitions int) *VecShuffleHashJoinExec {
	return &VecShuffleHashJoinExec{Left: left, Right: right, LeftKeys: leftKeys,
		RightKeys: rightKeys, Residual: residual, NumPartitions: numPartitions}
}

// Schema implements Exec.
func (j *VecShuffleHashJoinExec) Schema() *sqltypes.Schema {
	return j.Left.Schema().Concat(j.Right.Schema())
}

// Children implements Exec.
func (j *VecShuffleHashJoinExec) Children() []Exec { return []Exec{j.Left, j.Right} }

func (j *VecShuffleHashJoinExec) String() string {
	return fmt.Sprintf("VecShuffleHashJoin Inner lkeys=%v rkeys=%v", j.LeftKeys, j.RightKeys)
}

// Execute implements Exec. Both sides cross the columnar exchange: the
// probe side's batches splice straight through to the vectorized probe,
// and the build side's batches clone into the referencing hash table.
func (j *VecShuffleHashJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	left, err := j.Left.Execute(ec)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ec)
	if err != nil {
		return nil, err
	}
	ls := ec.RDD.NewBatchShuffledRDD(left, j.Left.Schema(), j.LeftKeys, j.NumPartitions)
	rs := ec.RDD.NewBatchShuffledRDD(right, j.Right.Schema(), j.RightKeys, j.NumPartitions)
	leftSchema := j.Left.Schema()
	rightSchema := j.Right.Schema()
	outSchema := j.Schema()
	lKeys, rKeys, residual := j.LeftKeys, j.RightKeys, j.Residual
	st := ec.Stats(j)
	return ec.RDD.NewZipRDD(ls, rs, func(tc *rdd.TaskContext, _ int, lit, rit sqltypes.RowIter) (sqltypes.RowIter, error) {
		res, err := compileResidual(residual)
		if err != nil {
			return nil, err
		}
		gj := &graceJoin{
			tc: tc, st: st,
			buildSchema: rightSchema, probeSchema: leftSchema, outSchema: outSchema,
			buildKeys: rKeys, probeKeys: lKeys,
			streamIsLeft: true, residual: res,
		}
		out, err := gj.run(
			vector.AsBatchIter(rit, rightSchema, vector.DefaultBatchSize),
			vector.AsBatchIter(lit, leftSchema, vector.DefaultBatchSize))
		if err != nil {
			return nil, err
		}
		// Wrap at the batch level so a downstream vectorized consumer's
		// AsBatchIter splices back to the instrumented iterator.
		return vector.NewRowIter(obs.Batches(st, out)), nil
	})
}

// ---------------------------------------------------------------------------
// Grace hash join

// graceJoin runs one co-partition of the shuffle hash join out-of-core
// when its build side outgrows the budget. The in-memory path clones
// build batches into the referencing table, charging each; when a
// reservation is refused (and a spill manager exists), both sides fan
// out: the table's retained batches plus the rest of the build input
// scatter by build key into spillFanout spilled runs, the entire probe
// input scatters by probe key with the same salt into matching runs, and
// the partition pairs then join one at a time — each pair's build fits
// or recurses with the next level's salt. At maxSpillDepth a pair stops
// recursing and falls back to chunked probing: build what fits, re-read
// the pair's probe run per chunk.
type graceJoin struct {
	tc          *rdd.TaskContext
	st          *obs.OpStats
	buildSchema *sqltypes.Schema
	probeSchema *sqltypes.Schema
	outSchema   *sqltypes.Schema
	buildKeys   []int
	probeKeys   []int
	// streamIsLeft is the output column order: probe columns first.
	streamIsLeft bool
	residual     *expr.VecExpr
}

// run builds from bin and returns the join output over pin.
func (gj *graceJoin) run(bin, pin vector.BatchIter) (vector.BatchIter, error) {
	tc := gj.tc
	mem := tc.Mem()
	ht, charged, pending, err := gj.buildTable(nil, bin, true)
	if err != nil {
		return nil, err
	}
	if pending == nil {
		// The whole build side fits: probe straight through, returning the
		// table's charge when the output drains.
		return releaseOnDrain(gj.probeIter(pin, ht, gj.st), mem, charged), nil
	}
	// Build overflowed: fan both sides out and join partition pairs.
	if err := faultpoint.Hit(faultpoint.SpillPartition); err != nil {
		return nil, err
	}
	gj.st.NoteFanout(spillFanout)
	gj.st.NoteDepth(1)
	bfan, err := newRunFan(tc, "VecHashJoin", gj.buildSchema, gj.buildKeys, 1, gj.st)
	if err != nil {
		return nil, err
	}
	for _, b := range ht.store {
		if err := bfan.add(b); err != nil {
			return nil, err
		}
	}
	if err := bfan.add(pending); err != nil {
		return nil, err
	}
	mem.Release(charged)
	for {
		b, err := bin.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		gj.st.AddRowsIn(int64(b.Len()))
		if err := bfan.add(b); err != nil {
			return nil, err
		}
	}
	pfan, err := newRunFan(tc, "VecHashJoin", gj.probeSchema, gj.probeKeys, 1, gj.st)
	if err != nil {
		return nil, err
	}
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := pin.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		gj.st.AddRowsIn(int64(b.Len()))
		if err := pfan.add(b); err != nil {
			return nil, err
		}
	}
	d := &graceDrainIter{gj: gj}
	if err := d.pushPairs(bfan, pfan, 1); err != nil {
		return nil, err
	}
	return d, nil
}

// buildTable clones build batches into a referencing table, charging
// each retained clone (plus ref overhead). seed, when non-nil, is an
// already-cloned batch inserted first — charged if the budget allows,
// retained uncharged otherwise (the chunked fallback's progress
// guarantee: every chunk holds at least one batch). On a refused
// reservation with spilling available the current clone is returned as
// pending (uninserted) and in is left unconsumed; without spilling the
// error surfaces — a too-big build fails fast instead of OOMing.
func (gj *graceJoin) buildTable(seed *vector.Batch, in vector.BatchIter, countIn bool) (ht *vecJoinTable, charged int64, pending *vector.Batch, err error) {
	tc := gj.tc
	mem := tc.Mem()
	external := tc.Ctx.SpillManager().Enabled() && mem != nil
	ht = newVecJoinTable()
	var buf []byte
	if seed != nil {
		need := seed.MemBytes() + int64(seed.Len())*joinRefBytes
		if err := mem.Reserve("VecHashJoin", need); err == nil {
			charged += need
			gj.st.AddMem(need)
		} else if !errors.Is(err, memory.ErrMemoryExceeded) {
			return nil, charged, nil, err
		}
		ht.add(seed, gj.buildKeys, &buf)
	}
	for {
		if err := tc.Err(); err != nil {
			return nil, charged, nil, err
		}
		b, err := in.Next()
		if err != nil {
			return nil, charged, nil, err
		}
		if b == nil {
			return ht, charged, nil, nil
		}
		if countIn {
			gj.st.AddRowsIn(int64(b.Len()))
		}
		clone := b.Clone()
		need := clone.MemBytes() + int64(clone.Len())*joinRefBytes
		if rerr := mem.Reserve("VecHashJoin", need); rerr != nil {
			if !external || !errors.Is(rerr, memory.ErrMemoryExceeded) {
				return nil, charged, nil, rerr
			}
			return ht, charged, clone, nil
		}
		charged += need
		gj.st.AddMem(need)
		ht.add(clone, gj.buildKeys, &buf)
	}
}

// probeIter wires a probe input to a built table.
func (gj *graceJoin) probeIter(in vector.BatchIter, ht *vecJoinTable, st *obs.OpStats) vector.BatchIter {
	return &vecProbeIter{in: in, ht: ht, keys: gj.probeKeys, streamIsLeft: gj.streamIsLeft,
		residual: gj.residual, out: vector.NewBatch(gj.outSchema), filtered: vector.NewBatch(gj.outSchema), st: st}
}

// gracePair is one pending (build, probe) partition pair and its depth.
type gracePair struct {
	build, probe *spill.Run
	level        int
}

// graceDrainIter joins the fan-out partition pairs one at a time: pop a
// pair, build its build run into a table, stream its probe run through;
// a pair whose build still overflows re-fans both runs with the next
// level's salt and pushes its sub-pairs (LIFO — one lineage of pairs
// open at a time). Resident state is bounded by one pair's build table.
type graceDrainIter struct {
	gj    *graceJoin
	stack []gracePair
	cur   vector.BatchIter
}

// pushPairs seals both fans and pushes the pairs whose partitions can
// produce output (an empty build or probe partition joins nothing; both
// runs are released on the spot).
func (d *graceDrainIter) pushPairs(bfan, pfan *runFan, level int) error {
	builds, err := bfan.sealAll()
	if err != nil {
		return err
	}
	probes, err := pfan.sealAll()
	if err != nil {
		return err
	}
	for i := range builds {
		if builds[i].Rows() == 0 || probes[i].Rows() == 0 {
			builds[i].Release()
			probes[i].Release()
			continue
		}
		d.stack = append(d.stack, gracePair{build: builds[i], probe: probes[i], level: level})
	}
	return nil
}

// Next implements vector.BatchIter.
func (d *graceDrainIter) Next() (*vector.Batch, error) {
	for {
		if d.cur != nil {
			b, err := d.cur.Next()
			if b != nil || err != nil {
				return b, err
			}
			d.cur = nil
		}
		if len(d.stack) == 0 {
			return nil, nil
		}
		top := d.stack[len(d.stack)-1]
		d.stack = d.stack[:len(d.stack)-1]
		out, err := d.joinPair(top)
		if err != nil {
			return nil, err
		}
		d.cur = out // nil when the pair re-fanned into sub-pairs
	}
}

// joinPair processes one partition pair. Returns its join output, or
// (nil, nil) when the pair's build overflowed and its sub-pairs were
// pushed instead.
func (d *graceDrainIter) joinPair(pair gracePair) (vector.BatchIter, error) {
	gj := d.gj
	tc := gj.tc
	mem := tc.Mem()
	bin, err := pair.build.Open(tc.Err, true)
	if err != nil {
		return nil, err
	}
	ht, charged, pending, err := gj.buildTable(nil, bin, false)
	if err != nil {
		return nil, err
	}
	if pending == nil {
		pit, err := pair.probe.Open(tc.Err, true)
		if err != nil {
			return nil, err
		}
		return releaseOnDrain(gj.probeIter(pit, ht, nil), mem, charged), nil
	}
	if pair.level >= maxSpillDepth {
		// Can't subdivide further: join in chunks against the re-readable
		// probe run.
		return newChunkedJoin(gj, ht, charged, pending, bin, pair.probe), nil
	}
	if err := faultpoint.Hit(faultpoint.SpillPartition); err != nil {
		return nil, err
	}
	gj.st.NoteDepth(int64(pair.level + 1))
	salt := uint64(pair.level + 1)
	bfan, err := newRunFan(tc, "VecHashJoin", gj.buildSchema, gj.buildKeys, salt, gj.st)
	if err != nil {
		return nil, err
	}
	for _, b := range ht.store {
		if err := bfan.add(b); err != nil {
			return nil, err
		}
	}
	if err := bfan.add(pending); err != nil {
		return nil, err
	}
	mem.Release(charged)
	for {
		b, err := bin.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := bfan.add(b); err != nil {
			return nil, err
		}
	}
	pit, err := pair.probe.Open(tc.Err, true)
	if err != nil {
		return nil, err
	}
	pfan, err := newRunFan(tc, "VecHashJoin", gj.probeSchema, gj.probeKeys, salt, gj.st)
	if err != nil {
		return nil, err
	}
	for {
		if err := tc.Err(); err != nil {
			return nil, err
		}
		b, err := pit.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := pfan.add(b); err != nil {
			return nil, err
		}
	}
	if err := d.pushPairs(bfan, pfan, pair.level+1); err != nil {
		return nil, err
	}
	return nil, nil
}

// chunkedJoinIter is the depth-cap fallback: the build run is consumed
// in what-fits chunks, and the whole probe run is re-read per chunk.
// Each build row lands in exactly one chunk, so the union of chunk
// outputs is exactly the pair's inner join; the cost is probe re-reads
// proportional to the overflow factor — paid only when 8^maxSpillDepth
// partitions still couldn't isolate a budget-sized build.
type chunkedJoinIter struct {
	gj      *graceJoin
	ht      *vecJoinTable
	charged int64
	pending *vector.Batch
	bin     vector.BatchIter // remaining build input (nil once exhausted)
	probe   *spill.Run
	cur     vector.BatchIter // probe pass over the current chunk
	done    bool
}

func newChunkedJoin(gj *graceJoin, ht *vecJoinTable, charged int64, pending *vector.Batch, bin vector.BatchIter, probe *spill.Run) *chunkedJoinIter {
	return &chunkedJoinIter{gj: gj, ht: ht, charged: charged, pending: pending, bin: bin, probe: probe}
}

// Next implements vector.BatchIter.
func (it *chunkedJoinIter) Next() (*vector.Batch, error) {
	gj := it.gj
	for {
		if it.done {
			return nil, nil
		}
		if it.cur == nil {
			if it.ht == nil {
				// Build the next chunk, seeded by the batch that overflowed
				// the previous one.
				ht, charged, pending, err := gj.buildTable(it.pending, it.bin, false)
				if err != nil {
					return nil, err
				}
				it.ht, it.charged, it.pending = ht, charged, pending
				if pending == nil {
					it.bin = nil // build input exhausted; this is the last pass
				}
			}
			// Re-readable probe pass: no autoRelease — the run must survive
			// until the last chunk.
			pit, err := it.probe.Open(gj.tc.Err, false)
			if err != nil {
				return nil, err
			}
			it.cur = gj.probeIter(pit, it.ht, nil)
		}
		b, err := it.cur.Next()
		if b != nil || err != nil {
			return b, err
		}
		// Chunk finished: return its charge and move on.
		it.cur = nil
		it.ht = nil
		gj.tc.Mem().Release(it.charged)
		it.charged = 0
		if it.bin == nil && it.pending == nil {
			it.probe.Release()
			it.done = true
			return nil, nil
		}
	}
}

// ---------------------------------------------------------------------------
// VecIndexedJoin

// VecIndexedJoinExec is the vectorized inner IndexedJoinExec: probe rows
// stream through in batches, each key answered by a Ctrie lookup plus a
// backward-chain walk whose decoded rows are appended column-wise into the
// output batch (the row operator allocates one joined row per match).
type VecIndexedJoinExec struct {
	Indexed       *catalog.IndexedTable
	Probe         Exec
	ProbeKey      int
	IndexedIsLeft bool
	Broadcast     bool
	Residual      expr.Expr
	schema        *sqltypes.Schema
}

// NewVecIndexedJoin builds a vectorized indexed join (inner).
func NewVecIndexedJoin(indexed *catalog.IndexedTable, probe Exec, probeKey int,
	indexedIsLeft, broadcast bool, residual expr.Expr, outSchema *sqltypes.Schema) *VecIndexedJoinExec {
	return &VecIndexedJoinExec{Indexed: indexed, Probe: probe, ProbeKey: probeKey,
		IndexedIsLeft: indexedIsLeft, Broadcast: broadcast, Residual: residual, schema: outSchema}
}

// Schema implements Exec.
func (j *VecIndexedJoinExec) Schema() *sqltypes.Schema { return j.schema }

// Children implements Exec.
func (j *VecIndexedJoinExec) Children() []Exec { return []Exec{j.Probe} }

func (j *VecIndexedJoinExec) String() string {
	mode := "shuffle"
	if j.Broadcast {
		mode = "broadcast"
	}
	return fmt.Sprintf("VecIndexedJoin Inner %s build=%s probeKey=%d", mode, j.Indexed.Name(), j.ProbeKey)
}

// Execute implements Exec.
func (j *VecIndexedJoinExec) Execute(ec *ExecContext) (rdd.RDD, error) {
	snap := ec.SnapshotOf(j.Indexed.Core())
	probeRDD, err := j.Probe.Execute(ec)
	if err != nil {
		return nil, err
	}
	n := snap.NumPartitions()
	probeSchema := j.Probe.Schema()
	outSchema := j.schema
	st := ec.Stats(j)
	mkIter := func(in vector.BatchIter, p int) (vector.BatchIter, error) {
		res, err := compileResidual(j.Residual)
		if err != nil {
			return nil, err
		}
		return obs.Batches(st, &vecIndexedJoinIter{in: in, snap: snap, part: p, probeKey: j.ProbeKey,
			indexedIsLeft: j.IndexedIsLeft, residual: res,
			decodeRow: make(sqltypes.Row, j.Indexed.Schema().Len()),
			out:       vector.NewBatch(outSchema), filtered: vector.NewBatch(outSchema), st: st}), nil
	}
	if j.Broadcast {
		probeRows, err := ec.RDD.CollectCtx(ec.Ctx, probeRDD)
		if err != nil {
			return nil, err
		}
		// Route each probe row to its key's home partition on the driver.
		routed := make([][]sqltypes.Row, n)
		for _, r := range probeRows {
			key := r[j.ProbeKey]
			if key.IsNull() {
				continue
			}
			p := snap.PartitionFor(key)
			routed[p] = append(routed[p], r)
		}
		return ec.RDD.NewBatchIterRDD(nil, n, nil, func(_ *rdd.TaskContext, p int, _ vector.BatchIter) (vector.BatchIter, error) {
			return mkIter(batchRows(routed[p], nil, probeSchema), p)
		}), nil
	}
	// Shuffle mode: the probe side crosses the columnar exchange keyed on
	// the probe column — the batch hash kernel routes exactly like the
	// index partitioning (snapshot.PartitionFor), so each reduce task
	// probes its co-partitioned Ctrie with spliced-through batches.
	shuffled := ec.RDD.NewBatchShuffledRDD(probeRDD, probeSchema, []int{j.ProbeKey}, n)
	return ec.RDD.NewBatchIterRDD(shuffled, 0, probeSchema, func(_ *rdd.TaskContext, p int, in vector.BatchIter) (vector.BatchIter, error) {
		return mkIter(in, p)
	}), nil
}

type vecIndexedJoinIter struct {
	in            vector.BatchIter
	snap          *core.Snapshot
	part          int
	probeKey      int
	indexedIsLeft bool
	residual      *expr.VecExpr
	decodeRow     sqltypes.Row
	out, filtered *vector.Batch
	sel           []int
	st            *obs.OpStats
}

// Next implements vector.BatchIter.
func (it *vecIndexedJoinIter) Next() (*vector.Batch, error) {
	for {
		b, err := it.in.Next()
		if err != nil || b == nil {
			return nil, err
		}
		it.st.AddRowsIn(int64(b.Len()))
		it.out.Reset()
		n := b.Len()
		keyCol := b.Cols[it.probeKey]
		for i := 0; i < n; i++ {
			if keyCol.IsNull(i) {
				continue
			}
			ptr, ok := it.snap.LookupPtr(it.part, keyCol.Get(i))
			if !ok {
				continue
			}
			var appendErr error
			err := it.snap.ChainEachInto(it.part, ptr, it.decodeRow, func(indexedRow sqltypes.Row) bool {
				appendErr = appendJoined(it.out, b, i, indexedRow, !it.indexedIsLeft)
				return appendErr == nil
			})
			if err != nil {
				return nil, err
			}
			if appendErr != nil {
				return nil, appendErr
			}
		}
		res, err := residualFilter(it.residual, it.out, it.filtered, &it.sel)
		if err != nil {
			return nil, err
		}
		if res != nil && res.Len() > 0 {
			return res, nil
		}
	}
}
