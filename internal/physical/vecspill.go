package physical

import (
	"indexeddf/internal/obs"
	"indexeddf/internal/rdd"
	"indexeddf/internal/spill"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// Shared fan-out fabric for the out-of-core hash operators: when a hash
// aggregate's group table or a hash join's build side outgrows its
// reservation, the state is hash-partitioned by key into spillFanout run
// files and each partition is processed independently — recursively, with
// a different hash salt per level, until every partition fits the budget.

const (
	// spillFanout is the number of partitions one spill generation fans
	// into. 8 divides the working set fast (8^2 = 64 partitions after two
	// levels) while keeping the open-file and run-buffer cost of a
	// generation small.
	spillFanout = 8

	// maxSpillDepth caps fan-out recursion. A partition still over budget
	// after 8 levels (8^8 ≈ 16M-way split) means the budget cannot hold
	// even ~1/16M of the distinct-key state; surfacing the memory error
	// beats grinding the disk forever.
	maxSpillDepth = 8

	// spillScatterFlush is how many buffered scatter bytes accumulate
	// before the per-partition builders are drained to their run files.
	// The buffer is transient operator scratch (bounded, freed at seal),
	// matching the exchange's spill writer granularity.
	spillScatterFlush = 1 << 20
)

// runFan hash-partitions batches into spillFanout spill runs. Routing
// hashes the key ordinals folded with a per-level salt, so recursing on
// one partition (whose rows all collide under the previous level's
// function) redistributes instead of re-colliding. Runs are spilled
// up front: nothing a fan-out holds is charged resident state.
type runFan struct {
	runs    []*spill.Run
	scatter *vector.Scatter
	acc     int64
}

func newRunFan(tc *rdd.TaskContext, op string, schema *sqltypes.Schema, ords []int,
	salt uint64, st *obs.OpStats) (*runFan, error) {
	sp := tc.Ctx.SpillManager()
	mem := tc.Mem()
	qs := obs.FromContext(tc.Cancellation())
	f := &runFan{
		runs:    make([]*spill.Run, spillFanout),
		scatter: vector.NewScatterSalted(schema, ords, spillFanout, salt),
	}
	for i := range f.runs {
		r := sp.NewRun(op, schema, mem, st, qs)
		if err := r.SpillNow(); err != nil {
			return nil, err
		}
		f.runs[i] = r
	}
	return f, nil
}

// add routes b's rows to their partitions (copying them — the caller may
// reuse b) and drains the builders to disk past the flush threshold.
func (f *runFan) add(b *vector.Batch) error {
	f.scatter.Add(b)
	f.acc += b.MemBytes()
	if f.acc >= spillScatterFlush {
		return f.flush()
	}
	return nil
}

func (f *runFan) flush() error {
	f.acc = 0
	for r, batches := range f.scatter.Seal() {
		for _, b := range batches {
			if err := f.runs[r].Append(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// seal drains and seals every run, releasing the empty ones and returning
// the rest (the partitions that actually hold rows).
func (f *runFan) seal() ([]*spill.Run, error) {
	if err := f.flush(); err != nil {
		return nil, err
	}
	out := make([]*spill.Run, 0, len(f.runs))
	for _, r := range f.runs {
		if err := r.Seal(); err != nil {
			return nil, err
		}
		if r.Rows() == 0 {
			r.Release()
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// sealAll drains and seals every run and returns all spillFanout of them
// in partition order — empty ones included (the grace join pairs build
// and probe runs by partition index, so positions must line up).
func (f *runFan) sealAll() ([]*spill.Run, error) {
	if err := f.flush(); err != nil {
		return nil, err
	}
	for _, r := range f.runs {
		if err := r.Seal(); err != nil {
			return nil, err
		}
	}
	return f.runs, nil
}

// release frees every run of an abandoned fan-out (error paths; the
// query tracker's closers would reap them anyway, but eagerly returning
// the disk space keeps long queries from accumulating dead files).
func (f *runFan) release() {
	for _, r := range f.runs {
		r.Release()
	}
}
