package sqltypes

import (
	"fmt"
	"strings"
)

// Field describes a single column: its name, type and nullability.
type Field struct {
	Name     string
	Type     Type
	Nullable bool
}

// String renders the field as "name TYPE [NOT NULL]".
func (f Field) String() string {
	if f.Nullable {
		return fmt.Sprintf("%s %s", f.Name, f.Type)
	}
	return fmt.Sprintf("%s %s NOT NULL", f.Name, f.Type)
}

// Schema is an ordered list of fields. Schemas are treated as immutable
// once built; derive new ones with Project/Concat.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema {
	return &Schema{Fields: fields}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Fields) }

// String renders the schema as "(a BIGINT, b STRING)".
func (s *Schema) String() string {
	parts := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// IndexOf returns the ordinal of the column with the given name
// (case-insensitive), or -1 when absent. Names may be qualified as
// "table.col"; an unqualified lookup matches the suffix.
func (s *Schema) IndexOf(name string) int {
	// Exact (case-insensitive) match first.
	for i, f := range s.Fields {
		if strings.EqualFold(f.Name, name) {
			return i
		}
	}
	// Unqualified name matching a qualified field, e.g. "id" vs "person.id".
	if !strings.Contains(name, ".") {
		found := -1
		for i, f := range s.Fields {
			if dot := strings.LastIndexByte(f.Name, '.'); dot >= 0 &&
				strings.EqualFold(f.Name[dot+1:], name) {
				if found >= 0 {
					return -1 // ambiguous
				}
				found = i
			}
		}
		return found
	}
	return -1
}

// Field returns the field at ordinal i.
func (s *Schema) Field(i int) Field { return s.Fields[i] }

// Project returns a new schema keeping the ordinals in cols, in order.
func (s *Schema) Project(cols []int) *Schema {
	out := make([]Field, len(cols))
	for i, c := range cols {
		out[i] = s.Fields[c]
	}
	return &Schema{Fields: out}
}

// Concat returns a schema with the fields of s followed by those of other,
// as produced by a join.
func (s *Schema) Concat(other *Schema) *Schema {
	out := make([]Field, 0, len(s.Fields)+len(other.Fields))
	out = append(out, s.Fields...)
	out = append(out, other.Fields...)
	return &Schema{Fields: out}
}

// Qualify returns a copy of the schema with every unqualified column name
// prefixed by "alias.".
func (s *Schema) Qualify(alias string) *Schema {
	out := make([]Field, len(s.Fields))
	for i, f := range s.Fields {
		name := f.Name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		out[i] = Field{Name: alias + "." + name, Type: f.Type, Nullable: f.Nullable}
	}
	return &Schema{Fields: out}
}

// ShortNames returns the column names with any qualifier stripped.
func (s *Schema) ShortNames() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		name := f.Name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		out[i] = name
	}
	return out
}

// Equal reports whether two schemas have identical fields.
func (s *Schema) Equal(other *Schema) bool {
	if len(s.Fields) != len(other.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != other.Fields[i] {
			return false
		}
	}
	return true
}

// Row is a tuple of values positionally aligned with a schema.
type Row []Value

// Clone returns a copy of the row (values are value types; strings share
// backing storage, which is safe because rows are immutable by convention).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row with the values of r followed by other's.
func (r Row) Concat(other Row) Row {
	out := make(Row, 0, len(r)+len(other))
	out = append(out, r...)
	out = append(out, other...)
	return out
}

// String renders the row as "[a, b, c]".
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// RowIter is a pull-based iterator over rows. Next returns nil, io-style,
// when exhausted; implementations return an error for runtime failures.
type RowIter interface {
	Next() (Row, error)
}

// SliceIter adapts a []Row to a RowIter.
type SliceIter struct {
	rows []Row
	pos  int
}

// NewSliceIter returns an iterator over rows.
func NewSliceIter(rows []Row) *SliceIter { return &SliceIter{rows: rows} }

// Next implements RowIter.
func (it *SliceIter) Next() (Row, error) {
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, nil
}

// Drain reads an iterator to completion and returns all rows.
func Drain(it RowIter) ([]Row, error) {
	var out []Row
	for {
		r, err := it.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}
