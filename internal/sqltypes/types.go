// Package sqltypes defines the type system shared by every layer of the
// engine: SQL data types, the unboxed Value union, rows, schemas and the
// binary row codec used by the Indexed DataFrame row batches.
package sqltypes

import "fmt"

// Type identifies a SQL data type. The set mirrors the column types the
// paper recommends indexing: (un)signed 32/64-bit integers, floating point
// numbers, strings and datetimes, plus booleans.
type Type uint8

const (
	// Unknown is the zero Type; expressions that are not yet resolved
	// report it.
	Unknown Type = iota
	// Bool is a boolean.
	Bool
	// Int32 is a signed 32-bit integer.
	Int32
	// Int64 is a signed 64-bit integer.
	Int64
	// Float64 is an IEEE-754 double.
	Float64
	// String is a UTF-8 string.
	String
	// Timestamp is microseconds since the Unix epoch (UTC).
	Timestamp
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Bool:
		return "BOOLEAN"
	case Int32:
		return "INT"
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "STRING"
	case Timestamp:
		return "TIMESTAMP"
	default:
		return "UNKNOWN"
	}
}

// Valid reports whether t is one of the concrete SQL types.
func (t Type) Valid() bool { return t > Unknown && t <= Timestamp }

// Numeric reports whether t supports arithmetic.
func (t Type) Numeric() bool {
	return t == Int32 || t == Int64 || t == Float64
}

// Integral reports whether t is an integer type.
func (t Type) Integral() bool { return t == Int32 || t == Int64 }

// IntLane reports whether t stores its payload in the int64 lane (and
// compares by it): Bool, Int32, Int64 and Timestamp. The vectorized
// kernels and the aggregate's integer-key fast path share this
// classification.
func (t Type) IntLane() bool {
	return t == Bool || t == Int32 || t == Int64 || t == Timestamp
}

// Orderable reports whether values of t can be compared with < / >.
func (t Type) Orderable() bool {
	return t.Numeric() || t == String || t == Timestamp || t == Bool
}

// FixedWidth returns the number of bytes the type occupies in the binary
// row layout's fixed section. Strings store an 8-byte (offset,len) slot.
func (t Type) FixedWidth() int {
	switch t {
	case Bool:
		return 1
	case Int32:
		return 4
	case Int64, Float64, Timestamp, String:
		return 8
	default:
		return 0
	}
}

// CommonType returns the wider of two numeric types following standard SQL
// promotion (INT -> BIGINT -> DOUBLE), or an error when no implicit
// promotion exists.
func CommonType(a, b Type) (Type, error) {
	if a == b {
		return a, nil
	}
	if a.Numeric() && b.Numeric() {
		if a == Float64 || b == Float64 {
			return Float64, nil
		}
		if a == Int64 || b == Int64 {
			return Int64, nil
		}
		return Int32, nil
	}
	// Timestamps compare against integer microseconds.
	if (a == Timestamp && b.Integral()) || (b == Timestamp && a.Integral()) {
		return Timestamp, nil
	}
	return Unknown, fmt.Errorf("sqltypes: no common type for %s and %s", a, b)
}
