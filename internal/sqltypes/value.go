package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Value is an unboxed SQL value: a small union struct that avoids
// interface boxing on hot paths. The zero Value is NULL.
//
// Value is comparable with == (all fields are comparable), which lets it be
// used directly as a Ctrie or map key; == equality coincides with SQL
// equality for values of the same type (NULL == NULL as a key, which is the
// behaviour an index wants, while expression evaluation treats NULL
// comparisons as NULL separately).
type Value struct {
	// T is the value's type; Unknown means NULL.
	T Type
	// I holds Bool (0/1), Int32, Int64 and Timestamp payloads.
	I int64
	// F holds Float64 payloads.
	F float64
	// S holds String payloads.
	S string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	v := Value{T: Bool}
	if b {
		v.I = 1
	}
	return v
}

// NewInt32 returns an INT value.
func NewInt32(i int32) Value { return Value{T: Int32, I: int64(i)} }

// NewInt64 returns a BIGINT value.
func NewInt64(i int64) Value { return Value{T: Int64, I: i} }

// NewFloat64 returns a DOUBLE value.
func NewFloat64(f float64) Value { return Value{T: Float64, F: f} }

// NewString returns a STRING value.
func NewString(s string) Value { return Value{T: String, S: s} }

// NewTimestamp returns a TIMESTAMP value from microseconds since the epoch.
func NewTimestamp(micros int64) Value { return Value{T: Timestamp, I: micros} }

// NewTimestampFromTime converts a time.Time to a TIMESTAMP value.
func NewTimestampFromTime(t time.Time) Value {
	return Value{T: Timestamp, I: t.UnixMicro()}
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.T == Unknown }

// Bool returns the boolean payload; callers must check the type first.
func (v Value) Bool() bool { return v.I != 0 }

// Int64Val returns the integral payload widened to int64.
func (v Value) Int64Val() int64 { return v.I }

// Float64Val returns the numeric payload widened to float64.
func (v Value) Float64Val() float64 {
	if v.T == Float64 {
		return v.F
	}
	return float64(v.I)
}

// StringVal returns the string payload.
func (v Value) StringVal() string { return v.S }

// Time returns the timestamp payload as a time.Time.
func (v Value) Time() time.Time { return time.UnixMicro(v.I).UTC() }

// String renders the value the way a CLI would print a cell.
func (v Value) String() string {
	switch v.T {
	case Unknown:
		return "NULL"
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case Int32, Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	case Timestamp:
		return v.Time().Format("2006-01-02 15:04:05.000000")
	default:
		return fmt.Sprintf("Value(%d)", v.T)
	}
}

// Cast converts v to type t, following SQL implicit-cast semantics.
// NULL casts to NULL of any type.
func (v Value) Cast(t Type) (Value, error) {
	if v.IsNull() || v.T == t {
		if v.IsNull() {
			return Null, nil
		}
		return v, nil
	}
	switch t {
	case Int32:
		switch v.T {
		case Int64, Timestamp:
			if v.I > math.MaxInt32 || v.I < math.MinInt32 {
				return Null, fmt.Errorf("sqltypes: %d overflows INT", v.I)
			}
			return NewInt32(int32(v.I)), nil
		case Float64:
			return NewInt32(int32(v.F)), nil
		case String:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 32)
			if err != nil {
				return Null, fmt.Errorf("sqltypes: cannot cast %q to INT", v.S)
			}
			return NewInt32(int32(i)), nil
		case Bool:
			return NewInt32(int32(v.I)), nil
		}
	case Int64:
		switch v.T {
		case Int32, Timestamp, Bool:
			return NewInt64(v.I), nil
		case Float64:
			return NewInt64(int64(v.F)), nil
		case String:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("sqltypes: cannot cast %q to BIGINT", v.S)
			}
			return NewInt64(i), nil
		}
	case Float64:
		switch v.T {
		case Int32, Int64, Timestamp, Bool:
			return NewFloat64(float64(v.I)), nil
		case String:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null, fmt.Errorf("sqltypes: cannot cast %q to DOUBLE", v.S)
			}
			return NewFloat64(f), nil
		}
	case String:
		return NewString(v.String()), nil
	case Timestamp:
		switch v.T {
		case Int32, Int64:
			return NewTimestamp(v.I), nil
		case String:
			for _, layout := range []string{
				"2006-01-02 15:04:05.000000",
				"2006-01-02 15:04:05",
				"2006-01-02",
				time.RFC3339,
			} {
				if ts, err := time.Parse(layout, v.S); err == nil {
					return NewTimestampFromTime(ts), nil
				}
			}
			return Null, fmt.Errorf("sqltypes: cannot cast %q to TIMESTAMP", v.S)
		}
	case Bool:
		switch v.T {
		case Int32, Int64:
			return NewBool(v.I != 0), nil
		case String:
			b, err := strconv.ParseBool(strings.TrimSpace(v.S))
			if err != nil {
				return Null, fmt.Errorf("sqltypes: cannot cast %q to BOOLEAN", v.S)
			}
			return NewBool(b), nil
		}
	}
	return Null, fmt.Errorf("sqltypes: cannot cast %s to %s", v.T, t)
}

// Compare orders two values. NULL sorts first. Values of different numeric
// types compare numerically; otherwise types must match.
// It returns -1, 0 or +1.
func Compare(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if a.T.Numeric() && b.T.Numeric() && (a.T == Float64 || b.T == Float64) {
		af, bf := a.Float64Val(), b.Float64Val()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch a.T {
	case Bool, Int32, Int64, Timestamp:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case Float64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		default:
			return 0
		}
	case String:
		return strings.Compare(a.S, b.S)
	}
	return 0
}

// Equal reports SQL equality of two non-null values (numeric values of
// different widths compare by value). Returns false if either is NULL.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvMix(h, byte(x))
		x >>= 8
	}
	return h
}

// Hash64 returns a 64-bit hash of the value, used both by the hash
// partitioner and the Ctrie index. Numeric values of different widths that
// compare equal hash equally (integers hash by their int64 payload). The
// hash is deterministic across processes so partition layouts reproduce.
func (v Value) Hash64() uint64 {
	switch v.T {
	case Unknown:
		return HashNull()
	case Bool, Int32, Int64, Timestamp:
		return HashInt64(v.I)
	case Float64:
		return HashFloat64(v.F)
	case String:
		return HashString(v.S)
	}
	return HashSeed
}

// The payload hash primitives below are Hash64 broken out by lane so the
// vectorized exchange can hash column payloads directly (no Value boxing)
// while routing rows to exactly the partitions the row-at-a-time
// HashPartitioner picks. Any change here changes partition layouts for
// both engines together.

// HashSeed is the hash state every value hash starts from (the FNV-1a
// offset basis); CombineHash folds per-column hashes into it for
// composite keys.
const HashSeed uint64 = fnvOffset64

// CombineHash folds x into the running hash h byte-by-byte (FNV-1a) —
// the composite-key combiner shared by the row and columnar exchanges.
func CombineHash(h, x uint64) uint64 { return fnvUint64(h, x) }

// RehashSalted remixes a routing hash with a per-level salt through a
// full-avalanche finalizer (splitmix64). Recursive spill fan-outs route
// with this rather than folding the salt through FNV: FNV's byte-wise
// fold carries almost no fresh entropy into the low bits from one salt
// to the next, so conditioned on the previous level's bucket a salted
// re-partitioning could send every row of a partition to the same
// sub-bucket at every deeper level — recursion without subdivision.
func RehashSalted(h, salt uint64) uint64 {
	x := h + salt*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashInt64 hashes an integer-family payload (Bool/Int32/Int64/Timestamp
// lanes all hash by their widened int64).
func HashInt64(x int64) uint64 { return fnvUint64(HashSeed, uint64(x)) }

// HashFloat64 hashes a Float64 payload; integral doubles hash like the
// equal integer so SQL-equal numerics land in the same partition.
func HashFloat64(f float64) uint64 {
	if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
		return fnvUint64(HashSeed, uint64(int64(f)))
	}
	return fnvUint64(HashSeed, math.Float64bits(f))
}

// HashString hashes a String payload.
func HashString(s string) uint64 {
	h := HashSeed
	for i := 0; i < len(s); i++ {
		h = fnvMix(h, s[i])
	}
	return h
}

// HashNull is the hash of SQL NULL (all NULLs route together).
func HashNull() uint64 { return fnvMix(HashSeed, 0xff) }
