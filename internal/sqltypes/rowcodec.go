package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RowCodec encodes rows of a fixed schema into a compact binary format and
// back. The layout mirrors Spark's UnsafeRow, which the paper's row batches
// store:
//
//	[null bitmap ceil(n/8) bytes]
//	[fixed section: one slot per column]
//	[variable section: string payloads]
//
// Fixed slots are little-endian. A STRING slot packs (offset:u32, len:u32)
// with the offset relative to the start of the encoded row. The encoding is
// self-contained: decoding needs only the schema.
type RowCodec struct {
	schema     *Schema
	fixedOff   []int // byte offset of each column's fixed slot
	fixedBytes int
	bitmapLen  int
}

// NewRowCodec builds a codec for the schema.
func NewRowCodec(schema *Schema) *RowCodec {
	c := &RowCodec{
		schema:    schema,
		fixedOff:  make([]int, schema.Len()),
		bitmapLen: (schema.Len() + 7) / 8,
	}
	off := c.bitmapLen
	for i, f := range schema.Fields {
		c.fixedOff[i] = off
		off += f.Type.FixedWidth()
	}
	c.fixedBytes = off
	return c
}

// Schema returns the codec's schema.
func (c *RowCodec) Schema() *Schema { return c.schema }

// MaxEncodedSize returns an upper bound on the encoded size of row.
func (c *RowCodec) MaxEncodedSize(row Row) int {
	n := c.fixedBytes
	for i, f := range c.schema.Fields {
		if f.Type == String && i < len(row) && !row[i].IsNull() {
			n += len(row[i].S)
		}
	}
	return n
}

// Encode appends the binary encoding of row to dst and returns the extended
// slice. The row must match the codec's schema (same arity; values either
// NULL or of the column type).
func (c *RowCodec) Encode(dst []byte, row Row) ([]byte, error) {
	if len(row) != c.schema.Len() {
		return dst, fmt.Errorf("sqltypes: row arity %d does not match schema arity %d",
			len(row), c.schema.Len())
	}
	base := len(dst)
	need := c.MaxEncodedSize(row)
	dst = append(dst, make([]byte, c.fixedBytes)...)
	if cap(dst)-len(dst) < need-c.fixedBytes {
		grown := make([]byte, len(dst), len(dst)+(need-c.fixedBytes))
		copy(grown, dst)
		dst = grown
	}
	buf := dst[base:]
	for i, f := range c.schema.Fields {
		v := row[i]
		if v.IsNull() {
			buf[i/8] |= 1 << (i % 8)
			continue
		}
		if v.T != f.Type {
			cast, err := v.Cast(f.Type)
			if err != nil {
				return dst, fmt.Errorf("sqltypes: column %q: %v", f.Name, err)
			}
			v = cast
		}
		off := c.fixedOff[i]
		switch f.Type {
		case Bool:
			if v.I != 0 {
				buf[off] = 1
			}
		case Int32:
			binary.LittleEndian.PutUint32(buf[off:], uint32(int32(v.I)))
		case Int64, Timestamp:
			binary.LittleEndian.PutUint64(buf[off:], uint64(v.I))
		case Float64:
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v.F))
		case String:
			varOff := len(dst) - base
			dst = append(dst, v.S...)
			buf = dst[base:]
			binary.LittleEndian.PutUint32(buf[off:], uint32(varOff))
			binary.LittleEndian.PutUint32(buf[off+4:], uint32(len(v.S)))
		}
	}
	return dst, nil
}

// Decode decodes a full row from buf (one encoded row, as produced by
// Encode). The returned row's string values reference buf; callers that
// retain rows past the life of buf must copy.
func (c *RowCodec) Decode(buf []byte) (Row, error) {
	row := make(Row, c.schema.Len())
	if err := c.DecodeInto(buf, row); err != nil {
		return nil, err
	}
	return row, nil
}

// DecodeInto decodes into a caller-provided row slice to avoid allocation.
func (c *RowCodec) DecodeInto(buf []byte, row Row) error {
	if len(buf) < c.fixedBytes {
		return fmt.Errorf("sqltypes: encoded row truncated: %d < %d bytes", len(buf), c.fixedBytes)
	}
	if len(row) != c.schema.Len() {
		return fmt.Errorf("sqltypes: destination arity %d does not match schema arity %d",
			len(row), c.schema.Len())
	}
	for i, f := range c.schema.Fields {
		if buf[i/8]&(1<<(i%8)) != 0 {
			row[i] = Null
			continue
		}
		off := c.fixedOff[i]
		switch f.Type {
		case Bool:
			row[i] = NewBool(buf[off] != 0)
		case Int32:
			row[i] = NewInt32(int32(binary.LittleEndian.Uint32(buf[off:])))
		case Int64:
			row[i] = NewInt64(int64(binary.LittleEndian.Uint64(buf[off:])))
		case Timestamp:
			row[i] = NewTimestamp(int64(binary.LittleEndian.Uint64(buf[off:])))
		case Float64:
			row[i] = NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
		case String:
			s := binary.LittleEndian.Uint32(buf[off:])
			n := binary.LittleEndian.Uint32(buf[off+4:])
			if int(s)+int(n) > len(buf) {
				return fmt.Errorf("sqltypes: string column %q out of bounds (%d+%d > %d)",
					f.Name, s, n, len(buf))
			}
			row[i] = NewString(string(buf[s : s+n]))
		}
	}
	return nil
}

// DecodeColumn decodes only the column at ordinal col, which is the fast
// path the indexed scan uses for projections over encoded rows.
func (c *RowCodec) DecodeColumn(buf []byte, col int) (Value, error) {
	if len(buf) < c.fixedBytes {
		return Null, fmt.Errorf("sqltypes: encoded row truncated")
	}
	if buf[col/8]&(1<<(col%8)) != 0 {
		return Null, nil
	}
	off := c.fixedOff[col]
	switch c.schema.Fields[col].Type {
	case Bool:
		return NewBool(buf[off] != 0), nil
	case Int32:
		return NewInt32(int32(binary.LittleEndian.Uint32(buf[off:]))), nil
	case Int64:
		return NewInt64(int64(binary.LittleEndian.Uint64(buf[off:]))), nil
	case Timestamp:
		return NewTimestamp(int64(binary.LittleEndian.Uint64(buf[off:]))), nil
	case Float64:
		return NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))), nil
	case String:
		s := binary.LittleEndian.Uint32(buf[off:])
		n := binary.LittleEndian.Uint32(buf[off+4:])
		if int(s)+int(n) > len(buf) {
			return Null, fmt.Errorf("sqltypes: string column out of bounds")
		}
		return NewString(string(buf[s : s+n])), nil
	}
	return Null, fmt.Errorf("sqltypes: cannot decode column %d", col)
}
