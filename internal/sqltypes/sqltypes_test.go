package sqltypes

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeStringAndWidth(t *testing.T) {
	cases := []struct {
		t     Type
		name  string
		width int
	}{
		{Bool, "BOOLEAN", 1},
		{Int32, "INT", 4},
		{Int64, "BIGINT", 8},
		{Float64, "DOUBLE", 8},
		{String, "STRING", 8},
		{Timestamp, "TIMESTAMP", 8},
		{Unknown, "UNKNOWN", 0},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.t, got, c.name)
		}
		if got := c.t.FixedWidth(); got != c.width {
			t.Errorf("%v.FixedWidth() = %d, want %d", c.t, got, c.width)
		}
	}
}

func TestCommonType(t *testing.T) {
	cases := []struct {
		a, b, want Type
		err        bool
	}{
		{Int32, Int32, Int32, false},
		{Int32, Int64, Int64, false},
		{Int64, Float64, Float64, false},
		{Int32, Float64, Float64, false},
		{Timestamp, Int64, Timestamp, false},
		{String, String, String, false},
		{String, Int64, Unknown, true},
		{Bool, Int64, Unknown, true},
	}
	for _, c := range cases {
		got, err := CommonType(c.a, c.b)
		if (err != nil) != c.err {
			t.Errorf("CommonType(%v,%v) err = %v, want err=%v", c.a, c.b, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("CommonType(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := NewBool(true); !v.Bool() || v.T != Bool {
		t.Errorf("NewBool(true) = %+v", v)
	}
	if v := NewInt32(-7); v.Int64Val() != -7 || v.T != Int32 {
		t.Errorf("NewInt32(-7) = %+v", v)
	}
	if v := NewInt64(1 << 40); v.Int64Val() != 1<<40 {
		t.Errorf("NewInt64 = %+v", v)
	}
	if v := NewFloat64(2.5); v.Float64Val() != 2.5 {
		t.Errorf("NewFloat64 = %+v", v)
	}
	if v := NewString("abc"); v.StringVal() != "abc" {
		t.Errorf("NewString = %+v", v)
	}
	ts := time.Date(2019, 6, 30, 12, 0, 0, 0, time.UTC)
	if v := NewTimestampFromTime(ts); !v.Time().Equal(ts) {
		t.Errorf("NewTimestampFromTime = %v, want %v", v.Time(), ts)
	}
	if !Null.IsNull() || Null.T != Unknown {
		t.Errorf("Null = %+v", Null)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt64(42), "42"},
		{NewFloat64(1.5), "1.5"},
		{NewString("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCast(t *testing.T) {
	cases := []struct {
		v    Value
		t    Type
		want Value
		err  bool
	}{
		{NewInt64(5), Float64, NewFloat64(5), false},
		{NewInt64(5), Int32, NewInt32(5), false},
		{NewInt64(math.MaxInt64), Int32, Null, true},
		{NewFloat64(2.9), Int64, NewInt64(2), false},
		{NewString("17"), Int64, NewInt64(17), false},
		{NewString("x"), Int64, Null, true},
		{NewString("2.5"), Float64, NewFloat64(2.5), false},
		{NewInt64(1), Bool, NewBool(true), false},
		{NewString("true"), Bool, NewBool(true), false},
		{NewInt64(123), String, NewString("123"), false},
		{Null, Int64, Null, false},
		{NewInt64(99), Timestamp, NewTimestamp(99), false},
		{NewString("2019-06-30"), Timestamp,
			NewTimestampFromTime(time.Date(2019, 6, 30, 0, 0, 0, 0, time.UTC)), false},
	}
	for _, c := range cases {
		got, err := c.v.Cast(c.t)
		if (err != nil) != c.err {
			t.Errorf("%v.Cast(%v) err = %v, want err=%v", c.v, c.t, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("%v.Cast(%v) = %+v, want %+v", c.v, c.t, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt64(1), NewInt64(2), -1},
		{NewInt64(2), NewInt64(2), 0},
		{NewInt64(3), NewInt64(2), 1},
		{NewInt64(2), NewFloat64(2.5), -1},
		{NewFloat64(2.5), NewInt32(2), 1},
		{NewString("a"), NewString("b"), -1},
		{Null, NewInt64(0), -1},
		{NewInt64(0), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{NewTimestamp(10), NewTimestamp(20), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("Equal(NULL, NULL) must be false in expression semantics")
	}
	if !Equal(NewInt32(3), NewInt64(3)) {
		t.Error("Equal(INT 3, BIGINT 3) must be true")
	}
	if Equal(NewInt64(3), NewInt64(4)) {
		t.Error("Equal(3,4) must be false")
	}
}

func TestHash64Consistency(t *testing.T) {
	// Values that compare equal must hash equal (index correctness).
	pairs := [][2]Value{
		{NewInt32(77), NewInt64(77)},
		{NewInt64(5), NewFloat64(5)},
		{NewString("key"), NewString("key")},
	}
	for _, p := range pairs {
		if p[0].Hash64() != p[1].Hash64() {
			t.Errorf("Hash64 mismatch for equal values %v and %v", p[0], p[1])
		}
	}
	if NewInt64(1).Hash64() == NewInt64(2).Hash64() {
		t.Error("distinct small ints should not collide in practice")
	}
}

func TestHash64EqualImpliesEqualHashProperty(t *testing.T) {
	f := func(x int64) bool {
		return NewInt64(x).Hash64() == NewInt32(int32(x)).Hash64() ==
			(int64(int32(x)) == x) || NewInt64(x).Hash64() != 0
	}
	// The real property: for in-range values equal across widths, hashes match.
	g := func(x int32) bool {
		return NewInt32(x).Hash64() == NewInt64(int64(x)).Hash64()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	_ = f
}

func schemaForCodecTests() *Schema {
	return NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "name", Type: String, Nullable: true},
		Field{Name: "score", Type: Float64, Nullable: true},
		Field{Name: "active", Type: Bool},
		Field{Name: "small", Type: Int32, Nullable: true},
		Field{Name: "created", Type: Timestamp, Nullable: true},
	)
}

func TestRowCodecRoundTrip(t *testing.T) {
	s := schemaForCodecTests()
	c := NewRowCodec(s)
	rows := []Row{
		{NewInt64(1), NewString("alice"), NewFloat64(3.14), NewBool(true), NewInt32(-5), NewTimestamp(1234567)},
		{NewInt64(2), Null, Null, NewBool(false), Null, Null},
		{NewInt64(3), NewString(""), NewFloat64(0), NewBool(true), NewInt32(0), NewTimestamp(0)},
		{NewInt64(-9), NewString("unicode ✓ string"), NewFloat64(math.Inf(1)), NewBool(false), NewInt32(7), NewTimestamp(-1)},
	}
	for _, r := range rows {
		buf, err := c.Encode(nil, r)
		if err != nil {
			t.Fatalf("Encode(%v): %v", r, err)
		}
		got, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		for i := range r {
			if got[i] != r[i] {
				t.Errorf("round trip col %d: got %+v, want %+v", i, got[i], r[i])
			}
		}
	}
}

func TestRowCodecDecodeColumn(t *testing.T) {
	s := schemaForCodecTests()
	c := NewRowCodec(s)
	r := Row{NewInt64(10), NewString("bob"), Null, NewBool(true), NewInt32(3), NewTimestamp(55)}
	buf, err := c.Encode(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r {
		got, err := c.DecodeColumn(buf, i)
		if err != nil {
			t.Fatalf("DecodeColumn(%d): %v", i, err)
		}
		if got != r[i] {
			t.Errorf("DecodeColumn(%d) = %+v, want %+v", i, got, r[i])
		}
	}
}

func TestRowCodecArityMismatch(t *testing.T) {
	c := NewRowCodec(NewSchema(Field{Name: "a", Type: Int64}))
	if _, err := c.Encode(nil, Row{NewInt64(1), NewInt64(2)}); err == nil {
		t.Error("Encode with wrong arity should fail")
	}
	if _, err := c.Decode([]byte{0}); err == nil {
		t.Error("Decode of truncated buffer should fail")
	}
}

func TestRowCodecImplicitCastOnEncode(t *testing.T) {
	c := NewRowCodec(NewSchema(Field{Name: "a", Type: Int64}))
	buf, err := c.Encode(nil, Row{NewInt32(5)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != NewInt64(5) {
		t.Errorf("got %+v, want BIGINT 5", got[0])
	}
}

func TestRowCodecAppendsToDst(t *testing.T) {
	c := NewRowCodec(NewSchema(Field{Name: "a", Type: Int64}, Field{Name: "s", Type: String}))
	var buf []byte
	var offs []int
	for i := 0; i < 10; i++ {
		offs = append(offs, len(buf))
		var err error
		buf, err = c.Encode(buf, Row{NewInt64(int64(i)), NewString("v")})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, off := range offs {
		end := len(buf)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		row, err := c.Decode(buf[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if row[0].Int64Val() != int64(i) {
			t.Errorf("row %d decoded to %v", i, row)
		}
	}
}

func TestRowCodecQuickRoundTrip(t *testing.T) {
	s := NewSchema(
		Field{Name: "a", Type: Int64},
		Field{Name: "b", Type: String},
		Field{Name: "c", Type: Float64},
	)
	c := NewRowCodec(s)
	f := func(a int64, b string, fl float64) bool {
		r := Row{NewInt64(a), NewString(b), NewFloat64(fl)}
		buf, err := c.Encode(nil, r)
		if err != nil {
			return false
		}
		got, err := c.Decode(buf)
		if err != nil {
			return false
		}
		// NaN != NaN under ==; compare bit patterns for the float.
		return got[0] == r[0] && got[1] == r[1] &&
			math.Float64bits(got[2].F) == math.Float64bits(r[2].F)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemaIndexOfAndQualify(t *testing.T) {
	s := NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "name", Type: String},
	).Qualify("person")
	if s.Fields[0].Name != "person.id" {
		t.Fatalf("Qualify: %v", s.Fields)
	}
	if i := s.IndexOf("person.id"); i != 0 {
		t.Errorf("IndexOf(person.id) = %d", i)
	}
	if i := s.IndexOf("name"); i != 1 {
		t.Errorf("IndexOf(name) = %d", i)
	}
	if i := s.IndexOf("missing"); i != -1 {
		t.Errorf("IndexOf(missing) = %d", i)
	}
	// Ambiguous unqualified name.
	amb := NewSchema(Field{Name: "a.id", Type: Int64}, Field{Name: "b.id", Type: Int64})
	if i := amb.IndexOf("id"); i != -1 {
		t.Errorf("ambiguous IndexOf(id) = %d, want -1", i)
	}
}

func TestSchemaProjectConcat(t *testing.T) {
	s := NewSchema(
		Field{Name: "a", Type: Int64},
		Field{Name: "b", Type: String},
		Field{Name: "c", Type: Bool},
	)
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Field(0).Name != "c" || p.Field(1).Name != "a" {
		t.Errorf("Project: %v", p)
	}
	j := s.Concat(p)
	if j.Len() != 5 || j.Field(3).Name != "c" {
		t.Errorf("Concat: %v", j)
	}
	if !s.Equal(s) || s.Equal(p) {
		t.Error("Equal misbehaves")
	}
}

func TestRowHelpersAndSliceIter(t *testing.T) {
	r := Row{NewInt64(1), NewString("x")}
	cl := r.Clone()
	cl[0] = NewInt64(9)
	if r[0].Int64Val() != 1 {
		t.Error("Clone must not alias")
	}
	cc := r.Concat(Row{NewBool(true)})
	if len(cc) != 3 || !cc[2].Bool() {
		t.Errorf("Concat: %v", cc)
	}
	it := NewSliceIter([]Row{r, cc})
	rows, err := Drain(it)
	if err != nil || len(rows) != 2 {
		t.Fatalf("Drain: %v %v", rows, err)
	}
	if r.String() != "[1, x]" {
		t.Errorf("Row.String() = %q", r.String())
	}
}
