package stream

import (
	"sync"
	"testing"

	"indexeddf/internal/sqltypes"
)

func msg(i int64) (sqltypes.Value, sqltypes.Row) {
	return sqltypes.NewInt64(i), sqltypes.Row{sqltypes.NewInt64(i)}
}

func TestProducePoll(t *testing.T) {
	top := NewTopic("updates", 3)
	for i := int64(0); i < 100; i++ {
		top.Produce(msg(i))
	}
	if top.Len() != 100 {
		t.Fatalf("Len = %d", top.Len())
	}
	got := map[int64]bool{}
	for {
		batch := top.Poll("g1", 7)
		if len(batch) == 0 {
			break
		}
		for _, m := range batch {
			if got[m.Row[0].Int64Val()] {
				t.Fatalf("message %v delivered twice", m.Row)
			}
			got[m.Row[0].Int64Val()] = true
		}
	}
	if len(got) != 100 {
		t.Fatalf("consumed %d messages", len(got))
	}
	if top.Lag("g1") != 0 {
		t.Fatalf("lag = %d", top.Lag("g1"))
	}
}

func TestIndependentConsumerGroups(t *testing.T) {
	top := NewTopic("t", 2)
	for i := int64(0); i < 10; i++ {
		top.Produce(msg(i))
	}
	a := top.Poll("a", 100)
	b := top.Poll("b", 100)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("groups saw %d and %d", len(a), len(b))
	}
	if got := top.Poll("a", 100); len(got) != 0 {
		t.Fatalf("group a re-read %d", len(got))
	}
}

func TestPartitionRoutingByKey(t *testing.T) {
	top := NewTopic("t", 4)
	p1, _ := top.Produce(msg(42))
	p2, _ := top.Produce(msg(42))
	if p1 != p2 {
		t.Fatal("same key routed to different partitions")
	}
	// Offsets are per partition and monotonic.
	_, o1 := top.Produce(msg(42))
	_, o2 := top.Produce(msg(42))
	if o2 != o1+1 {
		t.Fatalf("offsets %d then %d", o1, o2)
	}
}

func TestSeek(t *testing.T) {
	top := NewTopic("t", 1)
	for i := int64(0); i < 5; i++ {
		top.Produce(msg(i))
	}
	top.Poll("g", 100)
	top.Seek("g", false)
	if got := top.Poll("g", 100); len(got) != 5 {
		t.Fatalf("replay saw %d", len(got))
	}
	top.Seek("g", true)
	if got := top.Poll("g", 100); len(got) != 0 {
		t.Fatalf("seek-to-end saw %d", len(got))
	}
	if top.Lag("unknown") != 5 {
		t.Fatalf("lag for fresh group = %d", top.Lag("unknown"))
	}
}

func TestBroker(t *testing.T) {
	b := NewBroker()
	if _, err := b.CreateTopic("u", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic("u", 2); err == nil {
		t.Fatal("duplicate topic accepted")
	}
	if _, ok := b.Topic("u"); !ok {
		t.Fatal("topic not found")
	}
	if _, ok := b.Topic("v"); ok {
		t.Fatal("phantom topic")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	top := NewTopic("t", 4)
	var wg sync.WaitGroup
	const producers = 4
	const each = 500
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				top.Produce(msg(int64(p*each + i)))
			}
		}(p)
	}
	seen := make(chan int, 64)
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		total := 0
		for total < producers*each {
			batch := top.Poll("g", 64)
			total += len(batch)
		}
		seen <- total
	}()
	wg.Wait()
	cwg.Wait()
	if got := <-seen; got != producers*each {
		t.Fatalf("consumed %d", got)
	}
}
