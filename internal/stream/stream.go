// Package stream implements a Kafka-like partitioned, append-only message
// log with consumer groups and offsets — the substitute for the Apache
// Kafka engine the paper's demo uses to deliver the constant update stream
// mutating the graph (DESIGN.md §2).
package stream

import (
	"fmt"
	"sync"

	"indexeddf/internal/sqltypes"
)

// Message is one log record: a key (routes the partition) and a row
// payload.
type Message struct {
	Key       sqltypes.Value
	Row       sqltypes.Row
	Offset    int64
	Partition int
}

// Topic is a partitioned append-only log. Producers append; consumer
// groups poll with tracked offsets. Safe for concurrent use.
type Topic struct {
	name  string
	parts []*logPartition

	mu     sync.Mutex
	groups map[string][]int64 // group -> next offset per partition
}

type logPartition struct {
	mu   sync.RWMutex
	msgs []Message
}

// NewTopic creates a topic with n partitions.
func NewTopic(name string, n int) *Topic {
	if n <= 0 {
		n = 1
	}
	t := &Topic{name: name, parts: make([]*logPartition, n), groups: map[string][]int64{}}
	for i := range t.parts {
		t.parts[i] = &logPartition{}
	}
	return t
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// NumPartitions returns the partition count.
func (t *Topic) NumPartitions() int { return len(t.parts) }

// Produce appends a message, routed by the key's hash (round-robin via a
// zero key is fine). It returns the assigned partition and offset.
func (t *Topic) Produce(key sqltypes.Value, row sqltypes.Row) (partition int, offset int64) {
	partition = int(key.Hash64() % uint64(len(t.parts)))
	p := t.parts[partition]
	p.mu.Lock()
	offset = int64(len(p.msgs))
	p.msgs = append(p.msgs, Message{Key: key, Row: row, Offset: offset, Partition: partition})
	p.mu.Unlock()
	return partition, offset
}

// Len returns the total number of messages across partitions.
func (t *Topic) Len() int64 {
	var n int64
	for _, p := range t.parts {
		p.mu.RLock()
		n += int64(len(p.msgs))
		p.mu.RUnlock()
	}
	return n
}

// Poll fetches up to max messages for a consumer group, advancing its
// offsets (at-most-once within this process; offsets are per group).
func (t *Topic) Poll(group string, max int) []Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	offsets, ok := t.groups[group]
	if !ok {
		offsets = make([]int64, len(t.parts))
		t.groups[group] = offsets
	}
	var out []Message
	for pi, p := range t.parts {
		if len(out) >= max {
			break
		}
		p.mu.RLock()
		for offsets[pi] < int64(len(p.msgs)) && len(out) < max {
			out = append(out, p.msgs[offsets[pi]])
			offsets[pi]++
		}
		p.mu.RUnlock()
	}
	return out
}

// Offsets returns a copy of the group's current per-partition offsets
// (zeroes for a group that never polled).
func (t *Topic) Offsets(group string) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, len(t.parts))
	copy(out, t.groups[group])
	return out
}

// SeekOffsets restores a group's offsets to a snapshot taken with Offsets.
// Ingestion uses it to rewind a polled batch whose apply failed before any
// row landed, so the batch is redelivered on the next drain instead of
// silently lost.
func (t *Topic) SeekOffsets(group string, offsets []int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	saved := make([]int64, len(t.parts))
	copy(saved, offsets)
	t.groups[group] = saved
}

// Lag returns how many messages the group has not yet consumed.
func (t *Topic) Lag(group string) int64 {
	t.mu.Lock()
	offsets := t.groups[group]
	t.mu.Unlock()
	var lag int64
	for pi, p := range t.parts {
		p.mu.RLock()
		n := int64(len(p.msgs))
		p.mu.RUnlock()
		if offsets == nil {
			lag += n
			continue
		}
		lag += n - offsets[pi]
	}
	return lag
}

// Seek resets a group's offsets to the beginning (replay) or the end
// (skip history).
func (t *Topic) Seek(group string, toEnd bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	offsets := make([]int64, len(t.parts))
	if toEnd {
		for pi, p := range t.parts {
			p.mu.RLock()
			offsets[pi] = int64(len(p.msgs))
			p.mu.RUnlock()
		}
	}
	t.groups[group] = offsets
}

// Broker is a registry of topics (the "cluster").
type Broker struct {
	mu     sync.Mutex
	topics map[string]*Topic
}

// NewBroker creates an empty broker.
func NewBroker() *Broker { return &Broker{topics: map[string]*Topic{}} }

// CreateTopic registers a topic; it fails if the name is taken.
func (b *Broker) CreateTopic(name string, partitions int) (*Topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, exists := b.topics[name]; exists {
		return nil, fmt.Errorf("stream: topic %q already exists", name)
	}
	t := NewTopic(name, partitions)
	b.topics[name] = t
	return t, nil
}

// Topic looks up a topic.
func (b *Broker) Topic(name string) (*Topic, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	return t, ok
}
