package faultpoint

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedIsFree(t *testing.T) {
	defer Reset()
	for _, p := range Points() {
		if err := Hit(p); err != nil {
			t.Fatalf("unarmed %s returned %v", p, err)
		}
	}
}

func TestErrorSchedule(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm(TaskStart, Schedule{Err: boom, Skip: 2, Limit: 1})
	for i := 0; i < 2; i++ {
		if err := Hit(TaskStart); err != nil {
			t.Fatalf("hit %d should be skipped, got %v", i, err)
		}
	}
	if err := Hit(TaskStart); err != boom {
		t.Fatalf("hit 3 = %v, want boom", err)
	}
	// Limit exhausted: later hits pass.
	if err := Hit(TaskStart); err != nil {
		t.Fatalf("hit 4 = %v, want nil", err)
	}
	if got := Hits(TaskStart); got != 4 {
		t.Fatalf("hits = %d, want 4", got)
	}
}

func TestPanicSchedule(t *testing.T) {
	defer Reset()
	Arm(ShuffleWrite, Schedule{Panic: "injected-panic"})
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok {
			t.Fatalf("recovered %T, want *Injected", r)
		}
		if inj.Point != ShuffleWrite || inj.Val != "injected-panic" {
			t.Fatalf("unexpected payload %+v", inj)
		}
	}()
	_ = Hit(ShuffleWrite)
	t.Fatal("Hit should have panicked")
}

func TestDelaySchedule(t *testing.T) {
	defer Reset()
	Arm(ViewRefresh, Schedule{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hit(ViewRefresh); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay schedule returned after %v", d)
	}
}

func TestDisarmAndReset(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm(IngestAppend, Schedule{Err: boom})
	Arm(BatchSeal, Schedule{Err: boom})
	Disarm(IngestAppend)
	if err := Hit(IngestAppend); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if err := Hit(BatchSeal); err != boom {
		t.Fatalf("armed point did not fire: %v", err)
	}
	Reset()
	if err := Hit(BatchSeal); err != nil {
		t.Fatalf("reset point fired: %v", err)
	}
	if armedCount.Load() != 0 {
		t.Fatalf("armedCount = %d after Reset", armedCount.Load())
	}
}
