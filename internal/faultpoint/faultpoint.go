// Package faultpoint implements deterministic fault injection for tests:
// named injection sites compiled into the engine's error-handling seams
// (task start, shuffle write/fetch, batch seal, view refresh, ingest
// append) that tests arm with error, panic or delay schedules. Production
// cost is one atomic load per hit while nothing is armed; the package is
// internal, so no injection surface leaks to users.
//
//	defer faultpoint.Reset()
//	faultpoint.Arm(faultpoint.ShuffleWrite, faultpoint.Schedule{
//	    Err: errors.New("injected"), Skip: 2, Limit: 1,
//	})
//
// The chaos suite drives randomized schedules through randomized queries
// and asserts the resilience contract: no process death, no deadlock, no
// leaked shuffle outputs or goroutines, correct results once faults clear.
package faultpoint

import (
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site.
type Point string

// The engine's compiled-in sites.
const (
	// TaskStart fires when a partition task (result or shuffle-map) starts.
	TaskStart Point = "task.start"
	// ShuffleWrite fires before a map task publishes its buckets.
	ShuffleWrite Point = "shuffle.write"
	// ShuffleFetch fires when a reduce-side reader opens a shuffle.
	ShuffleFetch Point = "shuffle.fetch"
	// BatchSeal fires when a columnar map task seals its scattered batches.
	BatchSeal Point = "batch.seal"
	// ViewRefresh fires inside a materialized view's refresh, after the
	// delta is collected (so partial-application recovery is exercised).
	ViewRefresh Point = "view.refresh"
	// IngestAppend fires before a stream-ingest batch is appended.
	IngestAppend Point = "ingest.append"
	// SpillWrite fires before a batch is serialized to a spill run file.
	SpillWrite Point = "spill.write"
	// SpillRead fires when a spilled run is opened and before each batch
	// is decoded from it.
	SpillRead Point = "spill.read"
	// SpillPartition fires when an out-of-core operator fans its state out
	// into spill partitions (agg table flush, grace-join repartition).
	SpillPartition Point = "spill.partition"
)

// Points lists every compiled-in site (chaos tests sweep them).
func Points() []Point {
	return []Point{TaskStart, ShuffleWrite, ShuffleFetch, BatchSeal, ViewRefresh, IngestAppend, SpillWrite, SpillRead, SpillPartition}
}

// Schedule describes what an armed point does when hit.
type Schedule struct {
	// Err, when non-nil, is returned from Hit.
	Err error
	// Panic, when non-nil, is panicked with (wrapped in *Injected). Err
	// wins when both are set.
	Panic any
	// Delay, when positive, sleeps before deciding (deadline/backpressure
	// tests). A delay-only schedule returns nil after sleeping.
	Delay time.Duration
	// Skip suppresses the first Skip hits (fire on the N+1th arrival).
	Skip int64
	// Limit caps how many times the schedule fires (0 = every hit).
	Limit int64
}

// Injected wraps a scheduled panic value so containment tests can tell an
// injected panic from a genuine engine bug.
type Injected struct {
	Point Point
	Val   any
}

var (
	armedCount atomic.Int64 // fast-path guard: 0 = nothing armed anywhere

	mu     sync.Mutex
	points = map[Point]*armed{}
)

type armed struct {
	s     Schedule
	hits  int64
	fired int64
}

// Arm installs (or replaces) a schedule at p.
func Arm(p Point, s Schedule) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[p]; !ok {
		armedCount.Add(1)
	}
	points[p] = &armed{s: s}
}

// Disarm removes p's schedule.
func Disarm(p Point) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[p]; ok {
		delete(points, p)
		armedCount.Add(-1)
	}
}

// Reset disarms every point (deferred at the top of every faultpoint test).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(-int64(len(points)))
	points = map[Point]*armed{}
}

// Hits returns how many times p was reached since it was armed.
func Hits(p Point) int64 {
	mu.Lock()
	defer mu.Unlock()
	a, ok := points[p]
	if !ok {
		return 0
	}
	return a.hits
}

// Hit is the compiled-in site: returns nil instantly when nothing is
// armed; otherwise consults p's schedule and returns its error, panics
// with *Injected, or sleeps its delay.
func Hit(p Point) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	a, ok := points[p]
	if !ok {
		mu.Unlock()
		return nil
	}
	a.hits++
	fire := a.hits > a.s.Skip && (a.s.Limit <= 0 || a.fired < a.s.Limit)
	if fire {
		a.fired++
	}
	s := a.s
	mu.Unlock()
	if !fire {
		return nil
	}
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	if s.Err != nil {
		return s.Err
	}
	if s.Panic != nil {
		panic(&Injected{Point: p, Val: s.Panic})
	}
	return nil
}
