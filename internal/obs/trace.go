package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one span-style trace record: a named point (or interval, when
// Dur > 0) in a query's lifecycle — parse, plan, cache hit, task start and
// finish per partition, shuffle write/fetch, merge, first row, close.
type Event struct {
	// Query is the owning query's id ("q3"), or "" for session-scope events
	// (plan-cache hits recorded at prepare time).
	Query string
	// Name identifies the span ("parse", "task", "shuffle write", ...).
	Name string
	// Part is the partition index for task-scoped events, -1 otherwise.
	Part int
	// At is when the event was recorded (interval end for Dur > 0).
	At time.Time
	// Dur is the span's duration, 0 for instantaneous events.
	Dur time.Duration
}

// String renders the event for trace dumps.
func (e Event) String() string {
	s := e.Name
	if e.Query != "" {
		s = e.Query + " " + s
	}
	if e.Part >= 0 {
		s = fmt.Sprintf("%s[p%d]", s, e.Part)
	}
	if e.Dur > 0 {
		s = fmt.Sprintf("%s (%s)", s, e.Dur)
	}
	return s
}

// Tracer is a bounded, mutex-guarded ring of trace events. Old events are
// overwritten when the ring wraps, so a long-lived session's trace memory is
// fixed at capacity regardless of query volume. It owns no goroutines —
// there is nothing to leak or shut down.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int  // write cursor
	wrapped bool // buf has been filled at least once
	dropped int64
}

// DefaultTraceCapacity bounds the per-session trace ring when the
// configuration does not say otherwise.
const DefaultTraceCapacity = 512

// NewTracer builds a tracer retaining the last capacity events
// (capacity <= 0 uses DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends ev, evicting the oldest event when the ring is full.
// Nil-receiver safe.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.wrapped = true
		t.dropped++
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]Event, len(t.buf))
		copy(out, t.buf)
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// EventsFor returns the retained events belonging to query, oldest-first.
func (t *Tracer) EventsFor(query string) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Query == query {
			out = append(out, ev)
		}
	}
	return out
}

// Dropped returns how many events the ring has evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Capacity returns the ring's fixed capacity.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}
