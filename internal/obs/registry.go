package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a fixed-bucket distribution (query latencies). Observations
// happen at query granularity, so a mutex is cheap enough and keeps the
// bucket scan plus sum update atomic as a unit.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending
	buckets []int64   // len(bounds)+1; last is +Inf
	sum     float64
	count   int64
}

// DefBuckets is a latency ladder from 100µs to ~100s in roughly 3x steps.
var DefBuckets = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// metric is one registered entry; exactly one of counter, gauge or hist is
// set, and kind names the Prometheus type emitted.
type metric struct {
	name, help, kind string
	counter          *Counter
	gauge            func() float64
	hist             *Histogram
}

// Registry holds the engine's metrics and renders them in Prometheus text
// exposition format. Registration happens once at session construction;
// reads are lock-free for counters and call-through for gauge functions.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]int
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

func (r *Registry) add(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[m.name]; ok {
		r.metrics[i] = m
		return
	}
	r.byName[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(metric{name: name, help: help, kind: "counter", counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn — for
// monotonic totals owned elsewhere (scheduler task counts, shuffle bytes).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(metric{name: name, help: help, kind: "counter", gauge: fn})
}

// Gauge registers a gauge whose value is read from fn at scrape time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(metric{name: name, help: help, kind: "gauge", gauge: fn})
}

// Histogram registers and returns a histogram with the given upper bounds
// (nil uses DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, buckets: make([]int64, len(bounds)+1)}
	r.add(metric{name: name, help: help, kind: "histogram", hist: h})
	return h
}

// Value returns the current value of a counter or gauge by name (0, false
// when absent or a histogram).
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	i, ok := r.byName[name]
	var m metric
	if ok {
		m = r.metrics[i]
	}
	r.mu.Unlock()
	switch {
	case !ok:
		return 0, false
	case m.counter != nil:
		return float64(m.counter.Value()), true
	case m.gauge != nil:
		return m.gauge(), true
	default:
		return 0, false
	}
}

// WriteTo renders every metric in Prometheus text exposition format,
// sorted by name. Implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, m := range ms {
		if err := emit("# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			return total, err
		}
		switch {
		case m.counter != nil:
			if err := emit("%s %d\n", m.name, m.counter.Value()); err != nil {
				return total, err
			}
		case m.gauge != nil:
			if err := emit("%s %s\n", m.name, formatFloat(m.gauge())); err != nil {
				return total, err
			}
		case m.hist != nil:
			m.hist.mu.Lock()
			var cum int64
			for i, bound := range m.hist.bounds {
				cum += m.hist.buckets[i]
				if err := emit("%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum); err != nil {
					m.hist.mu.Unlock()
					return total, err
				}
			}
			cum += m.hist.buckets[len(m.hist.bounds)]
			err := emit("%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				m.name, cum, m.name, formatFloat(m.hist.sum), m.name, m.hist.count)
			m.hist.mu.Unlock()
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
