// Package obs is the engine's execution-observability layer: per-operator
// runtime statistics (OpStats), per-query lifecycle accounting and span
// events (QueryStats), a bounded trace ring (Tracer), and a Prometheus-style
// metrics registry (Registry). Everything is designed around a zero-cost
// disabled path — every collector method is nil-receiver safe, and the
// iterator wrappers return their input unchanged when handed a nil
// collector — so execution paths without observability run byte-for-byte
// the same code they ran before.
//
// The collectors are deliberately allocation-free on the hot path: row
// wrappers buffer counts locally and flush to the shared atomics every
// flushEvery rows, and wall time is sampled (one timed Next per sampleEvery,
// scaled back up) so a million-row scan pays a handful of clock reads, not a
// million.
package obs

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// OpStats accumulates one physical operator's runtime counters. Safe for
// concurrent use by the operator's partition tasks; all methods are
// nil-receiver no-ops.
type OpStats struct {
	// Label is the operator's short name ("VecHashAgg", "Filter", ...).
	Label string

	rowsIn   atomic.Int64 // rows pulled from the input (filters: selectivity denominator)
	rowsOut  atomic.Int64 // rows delivered to the parent
	batches  atomic.Int64 // batches delivered (vectorized operators)
	wallNs   atomic.Int64 // sampled wall time inside Next, inclusive of children
	memBytes atomic.Int64 // bytes reserved against the query's memory tracker
	bytes    atomic.Int64 // payload bytes moved (shuffle writes)

	spillBytes atomic.Int64 // bytes written to spill run files
	spillRuns  atomic.Int64 // runs this operator spilled to disk

	partitions atomic.Int64 // range partitions of a parallel merge (max)
	fanout     atomic.Int64 // spill fan-out width (max)
	depth      atomic.Int64 // spill repartition recursion depth (max)

	reorderMu sync.Mutex
	reorder   string // adaptive filter conjunct order ("c0,c1→c1,c0")
}

// storeMax raises a to n if n is larger (lock-free max).
func storeMax(a *atomic.Int64, n int64) {
	for {
		cur := a.Load()
		if n <= cur || a.CompareAndSwap(cur, n) {
			return
		}
	}
}

// NotePartitions records the width of a range-partitioned merge.
func (s *OpStats) NotePartitions(n int64) {
	if s != nil {
		storeMax(&s.partitions, n)
	}
}

// NoteFanout records the fan-out width of a spill repartitioning.
func (s *OpStats) NoteFanout(n int64) {
	if s != nil {
		storeMax(&s.fanout, n)
	}
}

// NoteDepth records how deep a spill repartitioning recursed.
func (s *OpStats) NoteDepth(n int64) {
	if s != nil {
		storeMax(&s.depth, n)
	}
}

// Partitions returns the recorded range-merge width (0 = single merge).
func (s *OpStats) Partitions() int64 {
	if s == nil {
		return 0
	}
	return s.partitions.Load()
}

// Fanout returns the recorded spill fan-out width (0 = never fanned out).
func (s *OpStats) Fanout() int64 {
	if s == nil {
		return 0
	}
	return s.fanout.Load()
}

// Depth returns the deepest spill repartition recursion level.
func (s *OpStats) Depth() int64 {
	if s == nil {
		return 0
	}
	return s.depth.Load()
}

// NoteReorder records an adaptive filter's conjunct order as
// "initial→current" (e.g. "c0,c1,c2→c2,c0,c1"). With several partition
// tasks the last writer wins — partitions see similar data, so any one
// task's converged order is representative.
func (s *OpStats) NoteReorder(order string) {
	if s == nil {
		return
	}
	s.reorderMu.Lock()
	s.reorder = order
	s.reorderMu.Unlock()
}

// Reorder returns the recorded conjunct reorder, "" if none happened.
func (s *OpStats) Reorder() string {
	if s == nil {
		return ""
	}
	s.reorderMu.Lock()
	defer s.reorderMu.Unlock()
	return s.reorder
}

// AddRowsIn records n input rows.
func (s *OpStats) AddRowsIn(n int64) {
	if s != nil && n != 0 {
		s.rowsIn.Add(n)
	}
}

// AddRowsOut records n delivered rows.
func (s *OpStats) AddRowsOut(n int64) {
	if s != nil && n != 0 {
		s.rowsOut.Add(n)
	}
}

// AddBatches records n delivered batches.
func (s *OpStats) AddBatches(n int64) {
	if s != nil && n != 0 {
		s.batches.Add(n)
	}
}

// AddWall records ns of wall time spent producing output.
func (s *OpStats) AddWall(ns int64) {
	if s != nil && ns > 0 {
		s.wallNs.Add(ns)
	}
}

// AddMem records bytes reserved against the query's memory tracker by this
// operator (cumulative across partition tasks).
func (s *OpStats) AddMem(n int64) {
	if s != nil && n > 0 {
		s.memBytes.Add(n)
	}
}

// AddBytes records payload bytes moved (shuffle writes).
func (s *OpStats) AddBytes(n int64) {
	if s != nil && n > 0 {
		s.bytes.Add(n)
	}
}

// AddSpill records out-of-core activity: bytes written to spill run files
// and runs newly gone to disk.
func (s *OpStats) AddSpill(bytes, runs int64) {
	if s == nil {
		return
	}
	if bytes > 0 {
		s.spillBytes.Add(bytes)
	}
	if runs > 0 {
		s.spillRuns.Add(runs)
	}
}

// SpillBytes returns the bytes this operator wrote to spill files.
func (s *OpStats) SpillBytes() int64 {
	if s == nil {
		return 0
	}
	return s.spillBytes.Load()
}

// SpillRuns returns the number of runs this operator spilled to disk.
func (s *OpStats) SpillRuns() int64 {
	if s == nil {
		return 0
	}
	return s.spillRuns.Load()
}

// RowsIn returns the input-row count (filters only).
func (s *OpStats) RowsIn() int64 {
	if s == nil {
		return 0
	}
	return s.rowsIn.Load()
}

// RowsOut returns the delivered-row count.
func (s *OpStats) RowsOut() int64 {
	if s == nil {
		return 0
	}
	return s.rowsOut.Load()
}

// Batches returns the delivered-batch count.
func (s *OpStats) Batches() int64 {
	if s == nil {
		return 0
	}
	return s.batches.Load()
}

// WallNs returns the sampled wall time in nanoseconds (inclusive of
// children, Postgres-style).
func (s *OpStats) WallNs() int64 {
	if s == nil {
		return 0
	}
	return s.wallNs.Load()
}

// MemBytes returns bytes reserved by the operator.
func (s *OpStats) MemBytes() int64 {
	if s == nil {
		return 0
	}
	return s.memBytes.Load()
}

// Bytes returns payload bytes moved by the operator.
func (s *OpStats) Bytes() int64 {
	if s == nil {
		return 0
	}
	return s.bytes.Load()
}

// Selectivity returns rowsOut/rowsIn, or -1 when no input was recorded.
func (s *OpStats) Selectivity() float64 {
	in := s.RowsIn()
	if in <= 0 {
		return -1
	}
	return float64(s.RowsOut()) / float64(in)
}

// QueryStats is one query's end-to-end account: identity, phase timings,
// per-task and shuffle counters, and the set of per-operator collectors.
// It rides the query's context through the scheduler (WithQuery /
// FromContext); a nil *QueryStats is the disabled path and every method is
// a no-op.
type QueryStats struct {
	// ID is the session-unique query label ("q1", "q2", ...).
	ID string
	// SQL is the originating statement text when known.
	SQL string
	// Start is when execution began.
	Start time.Time
	// ParseNs, PlanNs and TotalNs are the lifecycle phase durations.
	// Parse/Plan are written before execution starts; TotalNs when the
	// cursor closes.
	ParseNs, PlanNs int64
	// CacheHit reports whether the physical plan came from the plan cache.
	CacheHit bool

	totalNs        atomic.Int64
	tasksStarted   atomic.Int64
	tasksCompleted atomic.Int64
	shuffleBytes   atomic.Int64
	rowsOut        atomic.Int64
	memPeak        atomic.Int64
	spillBytes     atomic.Int64
	spillRuns      atomic.Int64

	tracer *Tracer

	mu  sync.Mutex
	ops []*OpStats
}

// NewQueryStats builds a collector for one query. tracer may be nil (events
// are dropped).
func NewQueryStats(id, sql string, tracer *Tracer) *QueryStats {
	return &QueryStats{ID: id, SQL: sql, Start: time.Now(), tracer: tracer}
}

// Op registers and returns a fresh per-operator collector under label.
func (q *QueryStats) Op(label string) *OpStats {
	if q == nil {
		return nil
	}
	st := &OpStats{Label: label}
	q.mu.Lock()
	q.ops = append(q.ops, st)
	q.mu.Unlock()
	return st
}

// Ops returns the registered operator collectors (registration order).
func (q *QueryStats) Ops() []*OpStats {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*OpStats, len(q.ops))
	copy(out, q.ops)
	return out
}

// TaskStarted counts one partition task launched for this query.
func (q *QueryStats) TaskStarted() {
	if q != nil {
		q.tasksStarted.Add(1)
	}
}

// TaskFinished counts one partition task completed for this query.
func (q *QueryStats) TaskFinished() {
	if q != nil {
		q.tasksCompleted.Add(1)
	}
}

// AddShuffleBytes counts payload bytes this query wrote to the shuffle.
func (q *QueryStats) AddShuffleBytes(n int64) {
	if q != nil && n > 0 {
		q.shuffleBytes.Add(n)
	}
}

// AddSpill records out-of-core activity query-wide: bytes written to spill
// run files and runs newly gone to disk.
func (q *QueryStats) AddSpill(bytes, runs int64) {
	if q == nil {
		return
	}
	if bytes > 0 {
		q.spillBytes.Add(bytes)
	}
	if runs > 0 {
		q.spillRuns.Add(runs)
	}
}

// SpillBytes returns the bytes the query wrote to spill files.
func (q *QueryStats) SpillBytes() int64 {
	if q == nil {
		return 0
	}
	return q.spillBytes.Load()
}

// SpillRuns returns the number of runs the query spilled to disk.
func (q *QueryStats) SpillRuns() int64 {
	if q == nil {
		return 0
	}
	return q.spillRuns.Load()
}

// AddRowsReturned counts rows delivered to the client cursor.
func (q *QueryStats) AddRowsReturned(n int64) {
	if q != nil && n > 0 {
		q.rowsOut.Add(n)
	}
}

// SetMemPeak records the query's memory high-water mark.
func (q *QueryStats) SetMemPeak(n int64) {
	if q != nil && n > 0 {
		q.memPeak.Store(n)
	}
}

// Finish stamps the query's total wall time. Idempotent enough: last write
// wins, and the cursor calls it exactly once at shutdown.
func (q *QueryStats) Finish() {
	if q != nil {
		q.totalNs.Store(int64(time.Since(q.Start)))
	}
}

// TasksStarted returns partition tasks launched for this query.
func (q *QueryStats) TasksStarted() int64 {
	if q == nil {
		return 0
	}
	return q.tasksStarted.Load()
}

// TasksCompleted returns partition tasks finished for this query.
func (q *QueryStats) TasksCompleted() int64 {
	if q == nil {
		return 0
	}
	return q.tasksCompleted.Load()
}

// ShuffleBytes returns payload bytes this query wrote to the shuffle.
func (q *QueryStats) ShuffleBytes() int64 {
	if q == nil {
		return 0
	}
	return q.shuffleBytes.Load()
}

// RowsReturned returns rows delivered to the client cursor.
func (q *QueryStats) RowsReturned() int64 {
	if q == nil {
		return 0
	}
	return q.rowsOut.Load()
}

// MemPeak returns the query's memory high-water mark in bytes.
func (q *QueryStats) MemPeak() int64 {
	if q == nil {
		return 0
	}
	return q.memPeak.Load()
}

// TotalNs returns the query's total wall time (0 until Finish).
func (q *QueryStats) TotalNs() int64 {
	if q == nil {
		return 0
	}
	return q.totalNs.Load()
}

// Event records a span event for this query into the session tracer.
func (q *QueryStats) Event(name string, part int, dur time.Duration) {
	if q == nil || q.tracer == nil {
		return
	}
	q.tracer.Record(Event{Query: q.ID, Name: name, Part: part, At: time.Now(), Dur: dur})
}

// Do runs fn under pprof labels attributing CPU samples to this query (and
// optionally an operator), so profiles of a busy session split by query_id.
func (q *QueryStats) Do(ctx context.Context, operator string, fn func(context.Context)) {
	if q == nil {
		fn(ctx)
		return
	}
	labels := []string{"query_id", q.ID}
	if operator != "" {
		labels = append(labels, "operator", operator)
	}
	pprof.Do(ctx, pprof.Labels(labels...), fn)
}

// String summarizes the query account (footers, slow-query log lines).
func (q *QueryStats) String() string {
	if q == nil {
		return "<no stats>"
	}
	spill := ""
	if n := q.SpillRuns(); n > 0 {
		spill = fmt.Sprintf(" spill=%s/%d runs", FormatBytes(q.SpillBytes()), n)
	}
	return fmt.Sprintf("%s: rows=%d tasks=%d/%d shuffle=%s mem=%s%s parse=%s plan=%s total=%s",
		q.ID, q.RowsReturned(), q.TasksCompleted(), q.TasksStarted(),
		FormatBytes(q.ShuffleBytes()), FormatBytes(q.MemPeak()), spill,
		time.Duration(q.ParseNs), time.Duration(q.PlanNs), time.Duration(q.TotalNs()))
}

// FormatBytes renders a byte count compactly (1.5KiB, 3.2MiB).
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ---------------------------------------------------------------------------
// Context plumbing: the query's collector rides its context.Context through
// the scheduler into partition tasks, mirroring memory.WithTracker.

type ctxKey struct{}

// WithQuery attaches q to ctx (nil q returns ctx unchanged).
func WithQuery(ctx context.Context, q *QueryStats) context.Context {
	if q == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, q)
}

// FromContext returns the context's query collector, or nil (disabled).
func FromContext(ctx context.Context) *QueryStats {
	if ctx == nil {
		return nil
	}
	q, _ := ctx.Value(ctxKey{}).(*QueryStats)
	return q
}

// ---------------------------------------------------------------------------
// Iterator wrappers. Counts are buffered locally and flushed to the shared
// atomics every flushEvery rows and at stream end; wall time is sampled one
// Next in sampleEvery and scaled, so per-row cost is a couple of integer ops.

const (
	flushEvery  = 1024
	sampleEvery = 16
)

// Rows wraps a row iterator so st observes the rows it delivers. Returns it
// unchanged when st is nil.
func Rows(st *OpStats, it sqltypes.RowIter) sqltypes.RowIter {
	if st == nil || it == nil {
		return it
	}
	return &rowObserver{st: st, in: it}
}

type rowObserver struct {
	st      *OpStats
	in      sqltypes.RowIter
	calls   int64
	pending int64 // rows counted since last flush
	wallNs  int64 // sampled wall since last flush
}

func (it *rowObserver) Next() (sqltypes.Row, error) {
	var row sqltypes.Row
	var err error
	if it.calls%sampleEvery == 0 {
		start := time.Now()
		row, err = it.in.Next()
		it.wallNs += int64(time.Since(start)) * sampleEvery
	} else {
		row, err = it.in.Next()
	}
	it.calls++
	if err != nil || row == nil {
		it.flush()
		return row, err
	}
	it.pending++
	if it.pending >= flushEvery {
		it.flush()
	}
	return row, nil
}

func (it *rowObserver) flush() {
	it.st.AddRowsOut(it.pending)
	it.st.AddWall(it.wallNs)
	it.pending, it.wallNs = 0, 0
}

// CountInto wraps a row iterator so st counts its rows as *input* rows —
// the filter's selectivity denominator. No timing. Returns it unchanged
// when st is nil.
func CountInto(st *OpStats, it sqltypes.RowIter) sqltypes.RowIter {
	if st == nil || it == nil {
		return it
	}
	return &rowInCounter{st: st, in: it}
}

type rowInCounter struct {
	st      *OpStats
	in      sqltypes.RowIter
	pending int64
}

func (it *rowInCounter) Next() (sqltypes.Row, error) {
	row, err := it.in.Next()
	if err != nil || row == nil {
		it.st.AddRowsIn(it.pending)
		it.pending = 0
		return row, err
	}
	if it.pending++; it.pending >= flushEvery {
		it.st.AddRowsIn(it.pending)
		it.pending = 0
	}
	return row, nil
}

// Batches wraps a batch iterator so st observes the batches it delivers
// (every Next is timed — the cost amortizes over the batch's rows). Returns
// it unchanged when st is nil.
func Batches(st *OpStats, it vector.BatchIter) vector.BatchIter {
	if st == nil || it == nil {
		return it
	}
	return &batchObserver{st: st, in: it}
}

type batchObserver struct {
	st *OpStats
	in vector.BatchIter
}

func (it *batchObserver) Next() (*vector.Batch, error) {
	start := time.Now()
	b, err := it.in.Next()
	it.st.AddWall(int64(time.Since(start)))
	if err != nil || b == nil {
		return b, err
	}
	it.st.AddBatches(1)
	it.st.AddRowsOut(int64(b.Len()))
	return b, nil
}
