package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

func TestOpStatsNilSafe(t *testing.T) {
	var s *OpStats
	s.AddRowsIn(1)
	s.AddRowsOut(1)
	s.AddBatches(1)
	s.AddWall(1)
	s.AddMem(1)
	s.AddBytes(1)
	if s.RowsOut() != 0 || s.Selectivity() != -1 {
		t.Fatal("nil OpStats must read as zero")
	}
	var q *QueryStats
	q.TaskStarted()
	q.Event("x", 0, 0)
	q.Finish()
	if q.Op("x") != nil || q.TasksStarted() != 0 {
		t.Fatal("nil QueryStats must be inert")
	}
	q.Do(context.Background(), "op", func(context.Context) {})
}

type sliceRows struct {
	rows []sqltypes.Row
	pos  int
}

func (it *sliceRows) Next() (sqltypes.Row, error) {
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, nil
}

func TestRowsWrapperCountsExactly(t *testing.T) {
	const n = flushEvery*2 + 37 // cross flush boundaries and leave a remainder
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i))}
	}
	st := &OpStats{Label: "test"}
	it := Rows(st, CountInto(st, &sliceRows{rows: rows}))
	for {
		r, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
	}
	if st.RowsOut() != n {
		t.Fatalf("rows out = %d, want %d", st.RowsOut(), n)
	}
	if st.RowsIn() != n {
		t.Fatalf("rows in = %d, want %d", st.RowsIn(), n)
	}
	if sel := st.Selectivity(); sel != 1 {
		t.Fatalf("selectivity = %v, want 1", sel)
	}
}

func TestRowsWrapperDisabledPassThrough(t *testing.T) {
	in := &sliceRows{}
	if got := Rows(nil, in); got != sqltypes.RowIter(in) {
		t.Fatal("nil stats must return the input iterator unchanged")
	}
	if got := CountInto(nil, in); got != sqltypes.RowIter(in) {
		t.Fatal("nil stats must return the input iterator unchanged")
	}
}

func TestBatchesWrapperCounts(t *testing.T) {
	schema := sqltypes.NewSchema(sqltypes.Field{Name: "v", Type: sqltypes.Int64})
	b := vector.NewBatch(schema)
	for i := 0; i < 10; i++ {
		if err := b.AppendRow(sqltypes.Row{sqltypes.NewInt64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := &OpStats{Label: "vec"}
	it := Batches(st, vector.NewSliceIter([]*vector.Batch{b}))
	for {
		got, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			break
		}
	}
	if st.Batches() != 1 || st.RowsOut() != 10 {
		t.Fatalf("batches=%d rows=%d, want 1/10", st.Batches(), st.RowsOut())
	}
	if Batches(nil, nil) != nil {
		t.Fatal("nil stats must pass through")
	}
}

func TestQueryStatsConcurrent(t *testing.T) {
	q := NewQueryStats("q1", "SELECT 1", NewTracer(16))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				q.TaskStarted()
				q.Event("task", p, time.Microsecond)
				q.AddShuffleBytes(10)
				q.TaskFinished()
			}
		}(i)
	}
	wg.Wait()
	if q.TasksStarted() != 800 || q.TasksCompleted() != 800 {
		t.Fatalf("tasks %d/%d, want 800/800", q.TasksStarted(), q.TasksCompleted())
	}
	if q.ShuffleBytes() != 8000 {
		t.Fatalf("shuffle bytes = %d, want 8000", q.ShuffleBytes())
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Query: "q1", Name: "e", Part: i})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Oldest-first: the last 4 of 10 records, parts 6..9.
	for i, ev := range evs {
		if ev.Part != 6+i {
			t.Fatalf("event %d has part %d, want %d", i, ev.Part, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if got := tr.EventsFor("q2"); len(got) != 0 {
		t.Fatalf("EventsFor(q2) = %d events, want 0", len(got))
	}
}

func TestRegistryWriteTo(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_started_total", "queries started")
	c.Add(3)
	r.Gauge("pool_used_bytes", "bytes in use", func() float64 { return 42 })
	h := r.Histogram("query_duration_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE queries_started_total counter",
		"queries_started_total 3",
		"# TYPE pool_used_bytes gauge",
		"pool_used_bytes 42",
		"# TYPE query_duration_seconds histogram",
		`query_duration_seconds_bucket{le="0.01"} 1`,
		`query_duration_seconds_bucket{le="1"} 2`,
		`query_duration_seconds_bucket{le="+Inf"} 3`,
		"query_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteTo output missing %q:\n%s", want, out)
		}
	}
	if v, ok := r.Value("queries_started_total"); !ok || v != 3 {
		t.Fatalf("Value = %v/%v, want 3/true", v, ok)
	}
	if v, ok := r.Value("pool_used_bytes"); !ok || v != 42 {
		t.Fatalf("gauge Value = %v/%v, want 42/true", v, ok)
	}
}

func TestContextPlumbing(t *testing.T) {
	q := NewQueryStats("q9", "", nil)
	ctx := WithQuery(context.Background(), q)
	if got := FromContext(ctx); got != q {
		t.Fatal("FromContext must return the attached QueryStats")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("bare context must yield nil")
	}
	if WithQuery(context.Background(), nil) != context.Background() {
		t.Fatal("nil stats must not wrap the context")
	}
}
