// Package catalog defines the table abstractions the planner sees: vanilla
// column tables (cached in columnar format, like Spark's in-memory cache)
// and indexed tables (the paper's Indexed DataFrame storage).
package catalog

import (
	"fmt"
	"sync"

	"indexeddf/internal/columnar"
	"indexeddf/internal/core"
	"indexeddf/internal/sqltypes"
)

// Table is a named data source with a schema and a cardinality estimate.
type Table interface {
	Name() string
	Schema() *sqltypes.Schema
	RowCount() int64
}

// ---------------------------------------------------------------------------
// ColumnTable — the vanilla baseline

// ColumnTable is a partitioned in-memory table. When cached, partitions are
// materialized as columnar batches (Spark's cached DataFrame format); when
// not cached, scans walk the row partitions.
//
// Appends invalidate the columnar cache — exactly the behaviour the paper
// calls out as vanilla Spark's weakness ("updates to the graph invalidate
// caching of Dataframes"): the next query pays a re-materialization.
type ColumnTable struct {
	name   string
	schema *sqltypes.Schema

	mu      sync.RWMutex
	parts   [][]sqltypes.Row
	cached  bool
	batches []*columnar.Batch // nil entries are invalid
	rows    int64
}

// NewColumnTable builds a table from pre-partitioned rows.
func NewColumnTable(name string, schema *sqltypes.Schema, parts [][]sqltypes.Row) *ColumnTable {
	t := &ColumnTable{name: name, schema: schema, parts: parts}
	for _, p := range parts {
		t.rows += int64(len(p))
	}
	return t
}

// Name implements Table.
func (t *ColumnTable) Name() string { return t.name }

// Schema implements Table.
func (t *ColumnTable) Schema() *sqltypes.Schema { return t.schema }

// RowCount implements Table.
func (t *ColumnTable) RowCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// NumPartitions returns the partition count.
func (t *ColumnTable) NumPartitions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.parts)
}

// SetCached toggles columnar caching. Enabling eagerly materializes all
// partitions (like calling .cache() then an action in Spark).
func (t *ColumnTable) SetCached(cached bool) error {
	t.mu.Lock()
	t.cached = cached
	if !cached {
		t.batches = nil
		t.mu.Unlock()
		return nil
	}
	t.batches = make([]*columnar.Batch, len(t.parts))
	t.mu.Unlock()
	for p := 0; p < t.NumPartitions(); p++ {
		if _, err := t.ColumnarPartition(p); err != nil {
			return err
		}
	}
	return nil
}

// IsCached reports whether the table is columnar-cached.
func (t *ColumnTable) IsCached() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cached
}

// RowPartition returns partition p's rows (shared slice; do not modify).
func (t *ColumnTable) RowPartition(p int) []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.parts[p]
}

// ColumnarPartition returns partition p as a columnar batch, materializing
// (or re-materializing after an append) if needed.
func (t *ColumnTable) ColumnarPartition(p int) (*columnar.Batch, error) {
	t.mu.RLock()
	if !t.cached {
		t.mu.RUnlock()
		return nil, fmt.Errorf("catalog: table %q is not cached", t.name)
	}
	if b := t.batches[p]; b != nil {
		t.mu.RUnlock()
		return b, nil
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if b := t.batches[p]; b != nil {
		return b, nil
	}
	b, err := columnar.FromRows(t.schema, t.parts[p])
	if err != nil {
		return nil, err
	}
	t.batches[p] = b
	return b, nil
}

// Append adds rows (round-robin across partitions) and invalidates the
// columnar cache, which will be rebuilt lazily on the next scan.
func (t *ColumnTable) Append(rows []sqltypes.Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.parts) == 0 {
		t.parts = make([][]sqltypes.Row, 1)
	}
	n := len(t.parts)
	for i, r := range rows {
		p := (int(t.rows) + i) % n
		t.parts[p] = append(t.parts[p], r)
	}
	t.rows += int64(len(rows))
	if t.cached {
		for i := range t.batches {
			t.batches[i] = nil // invalidate; next scan re-materializes
		}
	}
}

// MemoryUsage returns the bytes held by materialized columnar batches.
func (t *ColumnTable) MemoryUsage() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, b := range t.batches {
		if b != nil {
			n += b.MemoryUsage()
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// IndexedTable — the paper's contribution, wrapped for the catalog

// IndexedTable names a core.IndexedTable for the planner.
type IndexedTable struct {
	name string
	core *core.IndexedTable
}

// NewIndexedTable wraps a core table.
func NewIndexedTable(name string, t *core.IndexedTable) *IndexedTable {
	return &IndexedTable{name: name, core: t}
}

// Name implements Table.
func (t *IndexedTable) Name() string { return t.name }

// Schema implements Table.
func (t *IndexedTable) Schema() *sqltypes.Schema { return t.core.Schema() }

// RowCount implements Table.
func (t *IndexedTable) RowCount() int64 { return t.core.RowCount() }

// Core returns the underlying storage.
func (t *IndexedTable) Core() *core.IndexedTable { return t.core }

// KeyColumn returns the indexed column ordinal.
func (t *IndexedTable) KeyColumn() int { return t.core.KeyColumn() }
