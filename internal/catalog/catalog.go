// Package catalog defines the table abstractions the planner sees: vanilla
// column tables (cached in columnar format, like Spark's in-memory cache)
// and indexed tables (the paper's Indexed DataFrame storage).
package catalog

import (
	"fmt"
	"sync"

	"indexeddf/internal/columnar"
	"indexeddf/internal/core"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/stats"
)

// Table is a named data source with a schema and a cardinality estimate.
type Table interface {
	Name() string
	Schema() *sqltypes.Schema
	RowCount() int64
}

// ---------------------------------------------------------------------------
// ColumnTable — the vanilla baseline

// ColumnTable is a partitioned in-memory table. When cached, partitions are
// materialized as columnar batches (Spark's cached DataFrame format); when
// not cached, scans walk the row partitions.
//
// Appends invalidate the columnar cache — exactly the behaviour the paper
// calls out as vanilla Spark's weakness ("updates to the graph invalidate
// caching of Dataframes"): the next query pays a re-materialization.
type ColumnTable struct {
	name   string
	schema *sqltypes.Schema

	mu      sync.RWMutex
	parts   [][]sqltypes.Row
	cached  bool
	batches []*columnar.Batch // nil entries are invalid
	rows    int64
	stats   *stats.Table // nil when statistics collection is off
}

// NewColumnTable builds a table from pre-partitioned rows.
func NewColumnTable(name string, schema *sqltypes.Schema, parts [][]sqltypes.Row) *ColumnTable {
	t := &ColumnTable{name: name, schema: schema, parts: parts}
	for _, p := range parts {
		t.rows += int64(len(p))
	}
	return t
}

// Name implements Table.
func (t *ColumnTable) Name() string { return t.name }

// Schema implements Table.
func (t *ColumnTable) Schema() *sqltypes.Schema { return t.schema }

// RowCount implements Table.
func (t *ColumnTable) RowCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// NumPartitions returns the partition count.
func (t *ColumnTable) NumPartitions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.parts)
}

// SetCached toggles columnar caching. Enabling eagerly materializes all
// partitions (like calling .cache() then an action in Spark).
func (t *ColumnTable) SetCached(cached bool) error {
	t.mu.Lock()
	t.cached = cached
	if !cached {
		t.batches = nil
		t.mu.Unlock()
		return nil
	}
	t.batches = make([]*columnar.Batch, len(t.parts))
	t.mu.Unlock()
	for p := 0; p < t.NumPartitions(); p++ {
		if _, err := t.ColumnarPartition(p); err != nil {
			return err
		}
	}
	return nil
}

// IsCached reports whether the table is columnar-cached.
func (t *ColumnTable) IsCached() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cached
}

// RowPartition returns partition p's rows (shared slice; do not modify).
func (t *ColumnTable) RowPartition(p int) []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.parts[p]
}

// ColumnarPartition returns partition p as a columnar batch, materializing
// (or re-materializing after an append) if needed.
func (t *ColumnTable) ColumnarPartition(p int) (*columnar.Batch, error) {
	t.mu.RLock()
	if !t.cached {
		t.mu.RUnlock()
		return nil, fmt.Errorf("catalog: table %q is not cached", t.name)
	}
	if b := t.batches[p]; b != nil {
		t.mu.RUnlock()
		return b, nil
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if b := t.batches[p]; b != nil {
		return b, nil
	}
	b, err := columnar.FromRows(t.schema, t.parts[p])
	if err != nil {
		return nil, err
	}
	t.batches[p] = b
	return b, nil
}

// Append adds rows (round-robin across partitions) and invalidates the
// columnar cache, which will be rebuilt lazily on the next scan.
func (t *ColumnTable) Append(rows []sqltypes.Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.parts) == 0 {
		t.parts = make([][]sqltypes.Row, 1)
	}
	n := len(t.parts)
	for i, r := range rows {
		p := (int(t.rows) + i) % n
		t.parts[p] = append(t.parts[p], r)
	}
	t.rows += int64(len(rows))
	if t.cached {
		for i := range t.batches {
			t.batches[i] = nil // invalidate; next scan re-materializes
		}
	}
	t.stats.Observe(rows)
}

// EnableStats starts incremental statistics collection, seeding the
// accumulator with the table's current contents.
func (t *ColumnTable) EnableStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats != nil {
		return
	}
	t.stats = stats.NewTable(t.schema.Len())
	for _, p := range t.parts {
		t.stats.Observe(p)
	}
}

// ColumnStats implements stats.Provider; nil when collection is off.
func (t *ColumnTable) ColumnStats() []*stats.ColumnStats {
	t.mu.RLock()
	st := t.stats
	t.mu.RUnlock()
	return st.Snapshot()
}

// RebuildStats recomputes statistics from a full scan of the current
// partitions, enabling collection if it was off (ANALYZE TABLE).
func (t *ColumnTable) RebuildStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats == nil {
		t.stats = stats.NewTable(t.schema.Len())
	}
	var all []sqltypes.Row
	for _, p := range t.parts {
		all = append(all, p...)
	}
	t.stats.Rebuild(all)
}

// MemoryUsage returns the bytes held by materialized columnar batches.
func (t *ColumnTable) MemoryUsage() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, b := range t.batches {
		if b != nil {
			n += b.MemoryUsage()
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// IndexedTable — the paper's contribution, wrapped for the catalog

// IndexedTable names a core.IndexedTable for the planner.
type IndexedTable struct {
	name string
	core *core.IndexedTable

	statsMu sync.Mutex
	stats   *stats.Table // nil when statistics collection is off
}

// NewIndexedTable wraps a core table.
func NewIndexedTable(name string, t *core.IndexedTable) *IndexedTable {
	return &IndexedTable{name: name, core: t}
}

// Name implements Table.
func (t *IndexedTable) Name() string { return t.name }

// Schema implements Table.
func (t *IndexedTable) Schema() *sqltypes.Schema { return t.core.Schema() }

// RowCount implements Table.
func (t *IndexedTable) RowCount() int64 { return t.core.RowCount() }

// Core returns the underlying storage.
func (t *IndexedTable) Core() *core.IndexedTable { return t.core }

// KeyColumn returns the indexed column ordinal.
func (t *IndexedTable) KeyColumn() int { return t.core.KeyColumn() }

// EnableStats starts incremental statistics collection by installing
// append/delete hooks on the core table, seeding the accumulator from
// the current contents (usually empty — sessions enable stats at
// CREATE time, before the first append).
func (t *IndexedTable) EnableStats() {
	st, created := t.ensureStats()
	if created && t.core.RowCount() > 0 {
		// Seed errors leave the accumulator invalidated, which reads as
		// "no statistics" — the planner falls back to defaults.
		_ = t.rebuildStats(st)
	}
}

// ensureStats installs the accumulator and core hooks once.
func (t *IndexedTable) ensureStats() (st *stats.Table, created bool) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.stats == nil {
		t.stats = stats.NewTable(t.core.Schema().Len())
		t.core.SetStatsHooks(&core.StatsHooks{
			OnAppend:     t.stats.Observe,
			OnInvalidate: t.stats.Invalidate,
		})
		created = true
	}
	return t.stats, created
}

// ColumnStats implements stats.Provider; nil when collection is off or
// the accumulator was invalidated by a delete.
func (t *IndexedTable) ColumnStats() []*stats.ColumnStats {
	t.statsMu.Lock()
	st := t.stats
	t.statsMu.Unlock()
	return st.Snapshot()
}

// RebuildStats recomputes statistics from a snapshot scan of the table,
// enabling collection if it was off (ANALYZE TABLE). Appends racing the
// scan may be double counted; run ANALYZE at a write quiescent point for
// exact figures.
func (t *IndexedTable) RebuildStats() error {
	st, _ := t.ensureStats()
	return t.rebuildStats(st)
}

// rebuildStats resets st and folds in a full snapshot scan, observing
// rows in chunks so a large table never materializes at once.
func (t *IndexedTable) rebuildStats(st *stats.Table) error {
	st.Rebuild(nil)
	snap := t.core.Snapshot()
	const chunk = 1024
	buf := make([]sqltypes.Row, 0, chunk)
	for p := 0; p < snap.NumPartitions(); p++ {
		err := snap.ScanPartition(p, func(row sqltypes.Row) bool {
			// ScanPartition reuses its decode buffer; copy before keeping.
			buf = append(buf, append(sqltypes.Row(nil), row...))
			if len(buf) == chunk {
				st.Observe(buf)
				buf = buf[:0]
			}
			return true
		})
		if err != nil {
			st.Invalidate()
			return err
		}
	}
	st.Observe(buf)
	return nil
}
