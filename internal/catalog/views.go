package catalog

import (
	"fmt"
	"sort"
	"sync"

	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/sqltypes"
)

// MaterializedView is the catalog's handle on an incrementally maintained
// materialized aggregate (implemented by internal/view). It is a Table —
// views are queryable by name — plus the metadata the planner's
// view-matching rewrite and the maintenance machinery need. The concrete
// implementation lives outside the catalog so this package stays free of
// maintenance logic.
type MaterializedView interface {
	Table

	// Base returns the indexed table the view aggregates over.
	Base() *core.IndexedTable
	// BaseName returns the base table's catalog name.
	BaseName() string
	// Definition returns the view's defining SELECT text.
	Definition() string
	// RefreshedVersion returns the base-table version the state reflects.
	RefreshedVersion() int64
	// ChangeCursors returns the per-partition change-log sequence numbers
	// the view has folded up to (log pruning uses the minimum across
	// views).
	ChangeCursors() []int64

	// Refresh folds the base table's delta since the last refresh into the
	// view state (or fully recomputes when the change log has a gap).
	Refresh() error
	// Recompute rebuilds the state from a fresh base snapshot.
	Recompute() error
	// RefreshRows refreshes and returns the state rows in the internal
	// layout (group columns then aggregate columns).
	RefreshRows() ([]sqltypes.Row, error)

	// StateSchema describes the internal row layout.
	StateSchema() *sqltypes.Schema
	// OutCols maps each column of Schema() (the view's visible schema, in
	// SELECT-list order) to its ordinal in the internal layout.
	OutCols() []int
	// MatchesAggregate reports whether an aggregation over base with the
	// given bound filter, group expressions and aggregates can be answered
	// from this view. On success cols holds, for the rewrite, the internal
	// ordinal of every output column (groups first, then each requested
	// aggregate).
	MatchesAggregate(base *core.IndexedTable, filter expr.Expr, groups []expr.Expr, aggs []expr.Agg) (cols []int, ok bool)
}

// ViewRegistry tracks the session's materialized views. Safe for
// concurrent use.
type ViewRegistry struct {
	mu    sync.RWMutex
	views map[string]MaterializedView
}

// NewViewRegistry creates an empty registry.
func NewViewRegistry() *ViewRegistry {
	return &ViewRegistry{views: map[string]MaterializedView{}}
}

// Register adds a view; it fails if the name is taken.
func (r *ViewRegistry) Register(v MaterializedView) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.views[v.Name()]; exists {
		return fmt.Errorf("catalog: materialized view %q already exists", v.Name())
	}
	r.views[v.Name()] = v
	return nil
}

// Drop removes a view by name, reporting whether it existed.
func (r *ViewRegistry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.views[name]
	delete(r.views, name)
	return ok
}

// Get looks up a view by name.
func (r *ViewRegistry) Get(name string) (MaterializedView, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.views[name]
	return v, ok
}

// List returns all views sorted by name (deterministic match order).
func (r *ViewRegistry) List() []MaterializedView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MaterializedView, 0, len(r.views))
	for _, v := range r.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ForBase returns the views maintained over base, sorted by name.
func (r *ViewRegistry) ForBase(base *core.IndexedTable) []MaterializedView {
	var out []MaterializedView
	for _, v := range r.List() {
		if v.Base() == base {
			out = append(out, v)
		}
	}
	return out
}

// PruneBaseLog discards base's change records that every registered view
// has already folded, bounding the log's memory. Called after refreshes.
func (r *ViewRegistry) PruneBaseLog(base *core.IndexedTable) {
	views := r.ForBase(base)
	if len(views) == 0 {
		return
	}
	n := base.NumPartitions()
	min := make([]int64, n)
	for i := range min {
		min[i] = -1
	}
	for _, v := range views {
		cursors := v.ChangeCursors()
		if len(cursors) != n {
			return // view mid-rebuild; skip this round
		}
		for p, c := range cursors {
			if min[p] < 0 || c < min[p] {
				min[p] = c
			}
		}
	}
	for p, seq := range min {
		if seq > 0 {
			base.PruneChanges(p, seq)
		}
	}
}
