package catalog

import (
	"testing"

	"indexeddf/internal/core"
	"indexeddf/internal/sqltypes"
)

func schema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "k", Type: sqltypes.Int64},
		sqltypes.Field{Name: "v", Type: sqltypes.String},
	)
}

func rows(n int) []sqltypes.Row {
	out := make([]sqltypes.Row, n)
	for i := range out {
		out[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), sqltypes.NewString("x")}
	}
	return out
}

func TestColumnTableBasics(t *testing.T) {
	parts := [][]sqltypes.Row{rows(3), rows(2)}
	ct := NewColumnTable("t", schema(), parts)
	if ct.Name() != "t" || ct.RowCount() != 5 || ct.NumPartitions() != 2 {
		t.Fatalf("basics: %s %d %d", ct.Name(), ct.RowCount(), ct.NumPartitions())
	}
	if ct.IsCached() {
		t.Fatal("fresh table claims cached")
	}
	if _, err := ct.ColumnarPartition(0); err == nil {
		t.Fatal("ColumnarPartition on uncached table should fail")
	}
	if got := ct.RowPartition(1); len(got) != 2 {
		t.Fatalf("RowPartition = %d rows", len(got))
	}
}

func TestColumnTableCacheLifecycle(t *testing.T) {
	ct := NewColumnTable("t", schema(), [][]sqltypes.Row{rows(4)})
	if err := ct.SetCached(true); err != nil {
		t.Fatal(err)
	}
	if !ct.IsCached() || ct.MemoryUsage() <= 0 {
		t.Fatal("cache not materialized")
	}
	b, err := ct.ColumnarPartition(0)
	if err != nil || b.NumRows() != 4 {
		t.Fatalf("ColumnarPartition: %v %v", b, err)
	}
	// Append invalidates; next access rebuilds with the new rows.
	ct.Append(rows(2))
	if ct.RowCount() != 6 {
		t.Fatalf("RowCount after append = %d", ct.RowCount())
	}
	b2, err := ct.ColumnarPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if b2.NumRows() != 6 { // single partition: all appends land here
		t.Fatalf("rebuilt partition rows = %d", b2.NumRows())
	}
	if err := ct.SetCached(false); err != nil {
		t.Fatal(err)
	}
	if ct.IsCached() || ct.MemoryUsage() != 0 {
		t.Fatal("uncache did not release")
	}
}

func TestColumnTableAppendRoundRobin(t *testing.T) {
	ct := NewColumnTable("t", schema(), [][]sqltypes.Row{nil, nil, nil})
	ct.Append(rows(7))
	total := 0
	for p := 0; p < 3; p++ {
		n := len(ct.RowPartition(p))
		if n == 0 {
			t.Fatalf("partition %d empty after round-robin append", p)
		}
		total += n
	}
	if total != 7 {
		t.Fatalf("total = %d", total)
	}
}

func TestIndexedTableWrapper(t *testing.T) {
	ctab, err := core.NewIndexedTable(schema(), 0, core.Options{NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctab.Append(rows(10)); err != nil {
		t.Fatal(err)
	}
	it := NewIndexedTable("idx", ctab)
	if it.Name() != "idx" || it.RowCount() != 10 || it.KeyColumn() != 0 {
		t.Fatalf("wrapper: %s %d %d", it.Name(), it.RowCount(), it.KeyColumn())
	}
	if it.Core() != ctab {
		t.Fatal("Core() identity lost")
	}
	if !it.Schema().Equal(schema()) {
		t.Fatal("schema mismatch")
	}
	var _ Table = it
	var _ Table = NewColumnTable("x", schema(), nil)
}
