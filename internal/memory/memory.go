// Package memory implements hierarchical memory accounting for query
// execution: one engine-level Pool bounds what every in-flight query may
// hold in aggregate, and each query charges its operator state (aggregate
// slabs, sort run buffers, shuffle outputs, cursor slot buffers) against a
// per-query Tracker drawn from the pool. An operator that would push its
// query over either budget fails fast with a structured ErrMemoryExceeded
// naming the operator and the query — the query errors cleanly while
// concurrent under-budget queries on the same engine proceed untouched.
//
// Accounting is an estimate, deliberately conservative: operators charge
// the bytes they buffer (batches, row slices, hash-table slabs) and the
// tracker returns everything to the pool when the query finishes, so a
// long-lived session's pool usage returns to near zero between queries.
// Trackers draw pool bytes in quanta to keep the hot Reserve path off the
// shared atomics.
package memory

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrMemoryExceeded is the sentinel every budget failure matches with
// errors.Is; the concrete error is a *LimitError naming the operator,
// query and scope.
var ErrMemoryExceeded = errors.New("memory budget exceeded")

// LimitError is a structured memory-budget failure.
type LimitError struct {
	// Query names the query charged (the session's q<N> id).
	Query string
	// Operator names the operator whose reservation failed ("VecHashAgg",
	// "shuffle write", "admission", ...).
	Operator string
	// Scope is "query" when the per-query limit tripped, "engine" when the
	// shared pool was exhausted.
	Scope string
	// Requested/Used/Limit describe the failed reservation in bytes.
	Requested, Used, Limit int64
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("memory: %s limit exceeded: query %s operator %s requested %d bytes (used %d of %d)",
		e.Scope, e.Query, e.Operator, e.Requested, e.Used, e.Limit)
}

// Is matches ErrMemoryExceeded.
func (e *LimitError) Is(target error) bool { return target == ErrMemoryExceeded }

// quantum is the granularity trackers draw from the pool: coarse enough
// that per-batch reservations rarely touch the shared pool atomics, fine
// enough that a 4-task query cannot strand much budget.
const quantum = 1 << 20 // 1 MiB

// Pool is the engine-level budget shared by every query. A zero limit
// means unlimited (accounting still runs, nothing ever fails).
type Pool struct {
	limit   int64
	used    atomic.Int64
	active  atomic.Int64 // live trackers (admission/observability)
	queryID atomic.Int64
}

// NewPool builds a pool bounded at limit bytes (<=0 = unlimited).
func NewPool(limit int64) *Pool {
	if limit < 0 {
		limit = 0
	}
	return &Pool{limit: limit}
}

// Limit returns the pool's byte limit (0 = unlimited).
func (p *Pool) Limit() int64 {
	if p == nil {
		return 0
	}
	return p.limit
}

// Used returns the bytes currently drawn from the pool.
func (p *Pool) Used() int64 {
	if p == nil {
		return 0
	}
	return p.used.Load()
}

// Active returns the number of live trackers.
func (p *Pool) Active() int64 {
	if p == nil {
		return 0
	}
	return p.active.Load()
}

// reserve draws n bytes from the pool, failing with a *LimitError (engine
// scope) when the limit would be exceeded.
func (p *Pool) reserve(query, op string, n int64) error {
	for {
		cur := p.used.Load()
		if p.limit > 0 && cur+n > p.limit {
			return &LimitError{Query: query, Operator: op, Scope: "engine",
				Requested: n, Used: cur, Limit: p.limit}
		}
		if p.used.CompareAndSwap(cur, cur+n) {
			return nil
		}
	}
}

// release returns n bytes to the pool.
func (p *Pool) release(n int64) {
	if n > 0 {
		p.used.Add(-n)
	}
}

// ReserveBytes draws n bytes directly from the pool under the given
// owner/operator labels — for long-lived engine state (the plan cache)
// that belongs to no single query. Fails with an engine-scope *LimitError
// when the pool is exhausted.
func (p *Pool) ReserveBytes(owner, op string, n int64) error {
	if p == nil || n <= 0 {
		return nil
	}
	return p.reserve(owner, op, n)
}

// ReleaseBytes returns bytes taken with ReserveBytes.
func (p *Pool) ReleaseBytes(n int64) {
	if p == nil {
		return
	}
	p.release(n)
}

// Admit is the engine's admission check: a new query is admitted only when
// the pool can still hand out one tracker quantum. An engine saturated by
// running queries rejects new work fast — with a structured error the
// caller can surface — instead of letting it start and OOM everything.
func (p *Pool) Admit(query string) error {
	if p == nil || p.limit <= 0 {
		return nil
	}
	if used := p.used.Load(); used+quantum > p.limit {
		return &LimitError{Query: query, Operator: "admission", Scope: "engine",
			Requested: quantum, Used: used, Limit: p.limit}
	}
	return nil
}

// NextQueryID hands out a session-unique query label ("q1", "q2", ...).
func (p *Pool) NextQueryID() string {
	if p == nil {
		return "q0"
	}
	return fmt.Sprintf("q%d", p.queryID.Add(1))
}

// NewTracker starts per-query accounting against the pool. limit bounds
// the single query (<=0 = only the pool bounds it). A nil pool returns a
// nil tracker, on which every method is a no-op — callers never branch.
func (p *Pool) NewTracker(query string, limit int64) *Tracker {
	if p == nil {
		return nil
	}
	p.active.Add(1)
	return &Tracker{pool: p, query: query, limit: limit}
}

// Tracker is one query's memory account. Safe for concurrent use by the
// query's partition tasks. All methods are nil-receiver safe (no-ops), so
// execution paths without accounting run unchanged.
type Tracker struct {
	pool  *Pool
	query string
	limit int64

	mu      sync.Mutex
	used    int64 // bytes charged by operators
	granted int64 // bytes currently drawn from the pool (quantized >= used)
	peak    int64
	closed  bool
	closers []func()    // resource cleanups (spill run files) run by Close
	valve   func() bool // pressure valve tried before a Reserve fails
}

// SetValve registers f as the tracker's pressure valve: when a Reserve
// would otherwise fail, f is invoked — outside the tracker's lock — to
// free charged memory (the spill fabric evicts one of this query's sealed
// resident runs to disk), and the reservation retries. f returns false
// when nothing more can be freed, which lets the original error surface.
func (t *Tracker) SetValve(f func() bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.valve = f
	t.mu.Unlock()
}

// Query returns the tracker's query label.
func (t *Tracker) Query() string {
	if t == nil {
		return ""
	}
	return t.query
}

// Reserve charges n bytes to the query under the given operator name. It
// fails with *LimitError when the query's own limit or the engine pool
// would be exceeded; on failure nothing is charged. A registered pressure
// valve is tried (and the reservation retried) before failure surfaces,
// so any operator's charge can push the query's cold state out of core.
func (t *Tracker) Reserve(op string, n int64) error {
	if t == nil || n <= 0 {
		return nil
	}
	for {
		err, valve := t.tryReserve(op, n)
		if err == nil || valve == nil {
			return err
		}
		// Each successful valve call freed real bytes (one run evicted),
		// so this loop terminates: either the reservation fits or the
		// valve runs out of victims.
		if !valve() {
			return err
		}
	}
}

// tryReserve is one locked reservation attempt; on failure it returns the
// tracker's valve so Reserve can try freeing memory outside the lock.
func (t *Tracker) tryReserve(op string, n int64) (error, func() bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, nil // query already tore down; its tasks are unwinding
	}
	if t.limit > 0 && t.used+n > t.limit {
		return &LimitError{Query: t.query, Operator: op, Scope: "query",
			Requested: n, Used: t.used, Limit: t.limit}, t.valve
	}
	if t.used+n > t.granted {
		// Draw from the pool in quanta so hot per-batch reservations stay
		// on the tracker's own lock.
		need := t.used + n - t.granted
		if need < quantum {
			need = quantum
		}
		if err := t.pool.reserve(t.query, op, need); err != nil {
			return err, t.valve
		}
		t.granted += need
	}
	t.used += n
	if t.used > t.peak {
		t.peak = t.used
	}
	return nil, nil
}

// Grow is Reserve under its incremental name (operators growing an
// existing buffer).
func (t *Tracker) Grow(op string, n int64) error { return t.Reserve(op, n) }

// Release returns n bytes to the query's account. Granted pool bytes are
// retained until Close (queries are short-lived; returning slack per batch
// would put every release on the pool atomics).
func (t *Tracker) Release(n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.used -= n
	if t.used < 0 {
		t.used = 0
	}
}

// Used returns the bytes currently charged to the query.
func (t *Tracker) Used() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// Peak returns the high-water mark of the query's charges.
func (t *Tracker) Peak() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak
}

// AddCloser registers f to run when the query's accounting closes — the
// teardown backstop for resources whose lifetime is the query's (spill run
// files, open run readers). If the tracker is already closed, f runs
// immediately. Nil-receiver safe: without a tracker there is no budget, so
// budget-driven resources are never created.
func (t *Tracker) AddCloser(f func()) {
	if t == nil || f == nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		f()
		return
	}
	t.closers = append(t.closers, f)
	t.mu.Unlock()
}

// Close ends the query's accounting, running registered closers and
// returning everything to the pool. Idempotent; late Release/Reserve calls
// from unwinding tasks are no-ops.
func (t *Tracker) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	granted := t.granted
	closers := t.closers
	t.used, t.granted, t.closers = 0, 0, nil
	t.mu.Unlock()
	for _, f := range closers {
		f()
	}
	t.pool.release(granted)
	t.pool.active.Add(-1)
}

// ---------------------------------------------------------------------------
// Context plumbing: the tracker rides the query's context.Context through
// the scheduler into partition tasks.

type ctxKey struct{}

// WithTracker attaches t to ctx (nil t returns ctx unchanged).
func WithTracker(ctx context.Context, t *Tracker) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's tracker, or nil (a no-op tracker).
func FromContext(ctx context.Context) *Tracker {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Tracker)
	return t
}
