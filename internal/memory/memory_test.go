package memory

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestTrackerQueryLimit(t *testing.T) {
	p := NewPool(0)
	tr := p.NewTracker("q1", 1000)
	if err := tr.Reserve("op", 600); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	err := tr.Reserve("VecHashAgg", 500)
	if err == nil {
		t.Fatal("expected query-limit failure")
	}
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("error %v does not match ErrMemoryExceeded", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error %T is not *LimitError", err)
	}
	if le.Operator != "VecHashAgg" || le.Query != "q1" || le.Scope != "query" {
		t.Fatalf("unexpected fields: %+v", le)
	}
	if !strings.Contains(err.Error(), "VecHashAgg") || !strings.Contains(err.Error(), "q1") {
		t.Fatalf("error text should name operator and query: %v", err)
	}
	// A failed reservation charges nothing.
	if got := tr.Used(); got != 600 {
		t.Fatalf("used = %d, want 600", got)
	}
	// Release opens room again.
	tr.Release(400)
	if err := tr.Reserve("op", 500); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	tr.Close()
}

func TestPoolLimitAcrossTrackers(t *testing.T) {
	p := NewPool(3 * quantum)
	a := p.NewTracker("q1", 0)
	b := p.NewTracker("q2", 0)
	if err := a.Reserve("op", 2*quantum); err != nil {
		t.Fatalf("a: %v", err)
	}
	// a holds 2 quanta; b can draw the third...
	if err := b.Reserve("op", quantum/2); err != nil {
		t.Fatalf("b: %v", err)
	}
	// ...but not a fourth.
	err := b.Reserve("big", 2*quantum)
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("expected engine-scope failure, got %v", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Scope != "engine" {
		t.Fatalf("want engine scope, got %v", err)
	}
	// Closing a returns its grant; b proceeds.
	a.Close()
	if err := b.Reserve("big", 2*quantum); err != nil {
		t.Fatalf("b after a.Close: %v", err)
	}
	b.Close()
	if got := p.Used(); got != 0 {
		t.Fatalf("pool used after closes = %d, want 0", got)
	}
	if got := p.Active(); got != 0 {
		t.Fatalf("active = %d, want 0", got)
	}
}

func TestAdmission(t *testing.T) {
	p := NewPool(2 * quantum)
	if err := p.Admit("q1"); err != nil {
		t.Fatalf("empty pool should admit: %v", err)
	}
	tr := p.NewTracker("q1", 0)
	if err := tr.Reserve("op", 2*quantum); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	err := p.Admit("q2")
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("saturated pool should reject admission, got %v", err)
	}
	tr.Close()
	if err := p.Admit("q3"); err != nil {
		t.Fatalf("drained pool should admit again: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var p *Pool
	var tr *Tracker
	if err := p.Admit("q"); err != nil {
		t.Fatal(err)
	}
	if tr = p.NewTracker("q", 100); tr != nil {
		t.Fatal("nil pool should return nil tracker")
	}
	if err := tr.Reserve("op", 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := tr.Grow("op", 1); err != nil {
		t.Fatal(err)
	}
	tr.Release(5)
	tr.Close()
	if tr.Used() != 0 || tr.Peak() != 0 || p.Used() != 0 || p.Limit() != 0 {
		t.Fatal("nil accessors should be zero")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare ctx = %v", got)
	}
	if ctx := WithTracker(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("WithTracker(nil) should be transparent")
	}
}

func TestContextRoundTrip(t *testing.T) {
	p := NewPool(0)
	tr := p.NewTracker("q9", 0)
	ctx := WithTracker(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatal("tracker did not round-trip through context")
	}
	tr.Close()
}

func TestConcurrentReserveRelease(t *testing.T) {
	p := NewPool(0)
	tr := p.NewTracker("q1", 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := tr.Reserve("op", 128); err != nil {
					t.Error(err)
					return
				}
				tr.Release(128)
			}
		}()
	}
	wg.Wait()
	if got := tr.Used(); got != 0 {
		t.Fatalf("used = %d, want 0", got)
	}
	tr.Close()
	if got := p.Used(); got != 0 {
		t.Fatalf("pool used = %d, want 0", got)
	}
}

func TestLateCallsAfterClose(t *testing.T) {
	p := NewPool(quantum)
	tr := p.NewTracker("q1", 0)
	if err := tr.Reserve("op", 100); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	// Unwinding tasks may still touch the tracker; nothing may leak.
	if err := tr.Reserve("op", 100); err != nil {
		t.Fatal(err)
	}
	tr.Release(100)
	tr.Close()
	if got := p.Used(); got != 0 {
		t.Fatalf("pool used = %d, want 0", got)
	}
}
