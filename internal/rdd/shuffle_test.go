package rdd

import (
	"sort"
	"sync"
	"testing"

	"indexeddf/internal/sqltypes"
	"indexeddf/internal/testutil"
	"indexeddf/internal/vector"
)

func kvSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "k", Type: sqltypes.Int64, Nullable: true},
		sqltypes.Field{Name: "v", Type: sqltypes.Int64},
	)
}

// TestBatchShuffleRoundTrip: the columnar exchange delivers exactly the
// rows the row exchange delivers, co-partitioned identically (same hash),
// including NULL keys.
func TestBatchShuffleRoundTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := NewContext(WithParallelism(4))
	rows := make([]sqltypes.Row, 10_000)
	for i := range rows {
		k := sqltypes.NewInt64(int64(i % 257))
		if i%41 == 0 {
			k = sqltypes.Null
		}
		rows[i] = sqltypes.Row{k, sqltypes.NewInt64(int64(i))}
	}
	const nReduce = 5
	parent := c.Parallelize(rows, 8)
	batch := c.NewBatchShuffledRDD(parent, kvSchema(), []int{0}, nReduce)
	bParts, err := c.RunJob(batch)
	if err != nil {
		t.Fatal(err)
	}
	row := c.NewShuffledRDD(c.Parallelize(rows, 8),
		&HashPartitioner{N: nReduce, Key: func(r sqltypes.Row) sqltypes.Value { return r[0] }})
	rParts, err := c.RunJob(row)
	if err != nil {
		t.Fatal(err)
	}
	if len(bParts) != nReduce || len(rParts) != nReduce {
		t.Fatalf("partition counts %d / %d, want %d", len(bParts), len(rParts), nReduce)
	}
	total := 0
	for p := 0; p < nReduce; p++ {
		got := make([]string, len(bParts[p]))
		for i, r := range bParts[p] {
			got[i] = r.String()
		}
		want := make([]string, len(rParts[p]))
		for i, r := range rParts[p] {
			want[i] = r.String()
		}
		sort.Strings(got)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("reduce partition %d: batch %d rows, row %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("reduce partition %d row %d: batch %s, row %s", p, i, got[i], want[i])
			}
		}
		total += len(got)
	}
	if total != len(rows) {
		t.Fatalf("batch exchange delivered %d of %d rows", total, len(rows))
	}
}

// TestBatchShuffleSinglePartitionOrder: the gather exchange (no keys)
// preserves map-task order, matching the row gather used by sorts/limits.
func TestBatchShuffleSinglePartitionOrder(t *testing.T) {
	c := NewContext(WithParallelism(2))
	rows := make([]sqltypes.Row, 500)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), sqltypes.NewInt64(int64(i))}
	}
	parent := c.Parallelize(rows, 4)
	gathered, err := c.Collect(c.NewBatchShuffledRDD(parent, kvSchema(), nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Collect(c.NewShuffledRDD(c.Parallelize(rows, 4), SinglePartitioner{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(gathered) != len(want) {
		t.Fatalf("gather returned %d rows, want %d", len(gathered), len(want))
	}
	for i := range want {
		if gathered[i].String() != want[i].String() {
			t.Fatalf("gather row %d: %s, want %s", i, gathered[i], want[i])
		}
	}
}

// TestConcurrentShuffleWriteAndFetch exercises the shuffle service's
// locking under -race: map tasks write batch buckets while reduce-side
// readers stream them out concurrently. Readers stop at the first
// unwritten map part, so they retry until a full drain observes every
// row; writers for other shuffles run at the same time to stress the
// manager-level map too.
func TestConcurrentShuffleWriteAndFetch(t *testing.T) {
	const (
		nMaps   = 32
		nReduce = 4
		perMap  = 100
	)
	m := NewShuffleManager()
	c := NewContext() // for TaskContext plumbing only
	mkBuckets := func(mapPart int) [][]*vector.Batch {
		sc := vector.NewScatter(kvSchema(), []int{0}, nReduce)
		b := vector.NewBatch(kvSchema())
		for i := 0; i < perMap; i++ {
			id := int64(mapPart*perMap + i)
			if err := b.AppendRow(sqltypes.Row{sqltypes.NewInt64(id % 13), sqltypes.NewInt64(id)}); err != nil {
				t.Error(err)
			}
		}
		sc.Add(b)
		return sc.Seal()
	}
	var wg sync.WaitGroup
	for shuffleID := 1; shuffleID <= 2; shuffleID++ {
		shuffleID := shuffleID
		wg.Add(1)
		go func() {
			defer wg.Done()
			for mp := 0; mp < nMaps; mp++ {
				m.WriteBatches(shuffleID, mp, mkBuckets(mp))
			}
		}()
		for r := 0; r < nReduce; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				tc := &TaskContext{Ctx: c, Partition: r}
				for {
					reader, err := m.OpenBatchReader(shuffleID, r, tc)
					if err != nil {
						continue // stage map not created yet
					}
					n := 0
					for {
						b, err := reader.Next()
						if err != nil {
							t.Error(err)
							return
						}
						if b == nil {
							break
						}
						n += b.Len()
					}
					// A full drain sees every row hashed to this reducer
					// once all maps are written; partial drains (writer
					// still behind) retry.
					if full := fullReducerCount(r, nMaps, perMap, nReduce); n == full {
						return
					}
				}
			}()
		}
	}
	wg.Wait()
}

// fullReducerCount counts the rows the test writer hashes to reducer r.
func fullReducerCount(r, nMaps, perMap, nReduce int) int {
	n := 0
	for id := 0; id < nMaps*perMap; id++ {
		if int(sqltypes.NewInt64(int64(id%13)).Hash64()%uint64(nReduce)) == r {
			n++
		}
	}
	return n
}

// TestBatchShuffleFetchWithoutStageFails mirrors the row-path guard.
func TestBatchShuffleFetchWithoutStageFails(t *testing.T) {
	m := NewShuffleManager()
	if _, err := m.OpenBatchReader(99, 0, nil); err == nil {
		t.Fatal("expected an error for a shuffle with no map outputs")
	}
	if _, err := m.OpenRowReader(99, 0, nil); err == nil {
		t.Fatal("expected an error for a shuffle with no map outputs")
	}
}
