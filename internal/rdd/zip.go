package rdd

import (
	"fmt"

	"indexeddf/internal/sqltypes"
)

// ZipRDD computes each partition from the co-partitioned partitions of two
// parents (the reduce side of a shuffle hash join).
type ZipRDD struct {
	id   int
	a, b RDD
	fn   func(tc *TaskContext, partition int, a, b sqltypes.RowIter) (sqltypes.RowIter, error)
}

// NewZipRDD zips two RDDs with identical partition counts.
func (c *Context) NewZipRDD(a, b RDD,
	fn func(tc *TaskContext, partition int, a, b sqltypes.RowIter) (sqltypes.RowIter, error)) (*ZipRDD, error) {
	if a.NumPartitions() != b.NumPartitions() {
		return nil, fmt.Errorf("rdd: zip of %d and %d partitions", a.NumPartitions(), b.NumPartitions())
	}
	return &ZipRDD{id: c.nextRDDID(), a: a, b: b, fn: fn}, nil
}

// ID implements RDD.
func (r *ZipRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *ZipRDD) NumPartitions() int { return r.a.NumPartitions() }

// Dependencies implements RDD.
func (r *ZipRDD) Dependencies() []Dependency {
	return []Dependency{OneToOne{P: r.a}, OneToOne{P: r.b}}
}

// Compute implements RDD.
func (r *ZipRDD) Compute(tc *TaskContext, p int) (sqltypes.RowIter, error) {
	ita, err := r.a.Compute(tc, p)
	if err != nil {
		return nil, err
	}
	itb, err := r.b.Compute(tc, p)
	if err != nil {
		return nil, err
	}
	return r.fn(tc, p, ita, itb)
}
