// Package rdd implements the distributed-collection substrate the engine
// executes on: partitioned resilient datasets with narrow and shuffle
// dependencies, a hash partitioner, an in-memory shuffle service and a DAG
// scheduler running tasks on a bounded worker pool — a faithful
// single-process analogue of Spark's core (Zaharia et al., NSDI 2012),
// which the Indexed DataFrame plugs into.
package rdd

import (
	"context"
	"fmt"

	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// RDD is a partitioned dataset of rows. Compute produces one partition's
// rows; narrow parents are computed inline (pipelined), wide parents are
// satisfied from shuffle outputs prepared by the scheduler.
type RDD interface {
	// ID is unique within a Context.
	ID() int
	// NumPartitions returns the partition count.
	NumPartitions() int
	// Compute returns an iterator over the rows of one partition.
	Compute(tc *TaskContext, partition int) (sqltypes.RowIter, error)
	// Dependencies lists the parent dependencies.
	Dependencies() []Dependency
}

// Dependency is an edge in the RDD lineage graph.
type Dependency interface {
	Parent() RDD
}

// OneToOne is a narrow dependency: partition i depends on parent partition i.
type OneToOne struct{ P RDD }

// Parent implements Dependency.
func (d OneToOne) Parent() RDD { return d.P }

// ShuffleDependency is a wide dependency: child partitions read hashed
// buckets of every parent partition.
type ShuffleDependency struct {
	P         RDD
	ShuffleID int
	// Partitioner routes each parent row to a reduce partition (row
	// exchanges only; nil when Batch is set).
	Partitioner Partitioner
	// Batch, when non-nil, makes this a columnar exchange: map tasks
	// scatter column-major batches (hashing the key columns with the
	// vectorized kernel, the sole routing function — there is no row
	// fallback) and reduce tasks stream sealed batches back out, so data
	// stays columnar across the stage boundary.
	Batch *BatchExchange
	// Obs, when non-nil, receives the map side's runtime numbers (rows,
	// batches, payload bytes, task wall time) — the exchange operator's
	// stats are collected here because its output iterator belongs to the
	// shuffle service, not to an Execute closure.
	Obs *obs.OpStats
}

// BatchExchange configures a columnar shuffle dependency.
type BatchExchange struct {
	// Schema is the parent's row schema (row-producing parents are
	// gathered into batches of this shape at the map side).
	Schema *sqltypes.Schema
	// Ords are the key column ordinals; empty routes everything to
	// reduce partition 0 (the single-partition gather).
	Ords []int
	// N is the reduce-side partition count.
	N int
}

// Parent implements Dependency.
func (d *ShuffleDependency) Parent() RDD { return d.P }

// numReduce returns the dependency's reduce-side partition count.
func (d *ShuffleDependency) numReduce() int {
	if d.Batch != nil {
		return d.Batch.N
	}
	return d.Partitioner.NumPartitions()
}

// Partitioner maps a row to a partition in [0, NumPartitions).
type Partitioner interface {
	NumPartitions() int
	PartitionFor(row sqltypes.Row) int
}

// HashPartitioner routes rows by the 64-bit hash of a key derived from the
// row — the scheme the Indexed DataFrame uses on the indexed column. Either
// Key (a value whose Hash64 routes the row) or Hash (a direct row hash,
// which composite-key exchanges use to avoid materializing key bytes per
// row) must be set; Hash wins when both are.
type HashPartitioner struct {
	N    int
	Key  func(sqltypes.Row) sqltypes.Value
	Hash func(sqltypes.Row) uint64
}

// NumPartitions implements Partitioner.
func (p *HashPartitioner) NumPartitions() int { return p.N }

// PartitionFor implements Partitioner.
func (p *HashPartitioner) PartitionFor(row sqltypes.Row) int {
	if p.Hash != nil {
		return int(p.Hash(row) % uint64(p.N))
	}
	return int(p.Key(row).Hash64() % uint64(p.N))
}

// SinglePartitioner routes everything to partition 0 (global sorts/limits).
type SinglePartitioner struct{}

// NumPartitions implements Partitioner.
func (SinglePartitioner) NumPartitions() int { return 1 }

// PartitionFor implements Partitioner.
func (SinglePartitioner) PartitionFor(sqltypes.Row) int { return 0 }

// TaskContext carries per-task state into Compute.
type TaskContext struct {
	Ctx       *Context
	Partition int

	// ctx is the query's cancellation context (nil means background).
	// Long-running Compute loops poll Err to stop promptly when the query
	// is cancelled or its deadline expires.
	ctx context.Context
}

// Err reports the task's cancellation state: nil while the query is live,
// context.Canceled / context.DeadlineExceeded once it is not. Operators
// with long per-partition loops (scans, shuffle writes) poll this every
// block of rows.
func (tc *TaskContext) Err() error {
	if tc == nil || tc.ctx == nil {
		return nil
	}
	return tc.ctx.Err()
}

// Cancellation returns the task's context (context.Background when the job
// was started without one).
func (tc *TaskContext) Cancellation() context.Context {
	if tc == nil || tc.ctx == nil {
		return context.Background()
	}
	return tc.ctx
}

// Mem returns the query's memory tracker (nil — and therefore a no-op
// tracker — when the job runs without budgets). Operators that buffer
// unbounded state (hash tables, sort runs, top-n stores) reserve against
// it and fail fast with a memory.LimitError instead of OOMing the process.
func (tc *TaskContext) Mem() *memory.Tracker {
	if tc == nil || tc.ctx == nil {
		return nil
	}
	return memory.FromContext(tc.ctx)
}

// ---------------------------------------------------------------------------
// Concrete RDDs

// SliceRDD is a materialized dataset: rows pre-split into partitions.
type SliceRDD struct {
	id    int
	parts [][]sqltypes.Row
}

// NewSliceRDD wraps pre-partitioned rows.
func (c *Context) NewSliceRDD(parts [][]sqltypes.Row) *SliceRDD {
	return &SliceRDD{id: c.nextRDDID(), parts: parts}
}

// Parallelize splits rows round-robin into n partitions.
func (c *Context) Parallelize(rows []sqltypes.Row, n int) *SliceRDD {
	if n <= 0 {
		n = c.Parallelism()
	}
	parts := make([][]sqltypes.Row, n)
	chunk := (len(rows) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		parts[i] = rows[lo:hi]
	}
	return c.NewSliceRDD(parts)
}

// ID implements RDD.
func (r *SliceRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *SliceRDD) NumPartitions() int { return len(r.parts) }

// Dependencies implements RDD.
func (r *SliceRDD) Dependencies() []Dependency { return nil }

// Compute implements RDD.
func (r *SliceRDD) Compute(_ *TaskContext, p int) (sqltypes.RowIter, error) {
	if p < 0 || p >= len(r.parts) {
		return nil, fmt.Errorf("rdd: partition %d out of range", p)
	}
	return sqltypes.NewSliceIter(r.parts[p]), nil
}

// IterRDD computes partitions through a user function; the workhorse every
// physical operator builds on (MapPartitions in Spark terms).
type IterRDD struct {
	id     int
	parent RDD
	nParts int
	fn     func(tc *TaskContext, partition int, parent sqltypes.RowIter) (sqltypes.RowIter, error)
}

// NewIterRDD builds an RDD computing each partition from the parent's
// partition via fn. With a nil parent, fn receives a nil iterator and nParts
// must be given.
func (c *Context) NewIterRDD(parent RDD, nParts int,
	fn func(tc *TaskContext, partition int, parent sqltypes.RowIter) (sqltypes.RowIter, error)) *IterRDD {
	if parent != nil {
		nParts = parent.NumPartitions()
	}
	return &IterRDD{id: c.nextRDDID(), parent: parent, nParts: nParts, fn: fn}
}

// ID implements RDD.
func (r *IterRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *IterRDD) NumPartitions() int { return r.nParts }

// Dependencies implements RDD.
func (r *IterRDD) Dependencies() []Dependency {
	if r.parent == nil {
		return nil
	}
	return []Dependency{OneToOne{P: r.parent}}
}

// Compute implements RDD.
func (r *IterRDD) Compute(tc *TaskContext, p int) (sqltypes.RowIter, error) {
	var in sqltypes.RowIter
	if r.parent != nil {
		var err error
		in, err = r.parent.Compute(tc, p)
		if err != nil {
			return nil, err
		}
	}
	return r.fn(tc, p, in)
}

// ShuffledRDD reads the reduce side of a shuffle dependency.
type ShuffledRDD struct {
	id  int
	dep *ShuffleDependency
}

// NewShuffledRDD repartitions parent's rows with part.
func (c *Context) NewShuffledRDD(parent RDD, part Partitioner) *ShuffledRDD {
	dep := &ShuffleDependency{P: parent, ShuffleID: c.nextShuffleID(), Partitioner: part}
	return &ShuffledRDD{id: c.nextRDDID(), dep: dep}
}

// NewBatchShuffledRDD repartitions parent through the columnar exchange:
// map tasks scatter batches by hashing the key ordinals (all rows to
// reduce partition 0 when ords is empty), and Compute serves the reduce
// side as a batch stream behind a row-iterator shim — a vectorized
// consumer splices the batches back out through vector.AsBatchIter, a row
// consumer just reads rows.
func (c *Context) NewBatchShuffledRDD(parent RDD, schema *sqltypes.Schema, ords []int, nReduce int) *ShuffledRDD {
	if len(ords) == 0 {
		nReduce = 1
	}
	dep := &ShuffleDependency{
		P:         parent,
		ShuffleID: c.nextShuffleID(),
		Batch:     &BatchExchange{Schema: schema, Ords: ords, N: nReduce},
	}
	return &ShuffledRDD{id: c.nextRDDID(), dep: dep}
}

// SetObs routes the shuffle's map-side runtime numbers into st (nil
// disables collection).
func (r *ShuffledRDD) SetObs(st *obs.OpStats) { r.dep.Obs = st }

// ID implements RDD.
func (r *ShuffledRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *ShuffledRDD) NumPartitions() int { return r.dep.numReduce() }

// Dependencies implements RDD.
func (r *ShuffledRDD) Dependencies() []Dependency { return []Dependency{r.dep} }

// Compute implements RDD. Both exchange flavors stream the reduce side one
// map task's bucket at a time instead of concatenating everything up
// front; the columnar flavor additionally presents its batches behind a
// row shim that vectorized consumers splice away.
func (r *ShuffledRDD) Compute(tc *TaskContext, p int) (sqltypes.RowIter, error) {
	obs.FromContext(tc.Cancellation()).Event("shuffle fetch", p, 0)
	if r.dep.Batch != nil {
		br, err := tc.Ctx.shuffles.OpenBatchReader(r.dep.ShuffleID, p, tc)
		if err != nil {
			return nil, err
		}
		return vector.NewRowIter(br), nil
	}
	return tc.Ctx.shuffles.OpenRowReader(r.dep.ShuffleID, p, tc)
}

// UnionRDD concatenates the partitions of several parents.
type UnionRDD struct {
	id      int
	parents []RDD
}

// NewUnionRDD builds the union of parents (partition counts add up).
func (c *Context) NewUnionRDD(parents ...RDD) *UnionRDD {
	return &UnionRDD{id: c.nextRDDID(), parents: parents}
}

// ID implements RDD.
func (r *UnionRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *UnionRDD) NumPartitions() int {
	n := 0
	for _, p := range r.parents {
		n += p.NumPartitions()
	}
	return n
}

// Dependencies implements RDD.
func (r *UnionRDD) Dependencies() []Dependency {
	deps := make([]Dependency, len(r.parents))
	for i, p := range r.parents {
		deps[i] = OneToOne{P: p}
	}
	return deps
}

// Compute implements RDD.
func (r *UnionRDD) Compute(tc *TaskContext, p int) (sqltypes.RowIter, error) {
	for _, parent := range r.parents {
		if p < parent.NumPartitions() {
			return parent.Compute(tc, p)
		}
		p -= parent.NumPartitions()
	}
	return nil, fmt.Errorf("rdd: union partition out of range")
}

// CachedRDD memoizes its parent's partitions in the context's block
// manager. The first computation of a partition materializes and stores it;
// later computations hit the cache.
type CachedRDD struct {
	id     int
	parent RDD
}

// NewCachedRDD wraps parent with block-manager caching.
func (c *Context) NewCachedRDD(parent RDD) *CachedRDD {
	return &CachedRDD{id: c.nextRDDID(), parent: parent}
}

// ID implements RDD.
func (r *CachedRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *CachedRDD) NumPartitions() int { return r.parent.NumPartitions() }

// Dependencies implements RDD.
func (r *CachedRDD) Dependencies() []Dependency { return []Dependency{OneToOne{P: r.parent}} }

// Compute implements RDD.
func (r *CachedRDD) Compute(tc *TaskContext, p int) (sqltypes.RowIter, error) {
	id := tc.Ctx.blockID(r.id, p)
	if v, ok := tc.Ctx.Blocks.Get(id); ok {
		return sqltypes.NewSliceIter(v.([]sqltypes.Row)), nil
	}
	it, err := r.parent.Compute(tc, p)
	if err != nil {
		return nil, err
	}
	rows, err := sqltypes.Drain(it)
	if err != nil {
		return nil, err
	}
	var size int64
	for _, row := range rows {
		size += int64(len(row)) * 24
		for _, v := range row {
			size += int64(len(v.S))
		}
	}
	tc.Ctx.Blocks.Put(id, rows, size)
	return sqltypes.NewSliceIter(rows), nil
}
