package rdd

import (
	"fmt"
	"testing"

	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// TestBatchMergeRunsStayApart: the merge RDD hands each map task's bucket
// to the merge callback as its own stream, in map order, with every row
// accounted for — the property the sorted-run k-way merge builds on.
func TestBatchMergeRunsStayApart(t *testing.T) {
	c := NewContext(WithParallelism(4))
	const nParts = 6
	var rows []sqltypes.Row
	parts := make([][]sqltypes.Row, nParts)
	for p := range parts {
		n := 100*p + 1 // uneven runs, partition 0 tiny
		if p == 3 {
			n = 0 // an empty run
		}
		for i := 0; i < n; i++ {
			r := sqltypes.Row{sqltypes.NewInt64(int64(p)), sqltypes.NewInt64(int64(i))}
			parts[p] = append(parts[p], r)
			rows = append(rows, r)
		}
	}
	parent := c.NewSliceRDD(parts)
	merged := c.NewBatchMergeRDD(parent, kvSchema(), func(tc *TaskContext, runs []vector.BatchIter) (vector.BatchIter, error) {
		if len(runs) != nParts {
			return nil, fmt.Errorf("got %d runs, want %d", len(runs), nParts)
		}
		// Concatenate the runs in order, checking each run only holds its
		// own partition's rows in their original order.
		var out []*vector.Batch
		for p, run := range runs {
			next := 0
			for {
				b, err := run.Next()
				if err != nil {
					return nil, err
				}
				if b == nil {
					break
				}
				for i := 0; i < b.Len(); i++ {
					row := b.Row(i)
					if row[0].Int64Val() != int64(p) {
						return nil, fmt.Errorf("run %d contains row of partition %d", p, row[0].Int64Val())
					}
					if row[1].Int64Val() != int64(next) {
						return nil, fmt.Errorf("run %d out of order: got %d, want %d", p, row[1].Int64Val(), next)
					}
					next++
				}
				out = append(out, b)
			}
			if next != len(parts[p]) {
				return nil, fmt.Errorf("run %d delivered %d of %d rows", p, next, len(parts[p]))
			}
		}
		return vector.NewSliceIter(out), nil
	})
	got, err := c.Collect(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("merge delivered %d of %d rows", len(got), len(rows))
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(rows[i]) {
			t.Fatalf("row %d: got %v, want %v", i, got[i], rows[i])
		}
	}
}

// TestStreamJobLazySinglePartition: a 1-partition job streams its final
// stage lazily — the task starts on first Next, and abandoning the cursor
// early leaves it incomplete (the tail is never drained).
func TestStreamJobLazySinglePartition(t *testing.T) {
	c := NewContext(WithParallelism(2))
	rows := make([]sqltypes.Row, 5_000)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), sqltypes.NewInt64(int64(i))}
	}
	r := c.Parallelize(rows, 1)
	base := c.TasksStarted()
	s := c.StreamJob(nil, r)
	if got := c.TasksStarted() - base; got != 0 {
		t.Fatalf("lazy stream started %d tasks before first Next", got)
	}
	for i := 0; i < 10; i++ {
		row, err := s.Next()
		if err != nil || row == nil {
			t.Fatalf("Next %d: row=%v err=%v", i, row, err)
		}
		if row[0].Int64Val() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, row)
		}
	}
	if got := c.TasksStarted() - base; got != 1 {
		t.Fatalf("lazy stream started %d tasks, want 1", got)
	}
	s.Close()
	if got := c.TasksCompleted(); got != 0 {
		t.Fatalf("abandoned lazy task counted as completed (%d)", got)
	}
	// A drained lazy stream completes its task.
	s2 := c.StreamJob(nil, c.Parallelize(rows[:16], 1))
	n := 0
	for {
		row, err := s2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		n++
	}
	if n != 16 {
		t.Fatalf("drained %d of 16 rows", n)
	}
	if got := c.TasksCompleted(); got != 1 {
		t.Fatalf("drained lazy task not completed (%d)", got)
	}
}
