package rdd

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"

	"indexeddf/internal/sqltypes"
)

func intRows(n int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i))}
	}
	return rows
}

func rowInts(rows []sqltypes.Row) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = int(r[0].Int64Val())
	}
	sort.Ints(out)
	return out
}

func TestParallelizeAndCollect(t *testing.T) {
	c := NewContext(WithParallelism(4))
	r := c.Parallelize(intRows(100), 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("NumPartitions = %d", r.NumPartitions())
	}
	rows, err := c.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	got := rowInts(rows)
	if len(got) != 100 || got[0] != 0 || got[99] != 99 {
		t.Fatalf("Collect lost rows: %d rows", len(got))
	}
	n, err := c.Count(r)
	if err != nil || n != 100 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestParallelizeEmptyAndSmall(t *testing.T) {
	c := NewContext()
	r := c.Parallelize(nil, 4)
	rows, err := c.Collect(r)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty collect: %v %v", rows, err)
	}
	// Fewer rows than partitions.
	r2 := c.Parallelize(intRows(2), 8)
	rows2, err := c.Collect(r2)
	if err != nil || len(rows2) != 2 {
		t.Fatalf("small collect: %v %v", rows2, err)
	}
}

func TestIterRDDPipelining(t *testing.T) {
	c := NewContext()
	base := c.Parallelize(intRows(50), 4)
	doubled := c.NewIterRDD(base, 0, func(_ *TaskContext, _ int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		rows, err := sqltypes.Drain(in)
		if err != nil {
			return nil, err
		}
		out := make([]sqltypes.Row, 0, len(rows))
		for _, r := range rows {
			out = append(out, sqltypes.Row{sqltypes.NewInt64(r[0].Int64Val() * 2)})
		}
		return sqltypes.NewSliceIter(out), nil
	})
	rows, err := c.Collect(doubled)
	if err != nil {
		t.Fatal(err)
	}
	got := rowInts(rows)
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestShuffleGroupsByKey(t *testing.T) {
	c := NewContext(WithParallelism(2))
	base := c.Parallelize(intRows(1000), 8)
	part := &HashPartitioner{N: 5, Key: func(r sqltypes.Row) sqltypes.Value { return r[0] }}
	sh := c.NewShuffledRDD(base, part)
	parts, err := c.RunJob(sh)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Fatalf("reduce partitions = %d", len(parts))
	}
	// Every row lands exactly once, in the partition its hash selects.
	total := 0
	for p, rows := range parts {
		total += len(rows)
		for _, r := range rows {
			if want := int(r[0].Hash64() % 5); want != p {
				t.Fatalf("row %v in partition %d, want %d", r, p, want)
			}
		}
	}
	if total != 1000 {
		t.Fatalf("total rows after shuffle = %d", total)
	}
}

func TestShuffleChain(t *testing.T) {
	// Two shuffles back to back exercise multi-stage scheduling.
	c := NewContext()
	base := c.Parallelize(intRows(200), 4)
	p1 := &HashPartitioner{N: 3, Key: func(r sqltypes.Row) sqltypes.Value { return r[0] }}
	s1 := c.NewShuffledRDD(base, p1)
	s2 := c.NewShuffledRDD(s1, SinglePartitioner{})
	rows, err := c.Collect(s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("rows after two shuffles = %d", len(rows))
	}
}

func TestUnionRDD(t *testing.T) {
	c := NewContext()
	a := c.Parallelize(intRows(10), 2)
	b := c.Parallelize(intRows(5), 3)
	u := c.NewUnionRDD(a, b)
	if u.NumPartitions() != 5 {
		t.Fatalf("union partitions = %d", u.NumPartitions())
	}
	rows, err := c.Collect(u)
	if err != nil || len(rows) != 15 {
		t.Fatalf("union rows = %d, %v", len(rows), err)
	}
}

func TestCachedRDDMemoizes(t *testing.T) {
	c := NewContext()
	var computes atomic.Int64
	base := c.NewIterRDD(nil, 3, func(_ *TaskContext, p int, _ sqltypes.RowIter) (sqltypes.RowIter, error) {
		computes.Add(1)
		return sqltypes.NewSliceIter(intRows(4)), nil
	})
	cached := c.NewCachedRDD(base)
	if _, err := c.Collect(cached); err != nil {
		t.Fatal(err)
	}
	first := computes.Load()
	if first != 3 {
		t.Fatalf("first run computed %d partitions", first)
	}
	if _, err := c.Collect(cached); err != nil {
		t.Fatal(err)
	}
	if got := computes.Load(); got != first {
		t.Fatalf("second run recomputed: %d -> %d", first, got)
	}
	stats := c.Blocks.Stats()
	if stats.Blocks != 3 || stats.Hits == 0 {
		t.Fatalf("cache stats: %+v", stats)
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	c := NewContext()
	boom := errors.New("boom")
	bad := c.NewIterRDD(nil, 4, func(_ *TaskContext, p int, _ sqltypes.RowIter) (sqltypes.RowIter, error) {
		if p == 2 {
			return nil, boom
		}
		return sqltypes.NewSliceIter(nil), nil
	})
	if _, err := c.Collect(bad); err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// Error inside a shuffle map stage propagates too.
	sh := c.NewShuffledRDD(bad, SinglePartitioner{})
	if _, err := c.Collect(sh); err == nil || !errors.Is(err, boom) {
		t.Fatalf("shuffle error not propagated: %v", err)
	}
}

func TestShuffleFetchWithoutStageFails(t *testing.T) {
	m := NewShuffleManager()
	if _, err := m.Fetch(42, 0); err == nil {
		t.Fatal("Fetch of unknown shuffle should fail")
	}
}

func TestShuffleDropAllowsRerun(t *testing.T) {
	m := NewShuffleManager()
	runs := 0
	_ = m.RunOnce(1, func() error { runs++; return nil })
	_ = m.RunOnce(1, func() error { runs++; return nil })
	if runs != 1 {
		t.Fatalf("RunOnce ran %d times", runs)
	}
	m.Drop(1)
	_ = m.RunOnce(1, func() error { runs++; return nil })
	if runs != 2 {
		t.Fatalf("RunOnce after Drop ran %d times", runs)
	}
}

func TestHashPartitionerDeterminism(t *testing.T) {
	p := &HashPartitioner{N: 7, Key: func(r sqltypes.Row) sqltypes.Value { return r[0] }}
	for i := 0; i < 100; i++ {
		row := sqltypes.Row{sqltypes.NewInt64(int64(i))}
		a := p.PartitionFor(row)
		b := p.PartitionFor(row)
		if a != b || a < 0 || a >= 7 {
			t.Fatalf("partitioner unstable or out of range: %d %d", a, b)
		}
	}
}

func TestStreamJobDeliversPartitionOrderAndCancels(t *testing.T) {
	c := NewContext(WithParallelism(2))
	base := c.Parallelize(intRows(10_000), 16)
	// Streamed rows match Collect order.
	want, err := c.Collect(base)
	if err != nil {
		t.Fatal(err)
	}
	s := c.StreamJob(context.Background(), base)
	var got []sqltypes.Row
	for {
		row, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		got = append(got, row)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0].I != want[i][0].I {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Cancellation surfaces the context error and stops the job.
	ctx, cancel := context.WithCancel(context.Background())
	s2 := c.StreamJob(ctx, base)
	if _, err := s2.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	for {
		row, err := s2.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			break
		}
		if row == nil {
			// The buffered partitions drained before the cancel landed;
			// that is a legal (if unlikely) outcome for this small job.
			break
		}
	}
	s2.Close()

	// Close is idempotent and releases cleanly after exhaustion.
	s.Close()
}
