package rdd

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"indexeddf/internal/sqltypes"
	"indexeddf/internal/storage"
)

// Context is the engine's "SparkContext": it owns id allocation, the
// shuffle service, the block manager and the task pool, and schedules jobs.
type Context struct {
	rddID       atomic.Int64
	shuffleID   atomic.Int64
	parallelism int
	shuffles    *ShuffleManager
	// Blocks is the block manager used by cached RDDs.
	Blocks *storage.Manager

	// Task metrics: partition tasks (result or shuffle-map) started and
	// completed since the context was created. Streaming-cursor tests use
	// the deltas to assert that early rows don't wait for the whole job and
	// that cancellation stops the remaining tasks.
	tasksStarted   atomic.Int64
	tasksCompleted atomic.Int64
}

// Option configures a Context.
type Option func(*Context)

// WithParallelism sets the number of concurrent tasks.
func WithParallelism(n int) Option {
	return func(c *Context) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

// WithCacheCapacity bounds the block manager (bytes); <=0 is unbounded.
func WithCacheCapacity(capacity int64) Option {
	return func(c *Context) { c.Blocks = storage.NewManager(capacity) }
}

// NewContext builds a Context with sane defaults (parallelism =
// GOMAXPROCS, unbounded cache).
func NewContext(opts ...Option) *Context {
	c := &Context{
		parallelism: runtime.GOMAXPROCS(0),
		shuffles:    NewShuffleManager(),
		Blocks:      storage.NewManager(0),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Parallelism returns the task pool width.
func (c *Context) Parallelism() int { return c.parallelism }

// TasksStarted returns the number of partition tasks launched so far.
func (c *Context) TasksStarted() int64 { return c.tasksStarted.Load() }

// TasksCompleted returns the number of partition tasks finished so far.
func (c *Context) TasksCompleted() int64 { return c.tasksCompleted.Load() }

func (c *Context) nextRDDID() int     { return int(c.rddID.Add(1)) }
func (c *Context) nextShuffleID() int { return int(c.shuffleID.Add(1)) }

func (c *Context) blockID(owner, partition int) storage.BlockID {
	return storage.BlockID{Owner: owner, Partition: partition}
}

// parallelFor runs f(0..n-1) on the task pool and returns the first error.
// A cancelled ctx stops handing out new indices and surfaces ctx.Err().
func (c *Context) parallelFor(ctx context.Context, n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	width := c.parallelism
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		mu   sync.Mutex
		errs error
	)
	fail := func(err error) {
		mu.Lock()
		if errs == nil {
			errs = err
		}
		mu.Unlock()
	}
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return errs
}

// computePartition runs one partition task to completion: Compute, then a
// cancellation-aware drain. Task metrics are updated around it.
func (c *Context) computePartition(ctx context.Context, r RDD, p int) ([]sqltypes.Row, error) {
	c.tasksStarted.Add(1)
	tc := &TaskContext{Ctx: c, Partition: p, ctx: ctx}
	it, err := r.Compute(tc, p)
	if err != nil {
		return nil, fmt.Errorf("rdd: partition %d of rdd %d: %w", p, r.ID(), err)
	}
	rows, err := drainCtx(ctx, it)
	if err != nil {
		return nil, fmt.Errorf("rdd: partition %d of rdd %d: %w", p, r.ID(), err)
	}
	c.tasksCompleted.Add(1)
	return rows, nil
}

// drainCtx materializes an iterator, checking for cancellation between
// blocks of rows so runaway tasks stop promptly.
func drainCtx(ctx context.Context, it sqltypes.RowIter) ([]sqltypes.Row, error) {
	const checkEvery = 1024
	var out []sqltypes.Row
	for {
		if len(out)%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// RunJob schedules the RDD — materializing every shuffle stage it depends
// on, bottom-up — and returns the rows of each partition. When the job
// finishes its shuffle outputs are released (Spark keeps them for lineage
// re-use; our queries build fresh RDD graphs, so retaining them would only
// leak).
func (c *Context) RunJob(r RDD) ([][]sqltypes.Row, error) {
	return c.RunJobCtx(context.Background(), r)
}

// RunJobCtx is RunJob under a context: cancellation or deadline expiry
// stops scheduling new partition tasks, interrupts running drains and
// shuffle stages, and surfaces ctx.Err().
func (c *Context) RunJobCtx(ctx context.Context, r RDD) ([][]sqltypes.Row, error) {
	defer c.releaseShuffles(r, map[int]bool{})
	if err := c.ensureShuffles(ctx, r, map[int]bool{}); err != nil {
		return nil, err
	}
	out := make([][]sqltypes.Row, r.NumPartitions())
	err := c.parallelFor(ctx, r.NumPartitions(), func(p int) error {
		rows, err := c.computePartition(ctx, r, p)
		if err != nil {
			return err
		}
		out[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Collect runs the job and concatenates all partitions.
func (c *Context) Collect(r RDD) ([]sqltypes.Row, error) {
	return c.CollectCtx(context.Background(), r)
}

// CollectCtx is Collect under a context.
func (c *Context) CollectCtx(ctx context.Context, r RDD) ([]sqltypes.Row, error) {
	parts, err := c.RunJobCtx(ctx, r)
	if err != nil {
		return nil, err
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]sqltypes.Row, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count runs the job and returns the total row count.
func (c *Context) Count(r RDD) (int64, error) {
	parts, err := c.RunJob(r)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n, nil
}

// releaseShuffles drops the map outputs of every shuffle reachable from r.
func (c *Context) releaseShuffles(r RDD, visited map[int]bool) {
	if visited[r.ID()] {
		return
	}
	visited[r.ID()] = true
	for _, dep := range r.Dependencies() {
		c.releaseShuffles(dep.Parent(), visited)
		if sd, ok := dep.(*ShuffleDependency); ok {
			c.shuffles.Drop(sd.ShuffleID)
		}
	}
}

// ensureShuffles walks the lineage graph and materializes every shuffle
// stage (map outputs) reachable from r, parents first.
func (c *Context) ensureShuffles(ctx context.Context, r RDD, visiting map[int]bool) error {
	if visiting[r.ID()] {
		return nil
	}
	visiting[r.ID()] = true
	for _, dep := range r.Dependencies() {
		if err := c.ensureShuffles(ctx, dep.Parent(), visiting); err != nil {
			return err
		}
		if sd, ok := dep.(*ShuffleDependency); ok {
			if err := c.runShuffleStage(ctx, sd); err != nil {
				return err
			}
		}
	}
	return nil
}

// runShuffleStage computes the map side of a shuffle: each parent partition
// is computed and its rows bucketed by the partitioner into the shuffle
// service. Idempotent per shuffle id.
func (c *Context) runShuffleStage(ctx context.Context, dep *ShuffleDependency) error {
	return c.shuffles.RunOnce(dep.ShuffleID, func() error {
		parent := dep.P
		nReduce := dep.Partitioner.NumPartitions()
		return c.parallelFor(ctx, parent.NumPartitions(), func(mapPart int) error {
			c.tasksStarted.Add(1)
			tc := &TaskContext{Ctx: c, Partition: mapPart, ctx: ctx}
			it, err := parent.Compute(tc, mapPart)
			if err != nil {
				return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
			}
			buckets := make([][]sqltypes.Row, nReduce)
			for n := 0; ; n++ {
				if n%1024 == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				row, err := it.Next()
				if err != nil {
					return err
				}
				if row == nil {
					break
				}
				b := dep.Partitioner.PartitionFor(row)
				buckets[b] = append(buckets[b], row)
			}
			c.shuffles.Write(dep.ShuffleID, mapPart, buckets)
			c.tasksCompleted.Add(1)
			return nil
		})
	})
}

// ShuffleManager is the in-memory shuffle service: map tasks write hashed
// buckets, reduce tasks fetch the bucket for their partition from every map
// output.
type ShuffleManager struct {
	mu      sync.Mutex
	outputs map[int]map[int][][]sqltypes.Row // shuffleID -> mapPart -> reducePart -> rows
	stages  map[int]*shuffleStage
}

type shuffleStage struct {
	once sync.Once
	err  error
}

// NewShuffleManager returns an empty shuffle service.
func NewShuffleManager() *ShuffleManager {
	return &ShuffleManager{
		outputs: make(map[int]map[int][][]sqltypes.Row),
		stages:  make(map[int]*shuffleStage),
	}
}

// RunOnce executes f exactly once per shuffle id, caching its error.
func (m *ShuffleManager) RunOnce(shuffleID int, f func() error) error {
	m.mu.Lock()
	st, ok := m.stages[shuffleID]
	if !ok {
		st = &shuffleStage{}
		m.stages[shuffleID] = st
	}
	m.mu.Unlock()
	st.once.Do(func() { st.err = f() })
	return st.err
}

// Write records one map task's buckets.
func (m *ShuffleManager) Write(shuffleID, mapPart int, buckets [][]sqltypes.Row) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byMap, ok := m.outputs[shuffleID]
	if !ok {
		byMap = make(map[int][][]sqltypes.Row)
		m.outputs[shuffleID] = byMap
	}
	byMap[mapPart] = buckets
}

// Fetch concatenates reduce partition p across all map outputs.
func (m *ShuffleManager) Fetch(shuffleID, p int) ([]sqltypes.Row, error) {
	m.mu.Lock()
	byMap, ok := m.outputs[shuffleID]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rdd: shuffle %d has no map outputs (stage not run)", shuffleID)
	}
	var out []sqltypes.Row
	for mapPart := 0; ; mapPart++ {
		buckets, ok := byMap[mapPart]
		if !ok {
			break
		}
		if p < len(buckets) {
			out = append(out, buckets[p]...)
		}
	}
	return out, nil
}

// Drop releases a shuffle's outputs (between benchmark iterations).
func (m *ShuffleManager) Drop(shuffleID int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.outputs, shuffleID)
	delete(m.stages, shuffleID)
}
