package rdd

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"indexeddf/internal/faultpoint"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/spill"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/storage"
	"indexeddf/internal/vector"
)

// Context is the engine's "SparkContext": it owns id allocation, the
// shuffle service, the block manager and the task pool, and schedules jobs.
type Context struct {
	rddID       atomic.Int64
	shuffleID   atomic.Int64
	parallelism int
	shuffles    *ShuffleManager
	spill       *spill.Manager // nil = out-of-core execution disabled
	// Blocks is the block manager used by cached RDDs.
	Blocks *storage.Manager

	// Task metrics: partition tasks (result or shuffle-map) started and
	// completed since the context was created. Streaming-cursor tests use
	// the deltas to assert that early rows don't wait for the whole job and
	// that cancellation stops the remaining tasks.
	tasksStarted   atomic.Int64
	tasksCompleted atomic.Int64

	// shuffleBytes totals the payload bytes written through the shuffle
	// service since the context was created (registry counter).
	shuffleBytes atomic.Int64
}

// Option configures a Context.
type Option func(*Context)

// WithParallelism sets the number of concurrent tasks.
func WithParallelism(n int) Option {
	return func(c *Context) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

// WithCacheCapacity bounds the block manager (bytes); <=0 is unbounded.
func WithCacheCapacity(capacity int64) Option {
	return func(c *Context) { c.Blocks = storage.NewManager(capacity) }
}

// WithSpill enables out-of-core execution: blocking operators (shuffle
// stores, sort runs, join builds) spill to m's run files when the query's
// memory budget refuses their next reservation. Without it (or without a
// budget) over-limit queries keep failing with memory.ErrMemoryExceeded.
func WithSpill(m *spill.Manager) Option {
	return func(c *Context) {
		c.spill = m
		c.shuffles.spill = m
	}
}

// NewContext builds a Context with sane defaults (parallelism =
// GOMAXPROCS, unbounded cache).
func NewContext(opts ...Option) *Context {
	c := &Context{
		parallelism: runtime.GOMAXPROCS(0),
		shuffles:    NewShuffleManager(),
		Blocks:      storage.NewManager(0),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Parallelism returns the task pool width.
func (c *Context) Parallelism() int { return c.parallelism }

// TasksStarted returns the number of partition tasks launched so far.
func (c *Context) TasksStarted() int64 { return c.tasksStarted.Load() }

// TasksCompleted returns the number of partition tasks finished so far.
func (c *Context) TasksCompleted() int64 { return c.tasksCompleted.Load() }

// ShuffleBytes returns the total payload bytes written through the shuffle
// service since the context was created.
func (c *Context) ShuffleBytes() int64 { return c.shuffleBytes.Load() }

// ShuffleOutstanding reports how many shuffles still retain map outputs —
// the leak invariant: it returns to zero once every cursor over shuffle
// stages is closed (cleanly, truncated by LIMIT, or cancelled).
func (c *Context) ShuffleOutstanding() int { return c.shuffles.Outstanding() }

// SpillManager returns the out-of-core spill fabric (nil when disabled).
func (c *Context) SpillManager() *spill.Manager { return c.spill }

func (c *Context) nextRDDID() int     { return int(c.rddID.Add(1)) }
func (c *Context) nextShuffleID() int { return int(c.shuffleID.Add(1)) }

func (c *Context) blockID(owner, partition int) storage.BlockID {
	return storage.BlockID{Owner: owner, Partition: partition}
}

// parallelFor runs f(0..n-1) on the task pool and returns the first error.
// A cancelled ctx stops handing out new indices and surfaces ctx.Err().
// Worker panics are contained: a panicking f fails the loop with a
// *TaskPanicError instead of killing the process.
func (c *Context) parallelFor(ctx context.Context, n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	run := func(i int) (err error) {
		defer containPanic(&err)
		return f(i)
	}
	width := c.parallelism
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		mu   sync.Mutex
		errs error
	)
	fail := func(err error) {
		mu.Lock()
		if errs == nil {
			errs = err
		}
		mu.Unlock()
	}
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return errs
}

// computePartition runs one partition task to completion: Compute, then a
// cancellation-aware drain charging the materialized rows to the query's
// memory tracker. Task metrics are updated around it; a panic anywhere in
// the operator chain is contained into the returned error. The second
// result is the drained rows' accounted byte size (0 without a tracker).
func (c *Context) computePartition(ctx context.Context, r RDD, p int) ([]sqltypes.Row, int64, error) {
	qs := obs.FromContext(ctx)
	if qs == nil {
		return c.computeTask(ctx, r, p, nil)
	}
	// Attribute the task's CPU samples to the query and record the span.
	var (
		rows  []sqltypes.Row
		bytes int64
		err   error
	)
	start := time.Now()
	qs.Do(ctx, "", func(ctx context.Context) {
		rows, bytes, err = c.computeTask(ctx, r, p, qs)
	})
	qs.Event("task", p, time.Since(start))
	return rows, bytes, err
}

func (c *Context) computeTask(ctx context.Context, r RDD, p int, qs *obs.QueryStats) (rows []sqltypes.Row, bytes int64, err error) {
	c.tasksStarted.Add(1)
	qs.TaskStarted()
	defer containPanic(&err)
	if err := faultpoint.Hit(faultpoint.TaskStart); err != nil {
		return nil, 0, fmt.Errorf("rdd: partition %d of rdd %d: %w", p, r.ID(), err)
	}
	tc := &TaskContext{Ctx: c, Partition: p, ctx: ctx}
	it, err := r.Compute(tc, p)
	if err != nil {
		return nil, 0, fmt.Errorf("rdd: partition %d of rdd %d: %w", p, r.ID(), err)
	}
	rows, bytes, err = drainCtx(ctx, it)
	if err != nil {
		return nil, bytes, fmt.Errorf("rdd: partition %d of rdd %d: %w", p, r.ID(), err)
	}
	c.tasksCompleted.Add(1)
	qs.TaskFinished()
	return rows, bytes, nil
}

// drainCtx materializes an iterator, checking for cancellation between
// blocks of rows so runaway tasks stop promptly, and charging the
// buffered rows to the query's memory tracker block by block — an
// over-budget gather fails mid-drain, not after it OOMs.
func drainCtx(ctx context.Context, it sqltypes.RowIter) ([]sqltypes.Row, int64, error) {
	const checkEvery = 1024
	mem := memory.FromContext(ctx)
	var out []sqltypes.Row
	var bytes, charged int64
	for {
		if len(out)%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, charged, err
			}
			if bytes > charged {
				if err := mem.Reserve("result buffer", bytes-charged); err != nil {
					return nil, charged, err
				}
				charged = bytes
			}
		}
		row, err := it.Next()
		if err != nil {
			return nil, charged, err
		}
		if row == nil {
			if bytes > charged {
				if err := mem.Reserve("result buffer", bytes-charged); err != nil {
					return nil, charged, err
				}
				charged = bytes
			}
			return out, charged, nil
		}
		out = append(out, row)
		bytes += RowBytes(row)
	}
}

// RowBytes estimates one row's resident size for accounting: value
// headers plus string payloads (the same model the block manager uses).
func RowBytes(row sqltypes.Row) int64 {
	size := int64(len(row)) * 24
	for _, v := range row {
		size += int64(len(v.S))
	}
	return size
}

// RunJob schedules the RDD — materializing every shuffle stage it depends
// on, bottom-up — and returns the rows of each partition. When the job
// finishes its shuffle outputs are released (Spark keeps them for lineage
// re-use; our queries build fresh RDD graphs, so retaining them would only
// leak).
func (c *Context) RunJob(r RDD) ([][]sqltypes.Row, error) {
	return c.RunJobCtx(context.Background(), r)
}

// RunJobCtx is RunJob under a context: cancellation or deadline expiry
// stops scheduling new partition tasks, interrupts running drains and
// shuffle stages, and surfaces ctx.Err().
func (c *Context) RunJobCtx(ctx context.Context, r RDD) ([][]sqltypes.Row, error) {
	defer c.releaseShuffles(r, map[int]bool{})
	if err := c.ensureShuffles(ctx, r, map[int]bool{}); err != nil {
		return nil, err
	}
	out := make([][]sqltypes.Row, r.NumPartitions())
	err := c.parallelFor(ctx, r.NumPartitions(), func(p int) error {
		rows, _, err := c.computePartition(ctx, r, p)
		if err != nil {
			return err
		}
		out[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Collect runs the job and concatenates all partitions.
func (c *Context) Collect(r RDD) ([]sqltypes.Row, error) {
	return c.CollectCtx(context.Background(), r)
}

// CollectCtx is Collect under a context.
func (c *Context) CollectCtx(ctx context.Context, r RDD) ([]sqltypes.Row, error) {
	parts, err := c.RunJobCtx(ctx, r)
	if err != nil {
		return nil, err
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]sqltypes.Row, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count runs the job and returns the total row count.
func (c *Context) Count(r RDD) (int64, error) {
	parts, err := c.RunJob(r)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n, nil
}

// releaseShuffles drops the map outputs of every shuffle reachable from r.
func (c *Context) releaseShuffles(r RDD, visited map[int]bool) {
	if visited[r.ID()] {
		return
	}
	visited[r.ID()] = true
	for _, dep := range r.Dependencies() {
		c.releaseShuffles(dep.Parent(), visited)
		if sd, ok := dep.(*ShuffleDependency); ok {
			c.shuffles.Drop(sd.ShuffleID)
		}
	}
}

// ensureShuffles walks the lineage graph and materializes every shuffle
// stage (map outputs) reachable from r, parents first.
func (c *Context) ensureShuffles(ctx context.Context, r RDD, visiting map[int]bool) error {
	if visiting[r.ID()] {
		return nil
	}
	visiting[r.ID()] = true
	for _, dep := range r.Dependencies() {
		if err := c.ensureShuffles(ctx, dep.Parent(), visiting); err != nil {
			return err
		}
		if sd, ok := dep.(*ShuffleDependency); ok {
			if err := c.runShuffleStage(ctx, sd); err != nil {
				return err
			}
		}
	}
	return nil
}

// runShuffleStage computes the map side of a shuffle: each parent
// partition is computed and bucketed by reducer into the shuffle service —
// row-at-a-time through the partitioner for a row exchange, column-wise
// through the scatter kernel for a columnar exchange. Idempotent per
// shuffle id.
func (c *Context) runShuffleStage(ctx context.Context, dep *ShuffleDependency) error {
	return c.shuffles.RunOnce(dep.ShuffleID, func() error {
		parent := dep.P
		nReduce := dep.numReduce()
		qs := obs.FromContext(ctx)
		return c.parallelFor(ctx, parent.NumPartitions(), func(mapPart int) error {
			start := time.Now()
			var taskErr error
			qs.Do(ctx, "", func(ctx context.Context) {
				taskErr = c.shuffleMapTask(ctx, dep, mapPart, nReduce, qs)
			})
			if qs != nil {
				qs.Event("shuffle write", mapPart, time.Since(start))
				dep.Obs.AddWall(int64(time.Since(start)))
			}
			return taskErr
		})
	})
}

// shuffleMapTask computes one parent partition and publishes its buckets
// into the shuffle service — rows through the partitioner for a row
// exchange, batches through the scatter kernel for a columnar one.
func (c *Context) shuffleMapTask(ctx context.Context, dep *ShuffleDependency, mapPart, nReduce int, qs *obs.QueryStats) error {
	c.tasksStarted.Add(1)
	qs.TaskStarted()
	if err := faultpoint.Hit(faultpoint.TaskStart); err != nil {
		return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
	}
	tc := &TaskContext{Ctx: c, Partition: mapPart, ctx: ctx}
	it, err := dep.P.Compute(tc, mapPart)
	if err != nil {
		return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
	}
	if dep.Batch != nil {
		if err := c.batchMapTask(ctx, dep, mapPart, it, nReduce); err != nil {
			return err
		}
		c.tasksCompleted.Add(1)
		qs.TaskFinished()
		return nil
	}
	buckets := make([][]sqltypes.Row, nReduce)
	var bytes, rows int64
	for n := 0; ; n++ {
		if n%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		row, err := it.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		b := dep.Partitioner.PartitionFor(row)
		buckets[b] = append(buckets[b], row)
		bytes += RowBytes(row)
		rows++
	}
	if err := faultpoint.Hit(faultpoint.ShuffleWrite); err != nil {
		return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
	}
	mem := memory.FromContext(ctx)
	if err := mem.Reserve("shuffle write", bytes); err != nil {
		return err
	}
	c.shuffles.charge(dep.ShuffleID, mem, bytes)
	c.shuffles.WriteRows(dep.ShuffleID, mapPart, buckets)
	c.shuffleBytes.Add(bytes)
	qs.AddShuffleBytes(bytes)
	dep.Obs.AddRowsOut(rows)
	dep.Obs.AddBytes(bytes)
	c.tasksCompleted.Add(1)
	qs.TaskFinished()
	return nil
}

// spillFlushBytes is how much scattered input a spilling map task buffers
// before sealing the scatter into the per-reducer runs, keeping the map
// side's resident high-water at a small constant instead of the whole
// partition.
const spillFlushBytes = 1 << 20

// batchMapTask is the map side of a columnar exchange: the parent's
// output is viewed as a batch stream (spliced through untouched when the
// parent operator is vectorized, gathered into batches otherwise) and
// scattered column-wise into per-reducer builders. With out-of-core
// execution available and a budget in force, the builders flush
// incrementally into per-reducer spill runs, which go to disk when the
// budget refuses them; otherwise the whole partition is scattered and
// sealed in one shot (the in-memory fast path, untouched).
func (c *Context) batchMapTask(ctx context.Context, dep *ShuffleDependency, mapPart int,
	it sqltypes.RowIter, nReduce int) error {
	bi := vector.AsBatchIter(it, dep.Batch.Schema, vector.DefaultBatchSize)
	sc := vector.NewScatter(dep.Batch.Schema, dep.Batch.Ords, nReduce)
	mem := memory.FromContext(ctx)
	qs := obs.FromContext(ctx)
	spilling := c.spill.Enabled() && mem != nil

	var runs []*spill.Run
	if spilling {
		runs = make([]*spill.Run, nReduce)
		for i := range runs {
			runs[i] = c.spill.NewRun("shuffle write", dep.Batch.Schema, mem, dep.Obs, qs)
		}
	}
	var bytes, rows, nBatches int64
	flush := func() error {
		if err := faultpoint.Hit(faultpoint.BatchSeal); err != nil {
			return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
		}
		sealed := sc.Seal()
		for reducer, bucket := range sealed {
			for _, b := range bucket {
				bytes += b.MemBytes()
				rows += int64(b.Len())
				nBatches++
				if err := runs[reducer].Append(b); err != nil {
					return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
				}
			}
		}
		return nil
	}
	var pending int64
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := bi.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		sc.Add(b)
		if spilling {
			pending += b.MemBytes()
			if pending >= spillFlushBytes {
				if err := flush(); err != nil {
					return err
				}
				pending = 0
			}
		}
	}
	if spilling {
		if err := flush(); err != nil {
			return err
		}
		if err := faultpoint.Hit(faultpoint.ShuffleWrite); err != nil {
			return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
		}
		for _, r := range runs {
			if err := r.Seal(); err != nil {
				return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
			}
		}
		c.shuffles.WriteBatchRuns(dep.ShuffleID, mapPart, runs)
	} else {
		if err := faultpoint.Hit(faultpoint.BatchSeal); err != nil {
			return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
		}
		sealed := sc.Seal()
		for _, bucket := range sealed {
			for _, b := range bucket {
				bytes += b.MemBytes()
				rows += int64(b.Len())
				nBatches++
			}
		}
		if err := faultpoint.Hit(faultpoint.ShuffleWrite); err != nil {
			return fmt.Errorf("rdd: shuffle %d map task %d: %w", dep.ShuffleID, mapPart, err)
		}
		if err := mem.Reserve("shuffle write", bytes); err != nil {
			return err
		}
		c.shuffles.charge(dep.ShuffleID, mem, bytes)
		c.shuffles.WriteBatches(dep.ShuffleID, mapPart, sealed)
	}
	c.shuffleBytes.Add(bytes)
	qs.AddShuffleBytes(bytes)
	if dep.Obs != nil {
		dep.Obs.AddRowsOut(rows)
		dep.Obs.AddBatches(nBatches)
		dep.Obs.AddBytes(bytes)
	}
	return nil
}

// ShuffleManager is the in-memory shuffle service: map tasks write hashed
// buckets (row slices or sealed columnar batches), reduce tasks stream the
// bucket for their partition out of every map output. Each shuffle's
// outputs sit behind their own RWMutex, so reduce-side readers from many
// partitions proceed in parallel — with each other and with map writes of
// other tasks — instead of serializing on one service-wide lock.
type ShuffleManager struct {
	mu       sync.Mutex
	shuffles map[int]*shuffleOutput
	stages   map[int]*shuffleStage
	spill    *spill.Manager // set by WithSpill; nil = in-memory only
}

// shuffleOutput holds one shuffle's map outputs. rows, batches and runs
// are mutually exclusive per shuffle (set by the dependency flavor and
// whether the query runs out-of-core).
type shuffleOutput struct {
	mu      sync.RWMutex
	rows    map[int][][]sqltypes.Row  // mapPart -> reducer -> rows
	batches map[int][][]*vector.Batch // mapPart -> reducer -> sealed batches
	runs    map[int][]*spill.Run      // mapPart -> reducer -> spillable run
	mem     *memory.Tracker           // tracker the retained buckets are charged to
	charged int64                     // bytes charged to mem, released by Drop
}

type shuffleStage struct {
	once sync.Once
	err  error
}

// NewShuffleManager returns an empty shuffle service.
func NewShuffleManager() *ShuffleManager {
	return &ShuffleManager{
		shuffles: make(map[int]*shuffleOutput),
		stages:   make(map[int]*shuffleStage),
	}
}

// RunOnce executes f exactly once per shuffle id, caching its error.
func (m *ShuffleManager) RunOnce(shuffleID int, f func() error) error {
	m.mu.Lock()
	st, ok := m.stages[shuffleID]
	if !ok {
		st = &shuffleStage{}
		m.stages[shuffleID] = st
	}
	m.mu.Unlock()
	st.once.Do(func() { st.err = f() })
	return st.err
}

// output returns (creating on demand) the per-shuffle output store.
func (m *ShuffleManager) output(shuffleID int) *shuffleOutput {
	m.mu.Lock()
	defer m.mu.Unlock()
	out, ok := m.shuffles[shuffleID]
	if !ok {
		out = &shuffleOutput{}
		m.shuffles[shuffleID] = out
	}
	return out
}

// charge records that bytes of retained shuffle output were reserved on
// mem, so Drop can return them. One shuffle belongs to one query, so all
// of its map tasks carry the same tracker.
func (m *ShuffleManager) charge(shuffleID int, mem *memory.Tracker, bytes int64) {
	if mem == nil || bytes == 0 {
		return
	}
	out := m.output(shuffleID)
	out.mu.Lock()
	out.mem = mem
	out.charged += bytes
	out.mu.Unlock()
}

// Outstanding returns the number of shuffles whose map outputs are still
// retained. This is the leak invariant tests assert on: once every cursor
// is closed — including truncated and cancelled ones — it must be zero.
func (m *ShuffleManager) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.shuffles)
}

// lookup returns the shuffle's output store without creating it.
func (m *ShuffleManager) lookup(shuffleID int) (*shuffleOutput, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out, ok := m.shuffles[shuffleID]
	return out, ok
}

// WriteRows records one map task's row buckets.
func (m *ShuffleManager) WriteRows(shuffleID, mapPart int, buckets [][]sqltypes.Row) {
	out := m.output(shuffleID)
	out.mu.Lock()
	defer out.mu.Unlock()
	if out.rows == nil {
		out.rows = make(map[int][][]sqltypes.Row)
	}
	out.rows[mapPart] = buckets
}

// WriteBatches records one map task's columnar buckets.
func (m *ShuffleManager) WriteBatches(shuffleID, mapPart int, buckets [][]*vector.Batch) {
	out := m.output(shuffleID)
	out.mu.Lock()
	defer out.mu.Unlock()
	if out.batches == nil {
		out.batches = make(map[int][][]*vector.Batch)
	}
	out.batches[mapPart] = buckets
}

// WriteBatchRuns records one map task's columnar buckets in spill-run
// form (out-of-core shuffles). The runs are released by Drop; until then
// they serve readers from memory or disk transparently.
func (m *ShuffleManager) WriteBatchRuns(shuffleID, mapPart int, runs []*spill.Run) {
	out := m.output(shuffleID)
	out.mu.Lock()
	defer out.mu.Unlock()
	if out.runs == nil {
		out.runs = make(map[int][]*spill.Run)
	}
	out.runs[mapPart] = runs
}

// rowBucket returns map task mapPart's bucket for reducer p, or ok=false
// when that map task has not written (the reader is past the last map).
func (o *shuffleOutput) rowBucket(mapPart, p int) ([]sqltypes.Row, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	buckets, ok := o.rows[mapPart]
	if !ok {
		return nil, false
	}
	if p >= len(buckets) {
		return nil, true
	}
	return buckets[p], true
}

// batchBucket is rowBucket for a columnar shuffle.
func (o *shuffleOutput) batchBucket(mapPart, p int) ([]*vector.Batch, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	buckets, ok := o.batches[mapPart]
	if !ok {
		return nil, false
	}
	if p >= len(buckets) {
		return nil, true
	}
	return buckets[p], true
}

// runBucket is batchBucket for an out-of-core shuffle.
func (o *shuffleOutput) runBucket(mapPart, p int) (*spill.Run, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	runs, ok := o.runs[mapPart]
	if !ok {
		return nil, false
	}
	if p >= len(runs) {
		return nil, true
	}
	return runs[p], true
}

// spilled reports whether the shuffle's outputs live in spill runs.
func (o *shuffleOutput) spilled() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.runs != nil
}

// OpenRowReader streams reduce partition p's rows one map-task bucket at a
// time: each bucket is picked up under the shuffle's read lock when the
// reader gets to it, so concurrent reduce tasks never serialize on a
// whole-fetch concatenation. The reader polls tc for cancellation between
// buckets. Map outputs must be complete (the scheduler runs the map stage
// to completion before reduce tasks start).
func (m *ShuffleManager) OpenRowReader(shuffleID, p int, tc *TaskContext) (sqltypes.RowIter, error) {
	if err := faultpoint.Hit(faultpoint.ShuffleFetch); err != nil {
		return nil, fmt.Errorf("rdd: shuffle %d reduce %d: %w", shuffleID, p, err)
	}
	out, ok := m.lookup(shuffleID)
	if !ok {
		return nil, fmt.Errorf("rdd: shuffle %d has no map outputs (stage not run)", shuffleID)
	}
	return &shuffleRowReader{out: out, reducer: p, tc: tc}, nil
}

// OpenBatchReader is OpenRowReader for a columnar shuffle: the reduce side
// streams each map task's sealed batches in map order.
func (m *ShuffleManager) OpenBatchReader(shuffleID, p int, tc *TaskContext) (vector.BatchIter, error) {
	if err := faultpoint.Hit(faultpoint.ShuffleFetch); err != nil {
		return nil, fmt.Errorf("rdd: shuffle %d reduce %d: %w", shuffleID, p, err)
	}
	out, ok := m.lookup(shuffleID)
	if !ok {
		return nil, fmt.Errorf("rdd: shuffle %d has no map outputs (stage not run)", shuffleID)
	}
	return &shuffleBatchReader{out: out, reducer: p, tc: tc}, nil
}

// OpenBatchRunReaders opens one batch reader per map task of a columnar
// shuffle, each limited to that task's bucket for reduce partition p.
// Where OpenBatchReader concatenates the buckets, this keeps them apart —
// the sorted-run merge needs each map task's (sorted) output as its own
// stream. nRuns is the shuffle's map-side partition count.
func (m *ShuffleManager) OpenBatchRunReaders(shuffleID, nRuns, p int, tc *TaskContext) ([]vector.BatchIter, error) {
	if err := faultpoint.Hit(faultpoint.ShuffleFetch); err != nil {
		return nil, fmt.Errorf("rdd: shuffle %d reduce %d: %w", shuffleID, p, err)
	}
	out, ok := m.lookup(shuffleID)
	if !ok {
		return nil, fmt.Errorf("rdd: shuffle %d has no map outputs (stage not run)", shuffleID)
	}
	runs := make([]vector.BatchIter, nRuns)
	for i := range runs {
		runs[i] = &shuffleBatchReader{out: out, reducer: p, tc: tc, mapPart: i, lastMap: i + 1}
	}
	return runs, nil
}

// Fetch concatenates reduce partition p across all map outputs (kept for
// tests and row-bulk callers; the execution path streams through
// OpenRowReader instead). On a columnar shuffle the sealed batches are
// materialized into rows.
func (m *ShuffleManager) Fetch(shuffleID, p int) ([]sqltypes.Row, error) {
	out, ok := m.lookup(shuffleID)
	if !ok {
		return nil, fmt.Errorf("rdd: shuffle %d has no map outputs (stage not run)", shuffleID)
	}
	out.mu.RLock()
	columnar := out.batches != nil
	spilled := out.runs != nil
	out.mu.RUnlock()
	var rows []sqltypes.Row
	if spilled {
		for mapPart := 0; ; mapPart++ {
			run, ok := out.runBucket(mapPart, p)
			if !ok {
				return rows, nil
			}
			if run == nil {
				continue
			}
			it, err := run.Open(nil, false)
			if err != nil {
				return nil, err
			}
			for {
				b, err := it.Next()
				if err != nil {
					return nil, err
				}
				if b == nil {
					break
				}
				for i := 0; i < b.Len(); i++ {
					rows = append(rows, b.Row(i))
				}
			}
		}
	}
	if columnar {
		for mapPart := 0; ; mapPart++ {
			bucket, ok := out.batchBucket(mapPart, p)
			if !ok {
				return rows, nil
			}
			for _, b := range bucket {
				for i := 0; i < b.Len(); i++ {
					rows = append(rows, b.Row(i))
				}
			}
		}
	}
	for mapPart := 0; ; mapPart++ {
		bucket, ok := out.rowBucket(mapPart, p)
		if !ok {
			return rows, nil
		}
		rows = append(rows, bucket...)
	}
}

// shuffleRowReader iterates reduce partition reducer's rows across map
// outputs, holding the shuffle lock only to look one bucket up.
type shuffleRowReader struct {
	out     *shuffleOutput
	reducer int
	tc      *TaskContext
	mapPart int
	cur     []sqltypes.Row
	pos     int
	done    bool
}

// Next implements sqltypes.RowIter.
func (r *shuffleRowReader) Next() (sqltypes.Row, error) {
	for {
		if r.pos < len(r.cur) {
			row := r.cur[r.pos]
			r.pos++
			return row, nil
		}
		if r.done {
			return nil, nil
		}
		if err := r.tc.Err(); err != nil {
			return nil, err
		}
		bucket, ok := r.out.rowBucket(r.mapPart, r.reducer)
		if !ok {
			r.done = true
			return nil, nil
		}
		r.mapPart++
		r.cur, r.pos = bucket, 0
	}
}

// shuffleBatchReader streams reduce partition reducer's sealed batches
// across map outputs — all of them, or the half-open map range
// [mapPart, lastMap) when lastMap > 0 (per-run readers). On an
// out-of-core shuffle each map task's bucket is a spill run, opened as a
// streaming reader when the cursor gets to it — from memory or from its
// run file, transparently.
type shuffleBatchReader struct {
	out     *shuffleOutput
	reducer int
	tc      *TaskContext
	mapPart int
	lastMap int // exclusive bound on map parts; 0 = unbounded
	cur     []*vector.Batch
	curRun  vector.BatchIter
	pos     int
	done    bool
}

// Next implements vector.BatchIter.
func (r *shuffleBatchReader) Next() (*vector.Batch, error) {
	for {
		if r.curRun != nil {
			b, err := r.curRun.Next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
			r.curRun = nil
		}
		if r.pos < len(r.cur) {
			b := r.cur[r.pos]
			r.pos++
			if b.Len() > 0 {
				return b, nil
			}
			continue
		}
		if r.done {
			return nil, nil
		}
		if err := r.tc.Err(); err != nil {
			return nil, err
		}
		if r.lastMap > 0 && r.mapPart >= r.lastMap {
			r.done = true
			return nil, nil
		}
		if r.out.spilled() {
			run, ok := r.out.runBucket(r.mapPart, r.reducer)
			if !ok {
				r.done = true
				return nil, nil
			}
			r.mapPart++
			if run == nil {
				continue
			}
			it, err := run.Open(r.tc.Err, false)
			if err != nil {
				return nil, err
			}
			r.curRun = it
			continue
		}
		bucket, ok := r.out.batchBucket(r.mapPart, r.reducer)
		if !ok {
			r.done = true
			return nil, nil
		}
		r.mapPart++
		r.cur, r.pos = bucket, 0
	}
}

// Drop releases a shuffle's outputs and returns their bytes to the memory
// tracker they were charged to (a no-op on an already-closed tracker, so a
// late Drop from an unwinding job cannot corrupt accounting).
func (m *ShuffleManager) Drop(shuffleID int) {
	m.mu.Lock()
	out := m.shuffles[shuffleID]
	delete(m.shuffles, shuffleID)
	delete(m.stages, shuffleID)
	m.mu.Unlock()
	if out == nil {
		return
	}
	out.mu.Lock()
	mem, charged := out.mem, out.charged
	runs := out.runs
	out.mem, out.charged, out.runs = nil, 0, nil
	out.mu.Unlock()
	mem.Release(charged)
	for _, rs := range runs {
		for _, r := range rs {
			if r != nil {
				r.Release()
			}
		}
	}
}
