package rdd

import (
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// BatchMergeRDD is the reduce side of an order-preserving gather: the
// parent's partitions cross a columnar exchange into a single reduce
// partition, but each map task's sealed batches stay apart and are handed
// to merge as one BatchIter per map task — the shape a k-way merge of
// per-partition sorted runs needs. (The plain batch gather concatenates
// the buckets in map order, which destroys sortedness across runs.)
type BatchMergeRDD struct {
	id    int
	dep   *ShuffleDependency
	nRuns int
	merge func(tc *TaskContext, runs []vector.BatchIter) (vector.BatchIter, error)
}

// NewBatchMergeRDD gathers parent through the columnar exchange and
// computes its single output partition by merging the per-map-task batch
// streams with merge.
func (c *Context) NewBatchMergeRDD(parent RDD, schema *sqltypes.Schema,
	merge func(tc *TaskContext, runs []vector.BatchIter) (vector.BatchIter, error)) *BatchMergeRDD {
	dep := &ShuffleDependency{
		P:         parent,
		ShuffleID: c.nextShuffleID(),
		Batch:     &BatchExchange{Schema: schema, N: 1},
	}
	return &BatchMergeRDD{id: c.nextRDDID(), dep: dep, nRuns: parent.NumPartitions(), merge: merge}
}

// ID implements RDD.
func (r *BatchMergeRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *BatchMergeRDD) NumPartitions() int { return 1 }

// Dependencies implements RDD.
func (r *BatchMergeRDD) Dependencies() []Dependency { return []Dependency{r.dep} }

// Compute implements RDD: the merged batch stream is presented behind the
// usual row shim, which vectorized consumers splice away.
func (r *BatchMergeRDD) Compute(tc *TaskContext, p int) (sqltypes.RowIter, error) {
	runs, err := tc.Ctx.shuffles.OpenBatchRunReaders(r.dep.ShuffleID, r.nRuns, p, tc)
	if err != nil {
		return nil, err
	}
	out, err := r.merge(tc, runs)
	if err != nil {
		return nil, err
	}
	return vector.NewRowIter(out), nil
}
