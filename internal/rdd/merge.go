package rdd

import (
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// BatchMergeRDD is the reduce side of an order-preserving gather: the
// parent's partitions cross a columnar exchange into a single reduce
// partition, but each map task's sealed batches stay apart and are handed
// to merge as one BatchIter per map task — the shape a k-way merge of
// per-partition sorted runs needs. (The plain batch gather concatenates
// the buckets in map order, which destroys sortedness across runs.)
type BatchMergeRDD struct {
	id    int
	dep   *ShuffleDependency
	nRuns int
	merge func(tc *TaskContext, runs []vector.BatchIter) (vector.BatchIter, error)
}

// NewBatchMergeRDD gathers parent through the columnar exchange and
// computes its single output partition by merging the per-map-task batch
// streams with merge.
func (c *Context) NewBatchMergeRDD(parent RDD, schema *sqltypes.Schema,
	merge func(tc *TaskContext, runs []vector.BatchIter) (vector.BatchIter, error)) *BatchMergeRDD {
	dep := &ShuffleDependency{
		P:         parent,
		ShuffleID: c.nextShuffleID(),
		Batch:     &BatchExchange{Schema: schema, N: 1},
	}
	return &BatchMergeRDD{id: c.nextRDDID(), dep: dep, nRuns: parent.NumPartitions(), merge: merge}
}

// ID implements RDD.
func (r *BatchMergeRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *BatchMergeRDD) NumPartitions() int { return 1 }

// Dependencies implements RDD.
func (r *BatchMergeRDD) Dependencies() []Dependency { return []Dependency{r.dep} }

// Compute implements RDD: the merged batch stream is presented behind the
// usual row shim, which vectorized consumers splice away.
func (r *BatchMergeRDD) Compute(tc *TaskContext, p int) (sqltypes.RowIter, error) {
	runs, err := tc.Ctx.shuffles.OpenBatchRunReaders(r.dep.ShuffleID, r.nRuns, p, tc)
	if err != nil {
		return nil, err
	}
	out, err := r.merge(tc, runs)
	if err != nil {
		return nil, err
	}
	return vector.NewRowIter(out), nil
}

// BatchRangeMergeRDD is the reduce side of a range-partitioned merge: the
// parent's map tasks publish their sorted runs out of band (spill runs
// plus splitter metadata on a shared coordinator) and the exchange itself
// carries no rows — it exists only as the map→reduce barrier. Each of the
// nParts reduce partitions then merges its key range directly from the
// published runs, so partition outputs concatenate in splitter order.
type BatchRangeMergeRDD struct {
	id     int
	dep    *ShuffleDependency
	nParts int
	merge  func(tc *TaskContext, p int) (vector.BatchIter, error)
}

// NewBatchRangeMergeRDD builds a range merge with nParts reduce partitions
// over parent's (row-free) columnar exchange.
func (c *Context) NewBatchRangeMergeRDD(parent RDD, schema *sqltypes.Schema, nParts int,
	merge func(tc *TaskContext, p int) (vector.BatchIter, error)) *BatchRangeMergeRDD {
	dep := &ShuffleDependency{
		P:         parent,
		ShuffleID: c.nextShuffleID(),
		Batch:     &BatchExchange{Schema: schema, N: 1},
	}
	return &BatchRangeMergeRDD{id: c.nextRDDID(), dep: dep, nParts: nParts, merge: merge}
}

// ID implements RDD.
func (r *BatchRangeMergeRDD) ID() int { return r.id }

// NumPartitions implements RDD.
func (r *BatchRangeMergeRDD) NumPartitions() int { return r.nParts }

// Dependencies implements RDD.
func (r *BatchRangeMergeRDD) Dependencies() []Dependency { return []Dependency{r.dep} }

// Compute implements RDD. The (empty) exchange buckets are never opened;
// teardown drops them like any unread shuffle output.
func (r *BatchRangeMergeRDD) Compute(tc *TaskContext, p int) (sqltypes.RowIter, error) {
	out, err := r.merge(tc, p)
	if err != nil {
		return nil, err
	}
	return vector.NewRowIter(out), nil
}
