package rdd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"indexeddf/internal/faultpoint"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/sqltypes"
)

// RowStream is an incremental job run: partition tasks execute on a
// bounded worker pool in the background while the consumer pulls rows in
// partition order, so the first row of a large result is available as soon
// as the first partition task finishes — not after the whole job. A
// ticket system bounds the number of materialized-but-unconsumed
// partitions to the worker width, giving natural backpressure.
//
// Closing the stream (or cancelling the context it was started under)
// stops the remaining partition tasks promptly and releases the job's
// shuffle outputs. RowStream is not safe for concurrent use by multiple
// goroutines; each consumer should start its own stream.
type RowStream struct {
	c      *Context
	r      RDD
	ctx    context.Context
	cancel context.CancelFunc

	slots   []chan partResult
	tickets chan struct{}
	workers sync.WaitGroup

	firstErr atomic.Pointer[error]

	// Consumer-side cursor state (single-goroutine).
	nextPart int
	cur      []sqltypes.Row
	curBytes int64 // accounted size of cur, released when the slot is consumed
	pos      int
	finished bool
	released bool

	// Lazy final stage: single-partition jobs (global sorts, top-n merges,
	// gathered limits) skip the worker pool and compute their one partition
	// as an iterator pulled on the consumer's goroutine. The heavy lifting
	// of such plans sits in shuffle map stages (which still run with full
	// parallelism); materializing the final stage up front would stall the
	// first row until the whole merged result exists — and a cursor that
	// stops early (LIMIT satisfied, Close) never pays for the tail.
	lazy      bool
	lazyIter  sqltypes.RowIter
	lazyCount int
}

type partResult struct {
	rows  []sqltypes.Row
	bytes int64
	err   error
}

// StreamJob starts the RDD as a streaming job under ctx and returns the
// stream. Shuffle stages run first (in the background), then partition
// tasks execute with the context's parallelism; results are delivered to
// Next in partition order, matching Collect.
func (c *Context) StreamJob(ctx context.Context, r RDD) *RowStream {
	if ctx == nil {
		ctx = context.Background()
	}
	sctx, cancel := context.WithCancel(ctx)
	n := r.NumPartitions()
	if n == 1 {
		return &RowStream{c: c, r: r, ctx: sctx, cancel: cancel, lazy: true}
	}
	width := c.parallelism
	if width > n {
		width = n
	}
	if width < 1 {
		width = 1
	}
	s := &RowStream{
		c:       c,
		r:       r,
		ctx:     sctx,
		cancel:  cancel,
		slots:   make([]chan partResult, n),
		tickets: make(chan struct{}, n+width),
	}
	for i := range s.slots {
		s.slots[i] = make(chan partResult, 1)
	}
	for i := 0; i < width; i++ {
		s.tickets <- struct{}{}
	}
	s.workers.Add(1)
	go s.run(width)
	return s
}

// fail records the stream's first error and cancels everything else.
func (s *RowStream) fail(err error) {
	if err == nil {
		return
	}
	e := err
	s.firstErr.CompareAndSwap(nil, &e)
	s.cancel()
}

// takeErr returns the definitive stream error: the first task/shuffle
// error when one was recorded, the context error otherwise.
func (s *RowStream) takeErr() error {
	if p := s.firstErr.Load(); p != nil {
		return *p
	}
	return s.ctx.Err()
}

// run materializes shuffle stages and then fans partition tasks out over
// width workers. Each worker takes a backpressure ticket, computes the
// next unclaimed partition, and parks the result in that partition's slot.
func (s *RowStream) run(width int) {
	defer s.workers.Done()
	if err := s.c.ensureShuffles(s.ctx, s.r, map[int]bool{}); err != nil {
		s.fail(err)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-s.ctx.Done():
					return
				case <-s.tickets:
				}
				p := int(next.Add(1)) - 1
				if p >= len(s.slots) {
					return
				}
				rows, bytes, err := s.c.computePartition(s.ctx, s.r, p)
				if err != nil {
					memory.FromContext(s.ctx).Release(bytes)
					s.fail(err)
					return
				}
				select {
				case s.slots[p] <- partResult{rows: rows, bytes: bytes}:
				case <-s.ctx.Done():
					// The slot buffer is abandoned; return its charge now
					// rather than waiting for tracker close.
					memory.FromContext(s.ctx).Release(bytes)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Next returns the next row, or (nil, nil) when the stream is exhausted.
// After an error (including cancellation) it keeps returning that error.
func (s *RowStream) Next() (sqltypes.Row, error) {
	if s.lazy {
		return s.lazyNext()
	}
	for {
		if s.finished {
			return nil, s.takeFinishedErr()
		}
		if s.pos < len(s.cur) {
			row := s.cur[s.pos]
			s.pos++
			return row, nil
		}
		if s.nextPart >= len(s.slots) {
			s.finish()
			return nil, nil
		}
		select {
		case res := <-s.slots[s.nextPart]:
			s.nextPart++
			// The previous slot's rows are consumed: return their memory
			// charge before taking ownership of the next buffer.
			memory.FromContext(s.ctx).Release(s.curBytes)
			s.cur, s.curBytes, s.pos = res.rows, res.bytes, 0
			// Hand the consumed slot's ticket back so a worker can start
			// the next partition.
			select {
			case s.tickets <- struct{}{}:
			default:
			}
		case <-s.ctx.Done():
			err := s.takeErr()
			s.finishWithErr(err)
			return nil, err
		}
	}
}

// lazyNext serves a single-partition job: shuffle stages are materialized
// on first use (map tasks still run on the task pool), then the one final
// partition is computed as an iterator and pulled row-at-a-time — so the
// consumer sees the first row as soon as the final stage can produce it,
// and abandoning the stream early skips the rest of the final stage
// entirely. The task counters mark the final task started at compute and
// completed only on exhaustion; a truncated stream leaves it incomplete.
func (s *RowStream) lazyNext() (row sqltypes.Row, err error) {
	// The final stage runs on the consumer's goroutine, so a panic in the
	// operator chain would otherwise unwind into caller code: contain it
	// here like any other task and pin it as the stream's terminal error.
	defer func() {
		if r := recover(); r != nil {
			perr := AsTaskPanic(r)
			s.finishWithErr(perr)
			row, err = nil, perr
		}
	}()
	if s.finished {
		return nil, s.takeFinishedErr()
	}
	if s.lazyIter == nil {
		if err := s.c.ensureShuffles(s.ctx, s.r, map[int]bool{}); err != nil {
			s.finishWithErr(err)
			return nil, err
		}
		s.c.tasksStarted.Add(1)
		qs := obs.FromContext(s.ctx)
		qs.TaskStarted()
		if err := faultpoint.Hit(faultpoint.TaskStart); err != nil {
			err = fmt.Errorf("rdd: partition 0 of rdd %d: %w", s.r.ID(), err)
			s.finishWithErr(err)
			return nil, err
		}
		tc := &TaskContext{Ctx: s.c, Partition: 0, ctx: s.ctx}
		it, err := s.r.Compute(tc, 0)
		if err != nil {
			err = fmt.Errorf("rdd: partition 0 of rdd %d: %w", s.r.ID(), err)
			s.finishWithErr(err)
			return nil, err
		}
		qs.Event("merge start", 0, 0)
		s.lazyIter = it
	}
	if s.lazyCount%1024 == 0 {
		if err := s.ctx.Err(); err != nil {
			err = s.takeErr()
			s.finishWithErr(err)
			return nil, err
		}
	}
	row, err = s.lazyIter.Next()
	if err != nil {
		s.finishWithErr(err)
		return nil, err
	}
	if row == nil {
		s.c.tasksCompleted.Add(1)
		obs.FromContext(s.ctx).TaskFinished()
		s.finish()
		return nil, nil
	}
	s.lazyCount++
	return row, nil
}

func (s *RowStream) takeFinishedErr() error {
	if p := s.firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// finish tears the stream down after successful exhaustion.
func (s *RowStream) finish() {
	s.finished = true
	s.cancel()
	s.workers.Wait()
	s.release()
}

// finishWithErr tears the stream down after a failure, pinning err as the
// stream's terminal state.
func (s *RowStream) finishWithErr(err error) {
	if err != nil {
		e := err
		s.firstErr.CompareAndSwap(nil, &e)
	}
	s.finish()
}

// Close cancels the stream's remaining work and releases its shuffle
// outputs. Safe to call more than once and after exhaustion.
func (s *RowStream) Close() {
	if !s.finished {
		s.finish()
	}
}

func (s *RowStream) release() {
	if s.released {
		return
	}
	s.released = true
	memory.FromContext(s.ctx).Release(s.curBytes)
	s.cur, s.curBytes = nil, 0
	s.lazyIter = nil
	s.c.releaseShuffles(s.r, map[int]bool{})
}
