package rdd

import (
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// NewBatchIterRDD is the batch-at-a-time analogue of NewIterRDD: fn computes
// each partition as a stream of column-major batches. The parent's rows are
// viewed through vector.AsBatchIter — when the parent operator is itself
// vectorized its batch stream is spliced through untouched, so chains of
// batch operators pipeline columnar data with no row materialization; a
// row-at-a-time parent is transparently gathered into batches at the
// boundary. The returned RDD still satisfies the row Compute contract via a
// row adapter, which is what shuffles and row operators consume.
func (c *Context) NewBatchIterRDD(parent RDD, nParts int, parentSchema *sqltypes.Schema,
	fn func(tc *TaskContext, partition int, in vector.BatchIter) (vector.BatchIter, error)) *IterRDD {
	return c.NewIterRDD(parent, nParts, func(tc *TaskContext, p int, in sqltypes.RowIter) (sqltypes.RowIter, error) {
		var bi vector.BatchIter
		if in != nil {
			bi = vector.AsBatchIter(in, parentSchema, vector.DefaultBatchSize)
		}
		out, err := fn(tc, p, bi)
		if err != nil {
			return nil, err
		}
		return vector.NewRowIter(out), nil
	})
}
