package rdd

import (
	"fmt"
	"runtime/debug"
)

// TaskPanicError is a panic recovered inside a partition task, shuffle map
// task, streaming merge or ingest drain: the panicking goroutine's stack
// is captured and the panic surfaces as an ordinary query-level error —
// the query fails cleanly, its shuffle outputs and cursor tickets are
// released, and the process plus every other in-flight query keep running.
type TaskPanicError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

// Error implements error, including the captured stack so the panic site
// is diagnosable from the query error alone.
func (e *TaskPanicError) Error() string {
	return fmt.Sprintf("rdd: task panicked: %v\n%s", e.Val, e.Stack)
}

// AsTaskPanic wraps a recovered panic value as a *TaskPanicError,
// capturing the current stack. An already-wrapped panic (a contained
// panic re-raised across a goroutine seam) passes through unchanged.
func AsTaskPanic(r any) error {
	if tp, ok := r.(*TaskPanicError); ok {
		return tp
	}
	return &TaskPanicError{Val: r, Stack: debug.Stack()}
}

// containPanic is the deferred guard every task-running seam installs:
// a panic below it becomes the function's returned error.
func containPanic(errp *error) {
	if r := recover(); r != nil {
		*errp = AsTaskPanic(r)
	}
}
