package bench

import (
	"fmt"
	"runtime"
	"time"

	"indexeddf"
)

// SortReport compares the batch sort pipeline against the row SortExec on
// one ORDER BY-heavy workload: a full sort of the table and the top-n
// flavor (ORDER BY ... LIMIT n, which the vectorized planner fuses into
// bounded per-partition heaps). Same query, same data; the only
// difference is Config.DisableVectorized. Alloc columns are per-query
// heap deltas — the row sort's boxed key rows and drained []Row are the
// bytes the batch path never allocates.
type SortReport struct {
	Rows      int           `json:"rows"`
	TopN      int           `json:"top_n"`
	BatchSort time.Duration `json:"sort_batch_ns"`
	RowSort   time.Duration `json:"sort_row_ns"`
	BatchTopN time.Duration `json:"topn_batch_ns"`
	RowTopN   time.Duration `json:"topn_row_ns"`

	BatchSortAllocs int64 `json:"sort_batch_alloc_bytes"`
	RowSortAllocs   int64 `json:"sort_row_alloc_bytes"`
	BatchTopNAllocs int64 `json:"topn_batch_alloc_bytes"`
	RowTopNAllocs   int64 `json:"topn_row_alloc_bytes"`
}

// SortSpeedup returns row/batch wall time for the full sort.
func (r SortReport) SortSpeedup() float64 {
	if r.BatchSort <= 0 {
		return 0
	}
	return float64(r.RowSort) / float64(r.BatchSort)
}

// TopNSpeedup returns row/batch wall time for ORDER BY ... LIMIT n.
func (r SortReport) TopNSpeedup() float64 {
	if r.BatchTopN <= 0 {
		return 0
	}
	return float64(r.RowTopN) / float64(r.BatchTopN)
}

// SortOrderBy measures `SELECT k, v FROM t ORDER BY v, k` (full sort,
// drained) and `... LIMIT topN` over rows rows through both engines,
// returning median wall times and per-query alloc bytes. Results are
// cross-checked between the engines before timing.
func SortOrderBy(rows, topN, iters int) (SortReport, error) {
	if iters < 1 {
		iters = 1
	}
	mk := func(rowEngine bool) (*indexeddf.Session, error) {
		sess := indexeddf.NewSession(indexeddf.Config{DisableVectorized: rowEngine})
		schema := indexeddf.NewSchema(
			indexeddf.Field{Name: "k", Type: indexeddf.Int64},
			indexeddf.Field{Name: "v", Type: indexeddf.Int64},
		)
		data := make([]indexeddf.Row, rows)
		for i := range data {
			// A pseudo-random permutation with heavy ties on v.
			data[i] = indexeddf.R(int64((i*2654435761)%rows), int64(i%65536))
		}
		df, err := sess.CreateTable("t", schema, data)
		if err != nil {
			return nil, err
		}
		if _, err := df.Cache(); err != nil {
			return nil, err
		}
		return sess, nil
	}
	sortQ := "SELECT k, v FROM t ORDER BY v, k"
	topNQ := fmt.Sprintf("%s LIMIT %d", sortQ, topN)
	run := func(sess *indexeddf.Session, q string) ([]indexeddf.Row, error) {
		df, err := sess.SQL(q)
		if err != nil {
			return nil, err
		}
		return df.Collect()
	}
	measure := func(sess *indexeddf.Session, q string) (time.Duration, int64, error) {
		if _, err := run(sess, q); err != nil { // warm (cache build, kernels)
			return 0, 0, err
		}
		times := make([]time.Duration, iters)
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := run(sess, q); err != nil {
				return 0, 0, err
			}
			times[i] = time.Since(start)
		}
		runtime.ReadMemStats(&ms1)
		allocs := int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters)
		return median(times), allocs, nil
	}

	batchSess, err := mk(false)
	if err != nil {
		return SortReport{}, err
	}
	rowSess, err := mk(true)
	if err != nil {
		return SortReport{}, err
	}
	// Sanity: both engines agree — exact order, both flavors — before
	// anything is timed.
	for _, q := range []string{topNQ, sortQ} {
		br, err := run(batchSess, q)
		if err != nil {
			return SortReport{}, err
		}
		rr, err := run(rowSess, q)
		if err != nil {
			return SortReport{}, err
		}
		if len(br) != len(rr) {
			return SortReport{}, fmt.Errorf("bench: engines disagree on %q (%d vs %d rows)", q, len(br), len(rr))
		}
		step := 1
		if len(br) > 10_000 {
			step = len(br) / 10_000
		}
		for i := 0; i < len(br); i += step {
			if br[i].String() != rr[i].String() {
				return SortReport{}, fmt.Errorf("bench: engines disagree on %q at row %d (%s vs %s)",
					q, i, br[i], rr[i])
			}
		}
	}
	r := SortReport{Rows: rows, TopN: topN}
	if r.BatchSort, r.BatchSortAllocs, err = measure(batchSess, sortQ); err != nil {
		return SortReport{}, err
	}
	if r.RowSort, r.RowSortAllocs, err = measure(rowSess, sortQ); err != nil {
		return SortReport{}, err
	}
	if r.BatchTopN, r.BatchTopNAllocs, err = measure(batchSess, topNQ); err != nil {
		return SortReport{}, err
	}
	if r.RowTopN, r.RowTopNAllocs, err = measure(rowSess, topNQ); err != nil {
		return SortReport{}, err
	}
	return r, nil
}
