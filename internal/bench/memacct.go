package bench

import (
	"fmt"
	"runtime"
	"time"

	"indexeddf"
)

// MemAcctReport quantifies what hierarchical memory accounting costs on a
// shuffle-heavy aggregate+sort pipeline: identical query, identical data,
// one session with budgets enabled (generous limits, so nothing trips and
// every operator pays the full Reserve/Release path) and one without (no
// limits configured — queries never get a tracker, the zero-overhead
// path). The gate keeps the accounted run within the regression thresholds
// of the bare one.
type MemAcctReport struct {
	Rows       int           `json:"rows"`
	Groups     int           `json:"groups"`
	AcctTime   time.Duration `json:"acct_ns"`
	BareTime   time.Duration `json:"bare_ns"`
	AcctAllocs int64         `json:"acct_alloc_bytes"`
	BareAllocs int64         `json:"bare_alloc_bytes"`
	ResultRows int           `json:"result_rows"`
}

// Overhead returns acct/bare wall time (1.0 = accounting is free).
func (r MemAcctReport) Overhead() float64 {
	if r.BareTime <= 0 {
		return 0
	}
	return float64(r.AcctTime) / float64(r.BareTime)
}

// MemAcctPipeline measures `SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k
// ORDER BY total DESC LIMIT 100` — scan, hash aggregate, columnar
// exchange, top-n: every operator that charges the tracker — over rows
// rows and groups distinct keys, with and without memory budgets.
func MemAcctPipeline(rows, groups, iters int) (MemAcctReport, error) {
	if iters < 1 {
		iters = 1
	}
	mk := func(accounted bool) (*indexeddf.Session, error) {
		cfg := indexeddf.Config{}
		if accounted {
			// Generous budgets: the point is the accounting cost, not the
			// limit — nothing here may trip.
			cfg.MemoryLimit = 4 << 30
			cfg.QueryMemoryLimit = 2 << 30
		}
		sess := indexeddf.NewSession(cfg)
		schema := indexeddf.NewSchema(
			indexeddf.Field{Name: "k", Type: indexeddf.Int64},
			indexeddf.Field{Name: "v", Type: indexeddf.Int64},
		)
		data := make([]indexeddf.Row, rows)
		for i := range data {
			data[i] = indexeddf.R(int64(i%groups), int64(i))
		}
		df, err := sess.CreateTable("t", schema, data)
		if err != nil {
			return nil, err
		}
		if _, err := df.Cache(); err != nil {
			return nil, err
		}
		return sess, nil
	}
	const query = "SELECT k, COUNT(*) AS cnt, SUM(v) AS total FROM t GROUP BY k ORDER BY total DESC, k LIMIT 100"
	run := func(sess *indexeddf.Session) (int, error) {
		df, err := sess.SQL(query)
		if err != nil {
			return 0, err
		}
		out, err := df.Collect()
		if err != nil {
			return 0, err
		}
		return len(out), nil
	}
	measure := func(sess *indexeddf.Session) (time.Duration, int64, int, error) {
		n, err := run(sess)
		if err != nil {
			return 0, 0, 0, err
		}
		times := make([]time.Duration, iters)
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := run(sess); err != nil {
				return 0, 0, 0, err
			}
			times[i] = time.Since(start)
		}
		runtime.ReadMemStats(&ms1)
		allocs := int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters)
		return median(times), allocs, n, nil
	}

	acctSess, err := mk(true)
	if err != nil {
		return MemAcctReport{}, err
	}
	bareSess, err := mk(false)
	if err != nil {
		return MemAcctReport{}, err
	}
	an, err := run(acctSess)
	if err != nil {
		return MemAcctReport{}, err
	}
	bn, err := run(bareSess)
	if err != nil {
		return MemAcctReport{}, err
	}
	if an != bn {
		return MemAcctReport{}, fmt.Errorf("bench: accounted and bare runs disagree (%d vs %d rows)", an, bn)
	}
	acctTime, acctAllocs, n, err := measure(acctSess)
	if err != nil {
		return MemAcctReport{}, err
	}
	bareTime, bareAllocs, _, err := measure(bareSess)
	if err != nil {
		return MemAcctReport{}, err
	}
	return MemAcctReport{
		Rows:       rows,
		Groups:     groups,
		AcctTime:   acctTime,
		BareTime:   bareTime,
		AcctAllocs: acctAllocs,
		BareAllocs: bareAllocs,
		ResultRows: n,
	}, nil
}
