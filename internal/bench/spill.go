package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"indexeddf"
)

// SpillReport quantifies what going out of core costs: the same full-sort
// and shuffle GROUP BY pipelines run unconstrained in memory and under a
// budget roughly a tenth of the working set with a SpillDir, forcing the
// spill fabric to carry the difference. The gate tracks both paths — the
// in-memory numbers pin the fast path, the spill numbers pin the run-file
// format and the external merge.
type SpillReport struct {
	Rows   int   `json:"rows"`
	Groups int   `json:"groups"`
	Budget int64 `json:"budget_bytes"`

	SortSpill       time.Duration `json:"sort_spill_ns"`
	SortInMem       time.Duration `json:"sort_inmem_ns"`
	SortSpillAllocs int64         `json:"sort_spill_alloc_bytes"`
	SortInMemAllocs int64         `json:"sort_inmem_alloc_bytes"`
	SortRuns        int64         `json:"sort_spill_runs"`
	SortBytes       int64         `json:"sort_spill_bytes"`
	SortResultRows  int           `json:"sort_result_rows"`

	AggSpill       time.Duration `json:"agg_spill_ns"`
	AggInMem       time.Duration `json:"agg_inmem_ns"`
	AggSpillAllocs int64         `json:"agg_spill_alloc_bytes"`
	AggInMemAllocs int64         `json:"agg_inmem_alloc_bytes"`
	AggRuns        int64         `json:"agg_spill_runs"`
	AggBytes       int64         `json:"agg_spill_bytes"`
	AggResultRows  int           `json:"agg_result_rows"`

	// Parallel-merge ablation: the same over-budget sort with
	// SortPartitions=1 (the single k-way merge the range-partitioned
	// parallel merge replaced). SortSpill above IS the parallel merge.
	SortSingle       time.Duration `json:"sort_singlemerge_ns"`
	SortSingleAllocs int64         `json:"sort_singlemerge_alloc_bytes"`

	// Spilling hash aggregate: a GROUP BY whose group table itself (not
	// just the exchange) outgrows the budget and fans out to disk.
	AggOvfSpill       time.Duration `json:"aggtable_spill_ns"`
	AggOvfInMem       time.Duration `json:"aggtable_inmem_ns"`
	AggOvfSpillAllocs int64         `json:"aggtable_spill_alloc_bytes"`
	AggOvfInMemAllocs int64         `json:"aggtable_inmem_alloc_bytes"`
	AggOvfRuns        int64         `json:"aggtable_spill_runs"`
	AggOvfBytes       int64         `json:"aggtable_spill_bytes"`

	// Grace hash join: a shuffle join whose build side outgrows the
	// budget, fanning both sides into partition pairs joined one at a
	// time.
	GraceSpill       time.Duration `json:"grace_spill_ns"`
	GraceInMem       time.Duration `json:"grace_inmem_ns"`
	GraceSpillAllocs int64         `json:"grace_spill_alloc_bytes"`
	GraceInMemAllocs int64         `json:"grace_inmem_alloc_bytes"`
	GraceRuns        int64         `json:"grace_spill_runs"`
	GraceBytes       int64         `json:"grace_spill_bytes"`
}

// SortSlowdown returns spill/in-memory wall time for the full sort.
func (r SpillReport) SortSlowdown() float64 {
	if r.SortInMem <= 0 {
		return 0
	}
	return float64(r.SortSpill) / float64(r.SortInMem)
}

// AggSlowdown returns spill/in-memory wall time for the shuffle GROUP BY.
func (r SpillReport) AggSlowdown() float64 {
	if r.AggInMem <= 0 {
		return 0
	}
	return float64(r.AggSpill) / float64(r.AggInMem)
}

// ParallelSpeedup returns single-merge/parallel-merge wall time for the
// over-budget sort (>1 means the range-partitioned merge wins).
func (r SpillReport) ParallelSpeedup() float64 {
	if r.SortSpill <= 0 {
		return 0
	}
	return float64(r.SortSingle) / float64(r.SortSpill)
}

// AggOvfSlowdown returns spill/in-memory wall time for the GROUP BY whose
// group table overflows.
func (r SpillReport) AggOvfSlowdown() float64 {
	if r.AggOvfInMem <= 0 {
		return 0
	}
	return float64(r.AggOvfSpill) / float64(r.AggOvfInMem)
}

// GraceSlowdown returns spill/in-memory wall time for the grace join.
func (r SpillReport) GraceSlowdown() float64 {
	if r.GraceInMem <= 0 {
		return 0
	}
	return float64(r.GraceSpill) / float64(r.GraceInMem)
}

// SpillPipeline measures a full ORDER BY and a shuffle GROUP BY over rows
// rows (fat string payloads, groups distinct keys) twice: unconstrained,
// and under budget bytes with spilling enabled. Both runs must agree on
// the result cardinality and the constrained run must actually spill.
func SpillPipeline(rows, groups int, budget int64, iters int) (SpillReport, error) {
	if iters < 1 {
		iters = 1
	}
	dir, err := os.MkdirTemp("", "indexeddf-bench-spill")
	if err != nil {
		return SpillReport{}, err
	}
	defer os.RemoveAll(dir)

	// Many narrow table partitions keep the unspillable per-task aggregate
	// tables small while multiplying the shuffled partial results the
	// fabric has to absorb. BroadcastThreshold 1 forces the join workload
	// through the shuffle hash join (whose build side is what goes grace).
	base := indexeddf.Config{TablePartitions: 64, ShufflePartitions: 4, Parallelism: 2,
		BroadcastThreshold: 1}
	mk := func(constrained bool, sortPartitions int) (*indexeddf.Session, error) {
		cfg := base
		cfg.SortPartitions = sortPartitions
		if constrained {
			cfg.QueryMemoryLimit = budget
			cfg.SpillDir = dir
		}
		sess := indexeddf.NewSession(cfg)
		schema := indexeddf.NewSchema(
			indexeddf.Field{Name: "k", Type: indexeddf.Int64},
			indexeddf.Field{Name: "v", Type: indexeddf.Int64},
			indexeddf.Field{Name: "pad", Type: indexeddf.String},
		)
		pad := strings.Repeat("x", 48)
		data := make([]indexeddf.Row, rows)
		for i := range data {
			data[i] = indexeddf.R(int64(i%groups), int64(i), fmt.Sprintf("%s-%08d", pad, i%groups))
		}
		if _, err := sess.CreateTable("t", schema, data); err != nil {
			return nil, err
		}
		// Join build side: rows/2 fat rows whose keys hit t.v with 5
		// duplicates each — per reduce co-partition it overflows the
		// budget, so the constrained join goes grace.
		bdata := make([]indexeddf.Row, rows/2)
		for i := range bdata {
			bdata[i] = indexeddf.R(int64(i%(rows/10)), int64(i), fmt.Sprintf("%s-%08d", pad, i))
		}
		if _, err := sess.CreateTable("b", schema, bdata); err != nil {
			return nil, err
		}
		return sess, nil
	}

	sortQ := "SELECT k, v, pad FROM t ORDER BY v, k"
	aggQ := "SELECT k, COUNT(*) AS cnt, SUM(v) AS total, MIN(pad) AS p FROM t GROUP BY k"
	// Every v is distinct, so the group table holds one entry per input
	// row — far over any budget — while HAVING keeps the output empty.
	aggOvfQ := "SELECT v, COUNT(*) AS c FROM t GROUP BY v HAVING COUNT(*) > 1"
	graceQ := "SELECT COUNT(*) AS c, SUM(t.k) AS sk FROM t JOIN b ON t.v = b.k"

	// run drains the cursor (the sort output streams — no gather) and
	// returns row count plus the query's spill totals.
	run := func(sess *indexeddf.Session, q string) (int, int64, int64, error) {
		cur, err := sess.Query(context.Background(), q)
		if err != nil {
			return 0, 0, 0, err
		}
		n := 0
		for cur.Next() {
			n++
		}
		if err := cur.Err(); err != nil {
			return 0, 0, 0, err
		}
		qs := cur.Stats()
		return n, qs.SpillRuns(), qs.SpillBytes(), nil
	}
	measure := func(sess *indexeddf.Session, q string) (time.Duration, int64, error) {
		times := make([]time.Duration, iters)
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, _, _, err := run(sess, q); err != nil {
				return 0, 0, err
			}
			times[i] = time.Since(start)
		}
		runtime.ReadMemStats(&ms1)
		return median(times), int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters), nil
	}

	inMem, err := mk(false, 0)
	if err != nil {
		return SpillReport{}, err
	}
	spillSess, err := mk(true, 0)
	if err != nil {
		return SpillReport{}, err
	}
	defer spillSess.Close()
	singleSess, err := mk(true, 1)
	if err != nil {
		return SpillReport{}, err
	}
	defer singleSess.Close()

	r := SpillReport{Rows: rows, Groups: groups, Budget: budget}
	for _, w := range []struct {
		q      string
		runs   *int64
		bytes  *int64
		n      *int
		spillT *time.Duration
		inmemT *time.Duration
		spillA *int64
		inmemA *int64
	}{
		{sortQ, &r.SortRuns, &r.SortBytes, &r.SortResultRows, &r.SortSpill, &r.SortInMem, &r.SortSpillAllocs, &r.SortInMemAllocs},
		{aggQ, &r.AggRuns, &r.AggBytes, &r.AggResultRows, &r.AggSpill, &r.AggInMem, &r.AggSpillAllocs, &r.AggInMemAllocs},
	} {
		wantN, _, _, err := run(inMem, w.q)
		if err != nil {
			return SpillReport{}, err
		}
		gotN, runs, bytes, err := run(spillSess, w.q)
		if err != nil {
			return SpillReport{}, err
		}
		if gotN != wantN {
			return SpillReport{}, fmt.Errorf("bench: spill and in-memory runs disagree (%d vs %d rows): %s", gotN, wantN, w.q)
		}
		if runs == 0 {
			return SpillReport{}, fmt.Errorf("bench: constrained run did not spill (budget %d too generous): %s", budget, w.q)
		}
		*w.runs, *w.bytes, *w.n = runs, bytes, wantN
		if *w.spillT, *w.spillA, err = measure(spillSess, w.q); err != nil {
			return SpillReport{}, err
		}
		if *w.inmemT, *w.inmemA, err = measure(inMem, w.q); err != nil {
			return SpillReport{}, err
		}
	}

	// Ablation: the identical over-budget sort through the single k-way
	// merge instead of the range-partitioned parallel merge.
	if n, _, _, err := run(singleSess, sortQ); err != nil {
		return SpillReport{}, err
	} else if n != r.SortResultRows {
		return SpillReport{}, fmt.Errorf("bench: single-merge sort returned %d rows, parallel %d", n, r.SortResultRows)
	}
	if r.SortSingle, r.SortSingleAllocs, err = measure(singleSess, sortQ); err != nil {
		return SpillReport{}, err
	}

	// The two new out-of-core operator paths: group-table overflow and
	// the grace join.
	for _, w := range []struct {
		q              string
		runs, bytes    *int64
		spillT, inmemT *time.Duration
		spillA, inmemA *int64
	}{
		{aggOvfQ, &r.AggOvfRuns, &r.AggOvfBytes, &r.AggOvfSpill, &r.AggOvfInMem, &r.AggOvfSpillAllocs, &r.AggOvfInMemAllocs},
		{graceQ, &r.GraceRuns, &r.GraceBytes, &r.GraceSpill, &r.GraceInMem, &r.GraceSpillAllocs, &r.GraceInMemAllocs},
	} {
		wantN, _, _, err := run(inMem, w.q)
		if err != nil {
			return SpillReport{}, err
		}
		gotN, runs, bytes, err := run(spillSess, w.q)
		if err != nil {
			return SpillReport{}, err
		}
		if gotN != wantN {
			return SpillReport{}, fmt.Errorf("bench: spill and in-memory runs disagree (%d vs %d rows): %s", gotN, wantN, w.q)
		}
		if runs == 0 {
			return SpillReport{}, fmt.Errorf("bench: constrained run did not spill (budget %d too generous): %s", budget, w.q)
		}
		*w.runs, *w.bytes = runs, bytes
		if *w.spillT, *w.spillA, err = measure(spillSess, w.q); err != nil {
			return SpillReport{}, err
		}
		if *w.inmemT, *w.inmemA, err = measure(inMem, w.q); err != nil {
			return SpillReport{}, err
		}
	}
	return r, nil
}
