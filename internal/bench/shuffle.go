package bench

import (
	"fmt"
	"runtime"
	"time"

	"indexeddf"
)

// ShuffleReport compares the batch (columnar) exchange against the row
// exchange on one shuffle-heavy GROUP BY: same query, same data, the only
// difference is Config.DisableVectorized. Alloc columns are per-query
// heap deltas (runtime.MemStats.TotalAlloc), the metric the row exchange
// loses on first — every exchanged row used to be materialized twice.
type ShuffleReport struct {
	Rows        int           `json:"rows"`
	Groups      int           `json:"groups"`
	BatchTime   time.Duration `json:"batch_ns"`
	RowTime     time.Duration `json:"row_ns"`
	BatchAllocs int64         `json:"batch_alloc_bytes"`
	RowAllocs   int64         `json:"row_alloc_bytes"`
	ResultRows  int           `json:"result_rows"`
}

// Speedup returns row/batch wall time.
func (r ShuffleReport) Speedup() float64 {
	if r.BatchTime <= 0 {
		return 0
	}
	return float64(r.RowTime) / float64(r.BatchTime)
}

// AllocRatio returns row/batch allocated bytes.
func (r ShuffleReport) AllocRatio() float64 {
	if r.BatchAllocs <= 0 {
		return 0
	}
	return float64(r.RowAllocs) / float64(r.BatchAllocs)
}

// ShuffleGroupBy measures `SELECT k, COUNT(*), SUM(v), AVG(v) FROM t
// GROUP BY k` over rows rows and groups distinct keys through both
// exchanges, returning the median wall time and per-query alloc bytes of
// each. Results are cross-checked between the engines before timing.
func ShuffleGroupBy(rows, groups, iters int) (ShuffleReport, error) {
	if iters < 1 {
		iters = 1
	}
	mk := func(rowEngine bool) (*indexeddf.Session, error) {
		sess := indexeddf.NewSession(indexeddf.Config{DisableVectorized: rowEngine})
		schema := indexeddf.NewSchema(
			indexeddf.Field{Name: "k", Type: indexeddf.Int64},
			indexeddf.Field{Name: "v", Type: indexeddf.Int64},
		)
		data := make([]indexeddf.Row, rows)
		for i := range data {
			data[i] = indexeddf.R(int64(i%groups), int64(i))
		}
		df, err := sess.CreateTable("t", schema, data)
		if err != nil {
			return nil, err
		}
		if _, err := df.Cache(); err != nil {
			return nil, err
		}
		return sess, nil
	}
	const query = "SELECT k, COUNT(*) AS cnt, SUM(v) AS total, AVG(v) AS mean FROM t GROUP BY k"
	run := func(sess *indexeddf.Session) (int, error) {
		df, err := sess.SQL(query)
		if err != nil {
			return 0, err
		}
		out, err := df.Collect()
		if err != nil {
			return 0, err
		}
		return len(out), nil
	}
	measure := func(sess *indexeddf.Session) (time.Duration, int64, int, error) {
		// Warm once (builds the columnar cache lazily).
		n, err := run(sess)
		if err != nil {
			return 0, 0, 0, err
		}
		times := make([]time.Duration, iters)
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := run(sess); err != nil {
				return 0, 0, 0, err
			}
			times[i] = time.Since(start)
		}
		runtime.ReadMemStats(&ms1)
		allocs := int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters)
		return median(times), allocs, n, nil
	}

	batchSess, err := mk(false)
	if err != nil {
		return ShuffleReport{}, err
	}
	rowSess, err := mk(true)
	if err != nil {
		return ShuffleReport{}, err
	}
	// Sanity: both exchanges agree before anything is timed.
	bn, err := run(batchSess)
	if err != nil {
		return ShuffleReport{}, err
	}
	rn, err := run(rowSess)
	if err != nil {
		return ShuffleReport{}, err
	}
	if bn != rn {
		return ShuffleReport{}, fmt.Errorf("bench: exchanges disagree (%d vs %d groups)", bn, rn)
	}
	batchTime, batchAllocs, n, err := measure(batchSess)
	if err != nil {
		return ShuffleReport{}, err
	}
	rowTime, rowAllocs, _, err := measure(rowSess)
	if err != nil {
		return ShuffleReport{}, err
	}
	return ShuffleReport{
		Rows:        rows,
		Groups:      groups,
		BatchTime:   batchTime,
		RowTime:     rowTime,
		BatchAllocs: batchAllocs,
		RowAllocs:   rowAllocs,
		ResultRows:  n,
	}, nil
}
