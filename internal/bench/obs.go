package bench

import (
	"fmt"
	"runtime"
	"time"

	"indexeddf"
)

// ObsReport quantifies what per-operator observability costs on a
// shuffle-heavy aggregate+sort pipeline: identical query, identical data,
// one session with instrumentation enabled (the default — every operator
// records rows, batches, sampled wall time, and each query carries a stats
// object and trace events) and one with Config.DisableObservability (the
// zero-overhead path: nil collectors, wrappers return their input
// unchanged). The gate keeps the instrumented run within the regression
// thresholds of the bare one.
type ObsReport struct {
	Rows       int           `json:"rows"`
	Groups     int           `json:"groups"`
	ObsTime    time.Duration `json:"obs_ns"`
	BareTime   time.Duration `json:"bare_ns"`
	ObsAllocs  int64         `json:"obs_alloc_bytes"`
	BareAllocs int64         `json:"bare_alloc_bytes"`
	ResultRows int           `json:"result_rows"`
}

// Overhead returns obs/bare wall time (1.0 = instrumentation is free).
func (r ObsReport) Overhead() float64 {
	if r.BareTime <= 0 {
		return 0
	}
	return float64(r.ObsTime) / float64(r.BareTime)
}

// ObsPipeline measures `SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k
// ORDER BY total DESC LIMIT 100` — scan, hash aggregate, columnar
// exchange, top-n: a long operator chain where every stage records stats —
// over rows rows and groups distinct keys, with and without observability.
func ObsPipeline(rows, groups, iters int) (ObsReport, error) {
	if iters < 1 {
		iters = 1
	}
	mk := func(disabled bool) (*indexeddf.Session, error) {
		sess := indexeddf.NewSession(indexeddf.Config{DisableObservability: disabled})
		schema := indexeddf.NewSchema(
			indexeddf.Field{Name: "k", Type: indexeddf.Int64},
			indexeddf.Field{Name: "v", Type: indexeddf.Int64},
		)
		data := make([]indexeddf.Row, rows)
		for i := range data {
			data[i] = indexeddf.R(int64(i%groups), int64(i))
		}
		df, err := sess.CreateTable("t", schema, data)
		if err != nil {
			return nil, err
		}
		if _, err := df.Cache(); err != nil {
			return nil, err
		}
		return sess, nil
	}
	const query = "SELECT k, COUNT(*) AS cnt, SUM(v) AS total FROM t GROUP BY k ORDER BY total DESC, k LIMIT 100"
	run := func(sess *indexeddf.Session) (int, error) {
		df, err := sess.SQL(query)
		if err != nil {
			return 0, err
		}
		out, err := df.Collect()
		if err != nil {
			return 0, err
		}
		return len(out), nil
	}
	measure := func(sess *indexeddf.Session) (time.Duration, int64, int, error) {
		n, err := run(sess)
		if err != nil {
			return 0, 0, 0, err
		}
		times := make([]time.Duration, iters)
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := run(sess); err != nil {
				return 0, 0, 0, err
			}
			times[i] = time.Since(start)
		}
		runtime.ReadMemStats(&ms1)
		allocs := int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters)
		return median(times), allocs, n, nil
	}

	obsSess, err := mk(false)
	if err != nil {
		return ObsReport{}, err
	}
	bareSess, err := mk(true)
	if err != nil {
		return ObsReport{}, err
	}
	on, err := run(obsSess)
	if err != nil {
		return ObsReport{}, err
	}
	bn, err := run(bareSess)
	if err != nil {
		return ObsReport{}, err
	}
	if on != bn {
		return ObsReport{}, fmt.Errorf("bench: instrumented and bare runs disagree (%d vs %d rows)", on, bn)
	}
	obsTime, obsAllocs, n, err := measure(obsSess)
	if err != nil {
		return ObsReport{}, err
	}
	bareTime, bareAllocs, _, err := measure(bareSess)
	if err != nil {
		return ObsReport{}, err
	}
	return ObsReport{
		Rows:       rows,
		Groups:     groups,
		ObsTime:    obsTime,
		BareTime:   bareTime,
		ObsAllocs:  obsAllocs,
		BareAllocs: bareAllocs,
		ResultRows: n,
	}, nil
}
