package bench

import (
	"context"
	"fmt"
	"time"

	"indexeddf"
	"indexeddf/internal/sqltypes"
)

// PreparedLookup measures an indexed point lookup executed through a
// prepared statement — plan compiled once, `?` bound per call from the
// session's plan cache — against the same lookup through the
// parse-per-call Session.SQL path. Both run on one session over one
// indexed table, so the measured gap is exactly the compilation pipeline
// (parse → analyze → optimize → plan) the prepared path skips.
func PreparedLookup(baseRows, iters int) (Measurement, error) {
	sess := indexeddf.NewSession(indexeddf.Config{})
	schema := sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "score", Type: sqltypes.Int64},
	)
	df, err := sess.CreateIndexedTable("points", schema, 0)
	if err != nil {
		return Measurement{}, err
	}
	rows := make([]sqltypes.Row, baseRows)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), sqltypes.NewInt64(int64(i % 97))}
	}
	if _, err := df.AppendRowsSlice(rows); err != nil {
		return Measurement{}, err
	}

	ctx := context.Background()
	stmt, err := sess.Prepare("SELECT id, score FROM points WHERE id = ?")
	if err != nil {
		return Measurement{}, err
	}
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64((i * 6151) % baseRows) // deterministic spread
	}

	adhoc := func(key int64) ([]sqltypes.Row, error) {
		df, err := sess.SQL(fmt.Sprintf("SELECT id, score FROM points WHERE id = %d", key))
		if err != nil {
			return nil, err
		}
		return df.Collect()
	}

	// Sanity: identical results on every key before timing.
	for _, k := range keys {
		want, err := adhoc(k)
		if err != nil {
			return Measurement{}, err
		}
		got, err := stmt.Collect(ctx, k)
		if err != nil {
			return Measurement{}, err
		}
		if len(got) != len(want) {
			return Measurement{}, fmt.Errorf("bench: prepared and ad-hoc disagree on key %d (%d vs %d rows)", k, len(got), len(want))
		}
	}

	nOps := iters * len(keys)
	start := time.Now()
	for it := 0; it < iters; it++ {
		for _, k := range keys {
			if _, err := stmt.Collect(ctx, k); err != nil {
				return Measurement{}, err
			}
		}
	}
	prepared := time.Since(start) / time.Duration(nOps)

	start = time.Now()
	for it := 0; it < iters; it++ {
		for _, k := range keys {
			if _, err := adhoc(k); err != nil {
				return Measurement{}, err
			}
		}
	}
	perCall := time.Since(start) / time.Duration(nOps)

	return Measurement{
		Name:        fmt.Sprintf("point lookup %dk rows", baseRows/1000),
		IndexedTime: prepared, // prepared statement (plan cache)
		VanillaTime: perCall,  // parse-per-call Session.SQL
		IndexedRows: 1,
		VanillaRows: 1,
	}, nil
}
