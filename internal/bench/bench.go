// Package bench hosts the shared experiment harness that regenerates the
// paper's evaluation: Figure 2 (SQL operator microbenchmarks on
// person_knows_person, Indexed DataFrame vs vanilla) and Figure 3 (the
// seven SNB simple reads on both engines), plus the memory-overhead and
// append-latency claims and our ablations. Both `go test -bench` and
// cmd/benchrunner drive it.
package bench

import (
	"fmt"
	"sort"
	"time"

	"indexeddf"
	"indexeddf/internal/snb"
)

// Env is one loaded experiment environment: the same dataset in a vanilla
// session and an indexed session.
type Env struct {
	Dataset *snb.Dataset
	Vanilla *snb.Graph
	Indexed *snb.Graph
	Params  map[string][]int64
}

// EnvConfig parameterizes environment construction.
type EnvConfig struct {
	ScaleFactor float64
	Seed        int64
	// BroadcastThreshold configures both sessions. Figure 2 runs in the
	// paper's cluster regime where base tables are too large to broadcast
	// (threshold 1); Figure 3 uses the default.
	BroadcastThreshold int64
	// TablePartitions sets partition counts (default 4).
	TablePartitions int
	// DisableVectorized forces both engines onto the row-at-a-time path
	// (the BenchmarkVectorized* families compare against it).
	DisableVectorized bool
}

// NewEnv generates the dataset once and loads it into both engines.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 1
	}
	d := snb.Generate(snb.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	mk := func(indexed bool) (*snb.Graph, error) {
		sess := indexeddf.NewSession(indexeddf.Config{
			BroadcastThreshold: cfg.BroadcastThreshold,
			TablePartitions:    cfg.TablePartitions,
			DisableVectorized:  cfg.DisableVectorized,
		})
		return snb.Load(sess, d, indexed)
	}
	v, err := mk(false)
	if err != nil {
		return nil, err
	}
	ix, err := mk(true)
	if err != nil {
		return nil, err
	}
	return &Env{Dataset: d, Vanilla: v, Indexed: ix, Params: snb.DefaultParams(d, 8)}, nil
}

// Op is one benchmarked operation, runnable against either engine.
type Op struct {
	Name string
	Run  func(g *snb.Graph) (rows int, err error)
}

// Figure2Ops returns the paper's six SQL operators over
// person_knows_person (join against person), in figure order.
func Figure2Ops(e *Env) []Op {
	// Fixed, deterministic parameters derived from the dataset.
	eqKey := e.Dataset.Persons[len(e.Dataset.Persons)/3][0].Int64Val()
	// Range splitting knows roughly in half: median creationDate.
	midDate := e.Dataset.Knows[len(e.Dataset.Knows)/2][2]

	count := func(df *indexeddf.DataFrame) (int, error) {
		rows, err := df.Collect()
		return len(rows), err
	}
	knows := func(g *snb.Graph) *indexeddf.DataFrame {
		if g.Indexed {
			return g.KnowsByP1
		}
		return g.Knows
	}
	person := func(g *snb.Graph) *indexeddf.DataFrame {
		if g.Indexed {
			return g.PersonByID
		}
		return g.Person
	}
	return []Op{
		{Name: "Join", Run: func(g *snb.Graph) (int, error) {
			// knows JOIN person ON person1Id = person.id: the indexed
			// relation is the pre-built build side; vanilla shuffles.
			return count(knows(g).Join(person(g),
				indexeddf.Eq(indexeddf.Col("person1Id"), indexeddf.Col("person.id"))))
		}},
		{Name: "Filter", Run: func(g *snb.Graph) (int, error) {
			// Non-equality predicate: no index applies on either engine.
			return count(knows(g).Filter(
				indexeddf.Gt(indexeddf.Col("creationDate"), indexeddf.Lit(midDate))))
		}},
		{Name: "EqualityFilter", Run: func(g *snb.Graph) (int, error) {
			return count(knows(g).Filter(
				indexeddf.Eq(indexeddf.Col("person1Id"), indexeddf.Lit(eqKey))))
		}},
		{Name: "Aggregation", Run: func(g *snb.Graph) (int, error) {
			return count(knows(g).GroupBy("person1Id").Count())
		}},
		{Name: "Projection", Run: func(g *snb.Graph) (int, error) {
			return count(knows(g).SelectCols("person2Id"))
		}},
		{Name: "Scan", Run: func(g *snb.Graph) (int, error) {
			return count(knows(g))
		}},
	}
}

// Figure3Ops returns the seven SNB simple reads, each running its full
// parameter set.
func Figure3Ops(e *Env) []Op {
	var ops []Op
	for _, q := range snb.Queries() {
		q := q
		ids := e.Params[q.ParamKind]
		ops = append(ops, Op{Name: q.Name, Run: func(g *snb.Graph) (int, error) {
			total := 0
			for _, id := range ids {
				rows, err := q.Run(g, id)
				if err != nil {
					return total, fmt.Errorf("%s(%d): %w", q.Name, id, err)
				}
				total += len(rows)
			}
			return total, nil
		}})
	}
	return ops
}

// Measurement is one timed comparison row.
type Measurement struct {
	Name        string
	VanillaTime time.Duration
	IndexedTime time.Duration
	VanillaRows int
	IndexedRows int
}

// Speedup returns vanilla/indexed.
func (m Measurement) Speedup() float64 {
	if m.IndexedTime <= 0 {
		return 0
	}
	return float64(m.VanillaTime) / float64(m.IndexedTime)
}

// timeOp runs op `iters` times against g and returns the median duration
// (robust to GC pauses on small machines).
func timeOp(op Op, g *snb.Graph, iters int) (time.Duration, int, error) {
	if iters < 1 {
		iters = 1
	}
	// Warm up once (populates lazily built caches).
	rows, err := op.Run(g)
	if err != nil {
		return 0, rows, err
	}
	times := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if rows, err = op.Run(g); err != nil {
			return 0, rows, err
		}
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[iters/2], rows, nil
}

// Compare times each op on both engines.
func Compare(e *Env, ops []Op, iters int) ([]Measurement, error) {
	out := make([]Measurement, 0, len(ops))
	for _, op := range ops {
		vt, vr, err := timeOp(op, e.Vanilla, iters)
		if err != nil {
			return nil, fmt.Errorf("bench %s (vanilla): %w", op.Name, err)
		}
		it, ir, err := timeOp(op, e.Indexed, iters)
		if err != nil {
			return nil, fmt.Errorf("bench %s (indexed): %w", op.Name, err)
		}
		if vr != ir {
			return nil, fmt.Errorf("bench %s: engines disagree (%d vs %d rows)", op.Name, vr, ir)
		}
		out = append(out, Measurement{Name: op.Name, VanillaTime: vt, IndexedTime: it,
			VanillaRows: vr, IndexedRows: ir})
	}
	return out, nil
}

// MemoryReport quantifies the paper's memory-overhead claim: the indexed
// representation's bytes relative to the vanilla columnar cache.
type MemoryReport struct {
	ColumnarBytes   int64
	BatchBytes      int64 // reserved row-batch bytes
	DataBytes       int64 // encoded row payloads
	IndexBytes      int64 // Ctrie estimate
	IndexedCopies   int
	OverheadPerCopy float64 // (data+index) / columnar
}

// Memory computes the report for the knows table (the Figure 2 subject).
func Memory(e *Env) MemoryReport {
	var r MemoryReport
	if t, ok := e.Vanilla.Sess.LookupTable("knows"); ok {
		if ct, ok2 := t.(interface{ MemoryUsage() int64 }); ok2 {
			r.ColumnarBytes = ct.MemoryUsage()
		}
	}
	core := e.Indexed.KnowsByP1.IndexedCore()
	if core != nil {
		r.BatchBytes, r.DataBytes, r.IndexBytes = core.MemoryUsage()
	}
	r.IndexedCopies = 1
	if r.ColumnarBytes > 0 {
		r.OverheadPerCopy = float64(r.DataBytes+r.IndexBytes) / float64(r.ColumnarBytes)
	}
	return r
}
