package bench

import (
	"fmt"
	"sort"
	"time"

	"indexeddf"
)

// ViewMaintenance measures incremental view maintenance against full
// recomputation: a GROUP BY aggregate view over a base table of baseRows
// rows receives `iters` update batches of deltaRows appends (plus a few
// deletes); after each batch we time (a) the view's delta refresh and (b)
// a forced full recompute of an identical sibling view. The Measurement
// maps delta refresh to IndexedTime and full recompute to VanillaTime, so
// Speedup() reads "delta refresh is Nx faster than recomputing".
func ViewMaintenance(baseRows, deltaRows, iters int) (Measurement, error) {
	sess := indexeddf.NewSession(indexeddf.Config{})
	schema := indexeddf.NewSchema(
		indexeddf.Field{Name: "id", Type: indexeddf.Int64},
		indexeddf.Field{Name: "grp", Type: indexeddf.Int64},
		indexeddf.Field{Name: "val", Type: indexeddf.Int64},
	)
	df, err := sess.CreateIndexedTable("events", schema, 0)
	if err != nil {
		return Measurement{}, err
	}
	const groups = 128
	rows := make([]indexeddf.Row, 0, baseRows)
	for i := 0; i < baseRows; i++ {
		rows = append(rows, indexeddf.R(int64(i), int64(i%groups), int64(i)))
	}
	if _, err := df.AppendRowsSlice(rows); err != nil {
		return Measurement{}, err
	}

	const def = "SELECT grp, COUNT(*) AS cnt, SUM(val) AS total, AVG(val) AS mean FROM events GROUP BY grp"
	delta, err := sess.CreateMaterializedView("v_delta", def)
	if err != nil {
		return Measurement{}, err
	}
	full, err := sess.CreateMaterializedView("v_full", def)
	if err != nil {
		return Measurement{}, err
	}

	var deltaTimes, fullTimes []time.Duration
	next := int64(baseRows)
	for it := 0; it < iters; it++ {
		batch := make([]indexeddf.Row, 0, deltaRows)
		for i := 0; i < deltaRows; i++ {
			batch = append(batch, indexeddf.R(next, next%groups, next))
			next++
		}
		if _, err := df.AppendRowsSlice(batch); err != nil {
			return Measurement{}, err
		}
		df.IndexedCore().Delete(indexeddf.V(next - 1 - int64(deltaRows)/2))

		start := time.Now()
		if err := delta.Refresh(); err != nil {
			return Measurement{}, err
		}
		deltaTimes = append(deltaTimes, time.Since(start))

		start = time.Now()
		if err := full.Recompute(); err != nil {
			return Measurement{}, err
		}
		fullTimes = append(fullTimes, time.Since(start))
	}

	if delta.RowCount() != full.RowCount() {
		return Measurement{}, fmt.Errorf("bench: delta view has %d groups, full recompute %d",
			delta.RowCount(), full.RowCount())
	}
	return Measurement{
		Name:        fmt.Sprintf("view-refresh-%s-base", humanCount(baseRows)),
		IndexedTime: median(deltaTimes),
		VanillaTime: median(fullTimes),
		IndexedRows: int(delta.RowCount()),
	}, nil
}

func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func humanCount(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprint(n)
}
