package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"indexeddf"
)

// AdaptReport quantifies the runtime-adaptive filter cascade on a scan
// whose WHERE clause is written in the worst possible conjunct order: a
// lax, expensive string comparison first and a highly selective integer
// equality last. Three engines run the same query over the same data:
// the static fused kernel (adaptivity off), the adaptive cascade on the
// mis-ordered text, and the cascade on hand-ordered text (the oracle the
// adaptive engine should converge to). Statistics are disabled for all
// three so the planner leaves the written order alone — what is measured
// is purely the runtime reordering.
//
// It also measures what incremental statistics collection costs on the
// ingest path: the same append workload with stats accumulators on vs
// off.
type AdaptReport struct {
	Rows           int           `json:"rows"`
	StaticTime     time.Duration `json:"static_ns"`
	AdaptiveTime   time.Duration `json:"adaptive_ns"`
	HandTime       time.Duration `json:"hand_ns"`
	StaticAllocs   int64         `json:"static_alloc_bytes"`
	AdaptiveAllocs int64         `json:"adaptive_alloc_bytes"`
	HandAllocs     int64         `json:"hand_alloc_bytes"`
	ResultRows     int           `json:"result_rows"`
	IngestRows     int           `json:"ingest_rows"`
	IngestStats    time.Duration `json:"ingest_stats_ns"`
	IngestBare     time.Duration `json:"ingest_bare_ns"`
}

// Speedup returns static/adaptive wall time (how much the cascade's
// reordering buys over the fused kernel on mis-ordered input).
func (r AdaptReport) Speedup() float64 {
	if r.AdaptiveTime <= 0 {
		return 0
	}
	return float64(r.StaticTime) / float64(r.AdaptiveTime)
}

// HandGap returns adaptive/hand wall time (1.0 = the adaptive cascade on
// mis-ordered text matches the hand-ordered oracle).
func (r AdaptReport) HandGap() float64 {
	if r.HandTime <= 0 {
		return 0
	}
	return float64(r.AdaptiveTime) / float64(r.HandTime)
}

// IngestOverhead returns stats-on/stats-off ingest wall time (1.0 =
// incremental statistics are free).
func (r AdaptReport) IngestOverhead() float64 {
	if r.IngestBare <= 0 {
		return 0
	}
	return float64(r.IngestStats) / float64(r.IngestBare)
}

// AdaptiveFilter measures a rows-row scan under a four-conjunct filter
// whose written order is deliberately backwards — selectivities roughly
// 1.0 (string), 0.9, 0.5, 0.001 — with the static fused kernel, the
// adaptive cascade, and the cascade on hand-ordered text; plus the
// stats-on vs stats-off cost of appending ingestRows rows.
func AdaptiveFilter(rows, ingestRows, iters int) (AdaptReport, error) {
	if iters < 1 {
		iters = 1
	}
	schema := indexeddf.NewSchema(
		indexeddf.Field{Name: "s", Type: indexeddf.String},
		indexeddf.Field{Name: "a", Type: indexeddf.Int64},
		indexeddf.Field{Name: "b", Type: indexeddf.Int64},
		indexeddf.Field{Name: "c", Type: indexeddf.Int64},
	)
	rng := rand.New(rand.NewSource(7))
	data := make([]indexeddf.Row, rows)
	for i := range data {
		data[i] = indexeddf.R(
			fmt.Sprintf("tag-%d", i%16), // s <> 'none' keeps everything
			int64(rng.Intn(1000)),       // a < 900: ~0.9
			int64(rng.Intn(1000)),       // b < 500: ~0.5
			int64(rng.Intn(1000)),       // c = 7:   ~0.001
		)
	}
	mk := func(adaptive bool) (*indexeddf.Session, error) {
		sess := indexeddf.NewSession(indexeddf.Config{
			// Statistics off: the planner must not fix the conjunct order
			// for us — the runtime cascade (or its absence) is the subject.
			DisableStats:          true,
			DisableAdaptiveFilter: !adaptive,
		})
		df, err := sess.CreateTable("t", schema, data)
		if err != nil {
			return nil, err
		}
		if _, err := df.Cache(); err != nil {
			return nil, err
		}
		return sess, nil
	}
	const misOrdered = "SELECT a, c FROM t WHERE s <> 'none' AND a < 900 AND b < 500 AND c = 7"
	const handOrdered = "SELECT a, c FROM t WHERE c = 7 AND b < 500 AND a < 900 AND s <> 'none'"
	run := func(sess *indexeddf.Session, query string) (int, error) {
		df, err := sess.SQL(query)
		if err != nil {
			return 0, err
		}
		out, err := df.Collect()
		if err != nil {
			return 0, err
		}
		return len(out), nil
	}
	measure := func(sess *indexeddf.Session, query string) (time.Duration, int64, int, error) {
		n, err := run(sess, query) // warmup: compile + plan cache
		if err != nil {
			return 0, 0, 0, err
		}
		times := make([]time.Duration, iters)
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := run(sess, query); err != nil {
				return 0, 0, 0, err
			}
			times[i] = time.Since(start)
		}
		runtime.ReadMemStats(&ms1)
		allocs := int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters)
		return median(times), allocs, n, nil
	}

	staticSess, err := mk(false)
	if err != nil {
		return AdaptReport{}, err
	}
	adaptiveSess, err := mk(true)
	if err != nil {
		return AdaptReport{}, err
	}
	sn, err := run(staticSess, misOrdered)
	if err != nil {
		return AdaptReport{}, err
	}
	an, err := run(adaptiveSess, misOrdered)
	if err != nil {
		return AdaptReport{}, err
	}
	hn, err := run(adaptiveSess, handOrdered)
	if err != nil {
		return AdaptReport{}, err
	}
	if sn != an || sn != hn {
		return AdaptReport{}, fmt.Errorf("bench: engines disagree (static %d, adaptive %d, hand %d rows)", sn, an, hn)
	}
	staticTime, staticAllocs, n, err := measure(staticSess, misOrdered)
	if err != nil {
		return AdaptReport{}, err
	}
	adaptiveTime, adaptiveAllocs, _, err := measure(adaptiveSess, misOrdered)
	if err != nil {
		return AdaptReport{}, err
	}
	handTime, handAllocs, _, err := measure(adaptiveSess, handOrdered)
	if err != nil {
		return AdaptReport{}, err
	}

	ingestStats, ingestBare, err := measureIngest(schema, ingestRows, iters)
	if err != nil {
		return AdaptReport{}, err
	}
	return AdaptReport{
		Rows:           rows,
		StaticTime:     staticTime,
		AdaptiveTime:   adaptiveTime,
		HandTime:       handTime,
		StaticAllocs:   staticAllocs,
		AdaptiveAllocs: adaptiveAllocs,
		HandAllocs:     handAllocs,
		ResultRows:     n,
		IngestRows:     ingestRows,
		IngestStats:    ingestStats,
		IngestBare:     ingestBare,
	}, nil
}

// measureIngest appends rows rows in 1k batches to a fresh indexed table,
// with incremental statistics accumulators on vs off, and returns the
// median wall time of each.
func measureIngest(schema *indexeddf.Schema, rows, iters int) (withStats, bare time.Duration, err error) {
	const batch = 1_000
	data := make([]indexeddf.Row, rows)
	for i := range data {
		// Unique key column (the table is indexed on `a`) so every append
		// inserts rather than overwrites.
		data[i] = indexeddf.R(fmt.Sprintf("tag-%d", i%16), int64(i), int64((i*7)%1000), int64((i*13)%1000))
	}
	one := func(stats bool) (time.Duration, error) {
		sess := indexeddf.NewSession(indexeddf.Config{DisableStats: !stats})
		df, err := sess.CreateIndexedTable("ingest", schema, 1)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for off := 0; off < len(data); off += batch {
			end := off + batch
			if end > len(data) {
				end = len(data)
			}
			if _, err := df.AppendRowsSlice(data[off:end]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	runAll := func(stats bool) (time.Duration, error) {
		if _, err := one(stats); err != nil { // warmup
			return 0, err
		}
		times := make([]time.Duration, iters)
		for i := range times {
			d, err := one(stats)
			if err != nil {
				return 0, err
			}
			times[i] = d
		}
		return median(times), nil
	}
	if withStats, err = runAll(true); err != nil {
		return 0, 0, err
	}
	if bare, err = runAll(false); err != nil {
		return 0, 0, err
	}
	return withStats, bare, nil
}
