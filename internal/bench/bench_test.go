package bench

import (
	"testing"
)

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv(EnvConfig{ScaleFactor: 0.05, Seed: 2, TablePartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvLoadsBothEngines(t *testing.T) {
	e := tinyEnv(t)
	if e.Vanilla.Indexed || !e.Indexed.Indexed {
		t.Fatal("engine flags wrong")
	}
	if len(e.Params["person"]) == 0 || len(e.Params["message"]) == 0 {
		t.Fatalf("params empty: %v", e.Params)
	}
	vc, err := e.Vanilla.Knows.Count()
	if err != nil {
		t.Fatal(err)
	}
	ic, err := e.Indexed.KnowsByP1.Count()
	if err != nil {
		t.Fatal(err)
	}
	if vc != ic || vc == 0 {
		t.Fatalf("row counts differ: %d vs %d", vc, ic)
	}
}

// TestCompareEnforcesResultAgreement is the harness's own safety property:
// a measurement is only produced when both engines return the same row
// count, so the published tables cannot compare unequal work.
func TestCompareEnforcesResultAgreement(t *testing.T) {
	e := tinyEnv(t)
	ms, err := Compare(e, Figure2Ops(e), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Fatalf("figure 2 rows = %d", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
		if m.VanillaRows != m.IndexedRows {
			t.Fatalf("%s: rows disagree", m.Name)
		}
		if m.IndexedTime <= 0 || m.VanillaTime <= 0 {
			t.Fatalf("%s: zero timing", m.Name)
		}
		if m.Speedup() <= 0 {
			t.Fatalf("%s: speedup = %f", m.Name, m.Speedup())
		}
	}
	for _, want := range []string{"Join", "Filter", "EqualityFilter", "Aggregation", "Projection", "Scan"} {
		if !names[want] {
			t.Fatalf("missing op %s", want)
		}
	}
}

func TestFigure3OpsRun(t *testing.T) {
	e := tinyEnv(t)
	ops := Figure3Ops(e)
	if len(ops) != 7 {
		t.Fatalf("ops = %d", len(ops))
	}
	for _, op := range ops {
		vr, err := op.Run(e.Vanilla)
		if err != nil {
			t.Fatalf("%s vanilla: %v", op.Name, err)
		}
		ir, err := op.Run(e.Indexed)
		if err != nil {
			t.Fatalf("%s indexed: %v", op.Name, err)
		}
		if vr != ir {
			t.Fatalf("%s: %d vs %d rows", op.Name, vr, ir)
		}
	}
}

func TestMemoryReport(t *testing.T) {
	e := tinyEnv(t)
	r := Memory(e)
	if r.ColumnarBytes <= 0 || r.DataBytes <= 0 || r.IndexBytes <= 0 {
		t.Fatalf("memory report: %+v", r)
	}
	if r.OverheadPerCopy <= 0 {
		t.Fatalf("overhead ratio: %+v", r)
	}
}
