package rowbatch

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPtrPackUnpack(t *testing.T) {
	cases := []struct{ batch, off, size int }{
		{0, 0, 1},
		{0, 0, MaxRowSize},
		{MaxBatches - 1, MaxBatchBytes - 1, 1},
		{12345, 999999, 1024},
	}
	for _, c := range cases {
		p, err := MakePtr(c.batch, c.off, c.size)
		if err != nil {
			t.Fatalf("MakePtr(%v): %v", c, err)
		}
		if p.IsNil() {
			t.Fatalf("MakePtr(%v) returned nil pointer", c)
		}
		if p.Batch() != c.batch || p.Offset() != c.off || p.Size() != c.size {
			t.Fatalf("round trip %v -> (%d,%d,%d)", c, p.Batch(), p.Offset(), p.Size())
		}
	}
}

func TestPtrRanges(t *testing.T) {
	bad := []struct{ batch, off, size int }{
		{-1, 0, 1},
		{MaxBatches, 0, 1},
		{0, -1, 1},
		{0, MaxBatchBytes, 1},
		{0, 0, 0},
		{0, 0, MaxRowSize + 1},
	}
	for _, c := range bad {
		if _, err := MakePtr(c.batch, c.off, c.size); err == nil {
			t.Errorf("MakePtr(%v) should fail", c)
		}
	}
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if Nil.String() != "rowptr(nil)" {
		t.Errorf("Nil.String() = %q", Nil.String())
	}
}

func TestPtrQuickRoundTrip(t *testing.T) {
	f := func(b, o, s uint32) bool {
		batch := int(b % MaxBatches)
		off := int(o % MaxBatchBytes)
		size := int(s%MaxRowSize) + 1
		p, err := MakePtr(batch, off, size)
		if err != nil {
			return false
		}
		return p.Batch() == batch && p.Offset() == off && p.Size() == size && !p.IsNil()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendRead(t *testing.T) {
	s := NewSet(256) // tiny batches to force growth
	var ptrs []Ptr
	var prev Ptr
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("row-%03d", i))
		p, err := s.Append(prev, payload)
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		ptrs = append(ptrs, p)
		prev = p
	}
	if s.NumRows() != 100 {
		t.Fatalf("NumRows = %d", s.NumRows())
	}
	if s.NumBatches() < 2 {
		t.Fatalf("expected multiple batches, got %d", s.NumBatches())
	}
	for i, p := range ptrs {
		gotPrev, payload, err := s.Read(p)
		if err != nil {
			t.Fatalf("Read(%v): %v", p, err)
		}
		want := fmt.Sprintf("row-%03d", i)
		if string(payload) != want {
			t.Fatalf("payload %d = %q, want %q", i, payload, want)
		}
		if i == 0 && !gotPrev.IsNil() {
			t.Fatal("first record should have nil prev")
		}
		if i > 0 && gotPrev != ptrs[i-1] {
			t.Fatalf("record %d prev = %v, want %v", i, gotPrev, ptrs[i-1])
		}
	}
}

func TestChainWalksNewestFirst(t *testing.T) {
	s := NewSet(0)
	var head Ptr
	for i := 0; i < 10; i++ {
		p, err := s.Append(head, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		head = p
	}
	var got []byte
	if err := s.Chain(head, func(_ Ptr, payload []byte) bool {
		got = append(got, payload[0])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("chain order = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	if err := s.Chain(head, func(Ptr, []byte) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanAppendOrder(t *testing.T) {
	s := NewSet(128)
	for i := 0; i < 50; i++ {
		if _, err := s.Append(Nil, []byte{byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	if err := s.Scan(nil, func(_ Ptr, payload []byte) bool {
		got = append(got, payload[0])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("scan saw %d records", len(got))
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("scan order broken at %d: %d", i, b)
		}
	}
}

func TestWatermarkSnapshotHidesLaterAppends(t *testing.T) {
	s := NewSet(128)
	for i := 0; i < 20; i++ {
		if _, err := s.Append(Nil, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	marks := s.Watermarks()
	for i := 0; i < 30; i++ {
		if _, err := s.Append(Nil, []byte{2}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := s.Scan(marks, func(_ Ptr, payload []byte) bool {
		if payload[0] != 1 {
			t.Fatal("snapshot scan observed a post-snapshot row")
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("snapshot scan saw %d rows, want 20", n)
	}
	// A fresh scan sees everything.
	total := 0
	if err := s.Scan(nil, func(Ptr, []byte) bool { total++; return true }); err != nil {
		t.Fatal(err)
	}
	if total != 50 {
		t.Fatalf("full scan saw %d rows, want 50", total)
	}
}

func TestAppendErrors(t *testing.T) {
	s := NewSet(64)
	if _, err := s.Append(Nil, make([]byte, MaxRowSize+1)); err == nil {
		t.Error("oversized row accepted")
	}
	if _, err := s.Append(Nil, make([]byte, 60)); err == nil {
		t.Error("record larger than batch accepted")
	}
	if _, _, err := s.Read(Nil); err == nil {
		t.Error("Read(Nil) should fail")
	}
	p, _ := MakePtr(99, 0, 5)
	if _, _, err := s.Read(p); err == nil {
		t.Error("Read of out-of-range batch should fail")
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := NewSet(1024)
	if s.MemoryUsage() != 0 {
		t.Fatal("empty set reports memory")
	}
	if _, err := s.Append(Nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s.MemoryUsage() != 1024 {
		t.Fatalf("MemoryUsage = %d, want 1024", s.MemoryUsage())
	}
	if s.DataBytes() != recordHeader+1 {
		t.Fatalf("DataBytes = %d", s.DataBytes())
	}
	if s.BatchSize() != 1024 {
		t.Fatalf("BatchSize = %d", s.BatchSize())
	}
}

func TestConcurrentReadersDuringAppends(t *testing.T) {
	s := NewSet(512)
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev Ptr
		for i := 0; i < total; i++ {
			p, err := s.Append(prev, []byte{byte(i), byte(i >> 8)})
			if err != nil {
				t.Errorf("Append: %v", err)
				return
			}
			prev = p
		}
	}()
	// Readers continuously scan snapshots; every scan must be internally
	// consistent (records intact, monotonically increasing count).
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for j := 0; j < 200; j++ {
				marks := s.Watermarks()
				n := 0
				err := s.Scan(marks, func(_ Ptr, payload []byte) bool {
					if len(payload) != 2 {
						t.Error("torn record observed")
						return false
					}
					n++
					return true
				})
				if err != nil {
					t.Errorf("Scan: %v", err)
					return
				}
				if n < last {
					t.Errorf("snapshot went backwards: %d < %d", n, last)
					return
				}
				last = n
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentAppenders(t *testing.T) {
	s := NewSet(4096)
	var wg sync.WaitGroup
	const (
		writers = 4
		each    = 1000
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := s.Append(Nil, []byte{byte(w)}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.NumRows() != writers*each {
		t.Fatalf("NumRows = %d, want %d", s.NumRows(), writers*each)
	}
	counts := map[byte]int{}
	if err := s.Scan(nil, func(_ Ptr, payload []byte) bool {
		counts[payload[0]]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		if counts[byte(w)] != each {
			t.Fatalf("writer %d rows = %d, want %d", w, counts[byte(w)], each)
		}
	}
}
