// Package rowbatch implements the Indexed DataFrame partition storage: a
// growable set of append-only binary row batches addressed by packed 64-bit
// pointers, with per-key backward chains threaded through the rows.
//
// The paper (§2, "The Indexed Row-Batch RDD") stores rows in collections of
// binary arrays of about 4 MB; the cTrie maps a key to a packed, dense
// 64-bit number identifying the latest row for that key, and every row
// carries a backward pointer to the previous row sharing its key, forming
// one linked list per distinct key.
package rowbatch

import "fmt"

// Packed-pointer layout (64 bits total):
//
//	[ batch : 28 bits ][ offset+1 : 22 bits ][ size : 14 bits ]
//
// offset is stored +1 so that the all-zero word can serve as the nil
// sentinel that terminates a backward chain. size records the byte size of
// the row the pointer refers to (the paper packs the size of the previous
// row on the chain; storing the pointee's size is equivalent and lets a
// single pointer be dereferenced without consulting the chain).
//
// The paper assumes rows of up to 1 KB, up to 2^31 batches of up to 4 MB.
// Our 28-bit batch field trades three batch bits for an in-word size and
// the nil sentinel; a partition still addresses 2^28 x 4 MiB = 1 PiB.
const (
	sizeBits   = 14
	offsetBits = 22
	batchBits  = 28

	// MaxRowSize is the largest encodable row (16 KiB - 1).
	MaxRowSize = 1<<sizeBits - 1
	// MaxBatchBytes is the addressable bytes within one batch.
	MaxBatchBytes = 1<<offsetBits - 1
	// MaxBatches is the largest number of batches per partition.
	MaxBatches = 1 << batchBits
)

// Ptr is a packed 64-bit row pointer. The zero Ptr is Nil.
type Ptr uint64

// Nil is the null pointer terminating a backward chain.
const Nil Ptr = 0

// MakePtr packs (batch, offset, size) into a Ptr.
func MakePtr(batch int, offset int, size int) (Ptr, error) {
	if batch < 0 || batch >= MaxBatches {
		return Nil, fmt.Errorf("rowbatch: batch %d out of range", batch)
	}
	if offset < 0 || offset >= MaxBatchBytes {
		return Nil, fmt.Errorf("rowbatch: offset %d out of range", offset)
	}
	if size <= 0 || size > MaxRowSize {
		return Nil, fmt.Errorf("rowbatch: row size %d out of range (max %d)", size, MaxRowSize)
	}
	return Ptr(uint64(batch)<<(offsetBits+sizeBits) |
		uint64(offset+1)<<sizeBits |
		uint64(size)), nil
}

// IsNil reports whether p is the null pointer.
func (p Ptr) IsNil() bool { return p == Nil }

// Batch returns the batch number.
func (p Ptr) Batch() int { return int(uint64(p) >> (offsetBits + sizeBits)) }

// Offset returns the byte offset within the batch.
func (p Ptr) Offset() int {
	return int(uint64(p)>>sizeBits&(1<<offsetBits-1)) - 1
}

// Size returns the byte size of the row the pointer refers to.
func (p Ptr) Size() int { return int(uint64(p) & (1<<sizeBits - 1)) }

// String renders the pointer for debugging.
func (p Ptr) String() string {
	if p.IsNil() {
		return "rowptr(nil)"
	}
	return fmt.Sprintf("rowptr(batch=%d off=%d size=%d)", p.Batch(), p.Offset(), p.Size())
}
