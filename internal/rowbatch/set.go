package rowbatch

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultBatchSize is the paper's 4 MB row-batch size (minus slack so every
// record offset stays addressable by the 22-bit packed offset field).
const DefaultBatchSize = 4<<20 - 64

// recordHeader is the per-record overhead: an 8-byte backward pointer and a
// 4-byte payload length.
const recordHeader = 12

// batch is one append-only binary buffer. Bytes below the used watermark
// are immutable and safe for lock-free concurrent reads.
type batch struct {
	buf  []byte
	used atomic.Int64
}

// directory is the immutable list of batches; it is replaced wholesale
// (copy-on-write) when a batch is added so readers can load it without
// locks.
type directory struct {
	batches []*batch
}

// Set is a growable set of row batches. One writer at a time may append
// (Append takes an internal lock); any number of readers may concurrently
// Read, Scan or snapshot watermarks.
type Set struct {
	mu        sync.Mutex
	batchSize int
	dir       atomic.Pointer[directory]
	rows      atomic.Int64
	bytes     atomic.Int64
}

// NewSet returns an empty Set with the given batch size; sizes outside
// (recordHeader, MaxBatchBytes] fall back to DefaultBatchSize.
func NewSet(batchSize int) *Set {
	if batchSize <= recordHeader || batchSize > MaxBatchBytes {
		batchSize = DefaultBatchSize
	}
	s := &Set{batchSize: batchSize}
	s.dir.Store(&directory{})
	return s
}

// BatchSize returns the configured batch size in bytes.
func (s *Set) BatchSize() int { return s.batchSize }

// NumRows returns the number of rows ever appended.
func (s *Set) NumRows() int64 { return s.rows.Load() }

// NumBatches returns the number of allocated batches.
func (s *Set) NumBatches() int { return len(s.dir.Load().batches) }

// MemoryUsage returns the bytes reserved by all batches.
func (s *Set) MemoryUsage() int64 {
	d := s.dir.Load()
	var n int64
	for _, b := range d.batches {
		n += int64(cap(b.buf))
	}
	return n
}

// DataBytes returns the bytes of payload (plus headers) actually written.
func (s *Set) DataBytes() int64 { return s.bytes.Load() }

// Append writes one row payload with its backward pointer and returns the
// packed pointer to the new record. Safe for concurrent use; appends are
// serialized internally.
func (s *Set) Append(prev Ptr, payload []byte) (Ptr, error) {
	if len(payload) > MaxRowSize {
		return Nil, fmt.Errorf("rowbatch: row of %d bytes exceeds max %d", len(payload), MaxRowSize)
	}
	rec := recordHeader + len(payload)
	if rec > s.batchSize {
		return Nil, fmt.Errorf("rowbatch: record of %d bytes exceeds batch size %d", rec, s.batchSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	d := s.dir.Load()
	var b *batch
	if n := len(d.batches); n > 0 {
		last := d.batches[n-1]
		if int(last.used.Load())+rec <= s.batchSize {
			b = last
		}
	}
	if b == nil {
		if len(d.batches) >= MaxBatches {
			return Nil, fmt.Errorf("rowbatch: partition exceeds %d batches", MaxBatches)
		}
		b = &batch{buf: make([]byte, s.batchSize)}
		nd := &directory{batches: make([]*batch, len(d.batches)+1)}
		copy(nd.batches, d.batches)
		nd.batches[len(d.batches)] = b
		s.dir.Store(nd)
		d = nd
	}
	off := int(b.used.Load())
	binary.LittleEndian.PutUint64(b.buf[off:], uint64(prev))
	binary.LittleEndian.PutUint32(b.buf[off+8:], uint32(len(payload)))
	copy(b.buf[off+recordHeader:], payload)
	// Publish: readers only look below the watermark, so the body must be
	// fully written before the store.
	b.used.Store(int64(off + rec))
	s.rows.Add(1)
	s.bytes.Add(int64(rec))
	return MakePtr(len(d.batches)-1, off, len(payload))
}

// Read dereferences a packed pointer, returning the record's backward
// pointer and its payload. The payload aliases the batch buffer and must
// not be modified; it remains valid forever (batches are append-only).
func (s *Set) Read(p Ptr) (prev Ptr, payload []byte, err error) {
	if p.IsNil() {
		return Nil, nil, fmt.Errorf("rowbatch: read of nil pointer")
	}
	d := s.dir.Load()
	bi := p.Batch()
	if bi >= len(d.batches) {
		return Nil, nil, fmt.Errorf("rowbatch: batch %d out of range (%d batches)", bi, len(d.batches))
	}
	b := d.batches[bi]
	off := p.Offset()
	if int64(off+recordHeader+p.Size()) > b.used.Load() {
		return Nil, nil, fmt.Errorf("rowbatch: pointer %v beyond watermark", p)
	}
	prev = Ptr(binary.LittleEndian.Uint64(b.buf[off:]))
	n := int(binary.LittleEndian.Uint32(b.buf[off+8:]))
	if n != p.Size() {
		return Nil, nil, fmt.Errorf("rowbatch: pointer size %d disagrees with record %d", p.Size(), n)
	}
	return prev, b.buf[off+recordHeader : off+recordHeader+n], nil
}

// Chain walks the backward chain starting at p, invoking fn for each record
// (newest first) until the chain ends or fn returns false.
func (s *Set) Chain(p Ptr, fn func(ptr Ptr, payload []byte) bool) error {
	for !p.IsNil() {
		prev, payload, err := s.Read(p)
		if err != nil {
			return err
		}
		if !fn(p, payload) {
			return nil
		}
		p = prev
	}
	return nil
}

// Watermarks captures the current per-batch used counts; together with the
// batch directory this identifies a consistent prefix of the data — the
// multi-version read view a query pins.
func (s *Set) Watermarks() []int64 {
	d := s.dir.Load()
	marks := make([]int64, len(d.batches))
	// Read watermarks in order; each batch's mark is monotonic so the view
	// is a consistent prefix of the append order as long as the last
	// batch's mark is read after the directory load (it is).
	for i, b := range d.batches {
		marks[i] = b.used.Load()
	}
	return marks
}

// Scan iterates every record in the prefix identified by marks (as returned
// by Watermarks; pass nil for "everything now"), in append order, invoking
// fn with the record's packed pointer and payload until fn returns false.
func (s *Set) Scan(marks []int64, fn func(ptr Ptr, payload []byte) bool) error {
	d := s.dir.Load()
	n := len(d.batches)
	if marks != nil && len(marks) < n {
		n = len(marks)
	}
	for bi := 0; bi < n; bi++ {
		b := d.batches[bi]
		limit := b.used.Load()
		if marks != nil && marks[bi] < limit {
			limit = marks[bi]
		}
		off := 0
		for int64(off) < limit {
			sz := int(binary.LittleEndian.Uint32(b.buf[off+8:]))
			p, err := MakePtr(bi, off, sz)
			if err != nil {
				return err
			}
			if !fn(p, b.buf[off+recordHeader:off+recordHeader+sz]) {
				return nil
			}
			off += recordHeader + sz
		}
	}
	return nil
}
