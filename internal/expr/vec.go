package expr

import (
	"strings"

	"indexeddf/internal/columnar"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// This file implements the vectorized expression kernels: a compiled form
// of an expression tree that evaluates a whole batch per call, writing
// results into reused output vectors. Kernels match the row evaluator's SQL
// semantics exactly (three-valued logic, NULL propagation, division by zero
// yielding NULL, Int32 wraparound) — the equivalence tests in vec_test.go
// pin this down.
//
// A compiled VecExpr owns its scratch vectors and is NOT safe for
// concurrent use: operators compile one instance per partition task.

// VecExpr is a compiled, batch-at-a-time evaluator for a bound expression.
type VecExpr struct {
	root vecNode
}

// CompileVec compiles a bound expression into a vectorized evaluator.
// It returns ok=false when the tree contains a node the vectorized engine
// does not cover (scalar functions, casts, unresolved columns, NULL
// literals, or comparisons across incompatible type families); callers fall
// back to row-at-a-time evaluation.
func CompileVec(e Expr) (*VecExpr, bool) {
	n, ok := compileVec(e)
	if !ok {
		return nil, false
	}
	return &VecExpr{root: n}, true
}

// CanVectorize reports whether CompileVec would succeed for e.
func CanVectorize(e Expr) bool {
	_, ok := CompileVec(e)
	return ok
}

// Type returns the compiled expression's result type.
func (v *VecExpr) Type() sqltypes.Type { return v.root.typ() }

// Eval evaluates the expression over every row of b. The returned vector
// has b.Len() entries and is owned by the evaluator (or is a column of b);
// it is valid until the next Eval call.
func (v *VecExpr) Eval(b *vector.Batch) (*columnar.Vector, error) {
	return v.root.eval(b)
}

type vecNode interface {
	typ() sqltypes.Type
	eval(b *vector.Batch) (*columnar.Vector, error)
}

func compileVec(e Expr) (vecNode, bool) {
	switch n := e.(type) {
	case *Alias:
		return compileVec(n.E)
	case *Bound:
		if !n.T.Valid() {
			return nil, false
		}
		return &vecBound{ord: n.Ordinal, t: n.T}, true
	case *Literal:
		if n.V.IsNull() {
			return nil, false
		}
		return &vecLit{v: n.V, out: columnar.NewVector(n.V.T)}, true
	case *Cmp:
		return compileCmp(n)
	case *Arith:
		return compileArith(n)
	case *Logic:
		l, ok := compileVec(n.L)
		if !ok {
			return nil, false
		}
		r, ok := compileVec(n.R)
		if !ok {
			return nil, false
		}
		if l.typ() != sqltypes.Bool || r.typ() != sqltypes.Bool {
			return nil, false
		}
		return &vecLogic{op: n.Op, l: l, r: r, out: columnar.NewVector(sqltypes.Bool)}, true
	case *Not:
		c, ok := compileVec(n.E)
		if !ok || c.typ() != sqltypes.Bool {
			return nil, false
		}
		return &vecNot{c: c, out: columnar.NewVector(sqltypes.Bool)}, true
	case *IsNull:
		c, ok := compileVec(n.E)
		if !ok {
			return nil, false
		}
		return &vecIsNull{c: c, negate: n.Negate, out: columnar.NewVector(sqltypes.Bool)}, true
	default:
		return nil, false
	}
}

// cmpFamily classifies the comparison loop for two operand types, matching
// sqltypes.Compare: float when both numeric and either is DOUBLE, int when
// both are int-lane types, string when both are strings.
type cmpKind uint8

const (
	cmpUnsupported cmpKind = iota
	cmpInt
	cmpFloat
	cmpString
)

func cmpFamily(lt, rt sqltypes.Type) cmpKind {
	if lt.Numeric() && rt.Numeric() && (lt == sqltypes.Float64 || rt == sqltypes.Float64) {
		return cmpFloat
	}
	if lt.IntLane() && rt.IntLane() {
		return cmpInt
	}
	if lt == sqltypes.String && rt == sqltypes.String {
		return cmpString
	}
	return cmpUnsupported
}

// ---------------------------------------------------------------------------
// Leaves

type vecBound struct {
	ord int
	t   sqltypes.Type
}

func (n *vecBound) typ() sqltypes.Type { return n.t }
func (n *vecBound) eval(b *vector.Batch) (*columnar.Vector, error) {
	return b.Cols[n.ord], nil
}

type vecLit struct {
	v   sqltypes.Value
	out *columnar.Vector
}

func (n *vecLit) typ() sqltypes.Type { return n.v.T }
func (n *vecLit) eval(b *vector.Batch) (*columnar.Vector, error) {
	m := b.Len()
	if n.out.Len() == m {
		return n.out, nil // still filled from the previous batch
	}
	n.out.Reset(n.v.T)
	n.out.Resize(m)
	switch n.v.T {
	case sqltypes.Float64:
		f := n.out.Float64s()
		for i := range f {
			f[i] = n.v.F
		}
	case sqltypes.String:
		s := n.out.Strings()
		for i := range s {
			s[i] = n.v.S
		}
	default:
		x := n.out.Int64s()
		for i := range x {
			x[i] = n.v.I
		}
	}
	return n.out, nil
}

// litOf unwraps a literal child for the scalar fast paths.
func litOf(n vecNode) (sqltypes.Value, bool) {
	if l, ok := n.(*vecLit); ok {
		return l.v, true
	}
	return sqltypes.Null, false
}

// ---------------------------------------------------------------------------
// Comparison

type vecCmp struct {
	op   CmpOp
	kind cmpKind
	l, r vecNode
	out  *columnar.Vector
}

func compileCmp(c *Cmp) (vecNode, bool) {
	l, ok := compileVec(c.L)
	if !ok {
		return nil, false
	}
	r, ok := compileVec(c.R)
	if !ok {
		return nil, false
	}
	kind := cmpFamily(l.typ(), r.typ())
	if kind == cmpUnsupported {
		return nil, false
	}
	return &vecCmp{op: c.Op, kind: kind, l: l, r: r, out: columnar.NewVector(sqltypes.Bool)}, true
}

func (n *vecCmp) typ() sqltypes.Type { return sqltypes.Bool }

// floatAt reads position i of v widened to float64 (numeric lanes only).
func floatAt(v *columnar.Vector, fs []float64, is []int64, i int) float64 {
	if fs != nil {
		return fs[i]
	}
	_ = v
	return float64(is[i])
}

func numericLanes(v *columnar.Vector) (fs []float64, is []int64) {
	if v.Type == sqltypes.Float64 {
		return v.Float64s(), nil
	}
	return nil, v.Int64s()
}

func (n *vecCmp) eval(b *vector.Batch) (*columnar.Vector, error) {
	m := b.Len()
	n.out.Reset(sqltypes.Bool)
	n.out.Resize(m)
	bits := n.out.Int64s()

	// Scalar fast paths: column-vs-literal is the dominant filter shape.
	if lit, ok := litOf(n.r); ok {
		lv, err := n.l.eval(b)
		if err != nil {
			return nil, err
		}
		n.evalScalar(lv, lit, n.op, bits)
		orNullWords(n.out, lv, nil)
		return n.out, nil
	}
	if lit, ok := litOf(n.l); ok {
		rv, err := n.r.eval(b)
		if err != nil {
			return nil, err
		}
		// lit OP col  ==  col MIRROR(OP) lit
		n.evalScalar(rv, lit, mirrorCmp(n.op), bits)
		orNullWords(n.out, rv, nil)
		return n.out, nil
	}

	lv, err := n.l.eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := n.r.eval(b)
	if err != nil {
		return nil, err
	}
	op := n.op
	switch n.kind {
	case cmpInt:
		li, ri := lv.Int64s(), rv.Int64s()
		for i := 0; i < m; i++ {
			bits[i] = boolBit(cmpHolds(op, compareInt64(li[i], ri[i])))
		}
	case cmpFloat:
		lf, li := numericLanes(lv)
		rf, ri := numericLanes(rv)
		for i := 0; i < m; i++ {
			x, y := floatAt(lv, lf, li, i), floatAt(rv, rf, ri, i)
			bits[i] = boolBit(cmpHolds(op, compareFloat64(x, y)))
		}
	case cmpString:
		ls, rs := lv.Strings(), rv.Strings()
		for i := 0; i < m; i++ {
			bits[i] = boolBit(cmpHolds(op, strings.Compare(ls[i], rs[i])))
		}
	}
	orNullWords(n.out, lv, rv)
	return n.out, nil
}

// evalScalar runs the column-vs-constant loops, one tight loop per operator.
func (n *vecCmp) evalScalar(col *columnar.Vector, lit sqltypes.Value, op CmpOp, bits []int64) {
	m := len(bits)
	switch n.kind {
	case cmpInt:
		xs, k := col.Int64s(), lit.I
		switch op {
		case Eq:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(xs[i] == k)
			}
		case Ne:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(xs[i] != k)
			}
		case Lt:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(xs[i] < k)
			}
		case Le:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(xs[i] <= k)
			}
		case Gt:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(xs[i] > k)
			}
		case Ge:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(xs[i] >= k)
			}
		}
	case cmpFloat:
		fs, is := numericLanes(col)
		k := lit.Float64Val()
		for i := 0; i < m; i++ {
			x := floatAt(col, fs, is, i)
			bits[i] = boolBit(cmpHolds(op, compareFloat64(x, k)))
		}
	case cmpString:
		xs, k := col.Strings(), lit.S
		switch op {
		case Eq:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(xs[i] == k)
			}
		case Ne:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(xs[i] != k)
			}
		default:
			for i := 0; i < m; i++ {
				bits[i] = boolBit(cmpHolds(op, strings.Compare(xs[i], k)))
			}
		}
	}
}

func compareInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	default:
		return c >= 0
	}
}

// mirrorCmp returns the operator with swapped operands: a OP b == b MIRROR(OP) a.
func mirrorCmp(op CmpOp) CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default: // Eq, Ne are symmetric
		return op
	}
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// orNullWords marks out NULL wherever a or b (b may be nil) is NULL,
// OR-ing whole bitmap words.
func orNullWords(out, a, b *columnar.Vector) {
	if !a.AnyNulls() && (b == nil || !b.AnyNulls()) {
		return
	}
	ow, aw := out.NullWords(), a.NullWords()
	for i := range ow {
		ow[i] |= aw[i]
	}
	if b != nil {
		bw := b.NullWords()
		for i := range ow {
			ow[i] |= bw[i]
		}
	}
}

// ---------------------------------------------------------------------------
// Arithmetic

type vecArith struct {
	op   ArithOp
	t    sqltypes.Type // CommonType of the operands
	l, r vecNode
	out  *columnar.Vector
}

func compileArith(a *Arith) (vecNode, bool) {
	l, ok := compileVec(a.L)
	if !ok {
		return nil, false
	}
	r, ok := compileVec(a.R)
	if !ok {
		return nil, false
	}
	if !l.typ().Numeric() || !r.typ().Numeric() {
		return nil, false
	}
	t, err := sqltypes.CommonType(l.typ(), r.typ())
	if err != nil {
		return nil, false
	}
	return &vecArith{op: a.Op, t: t, l: l, r: r, out: columnar.NewVector(t)}, true
}

func (n *vecArith) typ() sqltypes.Type { return n.t }

func (n *vecArith) eval(b *vector.Batch) (*columnar.Vector, error) {
	lv, err := n.l.eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := n.r.eval(b)
	if err != nil {
		return nil, err
	}
	m := b.Len()
	n.out.Reset(n.t)
	n.out.Resize(m)
	if n.t == sqltypes.Float64 {
		outF := n.out.Float64s()
		lf, li := numericLanes(lv)
		rf, ri := numericLanes(rv)
		for i := 0; i < m; i++ {
			x, y := floatAt(lv, lf, li, i), floatAt(rv, rf, ri, i)
			switch n.op {
			case Add:
				outF[i] = x + y
			case Sub:
				outF[i] = x - y
			case Mul:
				outF[i] = x * y
			case Div:
				if y == 0 {
					n.out.SetNull(i)
				} else {
					outF[i] = x / y
				}
			case Mod:
				if int64(y) == 0 {
					// Matches the row evaluator: float modulo runs over
					// truncated operands, and a divisor truncating to zero
					// yields NULL instead of an integer-divide panic.
					n.out.SetNull(i)
				} else {
					outF[i] = float64(int64(x) % int64(y))
				}
			}
		}
	} else {
		outI := n.out.Int64s()
		li, ri := lv.Int64s(), rv.Int64s()
		narrow := n.t == sqltypes.Int32
		for i := 0; i < m; i++ {
			x, y := li[i], ri[i]
			var z int64
			switch n.op {
			case Add:
				z = x + y
			case Sub:
				z = x - y
			case Mul:
				z = x * y
			case Div:
				if y == 0 {
					n.out.SetNull(i)
					continue
				}
				z = x / y
			case Mod:
				if y == 0 {
					n.out.SetNull(i)
					continue
				}
				z = x % y
			}
			if narrow {
				z = int64(int32(z))
			}
			outI[i] = z
		}
	}
	orNullWords(n.out, lv, rv)
	return n.out, nil
}

// ---------------------------------------------------------------------------
// Boolean connectives

type vecLogic struct {
	op   LogicOp
	l, r vecNode
	out  *columnar.Vector
}

func (n *vecLogic) typ() sqltypes.Type { return sqltypes.Bool }

func (n *vecLogic) eval(b *vector.Batch) (*columnar.Vector, error) {
	lv, err := n.l.eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := n.r.eval(b)
	if err != nil {
		return nil, err
	}
	m := b.Len()
	n.out.Reset(sqltypes.Bool)
	n.out.Resize(m)
	bits := n.out.Int64s()
	li, ri := lv.Int64s(), rv.Int64s()
	if !lv.AnyNulls() && !rv.AnyNulls() {
		if n.op == AndOp {
			for i := 0; i < m; i++ {
				bits[i] = li[i] & ri[i]
			}
		} else {
			for i := 0; i < m; i++ {
				bits[i] = li[i] | ri[i]
			}
		}
		return n.out, nil
	}
	// Three-valued logic with NULLs: AND is false if either side is a
	// non-null false, true only if both are non-null true, otherwise NULL;
	// OR dually.
	for i := 0; i < m; i++ {
		ln, rn := lv.IsNull(i), rv.IsNull(i)
		lt := !ln && li[i] != 0
		rt := !rn && ri[i] != 0
		lf := !ln && li[i] == 0
		rf := !rn && ri[i] == 0
		if n.op == AndOp {
			switch {
			case lf || rf:
				bits[i] = 0
			case lt && rt:
				bits[i] = 1
			default:
				n.out.SetNull(i)
			}
		} else {
			switch {
			case lt || rt:
				bits[i] = 1
			case lf && rf:
				bits[i] = 0
			default:
				n.out.SetNull(i)
			}
		}
	}
	return n.out, nil
}

type vecNot struct {
	c   vecNode
	out *columnar.Vector
}

func (n *vecNot) typ() sqltypes.Type { return sqltypes.Bool }

func (n *vecNot) eval(b *vector.Batch) (*columnar.Vector, error) {
	cv, err := n.c.eval(b)
	if err != nil {
		return nil, err
	}
	m := b.Len()
	n.out.Reset(sqltypes.Bool)
	n.out.Resize(m)
	bits, ci := n.out.Int64s(), cv.Int64s()
	for i := 0; i < m; i++ {
		bits[i] = ci[i] ^ 1
	}
	orNullWords(n.out, cv, nil)
	return n.out, nil
}

type vecIsNull struct {
	c      vecNode
	negate bool
	out    *columnar.Vector
}

func (n *vecIsNull) typ() sqltypes.Type { return sqltypes.Bool }

func (n *vecIsNull) eval(b *vector.Batch) (*columnar.Vector, error) {
	cv, err := n.c.eval(b)
	if err != nil {
		return nil, err
	}
	m := b.Len()
	n.out.Reset(sqltypes.Bool)
	n.out.Resize(m)
	bits := n.out.Int64s()
	for i := 0; i < m; i++ {
		bits[i] = boolBit(cv.IsNull(i) != n.negate)
	}
	return n.out, nil
}
