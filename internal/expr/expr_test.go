package expr

import (
	"testing"
	"testing/quick"

	"indexeddf/internal/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "name", Type: sqltypes.String, Nullable: true},
		sqltypes.Field{Name: "score", Type: sqltypes.Float64, Nullable: true},
	)
}

func mustBind(t *testing.T, e Expr, s *sqltypes.Schema) Expr {
	t.Helper()
	b, err := Bind(e, s)
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	return b
}

func evalOn(t *testing.T, e Expr, row sqltypes.Row) sqltypes.Value {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestBindAndEval(t *testing.T) {
	s := testSchema()
	row := sqltypes.Row{sqltypes.NewInt64(7), sqltypes.NewString("ann"), sqltypes.NewFloat64(2.5)}

	e := mustBind(t, NewCmp(Eq, C("id"), LitInt64(7)), s)
	if v := evalOn(t, e, row); !v.Bool() {
		t.Errorf("id = 7 evaluated to %v", v)
	}
	e = mustBind(t, NewCmp(Gt, C("score"), Lit(sqltypes.NewFloat64(3))), s)
	if v := evalOn(t, e, row); v.Bool() {
		t.Errorf("score > 3 evaluated to %v", v)
	}
	if _, err := Bind(C("nope"), s); err == nil {
		t.Error("binding unknown column should fail")
	}
}

func TestUnresolvedEvalFails(t *testing.T) {
	if _, err := C("x").Eval(nil); err == nil {
		t.Error("evaluating unresolved column should fail")
	}
	if C("x").Resolved() {
		t.Error("Col should be unresolved")
	}
}

func TestComparisonNullSemantics(t *testing.T) {
	s := testSchema()
	row := sqltypes.Row{sqltypes.NewInt64(1), sqltypes.Null, sqltypes.Null}
	e := mustBind(t, NewCmp(Eq, C("name"), LitString("x")), s)
	if v := evalOn(t, e, row); !v.IsNull() {
		t.Errorf("NULL = 'x' should be NULL, got %v", v)
	}
	keep, err := EvalPredicate(e, row)
	if err != nil || keep {
		t.Errorf("NULL predicate must drop the row (keep=%v err=%v)", keep, err)
	}
}

func TestAllComparisonOps(t *testing.T) {
	two, three := LitInt64(2), LitInt64(3)
	cases := []struct {
		op   CmpOp
		want bool
	}{
		{Eq, false}, {Ne, true}, {Lt, true}, {Le, true}, {Gt, false}, {Ge, false},
	}
	for _, c := range cases {
		v := evalOn(t, NewCmp(c.op, two, three), nil)
		if v.Bool() != c.want {
			t.Errorf("2 %s 3 = %v, want %v", c.op, v.Bool(), c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want sqltypes.Value
	}{
		{NewArith(Add, LitInt64(2), LitInt64(3)), sqltypes.NewInt64(5)},
		{NewArith(Sub, LitInt64(2), LitInt64(3)), sqltypes.NewInt64(-1)},
		{NewArith(Mul, LitInt64(4), LitInt64(3)), sqltypes.NewInt64(12)},
		{NewArith(Div, LitInt64(7), LitInt64(2)), sqltypes.NewInt64(3)},
		{NewArith(Mod, LitInt64(7), LitInt64(2)), sqltypes.NewInt64(1)},
		{NewArith(Div, LitInt64(7), LitInt64(0)), sqltypes.Null},
		{NewArith(Add, LitInt64(2), Lit(sqltypes.NewFloat64(0.5))), sqltypes.NewFloat64(2.5)},
		{NewArith(Div, Lit(sqltypes.NewFloat64(1)), Lit(sqltypes.NewFloat64(4))), sqltypes.NewFloat64(0.25)},
		{NewArith(Add, Lit(sqltypes.Null), LitInt64(1)), sqltypes.Null},
	}
	for _, c := range cases {
		if got := evalOn(t, c.e, nil); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tr := Lit(sqltypes.NewBool(true))
	fa := Lit(sqltypes.NewBool(false))
	nu := Lit(sqltypes.Null)
	cases := []struct {
		e    Expr
		want sqltypes.Value
	}{
		{And(tr, tr), sqltypes.NewBool(true)},
		{And(tr, fa), sqltypes.NewBool(false)},
		{And(fa, nu), sqltypes.NewBool(false)}, // false AND NULL = false
		{And(nu, fa), sqltypes.NewBool(false)},
		{And(tr, nu), sqltypes.Null},
		{Or(fa, fa), sqltypes.NewBool(false)},
		{Or(tr, nu), sqltypes.NewBool(true)}, // true OR NULL = true
		{Or(nu, tr), sqltypes.NewBool(true)},
		{Or(fa, nu), sqltypes.Null},
		{NewNot(tr), sqltypes.NewBool(false)},
	}
	for _, c := range cases {
		if got := evalOn(t, c.e, nil); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestIsNullAndNot(t *testing.T) {
	nu := Lit(sqltypes.Null)
	one := LitInt64(1)
	if v := evalOn(t, &IsNull{E: nu}, nil); !v.Bool() {
		t.Error("NULL IS NULL = false")
	}
	if v := evalOn(t, &IsNull{E: one, Negate: true}, nil); !v.Bool() {
		t.Error("1 IS NOT NULL = false")
	}
	if v := evalOn(t, NewNot(nu), nil); !v.IsNull() {
		t.Error("NOT NULL should be NULL")
	}
}

func TestCastAndAlias(t *testing.T) {
	c := &Cast{E: LitString("42"), To: sqltypes.Int64}
	if v := evalOn(t, c, nil); v != sqltypes.NewInt64(42) {
		t.Errorf("CAST = %v", v)
	}
	a := As(LitInt64(1), "one")
	if a.Name != "one" || evalOn(t, a, nil) != sqltypes.NewInt64(1) {
		t.Error("alias misbehaves")
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		e    Expr
		want sqltypes.Value
	}{
		{NewFunc("upper", LitString("abc")), sqltypes.NewString("ABC")},
		{NewFunc("lower", LitString("AbC")), sqltypes.NewString("abc")},
		{NewFunc("length", LitString("abcd")), sqltypes.NewInt64(4)},
		{NewFunc("abs", LitInt64(-5)), sqltypes.NewInt64(5)},
		{NewFunc("abs", Lit(sqltypes.NewFloat64(-2.5))), sqltypes.NewFloat64(2.5)},
		{NewFunc("concat", LitString("a"), LitString("b"), LitInt64(1)), sqltypes.NewString("ab1")},
		{NewFunc("substr", LitString("hello"), LitInt64(2), LitInt64(3)), sqltypes.NewString("ell")},
		{NewFunc("substr", LitString("hello"), LitInt64(99)), sqltypes.NewString("")},
		{NewFunc("coalesce", Lit(sqltypes.Null), LitInt64(3)), sqltypes.NewInt64(3)},
		{NewFunc("upper", Lit(sqltypes.Null)), sqltypes.Null},
		{NewFunc("year", Lit(sqltypes.NewTimestamp(0))), sqltypes.NewInt64(1970)},
	}
	for _, c := range cases {
		if got := evalOn(t, c.e, nil); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := NewFunc("no_such_fn", LitInt64(1)).Eval(nil); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestFoldConstants(t *testing.T) {
	e := NewArith(Add, LitInt64(2), NewArith(Mul, LitInt64(3), LitInt64(4)))
	folded, err := FoldConstants(e)
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := folded.(*Literal)
	if !ok || lit.V != sqltypes.NewInt64(14) {
		t.Errorf("folded = %s", folded)
	}
	// Column-dependent parts survive.
	s := testSchema()
	e2 := mustBind(t, And(NewCmp(Gt, C("id"), NewArith(Add, LitInt64(1), LitInt64(1))),
		Lit(sqltypes.NewBool(true))), s)
	folded2, err := FoldConstants(e2)
	if err != nil {
		t.Fatal(err)
	}
	if folded2.String() != "((id > 2) AND true)" {
		t.Errorf("folded2 = %s", folded2)
	}
}

func TestSplitJoinConjunction(t *testing.T) {
	a := NewCmp(Eq, C("a"), LitInt64(1))
	b := NewCmp(Eq, C("b"), LitInt64(2))
	c := NewCmp(Eq, C("c"), LitInt64(3))
	conj := And(And(a, b), c)
	parts := SplitConjunction(conj)
	if len(parts) != 3 {
		t.Fatalf("SplitConjunction = %d parts", len(parts))
	}
	back := JoinConjuncts(parts)
	if back.String() != conj.String() {
		t.Errorf("JoinConjuncts = %s, want %s", back, conj)
	}
	if JoinConjuncts(nil) != nil {
		t.Error("JoinConjuncts(nil) should be nil")
	}
}

func TestReferencedColumnsAndOrdinals(t *testing.T) {
	e := And(NewCmp(Eq, C("a"), LitInt64(1)), NewCmp(Gt, C("b"), C("a")))
	cols := ReferencedColumns(e)
	if !cols["a"] || !cols["b"] || len(cols) != 2 {
		t.Errorf("ReferencedColumns = %v", cols)
	}
	s := sqltypes.NewSchema(
		sqltypes.Field{Name: "a", Type: sqltypes.Int64},
		sqltypes.Field{Name: "b", Type: sqltypes.Int64},
	)
	be := mustBind(t, e, s)
	ords := ReferencedOrdinals(be)
	if !ords[0] || !ords[1] {
		t.Errorf("ReferencedOrdinals = %v", ords)
	}
	if MaxOrdinal(be) != 1 {
		t.Errorf("MaxOrdinal = %d", MaxOrdinal(be))
	}
}

func TestShift(t *testing.T) {
	s := testSchema()
	e := mustBind(t, NewCmp(Eq, C("id"), LitInt64(1)), s)
	shifted, err := Shift(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if MaxOrdinal(shifted) != 5 {
		t.Errorf("shifted MaxOrdinal = %d", MaxOrdinal(shifted))
	}
}

func TestEqualityWithLiteral(t *testing.T) {
	s := testSchema()
	e := mustBind(t, NewCmp(Eq, C("id"), LitInt64(9)), s)
	col, lit, ok := EqualityWithLiteral(e)
	if !ok || col.Ordinal != 0 || lit != sqltypes.NewInt64(9) {
		t.Errorf("EqualityWithLiteral = %v %v %v", col, lit, ok)
	}
	// Reversed operands.
	e2 := mustBind(t, NewCmp(Eq, LitInt64(9), C("id")), s)
	if _, _, ok := EqualityWithLiteral(e2); !ok {
		t.Error("reversed equality not recognized")
	}
	// Non-equality rejected.
	e3 := mustBind(t, NewCmp(Gt, C("id"), LitInt64(9)), s)
	if _, _, ok := EqualityWithLiteral(e3); ok {
		t.Error("non-equality accepted")
	}
}

func TestColumnEquality(t *testing.T) {
	s := sqltypes.NewSchema(
		sqltypes.Field{Name: "a", Type: sqltypes.Int64},
		sqltypes.Field{Name: "b", Type: sqltypes.Int64},
	)
	e := mustBind(t, NewCmp(Eq, C("a"), C("b")), s)
	l, r, ok := ColumnEquality(e)
	if !ok || l.Ordinal != 0 || r.Ordinal != 1 {
		t.Errorf("ColumnEquality = %v %v %v", l, r, ok)
	}
}

func TestAggResultTypes(t *testing.T) {
	b := B(0, sqltypes.Int64, "x")
	f := B(0, sqltypes.Float64, "y")
	cases := []struct {
		a    Agg
		want sqltypes.Type
	}{
		{Agg{Func: CountStarAgg}, sqltypes.Int64},
		{Agg{Func: CountAgg, Arg: b}, sqltypes.Int64},
		{Agg{Func: SumAgg, Arg: b}, sqltypes.Int64},
		{Agg{Func: SumAgg, Arg: f}, sqltypes.Float64},
		{Agg{Func: AvgAgg, Arg: b}, sqltypes.Float64},
		{Agg{Func: MinAgg, Arg: b}, sqltypes.Int64},
		{Agg{Func: MaxAgg, Arg: f}, sqltypes.Float64},
	}
	for _, c := range cases {
		if got := c.a.ResultType(); got != c.want {
			t.Errorf("%s.ResultType() = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestCmpQuickConsistentWithCompare(t *testing.T) {
	f := func(a, b int64) bool {
		lt := evalOn(t, NewCmp(Lt, LitInt64(a), LitInt64(b)), nil).Bool()
		ge := evalOn(t, NewCmp(Ge, LitInt64(a), LitInt64(b)), nil).Bool()
		eq := evalOn(t, NewCmp(Eq, LitInt64(a), LitInt64(b)), nil).Bool()
		return lt != ge && eq == (a == b) && lt == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := testSchema()
	e := mustBind(t, And(NewCmp(Eq, C("id"), LitInt64(1)), NewCmp(Ne, C("name"), LitString("x"))), s)
	want := "((id = 1) AND (name <> 'x'))"
	if e.String() != want {
		t.Errorf("String = %q, want %q", e.String(), want)
	}
}
